// Live feed: asynchronous ingestion through service/fact_feed.h.
//
// A producer thread plays the role of a wire-service scraper pushing NBA
// box scores as games finish; the FactFeed worker owns the discovery
// engine and fires a subscriber callback whenever an arrival mints a
// prominent fact. This is the deployment shape of a newsroom alerting
// pipeline: scrape -> discover -> notify, with backpressure instead of
// dropped events.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/live_feed

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "core/narrator.h"
#include "datagen/nba_generator.h"
#include "relation/dataset.h"
#include "service/fact_feed.h"

using sitfact::ArrivalReport;
using sitfact::Dataset;
using sitfact::DiscoveryEngine;
using sitfact::DiscoveryOptions;
using sitfact::FactFeed;
using sitfact::FactNarrator;
using sitfact::NbaGenerator;
using sitfact::Relation;
using sitfact::Row;

int main() {
  NbaGenerator::Config gen_cfg;
  gen_cfg.tuples_per_season = 400;
  Dataset data = NbaGenerator(gen_cfg).Generate(3000);

  Relation relation(data.schema());
  DiscoveryOptions options;
  options.max_bound_dims = 3;
  options.max_measure_dims = 3;
  auto disc =
      DiscoveryEngine::CreateDiscoverer("STopDown", &relation, options);
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = 300.0;
  DiscoveryEngine engine(&relation, std::move(disc).value(), config);

  FactNarrator narrator(&relation,
                        data.schema().DimensionIndex("player"));
  std::atomic<int> alerts{0};

  // Subscriber runs on the feed's worker thread, right after discovery.
  FactFeed feed(&engine, [&](const ArrivalReport& report) {
    int n = ++alerts;
    if (n <= 8) {  // print the first few alerts, count the rest
      std::printf("ALERT %d: %s\n", n,
                  narrator.Narrate(report.tuple,
                                   report.prominent.front()).c_str());
    }
  });

  // The "scraper": pushes rows as they happen.
  std::thread scraper([&] {
    for (const Row& row : data.rows()) feed.Publish(row);
  });
  scraper.join();
  feed.Stop();

  std::printf("\nstream over: %llu box scores processed, %d alerts fired\n",
              static_cast<unsigned long long>(feed.processed()),
              alerts.load());
  return feed.processed() == data.rows().size() ? 0 : 1;
}
