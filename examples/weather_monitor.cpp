// Extreme-weather monitor, the paper's second motivating domain: stream
// synthetic UK forecasts and alert when a reading is an extreme — a
// contextual skyline tuple in a populated context, e.g. "City B has never
// encountered such high wind speed and humidity in March".
//
// Demonstrates: multi-measure subspaces on continuous data, the m̂ knob to
// keep alerts interpretable (pairs of measures at most), and reading
// per-alert prominence to sort the monitor's feed.
//
// Usage: weather_monitor [num_records] [tau]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "core/narrator.h"
#include "datagen/weather_generator.h"

using namespace sitfact;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 15000;
  double tau = argc > 2 ? std::strtod(argv[2], nullptr) : 400.0;

  WeatherGenerator::Config gen_cfg;
  gen_cfg.num_locations = 256;
  gen_cfg.records_per_day = n > 30 ? n / 30 : 1;
  WeatherGenerator generator(gen_cfg);
  Dataset full = generator.Generate(n);
  // Contexts over country/month/visibility; alerts on wind+humidity+gust.
  auto projected = full.Project(
      {"country", "month", "visibility_range"},
      {"wind_speed_day", "humidity_day", "wind_gust"});
  if (!projected.ok()) {
    std::fprintf(stderr, "%s\n", projected.status().ToString().c_str());
    return 1;
  }
  Dataset data = std::move(projected).value();
  Relation relation(data.schema());

  DiscoveryOptions options;
  options.max_bound_dims = 2;
  options.max_measure_dims = 2;
  auto discoverer =
      DiscoveryEngine::CreateDiscoverer("STopDown", &relation, options);
  if (!discoverer.ok()) {
    std::fprintf(stderr, "%s\n", discoverer.status().ToString().c_str());
    return 1;
  }
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = tau;
  DiscoveryEngine engine(&relation, std::move(discoverer).value(), config);

  FactNarrator narrator(&relation, -1);
  uint64_t alerts = 0;
  std::printf("== sitfact weather monitor: %d records, tau=%.0f ==\n", n,
              tau);
  for (const Row& row : data.rows()) {
    ArrivalReport report = engine.Append(row);
    if (report.prominent.empty()) continue;
    ++alerts;
    std::printf("\nALERT (record %u, %s, %s):\n", report.tuple,
                relation.DimString(report.tuple, 0).c_str(),
                relation.DimString(report.tuple, 1).c_str());
    for (const RankedFact& fact : report.prominent) {
      std::printf("  %s\n", narrator.Narrate(report.tuple, fact).c_str());
    }
  }
  std::printf("\n== %llu alerts from %d records ==\n",
              static_cast<unsigned long long>(alerts), n);
  return 0;
}
