// Quickstart: the smallest end-to-end use of the library.
//
// We replay the paper's Table I mini-world of basketball box scores and ask,
// for each arriving stat line, in which (context, measure-subspace) pairs it
// is a contextual skyline tuple — i.e. which "situational facts" it creates.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "core/narrator.h"
#include "relation/relation.h"

using sitfact::ArrivalReport;
using sitfact::Direction;
using sitfact::DiscoveryEngine;
using sitfact::FactNarrator;
using sitfact::RankedFact;
using sitfact::Relation;
using sitfact::Row;
using sitfact::Schema;

int main() {
  // 1. Declare the schema: dimension attributes form contexts, measure
  //    attributes define dominance (with a preference direction each).
  Schema schema({{"player"}, {"month"}, {"season"}, {"team"}, {"opp_team"}},
                {{"points", Direction::kLargerIsBetter},
                 {"assists", Direction::kLargerIsBetter},
                 {"rebounds", Direction::kLargerIsBetter}});
  Relation relation(std::move(schema));

  // 2. Pick a discovery algorithm. STopDown is the paper's most
  //    memory-friendly fast variant; BottomUp trades memory for speed.
  auto discoverer =
      DiscoveryEngine::CreateDiscoverer("STopDown", &relation, {});
  if (!discoverer.ok()) {
    std::fprintf(stderr, "%s\n", discoverer.status().ToString().c_str());
    return 1;
  }

  // 3. Wrap it in an engine that also ranks facts by prominence.
  DiscoveryEngine::Config config;
  config.tau = 2.0;  // report facts that are at least 2x selective
  DiscoveryEngine engine(&relation, std::move(discoverer).value(), config);

  const Row games[] = {
      {{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, {4, 12, 5}},
      {{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, {24, 5, 15}},
      {{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, {13, 13, 5}},
      {{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, {2, 5, 2}},
      {{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, {3, 5, 3}},
      {{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"}, {27, 18, 8}},
      {{"Wesley", "Feb", "1995-96", "Celtics", "Nets"}, {12, 13, 5}},
  };

  FactNarrator narrator(&relation, relation.schema().DimensionIndex("player"));
  for (const Row& game : games) {
    ArrivalReport report = engine.Append(game);
    std::printf("tuple %u (%s): %zu facts, %zu prominent\n", report.tuple,
                relation.DimString(report.tuple, 0).c_str(),
                report.facts.size(), report.prominent.size());
    // On a 7-tuple toy table many facts tie at the top; print a few.
    size_t shown = 0;
    for (const RankedFact& fact : report.prominent) {
      if (++shown > 3) {
        std::printf("  ... and %zu more at the same prominence\n",
                    report.prominent.size() - 3);
        break;
      }
      std::printf("  NEWS: %s\n", narrator.Narrate(report.tuple, fact).c_str());
    }
  }
  return 0;
}
