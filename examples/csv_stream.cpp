// Stream any CSV through the discovery engine — the "bring your own data"
// entry point. The schema is declared on the command line: dimension columns
// by name, measure columns by name with an optional '-' prefix for
// smaller-is-better (e.g. fouls, latency, price-paid).
//
// Usage:
//   csv_stream FILE --dims d1,d2,... --measures m1,-m2,...
//     and optionally [--algo STopDown] [--tau 100] [--dhat 3] [--mhat 3]
//     [--top 5], all on one line.
//
// Example (after exporting a dataset):
//   ./build/examples/csv_stream games.csv --dims player,team,opp_team --measures points,rebounds,-turnovers
//
// Prints one line per arrival that produced prominent facts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/narrator.h"
#include "relation/dataset.h"

using namespace sitfact;

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE --dims a,b,... --measures x,-y,...\n"
               "          [--algo NAME] [--tau T] [--dhat D] [--mhat M] "
               "[--top K]\n"
               "  measure names prefixed with '-' are smaller-is-better\n"
               "  algorithms: BottomUp TopDown SBottomUp STopDown "
               "BaselineSeq BaselineIdx C-CSC\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string file = argv[1];
  std::string dims_arg, measures_arg, algo = "STopDown";
  double tau = 50.0;
  int dhat = -1, mhat = -1, top = 3;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--dims") == 0) {
      dims_arg = next("--dims");
    } else if (std::strcmp(argv[i], "--measures") == 0) {
      measures_arg = next("--measures");
    } else if (std::strcmp(argv[i], "--algo") == 0) {
      algo = next("--algo");
    } else if (std::strcmp(argv[i], "--tau") == 0) {
      tau = std::strtod(next("--tau"), nullptr);
    } else if (std::strcmp(argv[i], "--dhat") == 0) {
      dhat = std::atoi(next("--dhat"));
    } else if (std::strcmp(argv[i], "--mhat") == 0) {
      mhat = std::atoi(next("--mhat"));
    } else if (std::strcmp(argv[i], "--top") == 0) {
      top = std::atoi(next("--top"));
    } else {
      return Usage(argv[0]);
    }
  }
  if (dims_arg.empty() || measures_arg.empty()) return Usage(argv[0]);

  std::vector<DimensionAttribute> dims;
  for (const std::string& name : SplitCommas(dims_arg)) {
    dims.push_back({name});
  }
  std::vector<MeasureAttribute> measures;
  for (std::string name : SplitCommas(measures_arg)) {
    Direction dir = Direction::kLargerIsBetter;
    if (!name.empty() && name[0] == '-') {
      dir = Direction::kSmallerIsBetter;
      name = name.substr(1);
    }
    measures.push_back({name, dir});
  }
  auto schema = Schema::Create(std::move(dims), std::move(measures));
  if (!schema.ok()) {
    std::fprintf(stderr, "bad schema: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  // The CSV must carry the declared columns; extra columns are dropped by
  // projecting a wide read. For simplicity we require exact order here:
  // dimensions then measures, matching Dataset::WriteCsv output.
  auto data = Dataset::ReadCsv(file, Schema(schema.value()));
  if (!data.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", file.c_str(),
                 data.status().ToString().c_str());
    return 1;
  }

  Relation relation(std::move(schema).value());
  DiscoveryOptions options;
  options.max_bound_dims = dhat;
  options.max_measure_dims = mhat;
  auto disc = DiscoveryEngine::CreateDiscoverer(algo, &relation, options,
                                                "/tmp/sitfact_csv_store");
  if (!disc.ok()) {
    std::fprintf(stderr, "%s\n", disc.status().ToString().c_str());
    return 1;
  }
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = tau;
  config.rank_facts = disc.value()->store() != nullptr;
  DiscoveryEngine engine(&relation, std::move(disc).value(), config);

  FactNarrator narrator(&relation, /*entity_dim=*/0);
  uint64_t total_facts = 0, prominent_arrivals = 0;
  for (const Row& row : data.value().rows()) {
    ArrivalReport report = engine.Append(row);
    total_facts += report.facts.size();
    if (report.prominent.empty()) continue;
    ++prominent_arrivals;
    std::printf("row %u:\n", report.tuple);
    int shown = 0;
    for (const RankedFact& fact : report.prominent) {
      if (shown++ >= top) break;
      std::printf("  %s\n", narrator.Narrate(report.tuple, fact).c_str());
    }
  }
  std::printf(
      "\n%u rows, %llu facts total, %llu rows with prominent facts "
      "(tau=%.1f, algo=%s)\n",
      relation.size(), static_cast<unsigned long long>(total_facts),
      static_cast<unsigned long long>(prominent_arrivals), tau, algo.c_str());
  return 0;
}
