// Record tracker: single-measure ranking facts via core/promotion.h.
//
// The paper's case study quotes "Damon Stoudamire scored 54 points — the
// highest score in history made by any Trail Blazers". That is a rank-1
// statement on one measure within one context, which is promotion
// analysis (the paper's Table II row [10]) rather than a skyline fact.
// PromotionFinder discovers those incrementally: for every arriving box
// score, every context where the points total ranks top-k all-time.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/record_tracker

#include <cstdio>
#include <string>
#include <vector>

#include "core/promotion.h"
#include "datagen/nba_generator.h"
#include "relation/dataset.h"
#include "relation/relation.h"

using sitfact::Dataset;
using sitfact::NbaGenerator;
using sitfact::PromotionFinder;
using sitfact::Relation;
using sitfact::Row;
using sitfact::TupleId;

int main() {
  NbaGenerator::Config cfg;
  cfg.tuples_per_season = 500;
  Dataset data = NbaGenerator(cfg).Generate(4000);
  Relation relation(data.schema());

  const int points = data.schema().MeasureIndex("points");
  const int player_dim = data.schema().DimensionIndex("player");
  const int team_dim = data.schema().DimensionIndex("team");

  PromotionFinder::Options options;
  options.k = 1;               // outright records only
  options.max_bound_dims = 1;  // single-attribute contexts: team=, season=…
  PromotionFinder finder(&relation, points, options);

  int alerts = 0;
  std::vector<PromotionFinder::PromotionFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = relation.Append(row);
    facts.clear();
    finder.Discover(t, &facts);
    for (const auto& f : facts) {
      // Skip the trivial contexts: the whole league (too rare to be
      // trivial, keep it) — report team records with enough history, the
      // Stoudamire sentence shape.
      if (f.constraint.bound_mask() !=
          (sitfact::DimMask{1} << team_dim)) {
        continue;
      }
      if (f.context_size < 100 || f.tied > 1) continue;
      if (++alerts <= 10) {
        std::printf(
            "%s scored %g — the highest score in history made by any %s "
            "(%u games on record)\n",
            relation.DimString(t, player_dim).c_str(),
            relation.measure(t, points),
            relation.DimString(t, team_dim).c_str(), f.context_size);
      }
    }
  }
  std::printf("\n%d outright franchise scoring records in %zu box scores\n",
              alerts, data.rows().size());
  return 0;
}
