// Aggregate facts: the introduction's civic example — "There were 35 DUI
// arrests and 20 collisions in city C yesterday, the first time in 2013."
//
// That statement is not about one base record but about a (city, day)
// rollup. AggregateFactStream groups a base incident stream by city within
// explicit day boundaries, emits one aggregate row per city per day into a
// derived relation, and runs ordinary situational-fact discovery on those
// rollups: a day whose (dui_arrests, collisions) pair is undominated within
// its city's history is exactly the "first time" statement above.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/city_incidents

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/aggregate_facts.h"
#include "core/narrator.h"
#include "relation/schema.h"

using sitfact::AggregateFactStream;
using sitfact::Direction;
using sitfact::FactNarrator;
using sitfact::RankedFact;
using sitfact::Rng;
using sitfact::Row;
using sitfact::Schema;

int main() {
  // Base stream: one row per reported incident.
  Schema base({{"city"}, {"incident_type"}},
              {{"severity", Direction::kLargerIsBetter}});

  AggregateFactStream::Config config;
  config.group_dims = {0};  // rollups are per city
  config.period_name = "day";
  using Spec = AggregateFactStream::AggregateSpec;
  Spec dui;
  dui.kind = Spec::Kind::kCount;
  dui.name = "incidents";
  Spec worst;
  worst.kind = Spec::Kind::kMax;
  worst.measure_index = 0;
  worst.name = "worst_severity";
  config.aggregates = {dui, worst};
  config.tau = 20.0;  // only contexts with >= 20 rollup days can report
  config.options.max_bound_dims = 2;

  auto stream_or = AggregateFactStream::Create(base, config);
  if (!stream_or.ok()) {
    std::fprintf(stderr, "%s\n", stream_or.status().ToString().c_str());
    return 1;
  }
  AggregateFactStream& stream = *stream_or.value();
  FactNarrator narrator(&stream.rollup_relation(), /*entity_dim=*/0);

  const char* const kCities[] = {"Arlington", "Bellingham", "Clearwater"};
  Rng rng(2013);
  int prominent_days = 0;
  for (int day = 0; day < 120; ++day) {
    // Simulate a day of incidents: city loads drift, with occasional spikes.
    for (const char* city : kCities) {
      int base_load = 4 + static_cast<int>(rng.NextBounded(5));
      if (rng.NextBool(0.04)) base_load *= 3;  // a bad day
      for (int i = 0; i < base_load; ++i) {
        Row incident;
        incident.dimensions = {city, rng.NextBool(0.6) ? "dui" : "collision"};
        incident.measures = {1.0 + static_cast<double>(rng.NextBounded(9))};
        stream.Add(incident);
      }
    }
    auto arrivals = stream.ClosePeriod("2013-d" + std::to_string(day));
    for (const auto& arrival : arrivals) {
      if (arrival.report.prominent.empty()) continue;
      ++prominent_days;
      const RankedFact& top = arrival.report.prominent.front();
      std::printf("day %3d %-11s: %s\n", day,
                  arrival.row.dimensions[0].c_str(),
                  narrator.Narrate(arrival.report.tuple, top).c_str());
    }
  }
  std::printf("\n%d prominent city-day aggregate facts in 120 days\n",
              prominent_days);
  return 0;
}
