// The paper's Sec. VII case study as a newsroom pipeline: stream synthetic
// NBA box scores (d=5, m=7, d̂=3, m̂=3, τ=500 — the case study parameters)
// and print a news wire of prominent situational facts as they emerge, e.g.
//
//   "Jamal Porter #0712 (points=41, rebounds=12) is undominated on {points,
//    rebounds} among the 1513 tuples with team=Blazers — one of only 2 such
//    tuples (prominence 756.5)."
//
// Usage: nba_newsroom [num_tuples] [tau]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "core/narrator.h"
#include "datagen/nba_generator.h"

using namespace sitfact;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 20000;
  double tau = argc > 2 ? std::strtod(argv[2], nullptr) : 500.0;

  // The case study's spaces: d=5 (Table V), m=7 (Table VI).
  NbaGenerator::Config gen_cfg;
  gen_cfg.tuples_per_season = n > 8 ? n / 8 : 1;
  NbaGenerator generator(gen_cfg);
  Dataset full = generator.Generate(n);
  auto projected = full.Project(NbaGenerator::DimensionsForD(5),
                                NbaGenerator::MeasuresForM(7));
  if (!projected.ok()) {
    std::fprintf(stderr, "%s\n", projected.status().ToString().c_str());
    return 1;
  }
  Dataset data = std::move(projected).value();
  Relation relation(data.schema());

  DiscoveryOptions options;
  options.max_bound_dims = 3;
  options.max_measure_dims = 3;
  auto discoverer =
      DiscoveryEngine::CreateDiscoverer("SBottomUp", &relation, options);
  if (!discoverer.ok()) {
    std::fprintf(stderr, "%s\n", discoverer.status().ToString().c_str());
    return 1;
  }
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = tau;
  DiscoveryEngine engine(&relation, std::move(discoverer).value(), config);

  FactNarrator narrator(&relation, relation.schema().DimensionIndex("player"));
  uint64_t wire_items = 0;
  std::printf("== sitfact newsroom: %d box scores, tau=%.0f ==\n", n, tau);
  for (const Row& row : data.rows()) {
    ArrivalReport report = engine.Append(row);
    if (report.prominent.empty()) continue;
    // One wire item per arrival; list every fact tying the top prominence.
    ++wire_items;
    std::printf("\n[game %u] %s vs %s\n", report.tuple,
                relation.DimString(report.tuple, 3).c_str(),
                relation.DimString(report.tuple, 4).c_str());
    for (const RankedFact& fact : report.prominent) {
      std::printf("  %s\n", narrator.Narrate(report.tuple, fact).c_str());
    }
  }
  std::printf("\n== %llu wire items from %d games ==\n",
              static_cast<unsigned long long>(wire_items), n);
  return 0;
}
