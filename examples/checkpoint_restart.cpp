// Checkpoint/restart: surviving a process restart without replaying history.
//
// A discovery deployment watches an unbounded stream; this example streams
// the first half of a synthetic NBA season, snapshots the engine to disk,
// "crashes", restores from the snapshot in a fresh engine, and streams the
// second half. The facts found after the restore are identical to what an
// uninterrupted run reports — demonstrated by running both and diffing.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/checkpoint_restart

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/nba_generator.h"
#include "io/snapshot.h"
#include "relation/dataset.h"
#include "relation/relation.h"

using sitfact::ArrivalReport;
using sitfact::Dataset;
using sitfact::DiscoveryEngine;
using sitfact::DiscoveryOptions;
using sitfact::LoadEngineSnapshot;
using sitfact::NbaGenerator;
using sitfact::Relation;
using sitfact::RestoredEngine;
using sitfact::Row;
using sitfact::SaveEngineSnapshot;
using sitfact::SkylineFact;
using sitfact::Status;

namespace {

DiscoveryEngine MakeEngine(Relation* relation) {
  DiscoveryOptions options;
  options.max_bound_dims = 3;
  auto disc = DiscoveryEngine::CreateDiscoverer("STopDown", relation, options);
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = 8.0;
  return DiscoveryEngine(relation, std::move(disc).value(), config);
}

}  // namespace

int main() {
  const std::string snap_path =
      (std::filesystem::temp_directory_path() / "sitfact_checkpoint.snap")
          .string();

  NbaGenerator::Config gen_cfg;
  gen_cfg.tuples_per_season = 150;
  Dataset data = NbaGenerator(gen_cfg).Generate(600);
  const size_t cut = 300;

  // Reference: one uninterrupted run.
  Relation ref_relation(data.schema());
  DiscoveryEngine ref_engine = MakeEngine(&ref_relation);
  std::vector<size_t> ref_fact_counts;
  for (const Row& row : data.rows()) {
    ref_fact_counts.push_back(ref_engine.Append(row).facts.size());
  }

  // Phase 1: stream half the season, checkpoint, and let the engine die.
  {
    Relation relation(data.schema());
    DiscoveryEngine engine = MakeEngine(&relation);
    for (size_t i = 0; i < cut; ++i) engine.Append(data.rows()[i]);
    Status saved = SaveEngineSnapshot(engine, snap_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed after %zu arrivals -> %s (%ju bytes)\n", cut,
                snap_path.c_str(),
                static_cast<uintmax_t>(
                    std::filesystem::file_size(snap_path)));
  }  // engine and relation destroyed: the "crash"

  // Phase 2: restore and continue. The restored engine must behave exactly
  // like the uninterrupted one.
  auto restored_or = LoadEngineSnapshot(snap_path);
  if (!restored_or.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored_or.status().ToString().c_str());
    return 1;
  }
  RestoredEngine restored = std::move(restored_or).value();
  std::printf("restored %s engine with %u tuples\n",
              std::string(restored.engine->discoverer().name()).c_str(),
              restored.relation->size());

  size_t mismatches = 0;
  for (size_t i = cut; i < data.rows().size(); ++i) {
    ArrivalReport report = restored.engine->Append(data.rows()[i]);
    if (report.facts.size() != ref_fact_counts[i]) ++mismatches;
  }
  std::printf("streamed %zu post-restore arrivals: %zu mismatches vs the "
              "uninterrupted run\n",
              data.rows().size() - cut, mismatches);

  std::filesystem::remove(snap_path);
  return mismatches == 0 ? 0 : 1;
}
