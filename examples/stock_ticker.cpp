// The introduction's finance example: "Stock A becomes the first stock in
// history with price over $300 and market cap over $400 billion." We stream
// synthetic daily quotes and report stocks whose (price, market cap, volume)
// vector enters a contextual skyline — firsts for their sector, exchange, or
// the whole market.
//
// Also demonstrates driving the library without the DiscoveryEngine facade:
// manual relation, discoverer, counter, and prominence evaluator, which is
// the integration surface a trading system with its own event loop would
// use.
//
// Usage: stock_ticker [num_quotes]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/bottom_up.h"
#include "core/narrator.h"
#include "core/prominence.h"
#include "storage/context_counter.h"

using namespace sitfact;

namespace {

struct Market {
  std::vector<std::string> tickers;
  std::vector<int> sector;        // per ticker
  std::vector<int> exchange;      // per ticker
  std::vector<double> price;      // random-walk state
  std::vector<double> shares;     // millions, fixed
};

Market MakeMarket(Rng* rng, int num_stocks) {
  Market m;
  for (int i = 0; i < num_stocks; ++i) {
    m.tickers.push_back("TCK" + std::to_string(100 + i));
    m.sector.push_back(static_cast<int>(rng->NextBounded(8)));
    m.exchange.push_back(static_cast<int>(rng->NextBounded(3)));
    m.price.push_back(20.0 + rng->NextDouble() * 180.0);
    m.shares.push_back(100.0 + rng->NextDouble() * 4000.0);
  }
  return m;
}

const char* kSectors[] = {"tech",      "energy",    "finance", "health",
                          "utilities", "materials", "retail",  "transport"};
const char* kExchanges[] = {"NYSE", "NASDAQ", "LSE"};

}  // namespace

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 30000;
  Rng rng(8675309);
  Market market = MakeMarket(&rng, 120);

  Schema schema({{"ticker"}, {"sector"}, {"exchange"}, {"quarter"}},
                {{"price", Direction::kLargerIsBetter},
                 {"market_cap", Direction::kLargerIsBetter},
                 {"volume", Direction::kLargerIsBetter}});
  Relation relation(std::move(schema));

  DiscoveryOptions options;
  options.max_bound_dims = 2;
  options.max_measure_dims = 2;
  BottomUpDiscoverer discoverer(&relation, options);
  ContextCounter counter(options.max_bound_dims);
  ProminenceEvaluator prominence(&relation, &counter,
                                 discoverer.mutable_store(),
                                 StoragePolicy::kAllSkylineConstraints);
  FactNarrator narrator(&relation, relation.schema().DimensionIndex("ticker"));

  const double tau = 300.0;
  uint64_t headlines = 0;
  std::vector<SkylineFact> facts;
  for (int day = 0; day < n; ++day) {
    int s = static_cast<int>(rng.NextBounded(market.tickers.size()));
    // Geometric random walk with occasional jumps.
    double shock = rng.NextBool(0.02) ? 1.0 + 0.2 * rng.NextGaussian() : 1.0;
    market.price[s] *= shock * std::max(0.5, 1.0 + 0.02 * rng.NextGaussian());
    double volume = 1e5 * (1.0 + 30.0 * rng.NextDouble());

    Row quote;
    quote.dimensions = {market.tickers[s], kSectors[market.sector[s]],
                        kExchanges[market.exchange[s]],
                        "Q" + std::to_string(1 + (day * 16 / n) % 4)};
    quote.measures = {market.price[s],
                      market.price[s] * market.shares[s] / 1000.0,  // $B
                      volume};
    TupleId t = relation.Append(quote);
    counter.OnArrival(relation, t);
    facts.clear();
    discoverer.Discover(t, &facts);
    if (facts.empty()) continue;

    auto ranked = prominence.RankAll(facts);
    auto prominent = SelectProminent(ranked, tau);
    if (prominent.empty()) continue;
    ++headlines;
    if (headlines <= 40) {  // keep the demo output readable
      std::printf("HEADLINE day %d: %s\n", day,
                  narrator.Narrate(t, prominent.front()).c_str());
    }
  }
  std::printf("\n== %llu headlines from %d quotes ==\n",
              static_cast<unsigned long long>(headlines), n);
  std::printf("discovery stats: %llu comparisons, %llu constraint visits\n",
              static_cast<unsigned long long>(discoverer.stats().comparisons),
              static_cast<unsigned long long>(
                  discoverer.stats().constraints_traversed));
  return 0;
}
