// Newsroom dashboard: concurrent query serving over a live stream.
//
// The deployment shape of the paper's computational-journalism pitch: box
// scores stream in through FactFeed (whose worker owns the discovery
// engine), a FactService maintains a snapshot-isolated index of every
// discovered fact, and "dashboard" readers query it concurrently —
// standings top-k, per-player lookups, a what-just-happened window — while
// ingestion never pauses. Readers pin an epoch, so a page they render is
// internally consistent no matter how many arrivals land mid-render.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/newsroom_dashboard

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "datagen/nba_generator.h"
#include "relation/dataset.h"
#include "service/fact_feed.h"
#include "service/fact_service.h"

using sitfact::Constraint;
using sitfact::Dataset;
using sitfact::DiscoveryEngine;
using sitfact::DiscoveryOptions;
using sitfact::FactFeed;
using sitfact::FactFilter;
using sitfact::FactService;
using sitfact::NbaGenerator;
using sitfact::Relation;
using sitfact::Row;
using sitfact::TupleId;

int main() {
  NbaGenerator::Config gen_cfg;
  gen_cfg.tuples_per_season = 400;
  Dataset data = NbaGenerator(gen_cfg).Generate(2500);

  Relation relation(data.schema());
  DiscoveryOptions options;
  options.max_bound_dims = 2;
  options.max_measure_dims = 2;
  auto disc =
      DiscoveryEngine::CreateDiscoverer("STopDown", &relation, options);
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = 5.0;
  DiscoveryEngine engine(&relation, std::move(disc).value(), config);

  FactService::Options service_options;
  service_options.entity = "player";
  FactService service(&relation, service_options);

  FactFeed::Options feed_options;
  feed_options.fact_service = &service;
  FactFeed feed(&engine, nullptr, feed_options);

  // The wire scraper: pushes box scores as games end.
  std::thread scraper([&] {
    for (const Row& row : data.rows()) {
      if (!feed.Publish(row)) break;
    }
  });

  // The dashboard: refreshes the front page while the stream runs. Each
  // refresh pins one epoch; every number on the "page" is consistent.
  uint64_t refreshes = 0;
  uint64_t last_epoch = 0;
  bool epochs_monotone = true;
  while (feed.processed() < data.rows().size()) {
    FactService::Snapshot snap = feed.Query();
    epochs_monotone &= snap.epoch() >= last_epoch;
    last_epoch = snap.epoch();
    ++refreshes;
    if (refreshes % 20 == 1) {
      std::printf("-- refresh %llu (epoch %llu, %zu facts, %llu arrivals)\n",
                  static_cast<unsigned long long>(refreshes),
                  static_cast<unsigned long long>(snap.epoch()),
                  snap.fact_count(),
                  static_cast<unsigned long long>(snap.arrivals()));
      FactService::Page top = snap.TopK(3);
      for (const auto& view : top.facts) {
        std::printf("   %s\n", snap.Explain(view).c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  scraper.join();
  feed.Drain();
  feed.Stop();

  // Post-game queries against the final epoch.
  service.Flush();
  FactService::Snapshot snap = service.Acquire();
  std::printf("\n== final front page (epoch %llu, %zu facts) ==\n",
              static_cast<unsigned long long>(snap.epoch()),
              snap.fact_count());
  FactService::Page top = snap.TopK(5);
  for (const auto& view : top.facts) {
    std::printf("  %s\n", snap.Explain(view).c_str());
  }

  // "What is prominent about this player?" — the paper's standing query,
  // via the subsumption filter on the top fact's entity binding.
  if (!top.facts.empty()) {
    const TupleId star = top.facts[0].tuple;
    Constraint about = Constraint::ForTuple(
        relation, star, /*bound=*/sitfact::DimMask{1} << 0);  // player dim
    FactService::Page about_page = snap.About(about, 3);
    std::printf("\n== about %s ==\n",
                relation.DimString(star, 0).c_str());
    for (const auto& view : about_page.facts) {
      std::printf("  %s\n", snap.Explain(view).c_str());
    }
  }

  // "What just happened?" — the last 300 arrivals, prominent facts only.
  FactFilter recent;
  recent.min_arrival = snap.arrivals() > 300 ? snap.arrivals() - 300 : 0;
  recent.prominent_only = true;
  FactService::Page late = snap.FactsInWindow(
      recent.min_arrival, snap.arrivals() - 1, recent, snap.fact_count() + 1);
  std::printf("\n== last 300 arrivals: %zu prominent facts ==\n",
              late.facts.size());

  const bool ok = feed.processed() == data.rows().size() &&
                  snap.arrivals() == data.rows().size() &&
                  snap.fact_count() > 0 && epochs_monotone;
  std::printf("\n%s: %llu rows ingested, %llu dashboard refreshes, epochs "
              "%s\n",
              ok ? "OK" : "FAILED",
              static_cast<unsigned long long>(feed.processed()),
              static_cast<unsigned long long>(refreshes),
              epochs_monotone ? "monotone" : "NOT monotone");
  return ok ? 0 : 1;
}
