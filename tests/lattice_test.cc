// Unit and property tests for the constraint-lattice machinery: Constraint
// semantics (Defs. 1, 4-8), Algorithm 1 enumeration, pruner sets (Prop. 3),
// and the subspace universe.

#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "lattice/constraint.h"
#include "lattice/constraint_enumerator.h"
#include "lattice/pruner_set.h"
#include "lattice/subspace_universe.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::PaperTableIV;

class ConstraintTest : public ::testing::Test {
 protected:
  ConstraintTest() : data_(PaperTableIV()), relation_(data_.schema()) {
    for (const Row& row : data_.rows()) relation_.Append(row);
  }
  Dataset data_;
  Relation relation_;
};

TEST_F(ConstraintTest, ForTupleBindsValues) {
  Constraint c = Constraint::ForTuple(relation_, 4, 0b101);  // <a1, *, c1>
  EXPECT_EQ(c.bound_mask(), 0b101u);
  EXPECT_EQ(c.BoundCount(), 2);
  EXPECT_TRUE(c.IsBound(0));
  EXPECT_FALSE(c.IsBound(1));
  EXPECT_EQ(c.value(1), kUnboundValue);
  EXPECT_EQ(c.ToString(relation_), "<a1, *, c1>");
  EXPECT_EQ(c.ToPredicateString(relation_), "d1=a1 ∧ d3=c1");
}

TEST_F(ConstraintTest, TopSatisfiedByEverything) {
  Constraint top = Constraint::Top(3);
  EXPECT_EQ(top.BoundCount(), 0);
  for (TupleId t = 0; t < relation_.size(); ++t) {
    EXPECT_TRUE(top.SatisfiedBy(relation_, t));
  }
  EXPECT_EQ(top.ToPredicateString(relation_), "(no constraint)");
}

TEST_F(ConstraintTest, SatisfactionMatchesDefinition4) {
  Constraint c = Constraint::ForTuple(relation_, 4, 0b011);  // <a1, b1, *>
  EXPECT_TRUE(c.SatisfiedBy(relation_, 1));   // t2 = (a1, b1, c1)
  EXPECT_TRUE(c.SatisfiedBy(relation_, 4));   // t5 itself
  EXPECT_FALSE(c.SatisfiedBy(relation_, 0));  // t1 = (a1, b2, c2)
  EXPECT_FALSE(c.SatisfiedBy(relation_, 3));  // t4 = (a2, b1, c1)
}

TEST_F(ConstraintTest, RestrictBuildsAncestors) {
  Constraint c = Constraint::ForTuple(relation_, 4, 0b111);
  Constraint anc = c.Restrict(0b101);
  EXPECT_EQ(anc, Constraint::ForTuple(relation_, 4, 0b101));
  EXPECT_TRUE(c.SubsumedBy(anc));
  // Restrict with bits outside the bound mask only keeps the intersection.
  EXPECT_EQ(c.Restrict(0b1101).bound_mask(), 0b101u);
  // Restrict to everything is identity.
  EXPECT_EQ(c.Restrict(0b111), c);
}

TEST_F(ConstraintTest, SubsumptionIsPartialOrder) {
  std::vector<Constraint> all;
  for (DimMask m = 0; m <= 0b111u; ++m) {
    all.push_back(Constraint::ForTuple(relation_, 4, m));
  }
  for (const auto& a : all) {
    EXPECT_TRUE(a.SubsumedByOrEqual(a));  // reflexive
    for (const auto& b : all) {
      if (a.SubsumedByOrEqual(b) && b.SubsumedByOrEqual(a)) {
        EXPECT_EQ(a, b);  // antisymmetric
      }
      for (const auto& c : all) {
        if (a.SubsumedByOrEqual(b) && b.SubsumedByOrEqual(c)) {
          EXPECT_TRUE(a.SubsumedByOrEqual(c));  // transitive
        }
      }
    }
  }
}

TEST_F(ConstraintTest, SubsumptionRequiresMatchingValues) {
  // <a1,*,*> (from t5) does not subsume <a2,b1,*> (from t4).
  Constraint a1 = Constraint::ForTuple(relation_, 4, 0b001);
  Constraint a2b1 = Constraint::ForTuple(relation_, 3, 0b011);
  EXPECT_FALSE(a2b1.SubsumedByOrEqual(a1));
  // But <a2,b1,*> IS subsumed by <a2,*,*>.
  Constraint a2 = Constraint::ForTuple(relation_, 3, 0b001);
  EXPECT_TRUE(a2b1.SubsumedBy(a2));
}

TEST_F(ConstraintTest, HashAndEqualityAgree) {
  std::unordered_set<Constraint, ConstraintHash> set;
  for (TupleId t = 0; t < relation_.size(); ++t) {
    for (DimMask m = 0; m <= 0b111u; ++m) {
      set.insert(Constraint::ForTuple(relation_, t, m));
    }
  }
  // t2 and t5 share all dimension values; t1..t5 span 3 distinct dim rows
  // plus shared sub-constraints. Just assert: re-inserting changes nothing
  // and lookups succeed.
  size_t size = set.size();
  for (TupleId t = 0; t < relation_.size(); ++t) {
    for (DimMask m = 0; m <= 0b111u; ++m) {
      EXPECT_TRUE(set.count(Constraint::ForTuple(relation_, t, m)) == 1);
    }
  }
  set.insert(Constraint::ForTuple(relation_, 1, 0b111));
  EXPECT_EQ(set.size(), size);
}

// ---------------------------------------------------------------------------
// Algorithm 1.

TEST(ConstraintEnumerator, Alg1EnumeratesAllMasksExactlyOnce) {
  for (int d = 1; d <= 6; ++d) {
    auto masks = EnumerateTupleConstraints(d, d);
    EXPECT_EQ(masks.size(), size_t{1} << d) << "d=" << d;
    std::set<DimMask> unique(masks.begin(), masks.end());
    EXPECT_EQ(unique.size(), masks.size()) << "duplicate masks at d=" << d;
    EXPECT_EQ(masks.front(), 0u) << "must start at ⊤";
  }
}

TEST(ConstraintEnumerator, Alg1HonorsMaxBound) {
  auto masks = EnumerateTupleConstraints(5, 2);
  size_t expected = 1 + 5 + 10;  // C(5,0) + C(5,1) + C(5,2)
  EXPECT_EQ(masks.size(), expected);
  for (DimMask m : masks) EXPECT_LE(PopCount(m), 2);
}

TEST(ConstraintEnumerator, SortedOrdersAreLevelMonotone) {
  auto asc = MasksByAscendingBound(4, 4);
  auto desc = MasksByDescendingBound(4, 4);
  EXPECT_EQ(asc.size(), 16u);
  EXPECT_EQ(desc.size(), 16u);
  for (size_t i = 1; i < asc.size(); ++i) {
    EXPECT_LE(PopCount(asc[i - 1]), PopCount(asc[i]));
    EXPECT_GE(PopCount(desc[i - 1]), PopCount(desc[i]));
  }
  // Same contents.
  auto a = asc, d = desc;
  std::sort(a.begin(), a.end());
  std::sort(d.begin(), d.end());
  EXPECT_EQ(a, d);
}

// ---------------------------------------------------------------------------
// PrunerSet.

TEST(PrunerSet, PrunesSubsetsOnly) {
  PrunerSet p;
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.IsPruned(0b000));  // nothing pruned yet, not even ⊤
  p.Add(0b011);
  EXPECT_TRUE(p.IsPruned(0b000));
  EXPECT_TRUE(p.IsPruned(0b001));
  EXPECT_TRUE(p.IsPruned(0b011));
  EXPECT_FALSE(p.IsPruned(0b100));
  EXPECT_FALSE(p.IsPruned(0b111));
}

TEST(PrunerSet, KeepsMaximalAntichain) {
  PrunerSet p;
  p.Add(0b001);
  p.Add(0b011);  // absorbs 0b001
  EXPECT_EQ(p.pruners().size(), 1u);
  EXPECT_EQ(p.pruners()[0], 0b011u);
  p.Add(0b001);  // already covered
  EXPECT_EQ(p.pruners().size(), 1u);
  p.Add(0b100);  // incomparable
  EXPECT_EQ(p.pruners().size(), 2u);
  p.Add(0b111);  // absorbs both
  EXPECT_EQ(p.pruners().size(), 1u);
  EXPECT_EQ(p.pruners()[0], 0b111u);
}

TEST(PrunerSet, RandomizedAgainstNaive) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    PrunerSet p;
    std::vector<DimMask> added;
    for (int i = 0; i < 12; ++i) {
      DimMask m = static_cast<DimMask>(rng.NextBounded(64));
      p.Add(m);
      added.push_back(m);
    }
    for (DimMask q = 0; q < 64; ++q) {
      bool naive = false;
      for (DimMask a : added) {
        if (IsSubsetOf(q, a)) naive = true;
      }
      ASSERT_EQ(p.IsPruned(q), naive) << "trial " << trial << " q=" << q;
    }
    // The stored pruners must form an antichain.
    for (size_t i = 0; i < p.pruners().size(); ++i) {
      for (size_t j = 0; j < p.pruners().size(); ++j) {
        if (i != j) {
          EXPECT_FALSE(IsSubsetOf(p.pruners()[i], p.pruners()[j]));
        }
      }
    }
  }
}

TEST(PrunerSet, ClearForgetsEverything) {
  PrunerSet p;
  p.Add(0b111);
  p.Clear();
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.IsPruned(0b001));
}

// ---------------------------------------------------------------------------
// SubspaceUniverse.

TEST(SubspaceUniverse, EnumeratesNonEmptySubspaces) {
  SubspaceUniverse u(3, 3);
  EXPECT_EQ(u.size(), 7);
  EXPECT_EQ(u.full_mask(), 0b111u);
  EXPECT_TRUE(u.FullSpaceAdmissible());
  EXPECT_EQ(u.masks().front(), 0b111u);  // descending size: full space first
  for (MeasureMask m : u.masks()) EXPECT_NE(m, 0u);
}

TEST(SubspaceUniverse, HonorsMaxSize) {
  SubspaceUniverse u(4, 2);
  EXPECT_EQ(u.size(), 4 + 6);  // C(4,1) + C(4,2)
  EXPECT_FALSE(u.FullSpaceAdmissible());
  EXPECT_EQ(u.IndexOf(0b1111), -1);
  EXPECT_GE(u.IndexOf(0b0011), 0);
  for (size_t i = 1; i < u.masks().size(); ++i) {
    EXPECT_GE(PopCount(u.masks()[i - 1]), PopCount(u.masks()[i]));
  }
}

TEST(SubspaceUniverse, DenseIndexRoundTrips) {
  SubspaceUniverse u(5, 3);
  for (int i = 0; i < u.size(); ++i) {
    EXPECT_EQ(u.IndexOf(u.masks()[i]), i);
  }
  EXPECT_EQ(u.IndexOf(0), -1);
}

}  // namespace
}  // namespace sitfact
