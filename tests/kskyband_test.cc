// Tests for the incremental k-skyband discoverer (core/kskyband.h): the
// agreement-mask zeta transform against quadratic oracles, the k=1 /
// skyline-fact correspondence, and the d̂ / m̂ truncation.

#include "core/kskyband.h"

#include <algorithm>
#include <set>
#include <vector>

#include "core/engine.h"
#include "query/skyline_query.h"
#include "skyline/skyline_compute.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::PaperTableI;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

using FactKey = std::pair<std::pair<DimMask, MeasureMask>, uint32_t>;

/// Streams `data`, returning each arrival's facts as (mask, subspace) ->
/// dominator count, verified against a per-(C, M) quadratic recount.
void VerifyStreamAgainstOracle(const Dataset& data, int k, int dhat,
                               int mhat) {
  Relation r(data.schema());
  KSkybandDiscoverer::Options options;
  options.k = k;
  options.max_bound_dims = dhat;
  options.max_measure_dims = mhat;
  KSkybandDiscoverer disc(&r, options);
  SkylineQueryEngine oracle(&r);

  const int resolved_dhat =
      dhat < 0 ? data.schema().num_dimensions() : dhat;
  SubspaceUniverse universe(data.schema().num_measures(),
                            mhat < 0 ? data.schema().num_measures() : mhat);

  std::vector<KSkybandFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = r.Append(row);
    facts.clear();
    disc.Discover(t, &facts);

    // Oracle: for every admissible (C, M), count dominators directly.
    std::set<std::pair<DimMask, MeasureMask>> reported;
    for (const auto& f : facts) {
      reported.insert({f.fact.constraint.bound_mask(), f.fact.subspace});
    }
    DimMask full = FullMask(r.schema().num_dimensions());
    for (DimMask mask = 0; mask <= full; ++mask) {
      if (PopCount(mask) > resolved_dhat) continue;
      Constraint c = Constraint::ForTuple(r, t, mask);
      std::vector<TupleId> context = SelectContext(r, c, r.size());
      for (MeasureMask m : universe.masks()) {
        uint64_t dominators = oracle.CountDominators(t, context, m);
        bool expected = dominators < static_cast<uint64_t>(k);
        bool actual = reported.count({mask, m}) > 0;
        ASSERT_EQ(expected, actual)
            << "t=" << t << " mask=" << mask << " m=" << m
            << " dominators=" << dominators;
        ASSERT_EQ(disc.LastDominatorCount(mask, m), dominators)
            << "t=" << t << " mask=" << mask << " m=" << m;
        ASSERT_EQ(disc.LastContextSize(mask), context.size())
            << "t=" << t << " mask=" << mask;
      }
    }
  }
}

TEST(KSkybandDiscoverer, OracleAgreementPaperTableI) {
  VerifyStreamAgainstOracle(PaperTableI(), /*k=*/2, /*dhat=*/-1, /*mhat=*/-1);
}

struct KParam {
  int k;
  int dhat;
  int mhat;
  uint64_t seed;
};

class KSkybandSweep : public ::testing::TestWithParam<KParam> {};

TEST_P(KSkybandSweep, OracleAgreementRandom) {
  RandomDataConfig cfg;
  cfg.num_tuples = 50;
  cfg.num_dims = 3;
  cfg.num_measures = 3;
  cfg.seed = GetParam().seed;
  cfg.mixed_directions = (GetParam().seed % 2 == 0);
  VerifyStreamAgainstOracle(RandomDataset(cfg), GetParam().k,
                            GetParam().dhat, GetParam().mhat);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KSkybandSweep,
    ::testing::Values(KParam{1, -1, -1, 11}, KParam{2, -1, -1, 12},
                      KParam{3, 2, -1, 13}, KParam{2, -1, 2, 14},
                      KParam{4, 1, 1, 15}, KParam{1, 2, 2, 16}));

TEST(KSkybandDiscoverer, K1MatchesSkylineFactDiscovery) {
  // With k=1, a (C, M) fact means zero dominators — exactly the paper's
  // contextual-skyline membership. Cross-check against STopDown.
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.seed = 77;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  Dataset data = RandomDataset(cfg);

  Relation r_band(data.schema());
  KSkybandDiscoverer::Options options;
  options.k = 1;
  KSkybandDiscoverer band(&r_band, options);

  Relation r_sky(data.schema());
  auto sky_or = DiscoveryEngine::CreateDiscoverer("STopDown", &r_sky, {});
  ASSERT_TRUE(sky_or.ok());
  auto sky = std::move(sky_or).value();

  std::vector<KSkybandFact> band_facts;
  std::vector<SkylineFact> sky_facts;
  for (const Row& row : data.rows()) {
    TupleId t1 = r_band.Append(row);
    TupleId t2 = r_sky.Append(row);
    ASSERT_EQ(t1, t2);
    band_facts.clear();
    sky_facts.clear();
    band.Discover(t1, &band_facts);
    sky->Discover(t2, &sky_facts);

    std::set<std::pair<DimMask, MeasureMask>> band_set;
    for (const auto& f : band_facts) {
      EXPECT_EQ(f.dominators, 0u);
      band_set.insert({f.fact.constraint.bound_mask(), f.fact.subspace});
    }
    std::set<std::pair<DimMask, MeasureMask>> sky_set;
    for (const auto& f : sky_facts) {
      sky_set.insert({f.constraint.bound_mask(), f.subspace});
    }
    ASSERT_EQ(band_set, sky_set) << "tuple " << t1;
  }
}

TEST(KSkybandDiscoverer, LargerKIsSuperset) {
  RandomDataConfig cfg;
  cfg.num_tuples = 40;
  cfg.seed = 5;
  Dataset data = RandomDataset(cfg);

  Relation r1(data.schema());
  Relation r3(data.schema());
  KSkybandDiscoverer::Options o1;
  o1.k = 1;
  KSkybandDiscoverer::Options o3;
  o3.k = 3;
  KSkybandDiscoverer d1(&r1, o1);
  KSkybandDiscoverer d3(&r3, o3);

  std::vector<KSkybandFact> f1, f3;
  for (const Row& row : data.rows()) {
    TupleId t = r1.Append(row);
    r3.Append(row);
    f1.clear();
    f3.clear();
    d1.Discover(t, &f1);
    d3.Discover(t, &f3);
    ASSERT_GE(f3.size(), f1.size());
    std::set<std::pair<DimMask, MeasureMask>> set3;
    for (const auto& f : f3) {
      set3.insert({f.fact.constraint.bound_mask(), f.fact.subspace});
    }
    for (const auto& f : f1) {
      ASSERT_TRUE(
          set3.count({f.fact.constraint.bound_mask(), f.fact.subspace}))
          << "k=1 fact missing from k=3 at tuple " << t;
    }
  }
}

TEST(KSkybandDiscoverer, SkipsDeletedHistory) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  for (size_t i = 0; i + 1 < data.rows().size(); ++i) {
    r.Append(data.rows()[i]);
  }
  // Tombstone t6 (Strickland, the only tuple dominating t7 in full space
  // among its month=Feb contexts... actually t3 and t6 dominate t7 in M).
  r.MarkDeleted(5);
  TupleId t7 = r.Append(data.rows().back());

  KSkybandDiscoverer::Options options;
  options.k = 1;
  KSkybandDiscoverer disc(&r, options);
  std::vector<KSkybandFact> facts;
  disc.Discover(t7, &facts);

  // season=1995-96 context: with t6 deleted, t7 is alone there, hence a
  // zero-dominator fact on the full measure space must exist.
  bool found = false;
  for (const auto& f : facts) {
    if (f.fact.subspace == 0b111 &&
        f.fact.constraint.ToPredicateString(r) == "season=1995-96") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(KSkybandDiscoverer, StatsAccumulate) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  KSkybandDiscoverer disc(&r, {});
  std::vector<KSkybandFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = r.Append(row);
    disc.Discover(t, &facts);
  }
  EXPECT_EQ(disc.stats().arrivals, data.rows().size());
  // Each arrival compares against all previous tuples once.
  EXPECT_EQ(disc.stats().comparisons,
            data.rows().size() * (data.rows().size() - 1) / 2);
}

TEST(KSkybandDiscoverer, RejectsZeroK) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  KSkybandDiscoverer::Options options;
  options.k = 0;
  EXPECT_DEATH(KSkybandDiscoverer(&r, options), "k >= 1");
}

}  // namespace
}  // namespace sitfact
