// Batched-vs-scalar dominance kernel contract (ISSUE 5 satellite): the
// kernels of skyline/dominance_batch.h must agree bit-for-bit with
// Relation::Partition / AgreeMask on every input, including the edge cases
// that historically bite dominance code — all-equal tuples, NaN measures
// (which must set neither bit), single-bit subspace masks, and block-size
// boundaries where a batch splits.

#include <cmath>
#include <limits>
#include <vector>

#include "common/bits.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "relation/relation.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"
#include "skyline/dominance_simd.h"
#include "skyline/skyline_compute.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Schema MixedSchema() {
  return Schema({{"d0"}, {"d1"}, {"d2"}},
                {{"m0", Direction::kLargerIsBetter},
                 {"m1", Direction::kSmallerIsBetter},
                 {"m2", Direction::kLargerIsBetter},
                 {"m3", Direction::kSmallerIsBetter}});
}

/// Random relation with heavy ties, occasional NaN, mixed directions.
Relation RandomRelation(int n, uint64_t seed, double nan_prob) {
  Relation r(MixedSchema());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Row row;
    for (int d = 0; d < 3; ++d) {
      row.dimensions.push_back("v" + std::to_string(rng.NextBounded(3)));
    }
    for (int j = 0; j < 4; ++j) {
      if (nan_prob > 0 && rng.NextBool(nan_prob)) {
        row.measures.push_back(kNaN);
      } else {
        row.measures.push_back(static_cast<double>(rng.NextBounded(5)));
      }
    }
    r.Append(row);
  }
  return r;
}

void ExpectPartitionsEqual(const Relation::MeasurePartition& want,
                           const Relation::MeasurePartition& got,
                           const std::string& what) {
  EXPECT_EQ(want.worse, got.worse) << what;
  EXPECT_EQ(want.better, got.better) << what;
}

TEST(DominanceBatchTest, MatchesScalarPartitionOnRandomData) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Relation r = RandomRelation(300, seed, /*nan_prob=*/0.0);
    Rng rng(seed + 100);
    std::vector<TupleId> ids;
    for (TupleId i = 0; i < r.size(); ++i) ids.push_back(i);
    std::vector<Relation::MeasurePartition> parts(r.size());
    for (int probe_trial = 0; probe_trial < 10; ++probe_trial) {
      TupleId t = static_cast<TupleId>(rng.NextBounded(r.size()));
      PartitionBatch(r, t, ids.data(), ids.size(), parts.data());
      for (TupleId o = 0; o < r.size(); ++o) {
        ExpectPartitionsEqual(r.Partition(t, o), parts[o], "batch");
      }
      PartitionRange(r, t, 0, r.size(), parts.data());
      for (TupleId o = 0; o < r.size(); ++o) {
        ExpectPartitionsEqual(r.Partition(t, o), parts[o], "range");
      }
    }
  }
}

TEST(DominanceBatchTest, MaskedVariantsRestrictToMask) {
  Relation r = RandomRelation(200, 7, /*nan_prob=*/0.05);
  std::vector<TupleId> ids;
  for (TupleId i = 0; i < r.size(); ++i) ids.push_back(i);
  std::vector<Relation::MeasurePartition> parts(r.size());
  MeasureMask full = r.schema().FullMeasureMask();
  for (MeasureMask m = 0; m <= full; ++m) {
    TupleId t = m % r.size();
    PartitionBatchMasked(r, t, ids.data(), ids.size(), m, parts.data());
    for (TupleId o = 0; o < r.size(); ++o) {
      Relation::MeasurePartition want = r.Partition(t, o);
      EXPECT_EQ(want.worse & m, parts[o].worse) << "m=" << m;
      EXPECT_EQ(want.better & m, parts[o].better) << "m=" << m;
      // Nothing outside the mask may leak into the output.
      EXPECT_EQ(parts[o].worse & ~m, 0u);
      EXPECT_EQ(parts[o].better & ~m, 0u);
    }
    PartitionRangeMasked(r, t, 0, r.size(), m, parts.data());
    for (TupleId o = 0; o < r.size(); ++o) {
      Relation::MeasurePartition want = r.Partition(t, o);
      EXPECT_EQ(want.worse & m, parts[o].worse);
      EXPECT_EQ(want.better & m, parts[o].better);
    }
  }
}

TEST(DominanceBatchTest, SingleBitMasksMatchScalarDominates) {
  Relation r = RandomRelation(150, 11, /*nan_prob=*/0.1);
  std::vector<Relation::MeasurePartition> parts(r.size());
  for (int j = 0; j < r.schema().num_measures(); ++j) {
    MeasureMask m = 1u << j;
    for (TupleId t : {TupleId{0}, TupleId{73}, TupleId{149}}) {
      PartitionRangeMasked(r, t, 0, r.size(), m, parts.data());
      for (TupleId o = 0; o < r.size(); ++o) {
        EXPECT_EQ(Dominates(r, o, t, m), DominatedInSubspace(parts[o], m))
            << "j=" << j << " t=" << t << " o=" << o;
        EXPECT_EQ(Dominates(r, t, o, m), DominatesInSubspace(parts[o], m));
      }
    }
  }
}

TEST(DominanceBatchTest, AllEqualTuplesProduceEmptyPartitions) {
  Relation r(MixedSchema());
  for (int i = 0; i < 200; ++i) {
    r.Append(Row{{"a", "b", "c"}, {3.5, -1.0, 0.0, 7.25}});
  }
  std::vector<Relation::MeasurePartition> parts(r.size());
  PartitionRange(r, 5, 0, r.size(), parts.data());
  for (TupleId o = 0; o < r.size(); ++o) {
    EXPECT_EQ(parts[o].worse, 0u);
    EXPECT_EQ(parts[o].better, 0u);
    // Equal tuples never dominate each other (Def. 2).
    EXPECT_FALSE(Dominates(r, 5, o, r.schema().FullMeasureMask()));
  }
  // A skyline over identical tuples keeps every one of them.
  std::vector<TupleId> all;
  for (TupleId i = 0; i < r.size(); ++i) all.push_back(i);
  EXPECT_EQ(ComputeSkyline(r, all, r.schema().FullMeasureMask()).size(),
            all.size());
}

TEST(DominanceBatchTest, NaNSetsNeitherBitEverywhere) {
  Relation r(MixedSchema());
  r.Append(Row{{"a", "b", "c"}, {1.0, 2.0, 3.0, 4.0}});    // t0: finite
  r.Append(Row{{"a", "b", "c"}, {kNaN, 2.0, 5.0, 4.0}});   // t1: NaN m0
  r.Append(Row{{"a", "b", "c"}, {kNaN, kNaN, kNaN, kNaN}});  // t2: all NaN
  r.Append(Row{{"a", "b", "c"}, {2.0, kNaN, 3.0, 4.0}});   // t3: NaN m1 (s.i.b.)
  std::vector<Relation::MeasurePartition> parts(r.size());
  for (TupleId t = 0; t < r.size(); ++t) {
    PartitionRange(r, t, 0, r.size(), parts.data());
    for (TupleId o = 0; o < r.size(); ++o) {
      Relation::MeasurePartition want = r.Partition(t, o);
      ExpectPartitionsEqual(want, parts[o], "NaN");
    }
  }
  // NaN vs anything contributes no bit: t0 vs t2 has empty partition.
  Relation::MeasurePartition p = r.Partition(0, 2);
  EXPECT_EQ(p.worse, 0u);
  EXPECT_EQ(p.better, 0u);
  // t0 vs t1: m0 incomparable (NaN), m2 differs (3 < 5 larger-is-better).
  p = r.Partition(0, 1);
  EXPECT_EQ(p.worse, 0b0100u);
  EXPECT_EQ(p.better, 0u);
}

TEST(DominanceBatchTest, AgreeMaskRangeMatchesScalar) {
  Relation r = RandomRelation(257, 13, /*nan_prob=*/0.0);
  std::vector<DimMask> agrees(r.size());
  for (TupleId t : {TupleId{0}, TupleId{128}, TupleId{256}}) {
    AgreeMaskRange(r, t, 0, r.size(), agrees.data());
    for (TupleId o = 0; o < r.size(); ++o) {
      EXPECT_EQ(r.AgreeMask(t, o), agrees[o]) << "t=" << t << " o=" << o;
    }
    EXPECT_EQ(agrees[t], FullMask(r.schema().num_dimensions()));
  }
}

TEST(DominanceBatchTest, BlockBoundarySizes) {
  // Exercise counts around the kernel block size so refill seams are hit.
  for (size_t n : {kDominanceBlockSize - 1, kDominanceBlockSize,
                   kDominanceBlockSize + 1, 2 * kDominanceBlockSize + 3}) {
    Relation r = RandomRelation(static_cast<int>(n), 17 + n, 0.02);
    BlockedPartitionRangeScan scan(r, 0, r.size(),
                                   r.schema().FullMeasureMask());
    for (TupleId o = 0; o < r.size(); ++o) {
      ExpectPartitionsEqual(r.Partition(0, o), scan.at(o), "range scan");
    }
    std::vector<TupleId> ids;
    for (TupleId i = 0; i < r.size(); ++i) ids.push_back(i);
    BlockedPartitionScan id_scan(r, 0, ids.data(), ids.size(), 0b0101u,
                                 /*unmasked=*/false);
    for (size_t i = 0; i < ids.size(); ++i) {
      Relation::MeasurePartition want = r.Partition(0, ids[i]);
      EXPECT_EQ(want.worse & 0b0101u, id_scan.at(i).worse);
      EXPECT_EQ(want.better & 0b0101u, id_scan.at(i).better);
    }
  }
}

TEST(DominanceBatchTest, CompactKeyBlockMatchesScalarPartition) {
  Relation r = RandomRelation(300, 31, /*nan_prob=*/0.05);
  Rng rng(31);
  std::vector<TupleId> ids;
  for (int i = 0; i < 120; ++i) {
    ids.push_back(static_cast<TupleId>(rng.NextBounded(r.size())));
  }
  MeasureMask full = r.schema().FullMeasureMask();
  CompactKeyBlock block;
  std::vector<Relation::MeasurePartition> parts(ids.size());
  double pk[kMaxMeasures];
  for (MeasureMask gathered : {full, MeasureMask{0b0101u}, MeasureMask{1u}}) {
    block.Gather(r, ids.data(), ids.size(), gathered);
    ASSERT_EQ(block.count(), ids.size());
    // External probe via ProbeKeys.
    TupleId t = 7;
    block.ProbeKeys(r, t, pk);
    for (MeasureMask msub = 0; msub <= gathered; ++msub) {
      if ((msub & ~gathered) != 0) continue;
      block.PartitionRun(pk, 0, ids.size(), msub, parts.data());
      for (size_t i = 0; i < ids.size(); ++i) {
        Relation::MeasurePartition want = r.Partition(t, ids[i]);
        EXPECT_EQ(want.worse & msub, parts[i].worse);
        EXPECT_EQ(want.better & msub, parts[i].better);
      }
    }
    // In-list probe via ProbeKeysAt, and a mid-block run window.
    block.ProbeKeysAt(3, pk);
    size_t begin = 5, n = ids.size() - 9;
    block.PartitionRun(pk, begin, n, gathered, parts.data());
    for (size_t i = 0; i < n; ++i) {
      Relation::MeasurePartition want = r.Partition(ids[3], ids[begin + i]);
      EXPECT_EQ(want.worse & gathered, parts[i].worse);
      EXPECT_EQ(want.better & gathered, parts[i].better);
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD dispatch tiers (skyline/dominance_simd.h). CI additionally runs this
// whole binary once per forced tier (SITFACT_SIMD=scalar|sse2|avx2), which
// exercises the env-resolved ActiveDominanceOps() path end to end; the
// tests below sweep every tier the machine supports inside one process via
// DominanceOpsForTier, so a dev box always covers all its tiers too.

std::vector<SimdTier> AllTierNames() {
  return {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2};
}

TEST(DominanceSimdTest, ResolveSimdTierPolicy) {
  // Explicit override below capability: honored.
  EXPECT_EQ(ResolveSimdTier("scalar", SimdTier::kAvx2), SimdTier::kScalar);
  EXPECT_EQ(ResolveSimdTier("sse2", SimdTier::kAvx2), SimdTier::kSse2);
  EXPECT_EQ(ResolveSimdTier("avx2", SimdTier::kAvx2), SimdTier::kAvx2);
  // Override above capability: clamped, never an illegal instruction.
  EXPECT_EQ(ResolveSimdTier("avx2", SimdTier::kSse2), SimdTier::kSse2);
  EXPECT_EQ(ResolveSimdTier("avx2", SimdTier::kScalar), SimdTier::kScalar);
  // Absent / empty / unknown spellings fall back to detection.
  EXPECT_EQ(ResolveSimdTier(nullptr, SimdTier::kAvx2), SimdTier::kAvx2);
  EXPECT_EQ(ResolveSimdTier("", SimdTier::kSse2), SimdTier::kSse2);
  EXPECT_EQ(ResolveSimdTier("AVX2", SimdTier::kAvx2), SimdTier::kAvx2);
  EXPECT_EQ(ResolveSimdTier("neon", SimdTier::kAvx2), SimdTier::kAvx2);
}

TEST(DominanceSimdTest, ActiveOpsMatchActiveTier) {
  // The dispatch table is resolved once from the active tier; requesting
  // that tier again must yield the very same table (no per-call re-detect).
  EXPECT_EQ(&ActiveDominanceOps(), &DominanceOpsForTier(ActiveSimdTier()));
  // An over-capability request clamps onto the detected tier's table.
  SimdTier detected = DetectSimdTier();
  SimdTier capped = detected < SimdTier::kAvx2 ? detected : SimdTier::kAvx2;
  EXPECT_EQ(&DominanceOpsForTier(SimdTier::kAvx2),
            &DominanceOpsForTier(capped));
}

/// The full scalar-vs-kernel bit-for-bit contract, per tier: every kernel
/// shape against Relation::Partition / AgreeMask on NaN-heavy data, with
/// misaligned begin offsets (1..7 covers every phase of both vector
/// widths), counts below one vector, and block-seam tails.
TEST(DominanceSimdTest, AllTiersMatchScalarOracleAtEveryAlignment) {
  Relation r = RandomRelation(4 * static_cast<int>(kDominanceBlockSize) + 11,
                              41, /*nan_prob=*/0.15);
  const TupleId n = r.size();
  std::vector<Relation::MeasurePartition> parts(n);
  std::vector<DimMask> agrees(n);
  std::vector<TupleId> ids;
  Rng rng(42);
  for (TupleId i = 0; i < n; ++i) ids.push_back(i);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextBounded(i)]);
  }
  for (SimdTier tier : AllTierNames()) {
    const DominanceColumnOps& ops = DominanceOpsForTier(tier);
    SCOPED_TRACE(SimdTierName(tier));
    // Misaligned begins × tail-heavy counts around the vector widths.
    for (TupleId begin : {TupleId{0}, TupleId{1}, TupleId{2}, TupleId{3},
                          TupleId{4}, TupleId{5}, TupleId{6}, TupleId{7}}) {
      for (size_t count :
           {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{8},
            size_t{13}, kDominanceBlockSize,
            2 * kDominanceBlockSize + 3, static_cast<size_t>(n - begin)}) {
        TupleId end = begin + static_cast<TupleId>(
                                  std::min<size_t>(count, n - begin));
        TupleId t = (begin * 31 + static_cast<TupleId>(count)) % n;
        PartitionRangeWith(ops, r, t, begin, end, parts.data());
        for (TupleId o = begin; o < end; ++o) {
          ExpectPartitionsEqual(r.Partition(t, o), parts[o - begin],
                                "range tier");
        }
        PartitionRangeMaskedWith(ops, r, t, begin, end, 0b1010u,
                                 parts.data());
        for (TupleId o = begin; o < end; ++o) {
          Relation::MeasurePartition want = r.Partition(t, o);
          EXPECT_EQ(want.worse & 0b1010u, parts[o - begin].worse);
          EXPECT_EQ(want.better & 0b1010u, parts[o - begin].better);
        }
        AgreeMaskRangeWith(ops, r, t, begin, end, agrees.data());
        for (TupleId o = begin; o < end; ++o) {
          EXPECT_EQ(r.AgreeMask(t, o), agrees[o - begin]);
        }
        size_t id_count = std::min<size_t>(count, ids.size() - begin);
        PartitionBatchWith(ops, r, t, ids.data() + begin, id_count,
                           parts.data());
        for (size_t i = 0; i < id_count; ++i) {
          ExpectPartitionsEqual(r.Partition(t, ids[begin + i]), parts[i],
                                "batch tier");
        }
        PartitionBatchMaskedWith(ops, r, t, ids.data() + begin, id_count,
                                 0b0110u, parts.data());
        for (size_t i = 0; i < id_count; ++i) {
          Relation::MeasurePartition want = r.Partition(t, ids[begin + i]);
          EXPECT_EQ(want.worse & 0b0110u, parts[i].worse);
          EXPECT_EQ(want.better & 0b0110u, parts[i].better);
        }
      }
    }
  }
}

TEST(DominanceSimdTest, AllTiersAgreeOnNaNAndAllEqualColumns) {
  // A relation with an all-NaN measure, an all-equal measure, and a mixed
  // one: the degenerate columns every vector predicate must get right.
  Relation r(MixedSchema());
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    r.Append(Row{{"a", "b", "c"},
                 {kNaN, 5.0, static_cast<double>(rng.NextBounded(3)),
                  rng.NextBool(0.2) ? kNaN : 1.5}});
  }
  std::vector<Relation::MeasurePartition> parts(r.size());
  for (SimdTier tier : AllTierNames()) {
    const DominanceColumnOps& ops = DominanceOpsForTier(tier);
    SCOPED_TRACE(SimdTierName(tier));
    for (TupleId t : {TupleId{0}, TupleId{57}, TupleId{99}}) {
      PartitionRangeWith(ops, r, t, 0, r.size(), parts.data());
      for (TupleId o = 0; o < r.size(); ++o) {
        Relation::MeasurePartition want = r.Partition(t, o);
        ExpectPartitionsEqual(want, parts[o], "degenerate columns");
        // NaN (m0) and all-equal (m1) columns contribute no bits, ever.
        EXPECT_EQ(parts[o].worse & 0b0011u, 0u);
        EXPECT_EQ(parts[o].better & 0b0011u, 0u);
      }
    }
  }
}

/// Pins the ramped_scan billing of bench/micro_dominance_batch.cc: the
/// early-exit consumer bills exactly the pairs it consumes — stop_p + 1
/// per probe (positions 0..stop_p inclusive) — so at the default bench
/// scale (n=60000, 512 probes, stops drawn from Rng(13)) the committed
/// baseline's 3,831,440 is the exact sum of the random exit depths, not
/// comparison drift against the 64×60000 = 3,840,000 full-scan variants.
/// If BlockedPartitionRangeScan ever consumed or skipped pairs behind the
/// consumer's back, the small-scale replica below would diverge.
TEST(DominanceBatchTest, RampedScanBillingIsExactlyConsumedPairs) {
  // Pure arithmetic replica of the bench's billing loop at default scale.
  {
    const uint64_t n = 60000;
    Rng rng(13);
    uint64_t expected = 0;
    for (int p = 0; p < 64 * 8; ++p) {
      expected += 2 + rng.NextBounded(n / 4);  // (1 + bounded) + 1 consumed
    }
    EXPECT_EQ(expected, 3831440u);  // BENCH_micro_dominance_batch baseline
  }
  // Small-scale actual run: consumed pairs must equal the same formula.
  const int n = 600;
  Relation r = RandomRelation(n, 2024, 0.0);
  Rng rng(13);
  uint64_t billed = 0, expected = 0;
  for (int p = 0; p < 32; ++p) {
    TupleId t = static_cast<TupleId>((p * 131) % n);
    TupleId stop = static_cast<TupleId>(
        1 + rng.NextBounded(static_cast<uint64_t>(n) / 4));
    expected += stop + 1;
    BlockedPartitionRangeScan scan(r, t, static_cast<TupleId>(n), 0b0011u);
    for (TupleId o = 0; o < static_cast<TupleId>(n); ++o) {
      Relation::MeasurePartition want = r.Partition(t, o);
      EXPECT_EQ(want.worse & 0b0011u, scan.at(o).worse);
      ++billed;
      if (o >= stop) break;
    }
  }
  EXPECT_EQ(billed, expected);
}

TEST(DominanceBatchTest, RampedScanTracksEarlyExitConsumers) {
  // A consumer that restarts scans at arbitrary forward positions (the
  // lattice protocol) must still see correct partitions after refills.
  Relation r = RandomRelation(500, 23, 0.0);
  std::vector<TupleId> ids;
  for (TupleId i = 0; i < r.size(); i += 2) ids.push_back(i);
  BlockedPartitionScan scan(r, 1, ids.data(), ids.size(),
                            r.schema().FullMeasureMask(), /*unmasked=*/true);
  for (size_t i = 0; i < ids.size(); i += 7) {  // skips across block seams
    ExpectPartitionsEqual(r.Partition(1, ids[i]), scan.at(i), "strided");
  }
}

}  // namespace
}  // namespace sitfact
