// Unit and property tests for the skyline substrate: the dominance kernel
// (Def. 2, Prop. 4), the reference skyline computations, and the k-d tree
// against linear scans.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "skyline/dominance.h"
#include "skyline/kdtree.h"
#include "skyline/skyline_compute.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::PaperTableIV;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

TEST(Dominance, RequiresStrictImprovementSomewhere) {
  Relation r(Schema({{"a"}}, {{"m0"}, {"m1"}}));
  TupleId x = r.Append(Row{{"u"}, {5, 5}});
  TupleId y = r.Append(Row{{"u"}, {5, 5}});
  TupleId z = r.Append(Row{{"u"}, {5, 6}});
  EXPECT_FALSE(Dominates(r, x, y, 0b11));  // equal tuples never dominate
  EXPECT_FALSE(Dominates(r, y, x, 0b11));
  EXPECT_TRUE(Dominates(r, z, x, 0b11));
  EXPECT_FALSE(Dominates(r, x, z, 0b11));
  // Restricted to m0 alone they tie: no dominance either way.
  EXPECT_FALSE(Dominates(r, z, x, 0b01));
  EXPECT_TRUE(Dominates(r, z, x, 0b10));
}

TEST(Dominance, AntiMonotoneAcrossSubspaces) {
  // The paper's Sec. IV observation: skyline membership is not monotone in
  // the subspace. x beats y on m0, loses on m1.
  Relation r(Schema({{"a"}}, {{"m0"}, {"m1"}}));
  TupleId x = r.Append(Row{{"u"}, {9, 1}});
  TupleId y = r.Append(Row{{"u"}, {1, 9}});
  EXPECT_TRUE(Dominates(r, x, y, 0b01));
  EXPECT_TRUE(Dominates(r, y, x, 0b10));
  EXPECT_FALSE(Dominates(r, x, y, 0b11));
  EXPECT_FALSE(Dominates(r, y, x, 0b11));
}

TEST(Dominance, Prop4PartitionMatchesDirectCheck) {
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.num_measures = 4;
  cfg.measure_levels = 4;
  cfg.mixed_directions = true;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);

  for (TupleId a = 0; a < r.size(); a += 7) {
    for (TupleId b = 0; b < r.size(); b += 5) {
      if (a == b) continue;
      auto p = r.Partition(a, b);
      for (MeasureMask m = 1; m <= 0b1111u; ++m) {
        ASSERT_EQ(DominatedInSubspace(p, m), Dominates(r, b, a, m))
            << "a=" << a << " b=" << b << " m=" << m;
        ASSERT_EQ(DominatesInSubspace(p, m), Dominates(r, a, b, m));
      }
    }
  }
}

TEST(SkylineCompute, MatchesPaperExample3) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  std::vector<TupleId> all{0, 1, 2, 3, 4};
  EXPECT_EQ(ComputeSkyline(r, all, 0b11), (std::vector<TupleId>{3}));
  EXPECT_EQ(ComputeSkyline(r, {1, 4}, 0b11), (std::vector<TupleId>{1, 4}));
  EXPECT_EQ(ComputeSkyline(r, {1, 4}, 0b01), (std::vector<TupleId>{1}));
  EXPECT_EQ(ComputeSkyline(r, {}, 0b11), (std::vector<TupleId>{}));
}

TEST(SkylineCompute, SkylineConstraintsAreDownwardClosed) {
  // Prop. 2 contrapositive: if C is a skyline constraint of t, every
  // descendant of C in C^t is too.
  RandomDataConfig cfg;
  cfg.num_tuples = 40;
  cfg.num_dims = 3;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);

  for (TupleId t = 0; t < r.size(); t += 3) {
    for (MeasureMask m : {1u, 2u, 3u}) {
      auto sky = ComputeSkylineConstraintMasks(r, t, m, 3, r.size());
      std::sort(sky.begin(), sky.end());
      for (DimMask c : sky) {
        for (DimMask super = 0; super <= 0b111u; ++super) {
          if (IsSubsetOf(c, super)) {
            // super binds more attributes -> descendant of c.
            ASSERT_TRUE(std::binary_search(sky.begin(), sky.end(), super))
                << "downward closure violated";
          }
        }
      }
      // Maximal = minimal masks of the closed set.
      auto msc = ComputeMaximalSkylineConstraintMasks(r, t, m, 3, r.size());
      for (DimMask a : msc) {
        for (DimMask b : msc) {
          if (a != b) {
            EXPECT_FALSE(IsSubsetOf(a, b)) << "not an antichain";
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// k-d tree.

class KdTreeTest : public ::testing::Test {
 protected:
  KdTreeTest()
      : relation_(Schema({{"a"}},
                         {{"m0"}, {"m1"}, {"m2", Direction::kSmallerIsBetter}})),
        tree_(&relation_) {}

  TupleId Add(double m0, double m1, double m2) {
    TupleId t = relation_.Append(Row{{"x"}, {m0, m1, m2}});
    return t;
  }

  /// Linear-scan reference for the one-sided range query.
  std::vector<TupleId> NaiveDominators(TupleId q, MeasureMask m,
                                       TupleId limit) {
    std::vector<TupleId> out;
    for (TupleId t = 0; t < limit; ++t) {
      if (t == q) continue;
      bool ok = true;
      ForEachBit(m, [&](int j) {
        if (relation_.measure_key(t, j) < relation_.measure_key(q, j)) {
          ok = false;
        }
      });
      if (ok) out.push_back(t);
    }
    return out;
  }

  Relation relation_;
  KdTree tree_;
};

TEST_F(KdTreeTest, FindsWeakDominatorsInEverySubspace) {
  Rng rng(77);
  const int kN = 300;
  for (int i = 0; i < kN; ++i) {
    TupleId t = Add(static_cast<double>(rng.NextBounded(20)),
                    static_cast<double>(rng.NextBounded(20)),
                    static_cast<double>(rng.NextBounded(20)));
    // Query BEFORE inserting t (mirrors discovery: history only).
    for (MeasureMask m = 1; m <= 0b111u; ++m) {
      auto got = tree_.FindDominatorCandidates(t, m);
      auto want = NaiveDominators(t, m, t);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "tuple " << t << " subspace " << m;
    }
    tree_.Insert(t);
  }
  EXPECT_EQ(tree_.size(), static_cast<size_t>(kN));
  EXPECT_GT(tree_.nodes_visited(), 0u);
}

TEST_F(KdTreeTest, EarlyTerminationStopsSearch) {
  for (int i = 0; i < 50; ++i) {
    tree_.Insert(Add(10, 10, 10));
  }
  TupleId q = Add(1, 1, 20);  // everything dominates q
  int seen = 0;
  tree_.VisitDominators(q, 0b111, [&](TupleId) {
    ++seen;
    return false;  // stop immediately
  });
  EXPECT_EQ(seen, 1);
}

TEST_F(KdTreeTest, EmptyTreeReturnsNothing) {
  TupleId q = Add(1, 2, 3);
  EXPECT_TRUE(tree_.FindDominatorCandidates(q, 0b111).empty());
}

TEST_F(KdTreeTest, DuplicatePointsAllRetrievable) {
  TupleId a = Add(5, 5, 5);
  tree_.Insert(a);
  TupleId b = Add(5, 5, 5);
  tree_.Insert(b);
  TupleId q = Add(5, 5, 5);
  auto got = tree_.FindDominatorCandidates(q, 0b111);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<TupleId>{a, b}));
}

// Duplicate-key audit (ISSUE 5 satellite). A point-per-node k-d tree sends
// ties to one side, so a stream of identical measure vectors degenerates
// into a spine of depth n — and a recursive range query then needs O(n)
// stack. The bucketed tree pins the fixed behavior: duplicates pool in one
// unsplittable overflow leaf, depth stays flat, and every duplicate is
// still retrieved.

TEST_F(KdTreeTest, MassDuplicatesStayShallowAndComplete) {
  const int kDups = 50000;
  for (int i = 0; i < kDups; ++i) {
    tree_.Insert(Add(7, 7, 7));
  }
  EXPECT_EQ(tree_.size(), static_cast<size_t>(kDups));
  // All identical: no split is possible, so the tree must stay one leaf.
  EXPECT_EQ(tree_.MaxDepth(), 1);
  TupleId q = Add(7, 7, 7);
  // A deep spine would overflow the stack right here.
  auto got = tree_.FindDominatorCandidates(q, 0b111);
  EXPECT_EQ(got.size(), static_cast<size_t>(kDups));
}

TEST_F(KdTreeTest, DegenerateAxisFallsBackToSplittableAxis) {
  // m0 and m1 carry a single value each; only m2 varies. The split chooser
  // must skip the degenerate axes instead of looping or spinning off empty
  // children.
  Rng rng(5);
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    tree_.Insert(Add(1, 1, static_cast<double>(rng.NextBounded(100))));
  }
  EXPECT_EQ(tree_.size(), static_cast<size_t>(kN));
  EXPECT_GT(tree_.MaxDepth(), 1);     // it did split
  EXPECT_LT(tree_.MaxDepth(), 64);    // and did not degenerate into a spine
  TupleId q = Add(1, 1, 50);
  auto got = tree_.FindDominatorCandidates(q, 0b111);
  auto want = NaiveDominators(q, 0b111, q);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(KdTreeTest, DuplicateHeavyStreamMissesNoCandidate) {
  // Randomized audit with heavy ties across every axis: each query must
  // return exactly the linear-scan reference (a missed candidate here means
  // a wrong skyline upstream in BaselineIdx).
  Rng rng(99);
  const int kN = 600;
  for (int i = 0; i < kN; ++i) {
    TupleId t = Add(static_cast<double>(rng.NextBounded(3)),
                    static_cast<double>(rng.NextBounded(3)),
                    static_cast<double>(rng.NextBounded(3)));
    if (i % 7 == 0) {
      for (MeasureMask m = 1; m <= 0b111u; ++m) {
        auto got = tree_.FindDominatorCandidates(t, m);
        auto want = NaiveDominators(t, m, t);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        ASSERT_EQ(got, want) << "tuple " << t << " subspace " << m;
      }
    }
    tree_.Insert(t);
  }
}

TEST_F(KdTreeTest, HugeKeyRangeSplitsWithoutOverflow) {
  // min + (max - min) overflows to +inf for keys spanning most of the
  // double range, which would produce a split plane routing everything to
  // one side (an empty child, then a re-split on every insert). The
  // overflow-safe midpoint must keep both children populated.
  const double kHuge = 1.7e308;
  Rng rng(4242);
  for (int i = 0; i < 200; ++i) {
    tree_.Insert(Add(i % 2 == 0 ? -kHuge : kHuge, 5,
                     static_cast<double>(rng.NextBounded(10))));
  }
  EXPECT_LT(tree_.MaxDepth(), 64);
  TupleId q = Add(-kHuge, 5, 5);
  auto got = tree_.FindDominatorCandidates(q, 0b111);
  auto want = NaiveDominators(q, 0b111, q);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(KdTreeTest, NaNProbeKeyBoundsNothing) {
  // A NaN probe key means "no lower bound on this axis" (NaN comparisons
  // are false both ways), so every candidate passes it — including
  // candidates in LEFT subtrees of splits on that axis, which the
  // descend rule `split > probe_key` would wrongly prune for NaN. This is
  // the missed-candidate regression test for that fix.
  Rng rng(2718);
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 500; ++i) {
    tree_.Insert(Add(static_cast<double>(rng.NextBounded(50)),
                     static_cast<double>(rng.NextBounded(50)),
                     static_cast<double>(rng.NextBounded(50))));
  }
  TupleId q = Add(kNaN, 25, kNaN);
  for (MeasureMask m = 1; m <= 0b111u; ++m) {
    auto got = tree_.FindDominatorCandidates(q, m);
    auto want = NaiveDominators(q, m, q);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "subspace " << m;
  }
}

TEST_F(KdTreeTest, DuplicateOverflowLeafResumesSplittingOnFreshValues) {
  // Fill an overflow leaf far past capacity with duplicates, then append
  // distinct points: the leaf must become splittable again and queries stay
  // exact.
  for (int i = 0; i < 200; ++i) tree_.Insert(Add(4, 4, 4));
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    tree_.Insert(Add(static_cast<double>(rng.NextBounded(40)),
                     static_cast<double>(rng.NextBounded(40)),
                     static_cast<double>(rng.NextBounded(40))));
  }
  TupleId q = Add(4, 4, 4);
  auto got = tree_.FindDominatorCandidates(q, 0b111);
  auto want = NaiveDominators(q, 0b111, q);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace sitfact
