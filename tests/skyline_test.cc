// Unit and property tests for the skyline substrate: the dominance kernel
// (Def. 2, Prop. 4), the reference skyline computations, and the k-d tree
// against linear scans.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/rng.h"
#include "skyline/dominance.h"
#include "skyline/kdtree.h"
#include "skyline/skyline_compute.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::PaperTableIV;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

TEST(Dominance, RequiresStrictImprovementSomewhere) {
  Relation r(Schema({{"a"}}, {{"m0"}, {"m1"}}));
  TupleId x = r.Append(Row{{"u"}, {5, 5}});
  TupleId y = r.Append(Row{{"u"}, {5, 5}});
  TupleId z = r.Append(Row{{"u"}, {5, 6}});
  EXPECT_FALSE(Dominates(r, x, y, 0b11));  // equal tuples never dominate
  EXPECT_FALSE(Dominates(r, y, x, 0b11));
  EXPECT_TRUE(Dominates(r, z, x, 0b11));
  EXPECT_FALSE(Dominates(r, x, z, 0b11));
  // Restricted to m0 alone they tie: no dominance either way.
  EXPECT_FALSE(Dominates(r, z, x, 0b01));
  EXPECT_TRUE(Dominates(r, z, x, 0b10));
}

TEST(Dominance, AntiMonotoneAcrossSubspaces) {
  // The paper's Sec. IV observation: skyline membership is not monotone in
  // the subspace. x beats y on m0, loses on m1.
  Relation r(Schema({{"a"}}, {{"m0"}, {"m1"}}));
  TupleId x = r.Append(Row{{"u"}, {9, 1}});
  TupleId y = r.Append(Row{{"u"}, {1, 9}});
  EXPECT_TRUE(Dominates(r, x, y, 0b01));
  EXPECT_TRUE(Dominates(r, y, x, 0b10));
  EXPECT_FALSE(Dominates(r, x, y, 0b11));
  EXPECT_FALSE(Dominates(r, y, x, 0b11));
}

TEST(Dominance, Prop4PartitionMatchesDirectCheck) {
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.num_measures = 4;
  cfg.measure_levels = 4;
  cfg.mixed_directions = true;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);

  for (TupleId a = 0; a < r.size(); a += 7) {
    for (TupleId b = 0; b < r.size(); b += 5) {
      if (a == b) continue;
      auto p = r.Partition(a, b);
      for (MeasureMask m = 1; m <= 0b1111u; ++m) {
        ASSERT_EQ(DominatedInSubspace(p, m), Dominates(r, b, a, m))
            << "a=" << a << " b=" << b << " m=" << m;
        ASSERT_EQ(DominatesInSubspace(p, m), Dominates(r, a, b, m));
      }
    }
  }
}

TEST(SkylineCompute, MatchesPaperExample3) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  std::vector<TupleId> all{0, 1, 2, 3, 4};
  EXPECT_EQ(ComputeSkyline(r, all, 0b11), (std::vector<TupleId>{3}));
  EXPECT_EQ(ComputeSkyline(r, {1, 4}, 0b11), (std::vector<TupleId>{1, 4}));
  EXPECT_EQ(ComputeSkyline(r, {1, 4}, 0b01), (std::vector<TupleId>{1}));
  EXPECT_EQ(ComputeSkyline(r, {}, 0b11), (std::vector<TupleId>{}));
}

TEST(SkylineCompute, SkylineConstraintsAreDownwardClosed) {
  // Prop. 2 contrapositive: if C is a skyline constraint of t, every
  // descendant of C in C^t is too.
  RandomDataConfig cfg;
  cfg.num_tuples = 40;
  cfg.num_dims = 3;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);

  for (TupleId t = 0; t < r.size(); t += 3) {
    for (MeasureMask m : {1u, 2u, 3u}) {
      auto sky = ComputeSkylineConstraintMasks(r, t, m, 3, r.size());
      std::sort(sky.begin(), sky.end());
      for (DimMask c : sky) {
        for (DimMask super = 0; super <= 0b111u; ++super) {
          if (IsSubsetOf(c, super)) {
            // super binds more attributes -> descendant of c.
            ASSERT_TRUE(std::binary_search(sky.begin(), sky.end(), super))
                << "downward closure violated";
          }
        }
      }
      // Maximal = minimal masks of the closed set.
      auto msc = ComputeMaximalSkylineConstraintMasks(r, t, m, 3, r.size());
      for (DimMask a : msc) {
        for (DimMask b : msc) {
          if (a != b) {
            EXPECT_FALSE(IsSubsetOf(a, b)) << "not an antichain";
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// k-d tree.

class KdTreeTest : public ::testing::Test {
 protected:
  KdTreeTest()
      : relation_(Schema({{"a"}},
                         {{"m0"}, {"m1"}, {"m2", Direction::kSmallerIsBetter}})),
        tree_(&relation_) {}

  TupleId Add(double m0, double m1, double m2) {
    TupleId t = relation_.Append(Row{{"x"}, {m0, m1, m2}});
    return t;
  }

  /// Linear-scan reference for the one-sided range query.
  std::vector<TupleId> NaiveDominators(TupleId q, MeasureMask m,
                                       TupleId limit) {
    std::vector<TupleId> out;
    for (TupleId t = 0; t < limit; ++t) {
      if (t == q) continue;
      bool ok = true;
      ForEachBit(m, [&](int j) {
        if (relation_.measure_key(t, j) < relation_.measure_key(q, j)) {
          ok = false;
        }
      });
      if (ok) out.push_back(t);
    }
    return out;
  }

  Relation relation_;
  KdTree tree_;
};

TEST_F(KdTreeTest, FindsWeakDominatorsInEverySubspace) {
  Rng rng(77);
  const int kN = 300;
  for (int i = 0; i < kN; ++i) {
    TupleId t = Add(static_cast<double>(rng.NextBounded(20)),
                    static_cast<double>(rng.NextBounded(20)),
                    static_cast<double>(rng.NextBounded(20)));
    // Query BEFORE inserting t (mirrors discovery: history only).
    for (MeasureMask m = 1; m <= 0b111u; ++m) {
      auto got = tree_.FindDominatorCandidates(t, m);
      auto want = NaiveDominators(t, m, t);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "tuple " << t << " subspace " << m;
    }
    tree_.Insert(t);
  }
  EXPECT_EQ(tree_.size(), static_cast<size_t>(kN));
  EXPECT_GT(tree_.nodes_visited(), 0u);
}

TEST_F(KdTreeTest, EarlyTerminationStopsSearch) {
  for (int i = 0; i < 50; ++i) {
    tree_.Insert(Add(10, 10, 10));
  }
  TupleId q = Add(1, 1, 20);  // everything dominates q
  int seen = 0;
  tree_.VisitDominators(q, 0b111, [&](TupleId) {
    ++seen;
    return false;  // stop immediately
  });
  EXPECT_EQ(seen, 1);
}

TEST_F(KdTreeTest, EmptyTreeReturnsNothing) {
  TupleId q = Add(1, 2, 3);
  EXPECT_TRUE(tree_.FindDominatorCandidates(q, 0b111).empty());
}

TEST_F(KdTreeTest, DuplicatePointsAllRetrievable) {
  TupleId a = Add(5, 5, 5);
  tree_.Insert(a);
  TupleId b = Add(5, 5, 5);
  tree_.Insert(b);
  TupleId q = Add(5, 5, 5);
  auto got = tree_.FindDominatorCandidates(q, 0b111);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<TupleId>{a, b}));
}

}  // namespace
}  // namespace sitfact
