// Unit tests for the common substrate: bit utilities, hashing, the seeded
// PRNG, Status/StatusOr, CRC-32 chunking, and CSV field round trips.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/crc32.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"

namespace sitfact {
namespace {

TEST(Bits, PopCountAndSubsets) {
  EXPECT_EQ(PopCount(0u), 0);
  EXPECT_EQ(PopCount(0b1011u), 3);
  EXPECT_TRUE(IsSubsetOf(0b001, 0b011));
  EXPECT_TRUE(IsSubsetOf(0b011, 0b011));
  EXPECT_FALSE(IsSubsetOf(0b100, 0b011));
  EXPECT_TRUE(IsProperSubsetOf(0b001, 0b011));
  EXPECT_FALSE(IsProperSubsetOf(0b011, 0b011));
  EXPECT_EQ(FullMask(0), 0u);
  EXPECT_EQ(FullMask(3), 0b111u);
  EXPECT_EQ(FullMask(32), 0xFFFFFFFFu);
}

TEST(Bits, ForEachBitVisitsEverySetBitOnce) {
  std::vector<int> bits;
  ForEachBit(0b101001u, [&](int b) { bits.push_back(b); });
  EXPECT_EQ(bits, (std::vector<int>{0, 3, 5}));
  ForEachBit(0u, [&](int) { FAIL() << "no bits expected"; });
}

TEST(Bits, ForEachSubsetEnumeratesPowerSet) {
  std::set<uint32_t> subs;
  ForEachSubset(0b1010u, [&](uint32_t s) { subs.insert(s); });
  EXPECT_EQ(subs, (std::set<uint32_t>{0b0000, 0b0010, 0b1000, 0b1010}));

  std::set<uint32_t> proper;
  ForEachProperSubset(0b1010u, [&](uint32_t s) { proper.insert(s); });
  EXPECT_EQ(proper, (std::set<uint32_t>{0b0000, 0b0010, 0b1000}));
}

TEST(Bits, ForEachSubsetOfZero) {
  int count = 0;
  ForEachSubset(0u, [&](uint32_t s) {
    EXPECT_EQ(s, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Hash, MixAvalanchesAndCombineOrders) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(HashCombine(Mix64(1), 2), HashCombine(Mix64(2), 1));
  // Deterministic.
  EXPECT_EQ(Mix64(42), Mix64(42));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    (void)c.NextU64();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.NextU64(), c2.NextU64());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng rng(5);
  int low = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.NextZipf(1000, 1.1);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // The first 1% of ranks should absorb far more than 1% of the mass.
  EXPECT_GT(low, kDraws / 20);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0, sumsq = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / kDraws;
  double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(Status, CodesAndMessages) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: nope");
  EXPECT_EQ(bad, Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad == Status::NotFound("nope"));
}

TEST(Status, StatusOrHoldsValueOrError) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);

  StatusOr<int> e(Status::NotFound("missing"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(Status, StatusOrWorksWithMoveOnlyAndNonDefaultConstructible) {
  struct NoDefault {
    explicit NoDefault(int x) : x(x) {}
    int x;
  };
  StatusOr<NoDefault> v(NoDefault(5));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().x, 5);
  StatusOr<std::unique_ptr<int>> p(std::make_unique<int>(9));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*std::move(p).value(), 9);
}

// --------------------------------------------------------------------------
// CRC-32. The snapshot and WAL formats lean on three properties: the
// standard check value (interoperability), zero-length neutrality (empty
// sections), and chunking-independence (BinaryWriter feeds bytes in
// whatever pieces the encoder produces).

TEST(Crc32, ZeroLengthInputsAreNeutral) {
  EXPECT_EQ(Crc32::Of("", 0), 0u);
  EXPECT_EQ(Crc32::Extend(0, "", 0), 0u);
  // Extending any running value by zero bytes must not perturb it.
  uint32_t crc = Crc32::Of("snapshot", 8);
  EXPECT_EQ(Crc32::Extend(crc, "", 0), crc);
  Crc32 incremental;
  incremental.Update("snapshot", 8);
  incremental.Update("", 0);
  EXPECT_EQ(incremental.value(), crc);
}

TEST(Crc32, CheckValueAndSingleBytes) {
  EXPECT_EQ(Crc32::Of("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32::Of("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, EveryChunkingMatchesOneShot) {
  // A buffer shaped like snapshot content: varied bytes including zeros.
  std::string data;
  Rng rng(7);
  for (int i = 0; i < 257; ++i) {
    data.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  const uint32_t expected = Crc32::Of(data.data(), data.size());
  // Split into two chunks at every boundary.
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t crc = Crc32::Extend(0, data.data(), cut);
    crc = Crc32::Extend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, expected) << "cut " << cut;
  }
  // Many small chunks of coprime stride.
  Crc32 incremental;
  for (size_t pos = 0; pos < data.size();) {
    size_t n = std::min<size_t>(13, data.size() - pos);
    incremental.Update(data.data() + pos, n);
    pos += n;
  }
  EXPECT_EQ(incremental.value(), expected);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "prominent situational facts";
  const uint32_t clean = Crc32::Of(data.data(), data.size());
  data[11] = static_cast<char>(data[11] ^ 0x04);
  EXPECT_NE(Crc32::Of(data.data(), data.size()), clean);
}

// --------------------------------------------------------------------------
// CSV field helpers: quote/split round trips for everything a dimension
// value can throw at the format.

std::string JoinCsv(const std::vector<std::string>& fields) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += ',';
    line += CsvQuote(fields[i]);
  }
  return line;
}

TEST(Csv, QuoteSplitRoundTripsAwkwardFields) {
  const std::vector<std::vector<std::string>> cases = {
      {"plain", "two words", ""},
      {"comma,inside", "quote\"inside", "\"leading quote"},
      {"", "", ""},
      {"trailing space ", " leading space", "tab\tinside"},
      {"embedded\nnewline", "both,\"at once\"", "ünïcode — dash"},
      {"\"\"", ",,,", "\""},
  };
  for (const auto& fields : cases) {
    std::vector<std::string> parsed;
    ASSERT_TRUE(SplitCsvLine(JoinCsv(fields), &parsed).ok())
        << JoinCsv(fields);
    EXPECT_EQ(parsed, fields) << JoinCsv(fields);
  }
}

TEST(Csv, NeedsQuotingExactlyWhenUnsafe) {
  EXPECT_FALSE(CsvNeedsQuoting("plain"));
  EXPECT_FALSE(CsvNeedsQuoting(""));
  EXPECT_TRUE(CsvNeedsQuoting("a,b"));
  EXPECT_TRUE(CsvNeedsQuoting("a\"b"));
  EXPECT_TRUE(CsvNeedsQuoting("a\nb"));
  // Unquoted safe strings pass through CsvQuote unchanged.
  EXPECT_EQ(CsvQuote("plain"), "plain");
  EXPECT_EQ(CsvQuote("a,b"), "\"a,b\"");
}

TEST(Csv, UnterminatedQuoteIsCorruption) {
  std::vector<std::string> parsed;
  EXPECT_FALSE(SplitCsvLine("\"never closed", &parsed).ok());
  EXPECT_FALSE(SplitCsvLine("ok,\"busted", &parsed).ok());
}

TEST(Csv, SplitHonorsEmptyFieldsAndDoubledQuotes) {
  std::vector<std::string> parsed;
  ASSERT_TRUE(SplitCsvLine("a,,c", &parsed).ok());
  EXPECT_EQ(parsed, (std::vector<std::string>{"a", "", "c"}));
  ASSERT_TRUE(SplitCsvLine("\"he said \"\"hi\"\"\",x", &parsed).ok());
  EXPECT_EQ(parsed, (std::vector<std::string>{"he said \"hi\"", "x"}));
}

}  // namespace
}  // namespace sitfact
