// Unit tests for the common substrate: bit utilities, hashing, the seeded
// PRNG, and Status/StatusOr.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"

namespace sitfact {
namespace {

TEST(Bits, PopCountAndSubsets) {
  EXPECT_EQ(PopCount(0u), 0);
  EXPECT_EQ(PopCount(0b1011u), 3);
  EXPECT_TRUE(IsSubsetOf(0b001, 0b011));
  EXPECT_TRUE(IsSubsetOf(0b011, 0b011));
  EXPECT_FALSE(IsSubsetOf(0b100, 0b011));
  EXPECT_TRUE(IsProperSubsetOf(0b001, 0b011));
  EXPECT_FALSE(IsProperSubsetOf(0b011, 0b011));
  EXPECT_EQ(FullMask(0), 0u);
  EXPECT_EQ(FullMask(3), 0b111u);
  EXPECT_EQ(FullMask(32), 0xFFFFFFFFu);
}

TEST(Bits, ForEachBitVisitsEverySetBitOnce) {
  std::vector<int> bits;
  ForEachBit(0b101001u, [&](int b) { bits.push_back(b); });
  EXPECT_EQ(bits, (std::vector<int>{0, 3, 5}));
  ForEachBit(0u, [&](int) { FAIL() << "no bits expected"; });
}

TEST(Bits, ForEachSubsetEnumeratesPowerSet) {
  std::set<uint32_t> subs;
  ForEachSubset(0b1010u, [&](uint32_t s) { subs.insert(s); });
  EXPECT_EQ(subs, (std::set<uint32_t>{0b0000, 0b0010, 0b1000, 0b1010}));

  std::set<uint32_t> proper;
  ForEachProperSubset(0b1010u, [&](uint32_t s) { proper.insert(s); });
  EXPECT_EQ(proper, (std::set<uint32_t>{0b0000, 0b0010, 0b1000}));
}

TEST(Bits, ForEachSubsetOfZero) {
  int count = 0;
  ForEachSubset(0u, [&](uint32_t s) {
    EXPECT_EQ(s, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(Hash, MixAvalanchesAndCombineOrders) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(HashCombine(Mix64(1), 2), HashCombine(Mix64(2), 1));
  // Deterministic.
  EXPECT_EQ(Mix64(42), Mix64(42));
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    (void)c.NextU64();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.NextU64(), c2.NextU64());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng rng(5);
  int low = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.NextZipf(1000, 1.1);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // The first 1% of ranks should absorb far more than 1% of the mass.
  EXPECT_GT(low, kDraws / 20);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0, sumsq = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / kDraws;
  double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(Status, CodesAndMessages) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: nope");
  EXPECT_EQ(bad, Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad == Status::NotFound("nope"));
}

TEST(Status, StatusOrHoldsValueOrError) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);

  StatusOr<int> e(Status::NotFound("missing"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(Status, StatusOrWorksWithMoveOnlyAndNonDefaultConstructible) {
  struct NoDefault {
    explicit NoDefault(int x) : x(x) {}
    int x;
  };
  StatusOr<NoDefault> v(NoDefault(5));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().x, 5);
  StatusOr<std::unique_ptr<int>> p(std::make_unique<int>(9));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*std::move(p).value(), 9);
}

}  // namespace
}  // namespace sitfact
