// Prominence evaluation must produce identical numbers whichever storage
// policy backs it: bucket sizes under Invariant 1, ancestor-union counting
// under Invariant 2 — both validated against from-scratch skylines.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/prominence.h"
#include "core/top_down.h"
#include "skyline/skyline_compute.h"
#include "storage/context_counter.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

class ProminenceTest : public ::testing::Test {
 protected:
  void Stream(const RandomDataConfig& cfg) {
    data_ = RandomDataset(cfg);
    rel_bu_ = std::make_unique<Relation>(data_.schema());
    rel_td_ = std::make_unique<Relation>(data_.schema());
    bu_ = std::make_unique<BottomUpDiscoverer>(rel_bu_.get(),
                                               DiscoveryOptions{});
    td_ = std::make_unique<TopDownDiscoverer>(rel_td_.get(),
                                              DiscoveryOptions{});
    counter_ = std::make_unique<ContextCounter>(data_.schema()
                                                    .num_dimensions());
    for (const Row& row : data_.rows()) {
      TupleId a = rel_bu_->Append(row);
      counter_->OnArrival(*rel_bu_, a);
      last_facts_.clear();
      bu_->Discover(a, &last_facts_);
      TupleId b = rel_td_->Append(row);
      std::vector<SkylineFact> td_facts;
      td_->Discover(b, &td_facts);
    }
    CanonicalizeFacts(&last_facts_);
  }

  Dataset data_{Schema({{"d"}}, {{"m"}})};
  std::unique_ptr<Relation> rel_bu_;
  std::unique_ptr<Relation> rel_td_;
  std::unique_ptr<BottomUpDiscoverer> bu_;
  std::unique_ptr<TopDownDiscoverer> td_;
  std::unique_ptr<ContextCounter> counter_;
  std::vector<SkylineFact> last_facts_;
};

TEST_F(ProminenceTest, BothPoliciesAgreeWithFromScratchCounts) {
  RandomDataConfig cfg;
  cfg.num_tuples = 70;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  cfg.seed = 4242;
  Stream(cfg);

  ProminenceEvaluator eval_bu(rel_bu_.get(), counter_.get(),
                              bu_->mutable_store(),
                              StoragePolicy::kAllSkylineConstraints);
  ProminenceEvaluator eval_td(rel_td_.get(), counter_.get(),
                              td_->mutable_store(),
                              StoragePolicy::kMaximalSkylineConstraints);

  ASSERT_FALSE(last_facts_.empty());
  for (const SkylineFact& f : last_facts_) {
    RankedFact a = eval_bu.Evaluate(f);
    RankedFact b = eval_td.Evaluate(f);
    uint64_t expected_sky =
        ComputeContextualSkyline(*rel_bu_, f.constraint, f.subspace,
                                 rel_bu_->size())
            .size();
    uint64_t expected_ctx =
        SelectContext(*rel_bu_, f.constraint, rel_bu_->size()).size();
    ASSERT_EQ(a.skyline_size, expected_sky);
    ASSERT_EQ(b.skyline_size, expected_sky);
    ASSERT_EQ(a.context_size, expected_ctx);
    ASSERT_EQ(b.context_size, expected_ctx);
    ASSERT_DOUBLE_EQ(a.prominence, b.prominence);
  }
}

TEST_F(ProminenceTest, RankAllSortsDescending) {
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.seed = 99;
  Stream(cfg);
  ProminenceEvaluator eval(rel_bu_.get(), counter_.get(),
                           bu_->mutable_store(),
                           StoragePolicy::kAllSkylineConstraints);
  auto ranked = eval.RankAll(last_facts_);
  ASSERT_EQ(ranked.size(), last_facts_.size());
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].prominence, ranked[i].prominence);
  }
}

TEST(SelectProminentTest, TiesAndThreshold) {
  auto mk = [](double p) {
    RankedFact f;
    f.prominence = p;
    return f;
  };
  std::vector<RankedFact> ranked{mk(8), mk(8), mk(5), mk(2)};
  auto top = SelectProminent(ranked, 3.0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].prominence, 8.0);
  EXPECT_DOUBLE_EQ(top[1].prominence, 8.0);
  EXPECT_TRUE(SelectProminent(ranked, 8.5).empty());
  EXPECT_TRUE(SelectProminent({}, 1.0).empty());
  // τ exactly at the max keeps the ties.
  EXPECT_EQ(SelectProminent(ranked, 8.0).size(), 2u);
}

}  // namespace
}  // namespace sitfact
