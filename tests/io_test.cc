// Tests for the io layer: CRC-32 vectors, BinaryWriter/BinaryReader round
// trips, and snapshot save/load including failure injection (bad magic,
// truncation, bit flips, cross-policy restores).

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/engine.h"
#include "common/binary_io.h"
#include "io/snapshot.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

namespace fs = std::filesystem;

using testing_util::PaperTableI;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() /
          ("sitfact_io_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

class TempFile {
 public:
  explicit TempFile(const std::string& name) : path_(TempPath(name)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Crc32, KnownVectors) {
  // Standard check value for "123456789" under CRC-32/IEEE.
  EXPECT_EQ(Crc32::Of("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32::Of("", 0), 0x00000000u);
  EXPECT_EQ(Crc32::Of("a", 1), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "incremental discovery of prominent facts";
  Crc32 crc;
  crc.Update(data.data(), 10);
  crc.Update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc.value(), Crc32::Of(data.data(), data.size()));
}

TEST(BinaryIo, RoundTripAllTypes) {
  TempFile file("roundtrip.bin");
  {
    BinaryWriter w(file.path());
    w.WriteU8(7);
    w.WriteU32(0xDEADBEEFu);
    w.WriteU64(0x0123456789ABCDEFull);
    w.WriteF64(-1234.5678);
    w.WriteString("hello, \"quoted\" world");
    w.WriteString("");
    w.WriteChecksum();
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(file.path());
  EXPECT_EQ(r.ReadU8(), 7);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.ReadF64(), -1234.5678);
  EXPECT_EQ(r.ReadString(), "hello, \"quoted\" world");
  EXPECT_EQ(r.ReadString(), "");
  r.VerifyChecksum();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(BinaryIo, ChecksumMismatchDetected) {
  TempFile file("corrupt.bin");
  {
    BinaryWriter w(file.path());
    w.WriteU64(42);
    w.WriteChecksum();
    ASSERT_TRUE(w.Close().ok());
  }
  // Flip one payload byte.
  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(2);
    f.put(static_cast<char>(0x5A));
  }
  BinaryReader r(file.path());
  (void)r.ReadU64();
  r.VerifyChecksum();
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIo, TruncationDetected) {
  TempFile file("trunc.bin");
  {
    BinaryWriter w(file.path());
    w.WriteString("some payload that will get cut");
    w.WriteChecksum();
    ASSERT_TRUE(w.Close().ok());
  }
  fs::resize_file(file.path(), 6);
  BinaryReader r(file.path());
  (void)r.ReadString();
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIo, MissingFileIsIoError) {
  BinaryReader r(TempPath("never_written.bin"));
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(BinaryIo, CountGuardRejectsGarbageLengths) {
  TempFile file("hugecount.bin");
  {
    BinaryWriter w(file.path());
    w.WriteU32(0xFFFFFFFFu);  // absurd string length prefix
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(file.path());
  std::string s = r.ReadString();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Relation snapshots.

TEST(RelationSnapshot, RoundTripPreservesEverything) {
  Dataset data = PaperTableI();
  Relation original(data.schema());
  for (const Row& row : data.rows()) original.Append(row);
  original.MarkDeleted(2);

  TempFile file("relation.snap");
  ASSERT_TRUE(SaveRelationSnapshot(original, file.path()).ok());
  auto loaded_or = LoadRelationSnapshot(file.path());
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const Relation& loaded = *loaded_or.value();

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.live_size(), original.live_size());
  ASSERT_EQ(loaded.schema().num_dimensions(),
            original.schema().num_dimensions());
  ASSERT_EQ(loaded.schema().num_measures(),
            original.schema().num_measures());
  for (int j = 0; j < loaded.schema().num_measures(); ++j) {
    EXPECT_EQ(loaded.schema().measure(j).direction,
              original.schema().measure(j).direction);
  }
  for (TupleId t = 0; t < loaded.size(); ++t) {
    EXPECT_EQ(loaded.IsDeleted(t), original.IsDeleted(t));
    for (int d = 0; d < loaded.schema().num_dimensions(); ++d) {
      EXPECT_EQ(loaded.DimString(t, d), original.DimString(t, d));
      EXPECT_EQ(loaded.dim(t, d), original.dim(t, d));  // identical encoding
    }
    for (int j = 0; j < loaded.schema().num_measures(); ++j) {
      EXPECT_EQ(loaded.measure(t, j), original.measure(t, j));
      EXPECT_EQ(loaded.measure_key(t, j), original.measure_key(t, j));
    }
  }
}

TEST(RelationSnapshot, BadMagicRejected) {
  TempFile file("notasnap.bin");
  {
    std::ofstream f(file.path(), std::ios::binary);
    f << "definitely not a snapshot file";
  }
  auto loaded = LoadRelationSnapshot(file.path());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(RelationSnapshot, TruncationRejected) {
  Dataset data = PaperTableI();
  Relation original(data.schema());
  for (const Row& row : data.rows()) original.Append(row);
  TempFile file("truncated.snap");
  ASSERT_TRUE(SaveRelationSnapshot(original, file.path()).ok());
  fs::resize_file(file.path(), fs::file_size(file.path()) / 2);
  auto loaded = LoadRelationSnapshot(file.path());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(RelationSnapshot, BitFlipRejectedByChecksum) {
  Dataset data = PaperTableI();
  Relation original(data.schema());
  for (const Row& row : data.rows()) original.Append(row);
  TempFile file("bitflip.snap");
  ASSERT_TRUE(SaveRelationSnapshot(original, file.path()).ok());
  const auto size = static_cast<std::streamoff>(fs::file_size(file.path()));
  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(size - 20);
    char c = 0;
    f.get(c);
    f.seekp(size - 20);
    f.put(static_cast<char>(c ^ 0x40));
  }
  auto loaded = LoadRelationSnapshot(file.path());
  // Either a structural check or the checksum must fire; never an OK load.
  EXPECT_FALSE(loaded.ok());
}

// ---------------------------------------------------------------------------
// Engine snapshots.

struct EngineSnapshotParam {
  const char* algorithm;
  bool file_store;
};

class EngineSnapshotTest
    : public ::testing::TestWithParam<EngineSnapshotParam> {};

/// Builds an engine over `schema`, streams `rows` into it, returns reports.
std::unique_ptr<DiscoveryEngine> MakeEngine(Relation* relation,
                                            const std::string& algorithm,
                                            const std::string& store_dir) {
  DiscoveryOptions options;
  auto disc_or = DiscoveryEngine::CreateDiscoverer(algorithm, relation,
                                                   options, store_dir);
  EXPECT_TRUE(disc_or.ok()) << disc_or.status().ToString();
  DiscoveryEngine::Config config;
  config.tau = 2.0;
  config.rank_facts = disc_or.value()->store() != nullptr;
  return std::make_unique<DiscoveryEngine>(relation,
                                           std::move(disc_or).value(),
                                           config);
}

TEST_P(EngineSnapshotTest, ResumedStreamMatchesUninterruptedRun) {
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.seed = 31;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  Dataset data = RandomDataset(cfg);
  const size_t cut = 40;

  std::string store_a;
  std::string store_b;
  std::string store_c;
  if (GetParam().file_store) {
    store_a = TempPath("stores_a");
    store_b = TempPath("stores_b");
    store_c = TempPath("stores_c");
  }

  // Reference: uninterrupted run.
  Relation full_rel(data.schema());
  auto full_engine = MakeEngine(&full_rel, GetParam().algorithm, store_a);
  std::vector<std::vector<SkylineFact>> expected;
  for (const Row& row : data.rows()) {
    expected.push_back(full_engine->Append(row).facts);
  }

  // Interrupted run: stream the prefix, snapshot, load, stream the suffix.
  TempFile snap("engine.snap");
  {
    Relation prefix_rel(data.schema());
    auto prefix_engine =
        MakeEngine(&prefix_rel, GetParam().algorithm, store_b);
    for (size_t i = 0; i < cut; ++i) {
      prefix_engine->Append(data.rows()[i]);
    }
    ASSERT_TRUE(SaveEngineSnapshot(*prefix_engine, snap.path()).ok());
  }

  SnapshotLoadOptions load;
  load.file_store_dir = store_c;
  auto restored_or = LoadEngineSnapshot(snap.path(), load);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  RestoredEngine restored = std::move(restored_or).value();
  EXPECT_EQ(restored.relation->size(), cut);
  EXPECT_EQ(std::string(restored.engine->discoverer().name()),
            GetParam().algorithm);

  for (size_t i = cut; i < data.rows().size(); ++i) {
    ArrivalReport report = restored.engine->Append(data.rows()[i]);
    ASSERT_EQ(report.facts, expected[i]) << "arrival " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, EngineSnapshotTest,
    ::testing::Values(EngineSnapshotParam{"BottomUp", false},
                      EngineSnapshotParam{"TopDown", false},
                      EngineSnapshotParam{"SBottomUp", false},
                      EngineSnapshotParam{"STopDown", false},
                      EngineSnapshotParam{"BaselineSeq", false},
                      EngineSnapshotParam{"BaselineIdx", false},
                      EngineSnapshotParam{"FSTopDown", true}),
    [](const ::testing::TestParamInfo<EngineSnapshotParam>& info) {
      return info.param.algorithm;
    });

TEST(EngineSnapshot, ProminenceSurvivesRestore) {
  // The restored counter must reproduce prominence values exactly.
  Dataset data = PaperTableI();
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel, "STopDown", "");
  for (size_t i = 0; i + 1 < data.rows().size(); ++i) {
    engine->Append(data.rows()[i]);
  }
  TempFile snap("prominence.snap");
  ASSERT_TRUE(SaveEngineSnapshot(*engine, snap.path()).ok());

  ArrivalReport direct = engine->Append(data.rows().back());

  auto restored_or = LoadEngineSnapshot(snap.path());
  ASSERT_TRUE(restored_or.ok());
  ArrivalReport resumed =
      restored_or.value().engine->Append(data.rows().back());

  ASSERT_EQ(direct.ranked.size(), resumed.ranked.size());
  for (size_t i = 0; i < direct.ranked.size(); ++i) {
    EXPECT_EQ(direct.ranked[i].fact, resumed.ranked[i].fact);
    EXPECT_EQ(direct.ranked[i].context_size, resumed.ranked[i].context_size);
    EXPECT_EQ(direct.ranked[i].skyline_size, resumed.ranked[i].skyline_size);
    EXPECT_DOUBLE_EQ(direct.ranked[i].prominence,
                     resumed.ranked[i].prominence);
  }
  EXPECT_EQ(direct.prominent.size(), resumed.prominent.size());
}

TEST(EngineSnapshot, SamePolicyOverrideAllowed) {
  Dataset data = PaperTableI();
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel, "BottomUp", "");
  for (const Row& row : data.rows()) engine->Append(row);
  TempFile snap("override.snap");
  ASSERT_TRUE(SaveEngineSnapshot(*engine, snap.path()).ok());

  SnapshotLoadOptions load;
  load.algorithm_override = "SBottomUp";  // same Invariant-1 bucket layout
  auto restored = LoadEngineSnapshot(snap.path(), load);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(std::string(restored.value().engine->discoverer().name()),
            "SBottomUp");
}

TEST(EngineSnapshot, CrossPolicyOverrideRejected) {
  Dataset data = PaperTableI();
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel, "BottomUp", "");
  for (const Row& row : data.rows()) engine->Append(row);
  TempFile snap("crosspolicy.snap");
  ASSERT_TRUE(SaveEngineSnapshot(*engine, snap.path()).ok());

  SnapshotLoadOptions load;
  load.algorithm_override = "TopDown";  // Invariant 2: incompatible buckets
  auto restored = LoadEngineSnapshot(snap.path(), load);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineSnapshot, CcscRestoreUnimplemented) {
  Dataset data = PaperTableI();
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel, "C-CSC", "");
  for (const Row& row : data.rows()) engine->Append(row);
  TempFile snap("ccsc.snap");
  ASSERT_TRUE(SaveEngineSnapshot(*engine, snap.path()).ok());
  auto restored = LoadEngineSnapshot(snap.path());
  EXPECT_EQ(restored.status().code(), StatusCode::kUnimplemented);
}

TEST(EngineSnapshot, CcscReplayRebuildContinuesIdentically) {
  RandomDataConfig cfg;
  cfg.num_tuples = 50;
  cfg.seed = 63;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  Dataset data = RandomDataset(cfg);
  const size_t cut = 30;

  Relation full_rel(data.schema());
  auto full_engine = MakeEngine(&full_rel, "C-CSC", "");
  std::vector<std::vector<SkylineFact>> expected;
  for (const Row& row : data.rows()) {
    expected.push_back(full_engine->Append(row).facts);
  }

  TempFile snap("ccsc_replay.snap");
  {
    Relation prefix_rel(data.schema());
    auto prefix_engine = MakeEngine(&prefix_rel, "C-CSC", "");
    for (size_t i = 0; i < cut; ++i) prefix_engine->Append(data.rows()[i]);
    ASSERT_TRUE(SaveEngineSnapshot(*prefix_engine, snap.path()).ok());
  }

  SnapshotLoadOptions load;
  load.allow_replay_rebuild = true;
  auto restored_or = LoadEngineSnapshot(snap.path(), load);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  RestoredEngine restored = std::move(restored_or).value();
  for (size_t i = cut; i < data.rows().size(); ++i) {
    ASSERT_EQ(restored.engine->Append(data.rows()[i]).facts, expected[i])
        << "arrival " << i;
  }
}

TEST(EngineSnapshot, CrossPolicyReplayRebuildWorks) {
  // BottomUp snapshot restored as TopDown: buckets are incompatible, but a
  // replay rebuild re-derives Invariant-2 state from the relation.
  RandomDataConfig cfg;
  cfg.num_tuples = 40;
  cfg.seed = 64;
  Dataset data = RandomDataset(cfg);
  const size_t cut = 25;

  Relation full_rel(data.schema());
  auto full_engine = MakeEngine(&full_rel, "TopDown", "");
  std::vector<std::vector<SkylineFact>> expected;
  for (const Row& row : data.rows()) {
    expected.push_back(full_engine->Append(row).facts);
  }

  TempFile snap("crosspolicy_replay.snap");
  {
    Relation prefix_rel(data.schema());
    auto prefix_engine = MakeEngine(&prefix_rel, "BottomUp", "");
    for (size_t i = 0; i < cut; ++i) prefix_engine->Append(data.rows()[i]);
    ASSERT_TRUE(SaveEngineSnapshot(*prefix_engine, snap.path()).ok());
  }

  SnapshotLoadOptions load;
  load.algorithm_override = "TopDown";
  load.allow_replay_rebuild = true;
  auto restored_or = LoadEngineSnapshot(snap.path(), load);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  for (size_t i = cut; i < data.rows().size(); ++i) {
    ASSERT_EQ(restored_or.value().engine->Append(data.rows()[i]).facts,
              expected[i])
        << "arrival " << i;
  }
}

TEST(EngineSnapshot, ReplayRebuildSkipsDeletedTuples) {
  // A snapshot taken after a Remove() must replay to the post-removal
  // state, not resurrect the tombstoned tuple's influence.
  Dataset data = PaperTableI();
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel, "BottomUp", "");
  for (const Row& row : data.rows()) engine->Append(row);
  ASSERT_TRUE(engine->Remove(5).ok());  // drop Strickland (t6)

  TempFile snap("replay_deleted.snap");
  ASSERT_TRUE(SaveEngineSnapshot(*engine, snap.path()).ok());

  SnapshotLoadOptions load;
  load.algorithm_override = "TopDown";  // force the replay path
  load.allow_replay_rebuild = true;
  auto restored_or = LoadEngineSnapshot(snap.path(), load);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  RestoredEngine restored = std::move(restored_or).value();
  EXPECT_TRUE(restored.relation->IsDeleted(5));

  // Continue both engines with one more row and compare.
  Row extra{{"Wesley", "Mar", "1995-96", "Celtics", "Nets"}, {30, 2, 9}};
  ArrivalReport direct = engine->Append(extra);
  ArrivalReport resumed = restored.engine->Append(extra);
  EXPECT_EQ(direct.facts, resumed.facts);
}

TEST(EngineSnapshot, BaselineToStoreAlgorithmRejected) {
  Dataset data = PaperTableI();
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel, "BaselineSeq", "");
  for (const Row& row : data.rows()) engine->Append(row);
  TempFile snap("baseline.snap");
  ASSERT_TRUE(SaveEngineSnapshot(*engine, snap.path()).ok());

  SnapshotLoadOptions load;
  load.algorithm_override = "BottomUp";  // needs buckets the snapshot lacks
  auto restored = LoadEngineSnapshot(snap.path(), load);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineSnapshot, RelationOnlySnapshotRejectedForEngineLoad) {
  Dataset data = PaperTableI();
  Relation rel(data.schema());
  for (const Row& row : data.rows()) rel.Append(row);
  TempFile snap("relonly.snap");
  ASSERT_TRUE(SaveRelationSnapshot(rel, snap.path()).ok());
  auto restored = LoadEngineSnapshot(snap.path());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  // But the relation loader accepts it.
  EXPECT_TRUE(LoadRelationSnapshot(snap.path()).ok());
}

}  // namespace
}  // namespace sitfact
