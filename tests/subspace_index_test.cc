// Unit tests for the shared subspace-index layer (skyline/subspace_index.h):
// the PartitionMemo rebind/lookup contract and SubspaceIndex membership
// probes against a quadratic oracle, exercised on both sides of the
// linear-sweep/tree-probe cutover and on all three verification paths
// (memoized sweep, memo-fused tree traversal, batched verification).

#include <vector>

#include <gtest/gtest.h>

#include "lattice/subspace_universe.h"
#include "skyline/dominance.h"
#include "skyline/subspace_index.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

TEST(PartitionMemo, MatchesDirectPartitionAndRebinds) {
  RandomDataConfig cfg;
  cfg.num_tuples = 12;
  cfg.num_measures = 3;
  cfg.mixed_directions = true;
  cfg.seed = 31;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);

  PartitionMemo memo;
  memo.BeginArrival(r, 7);
  EXPECT_EQ(memo.probe(), 7u);
  for (TupleId u = 0; u < r.size(); ++u) {
    Relation::MeasurePartition want = r.Partition(7, u);
    const Relation::MeasurePartition& got = memo.Get(u);
    EXPECT_EQ(got.worse, want.worse) << "u=" << u;
    EXPECT_EQ(got.better, want.better) << "u=" << u;
    // Second lookup serves the cached value.
    EXPECT_EQ(memo.Get(u).worse, want.worse);
  }

  // Rebinding invalidates every cached partition.
  memo.BeginArrival(r, 3);
  EXPECT_EQ(memo.probe(), 3u);
  for (TupleId u = 0; u < r.size(); ++u) {
    Relation::MeasurePartition want = r.Partition(3, u);
    EXPECT_EQ(memo.Get(u).worse, want.worse) << "u=" << u;
    EXPECT_EQ(memo.Get(u).better, want.better) << "u=" << u;
  }
  EXPECT_GT(memo.ApproxMemoryBytes(), 0u);
}

TEST(PartitionMemo, GrowsWithTheRelation) {
  Schema s({{"a"}}, {{"m0"}, {"m1"}});
  Dataset d(std::move(s));
  d.Add(Row{{"x"}, {1, 2}});
  d.Add(Row{{"x"}, {2, 1}});
  Relation r(d.schema());
  r.Append(d.rows()[0]);

  PartitionMemo memo;
  memo.BeginArrival(r, 0);
  (void)memo.Get(0);
  // Appending and rebinding must accommodate the larger id space.
  TupleId t = r.Append(d.rows()[1]);
  memo.BeginArrival(r, t);
  Relation::MeasurePartition want = r.Partition(t, 0);
  EXPECT_EQ(memo.Get(0).worse, want.worse);
  EXPECT_EQ(memo.Get(0).better, want.better);
}

/// Oracle: `probe` is a skyline member iff no live member (other than the
/// probe itself) strictly dominates it in `m`.
bool OracleIsMember(const Relation& r, const std::vector<TupleId>& members,
                    TupleId probe, MeasureMask m) {
  for (TupleId u : members) {
    if (u == probe || r.IsDeleted(u)) continue;
    if (Dominates(r, u, probe, m)) return false;
  }
  return true;
}

class SubspaceIndexProbeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SubspaceIndexProbeTest, MembershipMatchesOracleAroundCutover) {
  const size_t n = GetParam();
  RandomDataConfig cfg;
  cfg.num_tuples = static_cast<int>(n);
  cfg.num_measures = 3;
  cfg.measure_levels = 5;
  cfg.duplicate_prob = 0.2;
  cfg.mixed_directions = true;
  cfg.seed = 100 + n;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  SubspaceIndex index(&r);
  for (const Row& row : data.rows()) index.Insert(r.Append(row));
  ASSERT_EQ(index.size(), n);

  SubspaceUniverse universe(3, 3);
  PartitionMemo memo;
  uint64_t comparisons = 0;
  for (TupleId probe = 0; probe < r.size(); ++probe) {
    memo.BeginArrival(r, probe);
    for (MeasureMask m : universe.masks()) {
      bool want = OracleIsMember(r, index.members(), probe, m);
      EXPECT_EQ(index.IsSkylineMember(probe, m, &memo, &comparisons), want)
          << "probe=" << probe << " m=" << m << " (memoized)";
      EXPECT_EQ(index.IsSkylineMember(probe, m, nullptr, &comparisons), want)
          << "probe=" << probe << " m=" << m << " (batched)";
    }
  }
  EXPECT_GT(comparisons, 0u);
}

TEST_P(SubspaceIndexProbeTest, DeletedMembersAreFilteredFromProbes) {
  const size_t n = GetParam();
  RandomDataConfig cfg;
  cfg.num_tuples = static_cast<int>(n);
  cfg.num_measures = 2;
  cfg.measure_levels = 4;
  cfg.seed = 200 + n;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  SubspaceIndex index(&r);
  for (const Row& row : data.rows()) index.Insert(r.Append(row));
  // Tombstone every third member without touching the index; probes must
  // ignore them (this is the state C-CSC sees mid-removal, before rebuild).
  for (TupleId t = 0; t < r.size(); t += 3) r.MarkDeleted(t);

  SubspaceUniverse universe(2, 2);
  uint64_t comparisons = 0;
  PartitionMemo memo;
  for (TupleId probe = 1; probe < r.size(); probe += 3) {
    memo.BeginArrival(r, probe);
    for (MeasureMask m : universe.masks()) {
      bool want = OracleIsMember(r, index.members(), probe, m);
      EXPECT_EQ(index.IsSkylineMember(probe, m, &memo, &comparisons), want);
      EXPECT_EQ(index.IsSkylineMember(probe, m, nullptr, &comparisons), want);
    }
  }
}

// Sizes straddling kProbeCutover hit the linear sweep (below) and both
// tree-probe verification paths (above).
INSTANTIATE_TEST_SUITE_P(
    Sizes, SubspaceIndexProbeTest,
    ::testing::Values(SubspaceIndex::kProbeCutover / 2,
                      SubspaceIndex::kProbeCutover - 1,
                      SubspaceIndex::kProbeCutover,
                      SubspaceIndex::kProbeCutover + 1,
                      SubspaceIndex::kProbeCutover * 2),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return "n" + std::to_string(info.param);
    });

TEST(SubspaceIndex, ComputeSkylineSetMatchesPerMaskProbes) {
  RandomDataConfig cfg;
  cfg.num_tuples = 90;  // above the cutover
  cfg.num_measures = 3;
  cfg.mixed_directions = true;
  cfg.seed = 404;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  SubspaceIndex index(&r);
  for (const Row& row : data.rows()) index.Insert(r.Append(row));

  SubspaceUniverse universe(3, 3);
  PartitionMemo memo;
  std::vector<uint8_t> got;
  uint64_t comparisons = 0;
  for (TupleId probe = 0; probe < r.size(); probe += 7) {
    memo.BeginArrival(r, probe);
    index.ComputeSkylineSet(probe, universe, &memo, &got, &comparisons);
    ASSERT_EQ(got.size(), universe.masks().size());
    for (size_t i = 0; i < universe.masks().size(); ++i) {
      bool want = OracleIsMember(r, index.members(), probe,
                                 universe.masks()[i]);
      EXPECT_EQ(got[i] != 0, want)
          << "probe=" << probe << " mask=" << universe.masks()[i];
    }
  }
}

TEST(SubspaceIndex, NonMemberProbeIsSupported) {
  // C-CSC probes an arrival against a context *before* inserting it when
  // answering membership queries; the probe need not be in the member set.
  Schema s({{"a"}}, {{"m0"}, {"m1"}});
  Dataset d(std::move(s));
  d.Add(Row{{"x"}, {5, 1}});
  d.Add(Row{{"x"}, {1, 5}});
  Relation r(d.schema());
  SubspaceIndex index(&r);
  index.Insert(r.Append(d.rows()[0]));
  index.Insert(r.Append(d.rows()[1]));
  TupleId outside_low = r.Append(Row{{"x"}, {0, 0}});
  TupleId outside_high = r.Append(Row{{"x"}, {9, 9}});

  uint64_t comparisons = 0;
  EXPECT_FALSE(index.IsSkylineMember(outside_low, 0b11, nullptr,
                                     &comparisons));
  EXPECT_TRUE(index.IsSkylineMember(outside_high, 0b11, nullptr,
                                    &comparisons));
  EXPECT_GT(index.ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace sitfact
