// Tests for the forward query module (query/skyline_query.h): the three
// evaluators against the quadratic oracle, k-skyband counting, and the
// one-of-the-few ladder.

#include "query/skyline_query.h"

#include <algorithm>
#include <vector>

#include "skyline/skyline_compute.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::PaperTableIV;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

Relation LoadAll(const Dataset& data) {
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  return r;
}

std::vector<TupleId> AllIds(const Relation& r) {
  std::vector<TupleId> ids(r.size());
  for (TupleId t = 0; t < r.size(); ++t) ids[t] = t;
  return ids;
}

TEST(QueryAlgorithmNames, RoundTrip) {
  EXPECT_EQ(ParseQueryAlgorithm("bnl"), QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(ParseQueryAlgorithm("sfs"), QueryAlgorithm::kSortFilter);
  EXPECT_EQ(ParseQueryAlgorithm("dnc"), QueryAlgorithm::kDivideConquer);
  EXPECT_EQ(ParseQueryAlgorithm("auto"), QueryAlgorithm::kAuto);
  EXPECT_EQ(ParseQueryAlgorithm("garbage"), QueryAlgorithm::kAuto);
  EXPECT_STREQ(QueryAlgorithmName(QueryAlgorithm::kSortFilter), "sfs");
}

TEST(SkylineQueryEngine, PaperExample3FullSpace) {
  Dataset data = PaperTableIV();
  Relation r = LoadAll(data);
  SkylineQueryEngine engine(&r);

  // Example 3: with M = {m1, m2} and no constraint, t4 (id 3) is the only
  // skyline tuple.
  Constraint top = Constraint::Top(3);
  auto result = engine.Evaluate(top, 0b11);
  EXPECT_EQ(result.skyline, std::vector<TupleId>({3}));
  EXPECT_EQ(result.stats.context_size, 5u);
}

TEST(SkylineQueryEngine, PaperExample3Constrained) {
  Dataset data = PaperTableIV();
  Relation r = LoadAll(data);
  SkylineQueryEngine engine(&r);

  // Example 3: C = <a1, b1, c1> selects {t2, t5}; both are in the skyline
  // in full space, only t2 in {m1}.
  Constraint c = Constraint::ForTuple(r, /*t=*/4, /*bound=*/0b111);
  auto full = engine.Evaluate(c, 0b11);
  EXPECT_EQ(full.skyline, std::vector<TupleId>({1, 4}));
  auto m1_only = engine.Evaluate(c, 0b01);
  EXPECT_EQ(m1_only.skyline, std::vector<TupleId>({1}));
}

struct AlgoParam {
  QueryAlgorithm algo;
  const char* name;
};

class QueryAlgorithmTest : public ::testing::TestWithParam<AlgoParam> {};

TEST_P(QueryAlgorithmTest, AgreesWithOracleOnRandomData) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RandomDataConfig cfg;
    cfg.seed = seed;
    cfg.num_tuples = 160;
    cfg.num_measures = 3;
    cfg.measure_levels = 5;  // heavy ties
    cfg.mixed_directions = (seed % 2 == 0);
    Dataset data = RandomDataset(cfg);
    Relation r = LoadAll(data);
    SkylineQueryEngine engine(&r);

    for (MeasureMask m = 1; m < 8; ++m) {
      auto result =
          engine.EvaluateCandidates(AllIds(r), m, GetParam().algo);
      std::vector<TupleId> expected = ComputeSkyline(r, AllIds(r), m);
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(result.skyline, expected)
          << GetParam().name << " seed=" << seed << " m=" << m;
    }
  }
}

TEST_P(QueryAlgorithmTest, EmptyAndSingletonCandidates) {
  Dataset data = PaperTableIV();
  Relation r = LoadAll(data);
  SkylineQueryEngine engine(&r);

  auto empty = engine.EvaluateCandidates({}, 0b11, GetParam().algo);
  EXPECT_TRUE(empty.skyline.empty());
  auto single = engine.EvaluateCandidates({2}, 0b11, GetParam().algo);
  EXPECT_EQ(single.skyline, std::vector<TupleId>({2}));
}

TEST_P(QueryAlgorithmTest, AllEqualTuplesAreAllInSkyline) {
  Schema schema({{"d"}}, {{"m1", Direction::kLargerIsBetter},
                          {"m2", Direction::kLargerIsBetter}});
  Relation r(std::move(schema));
  for (int i = 0; i < 100; ++i) r.Append(Row{{"x"}, {7.0, 7.0}});
  SkylineQueryEngine engine(&r);
  std::vector<TupleId> ids = AllIds(r);
  auto result = engine.EvaluateCandidates(ids, 0b11, GetParam().algo);
  EXPECT_EQ(result.skyline, ids);  // equal tuples never dominate each other
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, QueryAlgorithmTest,
    ::testing::Values(AlgoParam{QueryAlgorithm::kBlockNestedLoops, "bnl"},
                      AlgoParam{QueryAlgorithm::kSortFilter, "sfs"},
                      AlgoParam{QueryAlgorithm::kDivideConquer, "dnc"},
                      AlgoParam{QueryAlgorithm::kAuto, "auto"}),
    [](const ::testing::TestParamInfo<AlgoParam>& info) {
      return info.param.name;
    });

TEST(AutoPlanner, ThresholdBehaviorIsPinned) {
  // The kAuto planner's contract: at most kAutoSmallContext candidates run
  // BNL, anything larger runs SFS. A regression here silently flips the
  // algorithm behind every kAuto call site (CLI default, benches), so the
  // threshold is pinned exactly.
  EXPECT_EQ(kAutoSmallContext, 64u);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, 0),
            QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, kAutoSmallContext),
            QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, kAutoSmallContext + 1),
            QueryAlgorithm::kSortFilter);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, 1000000),
            QueryAlgorithm::kSortFilter);
  // Non-auto inputs pass through untouched.
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kBlockNestedLoops, 1000000),
            QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kSortFilter, 1),
            QueryAlgorithm::kSortFilter);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kDivideConquer, 1),
            QueryAlgorithm::kDivideConquer);
}

TEST(AutoPlanner, SubspaceAwareResolutionIsPinned) {
  // The three-arg resolver carries the post-rebuild C-CSC cost profile:
  // candidate sets reaching the evaluators are index-pruned, and on narrow
  // subspaces (|m| <= kAutoNarrowMeasures) the BNL window stays tiny, so
  // BNL wins up to kAutoNarrowContext. Wide subspaces keep the legacy
  // crossover exactly.
  EXPECT_EQ(kAutoNarrowContext, 256u);
  EXPECT_EQ(kAutoNarrowMeasures, 2);
  // Narrow subspaces: the wider BNL window applies.
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, kAutoNarrowContext, 0b11),
            QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, kAutoNarrowContext, 0b1),
            QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, kAutoNarrowContext + 1, 0b11),
            QueryAlgorithm::kSortFilter);
  // Wide subspaces: identical to the two-arg rule on both sides.
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, kAutoSmallContext, 0b111),
            QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kAuto, kAutoSmallContext + 1, 0b111),
            QueryAlgorithm::kSortFilter);
  // Non-auto inputs still pass through untouched.
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kSortFilter, 1, 0b1),
            QueryAlgorithm::kSortFilter);
  EXPECT_EQ(ResolveAuto(QueryAlgorithm::kBlockNestedLoops, 1000000, 0b111),
            QueryAlgorithm::kBlockNestedLoops);
}

TEST(AutoPlanner, EvaluateMatchesResolvedAlgorithmOnBothSidesOfThreshold) {
  // Behavioral proof that EvaluateCandidates actually routes through the
  // resolver: at the threshold sizes, kAuto's work counters must be
  // identical to the explicitly chosen algorithm's (comparison counts
  // differ between BNL and SFS on this data, so a planner flip would show).
  RandomDataConfig cfg;
  cfg.num_tuples = static_cast<int>(kAutoSmallContext) + 1;
  cfg.seed = 12;
  cfg.num_measures = 3;
  Dataset data = RandomDataset(cfg);
  Relation r = LoadAll(data);
  SkylineQueryEngine engine(&r);

  std::vector<TupleId> all = AllIds(r);
  std::vector<TupleId> small(all.begin(),
                             all.begin() + kAutoSmallContext);

  auto auto_small =
      engine.EvaluateCandidates(small, 0b111, QueryAlgorithm::kAuto);
  auto bnl_small = engine.EvaluateCandidates(
      small, 0b111, QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(auto_small.skyline, bnl_small.skyline);
  EXPECT_EQ(auto_small.stats.comparisons, bnl_small.stats.comparisons);

  auto auto_large =
      engine.EvaluateCandidates(all, 0b111, QueryAlgorithm::kAuto);
  auto sfs_large =
      engine.EvaluateCandidates(all, 0b111, QueryAlgorithm::kSortFilter);
  EXPECT_EQ(auto_large.skyline, sfs_large.skyline);
  EXPECT_EQ(auto_large.stats.comparisons, sfs_large.stats.comparisons);
}

TEST(SkylineQueryEngine, EvaluateSkipsDeletedTuples) {
  Dataset data = PaperTableIV();
  Relation r = LoadAll(data);
  r.MarkDeleted(3);  // t4 dominated everything in full space
  SkylineQueryEngine engine(&r);
  auto result = engine.Evaluate(Constraint::Top(3), 0b11);
  EXPECT_EQ(result.stats.context_size, 4u);
  // With t4 gone, t3 = (17, 17) dominates every remaining tuple.
  EXPECT_EQ(result.skyline, std::vector<TupleId>({2}));
}

TEST(SkylineQueryEngine, DncHandlesHeavilyTiedAxis) {
  // All tuples share m1; only m2 separates them. The median split on m1
  // degenerates and must fall through to other axes / BNL without looping.
  Schema schema({{"d"}}, {{"m1", Direction::kLargerIsBetter},
                          {"m2", Direction::kLargerIsBetter}});
  Relation r(std::move(schema));
  for (int i = 0; i < 300; ++i) {
    r.Append(Row{{"x"}, {5.0, static_cast<double>(i % 17)}});
  }
  SkylineQueryEngine engine(&r);
  auto result = engine.EvaluateCandidates(AllIds(r), 0b11,
                                          QueryAlgorithm::kDivideConquer);
  std::vector<TupleId> expected = ComputeSkyline(r, AllIds(r), 0b11);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result.skyline, expected);
}

TEST(SkylineQueryEngine, StatsCountComparisons) {
  RandomDataConfig cfg;
  cfg.num_tuples = 200;
  Dataset data = RandomDataset(cfg);
  Relation r = LoadAll(data);
  SkylineQueryEngine engine(&r);
  auto result = engine.EvaluateCandidates(AllIds(r), 0b11,
                                          QueryAlgorithm::kSortFilter);
  EXPECT_GT(result.stats.comparisons, 0u);
  EXPECT_EQ(result.stats.context_size, 200u);
  auto dnc = engine.EvaluateCandidates(AllIds(r), 0b11,
                                       QueryAlgorithm::kDivideConquer);
  EXPECT_GT(dnc.stats.recursive_calls, 1u);
}

TEST(KSkyband, MatchesDominatorCounting) {
  RandomDataConfig cfg;
  cfg.num_tuples = 120;
  cfg.num_measures = 3;
  Dataset data = RandomDataset(cfg);
  Relation r = LoadAll(data);
  SkylineQueryEngine engine(&r);
  std::vector<TupleId> ids = AllIds(r);

  for (int k : {1, 2, 4}) {
    std::vector<TupleId> band = engine.KSkyband(ids, 0b111, k);
    for (TupleId t : ids) {
      bool in_band = std::find(band.begin(), band.end(), t) != band.end();
      bool expected =
          engine.CountDominators(t, ids, 0b111) < static_cast<uint64_t>(k);
      ASSERT_EQ(in_band, expected) << "k=" << k << " t=" << t;
    }
  }
}

TEST(KSkyband, K1IsTheSkyline) {
  RandomDataConfig cfg;
  cfg.num_tuples = 150;
  cfg.seed = 9;
  Dataset data = RandomDataset(cfg);
  Relation r = LoadAll(data);
  SkylineQueryEngine engine(&r);
  std::vector<TupleId> ids = AllIds(r);
  std::vector<TupleId> band = engine.KSkyband(ids, 0b11, 1);
  std::vector<TupleId> sky = ComputeSkyline(r, ids, 0b11);
  EXPECT_EQ(band, sky);
}

TEST(OneOfTheFew, LadderProperties) {
  RandomDataConfig cfg;
  cfg.num_tuples = 100;
  cfg.seed = 4;
  Dataset data = RandomDataset(cfg);
  Relation r = LoadAll(data);
  SkylineQueryEngine engine(&r);
  std::vector<TupleId> ids = AllIds(r);

  for (int tau : {1, 5, 20, 50}) {
    auto result = engine.OneOfTheFew(ids, 0b11, tau);
    if (result.k == 0) {
      EXPECT_TRUE(result.band.empty());
      // Even the skyline busts tau.
      EXPECT_GT(engine.KSkyband(ids, 0b11, 1).size(),
                static_cast<size_t>(tau));
      continue;
    }
    // The returned band is the k-skyband and fits within tau.
    EXPECT_EQ(result.band, engine.KSkyband(ids, 0b11, result.k));
    EXPECT_LE(result.band.size(), static_cast<size_t>(tau));
    // Maximality: k+1 would either bust tau or add nothing new (the band
    // already covers every candidate).
    std::vector<TupleId> next = engine.KSkyband(ids, 0b11, result.k + 1);
    EXPECT_TRUE(next.size() > static_cast<size_t>(tau) ||
                result.band.size() == ids.size())
        << "tau=" << tau << " k=" << result.k;
  }
}

TEST(OneOfTheFew, WholeContextWithinTau) {
  Schema schema({{"d"}}, {{"m", Direction::kLargerIsBetter}});
  Relation r(std::move(schema));
  for (int i = 0; i < 5; ++i) {
    r.Append(Row{{"x"}, {static_cast<double>(i)}});
  }
  SkylineQueryEngine engine(&r);
  auto result = engine.OneOfTheFew({0, 1, 2, 3, 4}, 0b1, /*tau=*/10);
  // A strict chain: dominator counts are 4,3,2,1,0, so k=5 covers all.
  EXPECT_EQ(result.k, 5);
  EXPECT_EQ(result.band.size(), 5u);
}

}  // namespace
}  // namespace sitfact
