// Tests for service/fact_feed.h: the asynchronous ingestion front end.
// Determinism versus the synchronous engine, backpressure, drain/stop
// semantics, and multi-producer accounting.

#include "service/fact_feed.h"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

std::unique_ptr<DiscoveryEngine> MakeEngine(Relation* relation,
                                            double tau = 2.0) {
  auto disc_or = DiscoveryEngine::CreateDiscoverer("STopDown", relation, {});
  EXPECT_TRUE(disc_or.ok());
  DiscoveryEngine::Config config;
  config.tau = tau;
  return std::make_unique<DiscoveryEngine>(relation,
                                           std::move(disc_or).value(),
                                           config);
}

Dataset TestData(int n = 120, uint64_t seed = 21) {
  RandomDataConfig cfg;
  cfg.num_tuples = n;
  cfg.seed = seed;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  return RandomDataset(cfg);
}

TEST(FactFeed, SingleProducerMatchesSynchronousRun) {
  Dataset data = TestData();

  // Synchronous reference.
  Relation sync_rel(data.schema());
  auto sync_engine = MakeEngine(&sync_rel);
  std::vector<std::vector<SkylineFact>> expected;
  uint64_t expected_prominent = 0;
  for (const Row& row : data.rows()) {
    ArrivalReport r = sync_engine->Append(row);
    expected.push_back(r.facts);
    if (!r.prominent.empty()) ++expected_prominent;
  }

  // Through the feed. The subscriber runs on the worker thread; collect
  // into plain vectors (no locking needed: one worker, and we only read
  // after Stop()).
  Relation feed_rel(data.schema());
  auto feed_engine = MakeEngine(&feed_rel);
  std::vector<std::vector<SkylineFact>> actual;
  FactFeed::Options options;
  options.notify_all_arrivals = true;
  FactFeed feed(
      feed_engine.get(),
      [&](const ArrivalReport& r) { actual.push_back(r.facts); }, options);
  for (const Row& row : data.rows()) {
    ASSERT_TRUE(feed.Publish(row));
  }
  feed.Stop();

  EXPECT_EQ(feed.processed(), data.rows().size());
  EXPECT_EQ(feed.prominent_arrivals(), expected_prominent);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i]) << "arrival " << i;
  }
}

TEST(FactFeed, BackpressureBlocksButLosesNothing) {
  Dataset data = TestData(200, 5);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactFeed::Options options;
  options.queue_capacity = 2;  // force producers to wait on the worker
  FactFeed feed(engine.get(), nullptr, options);
  for (const Row& row : data.rows()) {
    ASSERT_TRUE(feed.Publish(row));
  }
  feed.Stop();
  EXPECT_EQ(feed.processed(), data.rows().size());
  EXPECT_EQ(rel.size(), data.rows().size());
}

TEST(FactFeed, DrainWaitsForBacklogWithoutStopping) {
  Dataset data = TestData(80, 6);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactFeed feed(engine.get(), nullptr);
  for (size_t i = 0; i < 40; ++i) ASSERT_TRUE(feed.Publish(data.rows()[i]));
  feed.Drain();
  EXPECT_EQ(feed.processed(), 40u);
  // Still accepting afterwards.
  for (size_t i = 40; i < 80; ++i) ASSERT_TRUE(feed.Publish(data.rows()[i]));
  feed.Drain();
  EXPECT_EQ(feed.processed(), 80u);
  feed.Stop();
}

TEST(FactFeed, PublishAfterStopIsRefused) {
  Dataset data = TestData(5, 7);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactFeed feed(engine.get(), nullptr);
  ASSERT_TRUE(feed.Publish(data.rows()[0]));
  feed.Stop();
  EXPECT_FALSE(feed.Publish(data.rows()[1]));
  EXPECT_EQ(feed.processed(), 1u);
}

TEST(FactFeed, StopProcessesTheBacklogFirst) {
  Dataset data = TestData(60, 8);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactFeed feed(engine.get(), nullptr);
  for (const Row& row : data.rows()) ASSERT_TRUE(feed.Publish(row));
  feed.Stop();  // everything already queued must still be discovered
  EXPECT_EQ(feed.processed(), data.rows().size());
}

TEST(FactFeed, DrainRacingStopNeitherHangsNorLosesRows) {
  // Drain() and Stop() from different threads while producers are still
  // pushing: whichever wins, every published row must be processed and both
  // calls must return (a hang here is the bug this test pins).
  for (int round = 0; round < 5; ++round) {
    Dataset data = TestData(60, 40 + round);
    Relation rel(data.schema());
    auto engine = MakeEngine(&rel);
    FactFeed::Options options;
    options.queue_capacity = 4;
    FactFeed feed(engine.get(), nullptr, options);

    std::atomic<uint64_t> published{0};
    std::thread producer([&] {
      for (const Row& row : data.rows()) {
        if (!feed.Publish(row)) break;
        ++published;
      }
    });
    std::thread drainer([&] { feed.Drain(); });
    std::thread stopper([&] { feed.Stop(); });
    producer.join();
    drainer.join();
    stopper.join();
    // Rows accepted before the stop won the race are all processed.
    EXPECT_EQ(feed.processed(), published.load());
    EXPECT_EQ(rel.size(), published.load());
  }
}

TEST(FactFeed, ThrowingSubscriberLatchesErrorAndIngestionContinues) {
  Dataset data = TestData(50, 41);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  std::atomic<uint64_t> delivered{0};
  FactFeed::Options options;
  options.notify_all_arrivals = true;
  FactFeed feed(
      engine.get(),
      [&](const ArrivalReport& r) {
        ++delivered;
        if (r.tuple == 10) throw std::runtime_error("subscriber bug");
        if (r.tuple == 20) throw 42;  // non-std exception
      },
      options);
  for (const Row& row : data.rows()) {
    ASSERT_TRUE(feed.Publish(row));
  }
  feed.Stop();

  // The pipeline survived: every row discovered, every arrival delivered,
  // and the first subscriber failure is latched for inspection.
  EXPECT_EQ(feed.processed(), data.rows().size());
  EXPECT_EQ(delivered.load(), data.rows().size());
  EXPECT_EQ(rel.size(), data.rows().size());
  EXPECT_FALSE(feed.subscriber_status().ok());
  EXPECT_NE(feed.subscriber_status().message().find("subscriber bug"),
            std::string::npos);
}

TEST(FactFeed, PublishAfterStopRefusedFromAnyThread) {
  Dataset data = TestData(10, 42);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactFeed feed(engine.get(), nullptr);
  ASSERT_TRUE(feed.Publish(data.rows()[0]));
  feed.Stop();

  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i < 10; ++i) {
        if (feed.Publish(data.rows()[i])) ++accepted;
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(accepted.load(), 0);
  EXPECT_EQ(feed.processed(), 1u);
  // Stop() stays idempotent after the refused publishes.
  feed.Stop();
  EXPECT_EQ(rel.size(), 1u);
}

TEST(FactFeed, NotifyAllDeliversEmptyReports) {
  // Second row repeats the first's dimensions with strictly worse measures:
  // every context containing it also contains its dominator, so S_t is
  // empty. With notify_all_arrivals the subscriber must still hear about
  // it, with an empty report.
  Schema schema({{"d0"}, {"d1"}},
                {{"m0", Direction::kLargerIsBetter},
                 {"m1", Direction::kLargerIsBetter}});
  Relation rel(schema);
  auto engine = MakeEngine(&rel, /*tau=*/1.0);

  std::vector<std::pair<TupleId, size_t>> seen;  // (tuple, fact count)
  FactFeed::Options options;
  options.notify_all_arrivals = true;
  FactFeed feed(
      engine.get(),
      [&](const ArrivalReport& r) { seen.emplace_back(r.tuple,
                                                      r.facts.size()); },
      options);
  ASSERT_TRUE(feed.Publish(Row{{"x", "y"}, {5.0, 5.0}}));
  ASSERT_TRUE(feed.Publish(Row{{"x", "y"}, {1.0, 1.0}}));
  feed.Stop();

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 0u);
  EXPECT_GT(seen[0].second, 0u);  // the first arrival mints facts
  EXPECT_EQ(seen[1].first, 1u);
  EXPECT_EQ(seen[1].second, 0u);  // the dominated arrival mints none
  EXPECT_EQ(feed.processed(), 2u);
  EXPECT_EQ(feed.prominent_arrivals(), 1u);
}

TEST(FactFeed, MultipleProducersAllRowsAccountedFor) {
  // Arrival order across producers is nondeterministic, so only totals are
  // asserted; the engine still sees a single serialized stream.
  Dataset data = TestData(300, 9);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  std::atomic<uint64_t> notified{0};
  FactFeed::Options options;
  options.notify_all_arrivals = true;
  options.queue_capacity = 8;
  FactFeed feed(
      engine.get(), [&](const ArrivalReport&) { ++notified; }, options);

  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = p; i < data.rows().size(); i += kProducers) {
        ASSERT_TRUE(feed.Publish(data.rows()[i]));
      }
    });
  }
  for (auto& t : producers) t.join();
  feed.Stop();

  EXPECT_EQ(feed.processed(), data.rows().size());
  EXPECT_EQ(notified.load(), data.rows().size());
  EXPECT_EQ(rel.size(), data.rows().size());
}

}  // namespace
}  // namespace sitfact
