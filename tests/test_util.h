#ifndef SITFACT_TESTS_TEST_UTIL_H_
#define SITFACT_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "core/discoverer.h"
#include "core/fact.h"
#include "lattice/constraint_enumerator.h"
#include "relation/dataset.h"
#include "relation/relation.h"
#include "skyline/skyline_compute.h"
#include "storage/mu_store.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace testing_util {

/// Table IV, the paper's running example: D = {d1, d2, d3},
/// M = {m1, m2}, tuples t1..t5 (TupleIds 0..4).
inline Dataset PaperTableIV() {
  Schema schema({{"d1"}, {"d2"}, {"d3"}},
                {{"m1", Direction::kLargerIsBetter},
                 {"m2", Direction::kLargerIsBetter}});
  Dataset d(std::move(schema));
  d.Add(Row{{"a1", "b2", "c2"}, {10, 15}});  // t1
  d.Add(Row{{"a1", "b1", "c1"}, {15, 10}});  // t2
  d.Add(Row{{"a2", "b1", "c2"}, {17, 17}});  // t3
  d.Add(Row{{"a2", "b1", "c1"}, {20, 20}});  // t4
  d.Add(Row{{"a1", "b1", "c1"}, {11, 15}});  // t5
  return d;
}

/// Table I, the mini-world of basketball gamelogs. Dimension space is the
/// one Example 1 uses: {player, month, season, team, opp_team} (day is
/// displayed in the table but not a dimension attribute); measures
/// {points, assists, rebounds}, all larger-is-better.
inline Dataset PaperTableI() {
  Schema schema({{"player"}, {"month"}, {"season"}, {"team"}, {"opp_team"}},
                {{"points", Direction::kLargerIsBetter},
                 {"assists", Direction::kLargerIsBetter},
                 {"rebounds", Direction::kLargerIsBetter}});
  Dataset d(std::move(schema));
  d.Add(Row{{"Bogues", "Feb", "1991-92", "Hornets", "Hawks"}, {4, 12, 5}});
  d.Add(Row{{"Seikaly", "Feb", "1991-92", "Heat", "Hawks"}, {24, 5, 15}});
  d.Add(Row{{"Sherman", "Dec", "1993-94", "Celtics", "Nets"}, {13, 13, 5}});
  d.Add(Row{{"Wesley", "Feb", "1994-95", "Celtics", "Nets"}, {2, 5, 2}});
  d.Add(
      Row{{"Wesley", "Feb", "1994-95", "Celtics", "Timberwolves"}, {3, 5, 3}});
  d.Add(Row{{"Strickland", "Jan", "1995-96", "Blazers", "Celtics"},
            {27, 18, 8}});
  d.Add(Row{{"Wesley", "Feb", "1995-96", "Celtics", "Nets"}, {12, 13, 5}});
  return d;
}

/// Config for randomized equivalence datasets: small cardinalities force
/// heavy value agreement; small integer measures force ties and duplicates.
struct RandomDataConfig {
  int num_tuples = 100;
  int num_dims = 3;
  int num_measures = 2;
  int dim_cardinality = 3;
  int measure_levels = 6;       // values drawn from [0, measure_levels)
  double duplicate_prob = 0.1;  // chance of replaying a previous row verbatim
  bool mixed_directions = false;
  uint64_t seed = 1;
};

inline Dataset RandomDataset(const RandomDataConfig& cfg) {
  std::vector<DimensionAttribute> dims;
  for (int i = 0; i < cfg.num_dims; ++i) {
    dims.push_back({"d" + std::to_string(i)});
  }
  std::vector<MeasureAttribute> meas;
  for (int j = 0; j < cfg.num_measures; ++j) {
    Direction dir = (cfg.mixed_directions && j % 2 == 1)
                        ? Direction::kSmallerIsBetter
                        : Direction::kLargerIsBetter;
    meas.push_back({"m" + std::to_string(j), dir});
  }
  Dataset out(Schema(std::move(dims), std::move(meas)));
  Rng rng(cfg.seed);
  for (int i = 0; i < cfg.num_tuples; ++i) {
    if (i > 0 && rng.NextBool(cfg.duplicate_prob)) {
      out.Add(out.rows()[rng.NextBounded(out.rows().size())]);
      continue;
    }
    Row row;
    for (int d = 0; d < cfg.num_dims; ++d) {
      row.dimensions.push_back(
          "v" + std::to_string(rng.NextBounded(cfg.dim_cardinality)));
    }
    for (int j = 0; j < cfg.num_measures; ++j) {
      row.measures.push_back(
          static_cast<double>(rng.NextBounded(cfg.measure_levels)));
    }
    out.Add(std::move(row));
  }
  return out;
}

/// Streams `dataset` through `discoverer`, returning per-arrival canonical
/// fact sets. `relation` must be the (initially empty) relation the
/// discoverer was built on.
inline std::vector<std::vector<SkylineFact>> RunStream(
    Relation* relation, Discoverer* discoverer, const Dataset& dataset) {
  std::vector<std::vector<SkylineFact>> out;
  for (const Row& row : dataset.rows()) {
    TupleId t = relation->Append(row);
    std::vector<SkylineFact> facts;
    discoverer->Discover(t, &facts);
    CanonicalizeFacts(&facts);
    out.push_back(std::move(facts));
  }
  return out;
}

/// Human-readable diff context for fact-set mismatches.
inline std::string DescribeFacts(const Relation& r,
                                 const std::vector<SkylineFact>& facts) {
  std::string out;
  for (const auto& f : facts) {
    out += "  " + FactToString(r, f) + "\n";
  }
  return out;
}

/// Checks Invariant 1: every µ bucket equals the recomputed contextual
/// skyline, for every constraint derivable from any tuple.
inline void VerifyInvariant1(const Relation& r, MuStore* store, int max_bound,
                             const SubspaceUniverse& universe) {
  DimMask full = FullMask(r.schema().num_dimensions());
  for (TupleId t = 0; t < r.size(); ++t) {
    for (DimMask mask = 0; mask <= full; ++mask) {
      if (PopCount(mask) > max_bound) continue;
      Constraint c = Constraint::ForTuple(r, t, mask);
      MuStore::Context* ctx = store->Find(c);
      for (MeasureMask m : universe.masks()) {
        std::vector<TupleId> expected =
            ComputeContextualSkyline(r, c, m, r.size());
        std::vector<TupleId> actual;
        if (ctx != nullptr) ctx->Read(m, &actual);
        std::sort(expected.begin(), expected.end());
        std::sort(actual.begin(), actual.end());
        ASSERT_EQ(expected, actual)
            << "Invariant 1 violated at " << c.ToString(r) << " x "
            << SubspaceToString(r, m);
      }
    }
  }
}

/// Checks Invariant 2: a tuple is stored at (C, M) iff C is one of its
/// maximal skyline constraints in M.
inline void VerifyInvariant2(const Relation& r, MuStore* store, int max_bound,
                             const SubspaceUniverse& universe) {
  DimMask full = FullMask(r.schema().num_dimensions());
  for (TupleId t = 0; t < r.size(); ++t) {
    for (MeasureMask m : universe.masks()) {
      std::vector<DimMask> msc =
          ComputeMaximalSkylineConstraintMasks(r, t, m, max_bound, r.size());
      std::sort(msc.begin(), msc.end());
      for (DimMask mask = 0; mask <= full; ++mask) {
        if (PopCount(mask) > max_bound) continue;
        Constraint c = Constraint::ForTuple(r, t, mask);
        MuStore::Context* ctx = store->Find(c);
        bool stored = ctx != nullptr && ctx->Contains(m, t);
        bool expected = std::binary_search(msc.begin(), msc.end(), mask);
        ASSERT_EQ(expected, stored)
            << "Invariant 2 violated for tuple " << t << " at "
            << c.ToString(r) << " x " << SubspaceToString(r, m)
            << " (expected stored=" << expected << ")";
      }
    }
  }
}

}  // namespace testing_util
}  // namespace sitfact

#endif  // SITFACT_TESTS_TEST_UTIL_H_
