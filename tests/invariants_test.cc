// Mid-stream structural checks: the µ stores of the four lattice algorithms
// must satisfy Invariant 1 (BottomUp family: full contextual skylines) or
// Invariant 2 (TopDown family: maximal skyline constraints only) at every
// checkpoint, exactly as the paper's correctness proofs claim.

#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/shared_bottom_up.h"
#include "core/shared_top_down.h"
#include "core/top_down.h"
#include "storage/file_mu_store.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;
using testing_util::VerifyInvariant1;
using testing_util::VerifyInvariant2;

struct InvariantCase {
  std::string label;
  RandomDataConfig data;
  DiscoveryOptions options;
};

class InvariantTest : public ::testing::TestWithParam<InvariantCase> {
 protected:
  template <typename Algo>
  void CheckAtCheckpoints(bool invariant1) {
    const auto& param = GetParam();
    Dataset data = RandomDataset(param.data);
    Relation rel(data.schema());
    Algo disc(&rel, param.options);
    std::vector<SkylineFact> facts;
    int i = 0;
    for (const Row& row : data.rows()) {
      TupleId t = rel.Append(row);
      facts.clear();
      disc.Discover(t, &facts);
      if (++i % 25 == 0 || i == static_cast<int>(data.rows().size())) {
        if (invariant1) {
          VerifyInvariant1(rel, disc.mutable_store(), disc.max_bound_dims(),
                           disc.subspaces());
        } else {
          VerifyInvariant2(rel, disc.mutable_store(), disc.max_bound_dims(),
                           disc.subspaces());
        }
        if (HasFatalFailure()) return;
      }
    }
  }
};

TEST_P(InvariantTest, BottomUpKeepsInvariant1) {
  CheckAtCheckpoints<BottomUpDiscoverer>(/*invariant1=*/true);
}

TEST_P(InvariantTest, SharedBottomUpKeepsInvariant1) {
  CheckAtCheckpoints<SharedBottomUpDiscoverer>(/*invariant1=*/true);
}

TEST_P(InvariantTest, TopDownKeepsInvariant2) {
  CheckAtCheckpoints<TopDownDiscoverer>(/*invariant1=*/false);
}

TEST_P(InvariantTest, SharedTopDownKeepsInvariant2) {
  CheckAtCheckpoints<SharedTopDownDiscoverer>(/*invariant1=*/false);
}

std::vector<InvariantCase> InvariantCases() {
  std::vector<InvariantCase> cases;
  RandomDataConfig base;
  base.num_tuples = 75;
  base.seed = 31337;
  cases.push_back({"d3_m2", base, {}});

  RandomDataConfig dup = base;
  dup.duplicate_prob = 0.3;
  dup.measure_levels = 3;
  dup.seed = 31338;
  cases.push_back({"duplicates", dup, {}});

  RandomDataConfig wide = base;
  wide.num_dims = 4;
  wide.num_measures = 3;
  wide.num_tuples = 60;
  wide.seed = 31339;
  cases.push_back({"d4_m3_truncated", wide,
                   {.max_bound_dims = 2, .max_measure_dims = 2}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, InvariantTest, ::testing::ValuesIn(InvariantCases()),
    [](const ::testing::TestParamInfo<InvariantCase>& info) {
      return info.param.label;
    });

// Invariant 1 must hold for the *file-backed* store as well; this doubles as
// an end-to-end test that buckets survive the read-modify-write cycle.
TEST(FileStoreInvariant, SharedTopDownOnDiskKeepsInvariant2) {
  RandomDataConfig cfg;
  cfg.num_tuples = 50;
  cfg.seed = 777;
  Dataset data = RandomDataset(cfg);
  Relation rel(data.schema());
  auto dir = (std::filesystem::temp_directory_path() / "sitfact_inv_fs")
                 .string();
  SharedTopDownDiscoverer disc(&rel, {},
                               std::make_unique<FileMuStore>(dir));
  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    facts.clear();
    disc.Discover(rel.Append(row), &facts);
  }
  VerifyInvariant2(rel, disc.mutable_store(), disc.max_bound_dims(),
                   disc.subspaces());
}

}  // namespace
}  // namespace sitfact
