// Cross-module property tests: laws that tie the new modules (query, io,
// kskyband) back to the core definitions, on randomized inputs.

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/kskyband.h"
#include "io/snapshot.h"
#include "lattice/constraint.h"
#include "query/skyline_query.h"
#include "skyline/skyline_compute.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

class SeededProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Dataset MakeData(int n = 80) {
    RandomDataConfig cfg;
    cfg.seed = GetParam();
    cfg.num_tuples = n;
    cfg.num_dims = 3;
    cfg.num_measures = 3;
    cfg.mixed_directions = (GetParam() % 2 == 0);
    return RandomDataset(cfg);
  }

  static Relation Load(const Dataset& d) {
    Relation r(d.schema());
    for (const Row& row : d.rows()) r.Append(row);
    return r;
  }

  static std::vector<TupleId> AllIds(const Relation& r) {
    std::vector<TupleId> ids(r.size());
    for (TupleId t = 0; t < r.size(); ++t) ids[t] = t;
    return ids;
  }
};

TEST_P(SeededProperty, SkylineIsIdempotent) {
  // λ_M(λ_M(S)) = λ_M(S): re-running the skyline on its own output changes
  // nothing, for every evaluator.
  Dataset data = MakeData();
  Relation r = Load(data);
  SkylineQueryEngine engine(&r);
  for (MeasureMask m = 1; m < 8; ++m) {
    for (QueryAlgorithm algo :
         {QueryAlgorithm::kBlockNestedLoops, QueryAlgorithm::kSortFilter,
          QueryAlgorithm::kDivideConquer}) {
      auto once = engine.EvaluateCandidates(AllIds(r), m, algo);
      auto twice = engine.EvaluateCandidates(once.skyline, m, algo);
      ASSERT_EQ(once.skyline, twice.skyline) << "m=" << m;
    }
  }
}

TEST_P(SeededProperty, SkybandLadderIsMonotone) {
  // skyline = 1-skyband ⊆ 2-skyband ⊆ ... and the whole candidate set is
  // reached once k exceeds the max dominator count.
  Dataset data = MakeData();
  Relation r = Load(data);
  SkylineQueryEngine engine(&r);
  std::vector<TupleId> ids = AllIds(r);
  std::vector<TupleId> prev;
  for (int k = 1; k <= 8; ++k) {
    std::vector<TupleId> band = engine.KSkyband(ids, 0b111, k);
    ASSERT_TRUE(std::includes(band.begin(), band.end(), prev.begin(),
                              prev.end()))
        << "k=" << k;
    prev = std::move(band);
  }
  std::vector<TupleId> all =
      engine.KSkyband(ids, 0b111, static_cast<int>(ids.size()));
  EXPECT_EQ(all, ids);
}

TEST_P(SeededProperty, SubspaceSkylineNotSmallerOnProjection) {
  // Adding measures can only grow the skyline-or-keep: every skyline tuple
  // of M stays in the skyline of any superset M' ⊇ M? That is FALSE in
  // general (anti-monotonicity, Sec. IV) — assert the documented
  // counter-law instead: membership is NOT monotone, but the skyline of a
  // single measure {j} is exactly the arg-max set of that measure.
  Dataset data = MakeData();
  Relation r = Load(data);
  SkylineQueryEngine engine(&r);
  std::vector<TupleId> ids = AllIds(r);
  for (int j = 0; j < 3; ++j) {
    MeasureMask m = MeasureMask{1} << j;
    auto result = engine.EvaluateCandidates(ids, m,
                                            QueryAlgorithm::kSortFilter);
    double best = r.measure_key(ids[0], j);
    for (TupleId t : ids) best = std::max(best, r.measure_key(t, j));
    for (TupleId t : ids) {
      bool in_sky = std::binary_search(result.skyline.begin(),
                                       result.skyline.end(), t);
      ASSERT_EQ(in_sky, r.measure_key(t, j) == best) << "j=" << j;
    }
  }
}

TEST_P(SeededProperty, KSkybandContextSizesMatchCounter) {
  // The zeta-transformed context sizes must equal a direct σ_C(R) count
  // for every constraint in the last tuple's lattice.
  Dataset data = MakeData(40);
  Relation r(data.schema());
  KSkybandDiscoverer disc(&r, {});
  std::vector<KSkybandFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = r.Append(row);
    facts.clear();
    disc.Discover(t, &facts);
  }
  TupleId last = r.size() - 1;
  DimMask full = FullMask(r.schema().num_dimensions());
  for (DimMask mask = 0; mask <= full; ++mask) {
    Constraint c = Constraint::ForTuple(r, last, mask);
    EXPECT_EQ(disc.LastContextSize(mask),
              SelectContext(r, c, r.size()).size())
        << "mask=" << mask;
  }
}

TEST_P(SeededProperty, ConstraintSerializationRoundTrip) {
  // FromBoundValues(bound_mask, values-in-bit-order) inverts the accessor
  // view of any reachable constraint.
  Dataset data = MakeData(20);
  Relation r = Load(data);
  const int nd = r.schema().num_dimensions();
  for (TupleId t = 0; t < r.size(); ++t) {
    for (DimMask mask = 0; mask <= FullMask(nd); ++mask) {
      Constraint original = Constraint::ForTuple(r, t, mask);
      std::vector<ValueId> values;
      ForEachBit(original.bound_mask(),
                 [&](int d) { values.push_back(original.value(d)); });
      Constraint rebuilt =
          Constraint::FromBoundValues(nd, original.bound_mask(), values);
      ASSERT_EQ(original, rebuilt);
      ASSERT_EQ(original.Hash(), rebuilt.Hash());
    }
  }
}

TEST_P(SeededProperty, RelationSnapshotRoundTripsWithChurn) {
  // Random relation + random tombstones survive a save/load cycle with
  // identical encodings and measure keys.
  Dataset data = MakeData(60);
  Relation original = Load(data);
  Rng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    original.MarkDeleted(
        static_cast<TupleId>(rng.NextBounded(original.size())));
  }

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sitfact_prop_snap_" + std::to_string(::getpid()) + "_" +
        std::to_string(GetParam()) + ".snap"))
          .string();
  ASSERT_TRUE(SaveRelationSnapshot(original, path).ok());
  auto loaded_or = LoadRelationSnapshot(path);
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const Relation& loaded = *loaded_or.value();

  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.live_size(), original.live_size());
  for (TupleId t = 0; t < loaded.size(); ++t) {
    ASSERT_EQ(loaded.IsDeleted(t), original.IsDeleted(t));
    ASSERT_EQ(loaded.AgreeMask(t, loaded.size() - 1),
              original.AgreeMask(t, original.size() - 1));
    for (int j = 0; j < loaded.schema().num_measures(); ++j) {
      ASSERT_EQ(loaded.measure_key(t, j), original.measure_key(t, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(101, 202, 303, 404));

TEST(Crc32Laws, ExtendComposesLikeConcatenation) {
  const std::string a = "prominent ";
  const std::string b = "situational facts";
  const std::string ab = a + b;
  uint32_t incremental = Crc32::Extend(Crc32::Of(a.data(), a.size()),
                                       b.data(), b.size());
  EXPECT_EQ(incremental, Crc32::Of(ab.data(), ab.size()));
}

TEST(Crc32Laws, SensitiveToEveryBytePosition) {
  std::string base(64, 'q');
  const uint32_t reference = Crc32::Of(base.data(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    std::string mutated = base;
    mutated[i] ^= 0x01;
    EXPECT_NE(Crc32::Of(mutated.data(), mutated.size()), reference)
        << "byte " << i;
  }
}

}  // namespace
}  // namespace sitfact
