// The durability subsystem's correctness bar is differential: a store that
// is checkpointed, killed (possibly mid-WAL-record) and recovered must
// produce tuple-for-tuple the reports — facts, prominence scores, prominent
// selections — and the final counter/relation state of an engine that never
// stopped. These tests run that experiment over NBA, weather and synthetic
// streams (with deletions and updates mixed in), across the restorable
// algorithm families, both engine backends, and WAL truncations at every
// byte offset.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "datagen/nba_generator.h"
#include "datagen/weather_generator.h"
#include "persist/durable_engine.h"
#include "persist/wal.h"
#include "service/fact_feed.h"
#include "storage/storage_options.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

namespace fs = std::filesystem;

using persist::DurableEngine;
using persist::DurableOptions;
using persist::WalOp;
using persist::WalOpKind;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("sitfact_recovery_" + std::to_string(::getpid()) + "_" + name))
                  .string()) {
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

Dataset NbaData(int n) {
  NbaGenerator::Config cfg;
  cfg.tuples_per_season = n > 8 ? n / 8 : 1;
  Dataset full = NbaGenerator(cfg).Generate(n);
  auto proj = full.Project(NbaGenerator::DimensionsForD(4),
                           NbaGenerator::MeasuresForM(4));
  SITFACT_CHECK(proj.ok());
  return std::move(proj).value();
}

Dataset WeatherData(int n) {
  WeatherGenerator::Config cfg;
  cfg.num_locations = 64;
  cfg.records_per_day = n > 24 ? n / 24 : 1;
  Dataset full = WeatherGenerator(cfg).Generate(n);
  auto proj = full.Project(WeatherGenerator::DimensionsForD(3),
                           WeatherGenerator::MeasuresForM(3));
  SITFACT_CHECK(proj.ok());
  return std::move(proj).value();
}

Dataset SyntheticData(int n) {
  RandomDataConfig cfg;
  cfg.num_tuples = n;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  cfg.mixed_directions = true;
  cfg.seed = 99;
  return RandomDataset(cfg);
}

/// An op script: the WalOp struct doubles as the scripted-op record (seq
/// unused). Targets are chosen against a simulated relation so every
/// executor sees the same valid ops.
std::vector<WalOp> MakeScript(const Dataset& data, bool mutations,
                              uint64_t seed) {
  std::vector<WalOp> script;
  Rng rng(seed);
  std::vector<TupleId> live;
  TupleId next_id = 0;
  for (size_t i = 0; i < data.rows().size(); ++i) {
    if (mutations && i % 9 == 8 && live.size() > 4) {
      WalOp op;
      op.kind = WalOpKind::kRemove;
      size_t pick = rng.NextBounded(live.size());
      op.target = live[pick];
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      script.push_back(op);
    }
    if (mutations && i % 13 == 12 && live.size() > 4) {
      WalOp op;
      op.kind = WalOpKind::kUpdate;
      size_t pick = rng.NextBounded(live.size());
      op.target = live[pick];
      op.row = data.rows()[i];
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      live.push_back(next_id++);
      script.push_back(op);
      continue;  // the row entered via the update
    }
    WalOp op;
    op.kind = WalOpKind::kAppend;
    op.row = data.rows()[i];
    live.push_back(next_id++);
    script.push_back(op);
  }
  return script;
}

struct RunResult {
  std::vector<ArrivalReport> reports;  // slot per op; removes leave it empty
  uint32_t relation_size = 0;
  uint32_t live_size = 0;
  std::map<Constraint, uint64_t> counts;  // zero entries dropped
  ArrivalReport probe;                    // report of one extra append
};

void ExpectReportsEqual(const ArrivalReport& got, const ArrivalReport& want,
                        const std::string& where) {
  EXPECT_EQ(got.tuple, want.tuple) << where;
  EXPECT_EQ(got.facts, want.facts) << where;
  ASSERT_EQ(got.ranked.size(), want.ranked.size()) << where;
  for (size_t i = 0; i < want.ranked.size(); ++i) {
    EXPECT_EQ(got.ranked[i].fact, want.ranked[i].fact) << where << " #" << i;
    EXPECT_EQ(got.ranked[i].context_size, want.ranked[i].context_size)
        << where << " #" << i;
    EXPECT_EQ(got.ranked[i].skyline_size, want.ranked[i].skyline_size)
        << where << " #" << i;
    EXPECT_EQ(got.ranked[i].prominence, want.ranked[i].prominence)
        << where << " #" << i;
  }
  ASSERT_EQ(got.prominent.size(), want.prominent.size()) << where;
  for (size_t i = 0; i < want.prominent.size(); ++i) {
    EXPECT_EQ(got.prominent[i].fact, want.prominent[i].fact)
        << where << " #" << i;
  }
}

void ExpectRunsEqual(const RunResult& got, const RunResult& want,
                     const std::string& where) {
  ASSERT_EQ(got.reports.size(), want.reports.size()) << where;
  for (size_t i = 0; i < want.reports.size(); ++i) {
    ExpectReportsEqual(got.reports[i], want.reports[i],
                       where + " op " + std::to_string(i));
  }
  EXPECT_EQ(got.relation_size, want.relation_size) << where;
  EXPECT_EQ(got.live_size, want.live_size) << where;
  EXPECT_EQ(got.counts, want.counts) << where;
  ExpectReportsEqual(got.probe, want.probe, where + " probe");
}

Row ProbeRow(const Dataset& data) { return data.rows().front(); }

std::map<Constraint, uint64_t> CounterOf(DurableEngine* durable) {
  std::map<Constraint, uint64_t> out;
  auto add = [&out](const Constraint& c, uint64_t n) {
    if (n > 0) out[c] = n;
  };
  if (durable->engine() != nullptr) {
    durable->engine()->counter().ForEach(add);
  } else {
    durable->sharded_engine()->discoverer().ForEachContextCount(add);
  }
  return out;
}

/// Uninterrupted reference: one sequential engine over the whole script.
RunResult RunReference(const Dataset& data, const std::string& algorithm,
                       const std::vector<WalOp>& script,
                       const std::string& fs_dir) {
  Relation relation(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer(algorithm, &relation,
                                                   DiscoveryOptions(), fs_dir);
  SITFACT_CHECK_MSG(disc_or.ok(), disc_or.status().ToString().c_str());
  DiscoveryEngine::Config config;
  config.tau = 2.0;
  config.rank_facts = disc_or.value()->store() != nullptr;
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);

  RunResult out;
  out.reports.resize(script.size());
  for (size_t i = 0; i < script.size(); ++i) {
    const WalOp& op = script[i];
    switch (op.kind) {
      case WalOpKind::kAppend:
        out.reports[i] = engine.Append(op.row);
        break;
      case WalOpKind::kRemove: {
        Status st = engine.Remove(op.target);
        SITFACT_CHECK_MSG(st.ok(), st.ToString().c_str());
        break;
      }
      case WalOpKind::kUpdate: {
        auto report_or = engine.Update(op.target, op.row);
        SITFACT_CHECK_MSG(report_or.ok(),
                          report_or.status().ToString().c_str());
        out.reports[i] = std::move(report_or).value();
        break;
      }
    }
  }
  out.relation_size = relation.size();
  out.live_size = relation.live_size();
  engine.counter().ForEach([&](const Constraint& c, uint64_t n) {
    if (n > 0) out.counts[c] = n;
  });
  out.probe = engine.Append(ProbeRow(data));
  return out;
}

StatusOr<ArrivalReport> ApplyToDurable(DurableEngine* durable,
                                       const WalOp& op) {
  switch (op.kind) {
    case WalOpKind::kAppend:
      return durable->Append(op.row);
    case WalOpKind::kRemove: {
      Status st = durable->Remove(op.target);
      if (!st.ok()) return st;
      return ArrivalReport();
    }
    case WalOpKind::kUpdate:
      return durable->Update(op.target, op.row);
  }
  return Status::InvalidArgument("bad op kind");
}

/// Durable run killed after `cut` ops (the DurableEngine is destroyed — a
/// kill, since records are flushed per op), optionally with the newest WAL
/// segment truncated to simulate a crash mid-write, then recovered and
/// finished. Ops the truncation destroyed are re-sent from next_seq(), the
/// at-least-once producer contract.
RunResult RunDurableWithKill(const Dataset& data, DurableOptions options,
                             const std::vector<WalOp>& script, size_t cut,
                             size_t truncate_tail_bytes) {
  RunResult out;
  out.reports.resize(script.size());
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    SITFACT_CHECK_MSG(durable_or.ok(),
                      durable_or.status().ToString().c_str());
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    for (size_t i = 0; i < cut; ++i) {
      auto report_or = ApplyToDurable(durable.get(), script[i]);
      SITFACT_CHECK_MSG(report_or.ok(),
                        report_or.status().ToString().c_str());
      out.reports[i] = std::move(report_or).value();
    }
  }  // kill

  if (truncate_tail_bytes > 0) {
    std::string newest_wal;
    for (const auto& entry : fs::directory_iterator(options.dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("wal-", 0) == 0 && name > newest_wal) {
        newest_wal = entry.path().string();
      }
    }
    SITFACT_CHECK(!newest_wal.empty());
    const auto size = fs::file_size(newest_wal);
    if (truncate_tail_bytes < size) {
      fs::resize_file(newest_wal, size - truncate_tail_bytes);
    }
  }

  auto durable_or = DurableEngine::Open(options, Schema());
  SITFACT_CHECK_MSG(durable_or.ok(), durable_or.status().ToString().c_str());
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  const uint64_t resume_at = durable->next_seq();
  SITFACT_CHECK(resume_at <= cut);
  for (size_t i = resume_at; i < script.size(); ++i) {
    auto report_or = ApplyToDurable(durable.get(), script[i]);
    SITFACT_CHECK_MSG(report_or.ok(), report_or.status().ToString().c_str());
    // Re-sent ops (lost to truncation) must reproduce the pre-kill report.
    out.reports[i] = std::move(report_or).value();
  }
  out.relation_size = durable->relation().size();
  out.live_size = durable->relation().live_size();
  out.counts = CounterOf(durable.get());
  auto probe_or = durable->Append(ProbeRow(data));
  SITFACT_CHECK_MSG(probe_or.ok(), probe_or.status().ToString().c_str());
  out.probe = std::move(probe_or).value();
  return out;
}

// ---------------------------------------------------------------------------
// Sequential engines, all three stream families, mutations included where
// the algorithm supports removal, kills at several cut points.

struct SequentialCase {
  const char* label;
  const char* algorithm;
  bool mutations;
};

void RunSequentialMatrix(const Dataset& data, const std::string& data_label,
                         const std::vector<SequentialCase>& cases) {
  for (const SequentialCase& c : cases) {
    std::vector<WalOp> script = MakeScript(data, c.mutations, /*seed=*/5);
    RunResult reference = RunReference(data, c.algorithm, script, "");
    for (size_t cut : {size_t{3}, script.size() / 2, script.size() - 2}) {
      TempDir dir(data_label + std::string("_") + c.label + "_" +
                  std::to_string(cut));
      DurableOptions options;
      options.dir = dir.sub("store");
      options.algorithm = c.algorithm;
      options.tau = 2.0;
      options.checkpoint_every = 13;
      RunResult durable =
          RunDurableWithKill(data, options, script, cut, /*truncate=*/0);
      ExpectRunsEqual(durable, reference,
                      data_label + "/" + c.label + " cut " +
                          std::to_string(cut));
    }
  }
}

TEST(PersistRecovery, NbaSequentialKillRestore) {
  RunSequentialMatrix(NbaData(60), "nba",
                      {{"BottomUp", "BottomUp", true},
                       {"STopDown", "STopDown", true}});
}

TEST(PersistRecovery, WeatherSequentialKillRestore) {
  RunSequentialMatrix(WeatherData(60), "weather",
                      {{"TopDown", "TopDown", true},
                       {"SBottomUp", "SBottomUp", true}});
}

TEST(PersistRecovery, SyntheticSequentialKillRestore) {
  RunSequentialMatrix(SyntheticData(70), "synth",
                      {{"STopDown", "STopDown", true},
                       {"BottomUp", "BottomUp", true}});
}

// File-backed µ store: bucket files live outside the snapshot and are fully
// rewritten on restore.
TEST(PersistRecovery, FileStoreKillRestore) {
  Dataset data = NbaData(40);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/true, 5);
  TempDir dir("fsbu");
  RunResult reference =
      RunReference(data, "FSBottomUp", script, dir.sub("ref_store"));
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "FSBottomUp";
  options.file_store_dir = dir.sub("fs_buckets");
  options.tau = 2.0;
  options.checkpoint_every = 11;
  RunResult durable = RunDurableWithKill(data, options, script,
                                         script.size() / 2, /*truncate=*/0);
  ExpectRunsEqual(durable, reference, "FSBottomUp");
}

// Store-less algorithms: BaselineIdx restores by rebuilding its k-d tree
// from the relation; C-CSC cannot restore at all and uses the replay
// escape hatch. Neither ranks facts (no µ store), and neither supports
// removal, so the scripts are append-only.
TEST(PersistRecovery, BaselineIdxKillRestore) {
  Dataset data = SyntheticData(50);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "BaselineIdx", script, "");
  TempDir dir("bidx");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "BaselineIdx";
  options.tau = 2.0;
  options.checkpoint_every = 17;
  RunResult durable = RunDurableWithKill(data, options, script,
                                         script.size() / 3, /*truncate=*/0);
  ExpectRunsEqual(durable, reference, "BaselineIdx");
}

TEST(PersistRecovery, CcscReplayRebuildKillRestore) {
  Dataset data = SyntheticData(40);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "C-CSC", script, "");
  TempDir dir("ccsc");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "C-CSC";
  options.tau = 2.0;
  options.checkpoint_every = 9;
  options.allow_replay_rebuild = true;
  RunResult durable = RunDurableWithKill(data, options, script,
                                         script.size() / 2, /*truncate=*/0);
  ExpectRunsEqual(durable, reference, "C-CSC");
}

// ---------------------------------------------------------------------------
// The sharded backend: durable sharded runs must match the sequential
// reference (its own equivalence contract), and stores must restore across
// backends and shard counts.

TEST(PersistRecovery, ShardedKillRestoreMatchesSequentialReference) {
  for (const auto& [label, data] :
       {std::pair<const char*, Dataset>{"nba", NbaData(60)},
        std::pair<const char*, Dataset>{"synth", SyntheticData(60)}}) {
    std::vector<WalOp> script = MakeScript(data, /*mutations=*/true, 5);
    RunResult reference = RunReference(data, "SBottomUp", script, "");
    for (size_t cut : {script.size() / 3, script.size() - 2}) {
      TempDir dir(std::string("sharded_") + label + "_" +
                  std::to_string(cut));
      DurableOptions options;
      options.dir = dir.sub("store");
      options.num_shards = 3;
      options.num_threads = 2;
      options.tau = 2.0;
      options.checkpoint_every = 13;
      RunResult durable =
          RunDurableWithKill(data, options, script, cut, /*truncate=*/0);
      ExpectRunsEqual(durable, reference,
                      std::string("sharded/") + label + " cut " +
                          std::to_string(cut));
    }
  }
}

TEST(PersistRecovery, CrossBackendAndShardCountRestore) {
  Dataset data = SyntheticData(50);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/true, 5);
  RunResult reference = RunReference(data, "SBottomUp", script, "");
  const size_t cut = script.size() / 2;

  // Written sequential (SBottomUp), reopened sharded K=4.
  {
    TempDir dir("seq_to_sharded");
    DurableOptions options;
    options.dir = dir.sub("store");
    options.algorithm = "SBottomUp";
    options.tau = 2.0;
    options.checkpoint_every = 7;
    {
      auto durable_or = DurableEngine::Open(options, data.schema());
      ASSERT_TRUE(durable_or.ok());
      for (size_t i = 0; i < cut; ++i) {
        ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
      }
    }
    options.num_shards = 4;
    options.num_threads = 2;
    auto durable_or = DurableEngine::Open(options, Schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    ASSERT_TRUE(durable->sharded());
    RunResult got;
    got.reports.resize(script.size());
    for (size_t i = 0; i < cut; ++i) got.reports[i] = reference.reports[i];
    for (size_t i = durable->next_seq(); i < script.size(); ++i) {
      auto report_or = ApplyToDurable(durable.get(), script[i]);
      ASSERT_TRUE(report_or.ok());
      got.reports[i] = std::move(report_or).value();
    }
    got.relation_size = durable->relation().size();
    got.live_size = durable->relation().live_size();
    got.counts = CounterOf(durable.get());
    auto probe_or = durable->Append(ProbeRow(data));
    ASSERT_TRUE(probe_or.ok());
    got.probe = std::move(probe_or).value();
    ExpectRunsEqual(got, reference, "seq->sharded");
  }

  // Written sharded K=3, reopened sequential (maps to SBottomUp), then
  // reopened sharded again at K=5.
  {
    TempDir dir("sharded_roundtrip");
    DurableOptions options;
    options.dir = dir.sub("store");
    options.num_shards = 3;
    options.num_threads = 2;
    options.tau = 2.0;
    {
      auto durable_or = DurableEngine::Open(options, data.schema());
      ASSERT_TRUE(durable_or.ok());
      for (size_t i = 0; i < cut; ++i) {
        ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
      }
      ASSERT_TRUE(durable_or.value()->Checkpoint().ok());
    }
    {
      DurableOptions seq = options;
      seq.num_shards = 0;
      seq.num_threads = 0;
      auto durable_or = DurableEngine::Open(seq, Schema());
      ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
      ASSERT_FALSE(durable_or.value()->sharded());
      EXPECT_EQ(durable_or.value()->algorithm(), "SBottomUp");
      ASSERT_TRUE(durable_or.value()->Checkpoint().ok());
    }
    options.num_shards = 5;
    auto durable_or = DurableEngine::Open(options, Schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    for (size_t i = durable->next_seq(); i < script.size(); ++i) {
      ASSERT_TRUE(ApplyToDurable(durable.get(), script[i]).ok());
    }
    EXPECT_EQ(durable->relation().size(), reference.relation_size);
    EXPECT_EQ(durable->relation().live_size(), reference.live_size);
    EXPECT_EQ(CounterOf(durable.get()), reference.counts);
    auto probe_or = durable->Append(ProbeRow(data));
    ASSERT_TRUE(probe_or.ok());
    ExpectReportsEqual(probe_or.value(), reference.probe,
                       "sharded roundtrip probe");
  }
}

// ---------------------------------------------------------------------------
// Mid-record truncation, exhaustively: for EVERY byte offset of the WAL
// tail, a kill + truncate + recover + re-send run must converge to the
// reference. This is the "torn write at an arbitrary offset" guarantee.

TEST(PersistRecovery, WalTruncationAtEveryByteOffset) {
  Dataset data = SyntheticData(24);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/true, 5);
  RunResult reference = RunReference(data, "STopDown", script, "");

  // Build one killed store with a half-stream WAL tail, then replay the
  // recovery from a pristine copy for every truncation length.
  TempDir dir("torn");
  DurableOptions options;
  options.dir = dir.sub("master");
  options.algorithm = "STopDown";
  options.tau = 2.0;
  options.checkpoint_every = 10;  // snapshot at seq 10+, tail beyond it
  const size_t cut = script.size() - 2;
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok());
    for (size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
    }
  }
  std::string newest_wal;
  for (const auto& entry : fs::directory_iterator(options.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name > newest_wal) {
      newest_wal = entry.path().filename().string();
    }
  }
  ASSERT_FALSE(newest_wal.empty());
  const auto wal_size =
      fs::file_size(fs::path(options.dir) / newest_wal);
  ASSERT_GT(wal_size, 24u);

  uint64_t prev_resume = 0;
  bool first = true;
  for (uintmax_t keep = wal_size; keep + 1 > 24; --keep) {
    DurableOptions trial = options;
    trial.dir = dir.sub("trial");
    std::error_code ec;
    fs::remove_all(trial.dir, ec);
    fs::copy(options.dir, trial.dir);
    fs::resize_file(fs::path(trial.dir) / newest_wal, keep);

    auto durable_or = DurableEngine::Open(trial, Schema());
    ASSERT_TRUE(durable_or.ok())
        << "keep " << keep << ": " << durable_or.status().ToString();
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    const uint64_t resume_at = durable->next_seq();
    ASSERT_LE(resume_at, cut) << "keep " << keep;
    if (!first) {
      // Fewer surviving bytes can never recover more ops.
      ASSERT_LE(resume_at, prev_resume) << "keep " << keep;
    }
    first = false;
    prev_resume = resume_at;

    for (size_t i = resume_at; i < script.size(); ++i) {
      auto report_or = ApplyToDurable(durable.get(), script[i]);
      ASSERT_TRUE(report_or.ok()) << "keep " << keep;
      // Spot-check replays against the reference (full compare per offset
      // would swamp the log on failure).
      if (script[i].kind != WalOpKind::kRemove) {
        ExpectReportsEqual(report_or.value(), reference.reports[i],
                           "keep " + std::to_string(keep) + " op " +
                               std::to_string(i));
      }
    }
    EXPECT_EQ(durable->relation().size(), reference.relation_size)
        << "keep " << keep;
    EXPECT_EQ(durable->relation().live_size(), reference.live_size)
        << "keep " << keep;
    EXPECT_EQ(CounterOf(durable.get()), reference.counts) << "keep " << keep;
  }
}

// A second crash after a torn-tail recovery must not lose the ops the first
// recovery's successor segment accumulated: the successor starts exactly at
// the truncation point, so the replay chain continues through it instead of
// stopping at the old scar (and the new segment created at the recovered
// cursor must not clobber it).
TEST(PersistRecovery, RepeatedCrashAfterTornTailKeepsSuccessorSegmentOps) {
  Dataset data = SyntheticData(30);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "STopDown", script, "");
  TempDir dir("successor");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "STopDown";
  options.tau = 2.0;  // manual checkpoints only: the whole tail is WAL

  // Crash 1: 20 ops in the genesis segment, last record torn.
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok());
    for (size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
    }
  }
  const std::string genesis_wal =
      (fs::path(options.dir) / "wal-00000000000000000000.sfwal").string();
  fs::resize_file(genesis_wal, fs::file_size(genesis_wal) - 5);

  // Recovery 1 drops the torn op 19, re-sends 19..24, then crash 2.
  uint64_t resumed_at = 0;
  {
    auto durable_or = DurableEngine::Open(options, Schema());
    ASSERT_TRUE(durable_or.ok());
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    EXPECT_TRUE(durable->recovery().tail_truncated);
    resumed_at = durable->next_seq();
    ASSERT_LT(resumed_at, 20u);
    for (size_t i = resumed_at; i < 25; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable.get(), script[i]).ok());
    }
  }

  // Recovery 2 must pick up the successor segment's acknowledged ops: the
  // chain is genesis ops [0, resumed_at), torn scar, successor ops
  // [resumed_at, 25).
  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok());
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  EXPECT_EQ(durable->next_seq(), 25u);
  EXPECT_FALSE(durable->recovery().tail_truncated)
      << durable->recovery().note;
  for (size_t i = durable->next_seq(); i < script.size(); ++i) {
    ASSERT_TRUE(ApplyToDurable(durable.get(), script[i]).ok());
  }
  EXPECT_EQ(durable->relation().size(), reference.relation_size);
  EXPECT_EQ(CounterOf(durable.get()), reference.counts);
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  ExpectReportsEqual(probe_or.value(), reference.probe, "successor probe");
}

// The inverse hazard: when mid-chain corruption drops ops, any segment
// starting beyond the drop point is a dead timeline (its ops build on the
// dropped ones) and must be removed — otherwise, once re-sent ops advance
// the cursor back to its start_seq, a later recovery would splice the old
// timeline onto the new one.
TEST(PersistRecovery, StaleSegmentsBeyondTruncationAreRemoved) {
  Dataset data = SyntheticData(30);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "STopDown", script, "");
  TempDir dir("stale");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "STopDown";
  options.tau = 2.0;  // manual checkpoints only

  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok());
    for (size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
    }
  }
  // Clean recovery rotates to wal-20; ops 20..24 land there; kill.
  {
    auto durable_or = DurableEngine::Open(options, Schema());
    ASSERT_TRUE(durable_or.ok());
    ASSERT_EQ(durable_or.value()->next_seq(), 20u);
    for (size_t i = 20; i < 25; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
    }
  }
  // Bit rot inside wal-0: flip a byte well inside the record stream so
  // replay stops mid-segment, stranding wal-20 on a dead timeline.
  const std::string genesis_wal =
      (fs::path(options.dir) / "wal-00000000000000000000.sfwal").string();
  {
    std::fstream f(genesis_wal,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(fs::file_size(genesis_wal) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x20);
    f.write(&byte, 1);
  }
  uint64_t resumed_at = 0;
  {
    auto durable_or = DurableEngine::Open(options, Schema());
    ASSERT_TRUE(durable_or.ok());
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    EXPECT_TRUE(durable->recovery().tail_truncated);
    resumed_at = durable->next_seq();
    ASSERT_LT(resumed_at, 20u);
    EXPECT_FALSE(fs::exists(fs::path(options.dir) /
                            "wal-00000000000000000020.sfwal"))
        << "dead-timeline segment must be removed";
    // Re-send the new timeline to the end and kill.
    for (size_t i = resumed_at; i < script.size(); ++i) {
      ASSERT_TRUE(ApplyToDurable(durable.get(), script[i]).ok());
    }
  }
  // The final recovery walks only the new timeline.
  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok());
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  EXPECT_EQ(durable->next_seq(), script.size());
  EXPECT_EQ(durable->relation().size(), reference.relation_size);
  EXPECT_EQ(CounterOf(durable.get()), reference.counts);
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  ExpectReportsEqual(probe_or.value(), reference.probe, "stale probe");
}

// A corrupted newest snapshot falls back to the previous one, replaying the
// longer WAL chain instead.
TEST(PersistRecovery, CorruptSnapshotFallsBackToOlderOne) {
  Dataset data = SyntheticData(40);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "STopDown", script, "");
  TempDir dir("fallback");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "STopDown";
  options.tau = 2.0;
  options.checkpoint_every = 10;
  // This test is about FULL-snapshot fallback; force every checkpoint to be
  // a full snapshot so there are several to fall back through. (Corrupt
  // deltas have their own fallback tests below.)
  options.delta_checkpoints = false;
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok());
    for (const WalOp& op : script) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), op).ok());
    }
  }
  // Flip a byte in the middle of the newest snapshot.
  std::string newest;
  for (const auto& entry : fs::directory_iterator(options.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0 && name > newest) {
      newest = entry.path().string();
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::fstream f(newest,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(fs::file_size(newest) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x10);
    f.write(&byte, 1);
  }
  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  EXPECT_LT(durable->recovery().snapshot_seq, script.size());
  EXPECT_EQ(durable->next_seq(), script.size());
  EXPECT_EQ(durable->relation().size(), reference.relation_size);
  EXPECT_EQ(CounterOf(durable.get()), reference.counts);
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  ExpectReportsEqual(probe_or.value(), reference.probe, "fallback probe");
}

// ---------------------------------------------------------------------------
// FactFeed durability: rows published through the async feed are WAL-logged
// and checkpointed per the every-N policy; a kill after Drain loses nothing.

TEST(PersistRecovery, FactFeedDurableBackendSurvivesKill) {
  Dataset data = NbaData(50);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "STopDown", script, "");
  TempDir dir("feed");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "STopDown";
  options.tau = 2.0;
  options.checkpoint_every = 16;
  uint64_t feed_prominent = 0;
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok());
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    uint64_t seen = 0;
    FactFeed feed(
        durable.get(), [&seen](const ArrivalReport&) { ++seen; },
        FactFeed::Options{.queue_capacity = 8});
    for (const Row& row : data.rows()) {
      ASSERT_TRUE(feed.Publish(row));
    }
    feed.Drain();
    feed.Stop();
    ASSERT_TRUE(feed.durable_status().ok());
    EXPECT_EQ(feed.processed(), data.rows().size());
    feed_prominent = feed.prominent_arrivals();
  }  // kill
  uint64_t reference_prominent = 0;
  for (const ArrivalReport& report : reference.reports) {
    if (!report.prominent.empty()) ++reference_prominent;
  }
  EXPECT_EQ(feed_prominent, reference_prominent);

  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok());
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  EXPECT_EQ(durable->next_seq(), data.rows().size());
  EXPECT_EQ(durable->relation().size(), reference.relation_size);
  EXPECT_EQ(CounterOf(durable.get()), reference.counts);
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  ExpectReportsEqual(probe_or.value(), reference.probe, "feed probe");
}

// Durable sharded feed: batched WAL-logged drain.
TEST(PersistRecovery, FactFeedDurableShardedBackend) {
  Dataset data = SyntheticData(40);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "SBottomUp", script, "");
  TempDir dir("feed_sharded");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.num_shards = 3;
  options.num_threads = 2;
  options.tau = 2.0;
  options.checkpoint_every = 12;
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok());
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    FactFeed feed(durable.get(), nullptr,
                  FactFeed::Options{.queue_capacity = 16, .max_batch = 8});
    for (const Row& row : data.rows()) {
      ASSERT_TRUE(feed.Publish(row));
    }
    feed.Drain();
    feed.Stop();
    ASSERT_TRUE(feed.durable_status().ok());
    EXPECT_EQ(feed.processed(), data.rows().size());
  }
  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok());
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  EXPECT_EQ(durable->next_seq(), data.rows().size());
  EXPECT_EQ(CounterOf(durable.get()), reference.counts);
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  ExpectReportsEqual(probe_or.value(), reference.probe, "sharded feed probe");
}

// A row whose arity does not match the schema must be rejected BEFORE it
// reaches the WAL: logged-then-crashing rows would make every recovery
// replay the crash, bricking the store.
TEST(PersistRecovery, MismatchedArityIsRejectedBeforeLogging) {
  Dataset data = SyntheticData(5);
  TempDir dir("arity");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "STopDown";
  auto durable_or = DurableEngine::Open(options, data.schema());
  ASSERT_TRUE(durable_or.ok());
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();

  Row wide = data.rows().front();
  wide.dimensions.push_back("extra");
  EXPECT_FALSE(durable->Append(wide).ok());
  EXPECT_EQ(durable->next_seq(), 0u);
  auto batch = durable->AppendBatch(
      std::span<const Row>(&wide, 1));
  EXPECT_FALSE(batch.status.ok());
  EXPECT_TRUE(batch.reports.empty());
  EXPECT_EQ(durable->next_seq(), 0u);

  ASSERT_TRUE(durable->Append(data.rows().front()).ok());
  EXPECT_EQ(durable->next_seq(), 1u);
  durable.reset();
  auto reopened_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(reopened_or.ok());
  EXPECT_EQ(reopened_or.value()->next_seq(), 1u);
}

// A tear in the newest segment's FIRST record must still be reported as a
// truncated tail: the torn segment's own start_seq equals the drop point,
// and it must not pass for a successor segment of a prior recovery.
TEST(PersistRecovery, TearInNewestSegmentFirstRecordIsReported) {
  Dataset data = SyntheticData(14);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  TempDir dir("firsttear");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "STopDown";
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok());
    std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable.get(), script[i]).ok());
    }
    ASSERT_TRUE(durable->Checkpoint().ok());
    for (size_t i = 10; i < 12; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable.get(), script[i]).ok());
    }
  }
  const std::string tail_wal =
      (fs::path(options.dir) / "wal-00000000000000000010.sfwal").string();
  fs::resize_file(tail_wal, 24 + 4);  // header + a torn first frame

  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok());
  EXPECT_EQ(durable_or.value()->next_seq(), 10u);
  EXPECT_TRUE(durable_or.value()->recovery().tail_truncated);
}

// Reopening with a mismatched schema must be rejected, not silently mixed.
TEST(PersistRecovery, SchemaMismatchOnReopenIsRejected) {
  Dataset data = SyntheticData(10);
  TempDir dir("schema");
  DurableOptions options;
  options.dir = dir.sub("store");
  options.algorithm = "STopDown";
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok());
  }
  Schema other({{"x"}, {"y"}}, {{"m", Direction::kLargerIsBetter}});
  auto durable_or = DurableEngine::Open(options, other);
  EXPECT_FALSE(durable_or.ok());
}

// ---------------------------------------------------------------------------
// Paged backend + delta checkpoints. The same differential bar as above,
// with the µ store spilling to a bounded page cache and checkpoints written
// as bucket-granular deltas; each test asserts the recovery actually walked
// a delta chain, so the paged delta path is provably the thing under test.

DurableOptions PagedOptions(const std::string& dir) {
  DurableOptions options;
  options.dir = dir;
  options.tau = 2.0;
  // A cache far below the µ-set working size, so records spill mid-stream.
  options.discovery.storage.backend = StorageBackend::kPaged;
  options.discovery.storage.page_size = 128;
  options.discovery.storage.cache_bytes = 16u << 10;
  return options;
}

TEST(PersistRecovery, PagedBackendKillRestoreWalksDeltaChain) {
  Dataset data = NbaData(60);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/true, 5);
  RunResult reference = RunReference(data, "STopDown", script, "");
  TempDir dir("paged_delta");
  DurableOptions options = PagedOptions(dir.sub("store"));
  options.algorithm = "STopDown";
  options.checkpoint_every = 7;  // default full_snapshot_every=8: all deltas
  const size_t cut = script.size() - 2;

  RunResult got;
  got.reports.resize(script.size());
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    for (size_t i = 0; i < cut; ++i) {
      auto report_or = ApplyToDurable(durable_or.value().get(), script[i]);
      ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
      got.reports[i] = std::move(report_or).value();
    }
  }  // kill
  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  EXPECT_GT(durable->recovery().delta_chain, 0u)
      << "recovery did not walk a delta chain; the test lost its point";
  EXPECT_GT(durable->recovery().count_only_ops, 0u);
  for (size_t i = durable->next_seq(); i < script.size(); ++i) {
    auto report_or = ApplyToDurable(durable.get(), script[i]);
    ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
    got.reports[i] = std::move(report_or).value();
  }
  got.relation_size = durable->relation().size();
  got.live_size = durable->relation().live_size();
  got.counts = CounterOf(durable.get());
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  got.probe = std::move(probe_or).value();
  ExpectRunsEqual(got, reference, "paged delta");
}

TEST(PersistRecovery, PagedShardedKillRestoreWalksDeltaChain) {
  Dataset data = SyntheticData(50);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/true, 5);
  RunResult reference = RunReference(data, "SBottomUp", script, "");
  TempDir dir("paged_sharded");
  DurableOptions options = PagedOptions(dir.sub("store"));
  options.num_shards = 3;
  options.num_threads = 2;
  options.checkpoint_every = 9;
  const size_t cut = script.size() - 2;
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    for (size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
    }
  }  // kill
  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  ASSERT_TRUE(durable->sharded());
  EXPECT_GT(durable->recovery().delta_chain, 0u);
  for (size_t i = durable->next_seq(); i < script.size(); ++i) {
    ASSERT_TRUE(ApplyToDurable(durable.get(), script[i]).ok());
  }
  EXPECT_EQ(durable->relation().size(), reference.relation_size);
  EXPECT_EQ(durable->relation().live_size(), reference.live_size);
  EXPECT_EQ(CounterOf(durable.get()), reference.counts);
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  ExpectReportsEqual(probe_or.value(), reference.probe, "paged sharded probe");
}

// A corrupt delta must stop the chain walk at the last valid link, not kill
// recovery: the ops the dropped suffix covered are still in the retained
// WAL segments and replay in full.
TEST(PersistRecovery, CorruptDeltaFallsBackToValidChainPrefix) {
  Dataset data = SyntheticData(40);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "STopDown", script, "");
  TempDir dir("corrupt_delta");
  DurableOptions options = PagedOptions(dir.sub("store"));
  options.algorithm = "STopDown";
  options.checkpoint_every = 6;  // deltas at 6, 12, 18, 24, 30, 36
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    for (const WalOp& op : script) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), op).ok());
    }
  }  // kill
  auto deltas = persist::ListDeltas(options.dir);
  ASSERT_GE(deltas.size(), 2u);
  {
    const std::string& newest = deltas.back().path;
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(fs::file_size(newest) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  EXPECT_GT(durable->recovery().delta_chain, 0u);
  EXPECT_LT(durable->recovery().delta_chain, deltas.size())
      << "the corrupt newest delta cannot have been applied";
  EXPECT_FALSE(durable->recovery().delta_note.empty());
  EXPECT_EQ(durable->next_seq(), script.size());
  EXPECT_EQ(durable->relation().size(), reference.relation_size);
  EXPECT_EQ(CounterOf(durable.get()), reference.counts);
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  ExpectReportsEqual(probe_or.value(), reference.probe, "corrupt delta probe");
}

// A crash in the middle of the full-checkpoint compaction (pruning) phase
// can leave orphans: deltas chained off an already-pruned full snapshot and
// a half-written delta tmp file. Recovery must key the chain walk off the
// snapshot it actually loaded and ignore both kinds of debris.
TEST(PersistRecovery, CrashMidDeltaCompactionLeavesRecoverableStore) {
  Dataset data = SyntheticData(40);
  std::vector<WalOp> script = MakeScript(data, /*mutations=*/false, 5);
  RunResult reference = RunReference(data, "STopDown", script, "");
  TempDir dir("compaction_crash");
  DurableOptions options = PagedOptions(dir.sub("store"));
  options.algorithm = "STopDown";
  options.checkpoint_every = 5;
  options.full_snapshot_every = 2;  // delta-5, full-10, delta-15, full-20 ...
  const std::string stale_delta = dir.sub("stale-delta-copy");
  {
    auto durable_or = DurableEngine::Open(options, data.schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    for (size_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
    }
    auto deltas = persist::ListDeltas(options.dir);
    ASSERT_EQ(deltas.size(), 1u);  // delta-5, chained off the genesis full
    fs::copy_file(deltas.front().path, stale_delta);
  }  // kill
  {
    auto durable_or = DurableEngine::Open(options, Schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    for (size_t i = 8; i < 23; ++i) {
      ASSERT_TRUE(ApplyToDurable(durable_or.value().get(), script[i]).ok());
    }
    // full-20's pruning removed the genesis snapshot and delta-5.
    ASSERT_EQ(persist::ListSnapshots(options.dir).front().seq, 10u);
  }  // kill
  // Simulate the compaction crash: the pruned chain's delta resurfaces (the
  // crash happened between removing the snapshot and its deltas) and a
  // half-written delta tmp is left behind.
  fs::copy_file(stale_delta,
                fs::path(options.dir) / "delta-00000000000000000005.sfdelta");
  {
    std::ofstream tmp(fs::path(options.dir) /
                          "delta-00000000000000000099.sfdelta.tmp",
                      std::ios::binary);
    tmp << "torn";
  }
  auto durable_or = DurableEngine::Open(options, Schema());
  ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
  std::unique_ptr<DurableEngine> durable = std::move(durable_or).value();
  EXPECT_EQ(durable->recovery().snapshot_seq, 20u);
  EXPECT_EQ(durable->next_seq(), 23u);
  for (size_t i = durable->next_seq(); i < script.size(); ++i) {
    ASSERT_TRUE(ApplyToDurable(durable.get(), script[i]).ok());
  }
  EXPECT_EQ(durable->relation().size(), reference.relation_size);
  EXPECT_EQ(CounterOf(durable.get()), reference.counts);
  auto probe_or = durable->Append(ProbeRow(data));
  ASSERT_TRUE(probe_or.ok());
  ExpectReportsEqual(probe_or.value(), reference.probe, "compaction probe");
}

}  // namespace
}  // namespace sitfact
