// Tests for net/json.h: the JSON document model (determinism, exact
// integers, rejection rules) and the one QueryRequest/QueryResponse
// (de)serializer — round-trip properties over randomized requests and real
// service responses, NaN/Infinity encoding, cursor tokens, and the pinned
// wire-error shapes.

#include "net/json.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "service/fact_service.h"
#include "service/query_api.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace net {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

JsonValue MustParse(const std::string& text) {
  auto v = JsonValue::Parse(text);
  EXPECT_TRUE(v.ok()) << text << ": " << v.status().ToString();
  return std::move(v).value();
}

TEST(JsonValue, DumpIsDeterministicAndInsertionOrdered) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Number(uint64_t{1}));
  obj.Set("apple", JsonValue::Str("two"));
  obj.Set("mango", JsonValue::Bool(false));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"apple\":\"two\",\"mango\":false}");
  // Parse preserves the written order, so dump∘parse is the identity on
  // serialized objects — the property the response cache keys rest on.
  EXPECT_EQ(MustParse(obj.Dump()).Dump(), obj.Dump());
}

TEST(JsonValue, ExactUint64SurvivesRoundTrip) {
  const uint64_t big[] = {0,
                          (1ull << 53) + 1,  // first double-unrepresentable
                          (1ull << 63) + 12345,
                          std::numeric_limits<uint64_t>::max()};
  for (uint64_t u : big) {
    JsonValue v = MustParse(JsonValue::Number(u).Dump());
    auto back = v.NumberAsU64();
    ASSERT_TRUE(back.ok()) << u;
    EXPECT_EQ(back.value(), u);
  }
  // Negative / fractional / overflowing lexemes are not uint64.
  EXPECT_FALSE(MustParse("-1").NumberAsU64().ok());
  EXPECT_FALSE(MustParse("1.5").NumberAsU64().ok());
  EXPECT_FALSE(MustParse("18446744073709551616").NumberAsU64().ok());
}

TEST(JsonValue, StringEscapesRoundTrip) {
  const std::string raw = "quote\" slash\\ ctrl\x01 tab\t nl\n high\xC3\xA9";
  std::string dumped = JsonValue::Str(raw).Dump();
  EXPECT_EQ(MustParse(dumped).string_value(), raw);
  // \u escapes, including a surrogate pair (U+1D11E musical G clef).
  EXPECT_EQ(MustParse("\"\\u0041\\uD834\\uDD1E\"").string_value(),
            "A\xF0\x9D\x84\x9E");
}

TEST(JsonValue, RejectsDuplicateKeysDepthAndTrailingGarbage) {
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,\"a\":2}").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,2] trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1}{").ok());
  EXPECT_FALSE(JsonValue::Parse("").ok());

  std::string deep(JsonValue::kMaxDepth + 1, '[');
  deep += std::string(JsonValue::kMaxDepth + 1, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  std::string ok_depth(JsonValue::kMaxDepth, '[');
  ok_depth += std::string(JsonValue::kMaxDepth, ']');
  EXPECT_TRUE(JsonValue::Parse(ok_depth).ok());
}

TEST(CursorToken, RoundTripsEdgeValuesAndStaysUrlSafe) {
  const double proms[] = {0.0,
                          1.0,
                          1.75,
                          3.0 / 7.0,
                          1e-300,
                          1e300,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::quiet_NaN()};
  const uint32_t ids[] = {0, 1, 4476, std::numeric_limits<uint32_t>::max()};
  for (double p : proms) {
    for (uint32_t id : ids) {
      TopKCursor c{p, id};
      std::string token = EncodeCursorToken(c);
      // '+' percent-decodes to space in query strings; the token must not
      // contain one (hexfloat exponents are emitted signless).
      EXPECT_EQ(token.find('+'), std::string::npos) << token;
      auto back = ParseCursorToken(token);
      ASSERT_TRUE(back.ok()) << token << ": " << back.status().ToString();
      EXPECT_EQ(back.value().record_id, id);
      if (std::isnan(p)) {
        EXPECT_TRUE(std::isnan(back.value().prominence)) << token;
      } else {
        EXPECT_EQ(back.value().prominence, p) << token;
      }
    }
  }
  for (const char* bad : {"", ":", "1.5", "1.5:", ":7", "0x1.cp6:12x",
                          "0x1.cp6:-3", "zebra:7", "0x1.cp6:99999999999"}) {
    EXPECT_FALSE(ParseCursorToken(bad).ok()) << bad;
  }
}

TEST(WireError, SerializedShapeIsPinned) {
  EXPECT_EQ(SerializeErrorBody(Status::InvalidArgument("bad k")),
            "{\"schema\":1,\"error\":{\"code\":\"invalid_argument\","
            "\"message\":\"bad k\"}}");
  EXPECT_EQ(SerializeErrorBody(Status::NotFound("record 7")),
            "{\"schema\":1,\"error\":{\"code\":\"not_found\","
            "\"message\":\"record 7\"}}");
}

// --- request round trip ---

/// A randomized but always-valid request for round-trip testing.
QueryRequest RandomRequest(std::mt19937* rng, const Relation& rel) {
  std::uniform_int_distribution<int> kind_d(0, 4);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<uint32_t> small(0, 99);
  QueryRequest r;
  r.kind = static_cast<QueryKind>(kind_d(*rng));
  r.k = 1 + small(*rng);
  if (coin(*rng)) r.filter.tuple = small(*rng);
  if (coin(*rng)) r.filter.bound_mask = small(*rng) & 0b111;
  if (coin(*rng)) r.filter.subspace = 1 + (small(*rng) & 0b1);
  if (coin(*rng)) {
    r.filter.about =
        Constraint::ForTuple(rel, small(*rng) % rel.size(), 0b101);
  }
  if (coin(*rng)) r.filter.min_arrival = small(*rng);
  if (coin(*rng)) r.filter.max_arrival = 100 + small(*rng);
  if (coin(*rng)) r.filter.min_prominence = small(*rng) / 7.0;
  r.filter.prominent_only = coin(*rng) == 1;
  r.filter.include_dead = coin(*rng) == 1;
  switch (r.kind) {
    case QueryKind::kFactsForTuple:
      r.tuple = small(*rng);
      break;
    case QueryKind::kFactsInWindow:
      r.window_first = small(*rng);
      r.window_last = *r.window_first + small(*rng);
      break;
    case QueryKind::kExplain:
      r.record = small(*rng);
      break;
    default:
      break;
  }
  if (r.kind != QueryKind::kExplain && coin(*rng)) {
    r.cursor = TopKCursor{small(*rng) / 3.0, small(*rng)};
  }
  return r;
}

TEST(RequestRoundTrip, RandomizedRequestsSerializeStably) {
  RandomDataConfig cfg;
  cfg.num_tuples = 30;
  cfg.seed = 5;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  Dataset data = RandomDataset(cfg);
  Relation rel(data.schema());
  for (const Row& row : data.rows()) rel.Append(row);

  std::mt19937 rng(20260808);
  for (int i = 0; i < 500; ++i) {
    QueryRequest req = RandomRequest(&rng, rel);
    const std::string bytes = RequestToJson(req).Dump();
    SCOPED_TRACE(bytes);
    auto back = ParseRequest(bytes, &rel);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    // Round trip is byte-stable: serialize(parse(serialize(r))) ==
    // serialize(r) — exactly the property the canonical cache key needs.
    EXPECT_EQ(RequestToJson(back.value()).Dump(), bytes);
    EXPECT_EQ(CanonicalRequestKey(back.value()), CanonicalRequestKey(req));
    // A relation-free parse must accept the same structured bytes (the
    // serializer never emits the textual grammar).
    EXPECT_TRUE(ParseRequest(bytes, nullptr).ok());
  }
}

TEST(RequestRoundTrip, RejectionsArePinned) {
  auto r = ParseRequest("{\"schema\":1,\"kind\":\"topk\",\"zzz\":1}", nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "unknown request field 'zzz'");

  r = ParseRequest("{\"schema\":2,\"kind\":\"topk\"}", nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(),
            "unsupported schema version 2 (this server speaks 1)");

  r = ParseRequest("{\"schema\":1,\"kind\":\"nope\"}", nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "unknown query kind 'nope'");

  // Textual filter fields need dictionaries; without a relation they are
  // structured errors, not silent drops.
  r = ParseRequest(
      "{\"schema\":1,\"kind\":\"topk\",\"filter\":{\"where\":\"a=b\"}}",
      nullptr);
  EXPECT_FALSE(r.ok());
}

// --- response round trip ---

TEST(ResponseRoundTrip, EmptyPageIsBytePinned) {
  QueryResponse resp;
  resp.epoch = 42;
  EXPECT_EQ(SerializeResponse(resp),
            "{\"schema\":1,\"epoch\":42,\"facts\":[]}");
  auto back = ParseResponse(SerializeResponse(resp));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().epoch, 42u);
  EXPECT_TRUE(back.value().facts.empty());
  EXPECT_FALSE(back.value().next.has_value());
  EXPECT_EQ(SerializeResponse(back.value()), SerializeResponse(resp));
}

TEST(ResponseRoundTrip, NanAndInfinityMeasureValuesSurvive) {
  // JSON has no NaN/Infinity tokens; the DTO layer encodes them as strings
  // and must decode them back bit-for-bit (sign of infinity included).
  QueryResponse resp;
  resp.epoch = 7;
  FactService::FactView v;
  v.id = 3;
  v.tuple = 9;
  v.fact.constraint = Constraint::Top(2);
  v.fact.subspace = 0b11;
  v.prominence = std::numeric_limits<double>::quiet_NaN();
  resp.facts.push_back(v);
  v.id = 4;
  v.prominence = std::numeric_limits<double>::infinity();
  resp.facts.push_back(v);
  v.id = 5;
  v.prominence = -std::numeric_limits<double>::infinity();
  resp.facts.push_back(v);
  resp.next = TopKCursor{std::numeric_limits<double>::quiet_NaN(), 5};

  const std::string bytes = SerializeResponse(resp);
  auto back = ParseResponse(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().facts.size(), 3u);
  EXPECT_TRUE(std::isnan(back.value().facts[0].prominence));
  EXPECT_EQ(back.value().facts[1].prominence,
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(back.value().facts[2].prominence,
            -std::numeric_limits<double>::infinity());
  ASSERT_TRUE(back.value().next.has_value());
  EXPECT_TRUE(std::isnan(back.value().next->prominence));
  EXPECT_EQ(SerializeResponse(back.value()), bytes);
}

TEST(ResponseRoundTrip, RealServiceResponsesAreByteStable) {
  RandomDataConfig cfg;
  cfg.num_tuples = 80;
  cfg.seed = 31;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  Dataset data = RandomDataset(cfg);
  Relation rel(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("STopDown", &rel, {});
  ASSERT_TRUE(disc_or.ok());
  DiscoveryEngine::Config config;
  config.tau = 2.0;
  DiscoveryEngine engine(&rel, std::move(disc_or).value(), config);
  FactService::Options so;
  so.entity = "d0";
  FactService service(&rel, so);
  for (const Row& row : data.rows()) {
    service.OnArrival(engine.Append(row));
  }
  FactService::Snapshot snap = service.Acquire();

  std::vector<QueryRequest> requests;
  {
    QueryRequest r;  // topk, default filter, small pages to force cursors
    r.k = 3;
    requests.push_back(r);
    r = QueryRequest();
    r.kind = QueryKind::kFactsForTuple;
    r.tuple = 10;
    requests.push_back(r);
    r = QueryRequest();
    r.kind = QueryKind::kFactsInWindow;
    r.window_first = 0;
    r.window_last = snap.arrivals() - 1;
    r.k = 5;
    requests.push_back(r);
    r = QueryRequest();
    r.kind = QueryKind::kAbout;
    r.filter.about = Constraint::ForTuple(rel, 4, 0b001);
    requests.push_back(r);
    r = QueryRequest();
    r.kind = QueryKind::kExplain;
    r.record = 0;
    requests.push_back(r);
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    // Follow the cursor chain so later pages (cursor edge cases: resume
    // mid-tie, final short page) round-trip too.
    std::optional<TopKCursor> cursor;
    for (int page = 0; page < 4; ++page) {
      QueryRequest req = requests[i];
      req.cursor = cursor;
      auto resp_or = ExecuteQuery(snap, req);
      ASSERT_TRUE(resp_or.ok()) << resp_or.status().ToString();
      const std::string bytes = SerializeResponse(resp_or.value());
      auto back = ParseResponse(bytes);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      EXPECT_EQ(SerializeResponse(back.value()), bytes);
      ASSERT_EQ(back.value().facts.size(), resp_or.value().facts.size());
      for (size_t f = 0; f < back.value().facts.size(); ++f) {
        const auto& a = resp_or.value().facts[f];
        const auto& b = back.value().facts[f];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.tuple, b.tuple);
        EXPECT_EQ(a.arrival_seq, b.arrival_seq);
        EXPECT_EQ(a.fact, b.fact);
        EXPECT_EQ(a.prominence, b.prominence);
        EXPECT_EQ(a.narration, b.narration);
      }
      if (!resp_or.value().next.has_value()) break;
      cursor = resp_or.value().next;
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace sitfact
