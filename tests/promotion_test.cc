// Tests for core/promotion.h: incremental promotion analysis (the Table II
// row [10] contrast) against a direct ranking oracle.

#include "core/promotion.h"

#include <set>
#include <vector>

#include "skyline/skyline_compute.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::PaperTableI;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

/// Direct rank computation: 1 + #{live tuples in σ_C(R) strictly better
/// than t on the score measure}.
uint32_t OracleRank(const Relation& r, TupleId t, const Constraint& c,
                    int j) {
  uint32_t better = 0;
  for (TupleId other = 0; other < r.size(); ++other) {
    if (other == t || r.IsDeleted(other)) continue;
    if (!c.SatisfiedBy(r, other)) continue;
    if (r.measure_key(other, j) > r.measure_key(t, j)) ++better;
  }
  return better + 1;
}

TEST(PromotionFinder, StoudamireStyleFact) {
  // Table I: upon t7 (Wesley, 12 points), the promotion finder on {points}
  // should NOT rank it top-1 anywhere interesting, but on {assists} (13,
  // the second highest overall after Strickland's 18) it is rank 1 within
  // team=Celtics.
  Dataset data = PaperTableI();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  const TupleId t7 = 6;

  PromotionFinder::Options options;
  options.k = 1;
  PromotionFinder finder(&r, data.schema().MeasureIndex("assists"), options);
  std::vector<PromotionFinder::PromotionFact> facts;
  finder.Discover(t7, &facts);

  bool celtics_top = false;
  bool overall_top = false;
  for (const auto& f : facts) {
    std::string pred = f.constraint.ToPredicateString(r);
    if (pred == "team=Celtics") {
      celtics_top = true;
      EXPECT_EQ(f.rank, 1u);
      EXPECT_EQ(f.tied, 2u);  // ties with Sherman's 13 (also a Celtic)
      EXPECT_EQ(f.context_size, 4u);
    }
    if (pred == "(no constraint)") overall_top = true;
  }
  EXPECT_TRUE(celtics_top);
  EXPECT_FALSE(overall_top);  // Strickland's 18 assists beats t7 overall
}

struct PromotionParam {
  int k;
  int dhat;
  int measure;
  uint64_t seed;
};

class PromotionSweep : public ::testing::TestWithParam<PromotionParam> {};

TEST_P(PromotionSweep, AgreesWithOracleOnRandomStreams) {
  RandomDataConfig cfg;
  cfg.num_tuples = 45;
  cfg.num_dims = 3;
  cfg.num_measures = 3;
  cfg.seed = GetParam().seed;
  cfg.mixed_directions = (GetParam().seed % 2 == 0);
  Dataset data = RandomDataset(cfg);

  Relation r(data.schema());
  PromotionFinder::Options options;
  options.k = GetParam().k;
  options.max_bound_dims = GetParam().dhat;
  PromotionFinder finder(&r, GetParam().measure, options);
  const int resolved_dhat =
      GetParam().dhat < 0 ? cfg.num_dims : GetParam().dhat;

  std::vector<PromotionFinder::PromotionFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = r.Append(row);
    facts.clear();
    finder.Discover(t, &facts);

    std::set<DimMask> reported;
    for (const auto& f : facts) {
      reported.insert(f.constraint.bound_mask());
      // Reported numbers must match the oracle exactly.
      ASSERT_EQ(f.rank,
                OracleRank(r, t, f.constraint, GetParam().measure));
      ASSERT_EQ(f.context_size,
                SelectContext(r, f.constraint, r.size()).size());
    }
    // Completeness: every admissible constraint with oracle rank <= k is
    // reported.
    DimMask full = FullMask(cfg.num_dims);
    for (DimMask mask = 0; mask <= full; ++mask) {
      if (PopCount(mask) > resolved_dhat) continue;
      Constraint c = Constraint::ForTuple(r, t, mask);
      bool expected = OracleRank(r, t, c, GetParam().measure) <=
                      static_cast<uint32_t>(GetParam().k);
      ASSERT_EQ(expected, reported.count(mask) > 0)
          << "t=" << t << " mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PromotionSweep,
    ::testing::Values(PromotionParam{1, -1, 0, 31},
                      PromotionParam{3, -1, 1, 32},
                      PromotionParam{2, 2, 2, 33},
                      PromotionParam{5, 1, 0, 34}));

TEST(PromotionFinder, RankOneAlwaysExistsSomewhere) {
  // Every tuple is rank 1 in its own fully-bound context (it may tie).
  RandomDataConfig cfg;
  cfg.num_tuples = 30;
  cfg.seed = 88;
  Dataset data = RandomDataset(cfg);
  Relation r(data.schema());
  PromotionFinder::Options options;
  options.k = 1;
  PromotionFinder finder(&r, 0, options);
  std::vector<PromotionFinder::PromotionFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = r.Append(row);
    facts.clear();
    finder.Discover(t, &facts);
    DimMask full_mask = FullMask(r.schema().num_dimensions());
    bool found_self_context = false;
    for (const auto& f : facts) {
      if (f.constraint.bound_mask() == full_mask) found_self_context = true;
    }
    // Not guaranteed: an identical-dimension duplicate with a higher score
    // can outrank t even there. Verify against the oracle instead.
    Constraint self = Constraint::ForTuple(r, t, full_mask);
    EXPECT_EQ(found_self_context, OracleRank(r, t, self, 0) == 1);
  }
}

TEST(PromotionFinder, SkipsDeletedHistoryAndValidatesOptions) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  r.MarkDeleted(5);  // Strickland (18 assists) is retracted

  PromotionFinder::Options options;
  options.k = 1;
  PromotionFinder finder(&r, data.schema().MeasureIndex("assists"),
                         options);
  std::vector<PromotionFinder::PromotionFact> facts;
  finder.Discover(6, &facts);
  bool overall_top = false;
  for (const auto& f : facts) {
    if (f.constraint.bound_mask() == 0) {
      overall_top = true;
      EXPECT_EQ(f.tied, 2u);  // t3 and t7 tie at 13 assists
      EXPECT_EQ(f.context_size, 6u);  // 7 tuples minus the deleted one
    }
  }
  EXPECT_TRUE(overall_top);

  EXPECT_DEATH(PromotionFinder(&r, 99, options), "out of range");
}

}  // namespace
}  // namespace sitfact
