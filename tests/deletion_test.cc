// Tests for the deletion extension (the paper's stated future work):
// tombstoning a tuple and repairing the µ stores must leave every algorithm
// behaving exactly as if the tuple had never arrived — checked against the
// oracle on interleaved append/delete streams and via the storage
// invariants.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "core/shared_bottom_up.h"
#include "core/shared_top_down.h"
#include "core/top_down.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::PaperTableIV;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;
using testing_util::VerifyInvariant1;
using testing_util::VerifyInvariant2;

TEST(Deletion, RelationTombstones) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  EXPECT_EQ(r.live_size(), 5u);
  EXPECT_FALSE(r.IsDeleted(3));
  r.MarkDeleted(3);
  EXPECT_TRUE(r.IsDeleted(3));
  EXPECT_EQ(r.live_size(), 4u);
  r.MarkDeleted(3);  // idempotent
  EXPECT_EQ(r.live_size(), 4u);
  // Data stays readable for repair logic.
  EXPECT_EQ(r.measure(3, 0), 20.0);
}

// Deleting the dataset's global dominator (t4) must resurrect the tuples it
// suppressed, under both storage policies.
TEST(Deletion, RemovingDominatorResurrectsVictims) {
  Dataset data = PaperTableIV();

  Relation r1(data.schema());
  BottomUpDiscoverer bu(&r1, {});
  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) bu.Discover(r1.Append(row), &facts);
  r1.MarkDeleted(3);  // t4
  ASSERT_TRUE(bu.Remove(3).ok());
  VerifyInvariant1(r1, bu.mutable_store(), bu.max_bound_dims(),
                   bu.subspaces());

  Relation r2(data.schema());
  TopDownDiscoverer td(&r2, {});
  for (const Row& row : data.rows()) td.Discover(r2.Append(row), &facts);
  r2.MarkDeleted(3);
  ASSERT_TRUE(td.Remove(3).ok());
  VerifyInvariant2(r2, td.mutable_store(), td.max_bound_dims(),
                   td.subspaces());

  // Concretely: with t4 gone, t3 (17,17) rules ⊤ in the full space.
  Constraint top = Constraint::Top(3);
  MuStore::Context* ctx = bu.mutable_store()->Find(top);
  ASSERT_NE(ctx, nullptr);
  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  EXPECT_EQ(bucket, (std::vector<TupleId>{2}));
}

TEST(Deletion, RequiresTombstoneFirstAndValidId) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  BottomUpDiscoverer bu(&r, {});
  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) bu.Discover(r.Append(row), &facts);
  EXPECT_FALSE(bu.Remove(3).ok());    // not tombstoned yet
  EXPECT_FALSE(bu.Remove(999).ok());  // out of range
}

struct DeletionCase {
  std::string label;
  std::string algorithm;
  RandomDataConfig data;
  DiscoveryOptions options;
};

class DeletionEquivalenceTest : public ::testing::TestWithParam<DeletionCase> {
};

// Interleaved append/delete stream: after every operation the algorithm's
// next discovery results must match a BruteForce oracle running against an
// identically mutated relation.
TEST_P(DeletionEquivalenceTest, MatchesOracleUnderChurn) {
  const DeletionCase& param = GetParam();
  Dataset data = RandomDataset(param.data);

  Relation oracle_rel(data.schema());
  BruteForceDiscoverer oracle(&oracle_rel, param.options);
  Relation rel(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer(param.algorithm, &rel,
                                                   param.options);
  ASSERT_TRUE(disc_or.ok());
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();
  ASSERT_TRUE(disc->SupportsRemoval());

  Rng rng(param.data.seed ^ 0xDEAD);
  std::vector<TupleId> live;
  std::vector<SkylineFact> expected, actual;
  for (size_t i = 0; i < data.rows().size(); ++i) {
    TupleId a = oracle_rel.Append(data.rows()[i]);
    TupleId b = rel.Append(data.rows()[i]);
    ASSERT_EQ(a, b);
    expected.clear();
    actual.clear();
    oracle.Discover(a, &expected);
    disc->Discover(b, &actual);
    CanonicalizeFacts(&expected);
    CanonicalizeFacts(&actual);
    ASSERT_EQ(expected, actual) << param.algorithm << " at arrival " << i;
    live.push_back(a);

    // Every third arrival, delete a random live tuple from both worlds.
    if (i % 3 == 2 && !live.empty()) {
      size_t idx = rng.NextBounded(live.size());
      TupleId victim = live[idx];
      live.erase(live.begin() + idx);
      oracle_rel.MarkDeleted(victim);
      ASSERT_TRUE(oracle.Remove(victim).ok());
      rel.MarkDeleted(victim);
      ASSERT_TRUE(disc->Remove(victim).ok())
          << param.algorithm << " remove at arrival " << i;
    }
  }
}

std::vector<DeletionCase> DeletionCases() {
  std::vector<DeletionCase> cases;
  RandomDataConfig base;
  base.num_tuples = 60;
  base.num_dims = 3;
  base.num_measures = 2;
  int seed = 555;
  for (const char* algo : {"BaselineSeq", "BaselineIdx", "C-CSC", "BottomUp",
                           "TopDown", "SBottomUp", "STopDown"}) {
    DeletionCase c;
    c.label = std::string(algo);
    std::erase(c.label, '-');  // gtest param names must be alphanumeric
    c.algorithm = algo;
    c.data = base;
    c.data.seed = seed++;
    cases.push_back(c);
  }
  // Truncated spaces exercise the full-space maintenance of the S-variants.
  DeletionCase trunc;
  trunc.label = "STopDown_truncated";
  trunc.algorithm = "STopDown";
  trunc.data = base;
  trunc.data.num_measures = 3;
  trunc.data.seed = seed++;
  trunc.options = {.max_bound_dims = 2, .max_measure_dims = 2};
  cases.push_back(trunc);
  DeletionCase trunc2 = trunc;
  trunc2.label = "SBottomUp_truncated";
  trunc2.algorithm = "SBottomUp";
  trunc2.data.seed = seed++;
  cases.push_back(trunc2);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Churn, DeletionEquivalenceTest, ::testing::ValuesIn(DeletionCases()),
    [](const ::testing::TestParamInfo<DeletionCase>& info) {
      return info.param.label;
    });

TEST(Deletion, EngineRemoveUpdatesProminence) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  auto disc = DiscoveryEngine::CreateDiscoverer("BottomUp", &r, {});
  ASSERT_TRUE(disc.ok());
  DiscoveryEngine engine(&r, std::move(disc).value(), {});
  for (const Row& row : data.rows()) engine.Append(row);

  Constraint top = Constraint::Top(3);
  EXPECT_EQ(engine.counter().Count(top), 5u);
  ASSERT_TRUE(engine.Remove(3).ok());
  EXPECT_EQ(engine.counter().Count(top), 4u);
  EXPECT_FALSE(engine.Remove(3).ok());  // already gone

  // A fresh arrival after the deletion ranks against the shrunk context.
  ArrivalReport report = engine.Append(Row{{"a9", "b9", "c9"}, {50, 50}});
  ASSERT_FALSE(report.ranked.empty());
  // ⊤ now holds 5 live tuples (4 old + the new one).
  for (const auto& f : report.ranked) {
    if (f.fact.constraint == top) {
      EXPECT_EQ(f.context_size, 5u);
    }
  }
}

// Third-party discoverers inherit the base class's "no removal" default;
// the engine must refuse them without side effects. (Every built-in
// algorithm now supports removal — C-CSC gained it with the SubspaceIndex
// rebuild — so this exercises the default path directly.)
class NoRemovalDiscoverer : public Discoverer {
 public:
  NoRemovalDiscoverer(const Relation* r, const DiscoveryOptions& o)
      : Discoverer(r, o) {}
  std::string_view name() const override { return "NoRemoval"; }
  void Discover(TupleId, std::vector<SkylineFact>*) override {}
  size_t ApproxMemoryBytes() const override { return 0; }
};

TEST(Deletion, UnsupportedDiscovererReportsUnimplemented) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  auto disc = std::make_unique<NoRemovalDiscoverer>(&r, DiscoveryOptions{});
  EXPECT_FALSE(disc->SupportsRemoval());
  DiscoveryEngine::Config config;
  config.rank_facts = false;
  DiscoveryEngine engine(&r, std::move(disc), config);
  engine.Append(data.rows()[0]);
  Status s = engine.Remove(0);
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(r.IsDeleted(0));  // no side effects on failure
}

// C-CSC's removal path requires the caller to tombstone first, like every
// other algorithm, and repairs its per-context skycubes so a post-deletion
// arrival discovers exactly what BruteForce does on the same mutated
// relation.
TEST(Deletion, CcscRemoveRepairsSkycubes) {
  Dataset data = PaperTableIV();

  Relation r(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("C-CSC", &r, {});
  ASSERT_TRUE(disc_or.ok());
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();
  ASSERT_TRUE(disc->SupportsRemoval());
  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) disc->Discover(r.Append(row), &facts);

  EXPECT_FALSE(disc->Remove(3).ok());    // not tombstoned yet
  EXPECT_FALSE(disc->Remove(999).ok());  // out of range
  r.MarkDeleted(3);                      // t4, the global dominator
  ASSERT_TRUE(disc->Remove(3).ok());

  Relation oracle_rel(data.schema());
  BruteForceDiscoverer oracle(&oracle_rel, {});
  for (const Row& row : data.rows()) {
    oracle.Discover(oracle_rel.Append(row), &facts);
  }
  oracle_rel.MarkDeleted(3);
  ASSERT_TRUE(oracle.Remove(3).ok());

  // The next arrival must agree fact-for-fact with the oracle.
  Row next{{"a1", "b2", "c1"}, {16, 18}};
  std::vector<SkylineFact> actual, expected;
  disc->Discover(r.Append(next), &actual);
  oracle.Discover(oracle_rel.Append(next), &expected);
  CanonicalizeFacts(&actual);
  CanonicalizeFacts(&expected);
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace sitfact
