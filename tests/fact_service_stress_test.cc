// Concurrency stress for service/fact_service.h: reader threads hammer
// TopK / pagination / window queries while FactFeed ingests on its worker
// thread. Runs under the TSan preset in CI (test names are matched by the
// `FactService` regex there). Every acquired snapshot is checked for
// internal consistency — a torn epoch (records without their directory
// entry, a dangling index id, a page out of order) fails the test.

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "service/fact_feed.h"
#include "service/fact_service.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

std::unique_ptr<DiscoveryEngine> MakeEngine(Relation* relation, double tau) {
  auto disc_or = DiscoveryEngine::CreateDiscoverer("STopDown", relation, {});
  EXPECT_TRUE(disc_or.ok());
  DiscoveryEngine::Config config;
  config.tau = tau;
  return std::make_unique<DiscoveryEngine>(relation,
                                           std::move(disc_or).value(),
                                           config);
}

/// Full internal consistency check of one snapshot; any torn epoch — a
/// record without its directory entry, a dangling index id, a page out of
/// order — trips an assertion.
void CheckSnapshotConsistency(const FactService::Snapshot& snap) {
  // Every record reachable through the arrival directory stays in bounds.
  std::vector<FactService::FactView> window =
      snap.FactsInWindow(0, snap.arrivals() == 0 ? 0 : snap.arrivals() - 1,
                         FactFilter(), snap.fact_count() + 1)
          .facts;
  for (const auto& view : window) {
    ASSERT_LT(view.id, snap.fact_count());
    ASSERT_LT(view.arrival_seq, snap.arrivals());
  }

  // Full pagination is sorted, duplicate-free, and identical to a one-shot
  // TopK of everything.
  std::vector<uint32_t> paged;
  std::optional<TopKCursor> cursor;
  double last_prom = 0;
  uint32_t last_id = 0;
  bool first = true;
  for (;;) {
    FactService::Page page = snap.TopK(17, FactFilter(), cursor);
    for (const auto& view : page.facts) {
      if (!first) {
        ASSERT_TRUE(last_prom > view.prominence ||
                    (last_prom == view.prominence && last_id < view.id))
            << "page order violated at id " << view.id;
      }
      first = false;
      last_prom = view.prominence;
      last_id = view.id;
      paged.push_back(view.id);
    }
    if (!page.next.has_value()) break;
    cursor = page.next;
  }
  FactService::Page all = snap.TopK(snap.fact_count() + 1);
  ASSERT_EQ(paged.size(), all.facts.size());
  for (size_t i = 0; i < paged.size(); ++i) {
    ASSERT_EQ(paged[i], all.facts[i].id);
  }

  // Every live record is reachable through its tuple.
  for (const auto& view : all.facts) {
    std::vector<FactService::FactView> per_tuple =
        snap.FactsForTuple(view.tuple, FactFilter(), snap.fact_count() + 1)
            .facts;
    bool found = false;
    for (const auto& other : per_tuple) found |= other.id == view.id;
    ASSERT_TRUE(found) << "record " << view.id << " not indexed under tuple "
                       << view.tuple;
  }
}

TEST(FactServiceStress, ReadersSeeOnlyConsistentEpochsDuringIngestion) {
  RandomDataConfig cfg;
  cfg.num_tuples = 260;
  cfg.seed = 31;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  Dataset data = RandomDataset(cfg);

  Relation rel(data.schema());
  auto engine = MakeEngine(&rel, 2.0);
  FactService::Options service_options;
  service_options.publish_every = 3;  // readers see batched epochs
  FactService service(&rel, service_options);

  FactFeed::Options options;
  options.fact_service = &service;
  options.queue_capacity = 32;
  FactFeed feed(engine.get(), nullptr, options);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots_checked{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_relaxed)) {
        FactService::Snapshot snap = service.Acquire();
        // Epochs only move forward.
        ASSERT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        CheckSnapshotConsistency(snap);
        ++snapshots_checked;
      }
    });
  }

  for (const Row& row : data.rows()) {
    ASSERT_TRUE(feed.Publish(row));
  }
  feed.Drain();
  done.store(true);
  for (auto& t : readers) t.join();
  feed.Stop();

  EXPECT_EQ(feed.processed(), data.rows().size());
  EXPECT_GT(snapshots_checked.load(), 0u);

  // Post-hoc ground truth: the final epoch matches a synchronous rerun.
  service.Flush();
  FactService::Snapshot final_snap = service.Acquire();
  Relation rel2(data.schema());
  auto engine2 = MakeEngine(&rel2, 2.0);
  FactService sync(&rel2);
  for (const Row& row : data.rows()) sync.OnArrival(engine2->Append(row));
  FactService::Snapshot expect = sync.Acquire();
  ASSERT_EQ(final_snap.fact_count(), expect.fact_count());
  ASSERT_EQ(final_snap.arrivals(), expect.arrivals());
  FactService::Page a = final_snap.TopK(final_snap.fact_count() + 1);
  FactService::Page b = expect.TopK(expect.fact_count() + 1);
  ASSERT_EQ(a.facts.size(), b.facts.size());
  for (size_t i = 0; i < a.facts.size(); ++i) {
    ASSERT_EQ(a.facts[i].id, b.facts[i].id);
    ASSERT_EQ(a.facts[i].fact, b.facts[i].fact);
    ASSERT_EQ(a.facts[i].prominence, b.facts[i].prominence);
  }
}

TEST(FactServiceStress, PinnedSnapshotSurvivesHeavyChurn) {
  RandomDataConfig cfg;
  cfg.num_tuples = 200;
  cfg.seed = 37;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  Dataset data = RandomDataset(cfg);

  Relation rel(data.schema());
  auto engine = MakeEngine(&rel, 2.0);
  FactService service(&rel);

  // Pin an early snapshot, then keep mutating (appends + removals) from the
  // writer while readers re-validate the pinned epoch concurrently.
  for (int i = 0; i < 50; ++i) service.OnArrival(engine->Append(data.rows()[i]));
  FactService::Snapshot pinned = service.Acquire();
  const size_t pinned_count = pinned.fact_count();
  FactService::Page pinned_top = pinned.TopK(20);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        ASSERT_EQ(pinned.fact_count(), pinned_count);
        FactService::Page again = pinned.TopK(20);
        ASSERT_EQ(again.facts.size(), pinned_top.facts.size());
        for (size_t j = 0; j < again.facts.size(); ++j) {
          ASSERT_EQ(again.facts[j].id, pinned_top.facts[j].id);
          ASSERT_EQ(again.facts[j].live, pinned_top.facts[j].live);
        }
      }
    });
  }

  for (int i = 50; i < 200; ++i) {
    service.OnArrival(engine->Append(data.rows()[i]));
    if (i % 7 == 0) {
      TupleId victim = static_cast<TupleId>(i - 3);
      if (engine->Remove(victim).ok()) {
        ASSERT_TRUE(service.OnRemove(victim).ok());
      }
    }
  }
  done.store(true);
  for (auto& t : readers) t.join();

  // Fresh snapshot diverged; pinned one did not.
  EXPECT_GT(service.Acquire().fact_count(), pinned_count);
  EXPECT_EQ(pinned.fact_count(), pinned_count);
}

}  // namespace
}  // namespace sitfact
