// Cross-algorithm equivalence: every discoverer must produce exactly the
// oracle's (BruteForce, Alg. 2) per-arrival fact sets, across randomized
// datasets that stress value agreement, measure ties, duplicates, mixed
// preference directions, and the d̂ / m̂ truncations.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/baseline_idx.h"
#include "core/baseline_seq.h"
#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "core/shared_bottom_up.h"
#include "core/shared_top_down.h"
#include "core/top_down.h"
#include "csc/ccsc_discoverer.h"
#include "storage/file_mu_store.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::DescribeFacts;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;
using testing_util::RunStream;

struct EquivalenceCase {
  std::string label;
  RandomDataConfig data;
  DiscoveryOptions options;
};

std::ostream& operator<<(std::ostream& os, const EquivalenceCase& c) {
  return os << c.label;
}

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

std::vector<std::string> AllAlgorithms() {
  return {"BaselineSeq", "BaselineIdx", "C-CSC",      "BottomUp",
          "TopDown",     "SBottomUp",   "STopDown",   "FSBottomUp",
          "FSTopDown"};
}

TEST_P(EquivalenceTest, MatchesOracle) {
  const EquivalenceCase& param = GetParam();
  Dataset data = RandomDataset(param.data);

  // Oracle stream.
  Relation oracle_rel(data.schema());
  BruteForceDiscoverer oracle(&oracle_rel, param.options);
  auto expected = RunStream(&oracle_rel, &oracle, data);

  for (const std::string& name : AllAlgorithms()) {
    SCOPED_TRACE(name);
    Relation rel(data.schema());
    std::string dir;
    if (name.rfind("FS", 0) == 0) {
      dir = (std::filesystem::temp_directory_path() /
             ("sitfact_eq_" + name + "_" + param.label))
                .string();
    }
    auto disc_or = DiscoveryEngine::CreateDiscoverer(name, &rel,
                                                     param.options, dir);
    ASSERT_TRUE(disc_or.ok()) << disc_or.status().ToString();
    std::unique_ptr<Discoverer> disc = std::move(disc_or).value();
    auto actual = RunStream(&rel, disc.get(), data);
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i], actual[i])
          << name << " diverged from oracle at arrival " << i << "\nexpected:\n"
          << DescribeFacts(rel, expected[i]) << "actual:\n"
          << DescribeFacts(rel, actual[i]);
    }
  }
}

std::vector<EquivalenceCase> MakeCases() {
  std::vector<EquivalenceCase> cases;

  auto add = [&](std::string label, RandomDataConfig data,
                 DiscoveryOptions options) {
    data.seed = 1000 + cases.size() * 7919;
    cases.push_back({std::move(label), data, options});
  };

  RandomDataConfig base;
  base.num_tuples = 90;
  add("base_d3_m2", base, {});

  RandomDataConfig d4 = base;
  d4.num_dims = 4;
  d4.num_measures = 3;
  add("d4_m3", d4, {});

  RandomDataConfig truncated = d4;
  add("d4_m3_dhat2", truncated, {.max_bound_dims = 2});
  add("d4_m3_mhat2", truncated, {.max_measure_dims = 2});
  add("d4_m3_dhat2_mhat2",
      truncated, {.max_bound_dims = 2, .max_measure_dims = 2});
  add("d4_m3_mhat1", truncated, {.max_measure_dims = 1});

  RandomDataConfig dup = base;
  dup.duplicate_prob = 0.35;
  dup.measure_levels = 3;
  add("heavy_duplicates", dup, {});

  RandomDataConfig mixed = d4;
  mixed.mixed_directions = true;
  add("mixed_directions", mixed, {});

  RandomDataConfig wide = base;
  wide.num_dims = 5;
  wide.num_measures = 2;
  wide.num_tuples = 70;
  wide.dim_cardinality = 2;
  add("d5_binary_dims", wide, {.max_bound_dims = 3});

  RandomDataConfig tiny_card = base;
  tiny_card.dim_cardinality = 1;  // every tuple in every context
  tiny_card.num_tuples = 50;
  add("single_value_dims", tiny_card, {});

  RandomDataConfig many_levels = d4;
  many_levels.measure_levels = 50;  // near-continuous measures, few ties
  add("continuous_measures", many_levels, {});

  RandomDataConfig m1 = base;
  m1.num_measures = 1;
  add("single_measure", m1, {});

  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, EquivalenceTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<EquivalenceCase>&
                                info) { return info.param.label; });

// The scenario from DESIGN.md that breaks a literal reading of the Alg. 5/6
// pseudocode: two dominators each agreeing with the new tuple on a different
// single dimension prune ⊤ and both depth-1 constraints, yet the new tuple
// is a skyline tuple at the depth-2 constraint. All algorithms must find it.
TEST(EquivalenceCornerCase, UnprunedChildOfPrunedParents) {
  Schema schema({{"d1"}, {"d2"}},
                {{"m1", Direction::kLargerIsBetter},
                 {"m2", Direction::kLargerIsBetter}});
  Dataset data{Schema(schema)};
  data.Add(Row{{"a", "y"}, {9, 9}});   // dominator agreeing on d1 only
  data.Add(Row{{"x", "b"}, {8, 8}});   // dominator agreeing on d2 only
  data.Add(Row{{"a", "b"}, {1, 1}});   // new tuple

  Relation oracle_rel(data.schema());
  BruteForceDiscoverer oracle(&oracle_rel, {});
  auto expected = RunStream(&oracle_rel, &oracle, data);
  // The last arrival must be a skyline tuple at <a, b> in every subspace
  // (its context holds only itself).
  ASSERT_EQ(expected.back().size(), 3u);
  for (const auto& f : expected.back()) {
    EXPECT_EQ(f.constraint.bound_mask(), 0b11u);
  }

  for (const std::string& name : AllAlgorithms()) {
    if (name.rfind("FS", 0) == 0) continue;  // covered by the main suite
    SCOPED_TRACE(name);
    Relation rel(data.schema());
    auto disc_or = DiscoveryEngine::CreateDiscoverer(name, &rel, {}, "");
    ASSERT_TRUE(disc_or.ok());
    auto disc = std::move(disc_or).value();
    auto actual = RunStream(&rel, disc.get(), data);
    EXPECT_EQ(expected, actual) << name;
  }
}

}  // namespace
}  // namespace sitfact
