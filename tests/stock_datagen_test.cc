// Tests for datagen/stock_generator.h: schema shape, determinism, label
// consistency and the statistical properties discovery relies on.

#include "datagen/stock_generator.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace sitfact {
namespace {

TEST(StockGenerator, SchemaShape) {
  Schema s = StockGenerator::FullSchema();
  ASSERT_EQ(s.num_dimensions(), 6);
  EXPECT_EQ(s.dimension(0).name, "ticker");
  EXPECT_EQ(s.dimension(5).name, "cap_class");
  ASSERT_EQ(s.num_measures(), 5);
  EXPECT_EQ(s.measure(4).name, "volatility");
  EXPECT_EQ(s.measure(4).direction, Direction::kSmallerIsBetter);
  EXPECT_EQ(s.measure(0).direction, Direction::kLargerIsBetter);
}

TEST(StockGenerator, DeterministicPerSeed) {
  StockGenerator::Config cfg;
  cfg.num_tickers = 20;
  Dataset a = StockGenerator(cfg).Generate(200);
  Dataset b = StockGenerator(cfg).Generate(200);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rows()[i].dimensions, b.rows()[i].dimensions);
    EXPECT_EQ(a.rows()[i].measures, b.rows()[i].measures);
  }

  cfg.seed = 999;
  Dataset c = StockGenerator(cfg).Generate(200);
  bool any_diff = false;
  for (size_t i = 0; i < c.size() && !any_diff; ++i) {
    any_diff = c.rows()[i].measures != a.rows()[i].measures;
  }
  EXPECT_TRUE(any_diff);
}

TEST(StockGenerator, TickersCycleRoundRobin) {
  StockGenerator::Config cfg;
  cfg.num_tickers = 7;
  StockGenerator gen(cfg);
  std::set<std::string> first_day;
  for (int i = 0; i < 7; ++i) first_day.insert(gen.Next().dimensions[0]);
  EXPECT_EQ(first_day.size(), 7u);  // every ticker trades once per day
  // The 8th row wraps to the first ticker again.
  StockGenerator gen2(cfg);
  Row r0 = gen2.Next();
  for (int i = 1; i < 7; ++i) gen2.Next();
  EXPECT_EQ(gen2.Next().dimensions[0], r0.dimensions[0]);
}

TEST(StockGenerator, CapClassMatchesMarketCap) {
  StockGenerator gen;
  for (int i = 0; i < 2000; ++i) {
    Row r = gen.Next();
    const double cap = r.measures[1];
    const std::string& label = r.dimensions[5];
    if (cap >= 10.0) {
      EXPECT_EQ(label, "large") << "cap=" << cap;
    } else if (cap >= 2.0) {
      EXPECT_EQ(label, "mid") << "cap=" << cap;
    } else {
      EXPECT_EQ(label, "small") << "cap=" << cap;
    }
  }
}

TEST(StockGenerator, MeasuresStayInSaneRanges) {
  StockGenerator gen;
  for (int i = 0; i < 5000; ++i) {
    Row r = gen.Next();
    EXPECT_GE(r.measures[0], 0.25);    // price floor
    EXPECT_GT(r.measures[1], 0.0);     // market cap positive
    EXPECT_GT(r.measures[2], 0.0);     // volume positive
    EXPECT_GT(r.measures[4], 0.0);     // volatility positive
    EXPECT_LT(std::abs(r.measures[3]), 100.0);  // daily move < 100%
  }
}

TEST(StockGenerator, YearAdvancesWithTradingDays) {
  StockGenerator::Config cfg;
  cfg.num_tickers = 2;
  cfg.days_per_year = 5;  // tiny year so the boundary shows quickly
  cfg.start_year = 2010;
  StockGenerator gen(cfg);
  // 2 tickers x 5 days = 10 rows in 2010, then 2011 begins.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.Next().dimensions[3], "2010");
  }
  EXPECT_EQ(gen.Next().dimensions[3], "2011");
}

TEST(StockGenerator, PriceAndMarketCapCorrelated) {
  // Within a ticker, market cap = price x shares, so the two must move
  // together; across the dataset the correlation should be clearly
  // positive. This is the dominance-geometry property the intro example
  // ("price over $300 and market cap over $400 billion") relies on.
  StockGenerator::Config cfg;
  cfg.num_tickers = 1;
  StockGenerator gen(cfg);
  double sum_p = 0, sum_c = 0, sum_pp = 0, sum_cc = 0, sum_pc = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    Row r = gen.Next();
    double p = r.measures[0];
    double c = r.measures[1];
    sum_p += p;
    sum_c += c;
    sum_pp += p * p;
    sum_cc += c * c;
    sum_pc += p * c;
  }
  double cov = sum_pc / n - (sum_p / n) * (sum_c / n);
  double var_p = sum_pp / n - (sum_p / n) * (sum_p / n);
  double var_c = sum_cc / n - (sum_c / n) * (sum_c / n);
  double corr = cov / std::sqrt(var_p * var_c);
  EXPECT_GT(corr, 0.95);  // cap = price x constant within one ticker
}

}  // namespace
}  // namespace sitfact
