// Tests for DiscoveryEngine::Update — the "update of data" half of the
// paper's Sec. VIII future work, modeled as remove + re-append.

#include <string>
#include <vector>

#include "core/engine.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::PaperTableI;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;
using testing_util::VerifyInvariant1;
using testing_util::VerifyInvariant2;

std::unique_ptr<DiscoveryEngine> MakeEngine(Relation* relation,
                                            const std::string& algorithm) {
  auto disc_or = DiscoveryEngine::CreateDiscoverer(algorithm, relation, {});
  EXPECT_TRUE(disc_or.ok());
  DiscoveryEngine::Config config;
  config.rank_facts = disc_or.value()->store() != nullptr;
  return std::make_unique<DiscoveryEngine>(relation,
                                           std::move(disc_or).value(),
                                           config);
}

TEST(EngineUpdate, CorrectedRowBehavesLikeFreshArrival) {
  // Publish a wrong stat line, correct it, and check the corrected line's
  // facts equal those of a run that never saw the bad row.
  Dataset data = PaperTableI();

  Relation dirty_rel(data.schema());
  auto dirty = MakeEngine(&dirty_rel, "STopDown");
  for (size_t i = 0; i + 1 < data.rows().size(); ++i) {
    dirty->Append(data.rows()[i]);
  }
  // t7 arrives garbled (points typo: 2 instead of 12)...
  Row garbled = data.rows().back();
  garbled.measures[0] = 2;
  ArrivalReport bad = dirty->Append(garbled);
  // ...and the desk corrects it.
  auto fixed_or = dirty->Update(bad.tuple, data.rows().back());
  ASSERT_TRUE(fixed_or.ok()) << fixed_or.status().ToString();

  Relation clean_rel(data.schema());
  auto clean = MakeEngine(&clean_rel, "STopDown");
  ArrivalReport clean_report;
  for (const Row& row : data.rows()) clean_report = clean->Append(row);

  EXPECT_EQ(fixed_or.value().facts, clean_report.facts);
  // Prominence context sizes also agree: the tombstoned row no longer
  // counts toward any |σ_C(R)|.
  ASSERT_EQ(fixed_or.value().ranked.size(), clean_report.ranked.size());
  for (size_t i = 0; i < clean_report.ranked.size(); ++i) {
    EXPECT_EQ(fixed_or.value().ranked[i].context_size,
              clean_report.ranked[i].context_size);
  }
}

struct UpdateParam {
  const char* algorithm;
  bool invariant1;  // which store invariant to verify afterwards
};

class EngineUpdateInvariants
    : public ::testing::TestWithParam<UpdateParam> {};

TEST_P(EngineUpdateInvariants, ChurnPreservesStoreInvariants) {
  RandomDataConfig cfg;
  cfg.num_tuples = 40;
  cfg.seed = 404;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  Dataset data = RandomDataset(cfg);

  Relation relation(data.schema());
  auto engine = MakeEngine(&relation, GetParam().algorithm);
  Rng rng(7);
  for (const Row& row : data.rows()) {
    engine->Append(row);
    // Occasionally rewrite a random live tuple with a perturbed copy.
    if (relation.live_size() > 5 && rng.NextBool(0.2)) {
      TupleId victim =
          static_cast<TupleId>(rng.NextBounded(relation.size()));
      if (relation.IsDeleted(victim)) continue;
      Row corrected;
      for (int d = 0; d < relation.schema().num_dimensions(); ++d) {
        corrected.dimensions.push_back(relation.DimString(victim, d));
      }
      for (int j = 0; j < relation.schema().num_measures(); ++j) {
        corrected.measures.push_back(relation.measure(victim, j) +
                                     (rng.NextBool(0.5) ? 1 : -1));
      }
      ASSERT_TRUE(engine->Update(victim, corrected).ok());
    }
  }

  auto& disc = engine->discoverer();
  if (GetParam().invariant1) {
    VerifyInvariant1(relation, disc.mutable_store(), disc.max_bound_dims(),
                     disc.subspaces());
  } else {
    VerifyInvariant2(relation, disc.mutable_store(), disc.max_bound_dims(),
                     disc.subspaces());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, EngineUpdateInvariants,
    ::testing::Values(UpdateParam{"BottomUp", true},
                      UpdateParam{"SBottomUp", true},
                      UpdateParam{"TopDown", false},
                      UpdateParam{"STopDown", false}),
    [](const ::testing::TestParamInfo<UpdateParam>& info) {
      return info.param.algorithm;
    });

TEST(EngineUpdate, ValidationFailuresHaveNoSideEffects) {
  Dataset data = PaperTableI();
  Relation relation(data.schema());
  auto engine = MakeEngine(&relation, "BottomUp");
  for (const Row& row : data.rows()) engine->Append(row);
  const TupleId before = relation.size();

  // Arity mismatch.
  Row bad;
  bad.dimensions = {"x"};
  bad.measures = {1.0};
  EXPECT_EQ(engine->Update(0, bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(relation.size(), before);
  EXPECT_FALSE(relation.IsDeleted(0));

  // Nonexistent tuple.
  EXPECT_EQ(engine->Update(9999, data.rows()[0]).status().code(),
            StatusCode::kInvalidArgument);

  // Already-deleted tuple.
  ASSERT_TRUE(engine->Remove(1).ok());
  EXPECT_EQ(engine->Update(1, data.rows()[1]).status().code(),
            StatusCode::kInvalidArgument);
}

// C-CSC gained removal (and therefore update) support with the
// SubspaceIndex rebuild: an update tombstones the old row, repairs the
// per-context skycubes, and re-discovers the corrected row, matching a run
// that never saw the bad row. (Facts only — C-CSC keeps no µ store, so
// MakeEngine turns prominence ranking off for it.)
TEST(EngineUpdate, CcscUpdateBehavesLikeFreshArrival) {
  Dataset data = PaperTableI();

  Relation dirty_rel(data.schema());
  auto dirty = MakeEngine(&dirty_rel, "C-CSC");
  for (size_t i = 0; i + 1 < data.rows().size(); ++i) {
    dirty->Append(data.rows()[i]);
  }
  Row garbled = data.rows().back();
  garbled.measures[0] = 2;
  ArrivalReport bad = dirty->Append(garbled);
  auto fixed_or = dirty->Update(bad.tuple, data.rows().back());
  ASSERT_TRUE(fixed_or.ok()) << fixed_or.status().ToString();
  EXPECT_TRUE(dirty_rel.IsDeleted(bad.tuple));

  Relation clean_rel(data.schema());
  auto clean = MakeEngine(&clean_rel, "C-CSC");
  ArrivalReport clean_report;
  for (const Row& row : data.rows()) clean_report = clean->Append(row);

  EXPECT_EQ(fixed_or.value().facts, clean_report.facts);
}

}  // namespace
}  // namespace sitfact
