#!/usr/bin/env bash
# End-to-end smoke test for sitfact_cli and (optionally) the quickstart
# example. Usage: cli_smoke.sh <path-to-sitfact_cli> [path-to-quickstart]
#
# Each step checks both the exit status and an expected output substring so
# the executable targets cannot silently rot while the unit suite stays
# green.
set -u

CLI=${1:?usage: cli_smoke.sh <sitfact_cli> [quickstart]}
QUICKSTART=${2:-}

WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/sitfact_smoke.XXXXXX")
trap 'rm -rf "$WORKDIR"' EXIT

FAILURES=0

# expect <name> <expected-exit> <substring> <cmd...>
# Runs cmd, captures stdout+stderr, verifies exit code and substring.
expect() {
  local name=$1 want_status=$2 want_substr=$3
  shift 3
  local out status
  out=$("$@" 2>&1)
  status=$?
  if [ "$status" -ne "$want_status" ]; then
    echo "FAIL $name: exit $status, wanted $want_status"
    echo "$out" | sed 's/^/  | /'
    FAILURES=$((FAILURES + 1))
    return
  fi
  if ! printf '%s' "$out" | grep -qF "$want_substr"; then
    echo "FAIL $name: output lacks \"$want_substr\""
    echo "$out" | sed 's/^/  | /'
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "ok   $name"
}

CSV="$WORKDIR/nba.csv"
SNAP="$WORKDIR/engine.snap"

expect generate 0 "wrote 200 nba rows" \
  "$CLI" generate --dataset nba --rows 200 --seed 7 --out "$CSV"

[ -s "$CSV" ] || { echo "FAIL generate: $CSV missing or empty"; FAILURES=$((FAILURES + 1)); }

expect discover 0 "processed 200 rows" \
  "$CLI" discover --csv "$CSV" --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+ --quiet \
  --save-snapshot "$SNAP"

expect resume 0 "restored" \
  "$CLI" resume --snapshot "$SNAP" --quiet

expect query 0 "skyline" \
  "$CLI" query --csv "$CSV" --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+

expect usage 2 "USAGE" "$CLI" help

# The parser must reject positionals through the error path (exit 2 from
# PrintUsage) and name the offending argument.
expect positional-rejected 2 "unexpected positional argument: stray.csv" \
  "$CLI" discover stray.csv

if [ -n "$QUICKSTART" ]; then
  expect quickstart 0 "prominent" "$QUICKSTART"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES smoke step(s) failed"
  exit 1
fi
echo "smoke: all steps passed"
