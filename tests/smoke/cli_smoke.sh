#!/usr/bin/env bash
# End-to-end smoke test for sitfact_cli and (optionally) the quickstart
# example. Usage: cli_smoke.sh <path-to-sitfact_cli> [path-to-quickstart]
#
# Each step checks both the exit status and an expected output substring so
# the executable targets cannot silently rot while the unit suite stays
# green.
set -u

CLI=${1:?usage: cli_smoke.sh <sitfact_cli> [quickstart]}
QUICKSTART=${2:-}

WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/sitfact_smoke.XXXXXX")
trap 'rm -rf "$WORKDIR"' EXIT

FAILURES=0

# expect <name> <expected-exit> <substring> <cmd...>
# Runs cmd, captures stdout+stderr, verifies exit code and substring.
expect() {
  local name=$1 want_status=$2 want_substr=$3
  shift 3
  local out status
  out=$("$@" 2>&1)
  status=$?
  if [ "$status" -ne "$want_status" ]; then
    echo "FAIL $name: exit $status, wanted $want_status"
    echo "$out" | sed 's/^/  | /'
    FAILURES=$((FAILURES + 1))
    return
  fi
  if ! printf '%s' "$out" | grep -qF "$want_substr"; then
    echo "FAIL $name: output lacks \"$want_substr\""
    echo "$out" | sed 's/^/  | /'
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "ok   $name"
}

CSV="$WORKDIR/nba.csv"
SNAP="$WORKDIR/engine.snap"

expect generate 0 "wrote 200 nba rows" \
  "$CLI" generate --dataset nba --rows 200 --seed 7 --out "$CSV"

[ -s "$CSV" ] || { echo "FAIL generate: $CSV missing or empty"; FAILURES=$((FAILURES + 1)); }

expect discover 0 "processed 200 rows" \
  "$CLI" discover --csv "$CSV" --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+ --quiet \
  --save-snapshot "$SNAP"

expect resume 0 "restored" \
  "$CLI" resume --snapshot "$SNAP" --quiet

expect query 0 "skyline" \
  "$CLI" query --csv "$CSV" --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+

# Durable checkpoint/restore (docs/persistence.md): ingest the first half
# of the stream and checkpoint; ingest the next quarter into the WAL only
# (--no-final — on-disk this is what a crash between checkpoints looks
# like); "kill" (the process exited); restore must replay the WAL tail and
# finish the last quarter. The per-arrival reports of the three runs,
# concatenated, must be byte-identical to one uninterrupted discover run.
DSTORE="$WORKDIR/durable"
head -1 "$CSV" > "$WORKDIR/part1.csv"; sed -n '2,101p'   "$CSV" >> "$WORKDIR/part1.csv"
head -1 "$CSV" > "$WORKDIR/part2.csv"; sed -n '102,151p' "$CSV" >> "$WORKDIR/part2.csv"
head -1 "$CSV" > "$WORKDIR/part3.csv"; sed -n '152,201p' "$CSV" >> "$WORKDIR/part3.csv"

"$CLI" discover --csv "$CSV" --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+ > "$WORKDIR/uninterrupted.txt" 2>&1

# expect_file <name> <expected-exit> <substring> <outfile> <cmd...>
# Like expect, but tees the command output to a file for later diffing.
expect_file() {
  local name=$1 want_status=$2 want_substr=$3 outfile=$4
  shift 4
  "$@" > "$outfile" 2>&1
  local status=$?
  if [ "$status" -ne "$want_status" ]; then
    echo "FAIL $name: exit $status, wanted $want_status"
    sed 's/^/  | /' "$outfile"
    FAILURES=$((FAILURES + 1))
    return
  fi
  if ! grep -qF "$want_substr" "$outfile"; then
    echo "FAIL $name: output lacks \"$want_substr\""
    sed 's/^/  | /' "$outfile"
    FAILURES=$((FAILURES + 1))
    return
  fi
  echo "ok   $name"
}

expect_file durable-checkpoint 0 "checkpointed at seq 100" "$WORKDIR/d1.txt" \
  "$CLI" checkpoint --dir "$DSTORE" --csv "$WORKDIR/part1.csv" \
  --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+ --every 32

expect_file durable-wal-tail 0 "restore will replay them" "$WORKDIR/d2.txt" \
  "$CLI" checkpoint --dir "$DSTORE" --csv "$WORKDIR/part2.csv" \
  --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+ --no-final

expect_file durable-restore 0 "restored STopDown engine at seq 150" \
  "$WORKDIR/d3.txt" \
  "$CLI" restore --dir "$DSTORE" --csv "$WORKDIR/part3.csv"

# The indented recovery banner ("  via N delta checkpoint(s)...") is status,
# not report output; keep it out of the differential.
grep -h '^tuple \|^  ' "$WORKDIR/d1.txt" "$WORKDIR/d2.txt" "$WORKDIR/d3.txt" \
  | grep -v 'delta checkpoint' > "$WORKDIR/durable_reports.txt"
grep -h '^tuple \|^  ' "$WORKDIR/uninterrupted.txt" > "$WORKDIR/full_reports.txt"
if diff -q "$WORKDIR/durable_reports.txt" "$WORKDIR/full_reports.txt" > /dev/null; then
  echo "ok   durable-differential"
else
  echo "FAIL durable-differential: checkpoint+kill+restore reports differ from uninterrupted run"
  diff "$WORKDIR/durable_reports.txt" "$WORKDIR/full_reports.txt" | head -10 | sed 's/^/  | /'
  FAILURES=$((FAILURES + 1))
fi

expect wal-dump 0 "append" "$CLI" wal-dump --dir "$DSTORE" --limit 3

# FactService serving (docs/query_api.md): top-k with filter + pagination
# over a fresh ingest, then the same store recovered from disk — the
# recovered index must see the identical fact count.
expect_file facts-topk 0 "facts indexed over 200 arrivals" \
  "$WORKDIR/facts_live.txt" \
  "$CLI" facts --csv "$CSV" --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+ --k 6 --page 3 --entity player

expect_file facts-durable 0 "index rebuilt, serving" \
  "$WORKDIR/facts_recovered.txt" \
  "$CLI" facts --dir "$DSTORE" --k 6 --page 3

LIVE_COUNT=$(grep -o '[0-9]* facts indexed' "$WORKDIR/facts_live.txt" | head -1)
RECOVERED_COUNT=$(grep -o '[0-9]* facts indexed' "$WORKDIR/facts_recovered.txt" | head -1)
if [ -n "$LIVE_COUNT" ] && [ "$LIVE_COUNT" = "$RECOVERED_COUNT" ]; then
  echo "ok   facts-differential ($LIVE_COUNT)"
else
  echo "FAIL facts-differential: live \"$LIVE_COUNT\" vs recovered \"$RECOVERED_COUNT\""
  FAILURES=$((FAILURES + 1))
fi

# HTTP serving (docs/serving.md): start `serve` on an ephemeral port, curl
# every endpoint, and byte-diff /topk against `facts --format json`. Both
# commands ingest the same CSV through the same feed, so they land on the
# same epoch and the response bytes must be identical (the CLI only adds a
# trailing newline).
PORTFILE="$WORKDIR/port"
SERVELOG="$WORKDIR/serve.log"
"$CLI" serve --csv "$CSV" --dims player,season,team,opp_team \
  --measures points:+,rebounds:+,assists:+ --entity player \
  --port 0 --port-file "$PORTFILE" > "$SERVELOG" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORTFILE" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if [ ! -s "$PORTFILE" ]; then
  echo "FAIL serve-start: server wrote no port file"
  sed 's/^/  | /' "$SERVELOG"
  FAILURES=$((FAILURES + 1))
else
  BASE="http://127.0.0.1:$(cat "$PORTFILE")"
  expect serve-healthz 0 '"status":"ok"' curl -fsS "$BASE/healthz"
  expect serve-topk 0 '"schema":1' curl -fsS "$BASE/topk?k=6"
  expect serve-window 0 '"facts"' curl -fsS "$BASE/facts_in_window?window=0:9"
  expect serve-tuple 0 '"facts"' curl -fsS "$BASE/facts_for_tuple?tuple=0"
  expect serve-explain 0 '"narration"' curl -fsS "$BASE/explain?record=0"
  expect serve-statz 0 '"endpoints"' curl -fsS "$BASE/statz"
  expect serve-bad-param 0 "unknown query parameter 'zzz'" \
    curl -sS "$BASE/topk?zzz=1"

  # The differential: server /topk bytes == `facts --format json` bytes.
  "$CLI" facts --csv "$CSV" --dims player,season,team,opp_team \
    --measures points:+,rebounds:+,assists:+ --entity player \
    --k 6 --format json > "$WORKDIR/facts.json" 2>&1
  curl -fsS "$BASE/topk?k=6" > "$WORKDIR/serve.json"
  echo >> "$WORKDIR/serve.json"  # the CLI prints a trailing newline
  if diff -q "$WORKDIR/facts.json" "$WORKDIR/serve.json" > /dev/null; then
    echo "ok   serve-differential"
  else
    echo "FAIL serve-differential: server /topk differs from facts --format json"
    diff "$WORKDIR/facts.json" "$WORKDIR/serve.json" | head -5 | sed 's/^/  | /'
    FAILURES=$((FAILURES + 1))
  fi

  expect serve-quit 0 "shutting down" \
    curl -fsS -X POST "$BASE/quitquitquit"
  wait "$SERVE_PID"
  SERVE_STATUS=$?
  if [ "$SERVE_STATUS" -eq 0 ] && grep -q "served .* request(s)" "$SERVELOG"; then
    echo "ok   serve-shutdown"
  else
    echo "FAIL serve-shutdown: exit $SERVE_STATUS"
    sed 's/^/  | /' "$SERVELOG"
    FAILURES=$((FAILURES + 1))
  fi
fi

expect usage 2 "USAGE" "$CLI" help

# The parser must reject positionals through the error path (exit 2 from
# PrintUsage) and name the offending argument.
expect positional-rejected 2 "unexpected positional argument: stray.csv" \
  "$CLI" discover stray.csv

if [ -n "$QUICKSTART" ]; then
  expect quickstart 0 "prominent" "$QUICKSTART"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES smoke step(s) failed"
  exit 1
fi
echo "smoke: all steps passed"
