// Behavioural checks that the paper's *qualitative* claims hold on real
// streams of generated data — the properties the evaluation section builds
// on. These are shape assertions (who does less work, who stores less), not
// timing assertions, so they are deterministic.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/baseline_seq.h"
#include "core/shared_bottom_up.h"
#include "core/shared_top_down.h"
#include "core/top_down.h"
#include "datagen/nba_generator.h"
#include "storage/memory_mu_store.h"
#include "test_util.h"

namespace sitfact {
namespace {

class WorkloadBehaviorTest : public ::testing::Test {
 protected:
  static Dataset MakeNbaSlice(int n, int d, int m) {
    NbaGenerator::Config cfg;
    cfg.tuples_per_season = n / 2 + 1;
    NbaGenerator gen(cfg);
    Dataset all = gen.Generate(n);
    return std::move(all
                         .Project(NbaGenerator::DimensionsForD(d),
                                  NbaGenerator::MeasuresForM(m)))
        .value();
  }

  template <typename Algo>
  std::unique_ptr<Algo> Run(const Dataset& data, Relation* rel,
                            const DiscoveryOptions& options) {
    auto disc = std::make_unique<Algo>(rel, options);
    std::vector<SkylineFact> facts;
    for (const Row& row : data.rows()) {
      facts.clear();
      disc->Discover(rel->Append(row), &facts);
    }
    return disc;
  }
};

TEST_F(WorkloadBehaviorTest, TupleReductionBeatsBaselineComparisons) {
  Dataset data = MakeNbaSlice(400, 4, 4);
  DiscoveryOptions opt{.max_bound_dims = 3};

  Relation r1(data.schema());
  auto baseline = Run<BaselineSeqDiscoverer>(data, &r1, opt);
  Relation r2(data.schema());
  auto bottom_up = Run<BottomUpDiscoverer>(data, &r2, opt);

  // Idea 1 of the paper: comparing only against skyline buckets does far
  // fewer tuple comparisons than scanning all of R per subspace.
  EXPECT_LT(bottom_up->stats().comparisons,
            baseline->stats().comparisons / 5);
}

TEST_F(WorkloadBehaviorTest, TopDownStoresFewerTuplesThanBottomUp) {
  Dataset data = MakeNbaSlice(400, 5, 4);
  DiscoveryOptions opt{.max_bound_dims = 4};

  Relation r1(data.schema());
  auto bu = Run<BottomUpDiscoverer>(data, &r1, opt);
  Relation r2(data.schema());
  auto td = Run<TopDownDiscoverer>(data, &r2, opt);

  // Fig. 10b: BottomUp stores a tuple at every skyline constraint, TopDown
  // only at the maximal antichain — several times fewer.
  EXPECT_LT(td->StoredTupleCount(), bu->StoredTupleCount());
  EXPECT_GE(bu->StoredTupleCount(), td->StoredTupleCount() * 2);
}

TEST_F(WorkloadBehaviorTest, SharingReducesTopDownTraversals) {
  Dataset data = MakeNbaSlice(300, 5, 4);
  DiscoveryOptions opt{.max_bound_dims = 4};

  Relation r1(data.schema());
  auto td = Run<TopDownDiscoverer>(data, &r1, opt);
  Relation r2(data.schema());
  auto std_ = Run<SharedTopDownDiscoverer>(data, &r2, opt);

  // Fig. 11b: STopDown skips pruned constraints in subspaces entirely.
  EXPECT_LT(std_->stats().constraints_traversed,
            td->stats().constraints_traversed);
  // Fig. 11a: it also compares less (skipped buckets are never read).
  EXPECT_LE(std_->stats().comparisons, td->stats().comparisons);
}

TEST_F(WorkloadBehaviorTest, SharingChangesBottomUpWorkOnlyModestly) {
  Dataset data = MakeNbaSlice(300, 5, 4);
  DiscoveryOptions opt{.max_bound_dims = 4};

  Relation r1(data.schema());
  auto bu = Run<BottomUpDiscoverer>(data, &r1, opt);
  Relation r2(data.schema());
  auto sbu = Run<SharedBottomUpDiscoverer>(data, &r2, opt);

  // Fig. 11: "the differences between BottomUp and SBottomUp are
  // insignificant" — sharing can only remove work, and not much of it,
  // because BottomUp already skips most non-skyline constraints.
  EXPECT_LE(sbu->stats().constraints_traversed,
            bu->stats().constraints_traversed);
  EXPECT_GT(sbu->stats().constraints_traversed,
            bu->stats().constraints_traversed / 2);
}

TEST_F(WorkloadBehaviorTest, PruningAblationVisitsStrictlyMore) {
  Dataset data = MakeNbaSlice(250, 4, 4);
  Relation r1(data.schema());
  auto pruned = Run<BottomUpDiscoverer>(data, &r1, {});

  Relation r2(data.schema());
  auto unpruned = std::make_unique<BottomUpDiscoverer>(
      &r2, DiscoveryOptions{}, std::make_unique<MemoryMuStore>(),
      /*enable_pruning=*/false);
  std::vector<SkylineFact> facts;
  std::vector<std::vector<SkylineFact>> expect_stream;
  {
    Relation r3(data.schema());
    BruteForceDiscoverer oracle(&r3, {});
    expect_stream = testing_util::RunStream(&r3, &oracle, data);
  }
  size_t i = 0;
  for (const Row& row : data.rows()) {
    facts.clear();
    unpruned->Discover(r2.Append(row), &facts);
    CanonicalizeFacts(&facts);
    // The ablation must stay CORRECT, just slower.
    ASSERT_EQ(facts, expect_stream[i++]);
  }
  EXPECT_GT(unpruned->stats().constraints_traversed,
            pruned->stats().constraints_traversed);
}

}  // namespace
}  // namespace sitfact
