// Unit tests for the µ-store implementations (in-memory and file-backed),
// including stats accounting and IO failure behaviour, plus the context
// counter feeding the prominence measure.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/shared_top_down.h"
#include "exec/sharded_discoverer.h"
#include "storage/context_counter.h"
#include "storage/file_mu_store.h"
#include "storage/memory_mu_store.h"
#include "storage/segmented_mu_store.h"
#include "test_util.h"

namespace sitfact {
namespace {

namespace fs = std::filesystem;
using testing_util::PaperTableIV;

class MuStoreContractTest : public ::testing::TestWithParam<bool> {
 protected:
  MuStoreContractTest() : data_(PaperTableIV()), relation_(data_.schema()) {
    for (const Row& row : data_.rows()) relation_.Append(row);
    if (IsFileStore()) {
      // Unique per test AND process: ctest -j runs these concurrently, and
      // FileMuStore's destructor removes its whole directory tree.
      const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info();
      std::string name = info != nullptr ? info->name() : "unknown";
      for (char& c : name) {
        if (c == '/') c = '_';  // parameterized test names carry a slash
      }
      dir_ = (fs::temp_directory_path() /
              ("sitfact_store_test_" + std::to_string(::getpid()) + "_" +
               name))
                 .string();
      store_ = std::make_unique<FileMuStore>(dir_);
    } else {
      store_ = std::make_unique<MemoryMuStore>();
    }
  }

  bool IsFileStore() const { return GetParam(); }

  Dataset data_;

  Constraint C(DimMask mask, TupleId t = 4) const {
    return Constraint::ForTuple(relation_, t, mask);
  }

  Relation relation_;
  std::string dir_;
  std::unique_ptr<MuStore> store_;
};

TEST_P(MuStoreContractTest, FindOnEmptyStoreReturnsNull) {
  EXPECT_EQ(store_->Find(C(0b001)), nullptr);
}

TEST_P(MuStoreContractTest, GetOrCreateIsStableAndIdempotent) {
  MuStore::Context* a = store_->GetOrCreate(C(0b001));
  MuStore::Context* b = store_->GetOrCreate(C(0b001));
  EXPECT_EQ(a, b);
  EXPECT_EQ(store_->Find(C(0b001)), a);
  // A different constraint gets a different context.
  EXPECT_NE(store_->GetOrCreate(C(0b011)), a);
}

TEST_P(MuStoreContractTest, InsertReadEraseRoundTrip) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b001));
  EXPECT_TRUE(ctx->Empty(0b11));
  ctx->Insert(0b11, 1);
  ctx->Insert(0b11, 4);
  ctx->Insert(0b01, 3);
  EXPECT_EQ(ctx->Size(0b11), 2u);
  EXPECT_EQ(ctx->Size(0b01), 1u);
  EXPECT_EQ(ctx->Size(0b10), 0u);
  EXPECT_TRUE(ctx->Contains(0b11, 1));
  EXPECT_TRUE(ctx->Contains(0b11, 4));
  EXPECT_FALSE(ctx->Contains(0b11, 3));

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  std::sort(bucket.begin(), bucket.end());
  EXPECT_EQ(bucket, (std::vector<TupleId>{1, 4}));

  EXPECT_TRUE(ctx->Erase(0b11, 1));
  EXPECT_FALSE(ctx->Erase(0b11, 1));  // already gone
  EXPECT_FALSE(ctx->Erase(0b10, 7));  // empty bucket
  EXPECT_EQ(ctx->Size(0b11), 1u);
  EXPECT_EQ(store_->stats().stored_tuples, 2u);
}

TEST_P(MuStoreContractTest, WriteReplacesAndEmptyWriteRemoves) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b011));
  ctx->Write(0b11, {1, 2, 3});
  EXPECT_EQ(ctx->Size(0b11), 3u);
  EXPECT_EQ(store_->stats().stored_tuples, 3u);
  ctx->Write(0b11, {4});
  EXPECT_EQ(ctx->Size(0b11), 1u);
  EXPECT_EQ(store_->stats().stored_tuples, 1u);
  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  EXPECT_EQ(bucket, (std::vector<TupleId>{4}));
  ctx->Write(0b11, {});
  EXPECT_TRUE(ctx->Empty(0b11));
  EXPECT_EQ(store_->stats().stored_tuples, 0u);
  ctx->Read(0b11, &bucket);
  EXPECT_TRUE(bucket.empty());
}

TEST_P(MuStoreContractTest, BucketsOfDifferentSubspacesAreIndependent) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b111));
  for (MeasureMask m = 1; m <= 3; ++m) ctx->Write(m, {m});
  for (MeasureMask m = 1; m <= 3; ++m) {
    std::vector<TupleId> bucket;
    ctx->Read(m, &bucket);
    ASSERT_EQ(bucket.size(), 1u);
    EXPECT_EQ(bucket[0], m);
  }
}

TEST_P(MuStoreContractTest, MemoryAccountingIsPositiveOncepopulated) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b001));
  ctx->Write(0b01, {1, 2, 3, 4});
  EXPECT_GT(store_->ApproxMemoryBytes(), 0u);
}

TEST_P(MuStoreContractTest, ForEachBucketVisitsExactlyTheNonEmptyBuckets) {
  // Populate three constraints x two subspaces, one of them emptied again.
  store_->GetOrCreate(C(0b001))->Write(0b01, {0, 1});
  store_->GetOrCreate(C(0b001))->Write(0b10, {2});
  store_->GetOrCreate(C(0b011))->Write(0b01, {3, 4, 0});
  store_->GetOrCreate(C(0b111))->Write(0b10, {1});
  store_->GetOrCreate(C(0b111))->Write(0b10, {});  // removed again
  store_->GetOrCreate(C(0b110));                   // entry with no buckets

  std::map<std::pair<DimMask, MeasureMask>, std::vector<TupleId>> seen;
  store_->ForEachBucket([&](const Constraint& c, MeasureMask m,
                            const std::vector<TupleId>& bucket) {
    auto key = std::make_pair(c.bound_mask(), m);
    EXPECT_EQ(seen.count(key), 0u) << "bucket visited twice";
    seen[key] = bucket;
  });

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ((seen[{0b001, 0b01}]), (std::vector<TupleId>{0, 1}));
  EXPECT_EQ((seen[{0b001, 0b10}]), (std::vector<TupleId>{2}));
  EXPECT_EQ((seen[{0b011, 0b01}]), (std::vector<TupleId>{3, 4, 0}));
}

INSTANTIATE_TEST_SUITE_P(MemoryAndFile, MuStoreContractTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "FileMuStore" : "MemoryMuStore";
                         });

/// Shadow index maintained purely from BucketObserver callbacks; after any
/// mutation sequence it must agree with a ForEachBucket dump of the store.
class ShadowObserver : public MuStore::BucketObserver {
 public:
  void OnBucketChanged(const Constraint& c, MeasureMask m,
                       const std::vector<TupleId>& bucket) override {
    ++notifications_;
    if (bucket.empty()) {
      shadow_[c].erase(m);
      if (shadow_[c].empty()) shadow_.erase(c);
    } else {
      shadow_[c][m] = bucket;
    }
  }

  void ExpectMatches(MuStore& store) const {  // ForEachBucket is non-const
    size_t dumped = 0;
    store.ForEachBucket([&](const Constraint& c, MeasureMask m,
                            const std::vector<TupleId>& bucket) {
      ++dumped;
      auto it = shadow_.find(c);
      ASSERT_NE(it, shadow_.end()) << "constraint missing from shadow";
      auto bit = it->second.find(m);
      ASSERT_NE(bit, it->second.end()) << "bucket missing from shadow";
      EXPECT_EQ(bit->second, bucket);
    });
    size_t shadow_buckets = 0;
    for (const auto& [c, buckets] : shadow_) shadow_buckets += buckets.size();
    EXPECT_EQ(shadow_buckets, dumped) << "shadow holds stale buckets";
  }

  uint64_t notifications() const { return notifications_; }

 private:
  std::unordered_map<Constraint, std::map<MeasureMask, std::vector<TupleId>>,
                     ConstraintHash>
      shadow_;
  uint64_t notifications_ = 0;
};

// The memory store must emit one notification per bucket mutation, with the
// bucket's new contents, through a full discovery stream plus deletions —
// the feed a downstream per-subspace skyband index would be built on.
TEST(MemoryMuStoreObserver, ShadowTracksDiscoveryStreamAndRemovals) {
  Dataset data = PaperTableIV();
  Relation relation(data.schema());
  SharedTopDownDiscoverer disc(&relation, {});
  ShadowObserver observer;
  disc.mutable_store()->set_bucket_observer(&observer);

  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    disc.Discover(relation.Append(row), &facts);
  }
  EXPECT_GT(observer.notifications(), 0u);
  observer.ExpectMatches(*disc.mutable_store());

  // Deleting the global dominator rewrites many buckets; the observer sees
  // every rewrite including emptied buckets.
  relation.MarkDeleted(3);
  ASSERT_TRUE(disc.Remove(3).ok());
  observer.ExpectMatches(*disc.mutable_store());

  // Detaching stops the feed.
  const uint64_t before = observer.notifications();
  disc.mutable_store()->set_bucket_observer(nullptr);
  disc.Discover(relation.Append(Row{{"a3", "b3", "c3"}, {30, 30}}), &facts);
  EXPECT_EQ(observer.notifications(), before);
}

TEST(FileMuStore, CountsFileIoAndTracksDiskBytes) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  std::string dir = (fs::temp_directory_path() / "sitfact_fio_test").string();
  FileMuStore store(dir);
  MuStore::Context* ctx =
      store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001));

  ctx->Write(0b11, {1, 2});
  EXPECT_EQ(store.stats().file_writes, 1u);
  EXPECT_EQ(store.DiskBytes(), 2 * sizeof(TupleId));

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  EXPECT_EQ(store.stats().file_reads, 1u);

  // Empty buckets cost no IO at all.
  ctx->Read(0b10, &bucket);
  EXPECT_EQ(store.stats().file_reads, 1u);
  EXPECT_TRUE(bucket.empty());

  ctx->Write(0b11, {});
  EXPECT_EQ(store.DiskBytes(), 0u);
  EXPECT_TRUE(store.status().ok());
}

TEST(FileMuStore, SurvivesCorruptedBucketFileWithErrorStatus) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  std::string dir = (fs::temp_directory_path() / "sitfact_corrupt").string();
  FileMuStore store(dir);
  MuStore::Context* ctx =
      store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001));
  ctx->Write(0b11, {1, 2, 3});

  // Truncate the single bucket file behind the store's back.
  bool truncated = false;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      std::ofstream f(entry.path(), std::ios::trunc | std::ios::binary);
      f << 'x';
      truncated = true;
    }
  }
  ASSERT_TRUE(truncated);

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);  // degraded read
  EXPECT_FALSE(store.status().ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
}

TEST(FileMuStore, CleanupRemovesDirectory) {
  std::string dir = (fs::temp_directory_path() / "sitfact_cleanup").string();
  {
    Dataset data = PaperTableIV();
    Relation r(data.schema());
    for (const Row& row : data.rows()) r.Append(row);
    FileMuStore store(dir);
    store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001))->Write(0b1, {1});
    EXPECT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));  // destructor cleans up
}

// ---------------------------------------------------------------------------
// SegmentedMuStore.

class SegmentedMuStoreTest : public ::testing::Test {
 protected:
  SegmentedMuStoreTest()
      : data_(PaperTableIV()),
        relation_(data_.schema()),
        // d = 3 -> 8 masks, spread over 3 segments.
        store_(3, {0, 1, 2, 0, 1, 2, 0, 1}) {
    for (const Row& row : data_.rows()) relation_.Append(row);
  }

  Constraint C(DimMask mask, TupleId t = 4) const {
    return Constraint::ForTuple(relation_, t, mask);
  }

  Dataset data_;
  Relation relation_;
  SegmentedMuStore store_;
};

TEST_F(SegmentedMuStoreTest, RoutesConstraintsByMaskDeterministically) {
  MuStore::Context* a = store_.GetOrCreate(C(0b001));
  EXPECT_EQ(store_.Find(C(0b001)), a);
  EXPECT_EQ(store_.GetOrCreate(C(0b001)), a);
  // The handle lives in the owning segment and nowhere else.
  EXPECT_EQ(store_.SegmentOf(0b001), 1);
  EXPECT_EQ(store_.segment(1)->Find(C(0b001)), a);
  EXPECT_EQ(store_.segment(0)->Find(C(0b001)), nullptr);
  EXPECT_EQ(store_.segment(2)->Find(C(0b001)), nullptr);
  // Same mask, different bound values: same segment, distinct context.
  MuStore::Context* b = store_.GetOrCreate(C(0b001, /*t=*/2));
  EXPECT_NE(a, b);
  EXPECT_EQ(store_.segment(1)->Find(C(0b001, /*t=*/2)), b);
}

TEST_F(SegmentedMuStoreTest, StatsAggregateAcrossSegments) {
  // Regression for the segmented-store satellite: MuStore::stats() must be
  // the fold of the per-segment counters, not the (never-written) base
  // counters, or StoredTupleCount()/the bench harness read zeros.
  store_.GetOrCreate(C(0b001))->Write(0b01, {0, 1, 2});  // segment 1
  store_.GetOrCreate(C(0b010))->Write(0b01, {3});        // segment 2
  store_.GetOrCreate(C(0b011))->Write(0b11, {0, 4});     // segment 0
  EXPECT_EQ(store_.stats().stored_tuples, 6u);
  EXPECT_EQ(store_.stats().bucket_writes, 3u);

  std::vector<TupleId> bucket;
  store_.Find(C(0b010))->Read(0b01, &bucket);
  EXPECT_EQ(store_.stats().bucket_reads, 1u);

  store_.Find(C(0b001))->Write(0b01, {});  // emptied again
  EXPECT_EQ(store_.stats().stored_tuples, 3u);
  EXPECT_GT(store_.ApproxMemoryBytes(), 0u);
}

TEST_F(SegmentedMuStoreTest, ForEachBucketVisitsEverySegmentOnce) {
  store_.GetOrCreate(C(0b001))->Write(0b01, {0, 1});
  store_.GetOrCreate(C(0b010))->Write(0b10, {2});
  store_.GetOrCreate(C(0b100))->Write(0b01, {3});
  std::map<std::pair<DimMask, MeasureMask>, std::vector<TupleId>> seen;
  store_.ForEachBucket([&](const Constraint& c, MeasureMask m,
                           const std::vector<TupleId>& bucket) {
    auto key = std::make_pair(c.bound_mask(), m);
    EXPECT_EQ(seen.count(key), 0u) << "bucket visited twice";
    seen[key] = bucket;
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ((seen[{0b001, 0b01}]), (std::vector<TupleId>{0, 1}));
  EXPECT_EQ((seen[{0b010, 0b10}]), (std::vector<TupleId>{2}));
  EXPECT_EQ((seen[{0b100, 0b01}]), (std::vector<TupleId>{3}));
}

TEST_F(SegmentedMuStoreTest, ObserverForwardsToEverySegment) {
  // Regression for the observer satellite: mutations run against per-shard
  // segments, so a registration kept only on the composite would never
  // fire. set_bucket_observer must fan out to every segment, and clearing
  // it must silence all of them again.
  ShadowObserver observer;
  store_.set_bucket_observer(&observer);
  EXPECT_TRUE(store_.NotifiesObservers());

  store_.GetOrCreate(C(0b001))->Write(0b01, {0, 1});   // segment 1
  store_.GetOrCreate(C(0b010))->Write(0b10, {2});      // segment 2
  store_.GetOrCreate(C(0b011))->Write(0b11, {3, 4});   // segment 0
  store_.segment(0)->Find(C(0b011))->Write(0b11, {3});  // shard's direct path
  EXPECT_EQ(observer.notifications(), 4u);
  observer.ExpectMatches(store_);

  store_.Find(C(0b001))->Write(0b01, {});  // emptied -> erased from shadow
  observer.ExpectMatches(store_);

  store_.set_bucket_observer(nullptr);
  const uint64_t before = observer.notifications();
  store_.GetOrCreate(C(0b100))->Write(0b01, {5});
  EXPECT_EQ(observer.notifications(), before);
}

TEST(SegmentedMuStore, DiscovererAggregationMatchesSequentialStore) {
  // Discoverer::StoredTupleCount()/ApproxMemoryBytes() must aggregate over
  // segmented µ stores exactly as they do over a monolithic one.
  Dataset data = PaperTableIV();

  Relation seq_rel(data.schema());
  BottomUpDiscoverer seq(&seq_rel, {});
  Relation par_rel(data.schema());
  ShardedDiscoverer par(&par_rel, {}, /*num_shards=*/3, /*num_threads=*/2);

  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = seq_rel.Append(row);
    facts.clear();
    seq.Discover(t, &facts);
    t = par_rel.Append(row);
    facts.clear();
    par.Discover(t, &facts);

    ASSERT_EQ(par.StoredTupleCount(), seq.StoredTupleCount());
    EXPECT_EQ(par.store()->stats().stored_tuples, par.StoredTupleCount());
    EXPECT_GT(par.ApproxMemoryBytes(), 0u);
  }
  EXPECT_GT(par.StoredTupleCount(), 0u);
}

// ---------------------------------------------------------------------------
// ContextCounter.

TEST(ContextCounter, CountsEveryTupleSatisfiedConstraint) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  ContextCounter counter(3);
  for (const Row& row : data.rows()) {
    counter.OnArrival(r, r.Append(row));
  }
  // ⊤ counts everything.
  EXPECT_EQ(counter.Count(Constraint::Top(3)), 5u);
  // d1=a1: t1, t2, t5.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b001)), 3u);
  // <a1,b1,c1>: t2, t5.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b111)), 2u);
  // <a2,b1,c1>: t4 alone.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 3, 0b111)), 1u);
  // Unseen constraint.
  Constraint unseen = Constraint::ForTuple(r, 0, 0b111);  // <a1,b2,c2> -> t1
  EXPECT_EQ(counter.Count(unseen), 1u);
}

TEST(ContextCounter, MaskPartitionedCountsSumToTheSequentialCounts) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  ContextCounter whole(3);
  // Shard the 8 masks of the d=3 lattice two ways (round-robin by parity).
  std::vector<DimMask> even = {0b000, 0b010, 0b100, 0b110};
  std::vector<DimMask> odd = {0b001, 0b011, 0b101, 0b111};
  ContextCounter shard_even(3);
  ContextCounter shard_odd(3);
  for (const Row& row : data.rows()) {
    TupleId t = r.Append(row);
    whole.OnArrival(r, t);
    shard_even.OnArrivalMasks(r, t, even);
    shard_odd.OnArrivalMasks(r, t, odd);
  }
  auto check_all = [&] {
    DimMask full = 0b111;
    for (TupleId t = 0; t < r.size(); ++t) {
      for (DimMask mask = 0; mask <= full; ++mask) {
        Constraint c = Constraint::ForTuple(r, t, mask);
        const ContextCounter& owner =
            (mask % 2 == 0) ? shard_even : shard_odd;
        const ContextCounter& other =
            (mask % 2 == 0) ? shard_odd : shard_even;
        EXPECT_EQ(owner.Count(c), whole.Count(c));
        EXPECT_EQ(other.Count(c), 0u);
      }
    }
  };
  check_all();
  // Removal stays partitioned the same way.
  r.MarkDeleted(2);
  whole.OnRemoval(r, 2);
  shard_even.OnRemovalMasks(r, 2, even);
  shard_odd.OnRemovalMasks(r, 2, odd);
  check_all();
}

TEST(ContextCounter, HonorsMaxBound) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  ContextCounter counter(1);
  for (const Row& row : data.rows()) {
    counter.OnArrival(r, r.Append(row));
  }
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b001)), 3u);
  // Two-attribute constraints are never counted under max_bound=1.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b011)), 0u);
  EXPECT_GT(counter.ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace sitfact
