// Unit tests for the µ-store implementations (in-memory and file-backed),
// including stats accounting and IO failure behaviour, plus the context
// counter feeding the prominence measure.

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/engine.h"
#include "core/shared_top_down.h"
#include "exec/sharded_discoverer.h"
#include "storage/context_counter.h"
#include "storage/file_mu_store.h"
#include "storage/memory_mu_store.h"
#include "storage/page_cache.h"
#include "storage/paged_mu_store.h"
#include "storage/segmented_mu_store.h"
#include "storage/storage_options.h"
#include "test_util.h"

namespace sitfact {
namespace {

namespace fs = std::filesystem;
using testing_util::PaperTableIV;

enum class StoreKind { kMemory, kFile, kPaged };

/// Unique per test AND process: ctest -j runs suites concurrently, and the
/// file-backed stores remove their path on destruction.
std::string UniqueTestPath(const char* prefix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = info != nullptr ? info->name() : "unknown";
  for (char& c : name) {
    if (c == '/') c = '_';  // parameterized test names carry a slash
  }
  return (fs::temp_directory_path() /
          (std::string(prefix) + "_" + std::to_string(::getpid()) + "_" +
           name))
      .string();
}

class MuStoreContractTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  MuStoreContractTest() : data_(PaperTableIV()), relation_(data_.schema()) {
    for (const Row& row : data_.rows()) relation_.Append(row);
    switch (GetParam()) {
      case StoreKind::kFile:
        dir_ = UniqueTestPath("sitfact_store_test");
        store_ = std::make_unique<FileMuStore>(dir_);
        break;
      case StoreKind::kPaged: {
        // Tiny pages and a cache far below the working set, so the contract
        // runs with records straddling evictions and reloads.
        PagedStoreOptions options;
        options.spill_path = UniqueTestPath("sitfact_store_spill");
        options.page_size = 32;
        options.cache_bytes = 64;
        store_ = std::make_unique<PagedMuStore>(std::move(options));
        break;
      }
      case StoreKind::kMemory:
        store_ = std::make_unique<MemoryMuStore>();
        break;
    }
  }

  Dataset data_;

  Constraint C(DimMask mask, TupleId t = 4) const {
    return Constraint::ForTuple(relation_, t, mask);
  }

  Relation relation_;
  std::string dir_;
  std::unique_ptr<MuStore> store_;
};

TEST_P(MuStoreContractTest, FindOnEmptyStoreReturnsNull) {
  EXPECT_EQ(store_->Find(C(0b001)), nullptr);
}

TEST_P(MuStoreContractTest, GetOrCreateIsStableAndIdempotent) {
  MuStore::Context* a = store_->GetOrCreate(C(0b001));
  MuStore::Context* b = store_->GetOrCreate(C(0b001));
  EXPECT_EQ(a, b);
  EXPECT_EQ(store_->Find(C(0b001)), a);
  // A different constraint gets a different context.
  EXPECT_NE(store_->GetOrCreate(C(0b011)), a);
}

TEST_P(MuStoreContractTest, InsertReadEraseRoundTrip) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b001));
  EXPECT_TRUE(ctx->Empty(0b11));
  ctx->Insert(0b11, 1);
  ctx->Insert(0b11, 4);
  ctx->Insert(0b01, 3);
  EXPECT_EQ(ctx->Size(0b11), 2u);
  EXPECT_EQ(ctx->Size(0b01), 1u);
  EXPECT_EQ(ctx->Size(0b10), 0u);
  EXPECT_TRUE(ctx->Contains(0b11, 1));
  EXPECT_TRUE(ctx->Contains(0b11, 4));
  EXPECT_FALSE(ctx->Contains(0b11, 3));

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  std::sort(bucket.begin(), bucket.end());
  EXPECT_EQ(bucket, (std::vector<TupleId>{1, 4}));

  EXPECT_TRUE(ctx->Erase(0b11, 1));
  EXPECT_FALSE(ctx->Erase(0b11, 1));  // already gone
  EXPECT_FALSE(ctx->Erase(0b10, 7));  // empty bucket
  EXPECT_EQ(ctx->Size(0b11), 1u);
  EXPECT_EQ(store_->stats().stored_tuples, 2u);
}

TEST_P(MuStoreContractTest, WriteReplacesAndEmptyWriteRemoves) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b011));
  ctx->Write(0b11, {1, 2, 3});
  EXPECT_EQ(ctx->Size(0b11), 3u);
  EXPECT_EQ(store_->stats().stored_tuples, 3u);
  ctx->Write(0b11, {4});
  EXPECT_EQ(ctx->Size(0b11), 1u);
  EXPECT_EQ(store_->stats().stored_tuples, 1u);
  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  EXPECT_EQ(bucket, (std::vector<TupleId>{4}));
  ctx->Write(0b11, {});
  EXPECT_TRUE(ctx->Empty(0b11));
  EXPECT_EQ(store_->stats().stored_tuples, 0u);
  ctx->Read(0b11, &bucket);
  EXPECT_TRUE(bucket.empty());
}

TEST_P(MuStoreContractTest, BucketsOfDifferentSubspacesAreIndependent) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b111));
  for (MeasureMask m = 1; m <= 3; ++m) ctx->Write(m, {m});
  for (MeasureMask m = 1; m <= 3; ++m) {
    std::vector<TupleId> bucket;
    ctx->Read(m, &bucket);
    ASSERT_EQ(bucket.size(), 1u);
    EXPECT_EQ(bucket[0], m);
  }
}

TEST_P(MuStoreContractTest, MemoryAccountingIsPositiveOncepopulated) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b001));
  ctx->Write(0b01, {1, 2, 3, 4});
  EXPECT_GT(store_->ApproxMemoryBytes(), 0u);
}

TEST_P(MuStoreContractTest, ForEachBucketVisitsExactlyTheNonEmptyBuckets) {
  // Populate three constraints x two subspaces, one of them emptied again.
  store_->GetOrCreate(C(0b001))->Write(0b01, {0, 1});
  store_->GetOrCreate(C(0b001))->Write(0b10, {2});
  store_->GetOrCreate(C(0b011))->Write(0b01, {3, 4, 0});
  store_->GetOrCreate(C(0b111))->Write(0b10, {1});
  store_->GetOrCreate(C(0b111))->Write(0b10, {});  // removed again
  store_->GetOrCreate(C(0b110));                   // entry with no buckets

  std::map<std::pair<DimMask, MeasureMask>, std::vector<TupleId>> seen;
  store_->ForEachBucket([&](const Constraint& c, MeasureMask m,
                            const std::vector<TupleId>& bucket) {
    auto key = std::make_pair(c.bound_mask(), m);
    EXPECT_EQ(seen.count(key), 0u) << "bucket visited twice";
    seen[key] = bucket;
  });

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ((seen[{0b001, 0b01}]), (std::vector<TupleId>{0, 1}));
  EXPECT_EQ((seen[{0b001, 0b10}]), (std::vector<TupleId>{2}));
  EXPECT_EQ((seen[{0b011, 0b01}]), (std::vector<TupleId>{3, 4, 0}));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, MuStoreContractTest,
    ::testing::Values(StoreKind::kMemory, StoreKind::kFile,
                      StoreKind::kPaged),
    [](const ::testing::TestParamInfo<StoreKind>& info) {
      switch (info.param) {
        case StoreKind::kMemory:
          return "MemoryMuStore";
        case StoreKind::kFile:
          return "FileMuStore";
        case StoreKind::kPaged:
          return "PagedMuStore";
      }
      return "Unknown";
    });

/// Shadow index maintained purely from BucketObserver callbacks; after any
/// mutation sequence it must agree with a ForEachBucket dump of the store.
class ShadowObserver : public MuStore::BucketObserver {
 public:
  void OnBucketChanged(const Constraint& c, MeasureMask m,
                       const std::vector<TupleId>& bucket) override {
    ++notifications_;
    if (bucket.empty()) {
      shadow_[c].erase(m);
      if (shadow_[c].empty()) shadow_.erase(c);
    } else {
      shadow_[c][m] = bucket;
    }
  }

  void ExpectMatches(MuStore& store) const {  // ForEachBucket is non-const
    size_t dumped = 0;
    store.ForEachBucket([&](const Constraint& c, MeasureMask m,
                            const std::vector<TupleId>& bucket) {
      ++dumped;
      auto it = shadow_.find(c);
      ASSERT_NE(it, shadow_.end()) << "constraint missing from shadow";
      auto bit = it->second.find(m);
      ASSERT_NE(bit, it->second.end()) << "bucket missing from shadow";
      EXPECT_EQ(bit->second, bucket);
    });
    size_t shadow_buckets = 0;
    for (const auto& [c, buckets] : shadow_) shadow_buckets += buckets.size();
    EXPECT_EQ(shadow_buckets, dumped) << "shadow holds stale buckets";
  }

  uint64_t notifications() const { return notifications_; }

 private:
  std::unordered_map<Constraint, std::map<MeasureMask, std::vector<TupleId>>,
                     ConstraintHash>
      shadow_;
  uint64_t notifications_ = 0;
};

// The memory store must emit one notification per bucket mutation, with the
// bucket's new contents, through a full discovery stream plus deletions —
// the feed a downstream per-subspace skyband index would be built on.
TEST(MemoryMuStoreObserver, ShadowTracksDiscoveryStreamAndRemovals) {
  Dataset data = PaperTableIV();
  Relation relation(data.schema());
  SharedTopDownDiscoverer disc(&relation, {});
  ShadowObserver observer;
  disc.mutable_store()->set_bucket_observer(&observer);

  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    disc.Discover(relation.Append(row), &facts);
  }
  EXPECT_GT(observer.notifications(), 0u);
  observer.ExpectMatches(*disc.mutable_store());

  // Deleting the global dominator rewrites many buckets; the observer sees
  // every rewrite including emptied buckets.
  relation.MarkDeleted(3);
  ASSERT_TRUE(disc.Remove(3).ok());
  observer.ExpectMatches(*disc.mutable_store());

  // Detaching stops the feed.
  const uint64_t before = observer.notifications();
  disc.mutable_store()->set_bucket_observer(nullptr);
  disc.Discover(relation.Append(Row{{"a3", "b3", "c3"}, {30, 30}}), &facts);
  EXPECT_EQ(observer.notifications(), before);
}

TEST(FileMuStore, CountsFileIoAndTracksDiskBytes) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  std::string dir = (fs::temp_directory_path() / "sitfact_fio_test").string();
  FileMuStore store(dir);
  MuStore::Context* ctx =
      store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001));

  ctx->Write(0b11, {1, 2});
  EXPECT_EQ(store.stats().file_writes, 1u);
  EXPECT_EQ(store.DiskBytes(), 2 * sizeof(TupleId));

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  EXPECT_EQ(store.stats().file_reads, 1u);

  // Empty buckets cost no IO at all.
  ctx->Read(0b10, &bucket);
  EXPECT_EQ(store.stats().file_reads, 1u);
  EXPECT_TRUE(bucket.empty());

  ctx->Write(0b11, {});
  EXPECT_EQ(store.DiskBytes(), 0u);
  EXPECT_TRUE(store.status().ok());
}

TEST(FileMuStore, SurvivesCorruptedBucketFileWithErrorStatus) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  std::string dir = (fs::temp_directory_path() / "sitfact_corrupt").string();
  FileMuStore store(dir);
  MuStore::Context* ctx =
      store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001));
  ctx->Write(0b11, {1, 2, 3});

  // Truncate the single bucket file behind the store's back.
  bool truncated = false;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      std::ofstream f(entry.path(), std::ios::trunc | std::ios::binary);
      f << 'x';
      truncated = true;
    }
  }
  ASSERT_TRUE(truncated);

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);  // degraded read
  EXPECT_FALSE(store.status().ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
}

TEST(FileMuStore, CleanupRemovesDirectory) {
  std::string dir = (fs::temp_directory_path() / "sitfact_cleanup").string();
  {
    Dataset data = PaperTableIV();
    Relation r(data.schema());
    for (const Row& row : data.rows()) r.Append(row);
    FileMuStore store(dir);
    store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001))->Write(0b1, {1});
    EXPECT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));  // destructor cleans up
}

// ---------------------------------------------------------------------------
// PageCache.

TEST(PageCacheTest, RoundTripsBytesThroughEvictionAndReload) {
  const std::string path = UniqueTestPath("sitfact_pagecache");
  PageCache cache(path, /*page_size=*/64, /*capacity_bytes=*/64);
  const PageCache::PageId p0 = cache.Allocate();
  uint8_t* bytes = cache.Pin(p0);
  for (uint32_t i = 0; i < 64; ++i) bytes[i] = static_cast<uint8_t>(i * 3);
  cache.Unpin(p0, /*dirty=*/true);

  // A second page pushes resident bytes past the one-page budget: p0 must
  // be written back (it is dirty) and evicted.
  const PageCache::PageId p1 = cache.Allocate();
  ASSERT_NE(p0, p1);
  EXPECT_GE(cache.stats().writebacks, 1u);
  EXPECT_GE(cache.stats().evictions, 1u);

  // Reloading p0 is a miss that must restore the exact bytes.
  const uint64_t misses_before = cache.stats().misses;
  bytes = cache.Pin(p0);
  EXPECT_GT(cache.stats().misses, misses_before);
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_EQ(bytes[i], static_cast<uint8_t>(i * 3)) << "byte " << i;
  }
  cache.Unpin(p0, /*dirty=*/false);
  EXPECT_TRUE(cache.status().ok());
}

TEST(PageCacheTest, PinnedPagesAreNeverEvicted) {
  const std::string path = UniqueTestPath("sitfact_pagecache");
  PageCache cache(path, /*page_size=*/64, /*capacity_bytes=*/64);
  const PageCache::PageId p0 = cache.Allocate();
  uint8_t* bytes = cache.Pin(p0);
  bytes[0] = 42;

  // Budget pressure from fresh pages may evict anything unpinned, but the
  // pinned frame (and the pointer lease) must survive.
  cache.Allocate();
  cache.Allocate();
  EXPECT_EQ(cache.pinned_pages(), 1u);
  EXPECT_EQ(bytes[0], 42);

  // Re-pinning the resident frame is a hit, not a reload.
  const uint64_t hits_before = cache.stats().hits;
  uint8_t* again = cache.Pin(p0);
  EXPECT_EQ(again, bytes);
  EXPECT_GT(cache.stats().hits, hits_before);
  cache.Unpin(p0, /*dirty=*/false);
  cache.Unpin(p0, /*dirty=*/false);
}

TEST(PageCacheTest, FreedPagesComeBackZeroed) {
  const std::string path = UniqueTestPath("sitfact_pagecache");
  PageCache cache(path, /*page_size=*/64, /*capacity_bytes=*/256);
  const PageCache::PageId p0 = cache.Allocate();
  uint8_t* bytes = cache.Pin(p0);
  std::fill(bytes, bytes + 64, 0xFF);
  cache.Unpin(p0, /*dirty=*/true);
  ASSERT_TRUE(cache.Flush().ok());  // stale bytes now on disk
  cache.Free(p0);

  // The free list hands the slot back; its old disk bytes must not
  // resurface.
  const PageCache::PageId p1 = cache.Allocate();
  EXPECT_EQ(p1, p0);
  bytes = cache.Pin(p1);
  for (uint32_t i = 0; i < 64; ++i) ASSERT_EQ(bytes[i], 0u) << "byte " << i;
  cache.Unpin(p1, /*dirty=*/false);
}

TEST(PageCacheTest, AllocateRunHandsOutContiguousLiveIds) {
  const std::string path = UniqueTestPath("sitfact_pagecache");
  PageCache cache(path, /*page_size=*/64, /*capacity_bytes=*/1024);
  const PageCache::PageId single = cache.Allocate();
  cache.Free(single);  // a free-list entry a run must NOT be built from
  const PageCache::PageId run = cache.AllocateRun(3);
  EXPECT_NE(run, single);
  for (uint32_t i = 0; i < 3; ++i) {
    uint8_t* bytes = cache.Pin(run + i);
    ASSERT_NE(bytes, nullptr);
    cache.Unpin(run + i, /*dirty=*/false);
  }
  EXPECT_EQ(cache.live_pages(), 3u);
}

TEST(PageCacheTest, CorruptSlotLatchesStatusAndServesZeroedPage) {
  const std::string path = UniqueTestPath("sitfact_pagecache");
  PageCache cache(path, /*page_size=*/64, /*capacity_bytes=*/64);
  const PageCache::PageId p0 = cache.Allocate();
  uint8_t* bytes = cache.Pin(p0);
  std::fill(bytes, bytes + 64, 0x5A);
  cache.Unpin(p0, /*dirty=*/true);
  cache.Allocate();  // evicts + writes back p0
  ASSERT_GE(cache.stats().writebacks, 1u);

  // Flip a payload byte of slot 0 behind the cache's back (slot header is
  // magic + CRC, so the payload starts at byte 8).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(8 + 5);
    const char garbage = 0x00;
    f.write(&garbage, 1);
  }

  bytes = cache.Pin(p0);  // CRC mismatch -> degraded zeroed page
  for (uint32_t i = 0; i < 64; ++i) ASSERT_EQ(bytes[i], 0u) << "byte " << i;
  cache.Unpin(p0, /*dirty=*/false);
  EXPECT_FALSE(cache.status().ok());
  EXPECT_EQ(cache.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// PagedMuStore.

TEST(PagedMuStore, ObserverShadowStaysLiveAcrossEvictionAndCompaction) {
  // The observer contract must be unaffected by paging: a SkybandIndex-style
  // shadow built from notifications has to agree with the store through a
  // full discovery stream even when every record repeatedly spills and
  // reloads, and across an explicit compaction sweep.
  Dataset data = PaperTableIV();
  Relation relation(data.schema());
  DiscoveryOptions options;
  options.storage.backend = StorageBackend::kPaged;
  options.storage.page_size = 32;
  options.storage.cache_bytes = 64;  // a fraction of the working set
  SharedTopDownDiscoverer disc(&relation, options);
  ASSERT_TRUE(disc.mutable_store()->SupportsDirtyTracking());

  ShadowObserver observer;
  disc.mutable_store()->set_bucket_observer(&observer);
  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    disc.Discover(relation.Append(row), &facts);
  }
  EXPECT_GT(observer.notifications(), 0u);
  observer.ExpectMatches(*disc.mutable_store());

  auto* paged = static_cast<PagedMuStore*>(disc.mutable_store());
  EXPECT_GT(paged->cache().stats().evictions, 0u)
      << "cache budget did not force spills; the test lost its point";
  paged->Compact();
  observer.ExpectMatches(*disc.mutable_store());

  relation.MarkDeleted(3);
  ASSERT_TRUE(disc.Remove(3).ok());
  observer.ExpectMatches(*disc.mutable_store());
  EXPECT_TRUE(paged->status().ok());
}

TEST(PagedMuStore, CompactionReclaimsRelocationGarbage) {
  PagedStoreOptions options;
  options.spill_path = UniqueTestPath("sitfact_paged_compact");
  options.page_size = 64;
  options.cache_bytes = 1024;
  PagedMuStore store(std::move(options));

  // Sub-page records bump-allocate into shared pages, so every relocation
  // (bucket growth) strands dead bytes that only the compaction sweep can
  // reclaim. A wide lattice of small, repeatedly grown buckets drives
  // allocated bytes past twice the live bytes.
  Schema schema({{"d0"}, {"d1"}, {"d2"}, {"d3"}, {"d4"}, {"d5"}, {"d6"}},
                {{"m0", Direction::kLargerIsBetter}});
  Relation r(std::move(schema));
  for (TupleId t = 0; t < 2; ++t) {
    std::vector<std::string> values;
    for (int d = 0; d < 7; ++d) {
      values.push_back("t" + std::to_string(t) + "d" + std::to_string(d));
    }
    r.Append(Row{std::move(values), {1}});
  }
  std::vector<MuStore::Context*> contexts;
  for (TupleId t = 0; t < 2; ++t) {
    for (DimMask mask = 1; mask <= 0b1111111; ++mask) {
      contexts.push_back(store.GetOrCreate(Constraint::ForTuple(r, t, mask)));
    }
  }
  std::vector<TupleId> bucket;
  for (TupleId t = 0; t < 8; ++t) {
    bucket.push_back(t);
    for (MuStore::Context* ctx : contexts) ctx->Write(0b1, bucket);
  }
  ASSERT_GE(store.compactions(), 1u);

  // Every bucket must read back intact after the rewrite.
  std::vector<TupleId> out;
  for (MuStore::Context* ctx : contexts) {
    ctx->Read(0b1, &out);
    ASSERT_EQ(out, bucket);
  }
  EXPECT_TRUE(store.status().ok());
}

TEST(PagedMuStore, SpillFileIsRemovedOnDestruction) {
  const std::string path = UniqueTestPath("sitfact_paged_cleanup");
  {
    PagedStoreOptions options;
    options.spill_path = path;
    PagedMuStore store(std::move(options));
    Dataset data = PaperTableIV();
    Relation r(data.schema());
    for (const Row& row : data.rows()) r.Append(row);
    store.GetOrCreate(Constraint::ForTuple(r, 4, 0b1))->Write(0b1, {1, 2});
    ASSERT_TRUE(store.Flush().ok());
    EXPECT_TRUE(fs::exists(path));
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(PagedMuStore, FactsMatchMemoryBackendAcrossAllAlgorithms) {
  // The acceptance differential: every algorithm must produce
  // tuple-for-tuple identical facts on the paged backend, under a cache
  // small enough that records actually spill mid-stream.
  testing_util::RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.num_dims = 4;
  cfg.num_measures = 3;
  cfg.seed = 20260808;
  Dataset data = testing_util::RandomDataset(cfg);

  const std::vector<std::string> algorithms = {
      "BruteForce", "BaselineSeq", "BaselineIdx", "C-CSC",     "BottomUp",
      "TopDown",    "SBottomUp",   "STopDown",    "FSBottomUp", "FSTopDown"};
  for (const std::string& name : algorithms) {
    SCOPED_TRACE(name);
    std::vector<std::vector<std::vector<SkylineFact>>> streams;
    for (const StorageBackend backend :
         {StorageBackend::kMemory, StorageBackend::kPaged}) {
      DiscoveryOptions options;
      options.storage.backend = backend;
      options.storage.page_size = 64;
      options.storage.cache_bytes = 4096;
      Relation rel(data.schema());
      std::string dir;
      if (name.rfind("FS", 0) == 0) {
        dir = UniqueTestPath(("sitfact_paged_eq_" + name).c_str());
      }
      auto disc_or =
          DiscoveryEngine::CreateDiscoverer(name, &rel, options, dir);
      ASSERT_TRUE(disc_or.ok()) << disc_or.status().ToString();
      auto disc = std::move(disc_or).value();
      streams.push_back(testing_util::RunStream(&rel, disc.get(), data));
    }
    ASSERT_EQ(streams[0].size(), streams[1].size());
    for (size_t i = 0; i < streams[0].size(); ++i) {
      ASSERT_EQ(streams[0][i], streams[1][i])
          << name << " diverged between memory and paged at arrival " << i;
    }
  }
}

// The fig10 accounting fix, pinned: ApproxMemoryBytes must include the
// per-bucket container overhead (hash nodes, vector headers, allocator
// headers), not just payload bytes — leaving it out undercounted getrusage
// by ~30% at fig10 scale, making cross-backend RSS rows incomparable.
TEST(MemoryMuStoreAccounting, IncludesPerBucketContainerOverhead) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  MemoryMuStore store;
  for (TupleId t = 0; t < 5; ++t) {
    for (DimMask mask = 1; mask <= 0b111; ++mask) {
      MuStore::Context* ctx = store.GetOrCreate(Constraint::ForTuple(r, t, mask));
      for (MeasureMask m = 1; m <= 0b11; ++m) ctx->Write(m, {0, 1, 2, 3});
    }
  }
  const size_t payload = store.stats().stored_tuples * sizeof(TupleId);
  size_t buckets = 0;
  store.ForEachBucket([&](const Constraint&, MeasureMask,
                          const std::vector<TupleId>&) { ++buckets; });
  ASSERT_GT(buckets, 0u);
  const size_t floor = payload + buckets * kHeapAllocOverhead;
  EXPECT_GT(store.ApproxMemoryBytes(), floor)
      << "ApproxMemoryBytes dropped the per-bucket container overhead";
  // And it stays an approximation, not a wild overcount: within an order of
  // magnitude of payload for this small-bucket workload.
  EXPECT_LT(store.ApproxMemoryBytes(), payload * 40);
}

// ---------------------------------------------------------------------------
// SegmentedMuStore.

class SegmentedMuStoreTest : public ::testing::Test {
 protected:
  SegmentedMuStoreTest()
      : data_(PaperTableIV()),
        relation_(data_.schema()),
        // d = 3 -> 8 masks, spread over 3 segments.
        store_(3, {0, 1, 2, 0, 1, 2, 0, 1}) {
    for (const Row& row : data_.rows()) relation_.Append(row);
  }

  Constraint C(DimMask mask, TupleId t = 4) const {
    return Constraint::ForTuple(relation_, t, mask);
  }

  Dataset data_;
  Relation relation_;
  SegmentedMuStore store_;
};

TEST_F(SegmentedMuStoreTest, RoutesConstraintsByMaskDeterministically) {
  MuStore::Context* a = store_.GetOrCreate(C(0b001));
  EXPECT_EQ(store_.Find(C(0b001)), a);
  EXPECT_EQ(store_.GetOrCreate(C(0b001)), a);
  // The handle lives in the owning segment and nowhere else.
  EXPECT_EQ(store_.SegmentOf(0b001), 1);
  EXPECT_EQ(store_.segment(1)->Find(C(0b001)), a);
  EXPECT_EQ(store_.segment(0)->Find(C(0b001)), nullptr);
  EXPECT_EQ(store_.segment(2)->Find(C(0b001)), nullptr);
  // Same mask, different bound values: same segment, distinct context.
  MuStore::Context* b = store_.GetOrCreate(C(0b001, /*t=*/2));
  EXPECT_NE(a, b);
  EXPECT_EQ(store_.segment(1)->Find(C(0b001, /*t=*/2)), b);
}

TEST_F(SegmentedMuStoreTest, StatsAggregateAcrossSegments) {
  // Regression for the segmented-store satellite: MuStore::stats() must be
  // the fold of the per-segment counters, not the (never-written) base
  // counters, or StoredTupleCount()/the bench harness read zeros.
  store_.GetOrCreate(C(0b001))->Write(0b01, {0, 1, 2});  // segment 1
  store_.GetOrCreate(C(0b010))->Write(0b01, {3});        // segment 2
  store_.GetOrCreate(C(0b011))->Write(0b11, {0, 4});     // segment 0
  EXPECT_EQ(store_.stats().stored_tuples, 6u);
  EXPECT_EQ(store_.stats().bucket_writes, 3u);

  std::vector<TupleId> bucket;
  store_.Find(C(0b010))->Read(0b01, &bucket);
  EXPECT_EQ(store_.stats().bucket_reads, 1u);

  store_.Find(C(0b001))->Write(0b01, {});  // emptied again
  EXPECT_EQ(store_.stats().stored_tuples, 3u);
  EXPECT_GT(store_.ApproxMemoryBytes(), 0u);
}

TEST_F(SegmentedMuStoreTest, ForEachBucketVisitsEverySegmentOnce) {
  store_.GetOrCreate(C(0b001))->Write(0b01, {0, 1});
  store_.GetOrCreate(C(0b010))->Write(0b10, {2});
  store_.GetOrCreate(C(0b100))->Write(0b01, {3});
  std::map<std::pair<DimMask, MeasureMask>, std::vector<TupleId>> seen;
  store_.ForEachBucket([&](const Constraint& c, MeasureMask m,
                           const std::vector<TupleId>& bucket) {
    auto key = std::make_pair(c.bound_mask(), m);
    EXPECT_EQ(seen.count(key), 0u) << "bucket visited twice";
    seen[key] = bucket;
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ((seen[{0b001, 0b01}]), (std::vector<TupleId>{0, 1}));
  EXPECT_EQ((seen[{0b010, 0b10}]), (std::vector<TupleId>{2}));
  EXPECT_EQ((seen[{0b100, 0b01}]), (std::vector<TupleId>{3}));
}

TEST_F(SegmentedMuStoreTest, ObserverForwardsToEverySegment) {
  // Regression for the observer satellite: mutations run against per-shard
  // segments, so a registration kept only on the composite would never
  // fire. set_bucket_observer must fan out to every segment, and clearing
  // it must silence all of them again.
  ShadowObserver observer;
  store_.set_bucket_observer(&observer);
  EXPECT_TRUE(store_.NotifiesObservers());

  store_.GetOrCreate(C(0b001))->Write(0b01, {0, 1});   // segment 1
  store_.GetOrCreate(C(0b010))->Write(0b10, {2});      // segment 2
  store_.GetOrCreate(C(0b011))->Write(0b11, {3, 4});   // segment 0
  store_.segment(0)->Find(C(0b011))->Write(0b11, {3});  // shard's direct path
  EXPECT_EQ(observer.notifications(), 4u);
  observer.ExpectMatches(store_);

  store_.Find(C(0b001))->Write(0b01, {});  // emptied -> erased from shadow
  observer.ExpectMatches(store_);

  store_.set_bucket_observer(nullptr);
  const uint64_t before = observer.notifications();
  store_.GetOrCreate(C(0b100))->Write(0b01, {5});
  EXPECT_EQ(observer.notifications(), before);
}

TEST(SegmentedMuStore, DiscovererAggregationMatchesSequentialStore) {
  // Discoverer::StoredTupleCount()/ApproxMemoryBytes() must aggregate over
  // segmented µ stores exactly as they do over a monolithic one.
  Dataset data = PaperTableIV();

  Relation seq_rel(data.schema());
  BottomUpDiscoverer seq(&seq_rel, {});
  Relation par_rel(data.schema());
  ShardedDiscoverer par(&par_rel, {}, /*num_shards=*/3, /*num_threads=*/2);

  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = seq_rel.Append(row);
    facts.clear();
    seq.Discover(t, &facts);
    t = par_rel.Append(row);
    facts.clear();
    par.Discover(t, &facts);

    ASSERT_EQ(par.StoredTupleCount(), seq.StoredTupleCount());
    EXPECT_EQ(par.store()->stats().stored_tuples, par.StoredTupleCount());
    EXPECT_GT(par.ApproxMemoryBytes(), 0u);
  }
  EXPECT_GT(par.StoredTupleCount(), 0u);
}

// ---------------------------------------------------------------------------
// ContextCounter.

TEST(ContextCounter, CountsEveryTupleSatisfiedConstraint) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  ContextCounter counter(3);
  for (const Row& row : data.rows()) {
    counter.OnArrival(r, r.Append(row));
  }
  // ⊤ counts everything.
  EXPECT_EQ(counter.Count(Constraint::Top(3)), 5u);
  // d1=a1: t1, t2, t5.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b001)), 3u);
  // <a1,b1,c1>: t2, t5.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b111)), 2u);
  // <a2,b1,c1>: t4 alone.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 3, 0b111)), 1u);
  // Unseen constraint.
  Constraint unseen = Constraint::ForTuple(r, 0, 0b111);  // <a1,b2,c2> -> t1
  EXPECT_EQ(counter.Count(unseen), 1u);
}

TEST(ContextCounter, MaskPartitionedCountsSumToTheSequentialCounts) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  ContextCounter whole(3);
  // Shard the 8 masks of the d=3 lattice two ways (round-robin by parity).
  std::vector<DimMask> even = {0b000, 0b010, 0b100, 0b110};
  std::vector<DimMask> odd = {0b001, 0b011, 0b101, 0b111};
  ContextCounter shard_even(3);
  ContextCounter shard_odd(3);
  for (const Row& row : data.rows()) {
    TupleId t = r.Append(row);
    whole.OnArrival(r, t);
    shard_even.OnArrivalMasks(r, t, even);
    shard_odd.OnArrivalMasks(r, t, odd);
  }
  auto check_all = [&] {
    DimMask full = 0b111;
    for (TupleId t = 0; t < r.size(); ++t) {
      for (DimMask mask = 0; mask <= full; ++mask) {
        Constraint c = Constraint::ForTuple(r, t, mask);
        const ContextCounter& owner =
            (mask % 2 == 0) ? shard_even : shard_odd;
        const ContextCounter& other =
            (mask % 2 == 0) ? shard_odd : shard_even;
        EXPECT_EQ(owner.Count(c), whole.Count(c));
        EXPECT_EQ(other.Count(c), 0u);
      }
    }
  };
  check_all();
  // Removal stays partitioned the same way.
  r.MarkDeleted(2);
  whole.OnRemoval(r, 2);
  shard_even.OnRemovalMasks(r, 2, even);
  shard_odd.OnRemovalMasks(r, 2, odd);
  check_all();
}

TEST(ContextCounter, HonorsMaxBound) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  ContextCounter counter(1);
  for (const Row& row : data.rows()) {
    counter.OnArrival(r, r.Append(row));
  }
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b001)), 3u);
  // Two-attribute constraints are never counted under max_bound=1.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b011)), 0u);
  EXPECT_GT(counter.ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace sitfact
