// Unit tests for the µ-store implementations (in-memory and file-backed),
// including stats accounting and IO failure behaviour, plus the context
// counter feeding the prominence measure.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "storage/context_counter.h"
#include "storage/file_mu_store.h"
#include "storage/memory_mu_store.h"
#include "test_util.h"

namespace sitfact {
namespace {

namespace fs = std::filesystem;
using testing_util::PaperTableIV;

class MuStoreContractTest : public ::testing::TestWithParam<bool> {
 protected:
  MuStoreContractTest() : data_(PaperTableIV()), relation_(data_.schema()) {
    for (const Row& row : data_.rows()) relation_.Append(row);
    if (IsFileStore()) {
      // Unique per test AND process: ctest -j runs these concurrently, and
      // FileMuStore's destructor removes its whole directory tree.
      const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info();
      std::string name = info != nullptr ? info->name() : "unknown";
      for (char& c : name) {
        if (c == '/') c = '_';  // parameterized test names carry a slash
      }
      dir_ = (fs::temp_directory_path() /
              ("sitfact_store_test_" + std::to_string(::getpid()) + "_" +
               name))
                 .string();
      store_ = std::make_unique<FileMuStore>(dir_);
    } else {
      store_ = std::make_unique<MemoryMuStore>();
    }
  }

  bool IsFileStore() const { return GetParam(); }

  Dataset data_;

  Constraint C(DimMask mask, TupleId t = 4) const {
    return Constraint::ForTuple(relation_, t, mask);
  }

  Relation relation_;
  std::string dir_;
  std::unique_ptr<MuStore> store_;
};

TEST_P(MuStoreContractTest, FindOnEmptyStoreReturnsNull) {
  EXPECT_EQ(store_->Find(C(0b001)), nullptr);
}

TEST_P(MuStoreContractTest, GetOrCreateIsStableAndIdempotent) {
  MuStore::Context* a = store_->GetOrCreate(C(0b001));
  MuStore::Context* b = store_->GetOrCreate(C(0b001));
  EXPECT_EQ(a, b);
  EXPECT_EQ(store_->Find(C(0b001)), a);
  // A different constraint gets a different context.
  EXPECT_NE(store_->GetOrCreate(C(0b011)), a);
}

TEST_P(MuStoreContractTest, InsertReadEraseRoundTrip) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b001));
  EXPECT_TRUE(ctx->Empty(0b11));
  ctx->Insert(0b11, 1);
  ctx->Insert(0b11, 4);
  ctx->Insert(0b01, 3);
  EXPECT_EQ(ctx->Size(0b11), 2u);
  EXPECT_EQ(ctx->Size(0b01), 1u);
  EXPECT_EQ(ctx->Size(0b10), 0u);
  EXPECT_TRUE(ctx->Contains(0b11, 1));
  EXPECT_TRUE(ctx->Contains(0b11, 4));
  EXPECT_FALSE(ctx->Contains(0b11, 3));

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  std::sort(bucket.begin(), bucket.end());
  EXPECT_EQ(bucket, (std::vector<TupleId>{1, 4}));

  EXPECT_TRUE(ctx->Erase(0b11, 1));
  EXPECT_FALSE(ctx->Erase(0b11, 1));  // already gone
  EXPECT_FALSE(ctx->Erase(0b10, 7));  // empty bucket
  EXPECT_EQ(ctx->Size(0b11), 1u);
  EXPECT_EQ(store_->stats().stored_tuples, 2u);
}

TEST_P(MuStoreContractTest, WriteReplacesAndEmptyWriteRemoves) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b011));
  ctx->Write(0b11, {1, 2, 3});
  EXPECT_EQ(ctx->Size(0b11), 3u);
  EXPECT_EQ(store_->stats().stored_tuples, 3u);
  ctx->Write(0b11, {4});
  EXPECT_EQ(ctx->Size(0b11), 1u);
  EXPECT_EQ(store_->stats().stored_tuples, 1u);
  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  EXPECT_EQ(bucket, (std::vector<TupleId>{4}));
  ctx->Write(0b11, {});
  EXPECT_TRUE(ctx->Empty(0b11));
  EXPECT_EQ(store_->stats().stored_tuples, 0u);
  ctx->Read(0b11, &bucket);
  EXPECT_TRUE(bucket.empty());
}

TEST_P(MuStoreContractTest, BucketsOfDifferentSubspacesAreIndependent) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b111));
  for (MeasureMask m = 1; m <= 3; ++m) ctx->Write(m, {m});
  for (MeasureMask m = 1; m <= 3; ++m) {
    std::vector<TupleId> bucket;
    ctx->Read(m, &bucket);
    ASSERT_EQ(bucket.size(), 1u);
    EXPECT_EQ(bucket[0], m);
  }
}

TEST_P(MuStoreContractTest, MemoryAccountingIsPositiveOncepopulated) {
  MuStore::Context* ctx = store_->GetOrCreate(C(0b001));
  ctx->Write(0b01, {1, 2, 3, 4});
  EXPECT_GT(store_->ApproxMemoryBytes(), 0u);
}

TEST_P(MuStoreContractTest, ForEachBucketVisitsExactlyTheNonEmptyBuckets) {
  // Populate three constraints x two subspaces, one of them emptied again.
  store_->GetOrCreate(C(0b001))->Write(0b01, {0, 1});
  store_->GetOrCreate(C(0b001))->Write(0b10, {2});
  store_->GetOrCreate(C(0b011))->Write(0b01, {3, 4, 0});
  store_->GetOrCreate(C(0b111))->Write(0b10, {1});
  store_->GetOrCreate(C(0b111))->Write(0b10, {});  // removed again
  store_->GetOrCreate(C(0b110));                   // entry with no buckets

  std::map<std::pair<DimMask, MeasureMask>, std::vector<TupleId>> seen;
  store_->ForEachBucket([&](const Constraint& c, MeasureMask m,
                            const std::vector<TupleId>& bucket) {
    auto key = std::make_pair(c.bound_mask(), m);
    EXPECT_EQ(seen.count(key), 0u) << "bucket visited twice";
    seen[key] = bucket;
  });

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ((seen[{0b001, 0b01}]), (std::vector<TupleId>{0, 1}));
  EXPECT_EQ((seen[{0b001, 0b10}]), (std::vector<TupleId>{2}));
  EXPECT_EQ((seen[{0b011, 0b01}]), (std::vector<TupleId>{3, 4, 0}));
}

INSTANTIATE_TEST_SUITE_P(MemoryAndFile, MuStoreContractTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "FileMuStore" : "MemoryMuStore";
                         });

TEST(FileMuStore, CountsFileIoAndTracksDiskBytes) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  std::string dir = (fs::temp_directory_path() / "sitfact_fio_test").string();
  FileMuStore store(dir);
  MuStore::Context* ctx =
      store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001));

  ctx->Write(0b11, {1, 2});
  EXPECT_EQ(store.stats().file_writes, 1u);
  EXPECT_EQ(store.DiskBytes(), 2 * sizeof(TupleId));

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);
  EXPECT_EQ(store.stats().file_reads, 1u);

  // Empty buckets cost no IO at all.
  ctx->Read(0b10, &bucket);
  EXPECT_EQ(store.stats().file_reads, 1u);
  EXPECT_TRUE(bucket.empty());

  ctx->Write(0b11, {});
  EXPECT_EQ(store.DiskBytes(), 0u);
  EXPECT_TRUE(store.status().ok());
}

TEST(FileMuStore, SurvivesCorruptedBucketFileWithErrorStatus) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  std::string dir = (fs::temp_directory_path() / "sitfact_corrupt").string();
  FileMuStore store(dir);
  MuStore::Context* ctx =
      store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001));
  ctx->Write(0b11, {1, 2, 3});

  // Truncate the single bucket file behind the store's back.
  bool truncated = false;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      std::ofstream f(entry.path(), std::ios::trunc | std::ios::binary);
      f << 'x';
      truncated = true;
    }
  }
  ASSERT_TRUE(truncated);

  std::vector<TupleId> bucket;
  ctx->Read(0b11, &bucket);  // degraded read
  EXPECT_FALSE(store.status().ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
}

TEST(FileMuStore, CleanupRemovesDirectory) {
  std::string dir = (fs::temp_directory_path() / "sitfact_cleanup").string();
  {
    Dataset data = PaperTableIV();
    Relation r(data.schema());
    for (const Row& row : data.rows()) r.Append(row);
    FileMuStore store(dir);
    store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001))->Write(0b1, {1});
    EXPECT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));  // destructor cleans up
}

// ---------------------------------------------------------------------------
// ContextCounter.

TEST(ContextCounter, CountsEveryTupleSatisfiedConstraint) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  ContextCounter counter(3);
  for (const Row& row : data.rows()) {
    counter.OnArrival(r, r.Append(row));
  }
  // ⊤ counts everything.
  EXPECT_EQ(counter.Count(Constraint::Top(3)), 5u);
  // d1=a1: t1, t2, t5.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b001)), 3u);
  // <a1,b1,c1>: t2, t5.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b111)), 2u);
  // <a2,b1,c1>: t4 alone.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 3, 0b111)), 1u);
  // Unseen constraint.
  Constraint unseen = Constraint::ForTuple(r, 0, 0b111);  // <a1,b2,c2> -> t1
  EXPECT_EQ(counter.Count(unseen), 1u);
}

TEST(ContextCounter, HonorsMaxBound) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  ContextCounter counter(1);
  for (const Row& row : data.rows()) {
    counter.OnArrival(r, r.Append(row));
  }
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b001)), 3u);
  // Two-attribute constraints are never counted under max_bound=1.
  EXPECT_EQ(counter.Count(Constraint::ForTuple(r, 4, 0b011)), 0u);
  EXPECT_GT(counter.ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace sitfact
