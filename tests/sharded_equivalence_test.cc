// Differential equivalence of the sharded parallel engine: replaying the
// same stream through ShardedEngine (K in {1, 2, 4, 7}) and the sequential
// DiscoveryEngine must yield tuple-for-tuple identical canonical fact sets,
// prominence scores (context size, skyline size, ratio, order), prominent
// selections, and DiscoveryStats.arrivals — for every restorable algorithm
// (SupportsSnapshotRestore(), i.e. everything but C-CSC, whose bespoke
// skycube state opts out of both snapshots and this comparison).

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/nba_generator.h"
#include "datagen/weather_generator.h"
#include "exec/sharded_engine.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

constexpr int kShardCounts[] = {1, 2, 4, 7};

std::vector<std::string> RestorableCandidates() {
  return {"BruteForce", "BaselineSeq", "BaselineIdx", "C-CSC",
          "BottomUp",   "TopDown",     "SBottomUp",   "STopDown",
          "FSBottomUp", "FSTopDown"};
}

struct StreamCase {
  std::string label;
  Dataset data;
  DiscoveryOptions options;
};

std::vector<StreamCase> MakeStreams() {
  std::vector<StreamCase> streams;

  {
    NbaGenerator::Config cfg;
    cfg.tuples_per_season = 10;
    Dataset full = NbaGenerator(cfg).Generate(70);
    auto proj = full.Project(NbaGenerator::DimensionsForD(4),
                             NbaGenerator::MeasuresForM(4));
    SITFACT_CHECK(proj.ok());
    streams.push_back({"nba", std::move(proj).value(),
                       {.max_measure_dims = 3}});
  }
  {
    WeatherGenerator::Config cfg;
    cfg.num_locations = 16;
    cfg.records_per_day = 4;
    Dataset full = WeatherGenerator(cfg).Generate(70);
    auto proj = full.Project(WeatherGenerator::DimensionsForD(4),
                             WeatherGenerator::MeasuresForM(3));
    SITFACT_CHECK(proj.ok());
    streams.push_back({"weather", std::move(proj).value(), {}});
  }
  {
    RandomDataConfig cfg;
    cfg.num_tuples = 90;
    cfg.num_dims = 4;
    cfg.num_measures = 3;
    cfg.duplicate_prob = 0.2;
    cfg.mixed_directions = true;
    cfg.seed = 20260730;
    streams.push_back({"synthetic", RandomDataset(cfg), {}});
  }
  {
    // The d̂/m̂ truncations change the lattice the shards partition.
    RandomDataConfig cfg;
    cfg.num_tuples = 80;
    cfg.num_dims = 5;
    cfg.num_measures = 3;
    cfg.dim_cardinality = 2;
    cfg.seed = 424242;
    streams.push_back({"synthetic_truncated", RandomDataset(cfg),
                       {.max_bound_dims = 3, .max_measure_dims = 2}});
  }
  return streams;
}

struct SequentialRun {
  std::vector<ArrivalReport> reports;
  uint64_t arrivals = 0;
  bool ranked = false;
};

SequentialRun RunSequential(const StreamCase& stream,
                            const std::string& algorithm, bool* restorable) {
  std::string dir;
  if (algorithm.rfind("FS", 0) == 0) {
    dir = (std::filesystem::temp_directory_path() /
           ("sitfact_sharded_eq_" + algorithm + "_" + stream.label))
              .string();
  }
  SequentialRun run;
  Relation relation(stream.data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer(algorithm, &relation,
                                                   stream.options, dir);
  SITFACT_CHECK_MSG(disc_or.ok(), disc_or.status().ToString().c_str());
  *restorable = disc_or.value()->SupportsSnapshotRestore();
  if (!*restorable) return run;

  DiscoveryEngine::Config config;
  config.options = stream.options;
  config.tau = 0.0;
  config.rank_facts = disc_or.value()->store() != nullptr;
  run.ranked = config.rank_facts;
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);
  run.reports.reserve(stream.data.size());
  for (const Row& row : stream.data.rows()) {
    run.reports.push_back(engine.Append(row));
  }
  run.arrivals = engine.discoverer().stats().arrivals;
  return run;
}

std::vector<ArrivalReport> RunSharded(const StreamCase& stream, int shards,
                                      uint64_t* arrivals) {
  Relation relation(stream.data.schema());
  ShardedEngine::Config config;
  config.num_shards = shards;
  config.num_threads = 3;  // != K on purpose: threads claim shards dynamically
  config.options = stream.options;
  config.tau = 0.0;
  ShardedEngine engine(&relation, config);
  // Batched so the differential also covers the pipelined AppendBatch path.
  std::vector<ArrivalReport> reports =
      engine.AppendBatch(std::span<const Row>(stream.data.rows()));
  *arrivals = engine.stats().arrivals;
  return reports;
}

void ExpectSameRankedFact(const RankedFact& expected, const RankedFact& actual,
                          size_t index) {
  SCOPED_TRACE("ranked fact #" + std::to_string(index));
  EXPECT_EQ(expected.fact, actual.fact);
  EXPECT_EQ(expected.context_size, actual.context_size);
  EXPECT_EQ(expected.skyline_size, actual.skyline_size);
  // Identical integer numerator/denominator => bit-identical quotient.
  EXPECT_EQ(expected.prominence, actual.prominence);
}

void ExpectSameReport(const ArrivalReport& expected,
                      const ArrivalReport& actual, bool compare_ranked) {
  EXPECT_EQ(expected.tuple, actual.tuple);
  ASSERT_EQ(expected.facts, actual.facts);
  if (!compare_ranked) return;
  ASSERT_EQ(expected.ranked.size(), actual.ranked.size());
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    ExpectSameRankedFact(expected.ranked[i], actual.ranked[i], i);
  }
  ASSERT_EQ(expected.prominent.size(), actual.prominent.size());
  for (size_t i = 0; i < expected.prominent.size(); ++i) {
    ExpectSameRankedFact(expected.prominent[i], actual.prominent[i], i);
  }
}

TEST(ShardedEquivalence, MatchesEveryRestorableAlgorithmAtEveryShardCount) {
  for (const StreamCase& stream : MakeStreams()) {
    SCOPED_TRACE("stream " + stream.label);

    // Sequential oracles once per stream; each K is compared to all of them.
    std::vector<std::pair<std::string, SequentialRun>> sequential;
    for (const std::string& algorithm : RestorableCandidates()) {
      bool restorable = false;
      SequentialRun seq = RunSequential(stream, algorithm, &restorable);
      if (!restorable) continue;  // C-CSC
      sequential.emplace_back(algorithm, std::move(seq));
    }
    ASSERT_EQ(sequential.size(), 9u) << "restorable algorithm went missing";

    for (int shards : kShardCounts) {
      SCOPED_TRACE("K=" + std::to_string(shards));
      uint64_t sharded_arrivals = 0;
      std::vector<ArrivalReport> sharded =
          RunSharded(stream, shards, &sharded_arrivals);
      ASSERT_EQ(sharded.size(), stream.data.size());
      EXPECT_EQ(sharded_arrivals, stream.data.size());

      for (const auto& [algorithm, seq] : sequential) {
        SCOPED_TRACE("algorithm " + algorithm);
        EXPECT_EQ(seq.arrivals, sharded_arrivals);
        ASSERT_EQ(seq.reports.size(), sharded.size());
        for (size_t i = 0; i < seq.reports.size(); ++i) {
          SCOPED_TRACE("arrival " + std::to_string(i));
          ExpectSameReport(seq.reports[i], sharded[i], seq.ranked);
          if (HasFatalFailure()) return;
        }
      }
    }
  }
}

// Removals and updates must also track the sequential engines — including a
// maximal-skyline-constraint (Invariant 2) store, whose prominence
// denominators are computed by a completely different union path.
TEST(ShardedEquivalence, RemoveAndUpdateMatchSequentialEngines) {
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  cfg.duplicate_prob = 0.25;
  cfg.seed = 77;
  Dataset data = RandomDataset(cfg);

  for (const std::string& algorithm : {std::string("BottomUp"),
                                       std::string("STopDown")}) {
    SCOPED_TRACE(algorithm);
    Relation seq_rel(data.schema());
    auto disc_or =
        DiscoveryEngine::CreateDiscoverer(algorithm, &seq_rel, {}, "");
    ASSERT_TRUE(disc_or.ok());
    DiscoveryEngine::Config seq_config;
    seq_config.tau = 0.0;
    DiscoveryEngine seq(&seq_rel, std::move(disc_or).value(), seq_config);

    Relation par_rel(data.schema());
    ShardedEngine::Config par_config;
    par_config.num_shards = 4;
    par_config.num_threads = 3;
    par_config.tau = 0.0;
    ShardedEngine par(&par_rel, par_config);

    std::vector<TupleId> live;
    Rng rng(99);
    for (size_t i = 0; i < data.size(); ++i) {
      const Row& row = data.rows()[i];
      SCOPED_TRACE("op " + std::to_string(i));
      uint64_t dice = rng.NextBounded(10);
      if (dice < 6 || live.size() < 3) {
        ArrivalReport expected = seq.Append(row);
        ArrivalReport actual = par.Append(row);
        live.push_back(expected.tuple);
        ExpectSameReport(expected, actual, /*compare_ranked=*/true);
      } else if (dice < 8) {
        size_t pick = rng.NextBounded(live.size());
        TupleId victim = live[pick];
        live.erase(live.begin() + static_cast<long>(pick));
        ASSERT_TRUE(seq.Remove(victim).ok());
        ASSERT_TRUE(par.Remove(victim).ok());
      } else {
        size_t pick = rng.NextBounded(live.size());
        TupleId victim = live[pick];
        live.erase(live.begin() + static_cast<long>(pick));
        auto expected = seq.Update(victim, row);
        auto actual = par.Update(victim, row);
        ASSERT_TRUE(expected.ok());
        ASSERT_TRUE(actual.ok());
        live.push_back(expected.value().tuple);
        ExpectSameReport(expected.value(), actual.value(),
                         /*compare_ranked=*/true);
      }
      if (HasFatalFailure()) return;
    }
    // Error paths behave alike too.
    EXPECT_FALSE(par.Remove(par_rel.size()).ok());
    ASSERT_FALSE(live.empty());
    TupleId victim = live.back();
    ASSERT_TRUE(par.Remove(victim).ok());
    EXPECT_FALSE(par.Remove(victim).ok());  // already deleted
    EXPECT_FALSE(par.Update(victim, data.rows()[0]).ok());
  }
}

}  // namespace
}  // namespace sitfact
