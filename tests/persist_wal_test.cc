// Tests for the write-ahead log: record round trips, torn-tail tolerance at
// every byte offset, corruption detection, and header validation.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "persist/wal.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace persist {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() /
          ("sitfact_wal_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

class TempFile {
 public:
  explicit TempFile(const std::string& name) : path_(TempPath(name)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small mixed-op script with awkward field contents: empty strings,
/// quotes, separators, multi-byte UTF-8, negative/limit doubles.
std::vector<WalOp> ScriptOps(uint64_t start_seq) {
  std::vector<WalOp> ops;
  uint64_t seq = start_seq;
  {
    WalOp op;
    op.kind = WalOpKind::kAppend;
    op.seq = seq++;
    op.row = Row{{"Strickland", "1995-96", "Blazers"}, {27, 18.5, -8}};
    ops.push_back(op);
  }
  {
    WalOp op;
    op.kind = WalOpKind::kAppend;
    op.seq = seq++;
    op.row = Row{{"", "with,comma", "with\"quote\"\nand newline"},
                 {0.0, -0.0, 1e308}};
    ops.push_back(op);
  }
  {
    WalOp op;
    op.kind = WalOpKind::kRemove;
    op.seq = seq++;
    op.target = 17;
    ops.push_back(op);
  }
  {
    WalOp op;
    op.kind = WalOpKind::kUpdate;
    op.seq = seq++;
    op.target = 3;
    op.row = Row{{"Müller — ünïcode", "1991-92", "Hornets"}, {4, 12, 5}};
    ops.push_back(op);
  }
  {
    WalOp op;
    op.kind = WalOpKind::kAppend;
    op.seq = seq++;
    op.row = Row{{"t5", "x", "y"}, {1, 2, 3}};
    ops.push_back(op);
  }
  return ops;
}

void ExpectOpsEqual(const WalOp& got, const WalOp& want) {
  EXPECT_EQ(static_cast<int>(got.kind), static_cast<int>(want.kind));
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.target, want.target);
  EXPECT_EQ(got.row.dimensions, want.row.dimensions);
  ASSERT_EQ(got.row.measures.size(), want.row.measures.size());
  for (size_t j = 0; j < want.row.measures.size(); ++j) {
    EXPECT_EQ(got.row.measures[j], want.row.measures[j]) << "measure " << j;
  }
}

TEST(Wal, RoundTripMixedOps) {
  TempFile file("roundtrip.sfwal");
  std::vector<WalOp> ops = ScriptOps(/*start_seq=*/42);
  {
    auto writer_or = WalWriter::Create(file.path(), 42);
    ASSERT_TRUE(writer_or.ok()) << writer_or.status().ToString();
    for (const WalOp& op : ops) {
      ASSERT_TRUE(writer_or.value()->Append(op).ok());
    }
    ASSERT_TRUE(writer_or.value()->Close().ok());
  }
  auto contents_or = ReadWal(file.path());
  ASSERT_TRUE(contents_or.ok()) << contents_or.status().ToString();
  const WalContents& contents = contents_or.value();
  EXPECT_EQ(contents.start_seq, 42u);
  EXPECT_TRUE(contents.clean_tail);
  ASSERT_EQ(contents.ops.size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    ExpectOpsEqual(contents.ops[i], ops[i]);
  }
}

TEST(Wal, EmptyLogIsCleanAndEmpty) {
  TempFile file("empty.sfwal");
  {
    auto writer_or = WalWriter::Create(file.path(), 7);
    ASSERT_TRUE(writer_or.ok());
    ASSERT_TRUE(writer_or.value()->Close().ok());
  }
  auto contents_or = ReadWal(file.path());
  ASSERT_TRUE(contents_or.ok());
  EXPECT_EQ(contents_or.value().start_seq, 7u);
  EXPECT_TRUE(contents_or.value().ops.empty());
  EXPECT_TRUE(contents_or.value().clean_tail);
}

// The torn-tail contract, exhaustively: truncating the log at EVERY byte
// offset must yield a clean prefix of the written ops — never garbage ops,
// never an error once the header is intact — and the prefix length must be
// monotone in the truncation point.
TEST(Wal, TruncationAtEveryByteOffsetYieldsCleanPrefix) {
  TempFile file("torn.sfwal");
  std::vector<WalOp> ops = ScriptOps(/*start_seq=*/0);
  {
    auto writer_or = WalWriter::Create(file.path(), 0);
    ASSERT_TRUE(writer_or.ok());
    for (const WalOp& op : ops) {
      ASSERT_TRUE(writer_or.value()->Append(op).ok());
    }
    ASSERT_TRUE(writer_or.value()->Close().ok());
  }
  const std::string full = ReadFileBytes(file.path());
  const size_t header_bytes = 24;  // magic + version + start_seq + crc
  ASSERT_GT(full.size(), header_bytes);

  TempFile cut("torn_cut.sfwal");
  size_t prev_ops = 0;
  for (size_t len = full.size(); len >= header_bytes; --len) {
    WriteFileBytes(cut.path(), full.substr(0, len));
    auto contents_or = ReadWal(cut.path());
    ASSERT_TRUE(contents_or.ok())
        << "len " << len << ": " << contents_or.status().ToString();
    const WalContents& contents = contents_or.value();
    ASSERT_LE(contents.ops.size(), ops.size());
    for (size_t i = 0; i < contents.ops.size(); ++i) {
      ExpectOpsEqual(contents.ops[i], ops[i]);
    }
    if (len == full.size()) {
      EXPECT_TRUE(contents.clean_tail);
    } else {
      // A cut exactly on a record boundary reads as a clean shorter log;
      // anywhere else the torn tail must be flagged.
      EXPECT_LE(contents.ops.size(), prev_ops);
      if (!contents.clean_tail) {
        EXPECT_LT(contents.ops.size(), ops.size());
      }
    }
    prev_ops = contents.ops.size();
  }

  // Below the header the file is unusable and must say so.
  for (size_t len = 0; len < header_bytes; ++len) {
    WriteFileBytes(cut.path(), full.substr(0, len));
    EXPECT_FALSE(ReadWal(cut.path()).ok()) << "len " << len;
  }
}

// A flipped byte mid-log stops replay at the damaged record: later records
// would build on ops the reader cannot prove intact.
TEST(Wal, CorruptRecordStopsReplayThere) {
  TempFile file("flip.sfwal");
  std::vector<WalOp> ops = ScriptOps(/*start_seq=*/0);
  {
    auto writer_or = WalWriter::Create(file.path(), 0);
    ASSERT_TRUE(writer_or.ok());
    for (const WalOp& op : ops) {
      ASSERT_TRUE(writer_or.value()->Append(op).ok());
    }
    ASSERT_TRUE(writer_or.value()->Close().ok());
  }
  std::string bytes = ReadFileBytes(file.path());
  // Flip one byte inside the second record's payload (past header + first
  // record). Find record boundaries by re-reading lengths.
  const size_t header_bytes = 24;
  uint32_t rec1_len = 0;
  for (int i = 0; i < 4; ++i) {
    rec1_len |= static_cast<uint32_t>(
                    static_cast<unsigned char>(bytes[header_bytes + i]))
                << (8 * i);
  }
  const size_t flip_at = header_bytes + 8 + rec1_len + 8 + 2;
  ASSERT_LT(flip_at, bytes.size());
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x40);
  WriteFileBytes(file.path(), bytes);

  auto contents_or = ReadWal(file.path());
  ASSERT_TRUE(contents_or.ok());
  const WalContents& contents = contents_or.value();
  EXPECT_FALSE(contents.clean_tail);
  ASSERT_EQ(contents.ops.size(), 1u);
  ExpectOpsEqual(contents.ops[0], ops[0]);
}

TEST(Wal, HeaderCorruptionIsAnError) {
  TempFile file("badheader.sfwal");
  {
    auto writer_or = WalWriter::Create(file.path(), 3);
    ASSERT_TRUE(writer_or.ok());
    ASSERT_TRUE(writer_or.value()->Close().ok());
  }
  std::string bytes = ReadFileBytes(file.path());
  bytes[2] = 'X';  // damage the magic
  WriteFileBytes(file.path(), bytes);
  auto bad_magic = ReadWal(file.path());
  EXPECT_FALSE(bad_magic.ok());

  // Restore magic, damage the start_seq: the header CRC must catch it.
  bytes[2] = 'W';
  bytes[14] = static_cast<char>(bytes[14] ^ 0x01);
  WriteFileBytes(file.path(), bytes);
  auto bad_crc = ReadWal(file.path());
  EXPECT_FALSE(bad_crc.ok());
}

TEST(Wal, MissingFileIsAnError) {
  EXPECT_FALSE(ReadWal(TempPath("never_created.sfwal")).ok());
}

// The writer enforces the reader's caps: a record the reader would refuse
// must never be acknowledged as durable (at recovery it would read as
// corruption and take every later op in the segment down with it).
TEST(Wal, OversizedRowIsRejectedBeforeLogging) {
  TempFile file("oversize.sfwal");
  auto writer_or = WalWriter::Create(file.path(), 0);
  ASSERT_TRUE(writer_or.ok());
  WalWriter& writer = *writer_or.value();

  WalOp huge;
  huge.kind = WalOpKind::kAppend;
  huge.row = Row{{std::string((1 << 16) + 1, 'x')}, {1.0}};
  EXPECT_FALSE(writer.Append(huge).ok());

  WalOp wide;
  wide.kind = WalOpKind::kAppend;
  wide.row.dimensions.assign(17, "d");  // > kMaxDimensions
  wide.row.measures.assign(1, 0.0);
  EXPECT_FALSE(writer.Append(wide).ok());

  WalOp fine;
  fine.kind = WalOpKind::kAppend;
  fine.seq = 0;
  fine.row = Row{{"ok"}, {1.0}};
  ASSERT_TRUE(writer.Append(fine).ok());
  ASSERT_TRUE(writer.Close().ok());

  auto contents_or = ReadWal(file.path());
  ASSERT_TRUE(contents_or.ok());
  EXPECT_TRUE(contents_or.value().clean_tail);
  ASSERT_EQ(contents_or.value().ops.size(), 1u);
  EXPECT_EQ(contents_or.value().ops[0].row.dimensions,
            std::vector<std::string>{"ok"});
}

}  // namespace
}  // namespace persist
}  // namespace sitfact
