// Tests for core/narrator.h: sentence structure, entity handling, number
// formatting, and stability against the engine's real output.

#include "core/narrator.h"

#include <string>

#include "core/engine.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::PaperTableI;

class NarratorTest : public ::testing::Test {
 protected:
  NarratorTest() : data_(PaperTableI()), relation_(data_.schema()) {
    for (const Row& row : data_.rows()) relation_.Append(row);
  }

  RankedFact MakeFact(TupleId t, DimMask bound, MeasureMask m,
                      uint64_t ctx, uint64_t sky) {
    RankedFact f;
    f.fact.constraint = Constraint::ForTuple(relation_, t, bound);
    f.fact.subspace = m;
    f.context_size = ctx;
    f.skyline_size = sky;
    f.prominence = static_cast<double>(ctx) / static_cast<double>(sky);
    return f;
  }

  Dataset data_;
  Relation relation_;
};

TEST_F(NarratorTest, EntitySubjectLeadsTheSentence) {
  FactNarrator narrator(&relation_, /*entity_dim=*/0);  // player
  // t7 (id 6) in (month=Feb, {points, assists}): the Example 1 context.
  RankedFact f = MakeFact(6, /*bound=*/0b00010, /*m=*/0b011, 5, 2);
  std::string s = narrator.Narrate(6, f);
  EXPECT_EQ(s.rfind("Wesley ", 0), 0u) << s;
  EXPECT_NE(s.find("points=12"), std::string::npos) << s;
  EXPECT_NE(s.find("assists=13"), std::string::npos) << s;
  EXPECT_NE(s.find("month=Feb"), std::string::npos) << s;
  EXPECT_NE(s.find("among the 5 tuples"), std::string::npos) << s;
  EXPECT_NE(s.find("one of only 2"), std::string::npos) << s;
  EXPECT_NE(s.find("prominence 2.5"), std::string::npos) << s;
}

TEST_F(NarratorTest, NoEntityFallsBackToGenericSubject) {
  FactNarrator narrator(&relation_, /*entity_dim=*/-1);
  RankedFact f = MakeFact(6, 0, 0b001, 7, 3);
  std::string s = narrator.Narrate(6, f);
  EXPECT_EQ(s.rfind("A new tuple ", 0), 0u) << s;
  EXPECT_NE(s.find("(no constraint)"), std::string::npos) << s;
}

TEST_F(NarratorTest, IntegersRenderWithoutDecimals) {
  FactNarrator narrator(&relation_, 0);
  RankedFact f = MakeFact(6, 0, 0b001, 10, 4);
  std::string s = narrator.Narrate(6, f);
  EXPECT_NE(s.find("points=12"), std::string::npos) << s;
  EXPECT_EQ(s.find("points=12.0"), std::string::npos) << s;
}

TEST_F(NarratorTest, FractionalMeasuresKeepTwoDecimals) {
  Schema schema({{"city"}}, {{"rainfall", Direction::kLargerIsBetter}});
  Relation r(std::move(schema));
  r.Append(Row{{"X"}, {3.25}});
  FactNarrator narrator(&r, 0);
  RankedFact f;
  f.fact.constraint = Constraint::Top(1);
  f.fact.subspace = 0b1;
  f.context_size = 3;
  f.skyline_size = 2;
  f.prominence = 1.5;
  EXPECT_NE(narrator.Narrate(0, f).find("rainfall=3.25"),
            std::string::npos);
}

TEST_F(NarratorTest, SummarizeCarriesTheNumbers) {
  FactNarrator narrator(&relation_, 0);
  RankedFact f = MakeFact(6, 0b00010, 0b011, 5, 2);
  std::string s = narrator.Summarize(f);
  EXPECT_NE(s.find("prominence=2.50"), std::string::npos) << s;
  EXPECT_NE(s.find("|ctx|=5"), std::string::npos) << s;
  EXPECT_NE(s.find("|sky|=2"), std::string::npos) << s;
}

TEST_F(NarratorTest, NarratesEngineOutputEndToEnd) {
  // The engine's ranked facts must be narratable without surprises. Uses
  // Example 1's prominence numbers: (month=Feb, {points, assists,
  // rebounds}) has context 5 and skyline {t2, t7}, prominence 5/2.
  Relation rel(data_.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("STopDown", &rel, {});
  ASSERT_TRUE(disc_or.ok());
  DiscoveryEngine::Config config;
  config.tau = 0.0;
  DiscoveryEngine engine(&rel, std::move(disc_or).value(), config);
  ArrivalReport report;
  for (const Row& row : data_.rows()) report = engine.Append(row);

  FactNarrator narrator(&rel, 0);
  bool found_feb_fact = false;
  for (const RankedFact& rf : report.ranked) {
    std::string s = narrator.Narrate(report.tuple, rf);
    EXPECT_EQ(s.rfind("Wesley ", 0), 0u);
    if (rf.fact.constraint.ToPredicateString(rel) == "month=Feb" &&
        rf.fact.subspace == 0b111) {
      found_feb_fact = true;
      EXPECT_EQ(rf.context_size, 5u);
      EXPECT_EQ(rf.skyline_size, 2u);
      EXPECT_DOUBLE_EQ(rf.prominence, 2.5);
    }
  }
  EXPECT_TRUE(found_feb_fact);
}

}  // namespace
}  // namespace sitfact
