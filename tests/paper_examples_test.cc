// Exact-value tests for every worked example in the paper: the Table IV
// running example with the Fig. 3-6 µ-store traces, the Table I mini-world
// with Example 1's contexts and Sec. VII's prominence numbers.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/prominence.h"
#include "core/shared_top_down.h"
#include "core/top_down.h"
#include "skyline/skyline_compute.h"
#include "storage/context_counter.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::PaperTableI;
using testing_util::PaperTableIV;
using testing_util::RunStream;

constexpr TupleId kT1 = 0, kT2 = 1, kT3 = 2, kT4 = 3, kT5 = 4;

/// Reads the bucket of constraint `mask` (lifted with tuple t5's values)
/// under subspace `m`, sorted.
std::vector<TupleId> Bucket(const Relation& r, MuStore* store, TupleId t,
                            DimMask mask, MeasureMask m) {
  Constraint c = Constraint::ForTuple(r, t, mask);
  MuStore::Context* ctx = store->Find(c);
  std::vector<TupleId> out;
  if (ctx != nullptr) ctx->Read(m, &out);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Example 3: skylines of Table IV.
TEST(PaperExamples, Example3Skylines) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);

  MeasureMask full = 0b11;
  Constraint top = Constraint::Top(3);
  EXPECT_EQ(ComputeContextualSkyline(r, top, full, r.size()),
            (std::vector<TupleId>{kT4}));

  Constraint c = Constraint::ForTuple(r, kT5, 0b111);  // <a1, b1, c1>
  EXPECT_EQ(ComputeContextualSkyline(r, c, full, r.size()),
            (std::vector<TupleId>{kT2, kT5}));
  EXPECT_EQ(ComputeContextualSkyline(r, c, 0b01, r.size()),
            (std::vector<TupleId>{kT2}));  // M = {m1}
}

// Example 5: the lattice C^t5 and the relatives of C = <a1, *, c1>.
TEST(PaperExamples, Example5LatticeRelatives) {
  // Masks over (d1, d2, d3) = bits (0, 1, 2): C = <a1, *, c1> = 0b101.
  DimMask c = 0b101;
  std::vector<DimMask> ancestors;
  ForEachProperSubset(c, [&](DimMask s) { ancestors.push_back(s); });
  std::sort(ancestors.begin(), ancestors.end());
  EXPECT_EQ(ancestors, (std::vector<DimMask>{0b000, 0b001, 0b100}));
  // Children within C^t5: add the one unbound attribute d2.
  EXPECT_EQ(c | 0b010, 0b111u);
}

// Example 7 / Fig. 3: BottomUp µ-contents in subspace {m1, m2} before and
// after t5.
TEST(PaperExamples, Fig3BottomUpTrace) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  BottomUpDiscoverer disc(&r, {});
  MeasureMask full = 0b11;

  // Stream t1..t4, then check the "before" state of Fig. 3a.
  std::vector<SkylineFact> facts;
  for (int i = 0; i < 4; ++i) {
    TupleId t = r.Append(data.rows()[i]);
    disc.Discover(t, &facts);
  }
  MuStore* store = disc.mutable_store();
  EXPECT_EQ(Bucket(r, store, kT4, 0b000, full), (std::vector<TupleId>{kT4}));
  // <a1,*,*> is t5's constraint; lift it via t2 which shares a1.
  EXPECT_EQ(Bucket(r, store, kT2, 0b001, full),
            (std::vector<TupleId>{kT1, kT2}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b010, full), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b100, full), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b011, full), (std::vector<TupleId>{kT2}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b101, full), (std::vector<TupleId>{kT2}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b110, full), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b111, full), (std::vector<TupleId>{kT2}));

  // Arrival of t5: Fig. 3b.
  TupleId t5 = r.Append(data.rows()[4]);
  facts.clear();
  disc.Discover(t5, &facts);
  EXPECT_EQ(Bucket(r, store, t5, 0b000, full), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, t5, 0b001, full),
            (std::vector<TupleId>{kT2, kT5}));
  EXPECT_EQ(Bucket(r, store, t5, 0b010, full), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, t5, 0b100, full), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, t5, 0b011, full),
            (std::vector<TupleId>{kT2, kT5}));
  EXPECT_EQ(Bucket(r, store, t5, 0b101, full),
            (std::vector<TupleId>{kT2, kT5}));
  EXPECT_EQ(Bucket(r, store, t5, 0b110, full), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, t5, 0b111, full),
            (std::vector<TupleId>{kT2, kT5}));

  // Example 7's fact set: t5 enters the skylines of <a1,*,*>, <a1,b1,*>,
  // <a1,*,c1>, <a1,b1,c1> in {m1,m2}.
  std::vector<DimMask> sky_masks;
  for (const auto& f : facts) {
    if (f.subspace == full) sky_masks.push_back(f.constraint.bound_mask());
  }
  std::sort(sky_masks.begin(), sky_masks.end());
  EXPECT_EQ(sky_masks, (std::vector<DimMask>{0b001, 0b011, 0b101, 0b111}));
}

// Example 8/9 / Fig. 4: TopDown stores tuples only at maximal skyline
// constraints.
TEST(PaperExamples, Fig4TopDownTrace) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  TopDownDiscoverer disc(&r, {});
  MeasureMask full = 0b11;
  std::vector<SkylineFact> facts;
  for (int i = 0; i < 4; ++i) {
    disc.Discover(r.Append(data.rows()[i]), &facts);
  }
  MuStore* store = disc.mutable_store();

  // Fig. 4a: ⊤ holds t4; <a1,*,*> holds t1 and t2; <*,b2,*> holds t1;
  // <*,*,c2> holds t3; everything else in C^t5 is empty.
  EXPECT_EQ(Bucket(r, store, kT4, 0b000, full), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b001, full),
            (std::vector<TupleId>{kT1, kT2}));
  EXPECT_EQ(Bucket(r, store, kT1, 0b010, full), (std::vector<TupleId>{kT1}));
  EXPECT_EQ(Bucket(r, store, kT3, 0b100, full), (std::vector<TupleId>{kT3}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b011, full), (std::vector<TupleId>{}));
  EXPECT_EQ(Bucket(r, store, kT2, 0b111, full), (std::vector<TupleId>{}));

  facts.clear();
  disc.Discover(r.Append(data.rows()[4]), &facts);

  // Fig. 4b: t5 joins <a1,*,*> (its unique maximal skyline constraint);
  // t1 is dethroned there and re-registered at <a1,*,c2>; <a1,b2,*> stays
  // empty because t1 already sits at its ancestor <*,b2,*>.
  EXPECT_EQ(Bucket(r, store, kT5, 0b001, full),
            (std::vector<TupleId>{kT2, kT5}));
  EXPECT_EQ(Bucket(r, store, kT1, 0b101, full), (std::vector<TupleId>{kT1}));
  EXPECT_EQ(Bucket(r, store, kT1, 0b011, full), (std::vector<TupleId>{}));
  EXPECT_EQ(Bucket(r, store, kT1, 0b010, full), (std::vector<TupleId>{kT1}));
  EXPECT_EQ(Bucket(r, store, kT5, 0b111, full), (std::vector<TupleId>{}));

  // Example 8: SC^t5 = 4 constraints, MSC^t5 = {<a1,*,*>}.
  std::vector<DimMask> msc =
      ComputeMaximalSkylineConstraintMasks(r, kT5, full, 3, r.size());
  EXPECT_EQ(msc, (std::vector<DimMask>{0b001}));
}

// Example 10 / Figs. 5-6: STopDown's subspace handling.
TEST(PaperExamples, Fig5And6SharedTopDownTrace) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  SharedTopDownDiscoverer disc(&r, {});
  std::vector<SkylineFact> facts;
  for (int i = 0; i < 5; ++i) {
    facts.clear();
    disc.Discover(r.Append(data.rows()[i]), &facts);
  }
  MuStore* store = disc.mutable_store();

  // Fig. 5b — subspace {m1}: t5 is dominated everywhere; nothing changed.
  EXPECT_EQ(Bucket(r, store, kT4, 0b000, 0b01), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, kT5, 0b001, 0b01), (std::vector<TupleId>{kT2}));
  EXPECT_EQ(Bucket(r, store, kT5, 0b111, 0b01), (std::vector<TupleId>{}));

  // Fig. 6b — subspace {m2}: t5 joins t1 at <a1,*,*>.
  EXPECT_EQ(Bucket(r, store, kT4, 0b000, 0b10), (std::vector<TupleId>{kT4}));
  EXPECT_EQ(Bucket(r, store, kT5, 0b001, 0b10),
            (std::vector<TupleId>{kT1, kT5}));
  EXPECT_EQ(Bucket(r, store, kT5, 0b011, 0b10), (std::vector<TupleId>{}));

  // t5's facts in {m2}: the four constraints below <a1,*,*>.
  std::vector<DimMask> sky_m2;
  for (const auto& f : facts) {
    if (f.subspace == 0b10) sky_m2.push_back(f.constraint.bound_mask());
  }
  std::sort(sky_m2.begin(), sky_m2.end());
  EXPECT_EQ(sky_m2, (std::vector<DimMask>{0b001, 0b011, 0b101, 0b111}));
  // ... and none in {m1}.
  for (const auto& f : facts) EXPECT_NE(f.subspace, 0b01u);
}

// ---------------------------------------------------------------------------
// Example 1 / Sec. VII on Table I.
TEST(PaperExamples, TableIExample1AndProminence) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  BruteForceDiscoverer oracle(&r, {});
  auto per_arrival = RunStream(&r, &oracle, data);
  const auto& t7_facts = per_arrival.back();
  TupleId t7 = 6;

  // The paper says "t7 belongs to 196 contextual skylines"; exhaustive
  // enumeration gives 195 (the paper's count misses that t2 — Seikaly, Feb,
  // 15 rebounds — dominates t7 in subspace {rebounds}, pruning ⊤ and
  // month=Feb there: 29 of the 224 (C, M) pairs are pruned, not 28). All
  // nine algorithms and the oracle agree on 195; see EXPERIMENTS.md.
  EXPECT_EQ(t7_facts.size(), 195u);

  MeasureMask all = 0b111;  // {points, assists, rebounds}
  // Example 1: with no constraint and M = M, t7 is dominated (by t3, t6).
  Constraint top = Constraint::Top(5);
  EXPECT_FALSE(InContextualSkyline(r, t7, top, all, r.size()));
  // Under month=Feb it is in the skyline along with t2.
  int month_dim = r.schema().DimensionIndex("month");
  Constraint feb = Constraint::ForTuple(r, t7, 1u << month_dim);
  auto feb_sky = ComputeContextualSkyline(r, feb, all, r.size());
  std::sort(feb_sky.begin(), feb_sky.end());
  EXPECT_EQ(feb_sky, (std::vector<TupleId>{1, t7}));  // t2 and t7
  // Under team=Celtics ∧ opp_team=Nets with M={assists, rebounds}, skyline
  // is {t3, t7}.
  int team_dim = r.schema().DimensionIndex("team");
  int opp_dim = r.schema().DimensionIndex("opp_team");
  Constraint celtics_nets =
      Constraint::ForTuple(r, t7, (1u << team_dim) | (1u << opp_dim));
  MeasureMask ar = 0b110;  // assists, rebounds
  auto cn_sky = ComputeContextualSkyline(r, celtics_nets, ar, r.size());
  std::sort(cn_sky.begin(), cn_sky.end());
  EXPECT_EQ(cn_sky, (std::vector<TupleId>{2, t7}));  // t3 and t7

  // Sec. VII prominence numbers: (month=Feb, M) has prominence 5/2;
  // (team=Celtics ∧ opp=Nets, {assists,rebounds}) has 3/2.
  EXPECT_EQ(SelectContext(r, feb, r.size()).size(), 5u);
  EXPECT_EQ(SelectContext(r, celtics_nets, r.size()).size(), 3u);
}

TEST(PaperExamples, TableIProminenceRankingViaStore) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  BottomUpDiscoverer disc(&r, {});
  ContextCounter counter(/*max_bound=*/5);
  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    TupleId t = r.Append(row);
    counter.OnArrival(r, t);
    facts.clear();
    disc.Discover(t, &facts);
  }

  ProminenceEvaluator eval(&r, &counter, disc.mutable_store(),
                           StoragePolicy::kAllSkylineConstraints);
  auto ranked = eval.RankAll(facts);
  ASSERT_EQ(ranked.size(), 195u);  // 196 in the paper; see erratum note above.

  // The paper states the highest prominence among t7's facts is 3, but by
  // the paper's own definition (month=Feb, {assists}) scores 5: its context
  // holds five tuples (t1, t2, t4, t5, t7) and t7's 13 assists top them all,
  // so |σ_C|/|λ_M(σ_C)| = 5/1. Another Sec. VII illustration slip; the two
  // example facts the paper names do score exactly 3 (checked below).
  EXPECT_DOUBLE_EQ(ranked.front().prominence, 5.0);
  int ast = r.schema().MeasureIndex("assists");
  SkylineFact feb_assists{
      Constraint::ForTuple(r, 6, 1u << r.schema().DimensionIndex("month")),
      static_cast<MeasureMask>(1u << ast)};
  RankedFact top = eval.Evaluate(feb_assists);
  EXPECT_EQ(top.context_size, 5u);
  EXPECT_EQ(top.skyline_size, 1u);

  // The paper's example prominent facts attaining value 3:
  // (player=Wesley, {rebounds}) and (month=Feb ∧ team=Celtics, {points}).
  int player_dim = r.schema().DimensionIndex("player");
  int month_dim = r.schema().DimensionIndex("month");
  int team_dim = r.schema().DimensionIndex("team");
  int reb = r.schema().MeasureIndex("rebounds");
  int pts = r.schema().MeasureIndex("points");
  TupleId t7 = 6;
  SkylineFact wesley_reb{Constraint::ForTuple(r, t7, 1u << player_dim),
                         static_cast<MeasureMask>(1u << reb)};
  SkylineFact feb_celtics_pts{
      Constraint::ForTuple(r, t7, (1u << month_dim) | (1u << team_dim)),
      static_cast<MeasureMask>(1u << pts)};
  EXPECT_DOUBLE_EQ(eval.Evaluate(wesley_reb).prominence, 3.0);
  EXPECT_DOUBLE_EQ(eval.Evaluate(feb_celtics_pts).prominence, 3.0);

  // Prominent facts = the ties at the maximum (5), for any τ <= 5.
  auto prominent = SelectProminent(ranked, 3.0);
  ASSERT_FALSE(prominent.empty());
  for (const auto& f : prominent) EXPECT_DOUBLE_EQ(f.prominence, 5.0);
  // With τ above the maximum nothing is prominent.
  EXPECT_TRUE(SelectProminent(ranked, 5.01).empty());
}

// Example 2: σ_C(R) for C = <a1, *, c1> in Table IV is {t2, t5}.
TEST(PaperExamples, Example2ContextSelection) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  Constraint c = Constraint::ForTuple(r, kT5, 0b101);
  EXPECT_EQ(SelectContext(r, c, r.size()), (std::vector<TupleId>{kT2, kT5}));
}

// Example 4 / Def. 5: <a,b,c> is subsumed by <a,*,c>.
TEST(PaperExamples, Example4Subsumption) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  Constraint c1 = Constraint::ForTuple(r, kT5, 0b111);
  Constraint c2 = Constraint::ForTuple(r, kT5, 0b101);
  EXPECT_TRUE(c1.SubsumedBy(c2));
  EXPECT_FALSE(c2.SubsumedBy(c1));
  EXPECT_TRUE(c1.SubsumedByOrEqual(c1));
  EXPECT_FALSE(c1.SubsumedBy(c1));
}

// Example 6 / Def. 8: ⊥(C^{t4,t5}) = <*, b1, c1>.
TEST(PaperExamples, Example6LatticeIntersection) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  EXPECT_EQ(r.AgreeMask(kT4, kT5), 0b110u);   // d2, d3 agree
  EXPECT_EQ(r.AgreeMask(kT2, kT5), 0b111u);   // identical dimensions
  EXPECT_EQ(r.AgreeMask(kT1, kT4), 0b000u);   // ⊥ = ⊤: nothing shared
}

}  // namespace
}  // namespace sitfact
