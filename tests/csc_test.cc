// Tests for the Compressed SkyCube substrate: the minimum-subspace storage
// invariant, the containment property its queries rely on, and equivalence
// of its query results with from-scratch skylines.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "csc/compressed_skycube.h"
#include "lattice/subspace_universe.h"
#include "skyline/dominance.h"
#include "skyline/skyline_compute.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

/// Reference: the minimum subspaces of tuple `t` among `members`, computed
/// from scratch — subspaces where t is a skyline tuple while no proper
/// subspace has it in the skyline.
std::vector<MeasureMask> NaiveMinimumSubspaces(
    const Relation& r, TupleId t, const std::vector<TupleId>& members,
    const SubspaceUniverse& universe) {
  auto in_skyline = [&](MeasureMask m) {
    for (TupleId other : members) {
      if (other != t && Dominates(r, other, t, m)) return false;
    }
    return true;
  };
  std::vector<MeasureMask> out;
  for (MeasureMask m : universe.masks()) {
    if (!in_skyline(m)) continue;
    bool minimal = true;
    ForEachProperSubset(m, [&](MeasureMask sub) {
      if (sub != 0 && minimal && universe.IndexOf(sub) >= 0 &&
          in_skyline(sub)) {
        minimal = false;
      }
    });
    if (minimal) out.push_back(m);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Every storage-invariant and query test runs twice: once against the
/// legacy scan-based cube and once with a SubspaceIndex attached (the
/// C-CSC production configuration since the rebuild). The invariants and
/// outputs must be identical in both modes — only the comparison counts
/// may differ.
class CscTest : public ::testing::TestWithParam<bool> {
 protected:
  void Stream(const Dataset& data, int max_measure_dims = -1) {
    relation_ = std::make_unique<Relation>(data.schema());
    int mm = max_measure_dims < 0 ? data.schema().num_measures()
                                  : max_measure_dims;
    universe_ =
        std::make_unique<SubspaceUniverse>(data.schema().num_measures(), mm);
    cube_ = std::make_unique<CompressedSkycube>(universe_.get());
    if (GetParam()) {
      index_ = std::make_unique<SubspaceIndex>(relation_.get());
      cube_->AttachIndex(index_.get());
    }
    uint64_t comparisons = 0;
    for (const Row& row : data.rows()) {
      TupleId t = relation_->Append(row);
      members_.push_back(t);
      if (index_ != nullptr) {
        index_->Insert(t);
        memo_.BeginArrival(*relation_, t);
      }
      std::vector<MeasureMask> sky;
      cube_->Insert(*relation_, t, &sky, &comparisons,
                    index_ != nullptr ? &memo_ : nullptr);
      last_sky_ = std::move(sky);
    }
  }

  std::unique_ptr<Relation> relation_;
  std::unique_ptr<SubspaceUniverse> universe_;
  std::unique_ptr<CompressedSkycube> cube_;
  std::unique_ptr<SubspaceIndex> index_;
  PartitionMemo memo_;
  std::vector<TupleId> members_;
  std::vector<MeasureMask> last_sky_;
};

TEST_P(CscTest, StoresTuplesExactlyAtMinimumSubspaces) {
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.num_measures = 3;
  cfg.measure_levels = 5;
  Stream(RandomDataset(cfg));

  for (TupleId t : members_) {
    std::vector<MeasureMask> expected =
        NaiveMinimumSubspaces(*relation_, t, members_, *universe_);
    std::vector<MeasureMask> actual;
    for (MeasureMask m : universe_->masks()) {
      const auto* bucket = cube_->bucket(m);
      if (bucket != nullptr &&
          std::find(bucket->begin(), bucket->end(), t) != bucket->end()) {
        actual.push_back(m);
      }
    }
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(expected, actual) << "tuple " << t;
  }
}

TEST_P(CscTest, InsertReportsExactSkylineMemberships) {
  RandomDataConfig cfg;
  cfg.num_tuples = 50;
  cfg.num_measures = 3;
  Stream(RandomDataset(cfg));
  // The last arrival's reported subspaces must match from-scratch skylines.
  TupleId last = members_.back();
  std::vector<MeasureMask> expected;
  for (MeasureMask m : universe_->masks()) {
    bool dominated = false;
    for (TupleId other : members_) {
      if (other != last && Dominates(*relation_, other, last, m)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) expected.push_back(m);
  }
  std::vector<MeasureMask> actual = last_sky_;
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(expected, actual);
}

TEST_P(CscTest, QuerySkylineMatchesReference) {
  RandomDataConfig cfg;
  cfg.num_tuples = 70;
  cfg.num_measures = 3;
  cfg.mixed_directions = true;
  Stream(RandomDataset(cfg));

  uint64_t comparisons = 0;
  for (MeasureMask m : universe_->masks()) {
    auto got = cube_->QuerySkyline(*relation_, m, &comparisons);
    auto want = ComputeSkyline(*relation_, members_, m);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "subspace " << m;
  }
  EXPECT_GT(comparisons, 0u);
}

TEST_P(CscTest, ContainmentPropertyHolds) {
  // Theorem behind the CSC: sky(M) ⊆ ∪_{N ⊆ M} CSC[N].
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.num_measures = 3;
  cfg.duplicate_prob = 0.3;
  Stream(RandomDataset(cfg));

  for (MeasureMask m : universe_->masks()) {
    std::set<TupleId> stored_below;
    for (MeasureMask n : universe_->masks()) {
      if (!IsSubsetOf(n, m)) continue;
      const auto* bucket = cube_->bucket(n);
      if (bucket != nullptr) {
        stored_below.insert(bucket->begin(), bucket->end());
      }
    }
    for (TupleId t : ComputeSkyline(*relation_, members_, m)) {
      EXPECT_TRUE(stored_below.count(t)) << "tuple " << t << " m=" << m;
    }
  }
}

TEST_P(CscTest, TruncatedUniverseStaysConsistent) {
  RandomDataConfig cfg;
  cfg.num_tuples = 50;
  cfg.num_measures = 4;
  Stream(RandomDataset(cfg), /*max_measure_dims=*/2);
  for (TupleId t : members_) {
    std::vector<MeasureMask> expected =
        NaiveMinimumSubspaces(*relation_, t, members_, *universe_);
    std::vector<MeasureMask> actual;
    for (MeasureMask m : universe_->masks()) {
      const auto* bucket = cube_->bucket(m);
      if (bucket != nullptr &&
          std::find(bucket->begin(), bucket->end(), t) != bucket->end()) {
        actual.push_back(m);
      }
    }
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(expected, actual);
  }
}

TEST_P(CscTest, DuplicateMeasureVectorsCoexist) {
  Schema s({{"a"}}, {{"m0"}, {"m1"}});
  Dataset d(std::move(s));
  d.Add(Row{{"x"}, {5, 5}});
  d.Add(Row{{"x"}, {5, 5}});
  Stream(d);
  // Both ties are skyline tuples everywhere; both stored at their minimum
  // subspaces (the two singletons).
  for (MeasureMask m : {0b01u, 0b10u}) {
    const auto* bucket = cube_->bucket(m);
    ASSERT_NE(bucket, nullptr);
    EXPECT_EQ(bucket->size(), 2u);
  }
  EXPECT_EQ(cube_->bucket(0b11), nullptr);  // not minimal there
  EXPECT_EQ(cube_->stored_count(), 4u);
}

TEST_P(CscTest, StoredCountAndMemoryTrackDemotions) {
  Schema s({{"a"}}, {{"m0"}});
  Dataset d(std::move(s));
  d.Add(Row{{"x"}, {1}});
  d.Add(Row{{"x"}, {2}});  // demotes the first entirely
  Stream(d);
  const auto* bucket = cube_->bucket(0b1);
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(*bucket, (std::vector<TupleId>{1}));
  EXPECT_EQ(cube_->stored_count(), 1u);
  EXPECT_GT(cube_->ApproxMemoryBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, CscTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Indexed" : "Unindexed";
                         });

}  // namespace
}  // namespace sitfact
