// Tests for the synthetic dataset generators: determinism, schema fidelity
// to Tables V/VI, cardinality and distribution shape (the properties the
// discovery algorithms are actually sensitive to).

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datagen/names.h"
#include "datagen/nba_generator.h"
#include "datagen/weather_generator.h"

namespace sitfact {
namespace {

TEST(Names, PoolCardinalitiesMatchTheRealDatasets) {
  EXPECT_EQ(NbaTeamNames().size(), 29u);
  EXPECT_EQ(PositionNames().size(), 5u);
  EXPECT_EQ(SeasonMonthNames().size(), 6u);
  EXPECT_EQ(StateNames().size(), 50u);
  EXPECT_EQ(CompassDirections().size(), 16u);
  EXPECT_EQ(UkCountries().size(), 6u);
}

TEST(Names, SynthesizedNamesAreDistinctPerIndex) {
  std::set<std::string> names;
  for (uint64_t i = 0; i < 500; ++i) names.insert(SynthesizePlayerName(i));
  EXPECT_EQ(names.size(), 500u);
  EXPECT_NE(SynthesizeCollegeName(3), SynthesizeCollegeName(4));
  EXPECT_EQ(SynthesizeLocationName(42), "Stn-0042");
}

TEST(NbaGenerator, DeterministicPerSeed) {
  NbaGenerator a, b;
  for (int i = 0; i < 200; ++i) {
    Row ra = a.Next();
    Row rb = b.Next();
    ASSERT_EQ(ra.dimensions, rb.dimensions) << "row " << i;
    ASSERT_EQ(ra.measures, rb.measures) << "row " << i;
  }
  NbaGenerator::Config other;
  other.seed = 99;
  NbaGenerator c(other);
  bool differs = false;
  NbaGenerator a2;
  for (int i = 0; i < 50 && !differs; ++i) {
    if (a2.Next().dimensions != c.Next().dimensions) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(NbaGenerator, SchemaAndTableVandVISubsets) {
  Schema s = NbaGenerator::FullSchema();
  EXPECT_EQ(s.num_dimensions(), 8);
  EXPECT_EQ(s.num_measures(), 7);
  EXPECT_EQ(s.measure(s.MeasureIndex("fouls")).direction,
            Direction::kSmallerIsBetter);
  EXPECT_EQ(s.measure(s.MeasureIndex("turnovers")).direction,
            Direction::kSmallerIsBetter);
  EXPECT_EQ(s.measure(s.MeasureIndex("points")).direction,
            Direction::kLargerIsBetter);

  EXPECT_EQ(NbaGenerator::DimensionsForD(4),
            (std::vector<std::string>{"player", "season", "team",
                                      "opp_team"}));
  EXPECT_EQ(NbaGenerator::DimensionsForD(7).size(), 7u);
  // Table V: d=6 and d=7 drop `player` in favor of biography attributes.
  auto d6 = NbaGenerator::DimensionsForD(6);
  EXPECT_EQ(std::count(d6.begin(), d6.end(), "player"), 0);
  EXPECT_EQ(NbaGenerator::MeasuresForM(4),
            (std::vector<std::string>{"points", "rebounds", "assists",
                                      "blocks"}));
  EXPECT_EQ(NbaGenerator::MeasuresForM(7).size(), 7u);
}

TEST(NbaGenerator, RowsProjectOntoEveryTableVConfig) {
  NbaGenerator gen;
  Dataset data = gen.Generate(300);
  for (int d = 4; d <= 7; ++d) {
    for (int m = 4; m <= 7; ++m) {
      auto proj = data.Project(NbaGenerator::DimensionsForD(d),
                               NbaGenerator::MeasuresForM(m));
      ASSERT_TRUE(proj.ok()) << "d=" << d << " m=" << m;
      EXPECT_EQ(proj.value().schema().num_dimensions(), d);
      EXPECT_EQ(proj.value().schema().num_measures(), m);
    }
  }
}

TEST(NbaGenerator, MeasuresStayInPlausibleRanges) {
  NbaGenerator gen;
  Dataset data = gen.Generate(2000);
  const Schema& s = data.schema();
  int pts = s.MeasureIndex("points");
  int fouls = s.MeasureIndex("fouls");
  double max_pts = 0;
  for (const Row& r : data.rows()) {
    ASSERT_GE(r.measures[pts], 0);
    ASSERT_LE(r.measures[pts], 70);
    ASSERT_GE(r.measures[fouls], 0);
    ASSERT_LE(r.measures[fouls], 6);
    max_pts = std::max(max_pts, r.measures[pts]);
    ASSERT_NE(r.dimensions[6], r.dimensions[7]) << "team == opp_team";
  }
  // Star skew: someone has a big game in 2000 draws.
  EXPECT_GE(max_pts, 30);
}

TEST(NbaGenerator, SeasonsAdvanceAndPlayersTurnOver) {
  NbaGenerator::Config cfg;
  cfg.tuples_per_season = 500;
  NbaGenerator gen(cfg);
  Dataset data = gen.Generate(2500);
  std::set<std::string> seasons;
  std::set<std::string> players;
  for (const Row& r : data.rows()) {
    seasons.insert(r.dimensions[4]);
    players.insert(r.dimensions[0]);
  }
  EXPECT_EQ(seasons.size(), 5u);  // 2500 / 500
  EXPECT_TRUE(seasons.count("1991-92"));
  EXPECT_TRUE(seasons.count("1995-96"));
  // Turnover creates more distinct players than one season's rosters hold.
  EXPECT_GT(players.size(), 29u * 13u);
}

TEST(WeatherGenerator, DeterministicAndInRange) {
  WeatherGenerator::Config cfg;
  cfg.num_locations = 50;
  cfg.records_per_day = 200;
  WeatherGenerator a(cfg), b(cfg);
  for (int i = 0; i < 300; ++i) {
    Row ra = a.Next();
    Row rb = b.Next();
    ASSERT_EQ(ra.dimensions, rb.dimensions);
    ASSERT_EQ(ra.measures, rb.measures);
    ASSERT_GE(ra.measures[0], 0);   // wind speed day
    ASSERT_LE(ra.measures[0], 90);
    ASSERT_GE(ra.measures[2], -12);  // temperature day
    ASSERT_LE(ra.measures[2], 35);
    ASSERT_GE(ra.measures[4], 25);  // humidity day
    ASSERT_LE(ra.measures[4], 100);
  }
}

TEST(WeatherGenerator, SchemaMatchesPaper) {
  Schema s = WeatherGenerator::FullSchema();
  EXPECT_EQ(s.num_dimensions(), 7);
  EXPECT_EQ(s.num_measures(), 7);
  // The paper assumes larger dominates smaller on ALL weather measures.
  for (const auto& m : s.measures()) {
    EXPECT_EQ(m.direction, Direction::kLargerIsBetter);
  }
  EXPECT_EQ(WeatherGenerator::DimensionsForD(5).size(), 5u);
  EXPECT_EQ(WeatherGenerator::MeasuresForM(7).size(), 7u);
}

TEST(WeatherGenerator, MonthsAdvanceWithTheStream) {
  WeatherGenerator::Config cfg;
  cfg.num_locations = 20;
  cfg.records_per_day = 10;  // 300 records per month
  WeatherGenerator gen(cfg);
  Dataset data = gen.Generate(1000);
  std::set<std::string> months;
  for (const Row& r : data.rows()) months.insert(r.dimensions[2]);
  EXPECT_GE(months.size(), 3u);
  EXPECT_TRUE(months.count("Dec"));
}

}  // namespace
}  // namespace sitfact
