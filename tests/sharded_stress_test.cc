// Concurrency stress for the sharded engine, designed to run under
// ThreadSanitizer (the `tsan` CMake preset / CI job): seeded randomized
// interleavings of AppendBatch / Remove / Update drive the internal thread
// pool, shard-owned µ segments, shard-partitioned counters, and the
// lock-free pruner board; a sequential mirror engine checks every report,
// and the final store must satisfy Invariant 1 exactly.

#include <algorithm>
#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/sharded_engine.h"
#include "lattice/subspace_universe.h"
#include "service/fact_feed.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;
using testing_util::VerifyInvariant1;

void ExpectSameReport(const ArrivalReport& expected,
                      const ArrivalReport& actual) {
  EXPECT_EQ(expected.tuple, actual.tuple);
  ASSERT_EQ(expected.facts, actual.facts);
  ASSERT_EQ(expected.ranked.size(), actual.ranked.size());
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    EXPECT_EQ(expected.ranked[i].fact, actual.ranked[i].fact);
    EXPECT_EQ(expected.ranked[i].context_size, actual.ranked[i].context_size);
    EXPECT_EQ(expected.ranked[i].skyline_size, actual.ranked[i].skyline_size);
    EXPECT_EQ(expected.ranked[i].prominence, actual.ranked[i].prominence);
  }
}

struct StressParam {
  uint64_t seed;
  int shards;
  int threads;
};

class ShardedStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(ShardedStressTest, RandomizedOpInterleavings) {
  const StressParam param = GetParam();
  RandomDataConfig cfg;
  cfg.num_tuples = 220;
  cfg.num_dims = 3;
  cfg.num_measures = 3;
  cfg.dim_cardinality = 3;
  cfg.duplicate_prob = 0.2;
  cfg.mixed_directions = true;
  cfg.seed = param.seed;
  Dataset data = RandomDataset(cfg);

  Relation seq_rel(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("BottomUp", &seq_rel, {});
  ASSERT_TRUE(disc_or.ok());
  DiscoveryEngine::Config seq_config;
  seq_config.tau = 0.0;
  DiscoveryEngine seq(&seq_rel, std::move(disc_or).value(), seq_config);

  Relation par_rel(data.schema());
  ShardedEngine::Config par_config;
  par_config.num_shards = param.shards;
  par_config.num_threads = param.threads;
  par_config.tau = 0.0;
  ShardedEngine par(&par_rel, par_config);

  Rng rng(param.seed * 31 + 7);
  std::vector<TupleId> live;
  size_t next_row = 0;
  const std::vector<Row>& rows = data.rows();
  while (next_row < rows.size()) {
    uint64_t dice = rng.NextBounded(10);
    if (dice < 6 || live.size() < 4) {
      // Batched appends of random size through the pipelined path.
      size_t count = 1 + rng.NextBounded(8);
      count = std::min(count, rows.size() - next_row);
      std::span<const Row> batch(rows.data() + next_row, count);
      next_row += count;
      std::vector<ArrivalReport> actual = par.AppendBatch(batch);
      ASSERT_EQ(actual.size(), count);
      for (size_t i = 0; i < count; ++i) {
        ArrivalReport expected = seq.Append(batch[i]);
        live.push_back(expected.tuple);
        ExpectSameReport(expected, actual[i]);
        if (HasFatalFailure()) return;
      }
    } else if (dice < 8) {
      size_t pick = rng.NextBounded(live.size());
      TupleId victim = live[pick];
      live.erase(live.begin() + static_cast<long>(pick));
      ASSERT_TRUE(seq.Remove(victim).ok());
      ASSERT_TRUE(par.Remove(victim).ok());
    } else {
      size_t pick = rng.NextBounded(live.size());
      TupleId victim = live[pick];
      live.erase(live.begin() + static_cast<long>(pick));
      const Row& replacement = rows[rng.NextBounded(next_row)];
      auto expected = seq.Update(victim, replacement);
      auto actual = par.Update(victim, replacement);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok());
      live.push_back(expected.value().tuple);
      ExpectSameReport(expected.value(), actual.value());
      if (HasFatalFailure()) return;
    }
  }

  // Identical store sizes (the satellite fix: aggregation over segments)...
  EXPECT_EQ(par.StoredTupleCount(), seq.discoverer().StoredTupleCount());
  EXPECT_GT(par.ApproxMemoryBytes(), 0u);
  // ...and bucket-exact Invariant 1 over the whole segmented store.
  SubspaceUniverse universe(cfg.num_measures, cfg.num_measures);
  VerifyInvariant1(par_rel, par.discoverer().mutable_store(), cfg.num_dims,
                   universe);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ShardedStressTest,
    ::testing::Values(StressParam{1, 4, 4}, StressParam{2, 7, 3},
                      StressParam{3, 1, 2}, StressParam{4, 5, 8}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_K" +
             std::to_string(info.param.shards) + "_T" +
             std::to_string(info.param.threads);
    });

// Multiple producers hammer a FactFeed backed by a ShardedEngine: publishes
// race against the batched worker drain and the engine's internal pool.
TEST(ShardedStress, FactFeedMultiProducerShardedBackend) {
  RandomDataConfig cfg;
  cfg.num_tuples = 160;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  cfg.seed = 12345;
  Dataset data = RandomDataset(cfg);

  Relation relation(data.schema());
  ShardedEngine::Config config;
  config.num_shards = 4;
  config.num_threads = 2;
  config.tau = 0.0;
  ShardedEngine engine(&relation, config);

  std::atomic<uint64_t> notified{0};
  FactFeed::Options options;
  options.queue_capacity = 16;  // force backpressure
  options.notify_all_arrivals = true;
  options.max_batch = 8;
  FactFeed feed(
      &engine,
      [&](const ArrivalReport& report) {
        (void)report;
        notified.fetch_add(1);
      },
      options);

  constexpr int kProducers = 4;
  const size_t per_producer = data.size() / kProducers;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(feed.Publish(data.rows()[p * per_producer + i]));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  feed.Drain();
  EXPECT_EQ(feed.processed(), kProducers * per_producer);
  EXPECT_EQ(notified.load(), kProducers * per_producer);
  EXPECT_EQ(relation.size(), kProducers * per_producer);
  feed.Stop();
  // Single-writer discipline held throughout: arrivals == rows ingested.
  EXPECT_EQ(engine.stats().arrivals, kProducers * per_producer);
}

}  // namespace
}  // namespace sitfact
