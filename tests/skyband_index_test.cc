// Differential tests for skyline/skyband_index.h. Every maintenance path is
// diffed against a brute-force ForEachBucket rescan after each mutation
// (memory, file, and segmented stores), engines run the same op stream with
// the index on vs off and must produce identical reports, the sharded
// engine hammers OnBucketChanged from pool threads (the SkybandIndex TSan
// target), and the forward-query planner path is diffed against the three
// index-free dominance kernels.

#include "skyline/skyband_index.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "core/engine.h"
#include "exec/sharded_engine.h"
#include "query/skyline_query.h"
#include "storage/file_mu_store.h"
#include "storage/memory_mu_store.h"
#include "storage/segmented_mu_store.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

namespace fs = std::filesystem;
using testing_util::PaperTableIV;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

/// Brute-force oracle: the index must hold exactly the store's non-empty
/// buckets, member-for-member, with gauges and probe surface agreeing.
void ExpectMatchesRescan(const SkybandIndex& index, MuStore& store) {
  std::unordered_map<Constraint, std::map<MeasureMask, std::vector<TupleId>>,
                     ConstraintHash>
      dump;
  size_t dumped_buckets = 0;
  size_t dumped_members = 0;
  store.ForEachBucket([&](const Constraint& c, MeasureMask m,
                          const std::vector<TupleId>& bucket) {
    dump[c][m] = bucket;
    ++dumped_buckets;
    dumped_members += bucket.size();
  });

  size_t bands = 0;
  index.ForEachBand([&](const Constraint& c, MeasureMask m,
                        const std::vector<TupleId>& members) {
    ++bands;
    auto it = dump.find(c);
    ASSERT_NE(it, dump.end()) << "band for unknown constraint";
    auto bit = it->second.find(m);
    ASSERT_NE(bit, it->second.end()) << "band for unknown subspace";
    EXPECT_EQ(members, bit->second);
  });
  EXPECT_EQ(bands, dumped_buckets) << "index holds stale bands";

  for (const auto& [c, buckets] : dump) {
    for (const auto& [m, bucket] : buckets) {
      EXPECT_EQ(index.SkylineSize(c, m), bucket.size());
      std::vector<TupleId> sorted = bucket;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(index.Members(c, m), sorted);
      for (TupleId t : bucket) EXPECT_TRUE(index.Contains(c, m, t));
    }
  }

  const SkybandIndex::Stats stats = index.stats();
  EXPECT_EQ(stats.families, dump.size());
  EXPECT_EQ(stats.bands, dumped_buckets);
  EXPECT_EQ(stats.members, dumped_members);
}

RandomDataConfig SmallConfig(int n, uint64_t seed) {
  RandomDataConfig cfg;
  cfg.num_tuples = n;
  cfg.seed = seed;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  return cfg;
}

TEST(SkybandIndexMemory, ObserverTracksEveryDiscoveryMutation) {
  Dataset data = RandomDataset(SmallConfig(40, 7));
  Relation relation(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("SBottomUp", &relation, {});
  ASSERT_TRUE(disc_or.ok());
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();

  SkybandIndex index;
  index.Attach(disc->mutable_store(), disc->storage_policy());
  EXPECT_TRUE(index.attached());
  EXPECT_TRUE(index.live());

  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    disc->Discover(relation.Append(row), &facts);
    ExpectMatchesRescan(index, *disc->mutable_store());
  }
  EXPECT_GT(index.stats().notifications, 0u);

  // Removals repair many buckets; the shadow follows each repair.
  for (TupleId t : {TupleId{3}, TupleId{17}, TupleId{0}}) {
    relation.MarkDeleted(t);
    ASSERT_TRUE(disc->Remove(t).ok());
    ExpectMatchesRescan(index, *disc->mutable_store());
  }

  // One observer slot per store: release it, then a late Attach to the
  // already-populated store must prime itself from ForEachBucket.
  index.Detach();
  EXPECT_FALSE(index.attached());
  SkybandIndex late;
  late.Attach(disc->mutable_store(), disc->storage_policy());
  ExpectMatchesRescan(late, *disc->mutable_store());
}

TEST(SkybandIndexFile, NonNotifyingStoreNeedsRebuild) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  const std::string dir =
      (fs::temp_directory_path() / "sitfact_skyband_file_test").string();
  fs::remove_all(dir);
  FileMuStore store(dir);
  ASSERT_FALSE(store.NotifiesObservers());

  auto C = [&](DimMask mask) { return Constraint::ForTuple(r, 4, mask); };
  store.GetOrCreate(C(0b001))->Write(0b01, {0, 1});
  store.GetOrCreate(C(0b011))->Write(0b11, {2, 3});

  SkybandIndex index;
  index.Attach(&store, StoragePolicy::kAllSkylineConstraints);
  EXPECT_TRUE(index.attached());
  EXPECT_FALSE(index.live());  // file stores never notify
  ExpectMatchesRescan(index, store);  // Attach primed from ForEachBucket

  // Mutations are invisible until the next Rebuild.
  store.GetOrCreate(C(0b001))->Write(0b01, {0, 1, 4});
  store.GetOrCreate(C(0b011))->Write(0b11, {});
  EXPECT_EQ(index.stats().notifications, 0u);
  index.Rebuild();
  ExpectMatchesRescan(index, store);
  EXPECT_GE(index.stats().rebuilds, 2u);  // Attach's prime + explicit
  fs::remove_all(dir);
}

TEST(SkybandIndexSegmented, ObserverFollowsPerSegmentWrites) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  SegmentedMuStore store(3, {0, 1, 2, 0, 1, 2, 0, 1});

  SkybandIndex index;
  index.Attach(&store, StoragePolicy::kAllSkylineConstraints);
  EXPECT_TRUE(index.live());

  auto C = [&](DimMask mask, TupleId t = 4) {
    return Constraint::ForTuple(r, t, mask);
  };
  store.GetOrCreate(C(0b001))->Write(0b01, {0, 1});
  ExpectMatchesRescan(index, store);
  store.GetOrCreate(C(0b010))->Write(0b10, {2});
  store.GetOrCreate(C(0b011))->Write(0b11, {3, 4});
  ExpectMatchesRescan(index, store);
  store.segment(0)->Find(C(0b011))->Write(0b11, {3});  // shard's direct path
  ExpectMatchesRescan(index, store);
  store.Find(C(0b001))->Write(0b01, {});  // emptied -> band erased
  ExpectMatchesRescan(index, store);
}

TEST(SkybandIndexRestore, AttachPrimesFromDeserializedDump) {
  // Populate a memory store through discovery, snapshot it, restore the
  // dump into a file store (which never notifies): Attach alone must leave
  // the index coherent with the restored buckets.
  Dataset data = RandomDataset(SmallConfig(30, 11));
  Relation relation(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("SBottomUp", &relation, {});
  ASSERT_TRUE(disc_or.ok());
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();
  std::vector<SkylineFact> facts;
  for (const Row& row : data.rows()) {
    disc->Discover(relation.Append(row), &facts);
  }

  const fs::path base =
      fs::temp_directory_path() / "sitfact_skyband_restore_test";
  fs::remove_all(base);
  fs::create_directories(base);
  const std::string dump = (base / "buckets.bin").string();
  {
    BinaryWriter w(dump);
    disc->mutable_store()->SerializeBuckets(&w);
  }

  FileMuStore restored((base / "store").string());
  {
    BinaryReader reader(dump);
    ASSERT_TRUE(restored
                    .DeserializeBuckets(&reader,
                                        relation.schema().num_dimensions(),
                                        relation.size())
                    .ok());
  }

  SkybandIndex index;
  index.Attach(&restored, disc->storage_policy());
  EXPECT_FALSE(index.live());
  ExpectMatchesRescan(index, restored);
  // And the restored bands agree with the original store's bands.
  ExpectMatchesRescan(index, *disc->mutable_store());
  fs::remove_all(base);
}

void ExpectReportsEqual(const ArrivalReport& a, const ArrivalReport& b) {
  ASSERT_EQ(a.tuple, b.tuple);
  ASSERT_EQ(a.facts, b.facts);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    ASSERT_EQ(a.ranked[i].fact, b.ranked[i].fact) << "rank " << i;
    ASSERT_EQ(a.ranked[i].context_size, b.ranked[i].context_size);
    ASSERT_EQ(a.ranked[i].skyline_size, b.ranked[i].skyline_size);
    ASSERT_EQ(a.ranked[i].prominence, b.ranked[i].prominence);
  }
  ASSERT_EQ(a.prominent.size(), b.prominent.size());
  for (size_t i = 0; i < a.prominent.size(); ++i) {
    ASSERT_EQ(a.prominent[i].fact, b.prominent[i].fact);
  }
}

/// The engine differential: the same Append/Remove/Update stream through an
/// index-accelerated engine and an escape-hatched one must produce
/// identical reports — the index may only change how |λ| is obtained.
void RunEngineDifferential(const std::string& algo) {
  Dataset data = RandomDataset(SmallConfig(70, 23));
  Relation on_rel(data.schema());
  Relation off_rel(data.schema());
  auto make = [&](Relation* rel) {
    auto disc_or = DiscoveryEngine::CreateDiscoverer(algo, rel, {});
    EXPECT_TRUE(disc_or.ok());
    DiscoveryEngine::Config config;
    config.tau = 2.0;
    return std::make_unique<DiscoveryEngine>(rel, std::move(disc_or).value(),
                                             config);
  };
  auto on = make(&on_rel);
  ASSERT_NE(on->skyband_index(), nullptr);
  EXPECT_TRUE(on->skyband_index()->live());
  ::setenv("SITFACT_SKYBAND_INDEX", "off", 1);
  auto off = make(&off_rel);
  ::unsetenv("SITFACT_SKYBAND_INDEX");
  ASSERT_EQ(off->skyband_index(), nullptr);

  Rng rng(5);
  for (const Row& row : data.rows()) {
    ExpectReportsEqual(on->Append(row), off->Append(row));
    if (::testing::Test::HasFatalFailure()) return;
    if (on_rel.size() > 5 && rng.NextBool(0.15)) {
      const TupleId t = rng.NextBounded(on_rel.size());
      if (!on_rel.IsDeleted(t)) {
        if (rng.NextBool(0.5)) {
          ASSERT_EQ(on->Remove(t).ok(), off->Remove(t).ok());
        } else {
          auto ra = on->Update(t, data.rows()[0]);
          auto rb = off->Update(t, data.rows()[0]);
          ASSERT_EQ(ra.ok(), rb.ok());
          if (ra.ok()) ExpectReportsEqual(ra.value(), rb.value());
        }
      }
    }
  }
  // The accelerated engine's shadow still mirrors its store exactly.
  ExpectMatchesRescan(*on->skyband_index(), *on->discoverer().mutable_store());
}

TEST(SkybandIndexEngine, SBottomUpReportsIdenticalOnVsOff) {
  RunEngineDifferential("SBottomUp");
}

TEST(SkybandIndexEngine, STopDownReportsIdenticalOnVsOff) {
  RunEngineDifferential("STopDown");
}

TEST(SkybandIndexSharded, ConcurrentNotificationsStayCoherent) {
  // The sharded engine's pool threads notify the index concurrently during
  // AppendBatch; after the join the bands must equal a bucket rescan. This
  // test is the SkybandIndex TSan target in CI.
  Dataset data = RandomDataset(SmallConfig(120, 31));
  Relation relation(data.schema());
  ShardedEngine::Config config;
  config.num_shards = 3;
  config.num_threads = 3;
  config.tau = 2.0;
  ShardedEngine engine(&relation, config);
  ASSERT_NE(engine.skyband_index(), nullptr);
  EXPECT_TRUE(engine.skyband_index()->live());

  std::vector<ArrivalReport> reports = engine.AppendBatch(data.rows());
  EXPECT_EQ(reports.size(), data.rows().size());
  ExpectMatchesRescan(*engine.skyband_index(),
                      *engine.discoverer().mutable_store());

  ASSERT_TRUE(engine.Remove(7).ok());
  auto updated = engine.Update(12, data.rows()[1]);
  ASSERT_TRUE(updated.ok());
  ExpectMatchesRescan(*engine.skyband_index(),
                      *engine.discoverer().mutable_store());
}

TEST(SkybandIndexForwardQuery, PlannerAnswersMatchDominanceKernels) {
  // kAuto routes covered shapes through the index (Invariant 1); forcing
  // any concrete algorithm bypasses it. Both must agree on every query,
  // including constraints of removed tuples (possibly empty contexts).
  Dataset data = RandomDataset(SmallConfig(90, 41));
  Relation relation(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("SBottomUp", &relation, {});
  ASSERT_TRUE(disc_or.ok());
  DiscoveryEngine::Config config;
  config.tau = 2.0;
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);
  for (const Row& row : data.rows()) engine.Append(row);
  for (TupleId t : {TupleId{5}, TupleId{40}}) {
    ASSERT_TRUE(engine.Remove(t).ok());
  }
  ASSERT_NE(engine.skyband_index(), nullptr);

  SkylineQueryEngine query(&relation);
  query.set_skyband(engine.skyband_index());
  Rng rng(13);
  int index_served = 0;
  for (int i = 0; i < 60; ++i) {
    const TupleId t = rng.NextBounded(relation.size());
    const DimMask dmask =
        static_cast<DimMask>(1 + rng.NextBounded(7));  // non-empty, d=3
    const MeasureMask m =
        static_cast<MeasureMask>(1 + rng.NextBounded(3));  // non-empty, w=2
    const Constraint c = Constraint::ForTuple(relation, t, dmask);
    SkylineQueryResult fast = query.Evaluate(c, m);
    if (fast.from_index) ++index_served;
    for (QueryAlgorithm algo :
         {QueryAlgorithm::kBlockNestedLoops, QueryAlgorithm::kSortFilter,
          QueryAlgorithm::kDivideConquer}) {
      SkylineQueryResult slow = query.Evaluate(c, m, algo);
      EXPECT_FALSE(slow.from_index);
      ASSERT_EQ(fast.skyline, slow.skyline)
          << "query " << i << " algo " << QueryAlgorithmName(algo);
    }
  }
  // The planner path must actually have triggered (SBottomUp = Invariant 1,
  // unlimited knobs: every query shape is covered).
  EXPECT_EQ(index_served, 60);
  EXPECT_GE(engine.skyband_index()->stats().query_probes, 60u);
}

TEST(SkybandIndexForwardQuery, InvariantTwoIndexNeverServesQueries) {
  // STopDown keeps maximal-constraint buckets (Invariant 2): a bucket is
  // not λ_M(σ_C(R)), so CoversQuery must refuse and the planner must fall
  // back to scans — silently serving union state would be wrong.
  Dataset data = RandomDataset(SmallConfig(40, 43));
  Relation relation(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("STopDown", &relation, {});
  ASSERT_TRUE(disc_or.ok());
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), {});
  for (const Row& row : data.rows()) engine.Append(row);
  ASSERT_NE(engine.skyband_index(), nullptr);

  SkylineQueryEngine query(&relation);
  query.set_skyband(engine.skyband_index());
  const Constraint c = Constraint::ForTuple(relation, 3, 0b011);
  SkylineQueryResult result = query.Evaluate(c, 0b11);
  EXPECT_FALSE(result.from_index);
  SkylineQueryResult oracle =
      query.Evaluate(c, 0b11, QueryAlgorithm::kBlockNestedLoops);
  EXPECT_EQ(result.skyline, oracle.skyline);
}

TEST(SkybandIndexEnv, EscapeHatchParsesOffAndZero) {
  ::setenv("SITFACT_SKYBAND_INDEX", "off", 1);
  EXPECT_FALSE(SkybandIndexEnabledFromEnv());
  ::setenv("SITFACT_SKYBAND_INDEX", "0", 1);
  EXPECT_FALSE(SkybandIndexEnabledFromEnv());
  ::setenv("SITFACT_SKYBAND_INDEX", "on", 1);
  EXPECT_TRUE(SkybandIndexEnabledFromEnv());
  ::unsetenv("SITFACT_SKYBAND_INDEX");
  EXPECT_TRUE(SkybandIndexEnabledFromEnv());
}

}  // namespace
}  // namespace sitfact
