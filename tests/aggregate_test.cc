// Tests for core/aggregate_facts.h: rollup correctness (count/sum/min/max/
// mean), period semantics, discovery on the derived relation, and config
// validation.

#include "core/aggregate_facts.h"

#include <string>
#include <vector>

#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using Spec = AggregateFactStream::AggregateSpec;

/// Base schema for a city incident log: city, kind; measures severity.
Schema IncidentSchema() {
  return Schema({{"city"}, {"kind"}},
                {{"severity", Direction::kLargerIsBetter}});
}

AggregateFactStream::Config DuiConfig() {
  AggregateFactStream::Config config;
  config.group_dims = {0};  // group by city
  config.period_name = "day";
  Spec count;
  count.kind = Spec::Kind::kCount;
  count.name = "incidents";
  Spec max_sev;
  max_sev.kind = Spec::Kind::kMax;
  max_sev.measure_index = 0;
  max_sev.name = "worst_severity";
  config.aggregates = {count, max_sev};
  config.tau = 0.0;
  return config;
}

Row Incident(const std::string& city, const std::string& kind,
             double severity) {
  return Row{{city, kind}, {severity}};
}

TEST(AggregateFactStream, RollupSchemaShape) {
  auto stream_or = AggregateFactStream::Create(IncidentSchema(), DuiConfig());
  ASSERT_TRUE(stream_or.ok()) << stream_or.status().ToString();
  const Schema& s = stream_or.value()->rollup_schema();
  ASSERT_EQ(s.num_dimensions(), 2);
  EXPECT_EQ(s.dimension(0).name, "city");
  EXPECT_EQ(s.dimension(1).name, "day");
  ASSERT_EQ(s.num_measures(), 2);
  EXPECT_EQ(s.measure(0).name, "incidents");
  EXPECT_EQ(s.measure(1).name, "worst_severity");
}

TEST(AggregateFactStream, AggregatesAreExact) {
  auto stream_or = AggregateFactStream::Create(IncidentSchema(), DuiConfig());
  ASSERT_TRUE(stream_or.ok());
  AggregateFactStream& stream = *stream_or.value();

  stream.Add(Incident("C", "dui", 3));
  stream.Add(Incident("C", "collision", 7));
  stream.Add(Incident("C", "dui", 5));
  stream.Add(Incident("B", "dui", 2));
  auto day1 = stream.ClosePeriod("2013-06-01");

  ASSERT_EQ(day1.size(), 2u);  // first-touch order: C then B
  EXPECT_EQ(day1[0].row.dimensions,
            (std::vector<std::string>{"C", "2013-06-01"}));
  EXPECT_EQ(day1[0].row.measures, (std::vector<double>{3, 7}));
  EXPECT_EQ(day1[1].row.dimensions,
            (std::vector<std::string>{"B", "2013-06-01"}));
  EXPECT_EQ(day1[1].row.measures, (std::vector<double>{1, 2}));
  EXPECT_EQ(stream.rollup_relation().size(), 2u);
}

TEST(AggregateFactStream, AllAggregateKinds) {
  AggregateFactStream::Config config;
  config.group_dims = {0};
  Spec count{Spec::Kind::kCount, 0, "n", Direction::kLargerIsBetter};
  Spec sum{Spec::Kind::kSum, 0, "total", Direction::kLargerIsBetter};
  Spec mx{Spec::Kind::kMax, 0, "peak", Direction::kLargerIsBetter};
  Spec mn{Spec::Kind::kMin, 0, "floor", Direction::kSmallerIsBetter};
  Spec mean{Spec::Kind::kMean, 0, "avg", Direction::kLargerIsBetter};
  config.aggregates = {count, sum, mx, mn, mean};
  auto stream_or = AggregateFactStream::Create(IncidentSchema(), config);
  ASSERT_TRUE(stream_or.ok());
  AggregateFactStream& stream = *stream_or.value();

  stream.Add(Incident("X", "a", 4));
  stream.Add(Incident("X", "b", 10));
  stream.Add(Incident("X", "c", 1));
  auto out = stream.ClosePeriod("p1");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row.measures, (std::vector<double>{3, 15, 10, 1, 5}));
}

TEST(AggregateFactStream, PeriodsResetAccumulators) {
  auto stream_or = AggregateFactStream::Create(IncidentSchema(), DuiConfig());
  ASSERT_TRUE(stream_or.ok());
  AggregateFactStream& stream = *stream_or.value();

  stream.Add(Incident("C", "dui", 3));
  stream.ClosePeriod("day1");
  stream.Add(Incident("C", "dui", 9));
  auto day2 = stream.ClosePeriod("day2");
  ASSERT_EQ(day2.size(), 1u);
  EXPECT_EQ(day2[0].row.measures, (std::vector<double>{1, 9}));  // not 2
  // The rollup relation accumulates across periods.
  EXPECT_EQ(stream.rollup_relation().size(), 2u);
}

TEST(AggregateFactStream, EmptyPeriodEmitsNothing) {
  auto stream_or = AggregateFactStream::Create(IncidentSchema(), DuiConfig());
  ASSERT_TRUE(stream_or.ok());
  EXPECT_TRUE(stream_or.value()->ClosePeriod("quiet day").empty());
}

TEST(AggregateFactStream, DiscoversTheIntroExampleFact) {
  // "There were 35 DUI arrests and 20 collisions in city C yesterday, the
  // first time in 2013": the rollup row (city=C, day=d35) must be in the
  // contextual skyline of city=C on {incidents}.
  auto stream_or = AggregateFactStream::Create(IncidentSchema(), DuiConfig());
  ASSERT_TRUE(stream_or.ok());
  AggregateFactStream& stream = *stream_or.value();

  // 30 ordinary days with few incidents, then a record-setting day.
  for (int day = 0; day < 30; ++day) {
    for (int i = 0; i < 3 + day % 4; ++i) {
      stream.Add(Incident("C", "dui", 2));
    }
    stream.Add(Incident("B", "dui", 1));
    stream.ClosePeriod("2013-day" + std::to_string(day));
  }
  for (int i = 0; i < 55; ++i) stream.Add(Incident("C", "dui", 2));
  auto record_day = stream.ClosePeriod("2013-day30");

  ASSERT_FALSE(record_day.empty());
  const auto& arrival = record_day[0];
  ASSERT_EQ(arrival.row.dimensions[0], "C");
  const Relation& rollup = stream.rollup_relation();
  bool found_city_fact = false;
  for (const SkylineFact& f : arrival.report.facts) {
    if (f.constraint.ToPredicateString(rollup) == "city=C" &&
        f.subspace == 0b01) {
      found_city_fact = true;
    }
  }
  EXPECT_TRUE(found_city_fact);
  // And it should rank with high prominence: 31 days in city C, one skyline
  // day on {incidents}.
  ASSERT_FALSE(arrival.report.ranked.empty());
  EXPECT_GE(arrival.report.ranked.front().prominence, 30.0);
}

TEST(AggregateFactStream, MultiDimensionalGroups) {
  AggregateFactStream::Config config = DuiConfig();
  config.group_dims = {0, 1};  // (city, kind)
  auto stream_or = AggregateFactStream::Create(IncidentSchema(), config);
  ASSERT_TRUE(stream_or.ok());
  AggregateFactStream& stream = *stream_or.value();

  stream.Add(Incident("C", "dui", 3));
  stream.Add(Incident("C", "collision", 7));
  stream.Add(Incident("C", "dui", 5));
  auto out = stream.ClosePeriod("d");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].row.dimensions,
            (std::vector<std::string>{"C", "dui", "d"}));
  EXPECT_EQ(out[0].row.measures[0], 2);
  EXPECT_EQ(out[1].row.dimensions,
            (std::vector<std::string>{"C", "collision", "d"}));
}

TEST(AggregateFactStream, ValidationErrors) {
  AggregateFactStream::Config config = DuiConfig();
  config.group_dims = {5};
  EXPECT_EQ(
      AggregateFactStream::Create(IncidentSchema(), config).status().code(),
      StatusCode::kInvalidArgument);

  config = DuiConfig();
  config.aggregates.clear();
  EXPECT_EQ(
      AggregateFactStream::Create(IncidentSchema(), config).status().code(),
      StatusCode::kInvalidArgument);

  config = DuiConfig();
  config.aggregates[1].measure_index = 9;
  EXPECT_EQ(
      AggregateFactStream::Create(IncidentSchema(), config).status().code(),
      StatusCode::kInvalidArgument);

  config = DuiConfig();
  config.algorithm = "NoSuchAlgorithm";
  EXPECT_EQ(
      AggregateFactStream::Create(IncidentSchema(), config).status().code(),
      StatusCode::kNotFound);

  config = DuiConfig();
  config.group_dims.clear();
  EXPECT_EQ(
      AggregateFactStream::Create(IncidentSchema(), config).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sitfact
