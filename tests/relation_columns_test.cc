// SoA/row-view consistency contract (ISSUE 5 satellite): the columnar
// views Relation exposes (key_column / raw_column / dim_column) and the
// per-tuple row accessors (measure_key / measure / dim) are two views of
// the same MeasureColumnStore data. A randomized op-sequence property test
// — Append / MarkDeleted / engine-style Update (tombstone + re-append),
// mirroring the workload fuzzer's generator — must never observe them
// disagreeing, across arena growth, tombstones, NaN measures and mixed
// directions.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"
#include "relation/relation.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Schema FuzzSchema() {
  return Schema({{"d0"}, {"d1"}, {"d2"}},
                {{"m0", Direction::kLargerIsBetter},
                 {"m1", Direction::kSmallerIsBetter}});
}

/// Same shape as the workload fuzzer's RandomRow, plus rare NaN measures.
Row RandomRow(Rng* rng) {
  Row row;
  for (int d = 0; d < 3; ++d) {
    row.dimensions.push_back("v" + std::to_string(rng->NextBounded(3)));
  }
  for (int j = 0; j < 2; ++j) {
    row.measures.push_back(rng->NextBool(0.02)
                               ? kNaN
                               : static_cast<double>(rng->NextBounded(6)));
  }
  return row;
}

/// Mirror of every appended row, kept independently of the Relation.
struct ShadowRow {
  std::vector<ValueId> dims;
  std::vector<double> measures;
};

bool SameDouble(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

void VerifyViews(const Relation& r, const std::vector<ShadowRow>& shadow) {
  ASSERT_EQ(r.size(), shadow.size());
  const Schema& s = r.schema();
  for (int j = 0; j < s.num_measures(); ++j) {
    const double* keys = r.key_column(j);
    const double* raws = r.raw_column(j);
    bool negated = s.measure(j).direction == Direction::kSmallerIsBetter;
    for (TupleId t = 0; t < r.size(); ++t) {
      double want_raw = shadow[t].measures[j];
      // Row view vs shadow.
      ASSERT_TRUE(SameDouble(r.measure(t, j), want_raw)) << t << "," << j;
      // Column view vs row view: literally the same storage.
      ASSERT_TRUE(SameDouble(raws[t], r.measure(t, j))) << t << "," << j;
      ASSERT_TRUE(SameDouble(keys[t], r.measure_key(t, j))) << t << "," << j;
      // Key = direction-adjusted raw (NaN stays NaN under negation).
      double want_key = negated ? -want_raw : want_raw;
      ASSERT_TRUE(SameDouble(keys[t], want_key)) << t << "," << j;
    }
  }
  for (int d = 0; d < s.num_dimensions(); ++d) {
    const ValueId* col = r.dim_column(d);
    for (TupleId t = 0; t < r.size(); ++t) {
      ASSERT_EQ(col[t], r.dim(t, d)) << t << "," << d;
      ASSERT_EQ(col[t], shadow[t].dims[d]) << t << "," << d;
    }
  }
}

TEST(RelationColumnsTest, RandomOpSequencesKeepViewsIdentical) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Relation r(FuzzSchema());
    std::vector<ShadowRow> shadow;
    std::vector<TupleId> live;
    uint32_t live_count = 0;
    Rng rng(seed);
    for (int op = 0; op < 400; ++op) {
      int kind = static_cast<int>(rng.NextBounded(10));
      if (kind < 6 || live.empty()) {
        // Append.
        Row row = RandomRow(&rng);
        TupleId t = r.Append(row);
        ShadowRow sr;
        for (int d = 0; d < 3; ++d) sr.dims.push_back(r.dim(t, d));
        sr.measures = row.measures;
        shadow.push_back(sr);
        live.push_back(t);
        ++live_count;
      } else if (kind < 8) {
        // Remove: tombstone a random live tuple. The row stays readable —
        // repair logic depends on that — so the views must still agree.
        size_t pick = rng.NextBounded(live.size());
        TupleId t = live[pick];
        live[pick] = live.back();
        live.pop_back();
        r.MarkDeleted(t);
        --live_count;
        EXPECT_TRUE(r.IsDeleted(t));
      } else {
        // Engine-style Update (core/engine.h): tombstone + fresh append.
        size_t pick = rng.NextBounded(live.size());
        TupleId old_t = live[pick];
        live[pick] = live.back();
        live.pop_back();
        r.MarkDeleted(old_t);
        --live_count;
        Row row = RandomRow(&rng);
        TupleId t = r.Append(row);
        ShadowRow sr;
        for (int d = 0; d < 3; ++d) sr.dims.push_back(r.dim(t, d));
        sr.measures = row.measures;
        shadow.push_back(sr);
        live.push_back(t);
        ++live_count;
      }
      ASSERT_EQ(r.live_size(), live_count);
      if (op % 16 == 0) VerifyViews(r, shadow);
    }
    VerifyViews(r, shadow);
  }
}

TEST(RelationColumnsTest, ColumnsSurviveArenaGrowth) {
  // The arena starts at 64 rows per column and doubles; crossing 64, 128,
  // 256... must preserve every previously written value and keep the two
  // views pointing at the same memory.
  Relation r(FuzzSchema());
  std::vector<ShadowRow> shadow;
  for (int i = 0; i < 1000; ++i) {
    double v = static_cast<double>(i);
    r.Append(Row{{"a", "b", "c"}, {v, -v}});
    shadow.push_back({{r.dim(static_cast<TupleId>(i), 0),
                       r.dim(static_cast<TupleId>(i), 1),
                       r.dim(static_cast<TupleId>(i), 2)},
                      {v, -v}});
    if ((i & (i + 1)) == 0 || i == 63 || i == 64 || i == 999) {
      VerifyViews(r, shadow);
    }
  }
  // Spot-check the direction adjustment end-to-end: m1 is
  // smaller-is-better, so its key column is the negated raw column.
  const double* raw = r.raw_column(1);
  const double* key = r.key_column(1);
  for (TupleId t = 0; t < r.size(); ++t) {
    ASSERT_EQ(key[t], -raw[t]);
  }
}

TEST(RelationColumnsTest, AppendEncodedSharesTheSameColumns) {
  Relation r(FuzzSchema());
  TupleId a = r.Append(Row{{"x", "y", "z"}, {1.0, 2.0}});
  // Generator fast path: pre-encoded dims must land in the same columns.
  std::vector<ValueId> dims = {r.dim(a, 0), r.dim(a, 1), r.dim(a, 2)};
  TupleId b = r.AppendEncoded(dims, {3.0, 4.0});
  EXPECT_EQ(r.dim_column(0)[b], r.dim_column(0)[a]);
  EXPECT_EQ(r.raw_column(0)[b], 3.0);
  EXPECT_EQ(r.key_column(1)[b], -4.0);
  EXPECT_EQ(r.AgreeMask(a, b), FullMask(3));
}

}  // namespace
}  // namespace sitfact
