// Tests for src/net/: HTTP parsing, the epoll server over real sockets,
// and the FactServer application — multi-client concurrency, the
// byte-identical server-vs-in-process contract (cache hit AND miss paths),
// per-epoch cache coherence across a publish, admission control (429
// shedding), structured errors, and graceful shutdown. The concurrency
// claims here are what the TSan CI job verifies.

#include "net/fact_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "net/http_client.h"
#include "net/json.h"
#include "service/fact_service.h"
#include "service/filter_parse.h"
#include "service/query_api.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace net {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

/// A FactService over a random dataset plus a FactServer serving it from a
/// background thread. `prefill` rows are ingested before the server starts;
/// the rest stay available for IngestMore() (single-writer contract: only
/// the test thread ever writes).
class ServingFixture {
 public:
  explicit ServingFixture(FactServer::Options options = {},
                          int num_tuples = 100, size_t prefill = SIZE_MAX,
                          uint64_t seed = 11)
      : data_(RandomDataset(Config(num_tuples, seed))), rel_(data_.schema()) {
    auto disc_or = DiscoveryEngine::CreateDiscoverer("STopDown", &rel_, {});
    EXPECT_TRUE(disc_or.ok());
    DiscoveryEngine::Config config;
    config.tau = 2.0;
    engine_ = std::make_unique<DiscoveryEngine>(
        &rel_, std::move(disc_or).value(), config);
    FactService::Options so;
    so.entity = "d0";
    service_ = std::make_unique<FactService>(&rel_, so);
    ingested_ = std::min(prefill, data_.rows().size());
    for (size_t i = 0; i < ingested_; ++i) {
      service_->OnArrival(engine_->Append(data_.rows()[i]));
    }
    options.net.port = 0;
    server_ = std::make_unique<FactServer>(service_.get(), &rel_, options);
  }

  ~ServingFixture() { Stop(); }

  void Start() {
    Status listening = server_->Listen();
    ASSERT_TRUE(listening.ok()) << listening.ToString();
    server_->set_external_stop(&stop_);
    thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  void Stop() {
    stop_ = true;
    if (thread_.joinable()) thread_.join();
  }

  /// Waits for Serve() to return on its own (e.g. after /quitquitquit).
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Ingests `n` more of the held-back rows (test thread == writer thread).
  void IngestMore(size_t n) {
    for (size_t i = 0; i < n && ingested_ < data_.rows().size();
         ++i, ++ingested_) {
      service_->OnArrival(engine_->Append(data_.rows()[ingested_]));
    }
  }

  uint16_t port() const { return server_->port(); }
  const FactService& service() const { return *service_; }
  FactServer& server() { return *server_; }
  const Relation& relation() const { return rel_; }
  const Status& serve_status() const { return serve_status_; }

  /// The bytes the server must answer with for `request` at the current
  /// epoch — the in-process half of the differential contract.
  std::string Expected(const QueryRequest& request) const {
    auto response = ExecuteQuery(service_->Acquire(), request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return SerializeResponse(response.value());
  }

 private:
  static RandomDataConfig Config(int n, uint64_t seed) {
    RandomDataConfig cfg;
    cfg.num_tuples = n;
    cfg.seed = seed;
    cfg.num_dims = 3;
    cfg.num_measures = 2;
    return cfg;
  }

  Dataset data_;
  Relation rel_;
  std::unique_ptr<DiscoveryEngine> engine_;
  std::unique_ptr<FactService> service_;
  std::unique_ptr<FactServer> server_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  Status serve_status_;
  size_t ingested_ = 0;
};

/// Pulls a nested number out of a /statz body.
uint64_t StatzCounter(const std::string& body,
                      const std::vector<std::string>& path) {
  auto parsed = JsonValue::Parse(body);
  EXPECT_TRUE(parsed.ok()) << body;
  const JsonValue* v = &parsed.value();
  for (const std::string& key : path) {
    v = v->Find(key);
    if (v == nullptr) {
      ADD_FAILURE() << "no " << key << " in " << body;
      return 0;
    }
  }
  auto u = v->NumberAsU64();
  EXPECT_TRUE(u.ok());
  return u.ok() ? u.value() : 0;
}

TEST(HttpParse, RequestLineHeadersAndBody) {
  HttpLimits limits;
  HttpRequest req;
  const std::string text =
      "POST /topk?k=5&where=d0%3Dv1 HTTP/1.1\r\n"
      "Host: x\r\nContent-Type: application/json\r\n"
      "Content-Length: 4\r\n\r\n{}{}extra";
  ParseResult r = ParseHttpRequest(text, limits, &req);
  ASSERT_EQ(r.state, ParseResult::State::kComplete);
  EXPECT_EQ(r.consumed, text.size() - 5);  // "extra" stays in the buffer
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/topk");
  ASSERT_EQ(req.query.size(), 2u);
  EXPECT_EQ(req.query[0], (std::pair<std::string, std::string>{"k", "5"}));
  EXPECT_EQ(req.query[1],
            (std::pair<std::string, std::string>{"where", "d0=v1"}));
  EXPECT_EQ(req.body, "{}{}");
  EXPECT_TRUE(req.keep_alive);
  ASSERT_NE(req.Header("content-type"), nullptr);

  // Incomplete input asks for more; garbage is a 400; chunked is a 501.
  EXPECT_EQ(ParseHttpRequest("GET /x HTTP/1.1\r\n", limits, &req).state,
            ParseResult::State::kNeedMore);
  r = ParseHttpRequest("NOT A REQUEST\r\n\r\n", limits, &req);
  EXPECT_EQ(r.state, ParseResult::State::kBad);
  EXPECT_EQ(r.http_status, 400);
  r = ParseHttpRequest(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", limits, &req);
  EXPECT_EQ(r.state, ParseResult::State::kBad);
  EXPECT_EQ(r.http_status, 501);

  // Oversized headers and bodies hit their limits, not unbounded buffers.
  HttpLimits tiny;
  tiny.max_header_bytes = 32;
  r = ParseHttpRequest("GET /" + std::string(64, 'x') + " HTTP/1.1\r\n\r\n",
                       tiny, &req);
  EXPECT_EQ(r.state, ParseResult::State::kBad);
  EXPECT_EQ(r.http_status, 431);
  tiny = HttpLimits();
  tiny.max_body_bytes = 8;
  r = ParseHttpRequest(
      "POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789", tiny, &req);
  EXPECT_EQ(r.state, ParseResult::State::kBad);
  EXPECT_EQ(r.http_status, 413);
}

TEST(FactServerRouting, MethodAndKindChecksWithoutSockets) {
  // Handle() is the routing core; drive it directly for the checks that do
  // not need a socket.
  ServingFixture fx;
  HttpRequest req;
  req.method = "PUT";
  req.target = "/topk";
  req.path = "/topk";
  HttpResponse resp = fx.server().Handle(req);
  EXPECT_EQ(resp.status, 405);
  EXPECT_EQ(resp.body, SerializeErrorBody(
                           Status::InvalidArgument("use GET or POST for "
                                                   "/topk")));

  // POST body whose kind contradicts the endpoint is rejected, pinned.
  req.method = "POST";
  req.body = "{\"schema\":1,\"kind\":\"explain\",\"record\":0}";
  resp = fx.server().Handle(req);
  EXPECT_EQ(resp.status, 400);
  EXPECT_EQ(resp.body,
            SerializeErrorBody(Status::InvalidArgument(
                "request kind 'explain' does not match endpoint '/topk'")));

  req.method = "GET";
  req.body.clear();
  req.path = "/nope";
  resp = fx.server().Handle(req);
  EXPECT_EQ(resp.status, 404);
}

TEST(FactServerSocket, ByteIdenticalToInProcessOnMissAndHit) {
  ServingFixture fx;
  fx.Start();
  HttpClient client("127.0.0.1", fx.port());

  QueryRequest topk;
  topk.k = 5;
  const std::string expected = fx.Expected(topk);

  auto first = client.Get("/topk?k=5");   // cache miss
  auto second = client.Get("/topk?k=5");  // cache hit
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first.value().status, 200);
  EXPECT_EQ(second.value().status, 200);
  // The contract: miss path and hit path both serve exactly the bytes the
  // in-process serializer produces for the same request at the same epoch.
  EXPECT_EQ(first.value().body, expected);
  EXPECT_EQ(second.value().body, expected);

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().body, "{\"schema\":1,\"status\":\"ok\"}");

  auto statz = client.Get("/statz");
  ASSERT_TRUE(statz.ok());
  const std::string& body = statz.value().body;
  EXPECT_EQ(StatzCounter(body, {"endpoints", "topk", "requests"}), 2u);
  EXPECT_EQ(StatzCounter(body, {"endpoints", "topk", "cache_hits"}), 1u);
  EXPECT_EQ(StatzCounter(body, {"endpoints", "topk", "errors"}), 0u);
  // Only the cache miss walked the sorted serving bands.
  EXPECT_EQ(StatzCounter(body, {"endpoints", "topk", "skyband_hits"}), 1u);
  // One keep-alive connection carried all four requests.
  EXPECT_EQ(StatzCounter(body, {"server", "accepted"}), 1u);
  EXPECT_EQ(StatzCounter(body, {"server", "requests"}), 4u);
}

TEST(FactServerSocket, PostAndGetAgreeAcrossEveryEndpoint) {
  ServingFixture fx;
  fx.Start();
  HttpClient client("127.0.0.1", fx.port());
  const uint64_t last = fx.service().Acquire().arrivals() - 1;

  struct Case {
    std::string get_target;
    QueryRequest request;
  };
  std::vector<Case> cases;
  {
    Case c;
    c.get_target = "/topk?k=4";
    c.request.k = 4;
    cases.push_back(c);
    c = Case();
    c.get_target = "/facts_for_tuple?tuple=9&k=1000";
    c.request.kind = QueryKind::kFactsForTuple;
    c.request.tuple = 9;
    c.request.k = 1000;
    cases.push_back(c);
    c = Case();
    c.get_target = "/facts_in_window?window=0:" + std::to_string(last) +
                   "&k=1000";
    c.request.kind = QueryKind::kFactsInWindow;
    c.request.window_first = 0;
    c.request.window_last = last;
    c.request.k = 1000;
    cases.push_back(c);
    c = Case();
    c.get_target = "/about?where=d0%3Dv1&k=8";
    c.request.kind = QueryKind::kAbout;
    c.request.filter.about = [&] {
      std::string note;
      auto parsed = ParseWhereConstraint("d0=v1", fx.relation(), &note);
      EXPECT_TRUE(parsed.ok());
      EXPECT_TRUE(note.empty());
      return parsed.value();
    }();
    c.request.k = 8;
    cases.push_back(c);
    c = Case();
    c.get_target = "/explain?record=0";
    c.request.kind = QueryKind::kExplain;
    c.request.record = 0;
    cases.push_back(c);
  }
  for (const Case& c : cases) {
    SCOPED_TRACE(c.get_target);
    const std::string expected = fx.Expected(c.request);
    auto get = client.Get(c.get_target);
    ASSERT_TRUE(get.ok()) << get.status().ToString();
    EXPECT_EQ(get.value().status, 200);
    EXPECT_EQ(get.value().body, expected);
    const std::string endpoint =
        c.get_target.substr(0, c.get_target.find('?'));
    auto post = client.Post(endpoint, RequestToJson(c.request).Dump());
    ASSERT_TRUE(post.ok()) << post.status().ToString();
    EXPECT_EQ(post.value().status, 200);
    EXPECT_EQ(post.value().body, expected);
  }
}

TEST(FactServerSocket, CursorTokenPaginatesOverTheWire) {
  ServingFixture fx;
  fx.Start();
  HttpClient client("127.0.0.1", fx.port());

  auto page1 = client.Get("/topk?k=3");
  ASSERT_TRUE(page1.ok());
  auto parsed = ParseResponse(page1.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed.value().next.has_value());

  // The "next.token" field is the resumable query parameter.
  auto json = JsonValue::Parse(page1.value().body);
  ASSERT_TRUE(json.ok());
  const JsonValue* token = json.value().Find("next")->Find("token");
  ASSERT_NE(token, nullptr);

  QueryRequest page2_req;
  page2_req.k = 3;
  page2_req.cursor = parsed.value().next;
  auto page2 = client.Get("/topk?k=3&cursor=" + token->string_value());
  ASSERT_TRUE(page2.ok());
  EXPECT_EQ(page2.value().status, 200);
  EXPECT_EQ(page2.value().body, fx.Expected(page2_req));
}

TEST(FactServerSocket, StructuredErrorsAndEmptyNote) {
  ServingFixture fx;
  fx.Start();
  HttpClient client("127.0.0.1", fx.port());

  auto r = client.Get("/nope");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 404);
  EXPECT_EQ(r.value().body,
            SerializeErrorBody(Status::NotFound("no endpoint /nope")));

  r = client.Get("/topk?zzz=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 400);
  EXPECT_EQ(r.value().body, SerializeErrorBody(Status::InvalidArgument(
                                "unknown query parameter 'zzz'")));

  r = client.Get("/about?where=season%3D1996");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 400);
  EXPECT_EQ(r.value().body, SerializeErrorBody(Status::InvalidArgument(
                                "--where names no dimension: season")));

  r = client.Get("/explain?record=99999999");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 404);

  r = client.Post("/topk", "{\"schema\":2,\"kind\":\"topk\"}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 400);
  EXPECT_EQ(r.value().body,
            SerializeErrorBody(Status::InvalidArgument(
                "unsupported schema version 2 (this server speaks 1)")));

  // A where value that never occurs: 200 with a provably-empty page.
  r = client.Get("/topk?where=d0%3Dzebra");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 200);
  const uint64_t epoch = fx.service().Acquire().epoch();
  EXPECT_EQ(r.value().body, "{\"schema\":1,\"epoch\":" +
                                std::to_string(epoch) + ",\"facts\":[]}");
}

TEST(FactServerSocket, MalformedHttpAnsweredAndClosed) {
  ServingFixture fx;
  fx.Start();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[] = "THIS IS NOT HTTP\r\n\r\n";
  ASSERT_EQ(::write(fd, garbage, sizeof(garbage) - 1),
            static_cast<ssize_t>(sizeof(garbage) - 1));

  std::string got;
  char buf[1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // server closes after the error response
    got.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(got.rfind("HTTP/1.1 400 ", 0), 0u) << got;

  HttpClient client("127.0.0.1", fx.port());
  auto statz = client.Get("/statz");
  ASSERT_TRUE(statz.ok());
  EXPECT_EQ(StatzCounter(statz.value().body, {"server", "protocol_errors"}),
            1u);
}

TEST(FactServerSocket, MultiClientConcurrentRequestsStayByteIdentical) {
  ServingFixture fx;
  fx.Start();

  QueryRequest topk;
  topk.k = 7;
  QueryRequest per_tuple;
  per_tuple.kind = QueryKind::kFactsForTuple;
  per_tuple.tuple = 3;
  per_tuple.k = 1000;
  QueryRequest window;
  window.kind = QueryKind::kFactsInWindow;
  window.window_first = 0;
  window.window_last = 50;
  window.k = 1000;
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"/topk?k=7", fx.Expected(topk)},
      {"/facts_for_tuple?tuple=3&k=1000", fx.Expected(per_tuple)},
      {"/facts_in_window?window=0:50&k=1000", fx.Expected(window)},
  };

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 24;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client("127.0.0.1", fx.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        const auto& [target, want] = expected[(c + i) % expected.size()];
        auto r = client.Get(target);
        if (!r.ok() || r.value().status != 200 || r.value().body != want) {
          ++mismatches;
        }
        // Exercise reconnect handling on a few iterations too.
        if (i % 10 == 9) client.Disconnect();
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  HttpClient client("127.0.0.1", fx.port());
  auto statz = client.Get("/statz");
  ASSERT_TRUE(statz.ok());
  EXPECT_EQ(StatzCounter(statz.value().body, {"server", "requests"}),
            static_cast<uint64_t>(kClients * kRequestsEach) + 1);
  EXPECT_EQ(StatzCounter(statz.value().body, {"server", "shed"}), 0u);
}

TEST(FactServerSocket, ShedsBeyondConnectionLimitWith429) {
  FactServer::Options options;
  options.net.max_connections = 1;
  options.net.retry_after_seconds = 3;
  ServingFixture fx(options);
  fx.Start();

  HttpClient holder("127.0.0.1", fx.port());
  auto held = holder.Get("/healthz");  // occupies the single admitted slot
  ASSERT_TRUE(held.ok());
  ASSERT_EQ(held.value().status, 200);

  HttpClient extra("127.0.0.1", fx.port());
  auto shed = extra.Get("/healthz");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().status, 429);
  ASSERT_NE(shed.value().Header("retry-after"), nullptr);
  EXPECT_EQ(*shed.value().Header("retry-after"), "3");
  EXPECT_EQ(shed.value().body,
            "{\"schema\":1,\"error\":{\"code\":\"overloaded\",\"message\":"
            "\"connection limit reached, retry later\"}}");

  // Once the holder leaves, the next connection is admitted again.
  holder.Disconnect();
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto retry = extra.Get("/healthz");
    if (retry.ok() && retry.value().status == 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_LT(attempt, 49) << "server never readmitted after shed";
  }

  fx.Stop();
  EXPECT_GE(fx.server().net_stats().shed, 1u);
}

TEST(FactServerSocket, IdleKeepAliveConnectionsAreReaped) {
  FactServer::Options options;
  options.net.max_connections = 1;
  options.net.idle_timeout_ms = 150;
  ServingFixture fx(options);
  fx.Start();

  HttpClient idler("127.0.0.1", fx.port());
  auto first = idler.Get("/healthz");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first.value().status, 200);

  // The idler holds the only admission slot and goes quiet. Once the idle
  // reaper fires, the slot frees up and a fresh connection is admitted
  // (answered 200) instead of shed at the door with 429.
  HttpClient next("127.0.0.1", fx.port());
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    auto retry = next.Get("/healthz");
    admitted = retry.ok() && retry.value().status == 200;
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(admitted) << "idle keep-alive connection was never reaped";

  fx.Stop();
  EXPECT_GE(fx.server().net_stats().idle_closed, 1u);
}

TEST(FactServerSocket, CacheStaysCoherentAcrossEpochPublish) {
  // Hold back 40 rows; publish them mid-serving. Structured queries only —
  // the Relation is the writer thread's (textual `where` would read its
  // dictionaries from the server thread).
  ServingFixture fx({}, 100, 60);
  fx.Start();
  HttpClient client("127.0.0.1", fx.port());

  QueryRequest topk;
  topk.k = 5;
  const std::string before = fx.Expected(topk);
  auto r1 = client.Get("/topk?k=5");  // miss: fills the cache
  auto r2 = client.Get("/topk?k=5");  // hit
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().body, before);
  EXPECT_EQ(r2.value().body, before);

  fx.IngestMore(40);  // publishes new epochs while the server is serving
  const std::string after = fx.Expected(topk);
  ASSERT_NE(after, before);  // the epoch (at least) moved

  // The stale cache entry must not be served: a publish invalidates it by
  // construction (entry.epoch != snapshot.epoch()).
  auto r3 = client.Get("/topk?k=5");  // miss again at the new epoch
  auto r4 = client.Get("/topk?k=5");  // hit at the new epoch
  ASSERT_TRUE(r3.ok() && r4.ok());
  EXPECT_EQ(r3.value().body, after);
  EXPECT_EQ(r4.value().body, after);

  auto statz = client.Get("/statz");
  ASSERT_TRUE(statz.ok());
  EXPECT_EQ(StatzCounter(statz.value().body, {"endpoints", "topk", "requests"}),
            4u);
  EXPECT_EQ(
      StatzCounter(statz.value().body, {"endpoints", "topk", "cache_hits"}),
      2u);
}

TEST(FactServerSocket, QuitQuitQuitStopsServeGracefully) {
  ServingFixture fx;
  fx.Start();
  {
    HttpClient client("127.0.0.1", fx.port());
    auto r = client.Post("/quitquitquit", "");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().status, 200);
    EXPECT_EQ(r.value().body, "{\"schema\":1,\"status\":\"shutting down\"}");
  }
  fx.Join();  // Serve() returns on its own, no external stop needed
  EXPECT_TRUE(fx.serve_status().ok()) << fx.serve_status().ToString();
}

}  // namespace
}  // namespace net
}  // namespace sitfact
