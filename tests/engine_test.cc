// Tests for the DiscoveryEngine facade, the by-name algorithm factory, and
// the fact narrator.

#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/narrator.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::PaperTableI;

TEST(Factory, CreatesEveryPaperAlgorithm) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  for (const char* name :
       {"BruteForce", "BaselineSeq", "BaselineIdx", "C-CSC", "BottomUp",
        "TopDown", "SBottomUp", "STopDown"}) {
    auto d = DiscoveryEngine::CreateDiscoverer(name, &r, {});
    ASSERT_TRUE(d.ok()) << name;
    EXPECT_EQ(d.value()->name(), name);
  }
}

TEST(Factory, FileVariantsNeedDirectory) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  EXPECT_FALSE(DiscoveryEngine::CreateDiscoverer("FSTopDown", &r, {}).ok());
  auto dir =
      (std::filesystem::temp_directory_path() / "sitfact_factory").string();
  auto d = DiscoveryEngine::CreateDiscoverer("FSTopDown", &r, {}, dir);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value()->name(), "FSTopDown");
  auto b = DiscoveryEngine::CreateDiscoverer("FSBottomUp", &r, {}, dir + "2");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value()->name(), "FSBottomUp");
}

TEST(Factory, RejectsUnknownNames) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  auto d = DiscoveryEngine::CreateDiscoverer("QuantumSkyline", &r, {});
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(Engine, AppendDiscoversRanksAndSelectsProminent) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  auto disc = DiscoveryEngine::CreateDiscoverer("STopDown", &r, {});
  ASSERT_TRUE(disc.ok());
  DiscoveryEngine::Config config;
  config.tau = 3.0;
  DiscoveryEngine engine(&r, std::move(disc).value(), config);

  ArrivalReport last;
  for (const Row& row : data.rows()) last = engine.Append(row);

  EXPECT_EQ(last.tuple, 6u);
  EXPECT_EQ(last.facts.size(), 195u);
  EXPECT_EQ(last.ranked.size(), 195u);
  ASSERT_FALSE(last.prominent.empty());
  // All prominent facts tie at the maximum (5; see paper_examples_test).
  for (const auto& f : last.prominent) {
    EXPECT_DOUBLE_EQ(f.prominence, 5.0);
    EXPECT_GE(f.prominence, config.tau);
  }
}

TEST(Engine, RankingOffSkipsProminence) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  auto disc = DiscoveryEngine::CreateDiscoverer("BaselineSeq", &r, {});
  ASSERT_TRUE(disc.ok());
  DiscoveryEngine::Config config;
  config.rank_facts = false;
  DiscoveryEngine engine(&r, std::move(disc).value(), config);
  ArrivalReport report = engine.Append(data.rows()[0]);
  EXPECT_FALSE(report.facts.empty());
  EXPECT_TRUE(report.ranked.empty());
  EXPECT_TRUE(report.prominent.empty());
}

TEST(Narrator, ProducesReadableSentences) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  auto disc = DiscoveryEngine::CreateDiscoverer("BottomUp", &r, {});
  ASSERT_TRUE(disc.ok());
  DiscoveryEngine engine(&r, std::move(disc).value(), {});
  ArrivalReport last;
  for (const Row& row : data.rows()) last = engine.Append(row);

  FactNarrator narrator(&r, r.schema().DimensionIndex("player"));
  ASSERT_FALSE(last.ranked.empty());
  std::string text = narrator.Narrate(last.tuple, last.ranked.front());
  EXPECT_NE(text.find("Wesley"), std::string::npos);
  EXPECT_NE(text.find("undominated"), std::string::npos);
  EXPECT_NE(text.find("prominence"), std::string::npos);

  std::string summary = narrator.Summarize(last.ranked.front());
  EXPECT_NE(summary.find("prominence="), std::string::npos);

  // Without an entity dimension the sentence still renders.
  FactNarrator anon(&r);
  std::string anon_text = anon.Narrate(last.tuple, last.ranked.front());
  EXPECT_NE(anon_text.find("undominated"), std::string::npos);
}

TEST(Engine, StatsAccumulateAcrossArrivals) {
  Dataset data = PaperTableI();
  Relation r(data.schema());
  auto disc_or = DiscoveryEngine::CreateDiscoverer("BottomUp", &r, {});
  ASSERT_TRUE(disc_or.ok());
  Discoverer* raw = disc_or.value().get();
  DiscoveryEngine engine(&r, std::move(disc_or).value(), {});
  for (const Row& row : data.rows()) engine.Append(row);
  EXPECT_EQ(raw->stats().arrivals, data.size());
  EXPECT_GT(raw->stats().constraints_traversed, 0u);
  EXPECT_GT(raw->StoredTupleCount(), 0u);
  EXPECT_GT(raw->ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace sitfact
