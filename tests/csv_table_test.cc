// Tests for io/csv_table.h: schema-agnostic CSV reading with quoting, BOM
// and CRLF tolerance, plus the by-name Dataset projection.

#include "io/csv_table.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/csv.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

namespace fs = std::filesystem;

class CsvFile {
 public:
  explicit CsvFile(const std::string& contents)
      : path_((fs::temp_directory_path() /
               ("sitfact_csv_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++) + ".csv"))
                  .string()) {
    std::ofstream f(path_, std::ios::binary);
    f << contents;
  }
  ~CsvFile() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int CsvFile::counter_ = 0;

TEST(CsvHelpers, QuoteRoundTrip) {
  EXPECT_EQ(CsvQuote("plain"), "plain");
  EXPECT_EQ(CsvQuote("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvQuote("with\"quote"), "\"with\"\"quote\"");

  std::vector<std::string> fields;
  ASSERT_TRUE(SplitCsvLine("a,\"b,c\",\"d\"\"e\"", &fields).ok());
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvHelpers, UnterminatedQuoteFails) {
  std::vector<std::string> fields;
  EXPECT_EQ(SplitCsvLine("a,\"unterminated", &fields).code(),
            StatusCode::kCorruption);
}

TEST(CsvTable, BasicRead) {
  CsvFile file("name,team,points\nAlice,Red,10\nBob,Blue,20\n");
  auto table_or = CsvTable::Read(file.path());
  ASSERT_TRUE(table_or.ok()) << table_or.status().ToString();
  const CsvTable& t = table_or.value();
  EXPECT_EQ(t.header(), (std::vector<std::string>{"name", "team", "points"}));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[1][0], "Bob");
  EXPECT_EQ(t.ColumnIndex("team"), 1);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(CsvTable, ToleratesBomCrlfAndBlankLines) {
  CsvFile file("\xEF\xBB\xBFname,points\r\nAlice,10\r\n\r\nBob,20\r\n");
  auto table_or = CsvTable::Read(file.path());
  ASSERT_TRUE(table_or.ok()) << table_or.status().ToString();
  const CsvTable& t = table_or.value();
  EXPECT_EQ(t.header()[0], "name");  // BOM stripped
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][1], "10");  // no trailing \r
}

TEST(CsvTable, QuotedFieldsWithCommas) {
  CsvFile file("player,college\nJones,\"Texas A&M, College Station\"\n");
  auto table_or = CsvTable::Read(file.path());
  ASSERT_TRUE(table_or.ok());
  EXPECT_EQ(table_or.value().rows()[0][1], "Texas A&M, College Station");
}

TEST(CsvTable, RaggedRowFails) {
  CsvFile file("a,b,c\n1,2\n");
  auto table_or = CsvTable::Read(file.path());
  EXPECT_EQ(table_or.status().code(), StatusCode::kCorruption);
}

TEST(CsvTable, EmptyFileFails) {
  CsvFile file("");
  EXPECT_EQ(CsvTable::Read(file.path()).status().code(),
            StatusCode::kCorruption);
}

TEST(CsvTable, MissingFileFails) {
  EXPECT_EQ(CsvTable::Read("/nonexistent/sitfact.csv").status().code(),
            StatusCode::kIoError);
}

TEST(DatasetFromCsvTable, MapsColumnsByNameInAnyOrder) {
  // File column order deliberately differs from schema order.
  CsvFile file("points,team,player,fouls\n10,Red,Alice,2\n20,Blue,Bob,3\n");
  auto table_or = CsvTable::Read(file.path());
  ASSERT_TRUE(table_or.ok());

  Schema schema({{"player"}, {"team"}},
                {{"points", Direction::kLargerIsBetter},
                 {"fouls", Direction::kSmallerIsBetter}});
  auto data_or = DatasetFromCsvTable(table_or.value(), schema);
  ASSERT_TRUE(data_or.ok()) << data_or.status().ToString();
  const Dataset& d = data_or.value();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.rows()[0].dimensions,
            (std::vector<std::string>{"Alice", "Red"}));
  EXPECT_EQ(d.rows()[0].measures, (std::vector<double>{10, 2}));
  EXPECT_EQ(d.rows()[1].dimensions,
            (std::vector<std::string>{"Bob", "Blue"}));
}

TEST(DatasetFromCsvTable, MissingColumnFails) {
  CsvFile file("a,b\nx,1\n");
  auto table_or = CsvTable::Read(file.path());
  ASSERT_TRUE(table_or.ok());
  Schema schema({{"a"}}, {{"missing", Direction::kLargerIsBetter}});
  EXPECT_EQ(DatasetFromCsvTable(table_or.value(), schema).status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetFromCsvTable, NonNumericMeasureFails) {
  CsvFile file("a,m\nx,notanumber\n");
  auto table_or = CsvTable::Read(file.path());
  ASSERT_TRUE(table_or.ok());
  Schema schema({{"a"}}, {{"m", Direction::kLargerIsBetter}});
  EXPECT_EQ(DatasetFromCsvTable(table_or.value(), schema).status().code(),
            StatusCode::kCorruption);
}

TEST(DatasetFromCsvTable, RoundTripWithDatasetWriteCsv) {
  // Dataset::WriteCsv output must be readable through CsvTable +
  // DatasetFromCsvTable with identical content.
  Dataset original = testing_util::PaperTableI();
  std::string path =
      (fs::temp_directory_path() /
       ("sitfact_csv_roundtrip_" + std::to_string(::getpid()) + ".csv"))
          .string();
  ASSERT_TRUE(original.WriteCsv(path).ok());

  auto table_or = CsvTable::Read(path);
  ASSERT_TRUE(table_or.ok());
  auto data_or = DatasetFromCsvTable(table_or.value(), original.schema());
  std::error_code ec;
  fs::remove(path, ec);
  ASSERT_TRUE(data_or.ok());
  const Dataset& loaded = data_or.value();
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.rows()[i].dimensions, original.rows()[i].dimensions);
    EXPECT_EQ(loaded.rows()[i].measures, original.rows()[i].measures);
  }
}

}  // namespace
}  // namespace sitfact
