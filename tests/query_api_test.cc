// Tests for service/query_api.h + service/filter_parse.h: the unified
// request/response layer every query surface funnels through. Covers the
// Page pagination contract (differentially against a TopK-filter brute
// force), ExecuteQuery's per-kind validation, and the shared textual filter
// grammar whose error messages are pinned here (CLI and HTTP server emit
// these exact strings).

#include "service/query_api.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/fact_service.h"
#include "service/filter_parse.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

struct Fixture {
  Dataset data;
  Relation rel;
  std::unique_ptr<DiscoveryEngine> engine;
  std::unique_ptr<FactService> service;

  explicit Fixture(int n = 100, uint64_t seed = 11)
      : data(RandomDataset(Config(n, seed))), rel(data.schema()) {
    auto disc_or = DiscoveryEngine::CreateDiscoverer("STopDown", &rel, {});
    EXPECT_TRUE(disc_or.ok());
    DiscoveryEngine::Config config;
    config.tau = 2.0;
    engine = std::make_unique<DiscoveryEngine>(
        &rel, std::move(disc_or).value(), config);
    service = std::make_unique<FactService>(&rel);
    for (const Row& row : data.rows()) {
      service->OnArrival(engine->Append(row));
    }
  }

  static RandomDataConfig Config(int n, uint64_t seed) {
    RandomDataConfig cfg;
    cfg.num_tuples = n;
    cfg.seed = seed;
    cfg.num_dims = 3;
    cfg.num_measures = 2;
    return cfg;
  }
};

std::vector<uint32_t> Ids(const std::vector<FactService::FactView>& views) {
  std::vector<uint32_t> ids;
  for (const auto& v : views) ids.push_back(v.id);
  return ids;
}

/// Drains every page of a paginated call into one id list.
template <typename NextPage>
std::vector<uint32_t> Drain(NextPage next_page) {
  std::vector<uint32_t> ids;
  std::optional<TopKCursor> cursor;
  for (;;) {
    FactService::Page p = next_page(cursor);
    for (const auto& v : p.facts) ids.push_back(v.id);
    if (!p.next.has_value()) break;
    cursor = p.next;
  }
  return ids;
}

TEST(Pagination, FactsForTuplePagesMatchTopKDifferential) {
  Fixture fx(120, 3);
  FactService::Snapshot snap = fx.service->Acquire();
  FactFilter all;
  for (TupleId t = 0; t < fx.rel.size(); ++t) {
    // Independent oracle: TopK with a tuple filter returns the same record
    // set in prominence order; re-sorting by id gives the per-tuple scan
    // order.
    FactFilter mine;
    mine.tuple = t;
    std::vector<uint32_t> expected =
        Ids(snap.TopK(snap.fact_count() + 1, mine).facts);
    std::sort(expected.begin(), expected.end());
    for (size_t page : {size_t{1}, size_t{3}, size_t{1000}}) {
      SCOPED_TRACE("tuple " + std::to_string(t) + " page " +
                   std::to_string(page));
      ASSERT_EQ(Drain([&](const std::optional<TopKCursor>& c) {
                  return snap.FactsForTuple(t, all, page, c);
                }),
                expected);
    }
  }
}

TEST(Pagination, FactsInWindowPagesMatchTopKDifferential) {
  Fixture fx(120, 5);
  FactService::Snapshot snap = fx.service->Acquire();
  FactFilter all;
  const uint64_t last = snap.arrivals() - 1;
  const std::pair<uint64_t, uint64_t> windows[] = {
      {0, last}, {10, 30}, {last, last}, {last + 5, last + 9}};
  for (auto [first, second] : windows) {
    FactFilter in_window;
    in_window.min_arrival = first;
    in_window.max_arrival = second;
    std::vector<uint32_t> expected =
        Ids(snap.TopK(snap.fact_count() + 1, in_window).facts);
    std::sort(expected.begin(), expected.end());
    for (size_t page : {size_t{1}, size_t{7}, size_t{1000}}) {
      SCOPED_TRACE(std::to_string(first) + ":" + std::to_string(second) +
                   " page " + std::to_string(page));
      ASSERT_EQ(Drain([&](const std::optional<TopKCursor>& c) {
                  return snap.FactsInWindow(first, second, all, page, c);
                }),
                expected);
    }
  }
}

TEST(ExecuteQuery, EveryKindMatchesDirectSnapshotCalls) {
  Fixture fx(100, 7);
  FactService::Snapshot snap = fx.service->Acquire();

  QueryRequest topk;
  topk.k = 12;
  auto r = ExecuteQuery(snap, topk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().epoch, snap.epoch());
  EXPECT_EQ(Ids(r.value().facts), Ids(snap.TopK(12).facts));

  QueryRequest per_tuple;
  per_tuple.kind = QueryKind::kFactsForTuple;
  per_tuple.tuple = 9;
  per_tuple.k = 1000;
  r = ExecuteQuery(snap, per_tuple);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(r.value().facts),
            Ids(snap.FactsForTuple(9, FactFilter(), 1000).facts));

  QueryRequest window;
  window.kind = QueryKind::kFactsInWindow;
  window.window_first = 5;
  window.window_last = 25;
  window.k = 1000;
  r = ExecuteQuery(snap, window);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(r.value().facts),
            Ids(snap.FactsInWindow(5, 25, FactFilter(), 1000).facts));

  QueryRequest about;
  about.kind = QueryKind::kAbout;
  about.filter.about = Constraint::ForTuple(fx.rel, 4, 0b001);
  about.k = 1000;
  r = ExecuteQuery(snap, about);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(r.value().facts),
            Ids(snap.About(*about.filter.about, 1000).facts));

  QueryRequest explain;
  explain.kind = QueryKind::kExplain;
  explain.record = 0;
  r = ExecuteQuery(snap, explain);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().facts.size(), 1u);
  EXPECT_EQ(r.value().facts[0].id, 0u);
  ASSERT_TRUE(r.value().explanation.has_value());
  EXPECT_EQ(*r.value().explanation, snap.Explain(r.value().facts[0]));
}

TEST(ExecuteQuery, ValidationMessagesArePinned) {
  Fixture fx(30, 9);
  FactService::Snapshot snap = fx.service->Acquire();
  const struct {
    QueryRequest request;
    std::string message;
  } cases[] = {
      {[] {
         QueryRequest q;
         q.kind = QueryKind::kAbout;
         return q;
       }(),
       "about query needs a constraint (filter.about / 'where')"},
      {[] {
         QueryRequest q;
         q.kind = QueryKind::kFactsForTuple;
         return q;
       }(),
       "facts_for_tuple query needs a tuple id"},
      {[] {
         QueryRequest q;
         q.kind = QueryKind::kFactsInWindow;
         return q;
       }(),
       "facts_in_window query needs a first:last arrival window"},
      {[] {
         QueryRequest q;
         q.kind = QueryKind::kFactsInWindow;
         q.window_first = 9;
         q.window_last = 3;
         return q;
       }(),
       "--window is reversed: 9:3"},
      {[] {
         QueryRequest q;
         q.kind = QueryKind::kExplain;
         return q;
       }(),
       "explain query needs a record id"},
  };
  for (const auto& c : cases) {
    auto r = ExecuteQuery(snap, c.request);
    ASSERT_FALSE(r.ok()) << c.message;
    EXPECT_EQ(r.status().message(), c.message);
  }

  QueryRequest missing;
  missing.kind = QueryKind::kExplain;
  missing.record = 1u << 30;
  auto r = ExecuteQuery(snap, missing);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(),
            "record " + std::to_string(1u << 30) + " does not exist at epoch " +
                std::to_string(snap.epoch()));
}

TEST(QueryKindNames, RoundTripAndRejection) {
  for (QueryKind k : {QueryKind::kTopK, QueryKind::kFactsForTuple,
                      QueryKind::kFactsInWindow, QueryKind::kAbout,
                      QueryKind::kExplain}) {
    auto back = ParseQueryKind(QueryKindName(k));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), k);
  }
  auto bad = ParseQueryKind("topj");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "unknown query kind 'topj'");
}

// --- the shared textual filter grammar (CLI flags == wire fields) ---

TEST(FilterGrammar, WhereResolvesAgainstDictionaries) {
  Fixture fx(60, 13);
  std::string note;
  auto c = ParseWhereConstraint("d0=v1,d2=v0", fx.rel, &note);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(note.empty());
  EXPECT_EQ(c.value().bound_mask(), DimMask{0b101});

  // A value that never occurs is a provably-empty context, not an error.
  note.clear();
  c = ParseWhereConstraint("d1=zebra", fx.rel, &note);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(note, "value 'zebra' never occurs in d1");
  EXPECT_EQ(c.value().bound_mask(), DimMask{0});

  // And ParseFactFilter mirrors it: empty note, no `about` constraint.
  FactFilterSpec spec;
  spec.where = "d1=zebra";
  note.clear();
  auto f = ParseFactFilter(spec, fx.rel, &note);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(note, "value 'zebra' never occurs in d1");
  EXPECT_FALSE(f.value().about.has_value());
}

TEST(FilterGrammar, ErrorMessagesArePinned) {
  Fixture fx(30, 17);
  std::string note;
  auto c = ParseWhereConstraint("d0", fx.rel, &note);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().message(), "--where clauses look like dim=value");

  c = ParseWhereConstraint("season=1996", fx.rel, &note);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().message(), "--where names no dimension: season");

  auto m = ParseSubspaceList("m0,steals", fx.rel.schema());
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().message(), "--subspace names no measure: steals");

  m = ParseSubspaceList(",", fx.rel.schema());
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().message(), "--subspace selected no measures");

  uint64_t first = 0, last = 0;
  Status w = ParseArrivalWindow("10-20", &first, &last);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.message(),
            "--window looks like FIRST:LAST (non-negative arrival sequence "
            "numbers), got '10-20'");

  w = ParseArrivalWindow("20:10", &first, &last);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.message(), "--window is reversed: 20:10");
}

TEST(FilterGrammar, FullSpecBuildsTheCombinedFilter) {
  Fixture fx(60, 19);
  FactFilterSpec spec;
  spec.where = "d0=v0";
  spec.subspace = "m1";
  spec.window = "5:40";
  spec.min_prominence = 1.5;
  spec.prominent_only = true;
  std::string note;
  auto f = ParseFactFilter(spec, fx.rel, &note);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_TRUE(note.empty());
  ASSERT_TRUE(f.value().about.has_value());
  EXPECT_EQ(f.value().about->bound_mask(), DimMask{0b001});
  EXPECT_EQ(f.value().subspace, MeasureMask{0b10});
  EXPECT_EQ(f.value().min_arrival, 5u);
  EXPECT_EQ(f.value().max_arrival, 40u);
  EXPECT_EQ(f.value().min_prominence, 1.5);
  EXPECT_TRUE(f.value().prominent_only);

  // The filter a request built from this spec executes like the direct one.
  QueryRequest req;
  req.filter = f.value();
  req.k = 1000;
  FactService::Snapshot snap = fx.service->Acquire();
  auto resp = ExecuteQuery(snap, req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(Ids(resp.value().facts), Ids(snap.TopK(1000, f.value()).facts));
}

}  // namespace
}  // namespace sitfact
