// Differential workload fuzzer: seeded randomized interleavings of
// Append / AppendBatch / Remove / Update / TopK / FactsForTuple /
// FactsInWindow driven against the sequential, sharded, and durable
// engines, with every ArrivalReport and every query result checked
// tuple-for-tuple against a brute-force oracle (quadratic skyline
// recomputation per arrival + a naive shadow copy of the fact index).
//
// Scale knobs (environment):
//   SITFACT_FUZZ_SEEDS    number of seeds per engine kind   (default 10)
//   SITFACT_FUZZ_OPS      operations per seed               (default 100)
//   SITFACT_FUZZ_SEED     run exactly this one seed (replay a CI failure)
//   SITFACT_FUZZ_SKYBAND  1: feed a second FactService with the skyband
//                         serving bands disabled the same mutation stream
//                         and require byte-identical TopK/About pages
//                         (including resume cursors) at every epoch
//
// A failure prints the seed; reproduce with
//   SITFACT_FUZZ_SEED=<seed> ./workload_fuzz_test

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/prominence.h"
#include "exec/sharded_engine.h"
#include "lattice/subspace_universe.h"
#include "persist/durable_engine.h"
#include "query/fact_index.h"
#include "service/fact_service.h"
#include "skyline/skyline_compute.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

Schema FuzzSchema() {
  return Schema({{"d0"}, {"d1"}, {"d2"}},
                {{"m0", Direction::kLargerIsBetter},
                 {"m1", Direction::kSmallerIsBetter}});
}

Row RandomRow(Rng* rng) {
  Row row;
  for (int d = 0; d < 3; ++d) {
    row.dimensions.push_back("v" + std::to_string(rng->NextBounded(3)));
  }
  for (int j = 0; j < 2; ++j) {
    row.measures.push_back(static_cast<double>(rng->NextBounded(6)));
  }
  return row;
}

/// The brute-force oracle: a shadow Relation plus quadratic recomputation
/// of every report, and a naive shadow of the fact index for query checks.
class Oracle {
 public:
  Oracle() : relation_(FuzzSchema()), universe_(2, 2) {}

  const Relation& relation() const { return relation_; }

  ArrivalReport Append(const Row& row, double tau) {
    TupleId t = relation_.Append(row);
    ArrivalReport report;
    report.tuple = t;
    // S_t: every (C, M) whose contextual skyline admits t, brute force.
    for (MeasureMask m : universe_.masks()) {
      for (DimMask mask :
           ComputeSkylineConstraintMasks(relation_, t, m, /*max_bound=*/3,
                                         relation_.size())) {
        report.facts.push_back(
            {Constraint::ForTuple(relation_, t, mask), m});
      }
    }
    CanonicalizeFacts(&report.facts);
    // Prominence: quadratic context / skyline sizes; ranked descending,
    // stable in canonical order (the contract of RankAll).
    for (const SkylineFact& f : report.facts) {
      RankedFact rf;
      rf.fact = f;
      rf.context_size =
          SelectContext(relation_, f.constraint, relation_.size()).size();
      rf.skyline_size = ComputeContextualSkyline(relation_, f.constraint,
                                                 f.subspace,
                                                 relation_.size())
                            .size();
      rf.prominence = static_cast<double>(rf.context_size) /
                      static_cast<double>(rf.skyline_size);
      report.ranked.push_back(rf);
    }
    std::stable_sort(report.ranked.begin(), report.ranked.end(),
                     [](const RankedFact& a, const RankedFact& b) {
                       return a.prominence > b.prominence;
                     });
    report.prominent = SelectProminent(report.ranked, tau);

    // Shadow index bookkeeping, mirroring FactIndex insertion order.
    uint64_t seq = arrivals_++;
    for (const RankedFact& rf : report.ranked) {
      bool prominent = false;
      for (const RankedFact& p : report.prominent) {
        if (p.fact == rf.fact) prominent = true;
      }
      records_.push_back({t, seq, rf.fact, rf.prominence, prominent, true});
    }
    live_.push_back(t);
    return report;
  }

  void Remove(TupleId t) {
    relation_.MarkDeleted(t);
    live_.erase(std::find(live_.begin(), live_.end(), t));
    for (ShadowRecord& r : records_) {
      if (r.tuple == t) r.live = false;
    }
  }

  const std::vector<TupleId>& live() const { return live_; }
  uint64_t arrivals() const { return arrivals_; }

  /// Expected TopK ids (full ordered list; callers slice to k).
  std::vector<uint32_t> TopKIds(const FactFilter& filter) const {
    std::vector<uint32_t> ids;
    for (uint32_t i = 0; i < records_.size(); ++i) {
      if (Matches(filter, records_[i])) ids.push_back(i);
    }
    std::stable_sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
      if (records_[a].prominence != records_[b].prominence) {
        return records_[a].prominence > records_[b].prominence;
      }
      return a < b;
    });
    return ids;
  }

  std::vector<uint32_t> IdsForTuple(TupleId t) const {
    std::vector<uint32_t> ids;
    for (uint32_t i = 0; i < records_.size(); ++i) {
      if (records_[i].tuple == t && records_[i].live) ids.push_back(i);
    }
    return ids;
  }

  std::vector<uint32_t> IdsInWindow(uint64_t a0, uint64_t a1) const {
    std::vector<uint32_t> ids;
    for (uint32_t i = 0; i < records_.size(); ++i) {
      if (records_[i].live && records_[i].arrival_seq >= a0 &&
          records_[i].arrival_seq <= a1) {
        ids.push_back(i);
      }
    }
    return ids;
  }

  struct ShadowRecord {
    TupleId tuple;
    uint64_t arrival_seq;
    SkylineFact fact;
    double prominence;
    bool prominent;
    bool live;
  };
  const ShadowRecord& record(uint32_t id) const { return records_[id]; }

 private:
  bool Matches(const FactFilter& f, const ShadowRecord& r) const {
    if (!f.include_dead && !r.live) return false;
    if (f.tuple.has_value() && r.tuple != *f.tuple) return false;
    if (f.subspace.has_value() && r.fact.subspace != *f.subspace) {
      return false;
    }
    if (f.bound_mask.has_value() &&
        r.fact.constraint.bound_mask() != *f.bound_mask) {
      return false;
    }
    if (f.about.has_value() &&
        !r.fact.constraint.SubsumedByOrEqual(*f.about)) {
      return false;
    }
    if (r.arrival_seq < f.min_arrival || r.arrival_seq > f.max_arrival) {
      return false;
    }
    if (r.prominence < f.min_prominence) return false;
    if (f.prominent_only && !r.prominent) return false;
    return true;
  }

  Relation relation_;
  SubspaceUniverse universe_;
  std::vector<TupleId> live_;
  std::vector<ShadowRecord> records_;
  uint64_t arrivals_ = 0;
};

/// Uniform driver interface over the three engine kinds.
class EngineUnderTest {
 public:
  virtual ~EngineUnderTest() = default;
  virtual ArrivalReport Append(const Row& row) = 0;
  virtual std::vector<ArrivalReport> AppendBatch(
      std::span<const Row> rows) = 0;
  virtual Status Remove(TupleId t) = 0;
  virtual StatusOr<ArrivalReport> Update(TupleId t, const Row& row) = 0;
  virtual const Relation& relation() const = 0;
};

class SequentialUnderTest : public EngineUnderTest {
 public:
  SequentialUnderTest(double tau) : relation_(FuzzSchema()) {
    auto disc_or =
        DiscoveryEngine::CreateDiscoverer("STopDown", &relation_, {});
    SITFACT_CHECK(disc_or.ok());
    DiscoveryEngine::Config config;
    config.tau = tau;
    engine_ = std::make_unique<DiscoveryEngine>(
        &relation_, std::move(disc_or).value(), config);
  }
  ArrivalReport Append(const Row& row) override {
    return engine_->Append(row);
  }
  std::vector<ArrivalReport> AppendBatch(std::span<const Row> rows) override {
    std::vector<ArrivalReport> out;
    for (const Row& row : rows) out.push_back(engine_->Append(row));
    return out;
  }
  Status Remove(TupleId t) override { return engine_->Remove(t); }
  StatusOr<ArrivalReport> Update(TupleId t, const Row& row) override {
    return engine_->Update(t, row);
  }
  const Relation& relation() const override { return relation_; }

 private:
  Relation relation_;
  std::unique_ptr<DiscoveryEngine> engine_;
};

class ShardedUnderTest : public EngineUnderTest {
 public:
  ShardedUnderTest(double tau) : relation_(FuzzSchema()) {
    ShardedEngine::Config config;
    config.num_shards = 3;
    config.num_threads = 2;
    config.tau = tau;
    engine_ = std::make_unique<ShardedEngine>(&relation_, config);
  }
  ArrivalReport Append(const Row& row) override {
    return engine_->Append(row);
  }
  std::vector<ArrivalReport> AppendBatch(std::span<const Row> rows) override {
    return engine_->AppendBatch(rows);
  }
  Status Remove(TupleId t) override { return engine_->Remove(t); }
  StatusOr<ArrivalReport> Update(TupleId t, const Row& row) override {
    return engine_->Update(t, row);
  }
  const Relation& relation() const override { return relation_; }

 private:
  Relation relation_;
  std::unique_ptr<ShardedEngine> engine_;
};

class DurableUnderTest : public EngineUnderTest {
 public:
  DurableUnderTest(double tau, const std::string& dir) {
    persist::DurableOptions opts;
    opts.dir = dir;
    opts.tau = tau;
    opts.checkpoint_every = 17;  // exercise mid-stream checkpoints
    auto durable_or = persist::DurableEngine::Open(opts, FuzzSchema());
    SITFACT_CHECK(durable_or.ok());
    engine_ = std::move(durable_or).value();
  }
  ArrivalReport Append(const Row& row) override {
    auto report_or = engine_->Append(row);
    SITFACT_CHECK(report_or.ok());
    return std::move(report_or).value();
  }
  std::vector<ArrivalReport> AppendBatch(std::span<const Row> rows) override {
    persist::DurableEngine::BatchResult result = engine_->AppendBatch(rows);
    SITFACT_CHECK(result.status.ok());
    return std::move(result.reports);
  }
  Status Remove(TupleId t) override { return engine_->Remove(t); }
  StatusOr<ArrivalReport> Update(TupleId t, const Row& row) override {
    return engine_->Update(t, row);
  }
  const Relation& relation() const override { return engine_->relation(); }

 private:
  std::unique_ptr<persist::DurableEngine> engine_;
};

void ExpectReportsEqual(const ArrivalReport& actual,
                        const ArrivalReport& expected, const Relation& r) {
  ASSERT_EQ(actual.tuple, expected.tuple);
  ASSERT_EQ(actual.facts, expected.facts)
      << "facts mismatch for tuple " << expected.tuple << "\nactual:\n"
      << testing_util::DescribeFacts(r, actual.facts) << "expected:\n"
      << testing_util::DescribeFacts(r, expected.facts);
  ASSERT_EQ(actual.ranked.size(), expected.ranked.size());
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    ASSERT_EQ(actual.ranked[i].fact, expected.ranked[i].fact) << "rank " << i;
    ASSERT_EQ(actual.ranked[i].context_size, expected.ranked[i].context_size);
    ASSERT_EQ(actual.ranked[i].skyline_size, expected.ranked[i].skyline_size);
    ASSERT_EQ(actual.ranked[i].prominence, expected.ranked[i].prominence);
  }
  ASSERT_EQ(actual.prominent.size(), expected.prominent.size());
  for (size_t i = 0; i < expected.prominent.size(); ++i) {
    ASSERT_EQ(actual.prominent[i].fact, expected.prominent[i].fact);
  }
}

FactFilter RandomFilter(Rng* rng, const Oracle& oracle) {
  FactFilter f;
  switch (rng->NextBounded(5)) {
    case 0:
      break;  // unfiltered
    case 1:
      f.subspace = static_cast<MeasureMask>(1 + rng->NextBounded(3));
      break;
    case 2:
      f.bound_mask = static_cast<DimMask>(rng->NextBounded(8));
      break;
    case 3:
      f.min_prominence = 1.0 + static_cast<double>(rng->NextBounded(4));
      break;
    case 4:
      f.prominent_only = true;
      break;
  }
  if (!oracle.live().empty() && rng->NextBool(0.3)) {
    f.about = Constraint::ForTuple(
        oracle.relation(),
        oracle.live()[rng->NextBounded(oracle.live().size())],
        static_cast<DimMask>(1u << rng->NextBounded(3)));
  }
  return f;
}

void ExpectPagesEqual(const FactService::Page& a, const FactService::Page& b) {
  ASSERT_EQ(a.epoch, b.epoch);
  ASSERT_EQ(a.facts.size(), b.facts.size());
  for (size_t i = 0; i < a.facts.size(); ++i) {
    ASSERT_EQ(a.facts[i].id, b.facts[i].id) << "rank " << i;
    ASSERT_EQ(a.facts[i].fact, b.facts[i].fact);
    ASSERT_EQ(a.facts[i].prominence, b.facts[i].prominence);
    ASSERT_EQ(a.facts[i].prominent, b.facts[i].prominent);
  }
  ASSERT_EQ(a.next.has_value(), b.next.has_value());
  if (a.next.has_value()) {
    ASSERT_EQ(a.next->record_id, b.next->record_id);
    ASSERT_EQ(a.next->prominence, b.next->prominence);
  }
}

/// The skyband acceptance differential: the index may change the cost of a
/// page, never its bytes. Drains TopK with the same cursor stream from both
/// services comparing every page (ids, prominences, next cursors), then an
/// About page when the filter carries a subsumption constraint.
void ExpectSkybandPagesIdentical(const FactService& on, const FactService& off,
                                 size_t k, const FactFilter& filter) {
  FactService::Snapshot a = on.Acquire();
  FactService::Snapshot b = off.Acquire();
  ASSERT_EQ(a.epoch(), b.epoch());
  std::optional<TopKCursor> cursor;
  for (;;) {
    FactService::Page pa = a.TopK(k, filter, cursor);
    FactService::Page pb = b.TopK(k, filter, cursor);
    ExpectPagesEqual(pa, pb);
    if (::testing::Test::HasFatalFailure()) return;
    if (!pa.next.has_value()) break;
    cursor = pa.next;
  }
  if (filter.about.has_value()) {
    ExpectPagesEqual(a.About(*filter.about, k), b.About(*filter.about, k));
  }
}

/// One fuzzing episode: `ops` random operations on `engine`, every result
/// checked against the oracle. `*executed` counts operations run.
void RunEpisode(EngineUnderTest* engine, uint64_t seed, int ops,
                int* executed) {
  Rng rng(seed * 7919 + 1);
  const double tau = 1.5 + 0.5 * static_cast<double>(seed % 4);
  Oracle oracle;
  FactService service(&engine->relation());
  // SITFACT_FUZZ_SKYBAND=1: same mutation stream into a service with the
  // serving bands forced off; every query op also diffs the two.
  std::unique_ptr<FactService> bands_off;
  if (EnvInt("SITFACT_FUZZ_SKYBAND", 0) != 0) {
    FactService::Options off;
    off.skyband_index = false;
    bands_off = std::make_unique<FactService>(&engine->relation(), off);
  }

  for (int op = 0; op < ops; ++op) {
    ++*executed;
    SCOPED_TRACE("op " + std::to_string(op));
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 45 || oracle.live().empty()) {
      Row row = RandomRow(&rng);
      ArrivalReport actual = engine->Append(row);
      ArrivalReport expected = oracle.Append(row, tau);
      ExpectReportsEqual(actual, expected, oracle.relation());
      service.OnArrival(actual);
      if (bands_off != nullptr) {
        bands_off->OnArrival(actual);
      }
    } else if (dice < 60) {
      const size_t n = 2 + rng.NextBounded(5);
      std::vector<Row> rows;
      for (size_t i = 0; i < n; ++i) rows.push_back(RandomRow(&rng));
      std::vector<ArrivalReport> actual =
          engine->AppendBatch(std::span<const Row>(rows));
      ASSERT_EQ(actual.size(), rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        ArrivalReport expected = oracle.Append(rows[i], tau);
        ExpectReportsEqual(actual[i], expected, oracle.relation());
        service.OnArrival(actual[i]);
        if (bands_off != nullptr) bands_off->OnArrival(actual[i]);
      }
    } else if (dice < 72) {
      TupleId t = oracle.live()[rng.NextBounded(oracle.live().size())];
      ASSERT_TRUE(engine->Remove(t).ok()) << "remove " << t;
      oracle.Remove(t);
      ASSERT_TRUE(service.OnRemove(t).ok());
      if (bands_off != nullptr) {
        ASSERT_TRUE(bands_off->OnRemove(t).ok());
      }
    } else if (dice < 80) {
      TupleId t = oracle.live()[rng.NextBounded(oracle.live().size())];
      Row row = RandomRow(&rng);
      auto actual_or = engine->Update(t, row);
      ASSERT_TRUE(actual_or.ok());
      oracle.Remove(t);
      ArrivalReport expected = oracle.Append(row, tau);
      ExpectReportsEqual(actual_or.value(), expected, oracle.relation());
      ASSERT_TRUE(service.OnUpdate(t, actual_or.value()).ok());
      if (bands_off != nullptr) {
        ASSERT_TRUE(bands_off->OnUpdate(t, actual_or.value()).ok());
      }
    } else if (dice < 90) {
      const size_t k = 1 + rng.NextBounded(12);
      FactFilter filter = RandomFilter(&rng, oracle);
      std::vector<uint32_t> expected = oracle.TopKIds(filter);
      if (expected.size() > k) expected.resize(k);
      FactService::Page page = service.TopK(k, filter);
      ASSERT_EQ(page.facts.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        const Oracle::ShadowRecord& want = oracle.record(expected[i]);
        ASSERT_EQ(page.facts[i].id, expected[i]) << "rank " << i;
        ASSERT_EQ(page.facts[i].tuple, want.tuple);
        ASSERT_EQ(page.facts[i].fact, want.fact);
        ASSERT_EQ(page.facts[i].prominence, want.prominence);
        ASSERT_EQ(page.facts[i].prominent, want.prominent);
      }
      if (bands_off != nullptr) {
        ExpectSkybandPagesIdentical(service, *bands_off, k, filter);
      }
    } else if (dice < 95) {
      const TupleId t = static_cast<TupleId>(
          rng.NextBounded(oracle.relation().size() + 2));
      std::vector<uint32_t> expected = oracle.IdsForTuple(t);
      // Drain in small random pages so the resume cursor is fuzzed too.
      std::vector<FactService::FactView> actual;
      {
        FactService::Snapshot snap = service.Acquire();
        const size_t page = 1 + rng.NextBounded(6);
        std::optional<TopKCursor> cursor;
        for (;;) {
          FactService::Page p = snap.FactsForTuple(t, {}, page, cursor);
          actual.insert(actual.end(), p.facts.begin(), p.facts.end());
          if (!p.next.has_value()) break;
          cursor = p.next;
        }
      }
      ASSERT_EQ(actual.size(), expected.size()) << "tuple " << t;
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i].id, expected[i]);
        ASSERT_EQ(actual[i].fact, oracle.record(expected[i]).fact);
      }
    } else {
      const uint64_t arrivals = oracle.arrivals();
      const uint64_t a0 = arrivals == 0 ? 0 : rng.NextBounded(arrivals);
      const uint64_t a1 = a0 + rng.NextBounded(20);
      std::vector<uint32_t> expected = oracle.IdsInWindow(a0, a1);
      std::vector<FactService::FactView> actual;
      {
        FactService::Snapshot snap = service.Acquire();
        const size_t page = 1 + rng.NextBounded(9);
        std::optional<TopKCursor> cursor;
        for (;;) {
          FactService::Page p = snap.FactsInWindow(a0, a1, {}, page, cursor);
          actual.insert(actual.end(), p.facts.begin(), p.facts.end());
          if (!p.next.has_value()) break;
          cursor = p.next;
        }
      }
      ASSERT_EQ(actual.size(), expected.size())
          << "window [" << a0 << ", " << a1 << "]";
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i].id, expected[i]);
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class WorkloadFuzzTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<EngineUnderTest> MakeEngine(double tau, uint64_t seed) {
    const std::string kind = GetParam();
    if (kind == "sequential") {
      return std::make_unique<SequentialUnderTest>(tau);
    }
    if (kind == "sharded") return std::make_unique<ShardedUnderTest>(tau);
    if (!dir_.empty()) std::filesystem::remove_all(dir_);  // previous seed
    dir_ = (std::filesystem::temp_directory_path() /
            ("sitfact_fuzz_" + std::to_string(::getpid()) + "_" +
             std::to_string(seed)))
               .string();
    std::filesystem::remove_all(dir_);
    return std::make_unique<DurableUnderTest>(tau, dir_);
  }

  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST_P(WorkloadFuzzTest, DifferentialAgainstBruteForceOracle) {
  const int ops = EnvInt("SITFACT_FUZZ_OPS", 100);
  const int pinned = EnvInt("SITFACT_FUZZ_SEED", -1);
  const int num_seeds = pinned >= 0 ? 1 : EnvInt("SITFACT_FUZZ_SEEDS", 10);

  int iterations = 0;
  for (int i = 0; i < num_seeds; ++i) {
    const uint64_t seed = pinned >= 0 ? static_cast<uint64_t>(pinned)
                                      : static_cast<uint64_t>(i + 1);
    SCOPED_TRACE("seed " + std::to_string(seed) +
                 " (reproduce: SITFACT_FUZZ_SEED=" + std::to_string(seed) +
                 " ./workload_fuzz_test)");
    const double tau = 1.5 + 0.5 * static_cast<double>(seed % 4);
    auto engine = MakeEngine(tau, seed);
    RunEpisode(engine.get(), seed, ops, &iterations);
    if (HasFatalFailure()) {
      std::fprintf(stderr,
                   "[workload_fuzz] FAILED at seed %llu; reproduce with "
                   "SITFACT_FUZZ_SEED=%llu ./workload_fuzz_test\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  std::printf("[workload_fuzz] %s: %d differential iterations across %d "
              "seed(s)\n",
              GetParam(), iterations, num_seeds);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, WorkloadFuzzTest,
                         ::testing::Values("sequential", "sharded",
                                           "durable"),
                         [](const ::testing::TestParamInfo<const char*>&
                                info) { return std::string(info.param); });

// C-CSC pass: seeded Append/Remove/Update interleavings against the same
// brute-force oracle, facts only. C-CSC keeps no µ store, so prominence
// ranking is off and the FactService legs of the main episode don't apply;
// what this pins is that the rebuilt engine's skycube repair logic (full
// per-context replay on removal) survives arbitrary churn orders. Shares
// the SITFACT_FUZZ_SEEDS / SITFACT_FUZZ_OPS / SITFACT_FUZZ_SEED knobs.
TEST(WorkloadFuzzCcsc, ChurnFactsMatchBruteForceOracle) {
  const int ops = EnvInt("SITFACT_FUZZ_OPS", 100);
  const int pinned = EnvInt("SITFACT_FUZZ_SEED", -1);
  const int num_seeds = pinned >= 0 ? 1 : EnvInt("SITFACT_FUZZ_SEEDS", 10);

  int iterations = 0;
  for (int i = 0; i < num_seeds; ++i) {
    const uint64_t seed = pinned >= 0 ? static_cast<uint64_t>(pinned)
                                      : static_cast<uint64_t>(i + 1);
    SCOPED_TRACE("seed " + std::to_string(seed) +
                 " (reproduce: SITFACT_FUZZ_SEED=" + std::to_string(seed) +
                 " ./workload_fuzz_test)");
    Rng rng(seed * 6151 + 3);
    const double tau = 1.5 + 0.5 * static_cast<double>(seed % 4);
    Oracle oracle;

    Relation relation(FuzzSchema());
    auto disc_or = DiscoveryEngine::CreateDiscoverer("C-CSC", &relation, {});
    ASSERT_TRUE(disc_or.ok());
    DiscoveryEngine::Config config;
    config.rank_facts = false;  // no µ store behind C-CSC
    DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);

    for (int op = 0; op < ops; ++op) {
      ++iterations;
      SCOPED_TRACE("op " + std::to_string(op));
      const uint64_t dice = rng.NextBounded(100);
      if (dice < 50 || oracle.live().empty()) {
        Row row = RandomRow(&rng);
        ArrivalReport actual = engine.Append(row);
        ArrivalReport expected = oracle.Append(row, tau);
        ASSERT_EQ(actual.tuple, expected.tuple);
        ASSERT_EQ(actual.facts, expected.facts)
            << "facts mismatch for tuple " << expected.tuple << "\nactual:\n"
            << testing_util::DescribeFacts(relation, actual.facts)
            << "expected:\n"
            << testing_util::DescribeFacts(relation, expected.facts);
      } else if (dice < 75) {
        TupleId t = oracle.live()[rng.NextBounded(oracle.live().size())];
        ASSERT_TRUE(engine.Remove(t).ok()) << "remove " << t;
        oracle.Remove(t);
      } else {
        TupleId t = oracle.live()[rng.NextBounded(oracle.live().size())];
        Row row = RandomRow(&rng);
        auto actual_or = engine.Update(t, row);
        ASSERT_TRUE(actual_or.ok()) << actual_or.status().ToString();
        oracle.Remove(t);
        ArrivalReport expected = oracle.Append(row, tau);
        ASSERT_EQ(actual_or.value().facts, expected.facts)
            << "post-update facts mismatch for tuple " << expected.tuple;
      }
      if (::testing::Test::HasFatalFailure()) {
        std::fprintf(stderr,
                     "[workload_fuzz] C-CSC FAILED at seed %llu; reproduce "
                     "with SITFACT_FUZZ_SEED=%llu ./workload_fuzz_test\n",
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(seed));
        return;
      }
    }
  }
  std::printf("[workload_fuzz] ccsc: %d differential iterations across %d "
              "seed(s)\n",
              iterations, num_seeds);
}

}  // namespace
}  // namespace sitfact
