// Cross-cutting property tests: laws that must hold for any data, checked
// over randomized streams — the d̂/m̂ monotonicity of the fact sets,
// prominence bounds, storage-policy equalities between plain and sharing
// variants, and the in-place µ-store access contract.

#include <filesystem>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "core/shared_bottom_up.h"
#include "core/shared_top_down.h"
#include "core/top_down.h"
#include "storage/file_mu_store.h"
#include "storage/memory_mu_store.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::PaperTableIV;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;
using testing_util::RunStream;

// ---------------------------------------------------------------------------
// Truncation monotonicity: growing d̂ or m̂ can only add facts, and the
// facts of a truncated run are exactly the full run's facts filtered to the
// truncated space. (This is what makes d̂/m̂ sound "anti-triviality" knobs
// rather than approximations.)

class TruncationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TruncationTest, TruncatedFactsAreFilteredFullFacts) {
  RandomDataConfig cfg;
  cfg.num_tuples = 60;
  cfg.num_dims = 4;
  cfg.num_measures = 3;
  cfg.seed = GetParam();
  Dataset data = RandomDataset(cfg);

  Relation full_rel(data.schema());
  BruteForceDiscoverer full(&full_rel, {});
  auto full_stream = RunStream(&full_rel, &full, data);

  for (int dhat = 1; dhat <= 3; ++dhat) {
    for (int mhat = 1; mhat <= 2; ++mhat) {
      Relation rel(data.schema());
      BruteForceDiscoverer trunc(
          &rel, {.max_bound_dims = dhat, .max_measure_dims = mhat});
      auto trunc_stream = RunStream(&rel, &trunc, data);
      for (size_t i = 0; i < full_stream.size(); ++i) {
        std::vector<SkylineFact> filtered;
        for (const SkylineFact& f : full_stream[i]) {
          if (f.constraint.BoundCount() <= dhat &&
              PopCount(f.subspace) <= mhat) {
            filtered.push_back(f);
          }
        }
        ASSERT_EQ(filtered, trunc_stream[i])
            << "dhat=" << dhat << " mhat=" << mhat << " arrival " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationTest,
                         ::testing::Values(11u, 22u, 33u));

// ---------------------------------------------------------------------------
// Prominence bounds: every fact's prominence is >= 1 (the new tuple itself
// is in both the context and its skyline) and <= |σ_C| (skylines are
// non-empty).

TEST(ProminenceProperties, BoundsHoldOnRandomStreams) {
  RandomDataConfig cfg;
  cfg.num_tuples = 80;
  cfg.seed = 99123;
  Dataset data = RandomDataset(cfg);
  Relation rel(data.schema());
  auto disc = DiscoveryEngine::CreateDiscoverer("SBottomUp", &rel, {});
  ASSERT_TRUE(disc.ok());
  DiscoveryEngine engine(&rel, std::move(disc).value(), {});
  for (const Row& row : data.rows()) {
    ArrivalReport report = engine.Append(row);
    ASSERT_EQ(report.ranked.size(), report.facts.size());
    for (const RankedFact& f : report.ranked) {
      ASSERT_GE(f.prominence, 1.0) << FactToString(rel, f.fact);
      ASSERT_GE(f.skyline_size, 1u);
      ASSERT_LE(f.skyline_size, f.context_size);
    }
  }
}

// ---------------------------------------------------------------------------
// Fig. 10's storage-equality claims as hard invariants: the sharing variants
// use the same materialization scheme as their plain versions, so their
// stores must be byte-for-byte equivalent after any stream.

TEST(StorageEquality, SharingVariantsStoreIdentically) {
  RandomDataConfig cfg;
  cfg.num_tuples = 70;
  cfg.num_dims = 3;
  cfg.num_measures = 3;
  cfg.seed = 7777;
  Dataset data = RandomDataset(cfg);

  auto run = [&](const std::string& name, Relation* rel) {
    auto disc = DiscoveryEngine::CreateDiscoverer(name, rel, {});
    EXPECT_TRUE(disc.ok());
    auto d = std::move(disc).value();
    RunStream(rel, d.get(), data);
    return d;
  };

  Relation r1(data.schema()), r2(data.schema()), r3(data.schema()),
      r4(data.schema());
  auto bu = run("BottomUp", &r1);
  auto sbu = run("SBottomUp", &r2);
  auto td = run("TopDown", &r3);
  auto std_ = run("STopDown", &r4);

  EXPECT_EQ(bu->StoredTupleCount(), sbu->StoredTupleCount());
  EXPECT_EQ(td->StoredTupleCount(), std_->StoredTupleCount());
  EXPECT_LT(td->StoredTupleCount(), bu->StoredTupleCount());

  // Bucket-level equality across every constraint derivable from the data.
  DimMask full = FullMask(data.schema().num_dimensions());
  SubspaceUniverse universe(data.schema().num_measures(), 3);
  for (TupleId t = 0; t < r1.size(); ++t) {
    for (DimMask mask = 0; mask <= full; ++mask) {
      Constraint c = Constraint::ForTuple(r1, t, mask);
      for (MeasureMask m : universe.masks()) {
        auto bucket_of = [&](Discoverer& d) {
          std::vector<TupleId> out;
          MuStore::Context* ctx = d.mutable_store()->Find(c);
          if (ctx != nullptr) ctx->Read(m, &out);
          std::sort(out.begin(), out.end());
          return out;
        };
        ASSERT_EQ(bucket_of(*bu), bucket_of(*sbu));
        ASSERT_EQ(bucket_of(*td), bucket_of(*std_));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The in-place store contract (Direct / CommitDirect), which the hot loops
// rely on through BucketCursor.

TEST(MuStoreDirect, InPlaceMutationKeepsStatsAndContents) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  MemoryMuStore store;
  Constraint c = Constraint::ForTuple(r, 4, 0b001);
  MuStore::Context* ctx = store.GetOrCreate(c);

  // Absent bucket without create: no pointer.
  EXPECT_EQ(ctx->Direct(0b11, /*create=*/false), nullptr);

  // Create-on-demand, mutate in place, commit.
  std::vector<TupleId>* bucket = ctx->Direct(0b11, /*create=*/true);
  ASSERT_NE(bucket, nullptr);
  size_t old_size = bucket->size();
  bucket->push_back(1);
  bucket->push_back(4);
  ctx->CommitDirect(0b11, old_size);
  EXPECT_EQ(store.stats().stored_tuples, 2u);
  EXPECT_EQ(ctx->Size(0b11), 2u);

  // Shrink in place; stats must follow.
  bucket = ctx->Direct(0b11, /*create=*/false);
  ASSERT_NE(bucket, nullptr);
  old_size = bucket->size();
  bucket->pop_back();
  ctx->CommitDirect(0b11, old_size);
  EXPECT_EQ(store.stats().stored_tuples, 1u);

  // Empty-on-commit reclaims the bucket entirely.
  bucket = ctx->Direct(0b11, /*create=*/false);
  ASSERT_NE(bucket, nullptr);
  old_size = bucket->size();
  bucket->clear();
  ctx->CommitDirect(0b11, old_size);
  EXPECT_EQ(store.stats().stored_tuples, 0u);
  EXPECT_TRUE(ctx->Empty(0b11));
  EXPECT_EQ(ctx->Direct(0b11, /*create=*/false), nullptr);
}

TEST(MuStoreDirect, FileStoreDeclinesDirectAccess) {
  Dataset data = PaperTableIV();
  Relation r(data.schema());
  for (const Row& row : data.rows()) r.Append(row);
  auto dir =
      (std::filesystem::temp_directory_path() / "sitfact_direct").string();
  FileMuStore store(dir);
  MuStore::Context* ctx =
      store.GetOrCreate(Constraint::ForTuple(r, 4, 0b001));
  ctx->Write(0b11, {1, 2});
  EXPECT_EQ(ctx->Direct(0b11, /*create=*/false), nullptr);
  EXPECT_EQ(ctx->Direct(0b11, /*create=*/true), nullptr);
}

// ---------------------------------------------------------------------------
// Arrival-order insensitivity of the final state: streaming a permutation of
// the same rows must end with identical buckets under Invariant 1 (the
// contextual skylines of the final table do not depend on arrival order).

TEST(OrderInsensitivity, FinalBucketsIndependentOfArrivalOrder) {
  RandomDataConfig cfg;
  cfg.num_tuples = 50;
  cfg.seed = 321;
  Dataset data = RandomDataset(cfg);
  Dataset reversed(data.schema());
  for (auto it = data.rows().rbegin(); it != data.rows().rend(); ++it) {
    reversed.Add(*it);
  }

  Relation r1(data.schema());
  BottomUpDiscoverer d1(&r1, {});
  RunStream(&r1, &d1, data);
  Relation r2(reversed.schema());
  BottomUpDiscoverer d2(&r2, {});
  RunStream(&r2, &d2, reversed);

  // Compare buckets as sets of measure vectors (ids differ across orders).
  SubspaceUniverse universe(data.schema().num_measures(), 2);
  DimMask full = FullMask(data.schema().num_dimensions());
  auto signature = [&](Relation& r, BottomUpDiscoverer& d, TupleId probe_rel,
                       DimMask mask, MeasureMask m) {
    std::multiset<std::pair<double, double>> sig;
    Constraint c = Constraint::ForTuple(r, probe_rel, mask);
    MuStore::Context* ctx = d.mutable_store()->Find(c);
    std::vector<TupleId> bucket;
    if (ctx != nullptr) ctx->Read(m, &bucket);
    for (TupleId t : bucket) {
      sig.emplace(r.measure(t, 0), r.measure(t, 1));
    }
    return sig;
  };
  // Probe via matching physical rows: tuple i in r1 == tuple n-1-i in r2.
  TupleId n = r1.size();
  for (TupleId i = 0; i < n; i += 7) {
    for (DimMask mask = 0; mask <= full; ++mask) {
      for (MeasureMask m : universe.masks()) {
        ASSERT_EQ(signature(r1, d1, i, mask, m),
                  signature(r2, d2, n - 1 - i, mask, m))
            << "order sensitivity at mask " << mask << " m " << m;
      }
    }
  }
}

}  // namespace
}  // namespace sitfact
