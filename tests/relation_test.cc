// Unit tests for the relation substrate: schema validation, dictionary
// encoding, the append-only relation with direction-adjusted keys, dataset
// projection and CSV round-trips.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "relation/dataset.h"
#include "relation/dictionary.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "test_util.h"

namespace sitfact {
namespace {

TEST(Schema, CreateValidates) {
  auto ok = Schema::Create({{"a"}, {"b"}}, {{"m"}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().num_dimensions(), 2);
  EXPECT_EQ(ok.value().num_measures(), 1);

  EXPECT_FALSE(Schema::Create({}, {{"m"}}).ok());
  EXPECT_FALSE(Schema::Create({{"a"}}, {}).ok());
  EXPECT_FALSE(Schema::Create({{"a"}, {"a"}}, {{"m"}}).ok());
  EXPECT_FALSE(Schema::Create({{"a"}}, {{"a"}}).ok());  // cross-kind dup
  EXPECT_FALSE(Schema::Create({{""}}, {{"m"}}).ok());

  std::vector<DimensionAttribute> too_many(kMaxDimensions + 1);
  for (int i = 0; i < kMaxDimensions + 1; ++i) {
    too_many[i].name = "d" + std::to_string(i);
  }
  EXPECT_FALSE(Schema::Create(too_many, {{"m"}}).ok());
}

TEST(Schema, IndexAndMasks) {
  Schema s({{"x"}, {"y"}, {"z"}}, {{"m0"}, {"m1"}});
  EXPECT_EQ(s.DimensionIndex("y"), 1);
  EXPECT_EQ(s.DimensionIndex("nope"), -1);
  EXPECT_EQ(s.MeasureIndex("m1"), 1);
  EXPECT_EQ(s.MeasureIndex("x"), -1);
  EXPECT_EQ(s.AllDimensionsMask(), 0b111u);
  EXPECT_EQ(s.FullMeasureMask(), 0b11u);
}

TEST(Dictionary, EncodeDecodeRoundTrip) {
  Dictionary d;
  ValueId a = d.Encode("alpha");
  ValueId b = d.Encode("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Encode("alpha"), a);  // idempotent
  EXPECT_EQ(d.Decode(a), "alpha");
  EXPECT_EQ(d.Decode(b), "beta");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Lookup("alpha"), a);
  EXPECT_EQ(d.Lookup("gamma"), kUnboundValue);
  EXPECT_GT(d.ApproxMemoryBytes(), 0u);
}

TEST(Relation, AppendAndAccessors) {
  Schema s({{"team"}}, {{"pts", Direction::kLargerIsBetter},
                        {"fouls", Direction::kSmallerIsBetter}});
  Relation r(std::move(s));
  TupleId t0 = r.Append(Row{{"Celtics"}, {20, 3}});
  TupleId t1 = r.Append(Row{{"Nets"}, {15, 1}});
  EXPECT_EQ(t0, 0u);
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.DimString(t0, 0), "Celtics");
  EXPECT_EQ(r.measure(t0, 0), 20.0);
  EXPECT_EQ(r.measure(t0, 1), 3.0);
  // Direction adjustment: smaller-is-better keys are negated.
  EXPECT_EQ(r.measure_key(t0, 0), 20.0);
  EXPECT_EQ(r.measure_key(t0, 1), -3.0);
  EXPECT_GT(r.measure_key(t1, 1), r.measure_key(t0, 1));  // 1 foul beats 3
}

TEST(Relation, AppendCheckedRejectsArityMismatch) {
  Relation r(Schema({{"a"}}, {{"m"}}));
  EXPECT_FALSE(r.AppendChecked(Row{{"x", "y"}, {1}}).ok());
  EXPECT_FALSE(r.AppendChecked(Row{{"x"}, {1, 2}}).ok());
  EXPECT_TRUE(r.AppendChecked(Row{{"x"}, {1}}).ok());
}

TEST(Relation, AgreeMaskAndPartition) {
  Relation r(Schema({{"a"}, {"b"}}, {{"m0"}, {"m1"}, {"m2"}}));
  TupleId x = r.Append(Row{{"u", "v"}, {1, 5, 7}});
  TupleId y = r.Append(Row{{"u", "w"}, {2, 5, 3}});
  EXPECT_EQ(r.AgreeMask(x, y), 0b01u);
  auto p = r.Partition(x, y);
  EXPECT_EQ(p.worse, 0b001u);   // x.m0 < y.m0
  EXPECT_EQ(p.better, 0b100u);  // x.m2 > y.m2
  auto q = r.Partition(y, x);
  EXPECT_EQ(q.worse, 0b100u);
  EXPECT_EQ(q.better, 0b001u);
  // Self-comparison: all equal.
  auto self = r.Partition(x, x);
  EXPECT_EQ(self.worse, 0u);
  EXPECT_EQ(self.better, 0u);
}

TEST(Relation, PartitionHonorsDirections) {
  Relation r(Schema({{"a"}}, {{"good", Direction::kLargerIsBetter},
                              {"bad", Direction::kSmallerIsBetter}}));
  TupleId x = r.Append(Row{{"u"}, {10, 10}});
  TupleId y = r.Append(Row{{"u"}, {5, 5}});
  auto p = r.Partition(x, y);
  EXPECT_EQ(p.better, 0b01u);  // more "good"
  EXPECT_EQ(p.worse, 0b10u);   // more "bad" is worse
}

TEST(Dataset, ProjectSelectsNamedAttributes) {
  Dataset d = testing_util::PaperTableI();
  auto proj = d.Project({"team", "player"}, {"rebounds"});
  ASSERT_TRUE(proj.ok());
  const Dataset& p = proj.value();
  EXPECT_EQ(p.schema().num_dimensions(), 2);
  EXPECT_EQ(p.schema().dimension(0).name, "team");
  EXPECT_EQ(p.schema().dimension(1).name, "player");
  EXPECT_EQ(p.schema().measure(0).name, "rebounds");
  EXPECT_EQ(p.size(), d.size());
  EXPECT_EQ(p.rows()[0].dimensions[0], "Hornets");
  EXPECT_EQ(p.rows()[0].dimensions[1], "Bogues");
  EXPECT_EQ(p.rows()[0].measures[0], 5.0);

  EXPECT_FALSE(d.Project({"nonexistent"}, {"rebounds"}).ok());
  EXPECT_FALSE(d.Project({"team"}, {"nonexistent"}).ok());
}

TEST(Dataset, ProjectPreservesDirections) {
  Schema s({{"a"}}, {{"up", Direction::kLargerIsBetter},
                     {"down", Direction::kSmallerIsBetter}});
  Dataset d(std::move(s));
  d.Add(Row{{"x"}, {1, 2}});
  auto p = d.Project({"a"}, {"down"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().schema().measure(0).direction,
            Direction::kSmallerIsBetter);
}

TEST(Dataset, CsvRoundTrip) {
  Schema s({{"name"}, {"note"}}, {{"v"}});
  Dataset d{Schema(s)};
  d.Add(Row{{"plain", "with,comma"}, {1.5}});
  d.Add(Row{{"with\"quote", "multi word"}, {-3}});

  std::string path =
      (std::filesystem::temp_directory_path() / "sitfact_csv_test.csv")
          .string();
  ASSERT_TRUE(d.WriteCsv(path).ok());
  auto back = Dataset::ReadCsv(path, Schema(s));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value().rows()[0].dimensions[1], "with,comma");
  EXPECT_EQ(back.value().rows()[1].dimensions[0], "with\"quote");
  EXPECT_EQ(back.value().rows()[0].measures[0], 1.5);
  EXPECT_EQ(back.value().rows()[1].measures[0], -3.0);
  std::remove(path.c_str());

  EXPECT_FALSE(Dataset::ReadCsv("/nonexistent/nope.csv", Schema(s)).ok());
}

}  // namespace
}  // namespace sitfact
