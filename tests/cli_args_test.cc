// Unit tests for the CLI argument parser (tools/cli_commands.h). The
// subcommands themselves are covered by ctest smoke tests; this covers the
// parsing edge cases those tests cannot reach.

#include "cli_commands.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace sitfact {
namespace cli {
namespace {

/// argv builder: keeps the strings alive and hands out char* the way main
/// receives them.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (auto& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

TEST(ParseArgs, CommandAndFlagValuePairs) {
  Argv a({"sitfact_cli", "discover", "--csv", "data.csv", "--tau", "100"});
  Args args;
  ASSERT_TRUE(ParseArgs(a.argc(), a.argv(), &args).ok());
  EXPECT_EQ(args.command, "discover");
  EXPECT_EQ(args.Get("csv"), "data.csv");
  EXPECT_EQ(args.GetInt("tau", -1), 100);
  EXPECT_EQ(args.GetDouble("tau", -1), 100.0);
}

TEST(ParseArgs, EqualsSyntaxAndBareBooleans) {
  Argv a({"cli", "resume", "--snapshot=x.snap", "--quiet", "--replay"});
  Args args;
  ASSERT_TRUE(ParseArgs(a.argc(), a.argv(), &args).ok());
  EXPECT_EQ(args.Get("snapshot"), "x.snap");
  EXPECT_TRUE(args.Has("quiet"));
  EXPECT_EQ(args.Get("quiet"), "true");
  EXPECT_TRUE(args.Has("replay"));
}

TEST(ParseArgs, BareFlagFollowedByFlagStaysBoolean) {
  Argv a({"cli", "discover", "--quiet", "--csv", "f.csv"});
  Args args;
  ASSERT_TRUE(ParseArgs(a.argc(), a.argv(), &args).ok());
  EXPECT_EQ(args.Get("quiet"), "true");
  EXPECT_EQ(args.Get("csv"), "f.csv");
}

TEST(ParseArgs, RepeatedFlagKeepsLastValue) {
  Argv a({"cli", "query", "--algo", "bnl", "--algo", "dnc"});
  Args args;
  ASSERT_TRUE(ParseArgs(a.argc(), a.argv(), &args).ok());
  EXPECT_EQ(args.Get("algo"), "dnc");
}

TEST(ParseArgs, PositionalArgumentRejectedSilently) {
  Argv a({"cli", "discover", "stray.csv"});
  Args args;
  // The parser reports through the Status, not by printing: rendering the
  // error is the caller's job, and unit-test output must stay clean.
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  Status st = ParseArgs(a.argc(), a.argv(), &args);
  const std::string out = testing::internal::GetCapturedStdout();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "unexpected positional argument: stray.csv");
  EXPECT_EQ(out, "");
  EXPECT_EQ(err, "");
}

TEST(ParseArgs, NoCommandRejectedSilently) {
  Argv a({"cli"});
  Args args;
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  Status st = ParseArgs(a.argc(), a.argv(), &args);
  const std::string out = testing::internal::GetCapturedStdout();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "missing command");
  EXPECT_EQ(out, "");
  EXPECT_EQ(err, "");
}

TEST(ParseArgs, DefaultsWhenFlagAbsent) {
  Argv a({"cli", "generate"});
  Args args;
  ASSERT_TRUE(ParseArgs(a.argc(), a.argv(), &args).ok());
  EXPECT_FALSE(args.Has("rows"));
  EXPECT_EQ(args.Get("dataset", "nba"), "nba");
  EXPECT_EQ(args.GetInt("rows", 1000), 1000);
  EXPECT_EQ(args.GetDouble("tau", 2.5), 2.5);
}

TEST(ParseArgs, NegativeAndFloatValuesParse) {
  Argv a({"cli", "discover", "--dhat", "-1", "--tau", "2.75"});
  Args args;
  ASSERT_TRUE(ParseArgs(a.argc(), a.argv(), &args).ok());
  // "-1" starts with '-' but not "--": it is consumed as the value.
  EXPECT_EQ(args.GetInt("dhat", 0), -1);
  EXPECT_DOUBLE_EQ(args.GetDouble("tau", 0), 2.75);
}

}  // namespace
}  // namespace cli
}  // namespace sitfact
