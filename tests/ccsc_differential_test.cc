// C-CSC vs TopDown differential: the SubspaceIndex-rebuilt C-CSC engine
// relaxed its comparison counters, so this suite pins the part that must
// NOT drift — the discovered facts. Every per-arrival fact set is compared
// tuple-for-tuple against TopDown (itself oracle-checked by
// equivalence_test) across the paper's two dataset families (NBA, weather)
// and synthetic streams with ties, duplicates, mixed preference directions,
// and d̂/m̂ truncation.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine.h"
#include "datagen/nba_generator.h"
#include "datagen/weather_generator.h"
#include "test_util.h"

namespace sitfact {
namespace {

using testing_util::DescribeFacts;
using testing_util::RandomDataConfig;
using testing_util::RandomDataset;
using testing_util::RunStream;

struct DiffCase {
  std::string label;
  Dataset data;
  DiscoveryOptions options;
};

Dataset NbaSlice(int n, int d, int m) {
  NbaGenerator::Config cfg;
  cfg.tuples_per_season = 60;  // several season boundaries in a short stream
  NbaGenerator gen(cfg);
  auto projected = gen.Generate(n).Project(NbaGenerator::DimensionsForD(d),
                                           NbaGenerator::MeasuresForM(m));
  SITFACT_CHECK(projected.ok());
  return std::move(projected).value();
}

Dataset WeatherSlice(int n, int d, int m) {
  WeatherGenerator::Config cfg;
  cfg.num_locations = 40;  // small location pool → large shared contexts
  cfg.records_per_day = 80;
  WeatherGenerator gen(cfg);
  auto projected =
      gen.Generate(n).Project(WeatherGenerator::DimensionsForD(d),
                              WeatherGenerator::MeasuresForM(m));
  SITFACT_CHECK(projected.ok());
  return std::move(projected).value();
}

std::vector<DiffCase> MakeCases() {
  std::vector<DiffCase> cases;
  cases.push_back({"nba_d4_m4", NbaSlice(130, 4, 4), {.max_bound_dims = 3}});
  cases.push_back({"nba_d5_m4_mhat3", NbaSlice(100, 5, 4),
                   {.max_bound_dims = 3, .max_measure_dims = 3}});
  cases.push_back(
      {"weather_d4_m4", WeatherSlice(120, 4, 4), {.max_bound_dims = 3}});
  cases.push_back({"weather_d5_m5_dhat2", WeatherSlice(90, 5, 5),
                   {.max_bound_dims = 2, .max_measure_dims = 3}});

  RandomDataConfig ties;
  ties.num_tuples = 110;
  ties.num_dims = 4;
  ties.num_measures = 3;
  ties.measure_levels = 3;  // heavy measure ties
  ties.duplicate_prob = 0.3;
  ties.seed = 2014;
  cases.push_back({"synthetic_ties_dups", RandomDataset(ties), {}});

  RandomDataConfig mixed = ties;
  mixed.mixed_directions = true;
  mixed.measure_levels = 8;
  mixed.duplicate_prob = 0.1;
  mixed.seed = 2015;
  cases.push_back({"synthetic_mixed_directions", RandomDataset(mixed), {}});

  RandomDataConfig trunc = mixed;
  trunc.num_measures = 4;
  trunc.seed = 2016;
  cases.push_back({"synthetic_truncated", RandomDataset(trunc),
                   {.max_bound_dims = 2, .max_measure_dims = 2}});
  return cases;
}

class CcscDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(CcscDifferentialTest, FactsMatchTopDownTupleForTuple) {
  const DiffCase& param = GetParam();

  Relation ref_rel(param.data.schema());
  auto ref_or =
      DiscoveryEngine::CreateDiscoverer("TopDown", &ref_rel, param.options);
  ASSERT_TRUE(ref_or.ok());
  std::unique_ptr<Discoverer> ref = std::move(ref_or).value();
  auto expected = RunStream(&ref_rel, ref.get(), param.data);

  Relation rel(param.data.schema());
  auto disc_or =
      DiscoveryEngine::CreateDiscoverer("C-CSC", &rel, param.options);
  ASSERT_TRUE(disc_or.ok());
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();
  auto actual = RunStream(&rel, disc.get(), param.data);

  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i])
        << "C-CSC diverged from TopDown at arrival " << i << "\nexpected:\n"
        << DescribeFacts(rel, expected[i]) << "actual:\n"
        << DescribeFacts(rel, actual[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, CcscDifferentialTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace sitfact
