// Tests for query/fact_index.h + service/fact_service.h: the CoW storage
// primitive, index maintenance from ArrivalReports, snapshot isolation,
// TopK ordering/pagination, filters, remove/update semantics, rebuild from
// a populated relation, recovery wiring, and the FactFeed Query() surface.

#include "service/fact_service.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "persist/durable_engine.h"
#include "query/fact_index.h"
#include "service/fact_feed.h"
#include "test_util.h"

#include <gtest/gtest.h>

namespace sitfact {
namespace {

using testing_util::RandomDataConfig;
using testing_util::RandomDataset;

std::unique_ptr<DiscoveryEngine> MakeEngine(Relation* relation,
                                            double tau = 2.0) {
  auto disc_or = DiscoveryEngine::CreateDiscoverer("STopDown", relation, {});
  EXPECT_TRUE(disc_or.ok());
  DiscoveryEngine::Config config;
  config.tau = tau;
  return std::make_unique<DiscoveryEngine>(relation,
                                           std::move(disc_or).value(),
                                           config);
}

Dataset TestData(int n = 100, uint64_t seed = 11) {
  RandomDataConfig cfg;
  cfg.num_tuples = n;
  cfg.seed = seed;
  cfg.num_dims = 3;
  cfg.num_measures = 2;
  return RandomDataset(cfg);
}

/// Shadow model: the expected record list, mirroring the index's insertion
/// order (ranked order per arrival).
struct ModelRecord {
  TupleId tuple;
  uint64_t arrival_seq;
  SkylineFact fact;
  double prominence;
  bool prominent;
  bool live = true;
};

class Model {
 public:
  void OnArrival(const ArrivalReport& report) {
    uint64_t seq = arrivals_++;
    if (!report.ranked.empty()) {
      for (const RankedFact& rf : report.ranked) {
        bool prominent = false;
        for (const RankedFact& p : report.prominent) {
          if (p.fact == rf.fact) prominent = true;
        }
        records_.push_back(
            {report.tuple, seq, rf.fact, rf.prominence, prominent});
      }
    } else {
      for (const SkylineFact& f : report.facts) {
        records_.push_back({report.tuple, seq, f, 0.0, false});
      }
    }
  }

  void OnRemove(TupleId t) {
    for (ModelRecord& r : records_) {
      if (r.tuple == t) r.live = false;
    }
  }

  /// Expected TopK ids under `filter` (full list; callers slice).
  std::vector<uint32_t> TopKIds(const FactFilter& filter) const {
    std::vector<uint32_t> ids;
    for (uint32_t i = 0; i < records_.size(); ++i) {
      FactRecord rec;
      rec.tuple = records_[i].tuple;
      rec.arrival_seq = records_[i].arrival_seq;
      rec.fact = records_[i].fact;
      rec.prominence = records_[i].prominence;
      rec.prominent = records_[i].prominent;
      rec.live = records_[i].live;
      rec.ranked = true;
      if (filter.Matches(rec)) ids.push_back(i);
    }
    std::stable_sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
      if (records_[a].prominence != records_[b].prominence) {
        return records_[a].prominence > records_[b].prominence;
      }
      return a < b;
    });
    return ids;
  }

  size_t size() const { return records_.size(); }
  const ModelRecord& at(size_t i) const { return records_[i]; }

 private:
  std::vector<ModelRecord> records_;
  uint64_t arrivals_ = 0;
};

/// Drains every TopK page of `service` under `filter` into one id list.
std::vector<uint32_t> PaginateAll(const FactService::Snapshot& snap,
                                  const FactFilter& filter, size_t page) {
  std::vector<uint32_t> ids;
  std::optional<TopKCursor> cursor;
  for (;;) {
    FactService::Page p = snap.TopK(page, filter, cursor);
    for (const auto& v : p.facts) ids.push_back(v.id);
    if (!p.next.has_value()) break;
    cursor = p.next;
  }
  return ids;
}

/// Drains every FactsForTuple page for `t` (deliberately small pages, so
/// every call here also exercises the resume-cursor path).
std::vector<FactService::FactView> AllForTuple(
    const FactService::Snapshot& snap, TupleId t) {
  std::vector<FactService::FactView> views;
  std::optional<TopKCursor> cursor;
  for (;;) {
    FactService::Page p = snap.FactsForTuple(t, FactFilter(), 8, cursor);
    views.insert(views.end(), p.facts.begin(), p.facts.end());
    if (!p.next.has_value()) break;
    cursor = p.next;
  }
  return views;
}

/// Drains every FactsInWindow page of [first, last] under `filter`.
std::vector<FactService::FactView> AllInWindow(
    const FactService::Snapshot& snap, uint64_t first, uint64_t last,
    const FactFilter& filter = {}) {
  std::vector<FactService::FactView> views;
  std::optional<TopKCursor> cursor;
  for (;;) {
    FactService::Page p = snap.FactsInWindow(first, last, filter, 8, cursor);
    views.insert(views.end(), p.facts.begin(), p.facts.end());
    if (!p.next.has_value()) break;
    cursor = p.next;
  }
  return views;
}

TEST(CowVec, AppendMutateAndStructuralSharing) {
  CowVec<int> v;
  for (int i = 0; i < 1000; ++i) v.PushBack(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);

  v.Seal();
  CowVec<int> snapshot = v;  // shares every chunk

  // Mutations after sealing must not be visible through the copy.
  v.Mutate(0) = -1;
  v.Mutate(999) = -2;
  for (int i = 0; i < 200; ++i) v.PushBack(1000 + i);
  EXPECT_EQ(snapshot.size(), 1000u);
  EXPECT_EQ(snapshot[0], 0);
  EXPECT_EQ(snapshot[999], 999);
  EXPECT_EQ(v[0], -1);
  EXPECT_EQ(v[999], -2);
  EXPECT_EQ(v.size(), 1200u);
  EXPECT_EQ(v[1100], 1100);
}

TEST(CowVec, RepeatedSealsAndPartialChunks) {
  CowVec<std::string> v;
  std::vector<CowVec<std::string>> snaps;
  for (int i = 0; i < 600; ++i) {
    v.PushBack("s" + std::to_string(i));
    if (i % 37 == 0) {
      v.Seal();
      snaps.push_back(v);
    }
  }
  // Every snapshot still sees exactly its prefix.
  size_t expect = 1;
  for (const auto& s : snaps) {
    ASSERT_GE(s.size(), expect);
    for (size_t i = 0; i < s.size(); ++i) {
      ASSERT_EQ(s[i], "s" + std::to_string(i));
    }
    expect = s.size();
  }
}

TEST(FactIndex, TopKMatchesNaiveModelAndPaginates) {
  Dataset data = TestData(120, 3);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactService service(&rel);
  Model model;
  for (const Row& row : data.rows()) {
    ArrivalReport report = engine->Append(row);
    service.OnArrival(report);
    model.OnArrival(report);
  }

  FactService::Snapshot snap = service.Acquire();
  EXPECT_EQ(snap.arrivals(), data.rows().size());
  EXPECT_EQ(snap.fact_count(), model.size());

  FactFilter all;
  std::vector<uint32_t> expected = model.TopKIds(all);

  // One-shot TopK prefix.
  FactService::Page top10 = snap.TopK(10, all);
  ASSERT_EQ(top10.facts.size(), std::min<size_t>(10, expected.size()));
  for (size_t i = 0; i < top10.facts.size(); ++i) {
    ASSERT_EQ(top10.facts[i].id, expected[i]) << "rank " << i;
  }

  // Full pagination in odd page sizes covers exactly the expected order.
  EXPECT_EQ(PaginateAll(snap, all, 7), expected);
  EXPECT_EQ(PaginateAll(snap, all, 1), expected);
  EXPECT_EQ(PaginateAll(snap, all, 1000), expected);

  // Prominence ordering is descending with record-id tiebreak.
  for (size_t i = 1; i < expected.size(); ++i) {
    double prev = model.at(expected[i - 1]).prominence;
    double cur = model.at(expected[i]).prominence;
    ASSERT_TRUE(prev > cur || (prev == cur && expected[i - 1] < expected[i]));
  }
}

TEST(FactIndex, FiltersMatchNaiveModel) {
  Dataset data = TestData(150, 5);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactService service(&rel);
  Model model;
  for (const Row& row : data.rows()) {
    ArrivalReport report = engine->Append(row);
    service.OnArrival(report);
    model.OnArrival(report);
  }
  FactService::Snapshot snap = service.Acquire();

  std::vector<FactFilter> filters;
  {
    FactFilter f;
    f.tuple = 42;
    filters.push_back(f);
    f = FactFilter();
    f.subspace = 0b01;
    filters.push_back(f);
    f = FactFilter();
    f.bound_mask = 0b010;
    filters.push_back(f);
    f = FactFilter();
    f.min_arrival = 50;
    f.max_arrival = 99;
    filters.push_back(f);
    f = FactFilter();
    f.min_prominence = 3.0;
    filters.push_back(f);
    f = FactFilter();
    f.prominent_only = true;
    filters.push_back(f);
    f = FactFilter();
    f.about = Constraint::ForTuple(rel, 10, 0b001);
    filters.push_back(f);
    f = FactFilter();
    f.about = Constraint::ForTuple(rel, 10, 0b101);
    f.subspace = 0b10;
    f.min_prominence = 2.0;
    filters.push_back(f);
  }
  for (size_t fi = 0; fi < filters.size(); ++fi) {
    SCOPED_TRACE("filter " + std::to_string(fi));
    std::vector<uint32_t> expected = model.TopKIds(filters[fi]);
    EXPECT_EQ(PaginateAll(snap, filters[fi], 5), expected);
  }

  // The `about` filter means subsumption: every hit binds the asked values.
  FactFilter about;
  about.about = Constraint::ForTuple(rel, 10, 0b001);
  for (const auto& view : snap.TopK(1000, about).facts) {
    EXPECT_TRUE(view.fact.constraint.SubsumedByOrEqual(*about.about));
  }
}

TEST(FactIndex, SnapshotIsolationAcrossMutations) {
  Dataset data = TestData(80, 7);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactService service(&rel);

  for (size_t i = 0; i < 40; ++i) {
    service.OnArrival(engine->Append(data.rows()[i]));
  }
  FactService::Snapshot old = service.Acquire();
  const uint64_t old_epoch = old.epoch();
  const size_t old_count = old.fact_count();
  FactService::Page old_top = old.TopK(10);

  // Keep ingesting and remove a tuple; the pinned snapshot must not move.
  for (size_t i = 40; i < 80; ++i) {
    service.OnArrival(engine->Append(data.rows()[i]));
  }
  ASSERT_TRUE(engine->Remove(3).ok());
  ASSERT_TRUE(service.OnRemove(3).ok());

  EXPECT_EQ(old.epoch(), old_epoch);
  EXPECT_EQ(old.fact_count(), old_count);
  EXPECT_EQ(old.arrivals(), 40u);
  FactService::Page again = old.TopK(10);
  ASSERT_EQ(again.facts.size(), old_top.facts.size());
  for (size_t i = 0; i < again.facts.size(); ++i) {
    EXPECT_EQ(again.facts[i].id, old_top.facts[i].id);
    EXPECT_EQ(again.facts[i].live, old_top.facts[i].live);
  }

  // The fresh snapshot sees the removal and the new arrivals.
  FactService::Snapshot fresh = service.Acquire();
  EXPECT_GT(fresh.epoch(), old_epoch);
  EXPECT_EQ(fresh.arrivals(), 80u);
  EXPECT_TRUE(AllForTuple(fresh, 3).empty());
  FactFilter dead;
  dead.include_dead = true;
  dead.tuple = 3;
  EXPECT_FALSE(fresh.TopK(1000, dead).facts.empty());
}

TEST(FactIndex, RemoveAndUpdateSemantics) {
  Dataset data = TestData(60, 9);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactService service(&rel);
  for (const Row& row : data.rows()) {
    service.OnArrival(engine->Append(row));
  }

  // Unknown / double removals are rejected.
  EXPECT_FALSE(service.OnRemove(10000).ok());
  ASSERT_TRUE(engine->Remove(5).ok());
  ASSERT_TRUE(service.OnRemove(5).ok());
  EXPECT_FALSE(service.OnRemove(5).ok());

  // Update: old tuple's facts die, replacement arrives under a fresh id.
  auto report_or = engine->Update(7, data.rows()[0]);
  ASSERT_TRUE(report_or.ok());
  const TupleId new_id = report_or.value().tuple;
  ASSERT_TRUE(service.OnUpdate(7, report_or.value()).ok());

  FactService::Snapshot snap = service.Acquire();
  EXPECT_TRUE(AllForTuple(snap, 7).empty());
  EXPECT_FALSE(AllForTuple(snap, new_id).empty());
  // Window queries skip dead records but keep the arrival numbering dense.
  EXPECT_EQ(snap.arrivals(), data.rows().size() + 1);
  for (const auto& view : AllInWindow(snap, 0, snap.arrivals() - 1)) {
    EXPECT_TRUE(view.live);
    EXPECT_NE(view.tuple, 5u);
    EXPECT_NE(view.tuple, 7u);
  }
}

TEST(FactIndex, ReplayedArrivalSupersedesWithoutDuplicates) {
  // At-least-once producers may re-deliver an arrival after recovery. The
  // replay must supersede the first delivery everywhere: no query surface
  // may serve the same fact twice, and a later removal must kill the
  // replacement, leaving nothing live.
  Dataset data = TestData(20, 43);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactService service(&rel);
  std::vector<ArrivalReport> reports;
  for (const Row& row : data.rows()) {
    reports.push_back(engine->Append(row));
    service.OnArrival(reports.back());
  }

  const TupleId replayed = 7;
  const size_t before = service.Acquire().fact_count();
  service.OnArrival(reports[replayed]);  // duplicate delivery

  FactService::Snapshot snap = service.Acquire();
  EXPECT_EQ(snap.fact_count(), before + reports[replayed].ranked.size());
  // Per-tuple, window, and TopK views all agree: one live copy.
  EXPECT_EQ(AllForTuple(snap, replayed).size(),
            reports[replayed].ranked.size());
  FactFilter mine;
  mine.tuple = replayed;
  EXPECT_EQ(snap.TopK(1000, mine).facts.size(),
            reports[replayed].ranked.size());
  size_t in_window = 0;
  for (const auto& view : AllInWindow(snap, 0, snap.arrivals() - 1)) {
    if (view.tuple == replayed) ++in_window;
  }
  EXPECT_EQ(in_window, reports[replayed].ranked.size());

  // Removal follows the remapped arrival and leaves no live copy behind.
  ASSERT_TRUE(service.OnRemove(replayed).ok());
  snap = service.Acquire();
  EXPECT_TRUE(AllForTuple(snap, replayed).empty());
  EXPECT_TRUE(snap.TopK(1000, mine).facts.empty());
}

TEST(FactIndex, PublishEveryBatchesEpochsAndFlushForces) {
  Dataset data = TestData(30, 13);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactService::Options options;
  options.publish_every = 10;
  FactService service(&rel, options);

  for (int i = 0; i < 25; ++i) {
    service.OnArrival(engine->Append(data.rows()[i]));
  }
  // 25 ops at publish_every=10 -> the published epoch lags at 20.
  FactService::Snapshot snap = service.Acquire();
  EXPECT_EQ(snap.epoch(), 20u);
  EXPECT_EQ(snap.arrivals(), 20u);

  service.Flush();
  snap = service.Acquire();
  EXPECT_EQ(snap.epoch(), 25u);
  EXPECT_EQ(snap.arrivals(), 25u);
}

TEST(FactIndex, NarrationsAreStoredAndExplainFallsBack) {
  Dataset data = TestData(40, 17);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);

  FactService::Options with;
  with.entity = "d0";
  FactService narrated(&rel, with);
  FactService::Options without;
  without.store_narrations = false;
  FactService bare(&rel, without);

  for (const Row& row : data.rows()) {
    ArrivalReport report = engine->Append(row);
    narrated.OnArrival(report);
    bare.OnArrival(report);
  }

  FactService::Snapshot n = narrated.Acquire();
  FactService::Page page = n.TopK(5);
  ASSERT_FALSE(page.facts.empty());
  for (const auto& view : page.facts) {
    EXPECT_FALSE(view.narration.empty());
    EXPECT_EQ(n.Explain(view), view.narration);
    // The entity dimension's value leads the sentence.
    EXPECT_EQ(view.narration.rfind(rel.DimString(view.tuple, 0), 0), 0u);
  }

  FactService::Snapshot b = bare.Acquire();
  FactService::Page bare_page = b.TopK(5);
  ASSERT_FALSE(bare_page.facts.empty());
  for (const auto& view : bare_page.facts) {
    EXPECT_TRUE(view.narration.empty());
    EXPECT_NE(b.Explain(view), "");  // numeric fallback
  }
}

TEST(FactService, RebuildMatchesLiveStream) {
  Dataset data = TestData(90, 19);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactService live(&rel);
  for (const Row& row : data.rows()) {
    live.OnArrival(engine->Append(row));
  }

  auto rebuilt_or = FactService::Rebuild(&rel, {}, /*tau=*/2.0);
  ASSERT_TRUE(rebuilt_or.ok()) << rebuilt_or.status().ToString();
  FactService::Snapshot a = live.Acquire();
  FactService::Snapshot b = rebuilt_or.value()->Acquire();

  ASSERT_EQ(a.fact_count(), b.fact_count());
  ASSERT_EQ(a.arrivals(), b.arrivals());
  ASSERT_EQ(PaginateAll(a, FactFilter(), 9), PaginateAll(b, FactFilter(), 9));
  // Per-record equality: same facts, same prominence, same prominent set.
  for (TupleId t = 0; t < rel.size(); ++t) {
    auto fa = AllForTuple(a, t);
    auto fb = AllForTuple(b, t);
    ASSERT_EQ(fa.size(), fb.size()) << "tuple " << t;
    for (size_t i = 0; i < fa.size(); ++i) {
      ASSERT_EQ(fa[i].fact, fb[i].fact);
      ASSERT_EQ(fa[i].prominence, fb[i].prominence);
      ASSERT_EQ(fa[i].prominent, fb[i].prominent);
    }
  }
}

TEST(FactService, FromDurableServesAfterRecovery) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("sitfact_fact_service_test_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  Dataset data = TestData(70, 23);

  // Live run: durable store + service fed from live reports.
  std::vector<std::vector<uint32_t>> live_for_tuple;
  {
    persist::DurableOptions opts;
    opts.dir = dir;
    opts.tau = 2.0;
    auto durable_or = persist::DurableEngine::Open(opts, data.schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    auto durable = std::move(durable_or).value();
    FactService live(&durable->relation());
    for (const Row& row : data.rows()) {
      auto report_or = durable->Append(row);
      ASSERT_TRUE(report_or.ok());
      live.OnArrival(report_or.value());
    }
    ASSERT_TRUE(durable->Checkpoint().ok());
    FactService::Snapshot snap = live.Acquire();
    for (TupleId t = 0; t < durable->relation().size(); ++t) {
      std::vector<uint32_t> ids;
      for (const auto& v : AllForTuple(snap, t)) ids.push_back(v.id);
      live_for_tuple.push_back(std::move(ids));
    }
  }

  // "Crashed" process comes back: recover the store, rebuild the service,
  // and serve immediately.
  {
    persist::DurableOptions opts;
    opts.dir = dir;
    auto durable_or = persist::DurableEngine::Open(opts, Schema());
    ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
    auto durable = std::move(durable_or).value();
    auto service_or = FactService::FromDurable(durable.get());
    ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
    FactService::Snapshot snap = service_or.value()->Acquire();
    EXPECT_EQ(snap.arrivals(), data.rows().size());
    ASSERT_EQ(live_for_tuple.size(), durable->relation().size());
    for (TupleId t = 0; t < durable->relation().size(); ++t) {
      EXPECT_EQ(AllForTuple(snap, t).size(), live_for_tuple[t].size())
          << "tuple " << t;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(FactService, FactFeedMaintainsIndexAndQueryIsLive) {
  Dataset data = TestData(100, 29);
  Relation rel(data.schema());
  auto engine = MakeEngine(&rel);
  FactService service(&rel);

  FactFeed::Options options;
  options.fact_service = &service;
  FactFeed feed(engine.get(), nullptr, options);
  for (const Row& row : data.rows()) {
    ASSERT_TRUE(feed.Publish(row));
  }
  feed.Drain();
  FactService::Snapshot snap = feed.Query();
  EXPECT_EQ(snap.arrivals(), data.rows().size());
  feed.Stop();

  // Matches a synchronous run through a second engine + service.
  Relation rel2(data.schema());
  auto engine2 = MakeEngine(&rel2);
  FactService sync(&rel2);
  for (const Row& row : data.rows()) {
    sync.OnArrival(engine2->Append(row));
  }
  FactService::Snapshot expect = sync.Acquire();
  ASSERT_EQ(snap.fact_count(), expect.fact_count());
  EXPECT_EQ(PaginateAll(snap, FactFilter(), 11),
            PaginateAll(expect, FactFilter(), 11));
}

}  // namespace
}  // namespace sitfact
