#ifndef SITFACT_DATAGEN_WEATHER_GENERATOR_H_
#define SITFACT_DATAGEN_WEATHER_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "relation/dataset.h"
#include "relation/schema.h"

namespace sitfact {

/// Synthetic UK daily-forecast stream standing in for the paper's 7.8M-record
/// Met Office archive (Dec 2011 - Nov 2012, 5,365 locations): same 7
/// dimension attributes and 7 measures, all larger-is-better as the paper
/// assumes. Dimensions have low cardinality relative to the stream length,
/// so contexts grow much larger than in the NBA data — the property that
/// made the bottom-up algorithms exhaust memory first on this dataset
/// (Figs. 9, 10, 13).
class WeatherGenerator {
 public:
  struct Config {
    uint64_t seed = 78654321;
    int num_locations = 5365;
    /// Records per simulated day (~one per location-timestep slice); the
    /// month dimension advances every 30 simulated days.
    int records_per_day = 21460;  // 5365 locations x 4 time steps
  };

  explicit WeatherGenerator(const Config& config);
  WeatherGenerator() : WeatherGenerator(Config()) {}

  static Schema FullSchema();

  /// Dimension subsets for varying d (the paper only reports weather runs at
  /// d=5, m=7; subsets follow the attribute order of Sec. VI-A).
  static std::vector<std::string> DimensionsForD(int d);
  static std::vector<std::string> MeasuresForM(int m);

  Row Next();
  Dataset Generate(int n);

 private:
  struct Location {
    std::string name;
    int country;
    double maritime;  // 0 inland .. 1 coastal: more wind, milder temps
    double latitude;  // 0 south .. 1 north: colder
  };

  Config config_;
  Rng rng_;
  int64_t record_index_ = 0;
  std::vector<Location> locations_;
};

}  // namespace sitfact

#endif  // SITFACT_DATAGEN_WEATHER_GENERATOR_H_
