#include "datagen/stock_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sitfact {

namespace {

const char* const kSectors[] = {
    "energy",      "materials", "industrials", "cons_disc", "cons_staples",
    "health_care", "financials", "info_tech",  "comm_svcs", "utilities",
    "real_estate"};

const char* const kExchanges[] = {"NYSE", "NASDAQ", "AMEX"};

const char* const kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

std::string MakeSymbol(int index) {
  // AAAA-style symbols: base-26 in up to 4 letters, stable and unique.
  std::string s;
  int x = index;
  do {
    s.insert(s.begin(), static_cast<char>('A' + x % 26));
    x = x / 26 - 1;
  } while (x >= 0);
  return s;
}

const char* CapClass(double market_cap_b) {
  if (market_cap_b >= 10.0) return "large";
  if (market_cap_b >= 2.0) return "mid";
  return "small";
}

}  // namespace

StockGenerator::StockGenerator(const Config& config)
    : config_(config), rng_(config.seed) {
  tickers_.reserve(static_cast<size_t>(config_.num_tickers));
  sector_shock_.assign(static_cast<size_t>(config_.num_sectors), 0.0);
  const int num_sectors =
      std::min<int>(config_.num_sectors,
                    static_cast<int>(std::size(kSectors)));
  for (int i = 0; i < config_.num_tickers; ++i) {
    Ticker t;
    t.symbol = MakeSymbol(i);
    t.sector = static_cast<int>(rng_.NextBounded(
        static_cast<uint64_t>(num_sectors)));
    t.exchange = static_cast<int>(rng_.NextBounded(std::size(kExchanges)));
    // Log-uniform initial price in [$2, $500); a Zipf-ish share count gives
    // a heavy-tailed market-cap distribution like real exchanges.
    t.price = 2.0 * std::exp(rng_.NextDouble() * std::log(250.0));
    t.shares_b = 0.05 + 10.0 / (1.0 + static_cast<double>(rng_.NextZipf(
                                          200, 1.2)));
    t.drift = 0.0001 + 0.0004 * rng_.NextDouble();
    t.vol = 0.008 + 0.025 * rng_.NextDouble();
    tickers_.push_back(std::move(t));
  }
}

Schema StockGenerator::FullSchema() {
  auto schema_or = Schema::Create(
      {{"ticker"},
       {"sector"},
       {"exchange"},
       {"year"},
       {"month"},
       {"cap_class"}},
      {{"close_price", Direction::kLargerIsBetter},
       {"market_cap_b", Direction::kLargerIsBetter},
       {"volume_m", Direction::kLargerIsBetter},
       {"pct_change", Direction::kLargerIsBetter},
       {"volatility", Direction::kSmallerIsBetter}});
  return std::move(schema_or).value();
}

Row StockGenerator::Next() {
  const int64_t day = tuple_index_ / tickers_.size();
  const auto ticker_idx =
      static_cast<size_t>(tuple_index_ % tickers_.size());
  ++tuple_index_;

  // Refresh the slow sector drift once per simulated day (when the
  // round-robin wraps to ticker 0).
  if (ticker_idx == 0) {
    for (double& shock : sector_shock_) {
      shock = 0.95 * shock + 0.002 * rng_.NextGaussian();
    }
  }

  Ticker& t = tickers_[ticker_idx];
  const double ret =
      t.drift + sector_shock_[static_cast<size_t>(t.sector)] +
      t.vol * rng_.NextGaussian();
  const double prev_price = t.price;
  t.price = std::max(0.25, t.price * std::exp(ret));

  const double market_cap = t.price * t.shares_b;
  // Volume spikes with absolute return (turnover follows news).
  const double volume =
      (1.0 + 40.0 * std::abs(ret)) * (5.0 + 120.0 * rng_.NextDouble());
  const double pct_change = 100.0 * (t.price - prev_price) / prev_price;

  const int year = config_.start_year +
                   static_cast<int>(day / config_.days_per_year);
  const int month = static_cast<int>((day % config_.days_per_year) * 12 /
                                     config_.days_per_year);

  Row row;
  row.dimensions = {t.symbol,
                    kSectors[t.sector],
                    kExchanges[t.exchange],
                    std::to_string(year),
                    kMonths[month],
                    CapClass(market_cap)};
  row.measures = {t.price, market_cap, volume, pct_change,
                  t.vol * 100.0 * (0.8 + 0.4 * rng_.NextDouble())};
  return row;
}

Dataset StockGenerator::Generate(int n) {
  Dataset data(FullSchema());
  for (int i = 0; i < n; ++i) data.Add(Next());
  return data;
}

}  // namespace sitfact
