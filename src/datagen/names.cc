#include "datagen/names.h"

#include <cstdio>

namespace sitfact {

const std::vector<std::string>& NbaTeamNames() {
  static const auto* kTeams = new std::vector<std::string>{
      "Hawks",   "Celtics",      "Nets",     "Hornets",  "Bulls",
      "Cavs",    "Mavericks",    "Nuggets",  "Pistons",  "Warriors",
      "Rockets", "Pacers",       "Clippers", "Lakers",   "Heat",
      "Bucks",   "Timberwolves", "Knicks",   "Magic",    "Sixers",
      "Suns",    "Blazers",      "Kings",    "Spurs",    "Sonics",
      "Raptors", "Jazz",         "Grizzlies", "Wizards"};
  return *kTeams;
}

const std::vector<std::string>& PositionNames() {
  static const auto* kPositions =
      new std::vector<std::string>{"PG", "SG", "SF", "PF", "C"};
  return *kPositions;
}

const std::vector<std::string>& SeasonMonthNames() {
  static const auto* kMonths = new std::vector<std::string>{
      "Nov", "Dec", "Jan", "Feb", "Mar", "Apr"};
  return *kMonths;
}

const std::vector<std::string>& StateNames() {
  static const auto* kStates = new std::vector<std::string>{
      "Alabama",      "Alaska",        "Arizona",       "Arkansas",
      "California",   "Colorado",      "Connecticut",   "Delaware",
      "Florida",      "Georgia",       "Hawaii",        "Idaho",
      "Illinois",     "Indiana",       "Iowa",          "Kansas",
      "Kentucky",     "Louisiana",     "Maine",         "Maryland",
      "Massachusetts", "Michigan",     "Minnesota",     "Mississippi",
      "Missouri",     "Montana",       "Nebraska",      "Nevada",
      "NewHampshire", "NewJersey",     "NewMexico",     "NewYork",
      "NorthCarolina", "NorthDakota",  "Ohio",          "Oklahoma",
      "Oregon",       "Pennsylvania",  "RhodeIsland",   "SouthCarolina",
      "SouthDakota",  "Tennessee",     "Texas",         "Utah",
      "Vermont",      "Virginia",      "Washington",    "WestVirginia",
      "Wisconsin",    "Wyoming"};
  return *kStates;
}

const std::vector<std::string>& CompassDirections() {
  static const auto* kDirs = new std::vector<std::string>{
      "N",  "NNE", "NE", "ENE", "E",  "ESE", "SE", "SSE",
      "S",  "SSW", "SW", "WSW", "W",  "WNW", "NW", "NNW"};
  return *kDirs;
}

const std::vector<std::string>& VisibilityRanges() {
  static const auto* kVis = new std::vector<std::string>{
      "VeryPoor", "Poor", "Moderate", "Good", "VeryGood", "Excellent"};
  return *kVis;
}

const std::vector<std::string>& TimeSteps() {
  static const auto* kSteps = new std::vector<std::string>{
      "0-6h", "6-12h", "12-18h", "18-24h"};
  return *kSteps;
}

const std::vector<std::string>& UkCountries() {
  static const auto* kCountries = new std::vector<std::string>{
      "England", "Scotland", "Wales", "NorthernIreland", "IsleOfMan",
      "ChannelIslands"};
  return *kCountries;
}

namespace {

const char* const kFirstSyllables[] = {
    "Ja", "Mar", "De", "An", "Ke", "Ty", "Da", "Chris", "Mi", "Ra",
    "Sha", "Vin", "Lu", "Bran", "Cor", "Dar", "Ed", "Fred", "Gar", "Hor"};
const char* const kSecondSyllables[] = {
    "mal", "cus", "von", "dre", "vin", "rell", "ron", "ton", "chael", "shawn",
    "quille", "cent", "ther", "don", "ey", "nell", "gar", "die", "land", "ace"};
const char* const kSurnames[] = {
    "Abbott",  "Barnes",   "Carter", "Dawson",  "Ellis",    "Foster",
    "Grant",   "Hayes",    "Irving", "Jennings", "Knight",  "Lawson",
    "Mercer",  "Norwood",  "Owens",  "Porter",  "Quinn",    "Reeves",
    "Sawyer",  "Thorpe",   "Upshaw", "Vaughn",  "Watkins",  "Xavier",
    "Young",   "Zeller",   "Monroe", "Bishop",  "Chandler", "Douglas"};
const char* const kCollegeRoots[] = {
    "Ridgemont", "Lakewood",  "Fairview", "Brookdale", "Hillcrest",
    "Stonewall", "Riverside", "Oakmont",  "Maplewood", "Clearwater",
    "Summit",    "Granite",   "Harbor",   "Prairie",   "Sterling"};

}  // namespace

std::string SynthesizePlayerName(uint64_t index) {
  uint64_t h = Mix64(index * 2654435761u + 17);
  const char* first = kFirstSyllables[h % 20];
  const char* second = kSecondSyllables[(h >> 8) % 20];
  const char* last = kSurnames[(h >> 16) % 30];
  std::string name = std::string(first) + second + " " + last;
  // Distinct suffix guarantees uniqueness across the whole pool.
  char buf[16];
  std::snprintf(buf, sizeof(buf), " #%04llu",
                static_cast<unsigned long long>(index % 10000));
  if (index >= 10000) name += "*";
  name += buf;
  return name;
}

std::string SynthesizeCollegeName(uint64_t index) {
  uint64_t h = Mix64(index + 101);
  std::string root = kCollegeRoots[h % 15];
  switch ((index / 15) % 3) {
    case 0:
      root += " University";
      break;
    case 1:
      root += " State";
      break;
    default:
      root = "College of " + root;
      break;
  }
  root += " ";
  root += std::to_string(index);
  return root;
}

std::string SynthesizeLocationName(uint64_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "Stn-%04llu",
                static_cast<unsigned long long>(index));
  return buf;
}

}  // namespace sitfact
