#include "datagen/nba_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "datagen/names.h"

namespace sitfact {

namespace {

/// Clamps and rounds a continuous stat draw to a plausible integer range.
double Stat(double v, double lo, double hi) {
  v = std::round(v);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

}  // namespace

NbaGenerator::NbaGenerator(const Config& config)
    : config_(config), rng_(config.seed) {
  SITFACT_CHECK(config_.tuples_per_season > 0);
  rosters_.resize(NbaTeamNames().size());
  for (auto& roster : rosters_) {
    roster.reserve(config_.roster_size);
    for (int i = 0; i < config_.roster_size; ++i) {
      roster.push_back(MakePlayer());
    }
  }
}

Schema NbaGenerator::FullSchema() {
  return Schema(
      {{"player"},
       {"position"},
       {"college"},
       {"state"},
       {"season"},
       {"month"},
       {"team"},
       {"opp_team"}},
      {{"points", Direction::kLargerIsBetter},
       {"rebounds", Direction::kLargerIsBetter},
       {"assists", Direction::kLargerIsBetter},
       {"blocks", Direction::kLargerIsBetter},
       {"steals", Direction::kLargerIsBetter},
       {"fouls", Direction::kSmallerIsBetter},
       {"turnovers", Direction::kSmallerIsBetter}});
}

std::vector<std::string> NbaGenerator::DimensionsForD(int d) {
  // Table V verbatim.
  switch (d) {
    case 4:
      return {"player", "season", "team", "opp_team"};
    case 5:
      return {"player", "season", "month", "team", "opp_team"};
    case 6:
      return {"position", "college", "state", "season", "team", "opp_team"};
    case 7:
      return {"position", "college", "state",    "season",
              "month",    "team",    "opp_team"};
    default:
      SITFACT_CHECK_MSG(false, "d must be in [4, 7]");
      return {};
  }
}

std::vector<std::string> NbaGenerator::MeasuresForM(int m) {
  // Table VI verbatim.
  static const char* const kOrder[] = {"points", "rebounds", "assists",
                                       "blocks", "steals",   "fouls",
                                       "turnovers"};
  SITFACT_CHECK_MSG(m >= 4 && m <= 7, "m must be in [4, 7]");
  return std::vector<std::string>(kOrder, kOrder + m);
}

NbaGenerator::Player NbaGenerator::MakePlayer() {
  Player p;
  p.name = SynthesizePlayerName(player_counter_++);
  p.position = static_cast<int>(rng_.NextBounded(PositionNames().size()));
  p.college =
      SynthesizeCollegeName(rng_.NextBounded(config_.num_colleges));
  p.state = static_cast<int>(rng_.NextBounded(StateNames().size()));
  // Latent quality: Zipf rank mapped to (0, 1]; a handful of stars, a long
  // tail of role players.
  uint64_t rank = rng_.NextZipf(1000, 1.1);
  p.skill = 1.0 / (1.0 + 0.02 * static_cast<double>(rank));
  return p;
}

void NbaGenerator::StartSeason() {
  ++season_index_;
  for (auto& roster : rosters_) {
    for (auto& slot : roster) {
      if (rng_.NextBool(config_.turnover_rate)) {
        slot = MakePlayer();
      }
    }
  }
}

Row NbaGenerator::Next() {
  if (tuple_index_ > 0 && tuple_index_ % config_.tuples_per_season == 0) {
    StartSeason();
  }
  const auto& teams = NbaTeamNames();
  const auto& months = SeasonMonthNames();

  int team = static_cast<int>(rng_.NextBounded(teams.size()));
  int opp = static_cast<int>(rng_.NextBounded(teams.size() - 1));
  if (opp >= team) ++opp;

  // Star players play (and appear in box scores) more often.
  const auto& roster = rosters_[team];
  size_t slot = rng_.NextZipf(roster.size(), 0.8);
  const Player& player = roster[slot];

  // Month advances with the position inside the season.
  int64_t pos_in_season = tuple_index_ % config_.tuples_per_season;
  int month = static_cast<int>(pos_in_season * months.size() /
                               config_.tuples_per_season);

  int year = config_.start_year + season_index_;
  std::string season =
      std::to_string(year) + "-" + std::to_string((year + 1) % 100 + 100)
          .substr(1);

  // A per-game "form" factor correlates the counting stats, as real box
  // scores do (big games are big across the board).
  double form = std::exp(0.35 * rng_.NextGaussian());
  double base = player.skill * form;
  const auto& positions = PositionNames();
  // Position profile: guards assist more, bigs rebound/block more.
  double guardness = 1.0 - player.position / 4.0;   // PG=1 .. C=0
  double bigness = player.position / 4.0;           // PG=0 .. C=1

  double points = Stat(base * 34.0 + rng_.NextGaussian() * 4.0, 0, 70);
  double rebounds =
      Stat(base * (4.0 + 12.0 * bigness) + rng_.NextGaussian() * 2.0, 0, 28);
  double assists =
      Stat(base * (2.0 + 11.0 * guardness) + rng_.NextGaussian() * 1.6, 0, 22);
  double blocks =
      Stat(base * 3.4 * bigness + rng_.NextGaussian() * 0.7, 0, 10);
  double steals =
      Stat(base * 2.6 * guardness + rng_.NextGaussian() * 0.7, 0, 9);
  // Fouls / turnovers: weakly anti-correlated with skill, bounded.
  double fouls = Stat(2.8 - player.skill + rng_.NextGaussian() * 1.2, 0, 6);
  double turnovers =
      Stat(1.2 + base * 2.2 + rng_.NextGaussian() * 1.1, 0, 11);

  Row row;
  row.dimensions = {player.name,
                    positions[player.position],
                    player.college,
                    StateNames()[player.state],
                    season,
                    months[month],
                    teams[team],
                    teams[opp]};
  row.measures = {points, rebounds, assists, blocks, steals, fouls,
                  turnovers};
  ++tuple_index_;
  return row;
}

Dataset NbaGenerator::Generate(int n) {
  Dataset out(FullSchema());
  for (int i = 0; i < n; ++i) out.Add(Next());
  return out;
}

}  // namespace sitfact
