#ifndef SITFACT_DATAGEN_NAMES_H_
#define SITFACT_DATAGEN_NAMES_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace sitfact {

/// Value pools for the synthetic datasets. Cardinalities mirror the real
/// datasets the paper used (29 NBA franchises of the era, 50 states, a few
/// hundred colleges, 16 compass directions, ...) because context populations
/// — how many tuples share a dimension value — are what drive the
/// algorithms' work, not the spellings.

/// NBA franchises of the 1991-2004 era (29 teams).
const std::vector<std::string>& NbaTeamNames();

/// The five basketball positions.
const std::vector<std::string>& PositionNames();

/// Regular-season months, Nov through Apr.
const std::vector<std::string>& SeasonMonthNames();

/// US state names (player birth states).
const std::vector<std::string>& StateNames();

/// The 16 compass directions (weather wind directions).
const std::vector<std::string>& CompassDirections();

/// UK Met Office visibility bands.
const std::vector<std::string>& VisibilityRanges();

/// Forecast time steps.
const std::vector<std::string>& TimeSteps();

/// UK countries/regions in the weather dataset (6).
const std::vector<std::string>& UkCountries();

/// Synthesizes a plausible player name from seeded syllables; distinct
/// `index` values give distinct names.
std::string SynthesizePlayerName(uint64_t index);

/// "Xxxxx University" / "College of Xxxxx" style college name.
std::string SynthesizeCollegeName(uint64_t index);

/// Weather station identifier like "Stn-0421".
std::string SynthesizeLocationName(uint64_t index);

}  // namespace sitfact

#endif  // SITFACT_DATAGEN_NAMES_H_
