#ifndef SITFACT_DATAGEN_NBA_GENERATOR_H_
#define SITFACT_DATAGEN_NBA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "relation/dataset.h"
#include "relation/schema.h"

namespace sitfact {

/// Synthetic NBA box-score stream standing in for the paper's 317,371-tuple
/// 1991-2004 gamelog (Sec. VI-A): same 8 dimension attributes, same 7
/// measures with the paper's preference directions (fouls and turnovers
/// smaller-is-better), and distributions shaped to reproduce what the
/// algorithms are sensitive to:
///   * per-season player turnover (new `player` and `season` values keep
///     forming fresh contexts, the effect behind Fig. 14's flat trend);
///   * star-player skew (Zipf-weighted playing time) so measure columns are
///     heavy-tailed and skylines stay small relative to contexts;
///   * positively correlated measures through a per-game form factor.
class NbaGenerator {
 public:
  struct Config {
    uint64_t seed = 20140331;  // ICDE'14 camera-ready month
    /// Tuples per regular season; the real dataset averages ~24k over 13
    /// seasons.
    int tuples_per_season = 24000;
    int start_year = 1991;
    int roster_size = 13;  // active players per team
    /// Fraction of each team's roster replaced at a season boundary.
    double turnover_rate = 0.15;
    int num_colleges = 300;
  };

  explicit NbaGenerator(const Config& config);
  NbaGenerator() : NbaGenerator(Config()) {}

  /// The full 8-dimension / 7-measure schema; experiments project subsets
  /// (Tables V and VI) with Dataset::Project.
  static Schema FullSchema();

  /// Dimension name subset for the paper's d parameter (Table V); valid d:
  /// 4..7. Measure name subset for m (Table VI); valid m: 4..7.
  static std::vector<std::string> DimensionsForD(int d);
  static std::vector<std::string> MeasuresForM(int m);

  /// Generates the next box-score row (player performance in one game).
  Row Next();

  /// Convenience: a dataset of `n` rows.
  Dataset Generate(int n);

 private:
  struct Player {
    std::string name;
    int position;  // index into PositionNames()
    std::string college;
    int state;
    double skill;  // latent quality in (0, 1], Zipf-skewed
  };

  void StartSeason();
  Player MakePlayer();

  Config config_;
  Rng rng_;
  int64_t tuple_index_ = 0;
  int season_index_ = 0;
  uint64_t player_counter_ = 0;
  std::vector<std::vector<Player>> rosters_;  // [team][slot]
};

}  // namespace sitfact

#endif  // SITFACT_DATAGEN_NBA_GENERATOR_H_
