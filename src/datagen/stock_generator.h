#ifndef SITFACT_DATAGEN_STOCK_GENERATOR_H_
#define SITFACT_DATAGEN_STOCK_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "relation/dataset.h"
#include "relation/schema.h"

namespace sitfact {

/// Synthetic end-of-day stock stream for the introduction's finance example
/// ("Stock A becomes the first stock in history with price over $300 and
/// market cap over $400 billion"). One row is one ticker's trading day.
///
/// Dimensions: ticker, sector, exchange, year, month, cap_class (small/
/// mid/large, a coarse label that forms mid-cardinality contexts).
/// Measures: close_price, market_cap_b, volume_m, pct_change, volatility —
/// all larger-is-better except volatility (a risk measure, smaller is
/// preferred).
///
/// The process is a per-ticker geometric random walk with sector-level
/// drift shocks, so prices and market caps are positively correlated within
/// a ticker (dominance geometry similar to the NBA skew) while cross-ticker
/// diversity keeps contextual skylines small.
class StockGenerator {
 public:
  struct Config {
    uint64_t seed = 19290924;  // Black Thursday, for flavour
    int num_tickers = 400;
    int num_sectors = 11;      // GICS-like sector count
    int start_year = 2004;
    /// Trading days per simulated year (drives the `year` dimension).
    int days_per_year = 252;
  };

  explicit StockGenerator(const Config& config);
  StockGenerator() : StockGenerator(Config()) {}

  /// ticker, sector, exchange, year, month, cap_class ;
  /// close_price, market_cap_b, volume_m, pct_change, volatility.
  static Schema FullSchema();

  /// Generates the next trading-day row (tickers cycle round-robin within a
  /// day so every ticker trades once per day).
  Row Next();

  /// Convenience: a dataset of `n` rows.
  Dataset Generate(int n);

 private:
  struct Ticker {
    std::string symbol;
    int sector;
    int exchange;
    double price;        // current close
    double shares_b;     // shares outstanding, billions
    double drift;        // per-day log-return drift
    double vol;          // per-day log-return stddev
  };

  Config config_;
  Rng rng_;
  std::vector<Ticker> tickers_;
  std::vector<double> sector_shock_;  // slow-moving sector drift component
  int64_t tuple_index_ = 0;
};

}  // namespace sitfact

#endif  // SITFACT_DATAGEN_STOCK_GENERATOR_H_
