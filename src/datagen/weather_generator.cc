#include "datagen/weather_generator.h"

#include <cmath>

#include "common/logging.h"
#include "datagen/names.h"

namespace sitfact {

namespace {

const char* const kMonths[] = {"Dec", "Jan", "Feb", "Mar", "Apr", "May",
                               "Jun", "Jul", "Aug", "Sep", "Oct", "Nov"};

double Clamp(double v, double lo, double hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

}  // namespace

WeatherGenerator::WeatherGenerator(const Config& config)
    : config_(config), rng_(config.seed) {
  SITFACT_CHECK(config_.num_locations > 0);
  locations_.reserve(config_.num_locations);
  const auto& countries = UkCountries();
  for (int i = 0; i < config_.num_locations; ++i) {
    Location loc;
    loc.name = SynthesizeLocationName(static_cast<uint64_t>(i));
    // England hosts most stations; the small regions few, as in the archive.
    double c = rng_.NextDouble();
    if (c < 0.62) {
      loc.country = 0;
    } else if (c < 0.80) {
      loc.country = 1;
    } else if (c < 0.92) {
      loc.country = 2;
    } else if (c < 0.975) {
      loc.country = 3;
    } else if (c < 0.99) {
      loc.country = 4;
    } else {
      loc.country = 5;
    }
    (void)countries;
    loc.maritime = rng_.NextDouble();
    loc.latitude = rng_.NextDouble();
    locations_.push_back(std::move(loc));
  }
}

Schema WeatherGenerator::FullSchema() {
  return Schema(
      {{"location"},
       {"country"},
       {"month"},
       {"time_step"},
       {"wind_dir_day"},
       {"wind_dir_night"},
       {"visibility_range"}},
      {{"wind_speed_day", Direction::kLargerIsBetter},
       {"wind_speed_night", Direction::kLargerIsBetter},
       {"temperature_day", Direction::kLargerIsBetter},
       {"temperature_night", Direction::kLargerIsBetter},
       {"humidity_day", Direction::kLargerIsBetter},
       {"humidity_night", Direction::kLargerIsBetter},
       {"wind_gust", Direction::kLargerIsBetter}});
}

std::vector<std::string> WeatherGenerator::DimensionsForD(int d) {
  static const char* const kOrder[] = {
      "location",      "country",        "month",           "time_step",
      "wind_dir_day",  "wind_dir_night", "visibility_range"};
  SITFACT_CHECK_MSG(d >= 1 && d <= 7, "d must be in [1, 7]");
  return std::vector<std::string>(kOrder, kOrder + d);
}

std::vector<std::string> WeatherGenerator::MeasuresForM(int m) {
  static const char* const kOrder[] = {
      "wind_speed_day",   "wind_speed_night", "temperature_day",
      "temperature_night", "humidity_day",    "humidity_night",
      "wind_gust"};
  SITFACT_CHECK_MSG(m >= 1 && m <= 7, "m must be in [1, 7]");
  return std::vector<std::string>(kOrder, kOrder + m);
}

Row WeatherGenerator::Next() {
  const auto& dirs = CompassDirections();
  const auto& steps = TimeSteps();
  const auto& vis = VisibilityRanges();

  int64_t day = record_index_ / config_.records_per_day;
  int month = static_cast<int>((day / 30) % 12);
  // Season phase: 0 at mid-winter (Dec), pi at mid-summer.
  double phase = 2.0 * 3.141592653589793 * (month / 12.0);

  const Location& loc =
      locations_[rng_.NextBounded(locations_.size())];

  // Prevailing south-westerlies with noise.
  int dir_day = static_cast<int>((10 + rng_.NextInt(-3, 3) + 16) % 16);
  int dir_night = (dir_day + static_cast<int>(rng_.NextInt(-2, 2)) + 16) % 16;
  int step = static_cast<int>(rng_.NextBounded(steps.size()));

  double storminess = 0.5 - 0.35 * std::cos(phase);  // windier in winter
  double wind_day = Clamp(6.0 + 30.0 * storminess * (0.4 + loc.maritime) +
                              rng_.NextGaussian() * 6.0,
                          0, 90);
  double wind_night = Clamp(wind_day * (0.8 + 0.3 * rng_.NextDouble()) +
                                rng_.NextGaussian() * 4.0,
                            0, 90);
  double temp_day = Clamp(10.0 - 8.0 * std::cos(phase) - 6.0 * loc.latitude +
                              4.0 * loc.maritime + rng_.NextGaussian() * 3.0,
                          -12, 35);
  double temp_night = Clamp(temp_day - 4.0 - 3.0 * rng_.NextDouble() +
                                rng_.NextGaussian() * 2.0,
                            -18, 30);
  double hum_day = Clamp(70.0 + 12.0 * std::cos(phase) +
                             8.0 * loc.maritime + rng_.NextGaussian() * 8.0,
                         25, 100);
  double hum_night = Clamp(hum_day + 6.0 + rng_.NextGaussian() * 6.0, 25, 100);
  double gust = Clamp(wind_day * 1.6 + rng_.NextGaussian() * 8.0, 0, 130);

  // Visibility correlates with humidity.
  int vis_idx = static_cast<int>(
      Clamp(5.5 - (hum_day - 40.0) / 12.0 + rng_.NextGaussian(), 0, 5));

  Row row;
  row.dimensions = {loc.name,
                    UkCountries()[loc.country],
                    kMonths[month],
                    steps[step],
                    dirs[dir_day],
                    dirs[dir_night],
                    vis[vis_idx]};
  row.measures = {wind_day, wind_night, temp_day, temp_night,
                  hum_day,  hum_night,  gust};
  ++record_index_;
  return row;
}

Dataset WeatherGenerator::Generate(int n) {
  Dataset out(FullSchema());
  for (int i = 0; i < n; ++i) out.Add(Next());
  return out;
}

}  // namespace sitfact
