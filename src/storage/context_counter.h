#ifndef SITFACT_STORAGE_CONTEXT_COUNTER_H_
#define SITFACT_STORAGE_CONTEXT_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "lattice/constraint.h"
#include "relation/relation.h"

namespace sitfact {

/// Incrementally maintains |σ_C(R)| for every constraint ever satisfied by
/// an arrived tuple (restricted to at most `max_bound` bound attributes).
/// The prominence measure of Sec. VII is
/// |σ_C(R)| / |λ_M(σ_C(R))|, so discovery engines bump this counter on every
/// arrival before ranking the arrival's facts.
class ContextCounter {
 public:
  explicit ContextCounter(int max_bound) : max_bound_(max_bound) {}

  /// Registers the arrival of tuple `t`: increments the count of every
  /// constraint in C^t with at most max_bound bound attributes.
  void OnArrival(const Relation& r, TupleId t);

  /// Deletion extension: decrements the counts OnArrival(t) incremented.
  void OnRemoval(const Relation& r, TupleId t);

  /// Shard-partitioned variants: bump only the constraints lifted from
  /// `masks`. The ShardedEngine keeps one counter per shard, each fed the
  /// shard's owned masks, so that across shards the union of updates equals
  /// one OnArrival/OnRemoval call (masks must partition the truncated
  /// lattice).
  void OnArrivalMasks(const Relation& r, TupleId t,
                      const std::vector<DimMask>& masks);
  void OnRemovalMasks(const Relation& r, TupleId t,
                      const std::vector<DimMask>& masks);

  /// |σ_C(R)| for a constraint (0 if never seen).
  uint64_t Count(const Constraint& c) const;

  /// Visits every (constraint, count) pair, unspecified order; snapshotting.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [c, n] : counts_) fn(c, n);
  }

  /// Snapshot restore: sets one constraint's count directly. Counts of zero
  /// are dropped rather than stored.
  void Restore(const Constraint& c, uint64_t count) {
    if (count == 0) {
      counts_.erase(c);
    } else {
      counts_[c] = count;
    }
  }

  /// Persistence hook (docs/persistence.md): writes the entry count (u64)
  /// followed by every (constraint, count) pair, unspecified order.
  void Serialize(BinaryWriter* w) const;

  /// Restores what Serialize wrote into this counter (existing entries are
  /// kept — call on a fresh counter). `num_dims` validates constraint masks;
  /// counts land via Restore(). Corruption/IoError from the reader is
  /// returned and the counter may hold a partial prefix.
  Status Deserialize(BinaryReader* r, int num_dims);

  int max_bound() const { return max_bound_; }

  size_t distinct_contexts() const { return counts_.size(); }

  size_t ApproxMemoryBytes() const {
    return counts_.size() *
           (sizeof(Constraint) + sizeof(uint64_t) + 3 * sizeof(void*));
  }

 private:
  int max_bound_;
  std::unordered_map<Constraint, uint64_t, ConstraintHash> counts_;
};

}  // namespace sitfact

#endif  // SITFACT_STORAGE_CONTEXT_COUNTER_H_
