#include "storage/page_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "common/logging.h"

namespace sitfact {

namespace {

/// Slot header: magic marking the slot as ever-written, then the payload
/// CRC. An unwritten slot (hole or beyond EOF) preads as zeros, which fails
/// the magic check and decodes as a zeroed page — exactly what a fresh,
/// never-written page holds.
constexpr uint32_t kSlotMagic = 0x53504147;  // "GAPS" little-endian
constexpr size_t kSlotHeaderBytes = 2 * sizeof(uint32_t);

}  // namespace

PageCache::PageCache(std::string path, uint32_t page_size,
                     size_t capacity_bytes)
    : path_(std::move(path)),
      page_size_(page_size),
      capacity_bytes_(capacity_bytes) {
  SITFACT_CHECK(page_size_ >= sizeof(uint32_t));
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    RecordError(Status::IoError("cannot open spill file " + path_ + ": " +
                                std::strerror(errno)));
  }
}

PageCache::~PageCache() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

void PageCache::RecordError(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

uint64_t PageCache::SlotOffset(PageId id) const {
  return static_cast<uint64_t>(id) * (kSlotHeaderBytes + page_size_);
}

PageCache::PageId PageCache::Allocate() {
  PageId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = next_page_++;
    if (next_page_ > high_water_pages_) high_water_pages_ = next_page_;
  }
  ++live_pages_;
  Frame& frame = frames_[id];
  frame.data = std::make_unique<uint8_t[]>(page_size_);
  std::memset(frame.data.get(), 0, page_size_);
  // Dirty from birth: if this id was recycled, the slot on disk still holds
  // its previous life's bytes under a valid CRC; an eviction must overwrite
  // them with the new (zeroed) content.
  frame.dirty = true;
  frame.lru_pos = lru_.insert(lru_.end(), id);
  EvictIfOver();
  return id;
}

PageCache::PageId PageCache::AllocateRun(uint32_t count) {
  SITFACT_CHECK(count > 0);
  PageId first = next_page_;
  next_page_ += count;
  if (next_page_ > high_water_pages_) high_water_pages_ = next_page_;
  live_pages_ += count;
  for (uint32_t k = 0; k < count; ++k) {
    PageId id = first + k;
    Frame& frame = frames_[id];
    frame.data = std::make_unique<uint8_t[]>(page_size_);
    std::memset(frame.data.get(), 0, page_size_);
    frame.dirty = true;
    frame.lru_pos = lru_.insert(lru_.end(), id);
  }
  EvictIfOver();
  return first;
}

void PageCache::Free(PageId id) {
  SITFACT_DCHECK(live_pages_ > 0);
  --live_pages_;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (it->second.pins > 0) {
      it->second.zombie = true;  // advisory pin outlives the record; defer
      return;
    }
    DropFrame(id);
  }
  free_.push_back(id);
}

void PageCache::DropFrame(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  if (it->second.pins == 0) lru_.erase(it->second.lru_pos);
  frames_.erase(it);
}

uint8_t* PageCache::Pin(PageId id) {
  auto it = frames_.find(id);
  Frame* frame;
  if (it != frames_.end()) {
    ++stats_.hits;
    frame = &it->second;
  } else {
    frame = LoadFrame(id);
  }
  if (frame->pins++ == 0) {
    lru_.erase(frame->lru_pos);
    frame->lru_pos = lru_.end();
    ++pinned_pages_;
  }
  return frame->data.get();
}

void PageCache::Unpin(PageId id, bool dirty) {
  auto it = frames_.find(id);
  SITFACT_CHECK_MSG(it != frames_.end() && it->second.pins > 0,
                    "Unpin of a page that is not pinned");
  Frame& frame = it->second;
  frame.dirty |= dirty;
  if (--frame.pins == 0) {
    --pinned_pages_;
    if (frame.zombie) {
      frames_.erase(it);
      free_.push_back(id);
      return;
    }
    frame.lru_pos = lru_.insert(lru_.end(), id);
    EvictIfOver();
  }
}

PageCache::Frame* PageCache::LoadFrame(PageId id) {
  ++stats_.misses;
  Frame& frame = frames_[id];
  frame.data = std::make_unique<uint8_t[]>(page_size_);
  frame.lru_pos = lru_.insert(lru_.end(), id);
  uint8_t header[kSlotHeaderBytes];
  bool loaded = false;
  if (fd_ >= 0) {
    ssize_t got = ::pread(fd_, header, kSlotHeaderBytes, SlotOffset(id));
    if (got == static_cast<ssize_t>(kSlotHeaderBytes)) {
      uint32_t magic, crc;
      std::memcpy(&magic, header, sizeof(magic));
      std::memcpy(&crc, header + sizeof(magic), sizeof(crc));
      if (magic == kSlotMagic) {
        got = ::pread(fd_, frame.data.get(), page_size_,
                      SlotOffset(id) + kSlotHeaderBytes);
        if (got == static_cast<ssize_t>(page_size_)) {
          Crc32 check;
          check.Update(frame.data.get(), page_size_);
          if (check.value() == crc) {
            loaded = true;
          } else {
            RecordError(Status::Corruption("page CRC mismatch in " + path_));
          }
        } else {
          RecordError(Status::Corruption("short page read in " + path_));
        }
      } else if (magic != 0 || crc != 0) {
        RecordError(Status::Corruption("bad page slot header in " + path_));
      }
      // magic == 0 && crc == 0: never-written slot, a zeroed page.
    }
    // Short header read: slot beyond EOF, i.e. never written; zeroed page.
  }
  if (!loaded) std::memset(frame.data.get(), 0, page_size_);
  return &frame;
}

void PageCache::WriteBack(PageId id, Frame* frame) {
  if (fd_ < 0) return;
  ++stats_.writebacks;
  Crc32 crc;
  crc.Update(frame->data.get(), page_size_);
  uint8_t header[kSlotHeaderBytes];
  uint32_t magic = kSlotMagic;
  uint32_t sum = crc.value();
  std::memcpy(header, &magic, sizeof(magic));
  std::memcpy(header + sizeof(magic), &sum, sizeof(sum));
  bool ok =
      ::pwrite(fd_, header, kSlotHeaderBytes, SlotOffset(id)) ==
          static_cast<ssize_t>(kSlotHeaderBytes) &&
      ::pwrite(fd_, frame->data.get(), page_size_,
               SlotOffset(id) + kSlotHeaderBytes) ==
          static_cast<ssize_t>(page_size_);
  if (!ok) {
    RecordError(Status::IoError("page writeback failed in " + path_ + ": " +
                                std::strerror(errno)));
  }
  frame->dirty = false;
}

void PageCache::EvictIfOver() {
  while (frames_.size() * static_cast<size_t>(page_size_) > capacity_bytes_ &&
         !lru_.empty()) {
    PageId victim = lru_.front();
    auto it = frames_.find(victim);
    SITFACT_DCHECK(it != frames_.end() && it->second.pins == 0);
    if (it->second.dirty) WriteBack(victim, &it->second);
    lru_.pop_front();
    frames_.erase(it);
    ++stats_.evictions;
  }
}

Status PageCache::Flush() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) WriteBack(id, &frame);
  }
  return status_;
}

size_t PageCache::MemoryBytes() const {
  // Frame payloads + per-frame bookkeeping (hash node, LRU node).
  return frames_.size() * (page_size_ + sizeof(Frame) + 5 * sizeof(void*)) +
         frames_.bucket_count() * sizeof(void*) +
         free_.capacity() * sizeof(PageId);
}

uint64_t PageCache::DiskBytes() const {
  return high_water_pages_ * (kSlotHeaderBytes + page_size_);
}

}  // namespace sitfact
