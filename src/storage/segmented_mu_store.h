#ifndef SITFACT_STORAGE_SEGMENTED_MU_STORE_H_
#define SITFACT_STORAGE_SEGMENTED_MU_STORE_H_

#include <memory>
#include <vector>

#include "storage/mu_store.h"
#include "storage/storage_options.h"

namespace sitfact {

/// A µ store split into independent segments, routed by the constraint's
/// bound-attribute mask. The ShardedDiscoverer assigns each lattice mask to
/// exactly one shard and hands shard s exclusive write ownership of segment
/// s, so shard-parallel discovery touches disjoint segments without locks.
///
/// Segments are built from a StorageConfig: in-memory by default, or paged
/// (each segment gets its own PageCache with an equal slice of the cache
/// budget and a private spill file — no cross-shard synchronization in the
/// paging layer either).
///
/// Thread-safety contract: concurrent calls are safe iff no two threads
/// touch constraints routed to the same segment, and the whole-store views
/// (stats(), ForEachBucket, ApproxMemoryBytes, dirty iteration) run only
/// while no segment is being mutated (i.e. between merge barriers).
class SegmentedMuStore : public MuStore {
 public:
  /// `segment_of_mask` maps every DimMask (dense, size 2^d) to a segment in
  /// [0, num_segments). Masks never used by the owner may map anywhere.
  SegmentedMuStore(int num_segments, std::vector<uint8_t> segment_of_mask,
                   const StorageConfig& storage = {});

  Context* GetOrCreate(const Constraint& c) override;
  Context* Find(const Constraint& c) override;

  void ForEachBucket(
      const std::function<void(const Constraint&, MeasureMask,
                               const std::vector<TupleId>&)>& fn) override;

  /// Sums the per-segment counters into one MuStoreStats. Without this
  /// override the base stats_ would stay zero forever and
  /// Discoverer::StoredTupleCount() / the bench harness would under-report.
  const MuStoreStats& stats() const override;

  /// Forwards the registration to every segment: mutations go straight to
  /// the per-shard stores, so an observer registered only on the composite
  /// would never fire. The observer must be thread-safe — shards mutate
  /// their segments concurrently.
  void set_bucket_observer(BucketObserver* observer) override;

  /// Memory and paged segments both notify on every mutation.
  bool NotifiesObservers() const override {
    return segments_.front()->NotifiesObservers();
  }

  /// Dirty tracking, Flush and pin hints all fan out to (or route into) the
  /// segments; each segment keeps its own dirty set, so shard threads never
  /// contend on shared tracking state.
  bool SupportsDirtyTracking() const override {
    return segments_.front()->SupportsDirtyTracking();
  }
  void set_dirty_tracking(bool enabled) override;
  void ForEachDirtyBucket(
      const std::function<void(const Constraint&, MeasureMask)>& fn)
      const override;
  void ClearDirty() override;
  uint64_t DirtyBucketCount() const override;
  Status Flush() override;
  void PinContext(const Constraint& c) override;
  void UnpinContext(const Constraint& c) override;

  size_t ApproxMemoryBytes() const override;

  int num_segments() const { return static_cast<int>(segments_.size()); }
  int SegmentOf(DimMask mask) const { return segment_of_mask_[mask]; }

  /// Direct segment access for the owning shard's hot path.
  MuStore* segment(int i) { return segments_[i].get(); }
  const MuStore* segment(int i) const { return segments_[i].get(); }

 private:
  std::vector<std::unique_ptr<MuStore>> segments_;
  std::vector<uint8_t> segment_of_mask_;
  mutable MuStoreStats aggregated_;
};

}  // namespace sitfact

#endif  // SITFACT_STORAGE_SEGMENTED_MU_STORE_H_
