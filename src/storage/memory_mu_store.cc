#include "storage/memory_mu_store.h"

#include <algorithm>

namespace sitfact {

MuStore::Context* MemoryMuStore::GetOrCreate(const Constraint& c) {
  auto [it, inserted] = contexts_.try_emplace(c, &stats_);
  if (inserted) {
    it->second.owner_ = this;
    it->second.constraint_ = &it->first;
  }
  return &it->second;
}

void MemoryMuStore::MemContext::Notify(
    MeasureMask m, const std::vector<TupleId>& bucket) const {
  if (owner_ == nullptr) return;
  // Every mutation funnels through here, which makes it the single dirty-
  // tracking point too (delta checkpoints; no-op unless enabled).
  owner_->MarkDirtyBucket(*constraint_, m);
  if (owner_->bucket_observer() != nullptr) {
    owner_->bucket_observer()->OnBucketChanged(*constraint_, m, bucket);
  }
}

void MemoryMuStore::MemContext::NotifyRemoved(MeasureMask m) const {
  static const std::vector<TupleId> kEmpty;
  Notify(m, kEmpty);
}

MuStore::Context* MemoryMuStore::Find(const Constraint& c) {
  auto it = contexts_.find(c);
  return it == contexts_.end() ? nullptr : &it->second;
}

void MemoryMuStore::ForEachBucket(
    const std::function<void(const Constraint&, MeasureMask,
                             const std::vector<TupleId>&)>& fn) {
  for (const auto& [constraint, ctx] : contexts_) {
    for (const auto& entry : ctx.entries_) {
      if (!entry.bucket.empty()) fn(constraint, entry.mask, entry.bucket);
    }
  }
}

size_t MemoryMuStore::ApproxMemoryBytes() const {
  // The hash table's bucket array and the per-heap-block allocator header
  // (~16B under glibc) are real resident bytes; leaving them out made this
  // undercount getrusage by ~30% at fig10 scale.
  size_t bytes = sizeof(*this) + contexts_.bucket_count() * sizeof(void*);
  for (const auto& [key, ctx] : contexts_) {
    // Key + MemContext value + hash-node pointers + node allocation header.
    bytes += sizeof(Constraint) + sizeof(MemContext) + 3 * sizeof(void*) +
             kHeapAllocOverhead;
    bytes += ctx.ApproxMemoryBytes();
  }
  return bytes;
}

int MemoryMuStore::MemContext::FindEntry(MeasureMask m) const {
  if (last_entry_ >= 0 && last_mask_ == m &&
      last_entry_ < static_cast<int>(entries_.size()) &&
      entries_[last_entry_].mask == m) {
    return last_entry_;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  if (it == entries_.end() || it->mask != m) return -1;
  last_entry_ = static_cast<int>(it - entries_.begin());
  last_mask_ = m;
  return last_entry_;
}

std::vector<TupleId>* MemoryMuStore::MemContext::GetBucket(MeasureMask m,
                                                           bool create) {
  int i = FindEntry(m);
  if (i >= 0) return &entries_[i].bucket;
  if (!create) return nullptr;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  it = entries_.insert(it, Entry{m, {}});
  last_entry_ = static_cast<int>(it - entries_.begin());
  last_mask_ = m;
  return &it->bucket;
}

void MemoryMuStore::MemContext::Read(MeasureMask m,
                                     std::vector<TupleId>* out) {
  ++stats_->bucket_reads;
  out->clear();
  int i = FindEntry(m);
  if (i >= 0) *out = entries_[i].bucket;
}

void MemoryMuStore::MemContext::Write(MeasureMask m,
                                      const std::vector<TupleId>& contents) {
  ++stats_->bucket_writes;
  int i = FindEntry(m);
  if (i < 0 && contents.empty()) return;
  if (i >= 0) {
    stats_->stored_tuples -= entries_[i].bucket.size();
    if (contents.empty()) {
      entries_.erase(entries_.begin() + i);
      last_entry_ = -1;
      NotifyRemoved(m);
    } else {
      entries_[i].bucket = contents;
      stats_->stored_tuples += contents.size();
      Notify(m, contents);
    }
    return;
  }
  *GetBucket(m, /*create=*/true) = contents;
  stats_->stored_tuples += contents.size();
  Notify(m, contents);
}

uint32_t MemoryMuStore::MemContext::Size(MeasureMask m) const {
  int i = FindEntry(m);
  return i < 0 ? 0 : static_cast<uint32_t>(entries_[i].bucket.size());
}

bool MemoryMuStore::MemContext::Contains(MeasureMask m, TupleId t) {
  ++stats_->bucket_reads;
  int i = FindEntry(m);
  if (i < 0) return false;
  const auto& b = entries_[i].bucket;
  return std::find(b.begin(), b.end(), t) != b.end();
}

void MemoryMuStore::MemContext::Insert(MeasureMask m, TupleId t) {
  ++stats_->bucket_writes;
  std::vector<TupleId>* bucket = GetBucket(m, /*create=*/true);
  bucket->push_back(t);
  ++stats_->stored_tuples;
  Notify(m, *bucket);
}

bool MemoryMuStore::MemContext::Erase(MeasureMask m, TupleId t) {
  int i = FindEntry(m);
  if (i < 0) return false;
  auto& b = entries_[i].bucket;
  auto it = std::find(b.begin(), b.end(), t);
  if (it == b.end()) return false;
  ++stats_->bucket_writes;
  *it = b.back();
  b.pop_back();
  --stats_->stored_tuples;
  if (b.empty()) {
    entries_.erase(entries_.begin() + i);
    last_entry_ = -1;
    NotifyRemoved(m);
  } else {
    Notify(m, b);
  }
  return true;
}

std::vector<TupleId>* MemoryMuStore::MemContext::Direct(MeasureMask m,
                                                        bool create) {
  std::vector<TupleId>* bucket = GetBucket(m, create);
  if (bucket != nullptr) ++stats_->bucket_reads;
  return bucket;
}

void MemoryMuStore::MemContext::CommitDirect(MeasureMask m, size_t old_size) {
  ++stats_->bucket_writes;
  int i = FindEntry(m);
  if (i < 0) return;  // bucket vanished; nothing to reconcile
  stats_->stored_tuples += entries_[i].bucket.size();
  stats_->stored_tuples -= old_size;
  if (entries_[i].bucket.empty()) {
    entries_.erase(entries_.begin() + i);
    last_entry_ = -1;
    NotifyRemoved(m);
  } else {
    Notify(m, entries_[i].bucket);
  }
}

size_t MemoryMuStore::MemContext::ApproxMemoryBytes() const {
  size_t bytes = entries_.capacity() * sizeof(Entry);
  if (entries_.capacity() > 0) bytes += kHeapAllocOverhead;
  for (const auto& e : entries_) {
    bytes += e.bucket.capacity() * sizeof(TupleId);
    if (e.bucket.capacity() > 0) bytes += kHeapAllocOverhead;
  }
  return bytes;
}

}  // namespace sitfact
