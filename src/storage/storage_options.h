#ifndef SITFACT_STORAGE_STORAGE_OPTIONS_H_
#define SITFACT_STORAGE_STORAGE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/mu_store.h"

namespace sitfact {

/// Which MuStore implementation backs a µ-keeping algorithm.
enum class StorageBackend : uint8_t {
  /// Resolve from the environment: SITFACT_STORAGE=memory|paged, defaulting
  /// to memory. Lets CI pin whole test suites onto the paged backend
  /// without touching call sites.
  kAuto = 0,
  kMemory,
  /// Out-of-core PagedMuStore behind a bounded PageCache.
  kPaged,
};

/// µ-store backend selection, carried inside DiscoveryOptions so it flows
/// through every engine factory (sequential, sharded, durable, service,
/// CLI) without new plumbing at each layer.
struct StorageConfig {
  StorageBackend backend = StorageBackend::kAuto;
  /// Paged backend: resident page-cache budget (the --cache-mb knob; also
  /// SITFACT_STORAGE_CACHE_MB). Divided across segments in a sharded store.
  size_t cache_bytes = 64u << 20;
  /// Paged backend: page payload bytes.
  uint32_t page_size = 4096;
  /// Directory for spill files; empty means the system temp directory.
  /// Each store gets a unique file name (pid + counter), unlinked on
  /// destruction.
  std::string spill_dir;
};

/// kAuto resolved against SITFACT_STORAGE; other values pass through.
StorageBackend ResolveStorageBackend(const StorageConfig& config);

/// Returns `config` with kAuto resolved and, when the backend came from the
/// environment, SITFACT_STORAGE_CACHE_MB applied to cache_bytes.
StorageConfig ResolvedStorageConfig(StorageConfig config);

/// Parses a --storage flag value ("memory", "paged", "auto").
StatusOr<StorageBackend> ParseStorageBackend(const std::string& name);
const char* StorageBackendName(StorageBackend backend);

/// A unique spill-file path under config.spill_dir (or the temp dir).
std::string NewSpillFilePath(const StorageConfig& config);

/// Builds the store `config` asks for. Resolves kAuto first.
std::unique_ptr<MuStore> CreateMuStore(const StorageConfig& config);

}  // namespace sitfact

#endif  // SITFACT_STORAGE_STORAGE_OPTIONS_H_
