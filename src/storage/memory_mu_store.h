#ifndef SITFACT_STORAGE_MEMORY_MU_STORE_H_
#define SITFACT_STORAGE_MEMORY_MU_STORE_H_

#include <unordered_map>
#include <vector>

#include "storage/mu_store.h"

namespace sitfact {

/// Assumed per-heap-block allocator header, counted by ApproxMemoryBytes so
/// its totals track getrusage instead of undercounting by the (many small)
/// container allocations' bookkeeping.
inline constexpr size_t kHeapAllocOverhead = 16;

/// In-memory µ store: constraint -> sorted-by-mask list of (subspace, bucket)
/// entries. A flat sorted vector beats a per-context hash map because most
/// contexts hold buckets for only a handful of subspaces.
class MemoryMuStore : public MuStore {
 public:
  MemoryMuStore() = default;

  Context* GetOrCreate(const Constraint& c) override;
  Context* Find(const Constraint& c) override;

  void ForEachBucket(
      const std::function<void(const Constraint&, MeasureMask,
                               const std::vector<TupleId>&)>& fn) override;

  size_t ApproxMemoryBytes() const override;

  /// The memory store notifies on every mutating Context operation.
  bool NotifiesObservers() const override { return true; }

  /// Dirty tracking rides the same mutation funnel as the observer hook.
  bool SupportsDirtyTracking() const override { return true; }

  /// Number of distinct constraints with an entry.
  size_t context_count() const { return contexts_.size(); }

 private:
  class MemContext : public Context {
   public:
    explicit MemContext(MuStoreStats* stats) : stats_(stats) {}

    void Read(MeasureMask m, std::vector<TupleId>* out) override;
    void Write(MeasureMask m, const std::vector<TupleId>& contents) override;
    uint32_t Size(MeasureMask m) const override;
    bool Contains(MeasureMask m, TupleId t) override;
    void Insert(MeasureMask m, TupleId t) override;
    bool Erase(MeasureMask m, TupleId t) override;
    std::vector<TupleId>* Direct(MeasureMask m, bool create) override;
    bool SupportsDirect() const override { return true; }
    void CommitDirect(MeasureMask m, size_t old_size) override;

    size_t ApproxMemoryBytes() const;

   private:
    friend class MemoryMuStore;
    struct Entry {
      MeasureMask mask;
      std::vector<TupleId> bucket;
    };

    /// Index into entries_ for `m`, or -1. Entries stay sorted by mask.
    int FindEntry(MeasureMask m) const;
    std::vector<TupleId>* GetBucket(MeasureMask m, bool create);

    /// Bucket-observer hook (MuStore::BucketObserver): one branch when no
    /// observer is registered.
    void Notify(MeasureMask m, const std::vector<TupleId>& bucket) const;
    /// Notify() with an empty bucket (erasure / emptied-bucket reclaim).
    void NotifyRemoved(MeasureMask m) const;

    std::vector<Entry> entries_;
    MuStoreStats* stats_;
    /// Owning store + map key, for observer notifications. The key pointer
    /// is stable: unordered_map nodes never move.
    MemoryMuStore* owner_ = nullptr;
    const Constraint* constraint_ = nullptr;
    /// Memo of the last successful lookup, so the hot Direct→CommitDirect
    /// protocol (one bucket visit per lattice (C, M) traversal) resolves
    /// the entry's position once instead of binary-searching twice. Entry
    /// positions only move on insert/erase, which invalidate it.
    mutable int last_entry_ = -1;
    mutable MeasureMask last_mask_ = 0;
  };

  std::unordered_map<Constraint, MemContext, ConstraintHash> contexts_;
};

}  // namespace sitfact

#endif  // SITFACT_STORAGE_MEMORY_MU_STORE_H_
