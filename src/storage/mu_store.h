#ifndef SITFACT_STORAGE_MU_STORE_H_
#define SITFACT_STORAGE_MU_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "lattice/constraint.h"

namespace sitfact {

/// How an algorithm populates µ buckets; prominence evaluation needs to know
/// which convention a store follows (Invariant 1 vs Invariant 2).
enum class StoragePolicy {
  /// Invariant 1 (BottomUp family): µ_{C,M} holds the full contextual
  /// skyline λ_M(σ_C(R)).
  kAllSkylineConstraints,
  /// Invariant 2 (TopDown family): µ_{C,M} holds a tuple iff C is one of its
  /// maximal skyline constraints MSC^t_M.
  kMaximalSkylineConstraints,
};

/// Aggregate store counters, the raw material of Figs. 10 and 12/13.
struct MuStoreStats {
  uint64_t stored_tuples = 0;   // current Σ bucket sizes (Fig. 10b)
  uint64_t bucket_reads = 0;    // bucket fetches
  uint64_t bucket_writes = 0;   // bucket overwrites
  uint64_t file_reads = 0;      // file loads (file store only)
  uint64_t file_writes = 0;     // file stores (file store only)
};

/// Storage of contextual skylines: one bucket of TupleIds per
/// (constraint, measure-subspace) pair, addressed through a per-constraint
/// Context handle so a discovery pass resolves each constraint's hash once
/// and then touches many subspaces cheaply.
///
/// Buckets are read and written as whole vectors. That matches the paper's
/// file-based implementation (each non-empty µ_{C,M} is one small binary
/// file, slurped on visit and overwritten afterwards) and keeps the
/// in-memory and on-disk stores behaviourally identical.
class MuStore {
 public:
  class Context {
   public:
    virtual ~Context() = default;

    /// Copies the bucket for subspace `m` into *out (cleared first). For the
    /// file store this loads the bucket's file if non-empty.
    virtual void Read(MeasureMask m, std::vector<TupleId>* out) = 0;

    /// Replaces the bucket for subspace `m`. Writing an empty vector removes
    /// the bucket (and deletes its file in the file store).
    virtual void Write(MeasureMask m, const std::vector<TupleId>& contents) = 0;

    /// O(1) size of the bucket from the in-memory index; no IO.
    virtual uint32_t Size(MeasureMask m) const = 0;

    bool Empty(MeasureMask m) const { return Size(m) == 0; }

    /// Membership test; may cost a bucket read in the file store.
    virtual bool Contains(MeasureMask m, TupleId t) = 0;

    /// Appends `t` to the bucket (read-modify-write).
    virtual void Insert(MeasureMask m, TupleId t) = 0;

    /// Removes `t` from the bucket if present; returns whether removed.
    virtual bool Erase(MeasureMask m, TupleId t) = 0;

    /// In-place access for memory-resident stores: a stable pointer to the
    /// live bucket, or nullptr when unsupported (file store) or when the
    /// bucket is absent and !create. A caller that mutates the returned
    /// vector must call CommitDirect exactly once with the size the bucket
    /// had when Direct returned, so stats stay accurate and emptied buckets
    /// are reclaimed. The pointer is valid until the next operation on this
    /// context.
    virtual std::vector<TupleId>* Direct(MeasureMask m, bool create) {
      (void)m;
      (void)create;
      return nullptr;
    }

    /// True when Direct() is implemented, in which case a null Direct(m,
    /// /*create=*/false) means "bucket absent" — letting the cursor skip a
    /// second lookup on the (very common) empty-bucket visit.
    virtual bool SupportsDirect() const { return false; }
    virtual void CommitDirect(MeasureMask m, size_t old_size) {
      (void)m;
      (void)old_size;
    }
  };

  /// Observer of bucket mutations: the hook a per-subspace skyband or
  /// spatial index registers to shadow µ buckets without the store knowing
  /// its type (the SubspaceIndex layer is the intended consumer). Invoked
  /// after each mutation with the bucket's new contents; an emptied or
  /// removed bucket is reported with an empty vector. The memory store
  /// emits on every mutating Context operation (Write, Insert, Erase,
  /// CommitDirect); the file-backed stores do not emit — an index shadowing
  /// a persistent store must rebuild from ForEachBucket after restore.
  class BucketObserver {
   public:
    virtual ~BucketObserver() = default;
    virtual void OnBucketChanged(const Constraint& c, MeasureMask m,
                                 const std::vector<TupleId>& bucket) = 0;
  };

  virtual ~MuStore() = default;

  /// Registers `observer` (or nullptr to detach). At most one; the default
  /// is none, and the hot path pays a single branch when unset. Virtual so
  /// composite stores (SegmentedMuStore) can fan the registration out to
  /// every segment — a sharded engine then feeds an observer the same
  /// mutation stream a sequential engine would.
  virtual void set_bucket_observer(BucketObserver* observer) {
    bucket_observer_ = observer;
  }
  BucketObserver* bucket_observer() const { return bucket_observer_; }

  /// True when this store actually emits OnBucketChanged for every mutation
  /// (the in-memory stores). False for the file-backed stores: an observer
  /// attached to one sees nothing and must rebuild from ForEachBucket — a
  /// shadowing index checks this to know whether it can stay live.
  virtual bool NotifiesObservers() const { return false; }

  /// Stable handle for constraint `c`, creating an (empty) entry if absent.
  virtual Context* GetOrCreate(const Constraint& c) = 0;

  /// Stable handle or nullptr when the constraint has no entry.
  virtual Context* Find(const Constraint& c) = 0;

  /// Visits every non-empty (constraint, subspace, bucket) triple, in
  /// unspecified order. Bucket contents are materialized, so the file store
  /// pays one file read per bucket; intended for snapshotting and debugging,
  /// not the discovery hot path.
  virtual void ForEachBucket(
      const std::function<void(const Constraint&, MeasureMask,
                               const std::vector<TupleId>&)>& fn) = 0;

  /// Aggregate counters. Virtual so composite stores (SegmentedMuStore) can
  /// fold per-segment counters into one view; Discoverer::StoredTupleCount()
  /// and the bench harness read through this.
  virtual const MuStoreStats& stats() const { return stats_; }

  /// Approximate bytes held by the store's in-memory structures (Fig. 10a).
  virtual size_t ApproxMemoryBytes() const = 0;

  /// --- Page-lifetime and dirty-tracking hooks ------------------------------
  /// (docs/architecture.md "Paged µ-storage"; docs/persistence.md "Delta
  /// checkpoints"). Memory-resident stores implement these trivially; the
  /// paged store maps them onto its page cache.

  /// True when the store records which buckets changed since the last
  /// ClearDirty() — the raw material of page-granular delta checkpoints.
  /// The in-memory and paged stores support it; the file store does not
  /// (persist/ falls back to full snapshots over it).
  virtual bool SupportsDirtyTracking() const { return false; }

  /// Enables dirty tracking (default off; when off the mutation hot path
  /// pays one branch). Disabling also clears the dirty set.
  virtual void set_dirty_tracking(bool enabled) {
    dirty_tracking_ = enabled;
    if (!enabled) dirty_.clear();
  }
  bool dirty_tracking() const { return dirty_tracking_; }

  /// Visits every (constraint, subspace) pair whose bucket mutated since the
  /// last ClearDirty(), in unspecified order. The *current* contents are the
  /// caller's to read back (Find + Read); a visited pair whose bucket is now
  /// empty or absent means "removed".
  virtual void ForEachDirtyBucket(
      const std::function<void(const Constraint&, MeasureMask)>& fn) const;

  virtual void ClearDirty() { dirty_.clear(); }
  virtual uint64_t DirtyBucketCount() const;

  /// Writes any buffered state through to the backing medium (the paged
  /// store's dirty-page write-back). Trivially Ok for memory stores.
  virtual Status Flush() { return Status::Ok(); }

  /// Advisory page-lifetime hints: a caller about to make many passes over
  /// one context may bracket them with Pin/Unpin so an out-of-core store
  /// keeps that context's pages resident instead of thrashing its LRU.
  /// Balanced, non-nesting per constraint; no-ops for memory stores.
  virtual void PinContext(const Constraint& c) { (void)c; }
  virtual void UnpinContext(const Constraint& c) { (void)c; }

  /// Persistence hook (docs/persistence.md): writes the bucket dump — a u64
  /// bucket count, then per bucket the constraint, subspace mask and tuple
  /// list. Costs two ForEachBucket passes (the file store pays two reads per
  /// bucket).
  void SerializeBuckets(BinaryWriter* w);

  /// Restores a dump written by SerializeBuckets into this (empty) store.
  /// Tuple ids are validated against `max_tuple` (exclusive). On error the
  /// store may hold a partial prefix; discard it.
  Status DeserializeBuckets(BinaryReader* r, int num_dims, TupleId max_tuple);

 protected:
  /// Subclasses call this at every bucket mutation point — the same places
  /// they notify the BucketObserver. No-op unless tracking is enabled.
  void MarkDirtyBucket(const Constraint& c, MeasureMask m);

  MuStoreStats stats_;
  BucketObserver* bucket_observer_ = nullptr;
  bool dirty_tracking_ = false;
  /// Dirty set: constraint -> mutated subspace masks (linear-dedup vector;
  /// a context touches at most 2^m̂ subspaces, almost always a handful).
  std::unordered_map<Constraint, std::vector<MeasureMask>, ConstraintHash>
      dirty_;
};

/// Decodes a bucket dump, writing each bucket into `store` — or, when
/// `store` is null, validating and discarding it (the snapshot loader's
/// replay-rebuild path still has to consume the section so the stream stays
/// aligned for the trailing checksum).
Status ReadMuBucketDump(BinaryReader* r, int num_dims, TupleId max_tuple,
                        MuStore* store);

/// One bucket visit: prefers the store's in-place path (memory store) and
/// falls back to a Read-into-scratch / Write-back cycle (file store).
/// Usage: Open, mutate contents(), then Commit(ctx) iff modified. Shared by
/// every discoverer that follows the bucket update protocol (the lattice
/// family and the sharded engine).
class BucketCursor {
 public:
  /// `ctx` may be null (unknown constraint); `scratch` must outlive the
  /// cursor and is only used on the fallback path.
  void Open(MuStore::Context* ctx, MeasureMask m,
            std::vector<TupleId>* scratch) {
    m_ = m;
    scratch_ = scratch;
    direct_ = ctx != nullptr ? ctx->Direct(m, /*create=*/false) : nullptr;
    if (direct_ != nullptr) {
      old_size_ = direct_->size();
    } else {
      scratch_->clear();
      // A null Direct from a direct-capable store already proved the
      // bucket absent; only the fallback (file) path needs the probe.
      if (ctx != nullptr && !ctx->SupportsDirect() && !ctx->Empty(m)) {
        ctx->Read(m, scratch_);
      }
    }
  }

  std::vector<TupleId>& contents() {
    return direct_ != nullptr ? *direct_ : *scratch_;
  }

  /// Persists mutations. `ctx` must be non-null by now (create it before
  /// committing an insertion into a previously unknown constraint).
  void Commit(MuStore::Context* ctx) {
    if (direct_ != nullptr) {
      ctx->CommitDirect(m_, old_size_);
    } else {
      ctx->Write(m_, *scratch_);
    }
  }

 private:
  MeasureMask m_ = 0;
  std::vector<TupleId>* direct_ = nullptr;
  std::vector<TupleId>* scratch_ = nullptr;
  size_t old_size_ = 0;
};

}  // namespace sitfact

#endif  // SITFACT_STORAGE_MU_STORE_H_
