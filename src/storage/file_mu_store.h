#ifndef SITFACT_STORAGE_FILE_MU_STORE_H_
#define SITFACT_STORAGE_FILE_MU_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/mu_store.h"

namespace sitfact {

/// File-backed µ store (Sec. VI-C): every non-empty µ_{C,M} bucket is one
/// small binary file of little-endian TupleIds. A bucket visit slurps the
/// whole file into a buffer; updates overwrite the file (empty buckets delete
/// it). An in-memory index keeps constraint -> {subspace -> size}, so
/// emptiness checks cost no IO — which is precisely why FSTopDown beats
/// FSBottomUp: it stores far fewer tuples, leaves most buckets empty, and
/// thus triggers far fewer file reads and writes.
class FileMuStore : public MuStore {
 public:
  /// Creates/uses `root_dir` (made on demand). Existing files from a prior
  /// run with the same directory are NOT reloaded; use a fresh directory per
  /// stream.
  explicit FileMuStore(std::string root_dir);
  ~FileMuStore() override;

  Context* GetOrCreate(const Constraint& c) override;
  Context* Find(const Constraint& c) override;

  void ForEachBucket(
      const std::function<void(const Constraint&, MeasureMask,
                               const std::vector<TupleId>&)>& fn) override;

  size_t ApproxMemoryBytes() const override;

  /// Total bytes currently stored in bucket files.
  uint64_t DiskBytes() const { return disk_bytes_; }

  /// First IO/corruption error encountered, if any. The store keeps serving
  /// (degraded) after an error; callers that care should check this.
  const Status& status() const { return status_; }

  /// Removes the store's directory tree. Called by the destructor.
  void Cleanup();

  size_t context_count() const { return contexts_.size(); }

 private:
  class FileContext : public Context {
   public:
    FileContext(FileMuStore* store, uint64_t context_id)
        : store_(store), context_id_(context_id) {}

    void Read(MeasureMask m, std::vector<TupleId>* out) override;
    void Write(MeasureMask m, const std::vector<TupleId>& contents) override;
    uint32_t Size(MeasureMask m) const override;
    bool Contains(MeasureMask m, TupleId t) override;
    void Insert(MeasureMask m, TupleId t) override;
    bool Erase(MeasureMask m, TupleId t) override;

    size_t ApproxMemoryBytes() const;

   private:
    friend class FileMuStore;
    struct Entry {
      MeasureMask mask;
      uint32_t size;  // cached bucket cardinality
    };

    int FindEntry(MeasureMask m) const;
    void SetSize(MeasureMask m, uint32_t size);

    FileMuStore* store_;
    uint64_t context_id_;
    std::vector<Entry> entries_;
  };

  std::string BucketPath(uint64_t context_id, MeasureMask m) const;
  void LoadBucket(const std::string& path, uint32_t expected_size,
                  std::vector<TupleId>* out);
  void StoreBucket(const std::string& path, uint32_t old_size,
                   const std::vector<TupleId>& contents);
  void RecordError(Status status);

  std::string root_;
  Status status_;
  uint64_t next_context_id_ = 0;
  uint64_t disk_bytes_ = 0;
  std::unordered_map<Constraint, FileContext, ConstraintHash> contexts_;
  std::vector<TupleId> scratch_;  // reused buffer for read-modify-write ops
};

}  // namespace sitfact

#endif  // SITFACT_STORAGE_FILE_MU_STORE_H_
