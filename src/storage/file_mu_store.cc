#include "storage/file_mu_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/logging.h"

namespace sitfact {

namespace fs = std::filesystem;

FileMuStore::FileMuStore(std::string root_dir) : root_(std::move(root_dir)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    RecordError(Status::IoError("cannot create " + root_ + ": " +
                                ec.message()));
  }
  // 256 shard subdirectories keep per-directory file counts manageable.
  for (int shard = 0; shard < 256; ++shard) {
    char name[8];
    std::snprintf(name, sizeof(name), "%02x", shard);
    fs::create_directories(fs::path(root_) / name, ec);
    if (ec) {
      RecordError(Status::IoError("cannot create shard dir: " + ec.message()));
      break;
    }
  }
}

FileMuStore::~FileMuStore() { Cleanup(); }

void FileMuStore::Cleanup() {
  std::error_code ec;
  fs::remove_all(root_, ec);  // Best effort; ignore errors on teardown.
}

void FileMuStore::RecordError(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

MuStore::Context* FileMuStore::GetOrCreate(const Constraint& c) {
  auto it = contexts_.find(c);
  if (it != contexts_.end()) return &it->second;
  auto [new_it, inserted] =
      contexts_.emplace(c, FileContext(this, next_context_id_++));
  return &new_it->second;
}

MuStore::Context* FileMuStore::Find(const Constraint& c) {
  auto it = contexts_.find(c);
  return it == contexts_.end() ? nullptr : &it->second;
}

void FileMuStore::ForEachBucket(
    const std::function<void(const Constraint&, MeasureMask,
                             const std::vector<TupleId>&)>& fn) {
  std::vector<TupleId> bucket;
  for (auto& [constraint, ctx] : contexts_) {
    for (const auto& entry : ctx.entries_) {
      if (entry.size == 0) continue;
      ctx.Read(entry.mask, &bucket);
      fn(constraint, entry.mask, bucket);
    }
  }
}

std::string FileMuStore::BucketPath(uint64_t context_id,
                                    MeasureMask m) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02x/%llx_%x.bin",
                static_cast<unsigned>(context_id & 0xFF),
                static_cast<unsigned long long>(context_id),
                static_cast<unsigned>(m));
  return (fs::path(root_) / buf).string();
}

void FileMuStore::LoadBucket(const std::string& path, uint32_t expected_size,
                             std::vector<TupleId>* out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    RecordError(Status::IoError("missing bucket file: " + path));
    return;
  }
  ++stats_.file_reads;
  out->resize(expected_size);
  size_t read = std::fread(out->data(), sizeof(TupleId), expected_size, f);
  std::fclose(f);
  if (read != expected_size) {
    out->resize(read);
    RecordError(Status::Corruption("short bucket read: " + path));
  }
}

void FileMuStore::StoreBucket(const std::string& path, uint32_t old_size,
                              const std::vector<TupleId>& contents) {
  if (contents.empty()) {
    if (old_size > 0) {
      std::error_code ec;
      fs::remove(path, ec);
      ++stats_.file_writes;
      disk_bytes_ -= old_size * sizeof(TupleId);
    }
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    RecordError(Status::IoError("cannot write bucket file: " + path));
    return;
  }
  ++stats_.file_writes;
  size_t written =
      std::fwrite(contents.data(), sizeof(TupleId), contents.size(), f);
  std::fclose(f);
  if (written != contents.size()) {
    RecordError(Status::IoError("short bucket write: " + path));
  }
  disk_bytes_ += contents.size() * sizeof(TupleId);
  disk_bytes_ -= old_size * sizeof(TupleId);
}

int FileMuStore::FileContext::FindEntry(MeasureMask m) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  if (it == entries_.end() || it->mask != m) return -1;
  return static_cast<int>(it - entries_.begin());
}

void FileMuStore::FileContext::SetSize(MeasureMask m, uint32_t size) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  if (it != entries_.end() && it->mask == m) {
    if (size == 0) {
      entries_.erase(it);
    } else {
      it->size = size;
    }
    return;
  }
  if (size != 0) entries_.insert(it, Entry{m, size});
}

void FileMuStore::FileContext::Read(MeasureMask m,
                                    std::vector<TupleId>* out) {
  ++store_->stats_.bucket_reads;
  int i = FindEntry(m);
  if (i < 0) {
    out->clear();
    return;
  }
  store_->LoadBucket(store_->BucketPath(context_id_, m), entries_[i].size,
                     out);
}

void FileMuStore::FileContext::Write(MeasureMask m,
                                     const std::vector<TupleId>& contents) {
  ++store_->stats_.bucket_writes;
  int i = FindEntry(m);
  uint32_t old_size = i < 0 ? 0 : entries_[i].size;
  if (old_size == 0 && contents.empty()) return;
  store_->StoreBucket(store_->BucketPath(context_id_, m), old_size, contents);
  store_->stats_.stored_tuples += contents.size();
  store_->stats_.stored_tuples -= old_size;
  SetSize(m, static_cast<uint32_t>(contents.size()));
}

uint32_t FileMuStore::FileContext::Size(MeasureMask m) const {
  int i = FindEntry(m);
  return i < 0 ? 0 : entries_[i].size;
}

bool FileMuStore::FileContext::Contains(MeasureMask m, TupleId t) {
  if (Size(m) == 0) return false;
  Read(m, &store_->scratch_);
  return std::find(store_->scratch_.begin(), store_->scratch_.end(), t) !=
         store_->scratch_.end();
}

void FileMuStore::FileContext::Insert(MeasureMask m, TupleId t) {
  Read(m, &store_->scratch_);
  store_->scratch_.push_back(t);
  Write(m, store_->scratch_);
}

bool FileMuStore::FileContext::Erase(MeasureMask m, TupleId t) {
  if (Size(m) == 0) return false;
  Read(m, &store_->scratch_);
  auto it = std::find(store_->scratch_.begin(), store_->scratch_.end(), t);
  if (it == store_->scratch_.end()) return false;
  *it = store_->scratch_.back();
  store_->scratch_.pop_back();
  Write(m, store_->scratch_);
  return true;
}

size_t FileMuStore::FileContext::ApproxMemoryBytes() const {
  return entries_.capacity() * sizeof(Entry);
}

size_t FileMuStore::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, ctx] : contexts_) {
    bytes += sizeof(Constraint) + 3 * sizeof(void*) + sizeof(FileContext);
    bytes += ctx.ApproxMemoryBytes();
  }
  return bytes;
}

}  // namespace sitfact
