#ifndef SITFACT_STORAGE_PAGE_CACHE_H_
#define SITFACT_STORAGE_PAGE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace sitfact {

/// Bounded LRU cache of fixed-size pages over one spill file, the paging
/// substrate of PagedMuStore. The id space is flat (no tree): callers
/// allocate pages, pin them to get at the bytes, and unpin with a dirty
/// flag; when resident bytes exceed the budget the least-recently-unpinned
/// clean or dirty page is evicted (dirty pages are written back first).
/// Pinned pages are never evicted, so a pin is a lease on the pointer until
/// the matching Unpin.
///
/// On-disk layout: slot i at offset i * (kSlotHeaderBytes + page_size),
/// framed like a WAL record (persist/wal.h): u32 magic marking the slot as
/// written, u32 CRC-32 of the payload, then the page bytes. A slot that was
/// never written back reads as a zeroed page (fresh pages are zeroed, so
/// the round trip is the identity); a CRC mismatch latches Corruption into
/// status() and serves a zeroed page, mirroring FileMuStore's
/// degraded-but-serving contract.
///
/// Single-threaded, like every store Context; the sharded engine gives each
/// shard its own cache so no lock is needed.
class PageCache {
 public:
  using PageId = uint32_t;
  static constexpr PageId kInvalidPage = 0xFFFFFFFFu;

  struct Stats {
    uint64_t hits = 0;        // pins served from a resident frame
    uint64_t misses = 0;      // pins that loaded the slot from disk
    uint64_t evictions = 0;   // frames dropped to stay under budget
    uint64_t writebacks = 0;  // dirty frames written to the spill file
  };

  /// Creates/truncates the spill file at `path`. `capacity_bytes` bounds
  /// resident payload bytes (pinned pages may push past it — they cannot be
  /// evicted). The file is unlinked by the destructor.
  PageCache(std::string path, uint32_t page_size, size_t capacity_bytes);
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// A fresh zeroed page, resident and dirty (so a freed slot's stale disk
  /// bytes can never resurface through the free list).
  PageId Allocate();

  /// `count` pages with consecutive ids (a multi-page record run). Always
  /// fresh ids, never from the free list, so the run stays contiguous.
  PageId AllocateRun(uint32_t count);

  /// Returns the page to the free list. Safe while pinned (a zombie: the
  /// frame survives until the last Unpin, then vanishes).
  void Free(PageId id);

  /// Pointer to the resident page bytes, loading the slot on a miss. Valid
  /// until the matching Unpin. Pins nest.
  uint8_t* Pin(PageId id);

  /// Releases one pin; `dirty` records that the caller wrote the page.
  /// Unpinned dirty pages are written back lazily (on eviction or Flush).
  void Unpin(PageId id, bool dirty);

  /// Writes every dirty frame back to the spill file. Pins are untouched.
  Status Flush();

  /// First IO/corruption error, if any; the cache keeps serving (degraded,
  /// zeroed pages for unreadable slots) after an error.
  const Status& status() const { return status_; }

  const Stats& stats() const { return stats_; }
  uint32_t page_size() const { return page_size_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  uint32_t resident_pages() const {
    return static_cast<uint32_t>(frames_.size());
  }
  uint32_t pinned_pages() const { return pinned_pages_; }
  /// Pages ever allocated and not freed (live id count).
  uint32_t live_pages() const { return live_pages_; }

  /// Resident frames + bookkeeping tables.
  size_t MemoryBytes() const;
  /// Spill-file footprint: every slot ever written (high-water).
  uint64_t DiskBytes() const;

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    uint32_t pins = 0;
    bool dirty = false;
    bool zombie = false;  // freed while pinned; drop at last Unpin
    /// Position in lru_ when pins == 0; lru_.end() otherwise.
    std::list<PageId>::iterator lru_pos;
  };

  Frame* LoadFrame(PageId id);
  void WriteBack(PageId id, Frame* frame);
  void EvictIfOver();
  void DropFrame(PageId id);
  void RecordError(Status status);
  uint64_t SlotOffset(PageId id) const;

  std::string path_;
  int fd_ = -1;
  uint32_t page_size_;
  size_t capacity_bytes_;
  Status status_;
  Stats stats_;
  std::unordered_map<PageId, Frame> frames_;
  /// Unpinned resident pages, least recently used at the front.
  std::list<PageId> lru_;
  std::vector<PageId> free_;
  PageId next_page_ = 0;
  uint32_t live_pages_ = 0;
  uint32_t pinned_pages_ = 0;
  uint64_t high_water_pages_ = 0;
};

}  // namespace sitfact

#endif  // SITFACT_STORAGE_PAGE_CACHE_H_
