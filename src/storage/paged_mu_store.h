#ifndef SITFACT_STORAGE_PAGED_MU_STORE_H_
#define SITFACT_STORAGE_PAGED_MU_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/mu_store.h"
#include "storage/page_cache.h"

namespace sitfact {

struct PagedStoreOptions {
  /// Backing spill file (created/truncated; unlinked on destruction).
  std::string spill_path;
  /// Page payload bytes. Records never straddle a page boundary except
  /// records larger than one page, which get a contiguous run to themselves.
  uint32_t page_size = 4096;
  /// Resident page-cache budget (the --cache-mb knob).
  size_t cache_bytes = 64u << 20;
};

/// Out-of-core µ store: bucket records (raw little-endian TupleId arrays)
/// live on fixed-size pages behind a bounded LRU PageCache, so the working
/// set — not the lattice — decides peak RSS. The resident index mirrors
/// FileMuStore's: constraint -> sorted {subspace, size, record location}
/// entries, so Size()/Empty() stay O(1) and IO happens only on bucket
/// reads and writes that miss the cache.
///
/// Allocation: records that fit one page are bump-allocated into a shared
/// "open" page (sealed when full); larger records get a private contiguous
/// page run. Overwrites reuse the slot in place when the bucket shrank,
/// else relocate; dead bytes from relocations and shrinks are reclaimed by
/// a compaction sweep that rewrites all live records into fresh pages once
/// allocated bytes exceed twice the live bytes.
///
/// Observer semantics match the memory store: OnBucketChanged fires on
/// every mutation with the bucket's new contents (NotifiesObservers() is
/// true), and eviction/reload of a record's pages is logically invisible —
/// a SkybandIndex shadow stays live across spills. Dirty tracking is
/// supported for delta checkpoints. Like FileMuStore, IO errors latch into
/// status() and the store keeps serving (unreadable pages decode as zeroed,
/// i.e. empty history).
class PagedMuStore : public MuStore {
 public:
  explicit PagedMuStore(PagedStoreOptions options);

  Context* GetOrCreate(const Constraint& c) override;
  Context* Find(const Constraint& c) override;

  void ForEachBucket(
      const std::function<void(const Constraint&, MeasureMask,
                               const std::vector<TupleId>&)>& fn) override;

  const MuStoreStats& stats() const override;
  size_t ApproxMemoryBytes() const override;

  bool NotifiesObservers() const override { return true; }
  bool SupportsDirtyTracking() const override { return true; }

  Status Flush() override { return cache_.Flush(); }

  /// Pins every page currently holding `c`'s records. A later relocation
  /// (bucket growth, compaction) moves records to unpinned pages — the pin
  /// then merely keeps stale pages resident until UnpinContext, which is
  /// harmless; this is an advisory hint, not a pointer lease.
  void PinContext(const Constraint& c) override;
  void UnpinContext(const Constraint& c) override;

  /// First IO/corruption error from the index or the page cache, if any.
  Status status() const {
    return status_.ok() ? cache_.status() : status_;
  }

  uint64_t DiskBytes() const { return cache_.DiskBytes(); }
  const PageCache& cache() const { return cache_; }
  size_t context_count() const { return contexts_.size(); }
  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t compactions() const { return compactions_; }

  /// Rewrites every live record into fresh pages, releasing dead space.
  /// Runs automatically from the write path; public for tests.
  void Compact();

 private:
  class PagedContext : public Context {
   public:
    explicit PagedContext(PagedMuStore* store) : store_(store) {}

    void Read(MeasureMask m, std::vector<TupleId>* out) override;
    void Write(MeasureMask m, const std::vector<TupleId>& contents) override;
    uint32_t Size(MeasureMask m) const override;
    bool Contains(MeasureMask m, TupleId t) override;
    void Insert(MeasureMask m, TupleId t) override;
    bool Erase(MeasureMask m, TupleId t) override;

    size_t ApproxMemoryBytes() const;

   private:
    friend class PagedMuStore;
    struct Entry {
      MeasureMask mask;
      uint32_t size;               // tuple count; byte length = size * 4
      PageCache::PageId first_page;
      uint32_t offset;             // byte offset in first_page (0 for runs)
      /// True when the record owns its page run exclusively (multi-page
      /// allocations, possibly shrunk since); such pages are freed on
      /// release instead of waiting for compaction.
      bool owns_run;
    };

    int FindEntry(MeasureMask m) const;

    PagedMuStore* store_;
    /// Map key; stable (unordered_map nodes never move). Set on creation.
    const Constraint* constraint_ = nullptr;
    std::vector<Entry> entries_;
  };

  using Entry = PagedContext::Entry;

  uint32_t PagesOf(uint32_t byte_len) const {
    return byte_len == 0 ? 0 : (byte_len - 1) / options_.page_size + 1;
  }

  /// Copies the record's bytes into *out (resized to entry.size).
  void ReadRecord(const Entry& e, std::vector<TupleId>* out);
  /// Places `len` bytes of `data` into a fresh slot (open page or run).
  Entry AllocateRecord(MeasureMask m, const uint8_t* data, uint32_t len);
  /// Releases the record's slot (frees run pages; shared bytes become dead).
  void ReleaseRecord(const Entry& e);
  /// Copies bytes across the record's pages, marking them dirty.
  void WriteBytes(PageCache::PageId first, uint32_t offset,
                  const uint8_t* data, uint32_t len);
  void MaybeCompact();
  void Notify(const PagedContext& ctx, MeasureMask m,
              const std::vector<TupleId>& bucket);

  PagedStoreOptions options_;
  PageCache cache_;
  Status status_;
  std::unordered_map<Constraint, PagedContext, ConstraintHash> contexts_;
  std::vector<TupleId> scratch_;  // reused buffer for read-modify-write ops
  /// Bump allocator state: the shared page partial records append into.
  PageCache::PageId open_page_ = PageCache::kInvalidPage;
  uint32_t open_used_ = 0;
  /// Every page ever used as an open (shared) page and not yet reclaimed;
  /// compaction frees them wholesale after rewriting the live records.
  std::vector<PageCache::PageId> shared_pages_;
  /// Σ record byte lengths; allocated-vs-live drives compaction.
  uint64_t live_bytes_ = 0;
  uint64_t compactions_ = 0;
  /// Advisory PinContext leases: the page ids actually pinned, so Unpin
  /// releases exactly what Pin took even after records relocate.
  std::unordered_map<Constraint, std::vector<PageCache::PageId>,
                     ConstraintHash>
      pinned_;
  mutable MuStoreStats merged_;  // stats() view with cache IO folded in
};

}  // namespace sitfact

#endif  // SITFACT_STORAGE_PAGED_MU_STORE_H_
