#include "storage/context_counter.h"

#include "common/bits.h"

namespace sitfact {

void ContextCounter::OnArrival(const Relation& r, TupleId t) {
  int nd = r.schema().num_dimensions();
  DimMask full = FullMask(nd);
  for (DimMask mask = 0; mask <= full; ++mask) {
    if (PopCount(mask) > max_bound_) continue;
    ++counts_[Constraint::ForTuple(r, t, mask)];
  }
}

void ContextCounter::OnRemoval(const Relation& r, TupleId t) {
  int nd = r.schema().num_dimensions();
  DimMask full = FullMask(nd);
  for (DimMask mask = 0; mask <= full; ++mask) {
    if (PopCount(mask) > max_bound_) continue;
    auto it = counts_.find(Constraint::ForTuple(r, t, mask));
    if (it != counts_.end() && it->second > 0) --it->second;
  }
}

void ContextCounter::OnArrivalMasks(const Relation& r, TupleId t,
                                    const std::vector<DimMask>& masks) {
  for (DimMask mask : masks) {
    ++counts_[Constraint::ForTuple(r, t, mask)];
  }
}

void ContextCounter::OnRemovalMasks(const Relation& r, TupleId t,
                                    const std::vector<DimMask>& masks) {
  for (DimMask mask : masks) {
    auto it = counts_.find(Constraint::ForTuple(r, t, mask));
    if (it != counts_.end() && it->second > 0) --it->second;
  }
}

uint64_t ContextCounter::Count(const Constraint& c) const {
  auto it = counts_.find(c);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace sitfact
