#include "storage/context_counter.h"

#include "common/binary_io.h"
#include "common/bits.h"

namespace sitfact {

void ContextCounter::OnArrival(const Relation& r, TupleId t) {
  int nd = r.schema().num_dimensions();
  DimMask full = FullMask(nd);
  for (DimMask mask = 0; mask <= full; ++mask) {
    if (PopCount(mask) > max_bound_) continue;
    ++counts_[Constraint::ForTuple(r, t, mask)];
  }
}

void ContextCounter::OnRemoval(const Relation& r, TupleId t) {
  int nd = r.schema().num_dimensions();
  DimMask full = FullMask(nd);
  for (DimMask mask = 0; mask <= full; ++mask) {
    if (PopCount(mask) > max_bound_) continue;
    auto it = counts_.find(Constraint::ForTuple(r, t, mask));
    if (it != counts_.end() && it->second > 0) --it->second;
  }
}

void ContextCounter::OnArrivalMasks(const Relation& r, TupleId t,
                                    const std::vector<DimMask>& masks) {
  for (DimMask mask : masks) {
    ++counts_[Constraint::ForTuple(r, t, mask)];
  }
}

void ContextCounter::OnRemovalMasks(const Relation& r, TupleId t,
                                    const std::vector<DimMask>& masks) {
  for (DimMask mask : masks) {
    auto it = counts_.find(Constraint::ForTuple(r, t, mask));
    if (it != counts_.end() && it->second > 0) --it->second;
  }
}

uint64_t ContextCounter::Count(const Constraint& c) const {
  auto it = counts_.find(c);
  return it == counts_.end() ? 0 : it->second;
}

namespace {

// A counter beyond this is either corrupted or far outside the library's
// design envelope.
constexpr uint64_t kMaxCounterEntries = 1ull << 32;

}  // namespace

void ContextCounter::Serialize(BinaryWriter* w) const {
  w->WriteU64(counts_.size());
  for (const auto& [c, n] : counts_) {
    SerializeConstraint(w, c);
    w->WriteU64(n);
  }
}

Status ContextCounter::Deserialize(BinaryReader* r, int num_dims) {
  uint64_t entries = r->ReadU64();
  if (!r->CheckCount(entries, kMaxCounterEntries, "counter entries")) {
    return r->status();
  }
  for (uint64_t i = 0; i < entries; ++i) {
    Constraint c = DeserializeConstraint(r, num_dims);
    uint64_t count = r->ReadU64();
    if (!r->ok()) return r->status();
    Restore(c, count);
  }
  return Status::Ok();
}

}  // namespace sitfact
