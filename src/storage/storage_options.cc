#include "storage/storage_options.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "storage/memory_mu_store.h"
#include "storage/paged_mu_store.h"

namespace sitfact {

namespace {

std::atomic<uint64_t> g_spill_counter{0};

const char* EnvOrNull(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

}  // namespace

StorageBackend ResolveStorageBackend(const StorageConfig& config) {
  if (config.backend != StorageBackend::kAuto) return config.backend;
  if (const char* env = EnvOrNull("SITFACT_STORAGE")) {
    StatusOr<StorageBackend> parsed = ParseStorageBackend(env);
    if (parsed.ok() && parsed.value() != StorageBackend::kAuto) {
      return parsed.value();
    }
  }
  return StorageBackend::kMemory;
}

StorageConfig ResolvedStorageConfig(StorageConfig config) {
  bool from_env = config.backend == StorageBackend::kAuto;
  config.backend = ResolveStorageBackend(config);
  if (from_env) {
    if (const char* env = EnvOrNull("SITFACT_STORAGE_CACHE_MB")) {
      char* end = nullptr;
      unsigned long long mb = std::strtoull(env, &end, 10);
      if (end != env && mb > 0) {
        config.cache_bytes = static_cast<size_t>(mb) << 20;
      }
    }
  }
  return config;
}

StatusOr<StorageBackend> ParseStorageBackend(const std::string& name) {
  if (name == "auto") return StorageBackend::kAuto;
  if (name == "memory") return StorageBackend::kMemory;
  if (name == "paged") return StorageBackend::kPaged;
  return Status::InvalidArgument("unknown storage backend: " + name +
                                 " (expected memory|paged|auto)");
}

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kAuto:
      return "auto";
    case StorageBackend::kMemory:
      return "memory";
    case StorageBackend::kPaged:
      return "paged";
  }
  return "?";
}

std::string NewSpillFilePath(const StorageConfig& config) {
  std::filesystem::path dir = config.spill_dir.empty()
                                  ? std::filesystem::temp_directory_path()
                                  : std::filesystem::path(config.spill_dir);
  if (!config.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
  }
  uint64_t id = g_spill_counter.fetch_add(1, std::memory_order_relaxed);
  std::string name = "sitfact_spill_" + std::to_string(::getpid()) + "_" +
                     std::to_string(id) + ".pages";
  return (dir / name).string();
}

std::unique_ptr<MuStore> CreateMuStore(const StorageConfig& config) {
  StorageConfig resolved = ResolvedStorageConfig(config);
  if (resolved.backend == StorageBackend::kPaged) {
    PagedStoreOptions opts;
    opts.spill_path = NewSpillFilePath(resolved);
    opts.page_size = resolved.page_size;
    opts.cache_bytes = resolved.cache_bytes;
    return std::make_unique<PagedMuStore>(std::move(opts));
  }
  return std::make_unique<MemoryMuStore>();
}

}  // namespace sitfact
