#include "storage/segmented_mu_store.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace sitfact {

SegmentedMuStore::SegmentedMuStore(int num_segments,
                                   std::vector<uint8_t> segment_of_mask,
                                   const StorageConfig& storage)
    : segment_of_mask_(std::move(segment_of_mask)) {
  SITFACT_CHECK(num_segments > 0);
  SITFACT_CHECK(!segment_of_mask_.empty());
  for (uint8_t s : segment_of_mask_) {
    SITFACT_CHECK(s < num_segments);
  }
  // Each segment gets an equal slice of the cache budget (with a floor so
  // a high shard count can't starve any one segment into thrashing).
  StorageConfig per_segment = ResolvedStorageConfig(storage);
  per_segment.cache_bytes =
      std::max<size_t>(per_segment.cache_bytes /
                           static_cast<size_t>(num_segments),
                       size_t{1} << 20);
  segments_.reserve(static_cast<size_t>(num_segments));
  for (int i = 0; i < num_segments; ++i) {
    segments_.push_back(CreateMuStore(per_segment));
  }
}

MuStore::Context* SegmentedMuStore::GetOrCreate(const Constraint& c) {
  SITFACT_DCHECK(c.bound_mask() < segment_of_mask_.size());
  return segments_[segment_of_mask_[c.bound_mask()]]->GetOrCreate(c);
}

MuStore::Context* SegmentedMuStore::Find(const Constraint& c) {
  SITFACT_DCHECK(c.bound_mask() < segment_of_mask_.size());
  return segments_[segment_of_mask_[c.bound_mask()]]->Find(c);
}

void SegmentedMuStore::ForEachBucket(
    const std::function<void(const Constraint&, MeasureMask,
                             const std::vector<TupleId>&)>& fn) {
  for (auto& segment : segments_) segment->ForEachBucket(fn);
}

void SegmentedMuStore::set_bucket_observer(BucketObserver* observer) {
  bucket_observer_ = observer;
  for (auto& segment : segments_) segment->set_bucket_observer(observer);
}

void SegmentedMuStore::set_dirty_tracking(bool enabled) {
  dirty_tracking_ = enabled;
  for (auto& segment : segments_) segment->set_dirty_tracking(enabled);
}

void SegmentedMuStore::ForEachDirtyBucket(
    const std::function<void(const Constraint&, MeasureMask)>& fn) const {
  for (const auto& segment : segments_) segment->ForEachDirtyBucket(fn);
}

void SegmentedMuStore::ClearDirty() {
  for (auto& segment : segments_) segment->ClearDirty();
}

uint64_t SegmentedMuStore::DirtyBucketCount() const {
  uint64_t count = 0;
  for (const auto& segment : segments_) count += segment->DirtyBucketCount();
  return count;
}

Status SegmentedMuStore::Flush() {
  Status first = Status::Ok();
  for (auto& segment : segments_) {
    Status s = segment->Flush();
    if (first.ok() && !s.ok()) first = std::move(s);
  }
  return first;
}

void SegmentedMuStore::PinContext(const Constraint& c) {
  SITFACT_DCHECK(c.bound_mask() < segment_of_mask_.size());
  segments_[segment_of_mask_[c.bound_mask()]]->PinContext(c);
}

void SegmentedMuStore::UnpinContext(const Constraint& c) {
  SITFACT_DCHECK(c.bound_mask() < segment_of_mask_.size());
  segments_[segment_of_mask_[c.bound_mask()]]->UnpinContext(c);
}

const MuStoreStats& SegmentedMuStore::stats() const {
  aggregated_ = MuStoreStats{};
  for (const auto& segment : segments_) {
    const MuStoreStats& s = segment->stats();
    aggregated_.stored_tuples += s.stored_tuples;
    aggregated_.bucket_reads += s.bucket_reads;
    aggregated_.bucket_writes += s.bucket_writes;
    aggregated_.file_reads += s.file_reads;
    aggregated_.file_writes += s.file_writes;
  }
  return aggregated_;
}

size_t SegmentedMuStore::ApproxMemoryBytes() const {
  size_t total = segment_of_mask_.size() * sizeof(uint8_t);
  for (const auto& segment : segments_) total += segment->ApproxMemoryBytes();
  return total;
}

}  // namespace sitfact
