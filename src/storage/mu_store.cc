#include "storage/mu_store.h"

#include <algorithm>

#include "common/binary_io.h"

namespace sitfact {

namespace {

// A dump beyond this is either corrupted or far outside the library's
// design envelope.
constexpr uint64_t kMaxBuckets = 1ull << 33;

}  // namespace

void MuStore::MarkDirtyBucket(const Constraint& c, MeasureMask m) {
  if (!dirty_tracking_) return;
  std::vector<MeasureMask>& masks = dirty_[c];
  if (std::find(masks.begin(), masks.end(), m) == masks.end()) {
    masks.push_back(m);
  }
}

void MuStore::ForEachDirtyBucket(
    const std::function<void(const Constraint&, MeasureMask)>& fn) const {
  for (const auto& [constraint, masks] : dirty_) {
    for (MeasureMask m : masks) fn(constraint, m);
  }
}

uint64_t MuStore::DirtyBucketCount() const {
  uint64_t count = 0;
  for (const auto& [constraint, masks] : dirty_) count += masks.size();
  return count;
}

void MuStore::SerializeBuckets(BinaryWriter* w) {
  uint64_t buckets = 0;
  ForEachBucket([&](const Constraint&, MeasureMask,
                    const std::vector<TupleId>&) { ++buckets; });
  w->WriteU64(buckets);
  ForEachBucket([&](const Constraint& c, MeasureMask m,
                    const std::vector<TupleId>& bucket) {
    SerializeConstraint(w, c);
    w->WriteU32(m);
    w->WriteU32(static_cast<uint32_t>(bucket.size()));
    for (TupleId t : bucket) w->WriteU32(t);
  });
}

Status MuStore::DeserializeBuckets(BinaryReader* r, int num_dims,
                                   TupleId max_tuple) {
  return ReadMuBucketDump(r, num_dims, max_tuple, this);
}

Status ReadMuBucketDump(BinaryReader* r, int num_dims, TupleId max_tuple,
                        MuStore* store) {
  uint64_t buckets = r->ReadU64();
  if (!r->CheckCount(buckets, kMaxBuckets, "bucket count")) {
    return r->status();
  }
  std::vector<TupleId> bucket;
  for (uint64_t i = 0; i < buckets; ++i) {
    Constraint c = DeserializeConstraint(r, num_dims);
    MeasureMask m = r->ReadU32();
    uint32_t len = r->ReadU32();
    if (!r->CheckCount(len, max_tuple, "bucket size")) return r->status();
    bucket.resize(len);
    for (uint32_t k = 0; k < len; ++k) {
      bucket[k] = r->ReadU32();
      if (bucket[k] >= max_tuple) {
        return Status::Corruption("bucket tuple id out of range");
      }
    }
    if (!r->ok()) return r->status();
    if (store != nullptr) store->GetOrCreate(c)->Write(m, bucket);
  }
  return Status::Ok();
}

}  // namespace sitfact
