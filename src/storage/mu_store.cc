#include "storage/mu_store.h"

// MuStore is an interface; this TU only anchors its vtable/key functions so
// the library has a home for future shared helpers.

namespace sitfact {}  // namespace sitfact
