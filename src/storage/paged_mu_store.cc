#include "storage/paged_mu_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace sitfact {

namespace {

/// Compaction is pointless below this footprint; the sweep would cost more
/// than the pages it could reclaim are worth.
constexpr uint32_t kCompactMinPages = 64;

}  // namespace

PagedMuStore::PagedMuStore(PagedStoreOptions options)
    : options_(std::move(options)),
      cache_(options_.spill_path, options_.page_size, options_.cache_bytes) {
  SITFACT_CHECK(options_.page_size >= sizeof(TupleId));
  SITFACT_CHECK(options_.page_size % sizeof(TupleId) == 0);
}

MuStore::Context* PagedMuStore::GetOrCreate(const Constraint& c) {
  auto [it, inserted] = contexts_.try_emplace(c, this);
  if (inserted) it->second.constraint_ = &it->first;
  return &it->second;
}

MuStore::Context* PagedMuStore::Find(const Constraint& c) {
  auto it = contexts_.find(c);
  return it == contexts_.end() ? nullptr : &it->second;
}

void PagedMuStore::ForEachBucket(
    const std::function<void(const Constraint&, MeasureMask,
                             const std::vector<TupleId>&)>& fn) {
  std::vector<TupleId> bucket;
  for (auto& [constraint, ctx] : contexts_) {
    for (const Entry& e : ctx.entries_) {
      if (e.size == 0) continue;
      ReadRecord(e, &bucket);
      fn(constraint, e.mask, bucket);
    }
  }
}

const MuStoreStats& PagedMuStore::stats() const {
  merged_ = stats_;
  // Cache misses/write-backs are this backend's file IO, in the same sense
  // FileMuStore counts bucket-file loads and stores.
  merged_.file_reads = cache_.stats().misses;
  merged_.file_writes = cache_.stats().writebacks;
  return merged_;
}

size_t PagedMuStore::ApproxMemoryBytes() const {
  // Per-heap-block allocator header; matches MemoryMuStore's accounting so
  // fig10 rows compare like-for-like across backends.
  constexpr size_t kAllocOverhead = 16;
  size_t bytes = sizeof(*this) + cache_.MemoryBytes() +
                 scratch_.capacity() * sizeof(TupleId) +
                 contexts_.bucket_count() * sizeof(void*);
  for (const auto& [key, ctx] : contexts_) {
    bytes += sizeof(Constraint) + sizeof(PagedContext) + 3 * sizeof(void*) +
             kAllocOverhead;
    bytes += ctx.ApproxMemoryBytes();
  }
  return bytes;
}

void PagedMuStore::PinContext(const Constraint& c) {
  if (pinned_.find(c) != pinned_.end()) return;
  std::vector<PageCache::PageId>& pages = pinned_[c];
  auto it = contexts_.find(c);
  if (it == contexts_.end()) return;
  for (const Entry& e : it->second.entries_) {
    uint32_t n = PagesOf(e.size * sizeof(TupleId));
    for (uint32_t k = 0; k < n; ++k) {
      cache_.Pin(e.first_page + k);
      pages.push_back(e.first_page + k);
    }
  }
}

void PagedMuStore::UnpinContext(const Constraint& c) {
  auto it = pinned_.find(c);
  if (it == pinned_.end()) return;
  for (PageCache::PageId id : it->second) cache_.Unpin(id, /*dirty=*/false);
  pinned_.erase(it);
}

void PagedMuStore::ReadRecord(const Entry& e, std::vector<TupleId>* out) {
  out->resize(e.size);
  uint8_t* dst = reinterpret_cast<uint8_t*>(out->data());
  uint32_t len = e.size * sizeof(TupleId);
  PageCache::PageId page = e.first_page;
  uint32_t off = e.offset;
  while (len > 0) {
    uint32_t chunk = std::min(len, options_.page_size - off);
    const uint8_t* src = cache_.Pin(page);
    std::memcpy(dst, src + off, chunk);
    cache_.Unpin(page, /*dirty=*/false);
    dst += chunk;
    len -= chunk;
    off = 0;
    ++page;
  }
}

void PagedMuStore::WriteBytes(PageCache::PageId first, uint32_t offset,
                              const uint8_t* data, uint32_t len) {
  PageCache::PageId page = first;
  uint32_t off = offset;
  while (len > 0) {
    uint32_t chunk = std::min(len, options_.page_size - off);
    uint8_t* dst = cache_.Pin(page);
    std::memcpy(dst + off, data, chunk);
    cache_.Unpin(page, /*dirty=*/true);
    data += chunk;
    len -= chunk;
    off = 0;
    ++page;
  }
}

PagedMuStore::Entry PagedMuStore::AllocateRecord(MeasureMask m,
                                                 const uint8_t* data,
                                                 uint32_t len) {
  SITFACT_DCHECK(len > 0);
  Entry e{m, len / static_cast<uint32_t>(sizeof(TupleId)),
          PageCache::kInvalidPage, 0, false};
  if (len > options_.page_size) {
    e.first_page = cache_.AllocateRun(PagesOf(len));
    e.owns_run = true;
  } else {
    if (open_page_ == PageCache::kInvalidPage ||
        open_used_ + len > options_.page_size) {
      // Seal the old open page (its tail slack becomes dead bytes for the
      // compaction accounting) and start a fresh one.
      open_page_ = cache_.Allocate();
      open_used_ = 0;
      shared_pages_.push_back(open_page_);
    }
    e.first_page = open_page_;
    e.offset = open_used_;
    open_used_ += len;
  }
  live_bytes_ += len;
  WriteBytes(e.first_page, e.offset, data, len);
  return e;
}

void PagedMuStore::ReleaseRecord(const Entry& e) {
  uint32_t len = e.size * sizeof(TupleId);
  live_bytes_ -= len;
  if (e.owns_run) {
    uint32_t n = PagesOf(len);
    for (uint32_t k = 0; k < n; ++k) cache_.Free(e.first_page + k);
  }
  // Shared-page bytes just go dead; compaction reclaims them.
}

void PagedMuStore::MaybeCompact() {
  uint32_t pages = cache_.live_pages();
  if (pages < kCompactMinPages) return;
  uint64_t allocated = static_cast<uint64_t>(pages) * options_.page_size;
  if (allocated <= 2 * live_bytes_ + options_.page_size) return;
  Compact();
}

void PagedMuStore::Compact() {
  ++compactions_;
  // Old pages are freed only after every live record has been copied out,
  // so the rewrite can never reuse a page it still needs to read. Runs are
  // collected per record; shared pages come from the open-page history.
  std::vector<PageCache::PageId> old_shared = std::move(shared_pages_);
  shared_pages_.clear();
  open_page_ = PageCache::kInvalidPage;
  open_used_ = 0;
  std::vector<std::pair<PageCache::PageId, uint32_t>> old_runs;
  std::vector<uint8_t> buf;
  for (auto& [constraint, ctx] : contexts_) {
    for (Entry& e : ctx.entries_) {
      uint32_t len = e.size * sizeof(TupleId);
      if (len == 0) continue;
      buf.resize(len);
      uint8_t* dst = buf.data();
      uint32_t remaining = len;
      PageCache::PageId page = e.first_page;
      uint32_t off = e.offset;
      while (remaining > 0) {
        uint32_t chunk = std::min(remaining, options_.page_size - off);
        const uint8_t* src = cache_.Pin(page);
        std::memcpy(dst, src + off, chunk);
        cache_.Unpin(page, /*dirty=*/false);
        dst += chunk;
        remaining -= chunk;
        off = 0;
        ++page;
      }
      if (e.owns_run) old_runs.emplace_back(e.first_page, PagesOf(len));
      live_bytes_ -= len;
      e = AllocateRecord(e.mask, buf.data(), len);
    }
  }
  for (auto [first, n] : old_runs) {
    for (uint32_t k = 0; k < n; ++k) cache_.Free(first + k);
  }
  for (PageCache::PageId p : old_shared) cache_.Free(p);
}

void PagedMuStore::Notify(const PagedContext& ctx, MeasureMask m,
                          const std::vector<TupleId>& bucket) {
  MarkDirtyBucket(*ctx.constraint_, m);
  if (bucket_observer_ != nullptr) {
    bucket_observer_->OnBucketChanged(*ctx.constraint_, m, bucket);
  }
}

int PagedMuStore::PagedContext::FindEntry(MeasureMask m) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  if (it == entries_.end() || it->mask != m) return -1;
  return static_cast<int>(it - entries_.begin());
}

void PagedMuStore::PagedContext::Read(MeasureMask m,
                                      std::vector<TupleId>* out) {
  ++store_->stats_.bucket_reads;
  int i = FindEntry(m);
  if (i < 0) {
    out->clear();
    return;
  }
  store_->ReadRecord(entries_[i], out);
}

void PagedMuStore::PagedContext::Write(MeasureMask m,
                                       const std::vector<TupleId>& contents) {
  ++store_->stats_.bucket_writes;
  int i = FindEntry(m);
  if (i < 0 && contents.empty()) return;
  static const std::vector<TupleId> kEmpty;
  uint32_t new_len =
      static_cast<uint32_t>(contents.size() * sizeof(TupleId));
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(contents.data());
  if (i < 0) {
    Entry e = store_->AllocateRecord(m, bytes, new_len);
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), m,
        [](const Entry& a, MeasureMask mask) { return a.mask < mask; });
    entries_.insert(it, e);
    store_->stats_.stored_tuples += contents.size();
    store_->Notify(*this, m, contents);
    store_->MaybeCompact();
    return;
  }
  Entry& e = entries_[i];
  uint32_t old_len = e.size * static_cast<uint32_t>(sizeof(TupleId));
  store_->stats_.stored_tuples += contents.size();
  store_->stats_.stored_tuples -= e.size;
  if (contents.empty()) {
    store_->ReleaseRecord(e);
    entries_.erase(entries_.begin() + i);
    store_->Notify(*this, m, kEmpty);
  } else if (new_len <= old_len) {
    // Rewrite in place; the slack becomes dead bytes. A shrunk run keeps
    // only the pages the record still spans.
    if (e.owns_run) {
      uint32_t old_pages = store_->PagesOf(old_len);
      uint32_t new_pages = store_->PagesOf(new_len);
      for (uint32_t k = new_pages; k < old_pages; ++k) {
        store_->cache_.Free(e.first_page + k);
      }
    }
    store_->live_bytes_ -= old_len - new_len;
    store_->WriteBytes(e.first_page, e.offset, bytes, new_len);
    e.size = static_cast<uint32_t>(contents.size());
    store_->Notify(*this, m, contents);
  } else {
    store_->ReleaseRecord(e);
    e = store_->AllocateRecord(m, bytes, new_len);
    store_->Notify(*this, m, contents);
  }
  store_->MaybeCompact();
}

uint32_t PagedMuStore::PagedContext::Size(MeasureMask m) const {
  int i = FindEntry(m);
  return i < 0 ? 0 : entries_[i].size;
}

bool PagedMuStore::PagedContext::Contains(MeasureMask m, TupleId t) {
  if (Size(m) == 0) return false;
  Read(m, &store_->scratch_);
  return std::find(store_->scratch_.begin(), store_->scratch_.end(), t) !=
         store_->scratch_.end();
}

void PagedMuStore::PagedContext::Insert(MeasureMask m, TupleId t) {
  Read(m, &store_->scratch_);
  store_->scratch_.push_back(t);
  Write(m, store_->scratch_);
}

bool PagedMuStore::PagedContext::Erase(MeasureMask m, TupleId t) {
  if (Size(m) == 0) return false;
  Read(m, &store_->scratch_);
  auto it = std::find(store_->scratch_.begin(), store_->scratch_.end(), t);
  if (it == store_->scratch_.end()) return false;
  *it = store_->scratch_.back();
  store_->scratch_.pop_back();
  Write(m, store_->scratch_);
  return true;
}

size_t PagedMuStore::PagedContext::ApproxMemoryBytes() const {
  constexpr size_t kAllocOverhead = 16;
  return entries_.capacity() * sizeof(Entry) +
         (entries_.capacity() > 0 ? kAllocOverhead : 0);
}

}  // namespace sitfact
