#ifndef SITFACT_IO_SNAPSHOT_H_
#define SITFACT_IO_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "exec/sharded_engine.h"
#include "relation/relation.h"

namespace sitfact {

/// Snapshot persistence for streaming restarts.
///
/// A discovery deployment ingests an unbounded stream; losing the process
/// must not mean re-discovering months of history. A snapshot file captures
/// (1) the relation — schema, dictionaries, columns, tombstones — and
/// optionally (2) the engine state: algorithm name, discovery options,
/// prominence config, the context-cardinality counter and every µ-store
/// bucket. Restoring yields an engine that continues exactly where the
/// saved one stopped: the next Append() produces the same facts the
/// uninterrupted run would have produced.
///
/// Format: single binary file, little-endian, "SFSNAPv1" magic, trailing
/// CRC-32 over everything after the magic. Torn writes, truncation and bit
/// flips surface as Status::Corruption on load.
///
/// Restorability: BottomUp/TopDown/SBottomUp/STopDown/FSBottomUp/FSTopDown
/// restore from their bucket dump; BaselineSeq/BruteForce are stateless;
/// BaselineIdx rebuilds its k-d tree from the relation. C-CSC keeps private
/// skycubes and reports Unimplemented on load (re-run the stream instead,
/// via SnapshotLoadOptions::allow_replay_rebuild). Sharded-engine snapshots
/// ("Sharded") follow Invariant 1 and restore into either engine kind at
/// any shard count; see docs/persistence.md.

/// Options for LoadEngineSnapshot.
struct SnapshotLoadOptions {
  /// Restore under a different algorithm than the one saved. Only sound
  /// within a storage-policy family (e.g. BottomUp -> SBottomUp); loading
  /// rejects cross-policy overrides because the bucket contents follow the
  /// saving algorithm's invariant. Empty keeps the saved algorithm.
  std::string algorithm_override;

  /// Bucket-file directory for FSBottomUp / FSTopDown restores.
  std::string file_store_dir;

  /// Escape hatch for combinations with no fast path (C-CSC, cross-policy
  /// overrides, baseline snapshots restored into µ-store algorithms):
  /// rebuild algorithm state by replaying discovery over every live tuple
  /// of the restored relation, in arrival order. Sound because each
  /// Discover(t) consults only tuples before t plus algorithm state, and
  /// skipping tombstoned tuples reproduces exactly the state Remove() would
  /// have left. Costs one full-stream discovery pass — O(original run).
  bool allow_replay_rebuild = false;

  /// µ-store backend for the restored engine. Snapshots carry bucket
  /// contents, not backend identity (the dump format is backend-agnostic),
  /// so the restore side picks freely — e.g. a run saved in-memory can be
  /// reopened onto the paged store under a tighter cache budget.
  StorageConfig storage;
};

/// A restored engine plus the relation it reads (the engine holds a raw
/// pointer into `relation`, so keep both alive together).
struct RestoredEngine {
  std::unique_ptr<Relation> relation;
  std::unique_ptr<DiscoveryEngine> engine;
};

/// Writes a relation-only snapshot (no engine section).
Status SaveRelationSnapshot(const Relation& relation, const std::string& path);

/// Reads a snapshot's relation section (works for both kinds of snapshot).
StatusOr<std::unique_ptr<Relation>> LoadRelationSnapshot(
    const std::string& path);

/// Writes relation + engine state. The engine's µ store (when present) is
/// dumped bucket by bucket; for file-backed stores this reads every bucket
/// file once.
Status SaveEngineSnapshot(DiscoveryEngine& engine, const std::string& path);

/// Sharded counterpart: same file format, algorithm name "Sharded", the
/// aggregated counter view and the union of µ segments. Because the sharded
/// store follows Invariant 1, the resulting snapshot also restores into the
/// sequential BottomUp family (LoadEngineSnapshot maps "Sharded" to
/// SBottomUp when no override is given).
Status SaveEngineSnapshot(ShardedEngine& engine, const std::string& path);

/// Restores a full engine. Fails with Unimplemented when the (possibly
/// overridden) algorithm cannot be rebuilt from a snapshot, InvalidArgument
/// on option/policy mismatches, Corruption on damaged files.
StatusOr<RestoredEngine> LoadEngineSnapshot(
    const std::string& path, const SnapshotLoadOptions& options = {});

/// A restored sharded engine plus the relation it reads.
struct RestoredShardedEngine {
  std::unique_ptr<Relation> relation;
  std::unique_ptr<ShardedEngine> engine;
};

/// Options for LoadShardedEngineSnapshot. A snapshot has no inherent shard
/// geometry — bucket and counter routing is recomputed — so any K works,
/// including restoring a sequential snapshot into a sharded engine.
struct ShardedSnapshotLoadOptions {
  int num_shards = 4;
  int num_threads = 0;  // 0 means num_shards
  /// Same escape hatch as SnapshotLoadOptions: snapshots whose bucket dump
  /// does not follow Invariant 1 (TopDown family) or that carry no store
  /// dump (baselines, C-CSC) rebuild by replaying discovery over the
  /// restored relation.
  bool allow_replay_rebuild = false;

  /// µ-store backend for the restored engine's segments (see
  /// SnapshotLoadOptions::storage).
  StorageConfig storage;
};

/// Restores a snapshot (saved from either engine kind) into a ShardedEngine.
StatusOr<RestoredShardedEngine> LoadShardedEngineSnapshot(
    const std::string& path, const ShardedSnapshotLoadOptions& options = {});

}  // namespace sitfact

#endif  // SITFACT_IO_SNAPSHOT_H_
