#ifndef SITFACT_IO_CSV_TABLE_H_
#define SITFACT_IO_CSV_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/dataset.h"
#include "relation/schema.h"

namespace sitfact {

/// A CSV file read whole: header plus string rows, with by-name column
/// lookup. This is the schema-agnostic half of CSV ingestion — callers (the
/// CLI, examples, notebooks-to-be) decide which columns are dimensions and
/// which are measures after reading, so file column order never matters.
class CsvTable {
 public:
  /// Reads `path` entirely. Fails on missing file, empty file, ragged rows
  /// or broken quoting.
  static StatusOr<CsvTable> Read(const std::string& path);

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Index of the named column, or -1.
  int ColumnIndex(const std::string& name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Projects a CsvTable onto `schema` by attribute name: each schema
/// dimension/measure must name a column of the table; measures must parse
/// as doubles. Row order is preserved (the table's order is the arrival
/// order for discovery).
StatusOr<Dataset> DatasetFromCsvTable(const CsvTable& table,
                                      const Schema& schema);

}  // namespace sitfact

#endif  // SITFACT_IO_CSV_TABLE_H_
