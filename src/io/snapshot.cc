#include "io/snapshot.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/logging.h"
#include "common/binary_io.h"
#include "storage/mu_store.h"

namespace sitfact {

namespace {

constexpr char kMagic[8] = {'S', 'F', 'S', 'N', 'A', 'P', 'v', '1'};
constexpr uint32_t kVersion = 1;

constexpr uint8_t kFlagHasEngine = 1u << 0;

// Sanity caps for length prefixes (a snapshot beyond these is either
// corrupted or far outside this library's design envelope).
constexpr uint64_t kMaxTuples = 1ull << 33;
constexpr uint64_t kMaxDictEntries = 1ull << 30;

void WriteSchema(BinaryWriter* w, const Schema& schema) {
  w->WriteU32(static_cast<uint32_t>(schema.num_dimensions()));
  for (const auto& d : schema.dimensions()) w->WriteString(d.name);
  w->WriteU32(static_cast<uint32_t>(schema.num_measures()));
  for (const auto& m : schema.measures()) {
    w->WriteString(m.name);
    w->WriteU8(m.direction == Direction::kSmallerIsBetter ? 1 : 0);
  }
}

StatusOr<Schema> ReadSchema(BinaryReader* r) {
  uint32_t ndims = r->ReadU32();
  if (!r->CheckCount(ndims, kMaxDimensions, "dimension count")) {
    return r->status();
  }
  std::vector<DimensionAttribute> dims;
  dims.reserve(ndims);
  for (uint32_t i = 0; i < ndims; ++i) dims.push_back({r->ReadString()});
  uint32_t nmeas = r->ReadU32();
  if (!r->CheckCount(nmeas, kMaxMeasures, "measure count")) {
    return r->status();
  }
  std::vector<MeasureAttribute> meas;
  meas.reserve(nmeas);
  for (uint32_t j = 0; j < nmeas; ++j) {
    MeasureAttribute m;
    m.name = r->ReadString();
    m.direction = r->ReadU8() != 0 ? Direction::kSmallerIsBetter
                                   : Direction::kLargerIsBetter;
    meas.push_back(std::move(m));
  }
  if (!r->ok()) return r->status();
  return Schema::Create(std::move(dims), std::move(meas));
}

void WriteRelation(BinaryWriter* w, const Relation& rel) {
  const Schema& schema = rel.schema();
  const uint64_t n = rel.size();
  w->WriteU64(n);
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    const Dictionary& dict = rel.dictionary(d);
    w->WriteU32(static_cast<uint32_t>(dict.size()));
    for (ValueId id = 0; id < dict.size(); ++id) {
      w->WriteString(dict.Decode(id));
    }
  }
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    for (uint64_t t = 0; t < n; ++t) {
      w->WriteU32(rel.dim(static_cast<TupleId>(t), d));
    }
  }
  for (int j = 0; j < schema.num_measures(); ++j) {
    for (uint64_t t = 0; t < n; ++t) {
      w->WriteF64(rel.measure(static_cast<TupleId>(t), j));
    }
  }
  // Tombstones, sparse: deletion is the rare administrative path.
  std::vector<TupleId> deleted;
  for (uint64_t t = 0; t < n; ++t) {
    if (rel.IsDeleted(static_cast<TupleId>(t))) {
      deleted.push_back(static_cast<TupleId>(t));
    }
  }
  w->WriteU64(deleted.size());
  for (TupleId t : deleted) w->WriteU32(t);
}

StatusOr<std::unique_ptr<Relation>> ReadRelation(BinaryReader* r,
                                                 Schema schema) {
  auto rel = std::make_unique<Relation>(std::move(schema));
  const Schema& s = rel->schema();
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, kMaxTuples, "tuple count")) return r->status();

  for (int d = 0; d < s.num_dimensions(); ++d) {
    uint32_t entries = r->ReadU32();
    if (!r->CheckCount(entries, kMaxDictEntries, "dictionary size")) {
      return r->status();
    }
    Dictionary& dict = rel->dictionary(d);
    for (uint32_t i = 0; i < entries; ++i) {
      std::string value = r->ReadString();
      if (!r->ok()) return r->status();
      ValueId id = dict.Encode(value);
      if (id != i) {
        return Status::Corruption("dictionary entries out of order");
      }
    }
  }

  std::vector<std::vector<ValueId>> dim_cols(
      static_cast<size_t>(s.num_dimensions()));
  for (int d = 0; d < s.num_dimensions(); ++d) {
    dim_cols[d].resize(n);
    for (uint64_t t = 0; t < n; ++t) dim_cols[d][t] = r->ReadU32();
    const size_t dict_size = rel->dictionary(d).size();
    for (uint64_t t = 0; t < n; ++t) {
      if (dim_cols[d][t] >= dict_size) {
        return Status::Corruption("dimension value out of dictionary range");
      }
    }
  }
  std::vector<std::vector<double>> mea_cols(
      static_cast<size_t>(s.num_measures()));
  for (int j = 0; j < s.num_measures(); ++j) {
    mea_cols[j].resize(n);
    for (uint64_t t = 0; t < n; ++t) mea_cols[j][t] = r->ReadF64();
  }
  if (!r->ok()) return r->status();

  std::vector<ValueId> dims(static_cast<size_t>(s.num_dimensions()));
  std::vector<double> meas(static_cast<size_t>(s.num_measures()));
  for (uint64_t t = 0; t < n; ++t) {
    for (int d = 0; d < s.num_dimensions(); ++d) dims[d] = dim_cols[d][t];
    for (int j = 0; j < s.num_measures(); ++j) meas[j] = mea_cols[j][t];
    rel->AppendEncoded(dims, meas);
  }

  uint64_t num_deleted = r->ReadU64();
  if (!r->CheckCount(num_deleted, n, "deleted count")) return r->status();
  for (uint64_t i = 0; i < num_deleted; ++i) {
    uint32_t t = r->ReadU32();
    if (t >= n) return Status::Corruption("deleted id out of range");
    rel->MarkDeleted(t);
  }
  if (!r->ok()) return r->status();
  return rel;
}

}  // namespace

Status SaveRelationSnapshot(const Relation& relation,
                            const std::string& path) {
  BinaryWriter w(path);
  w.WriteRaw(kMagic, sizeof(kMagic));
  w.WriteU32(kVersion);
  w.WriteU8(0);  // no engine section
  WriteSchema(&w, relation.schema());
  WriteRelation(&w, relation);
  w.WriteChecksum();
  return w.Close();
}

Status SaveEngineSnapshot(DiscoveryEngine& engine, const std::string& path) {
  BinaryWriter w(path);
  w.WriteRaw(kMagic, sizeof(kMagic));
  w.WriteU32(kVersion);
  w.WriteU8(kFlagHasEngine);
  WriteSchema(&w, engine.relation().schema());
  WriteRelation(&w, engine.relation());
  engine.SerializeState(&w);
  w.WriteChecksum();
  return w.Close();
}

Status SaveEngineSnapshot(ShardedEngine& engine, const std::string& path) {
  BinaryWriter w(path);
  w.WriteRaw(kMagic, sizeof(kMagic));
  w.WriteU32(kVersion);
  w.WriteU8(kFlagHasEngine);
  WriteSchema(&w, engine.relation().schema());
  WriteRelation(&w, engine.relation());
  engine.SerializeState(&w);
  w.WriteChecksum();
  return w.Close();
}

namespace {

/// Shared header + relation decoding; on success leaves the reader
/// positioned at the engine section (or the checksum).
StatusOr<std::unique_ptr<Relation>> ReadHeaderAndRelation(BinaryReader* r,
                                                          uint8_t* flags) {
  char magic[sizeof(kMagic)];
  r->ReadRaw(magic, sizeof(magic));
  if (!r->ok()) return r->status();
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a sitfact snapshot (bad magic)");
  }
  uint32_t version = r->ReadU32();
  if (version != kVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(version));
  }
  *flags = r->ReadU8();
  auto schema_or = ReadSchema(r);
  if (!schema_or.ok()) return schema_or.status();
  return ReadRelation(r, std::move(schema_or).value());
}

}  // namespace

StatusOr<std::unique_ptr<Relation>> LoadRelationSnapshot(
    const std::string& path) {
  BinaryReader r(path);
  uint8_t flags = 0;
  auto rel_or = ReadHeaderAndRelation(&r, &flags);
  if (!rel_or.ok()) return rel_or.status();
  // Relation-only loads skip any engine payload without decoding it, so the
  // trailing checksum cannot be verified here (it covers the whole file);
  // integrity of the decoded prefix is still guarded by the structural
  // checks above. Engine loads verify the checksum in full.
  if ((flags & kFlagHasEngine) == 0) {
    r.VerifyChecksum();
    if (!r.ok()) return r.status();
  }
  return rel_or;
}

StatusOr<RestoredEngine> LoadEngineSnapshot(
    const std::string& path, const SnapshotLoadOptions& options) {
  BinaryReader r(path);
  uint8_t flags = 0;
  auto rel_or = ReadHeaderAndRelation(&r, &flags);
  if (!rel_or.ok()) return rel_or.status();
  if ((flags & kFlagHasEngine) == 0) {
    return Status::InvalidArgument(
        "snapshot has no engine section; use LoadRelationSnapshot");
  }
  std::unique_ptr<Relation> relation = std::move(rel_or).value();
  const int num_dims = relation->schema().num_dimensions();

  std::string saved_algorithm = r.ReadString();
  DiscoveryOptions disc_options;
  disc_options.max_bound_dims = static_cast<int>(r.ReadU32());
  disc_options.max_measure_dims = static_cast<int>(r.ReadU32());
  disc_options.storage = options.storage;
  DiscoveryEngine::Config config;
  config.options = disc_options;
  config.tau = r.ReadF64();
  config.rank_facts = r.ReadU8() != 0;
  auto saved_policy = static_cast<StoragePolicy>(r.ReadU8());
  if (!r.ok()) return r.status();

  if (saved_algorithm == "Sharded") {
    // Sharded snapshots follow Invariant 1 exactly as the sequential
    // BottomUp family does, so SBottomUp is the natural sequential twin.
    saved_algorithm = "SBottomUp";
  }
  const std::string algorithm = options.algorithm_override.empty()
                                    ? saved_algorithm
                                    : options.algorithm_override;
  auto disc_or = DiscoveryEngine::CreateDiscoverer(
      algorithm, relation.get(), disc_options, options.file_store_dir);
  if (!disc_or.ok()) return disc_or.status();
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();
  bool replay = false;
  if (!disc->SupportsSnapshotRestore()) {
    if (!options.allow_replay_rebuild) {
      return Status::Unimplemented(
          algorithm +
          " cannot be restored from a snapshot (set allow_replay_rebuild to "
          "rebuild it by re-running discovery)");
    }
    replay = true;
  }

  // Counter entries, staged into a scratch counter and moved into the
  // engine once the checksum has cleared.
  ContextCounter counts(disc->max_bound_dims());
  Status counter_read = counts.Deserialize(&r, num_dims);
  if (!counter_read.ok()) return counter_read;

  // µ-store dump.
  const bool saved_store = r.ReadU8() != 0;
  MuStore* store = disc->mutable_store();
  if (saved_store && store != nullptr && !replay &&
      disc->storage_policy() != saved_policy) {
    if (!options.allow_replay_rebuild) {
      return Status::InvalidArgument(
          "algorithm override crosses storage policies; bucket contents "
          "would violate the target invariant (set allow_replay_rebuild to "
          "rebuild instead)");
    }
    replay = true;
  }
  if (!saved_store && store != nullptr && !replay) {
    // Saved from a store-less baseline, restoring into a µ-store algorithm:
    // there is no bucket state to rebuild from, so discovery invariants
    // cannot be re-established without a replay. Refuse rather than serve
    // wrong answers.
    if (!options.allow_replay_rebuild) {
      return Status::InvalidArgument(
          "snapshot has no store dump; cannot restore a store-based "
          "algorithm from it (set allow_replay_rebuild to rebuild instead)");
    }
    replay = true;
  }
  if (saved_store) {
    // Under replay the dump is decoded (the checksum covers it) but the
    // store is rebuilt from scratch by the replay pass instead.
    MuStore* target = (store != nullptr && !replay) ? store : nullptr;
    Status dump_read =
        ReadMuBucketDump(&r, num_dims, relation->size(), target);
    if (!dump_read.ok()) return dump_read;
  }

  r.VerifyChecksum();
  if (!r.ok()) return r.status();

  if (config.rank_facts && store == nullptr) {
    // The saved engine ranked facts, the override cannot.
    config.rank_facts = false;
  }

  if (replay) {
    // Re-run discovery over live history in arrival order. Each Discover(t)
    // consults only tuples < t plus algorithm state, and skipping tombstoned
    // tuples leaves exactly the state a Remove() would have produced.
    std::vector<SkylineFact> scratch;
    for (TupleId t = 0; t < relation->size(); ++t) {
      if (relation->IsDeleted(t)) continue;
      scratch.clear();
      disc->Discover(t, &scratch);
    }
  } else {
    Status rebuilt = disc->RebuildAuxiliary();
    if (!rebuilt.ok()) return rebuilt;
  }

  RestoredEngine out;
  out.relation = std::move(relation);
  out.engine = std::make_unique<DiscoveryEngine>(out.relation.get(),
                                                 std::move(disc), config);
  out.engine->mutable_counter() = std::move(counts);
  return out;
}

StatusOr<RestoredShardedEngine> LoadShardedEngineSnapshot(
    const std::string& path, const ShardedSnapshotLoadOptions& options) {
  BinaryReader r(path);
  uint8_t flags = 0;
  auto rel_or = ReadHeaderAndRelation(&r, &flags);
  if (!rel_or.ok()) return rel_or.status();
  if ((flags & kFlagHasEngine) == 0) {
    return Status::InvalidArgument(
        "snapshot has no engine section; use LoadRelationSnapshot");
  }
  std::unique_ptr<Relation> relation = std::move(rel_or).value();
  const int num_dims = relation->schema().num_dimensions();

  std::string saved_algorithm = r.ReadString();
  ShardedEngine::Config config;
  config.num_shards = options.num_shards;
  config.num_threads = options.num_threads;
  config.options.max_bound_dims = static_cast<int>(r.ReadU32());
  config.options.max_measure_dims = static_cast<int>(r.ReadU32());
  config.options.storage = options.storage;
  config.tau = r.ReadF64();
  r.ReadU8();  // saved rank_facts; the sharded engine always ranks
  auto saved_policy = static_cast<StoragePolicy>(r.ReadU8());
  if (!r.ok()) return r.status();

  auto engine = std::make_unique<ShardedEngine>(relation.get(), config);
  ShardedDiscoverer& disc = engine->discoverer();

  // The sharded segments follow Invariant 1, so only an Invariant-1 bucket
  // dump restores directly; anything else (TopDown family, store-less
  // baselines, C-CSC) needs the replay escape hatch.
  bool replay = saved_policy != StoragePolicy::kAllSkylineConstraints;

  // Counter entries; staged so the replay path can discard them (a sharded
  // replay rebuilds per-shard counts inside Discover()).
  ContextCounter counts(disc.max_bound_dims());
  Status counter_read = counts.Deserialize(&r, num_dims);
  if (!counter_read.ok()) return counter_read;

  const bool saved_store = r.ReadU8() != 0;
  if (!saved_store) replay = true;
  if (replay && !options.allow_replay_rebuild) {
    return Status::InvalidArgument(
        saved_algorithm +
        " snapshot cannot seed the sharded engine's Invariant-1 segments "
        "directly (set allow_replay_rebuild to rebuild by re-running "
        "discovery)");
  }
  if (saved_store) {
    MuStore* target = replay ? nullptr : disc.mutable_store();
    Status dump_read =
        ReadMuBucketDump(&r, num_dims, relation->size(), target);
    if (!dump_read.ok()) return dump_read;
  }

  r.VerifyChecksum();
  if (!r.ok()) return r.status();

  if (replay) {
    // Re-run discovery over live history in arrival order; per-shard
    // counters are rebuilt by the arrivals themselves.
    std::vector<SkylineFact> scratch;
    for (TupleId t = 0; t < relation->size(); ++t) {
      if (relation->IsDeleted(t)) continue;
      scratch.clear();
      disc.Discover(t, &scratch);
    }
  } else {
    counts.ForEach([&](const Constraint& c, uint64_t count) {
      disc.RestoreContextCount(c, count);
    });
  }

  RestoredShardedEngine out;
  out.relation = std::move(relation);
  out.engine = std::move(engine);
  return out;
}

}  // namespace sitfact
