#include "io/snapshot.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/logging.h"
#include "io/binary_io.h"
#include "storage/mu_store.h"

namespace sitfact {

namespace {

constexpr char kMagic[8] = {'S', 'F', 'S', 'N', 'A', 'P', 'v', '1'};
constexpr uint32_t kVersion = 1;

constexpr uint8_t kFlagHasEngine = 1u << 0;

// Sanity caps for length prefixes (a snapshot beyond these is either
// corrupted or far outside this library's design envelope).
constexpr uint64_t kMaxTuples = 1ull << 33;
constexpr uint64_t kMaxDictEntries = 1ull << 30;
constexpr uint64_t kMaxCounterEntries = 1ull << 32;
constexpr uint64_t kMaxBuckets = 1ull << 33;

void WriteConstraint(BinaryWriter* w, const Constraint& c) {
  w->WriteU32(c.bound_mask());
  ForEachBit(c.bound_mask(), [&](int d) { w->WriteU32(c.value(d)); });
}

Constraint ReadConstraint(BinaryReader* r, int num_dims) {
  DimMask bound = r->ReadU32();
  if (!r->CheckCount(PopCount(bound), static_cast<uint64_t>(num_dims),
                     "constraint bound count")) {
    return Constraint::Top(num_dims);
  }
  std::vector<ValueId> values;
  values.reserve(static_cast<size_t>(PopCount(bound)));
  ForEachBit(bound, [&](int) { values.push_back(r->ReadU32()); });
  if (!r->ok()) return Constraint::Top(num_dims);
  return Constraint::FromBoundValues(num_dims, bound, values);
}

void WriteSchema(BinaryWriter* w, const Schema& schema) {
  w->WriteU32(static_cast<uint32_t>(schema.num_dimensions()));
  for (const auto& d : schema.dimensions()) w->WriteString(d.name);
  w->WriteU32(static_cast<uint32_t>(schema.num_measures()));
  for (const auto& m : schema.measures()) {
    w->WriteString(m.name);
    w->WriteU8(m.direction == Direction::kSmallerIsBetter ? 1 : 0);
  }
}

StatusOr<Schema> ReadSchema(BinaryReader* r) {
  uint32_t ndims = r->ReadU32();
  if (!r->CheckCount(ndims, kMaxDimensions, "dimension count")) {
    return r->status();
  }
  std::vector<DimensionAttribute> dims;
  dims.reserve(ndims);
  for (uint32_t i = 0; i < ndims; ++i) dims.push_back({r->ReadString()});
  uint32_t nmeas = r->ReadU32();
  if (!r->CheckCount(nmeas, kMaxMeasures, "measure count")) {
    return r->status();
  }
  std::vector<MeasureAttribute> meas;
  meas.reserve(nmeas);
  for (uint32_t j = 0; j < nmeas; ++j) {
    MeasureAttribute m;
    m.name = r->ReadString();
    m.direction = r->ReadU8() != 0 ? Direction::kSmallerIsBetter
                                   : Direction::kLargerIsBetter;
    meas.push_back(std::move(m));
  }
  if (!r->ok()) return r->status();
  return Schema::Create(std::move(dims), std::move(meas));
}

void WriteRelation(BinaryWriter* w, const Relation& rel) {
  const Schema& schema = rel.schema();
  const uint64_t n = rel.size();
  w->WriteU64(n);
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    const Dictionary& dict = rel.dictionary(d);
    w->WriteU32(static_cast<uint32_t>(dict.size()));
    for (ValueId id = 0; id < dict.size(); ++id) {
      w->WriteString(dict.Decode(id));
    }
  }
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    for (uint64_t t = 0; t < n; ++t) {
      w->WriteU32(rel.dim(static_cast<TupleId>(t), d));
    }
  }
  for (int j = 0; j < schema.num_measures(); ++j) {
    for (uint64_t t = 0; t < n; ++t) {
      w->WriteF64(rel.measure(static_cast<TupleId>(t), j));
    }
  }
  // Tombstones, sparse: deletion is the rare administrative path.
  std::vector<TupleId> deleted;
  for (uint64_t t = 0; t < n; ++t) {
    if (rel.IsDeleted(static_cast<TupleId>(t))) {
      deleted.push_back(static_cast<TupleId>(t));
    }
  }
  w->WriteU64(deleted.size());
  for (TupleId t : deleted) w->WriteU32(t);
}

StatusOr<std::unique_ptr<Relation>> ReadRelation(BinaryReader* r,
                                                 Schema schema) {
  auto rel = std::make_unique<Relation>(std::move(schema));
  const Schema& s = rel->schema();
  uint64_t n = r->ReadU64();
  if (!r->CheckCount(n, kMaxTuples, "tuple count")) return r->status();

  for (int d = 0; d < s.num_dimensions(); ++d) {
    uint32_t entries = r->ReadU32();
    if (!r->CheckCount(entries, kMaxDictEntries, "dictionary size")) {
      return r->status();
    }
    Dictionary& dict = rel->dictionary(d);
    for (uint32_t i = 0; i < entries; ++i) {
      std::string value = r->ReadString();
      if (!r->ok()) return r->status();
      ValueId id = dict.Encode(value);
      if (id != i) {
        return Status::Corruption("dictionary entries out of order");
      }
    }
  }

  std::vector<std::vector<ValueId>> dim_cols(
      static_cast<size_t>(s.num_dimensions()));
  for (int d = 0; d < s.num_dimensions(); ++d) {
    dim_cols[d].resize(n);
    for (uint64_t t = 0; t < n; ++t) dim_cols[d][t] = r->ReadU32();
    const size_t dict_size = rel->dictionary(d).size();
    for (uint64_t t = 0; t < n; ++t) {
      if (dim_cols[d][t] >= dict_size) {
        return Status::Corruption("dimension value out of dictionary range");
      }
    }
  }
  std::vector<std::vector<double>> mea_cols(
      static_cast<size_t>(s.num_measures()));
  for (int j = 0; j < s.num_measures(); ++j) {
    mea_cols[j].resize(n);
    for (uint64_t t = 0; t < n; ++t) mea_cols[j][t] = r->ReadF64();
  }
  if (!r->ok()) return r->status();

  std::vector<ValueId> dims(static_cast<size_t>(s.num_dimensions()));
  std::vector<double> meas(static_cast<size_t>(s.num_measures()));
  for (uint64_t t = 0; t < n; ++t) {
    for (int d = 0; d < s.num_dimensions(); ++d) dims[d] = dim_cols[d][t];
    for (int j = 0; j < s.num_measures(); ++j) meas[j] = mea_cols[j][t];
    rel->AppendEncoded(dims, meas);
  }

  uint64_t num_deleted = r->ReadU64();
  if (!r->CheckCount(num_deleted, n, "deleted count")) return r->status();
  for (uint64_t i = 0; i < num_deleted; ++i) {
    uint32_t t = r->ReadU32();
    if (t >= n) return Status::Corruption("deleted id out of range");
    rel->MarkDeleted(t);
  }
  if (!r->ok()) return r->status();
  return rel;
}

void WriteEngineState(BinaryWriter* w, DiscoveryEngine& engine) {
  Discoverer& disc = engine.discoverer();
  w->WriteString(std::string(disc.name()));
  w->WriteU32(static_cast<uint32_t>(disc.max_bound_dims()));
  w->WriteU32(static_cast<uint32_t>(disc.subspaces().max_size()));
  w->WriteF64(engine.config().tau);
  w->WriteU8(engine.config().rank_facts ? 1 : 0);
  w->WriteU8(static_cast<uint8_t>(disc.storage_policy()));

  // Context-cardinality counter.
  const ContextCounter& counter = engine.counter();
  w->WriteU64(counter.distinct_contexts());
  counter.ForEach([&](const Constraint& c, uint64_t count) {
    WriteConstraint(w, c);
    w->WriteU64(count);
  });

  // µ-store dump (absent for baselines).
  MuStore* store = disc.mutable_store();
  w->WriteU8(store != nullptr ? 1 : 0);
  if (store != nullptr) {
    uint64_t buckets = 0;
    store->ForEachBucket([&](const Constraint&, MeasureMask,
                             const std::vector<TupleId>&) { ++buckets; });
    w->WriteU64(buckets);
    store->ForEachBucket([&](const Constraint& c, MeasureMask m,
                             const std::vector<TupleId>& bucket) {
      WriteConstraint(w, c);
      w->WriteU32(m);
      w->WriteU32(static_cast<uint32_t>(bucket.size()));
      for (TupleId t : bucket) w->WriteU32(t);
    });
  }
}

}  // namespace

Status SaveRelationSnapshot(const Relation& relation,
                            const std::string& path) {
  BinaryWriter w(path);
  w.WriteRaw(kMagic, sizeof(kMagic));
  w.WriteU32(kVersion);
  w.WriteU8(0);  // no engine section
  WriteSchema(&w, relation.schema());
  WriteRelation(&w, relation);
  w.WriteChecksum();
  return w.Close();
}

Status SaveEngineSnapshot(DiscoveryEngine& engine, const std::string& path) {
  BinaryWriter w(path);
  w.WriteRaw(kMagic, sizeof(kMagic));
  w.WriteU32(kVersion);
  w.WriteU8(kFlagHasEngine);
  WriteSchema(&w, engine.relation().schema());
  WriteRelation(&w, engine.relation());
  WriteEngineState(&w, engine);
  w.WriteChecksum();
  return w.Close();
}

namespace {

/// Shared header + relation decoding; on success leaves the reader
/// positioned at the engine section (or the checksum).
StatusOr<std::unique_ptr<Relation>> ReadHeaderAndRelation(BinaryReader* r,
                                                          uint8_t* flags) {
  char magic[sizeof(kMagic)];
  r->ReadRaw(magic, sizeof(magic));
  if (!r->ok()) return r->status();
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a sitfact snapshot (bad magic)");
  }
  uint32_t version = r->ReadU32();
  if (version != kVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(version));
  }
  *flags = r->ReadU8();
  auto schema_or = ReadSchema(r);
  if (!schema_or.ok()) return schema_or.status();
  return ReadRelation(r, std::move(schema_or).value());
}

}  // namespace

StatusOr<std::unique_ptr<Relation>> LoadRelationSnapshot(
    const std::string& path) {
  BinaryReader r(path);
  uint8_t flags = 0;
  auto rel_or = ReadHeaderAndRelation(&r, &flags);
  if (!rel_or.ok()) return rel_or.status();
  // Relation-only loads skip any engine payload without decoding it, so the
  // trailing checksum cannot be verified here (it covers the whole file);
  // integrity of the decoded prefix is still guarded by the structural
  // checks above. Engine loads verify the checksum in full.
  if ((flags & kFlagHasEngine) == 0) {
    r.VerifyChecksum();
    if (!r.ok()) return r.status();
  }
  return rel_or;
}

StatusOr<RestoredEngine> LoadEngineSnapshot(
    const std::string& path, const SnapshotLoadOptions& options) {
  BinaryReader r(path);
  uint8_t flags = 0;
  auto rel_or = ReadHeaderAndRelation(&r, &flags);
  if (!rel_or.ok()) return rel_or.status();
  if ((flags & kFlagHasEngine) == 0) {
    return Status::InvalidArgument(
        "snapshot has no engine section; use LoadRelationSnapshot");
  }
  std::unique_ptr<Relation> relation = std::move(rel_or).value();
  const int num_dims = relation->schema().num_dimensions();

  std::string saved_algorithm = r.ReadString();
  DiscoveryOptions disc_options;
  disc_options.max_bound_dims = static_cast<int>(r.ReadU32());
  disc_options.max_measure_dims = static_cast<int>(r.ReadU32());
  DiscoveryEngine::Config config;
  config.options = disc_options;
  config.tau = r.ReadF64();
  config.rank_facts = r.ReadU8() != 0;
  auto saved_policy = static_cast<StoragePolicy>(r.ReadU8());
  if (!r.ok()) return r.status();

  const std::string algorithm = options.algorithm_override.empty()
                                    ? saved_algorithm
                                    : options.algorithm_override;
  auto disc_or = DiscoveryEngine::CreateDiscoverer(
      algorithm, relation.get(), disc_options, options.file_store_dir);
  if (!disc_or.ok()) return disc_or.status();
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();
  bool replay = false;
  if (!disc->SupportsSnapshotRestore()) {
    if (!options.allow_replay_rebuild) {
      return Status::Unimplemented(
          algorithm +
          " cannot be restored from a snapshot (set allow_replay_rebuild to "
          "rebuild it by re-running discovery)");
    }
    replay = true;
  }

  // Counter entries.
  uint64_t counter_entries = r.ReadU64();
  if (!r.CheckCount(counter_entries, kMaxCounterEntries, "counter entries")) {
    return r.status();
  }
  std::vector<std::pair<Constraint, uint64_t>> counts;
  counts.reserve(counter_entries);
  for (uint64_t i = 0; i < counter_entries; ++i) {
    Constraint c = ReadConstraint(&r, num_dims);
    uint64_t count = r.ReadU64();
    if (!r.ok()) return r.status();
    counts.emplace_back(std::move(c), count);
  }

  // µ-store dump.
  const bool saved_store = r.ReadU8() != 0;
  MuStore* store = disc->mutable_store();
  if (saved_store && store != nullptr && !replay &&
      disc->storage_policy() != saved_policy) {
    if (!options.allow_replay_rebuild) {
      return Status::InvalidArgument(
          "algorithm override crosses storage policies; bucket contents "
          "would violate the target invariant (set allow_replay_rebuild to "
          "rebuild instead)");
    }
    replay = true;
  }
  if (!saved_store && store != nullptr && !replay) {
    // Saved from a store-less baseline, restoring into a µ-store algorithm:
    // there is no bucket state to rebuild from, so discovery invariants
    // cannot be re-established without a replay. Refuse rather than serve
    // wrong answers.
    if (!options.allow_replay_rebuild) {
      return Status::InvalidArgument(
          "snapshot has no store dump; cannot restore a store-based "
          "algorithm from it (set allow_replay_rebuild to rebuild instead)");
    }
    replay = true;
  }
  if (saved_store) {
    uint64_t buckets = r.ReadU64();
    if (!r.CheckCount(buckets, kMaxBuckets, "bucket count")) {
      return r.status();
    }
    std::vector<TupleId> bucket;
    for (uint64_t i = 0; i < buckets; ++i) {
      Constraint c = ReadConstraint(&r, num_dims);
      MeasureMask m = r.ReadU32();
      uint32_t len = r.ReadU32();
      if (!r.CheckCount(len, relation->size(), "bucket size")) {
        return r.status();
      }
      bucket.resize(len);
      for (uint32_t k = 0; k < len; ++k) {
        bucket[k] = r.ReadU32();
        if (bucket[k] >= relation->size()) {
          return Status::Corruption("bucket tuple id out of range");
        }
      }
      if (!r.ok()) return r.status();
      // Under replay the dump is decoded (the checksum covers it) but the
      // store is rebuilt from scratch by the replay pass instead.
      if (store != nullptr && !replay) store->GetOrCreate(c)->Write(m, bucket);
    }
  }

  r.VerifyChecksum();
  if (!r.ok()) return r.status();

  if (config.rank_facts && store == nullptr) {
    // The saved engine ranked facts, the override cannot.
    config.rank_facts = false;
  }

  if (replay) {
    // Re-run discovery over live history in arrival order. Each Discover(t)
    // consults only tuples < t plus algorithm state, and skipping tombstoned
    // tuples leaves exactly the state a Remove() would have produced.
    std::vector<SkylineFact> scratch;
    for (TupleId t = 0; t < relation->size(); ++t) {
      if (relation->IsDeleted(t)) continue;
      scratch.clear();
      disc->Discover(t, &scratch);
    }
  } else {
    Status rebuilt = disc->RebuildAuxiliary();
    if (!rebuilt.ok()) return rebuilt;
  }

  RestoredEngine out;
  out.relation = std::move(relation);
  out.engine = std::make_unique<DiscoveryEngine>(out.relation.get(),
                                                 std::move(disc), config);
  for (const auto& [c, count] : counts) {
    out.engine->mutable_counter().Restore(c, count);
  }
  return out;
}

}  // namespace sitfact
