#include "io/csv_table.h"

#include <cstdlib>
#include <fstream>

#include "common/csv.h"

namespace sitfact {

StatusOr<CsvTable> CsvTable::Read(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty CSV file: " + path);
  }
  // Tolerate a UTF-8 BOM on the first line (spreadsheet exports).
  if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF') {
    line.erase(0, 3);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  Status st = SplitCsvLine(line, &table.header_);
  if (!st.ok()) return st;

  size_t line_no = 1;
  std::vector<std::string> fields;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    st = SplitCsvLine(line, &fields);
    if (!st.ok()) {
      return Status::Corruption(st.message() + " at line " +
                                std::to_string(line_no));
    }
    if (fields.size() != table.header_.size()) {
      return Status::Corruption(
          "row has " + std::to_string(fields.size()) + " fields, header has " +
          std::to_string(table.header_.size()) + " at line " +
          std::to_string(line_no));
    }
    table.rows_.push_back(fields);
  }
  return table;
}

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<Dataset> DatasetFromCsvTable(const CsvTable& table,
                                      const Schema& schema) {
  std::vector<int> dim_cols;
  for (const auto& d : schema.dimensions()) {
    int idx = table.ColumnIndex(d.name);
    if (idx < 0) return Status::NotFound("no CSV column named " + d.name);
    dim_cols.push_back(idx);
  }
  std::vector<int> mea_cols;
  for (const auto& m : schema.measures()) {
    int idx = table.ColumnIndex(m.name);
    if (idx < 0) return Status::NotFound("no CSV column named " + m.name);
    mea_cols.push_back(idx);
  }

  Dataset out(schema);
  for (size_t i = 0; i < table.rows().size(); ++i) {
    const auto& fields = table.rows()[i];
    Row row;
    row.dimensions.reserve(dim_cols.size());
    row.measures.reserve(mea_cols.size());
    for (int c : dim_cols) {
      row.dimensions.push_back(fields[static_cast<size_t>(c)]);
    }
    for (int c : mea_cols) {
      const std::string& f = fields[static_cast<size_t>(c)];
      char* end = nullptr;
      double v = std::strtod(f.c_str(), &end);
      if (end == f.c_str()) {
        return Status::Corruption("non-numeric measure '" + f +
                                  "' in data row " + std::to_string(i + 1));
      }
      row.measures.push_back(v);
    }
    out.Add(std::move(row));
  }
  return out;
}

}  // namespace sitfact
