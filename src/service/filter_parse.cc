#include "service/filter_parse.h"

#include <cstdlib>

namespace sitfact {

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  std::string token;
  for (char c : s) {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

StatusOr<Constraint> ParseWhereConstraint(const std::string& where,
                                          const Relation& relation,
                                          std::string* empty_note) {
  const Schema& schema = relation.schema();
  DimMask bound = 0;
  std::vector<ValueId> values(static_cast<size_t>(schema.num_dimensions()),
                              0);
  for (const std::string& clause : SplitList(where)) {
    size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("--where clauses look like dim=value");
    }
    const std::string dim_name = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    int d = schema.DimensionIndex(dim_name);
    if (d < 0) {
      return Status::InvalidArgument("--where names no dimension: " +
                                     dim_name);
    }
    ValueId id = relation.dictionary(d).Lookup(value);
    if (id == kUnboundValue) {
      *empty_note = "value '" + value + "' never occurs in " + dim_name;
      return Constraint::Top(schema.num_dimensions());
    }
    bound |= DimMask{1} << d;
    values[static_cast<size_t>(d)] = id;
  }
  if (bound == 0) return Constraint::Top(schema.num_dimensions());
  std::vector<ValueId> bound_values;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    if ((bound >> d) & 1u) bound_values.push_back(values[d]);
  }
  return Constraint::FromBoundValues(schema.num_dimensions(), bound,
                                     bound_values);
}

StatusOr<MeasureMask> ParseSubspaceList(const std::string& list,
                                        const Schema& schema) {
  MeasureMask subspace = 0;
  for (const std::string& name : SplitList(list)) {
    int j = schema.MeasureIndex(name);
    if (j < 0) {
      return Status::InvalidArgument("--subspace names no measure: " + name);
    }
    subspace |= MeasureMask{1} << j;
  }
  if (subspace == 0) {
    return Status::InvalidArgument("--subspace selected no measures");
  }
  return subspace;
}

Status ParseArrivalWindow(const std::string& window, uint64_t* first,
                          uint64_t* last) {
  const size_t colon = window.find(':');
  const auto parse_u64 = [](const std::string& s, uint64_t* out_value) {
    if (s.empty()) return false;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
    }
    *out_value = std::strtoull(s.c_str(), nullptr, 10);
    return true;
  };
  if (colon == std::string::npos ||
      !parse_u64(window.substr(0, colon), first) ||
      !parse_u64(window.substr(colon + 1), last)) {
    return Status::InvalidArgument(
        "--window looks like FIRST:LAST (non-negative arrival sequence "
        "numbers), got '" + window + "'");
  }
  if (*first > *last) {
    return Status::InvalidArgument("--window is reversed: " + window);
  }
  return Status::Ok();
}

StatusOr<FactFilter> ParseFactFilter(const FactFilterSpec& spec,
                                     const Relation& relation,
                                     std::string* empty_note) {
  FactFilter filter;
  if (!spec.where.empty()) {
    auto constraint_or = ParseWhereConstraint(spec.where, relation,
                                              empty_note);
    if (!constraint_or.ok()) return constraint_or.status();
    if (constraint_or.value().bound_mask() != 0) {
      filter.about = constraint_or.value();
    }
  }
  if (!spec.subspace.empty()) {
    auto subspace_or = ParseSubspaceList(spec.subspace, relation.schema());
    if (!subspace_or.ok()) return subspace_or.status();
    filter.subspace = subspace_or.value();
  }
  if (!spec.window.empty()) {
    Status st = ParseArrivalWindow(spec.window, &filter.min_arrival,
                                   &filter.max_arrival);
    if (!st.ok()) return st;
  }
  filter.min_prominence = spec.min_prominence;
  filter.prominent_only = spec.prominent_only;
  return filter;
}

}  // namespace sitfact
