#ifndef SITFACT_SERVICE_QUERY_API_H_
#define SITFACT_SERVICE_QUERY_API_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/fact_index.h"
#include "service/fact_service.h"

namespace sitfact {

/// The unified request/response layer over FactService: every query
/// surface — in-process callers, the `facts` CLI subcommand, and the HTTP
/// server in src/net/ — builds one QueryRequest and receives one
/// QueryResponse, so there is exactly one query shape and one JSON
/// (de)serializer (src/net/json.h) instead of five bespoke ones.
///
/// All five kinds answer with the same cursor-paginated Page contract:
/// TopK/About pages run prominence-descending, FactsForTuple/FactsInWindow
/// pages run record-id-ascending, and in every case `next` resumes
/// strictly after the last returned record. Explain returns the single
/// named record plus its narration in `explanation`.

/// Version of the wire schema; every serialized response carries it as
/// `"schema"`, so clients can hard-fail on a version they do not speak
/// instead of misreading fields.
inline constexpr uint32_t kWireSchemaVersion = 1;

enum class QueryKind {
  kTopK = 0,
  kFactsForTuple,
  kFactsInWindow,
  kAbout,
  kExplain,
};

/// Wire name of a kind ("topk", "facts_for_tuple", ...).
const char* QueryKindName(QueryKind kind);

/// Inverse of QueryKindName; InvalidArgument on unknown names.
StatusOr<QueryKind> ParseQueryKind(const std::string& name);

/// One query against a FactService snapshot. Which fields matter depends
/// on `kind`; ExecuteQuery validates the combination.
struct QueryRequest {
  QueryKind kind = QueryKind::kTopK;
  /// Page size for the list kinds (ignored by kExplain).
  uint64_t k = 10;
  /// Conjunctive record filter. kAbout reads its constraint from
  /// `filter.about` (kAbout is TopK restricted to facts about that
  /// constraint — kept as its own kind so the wire endpoint and the
  /// in-process About() call stay one shape).
  FactFilter filter;
  /// kFactsForTuple: the minting tuple.
  std::optional<TupleId> tuple;
  /// kFactsInWindow: inclusive arrival-sequence window.
  std::optional<uint64_t> window_first;
  std::optional<uint64_t> window_last;
  /// Resume position from a previous page's `next`.
  std::optional<TopKCursor> cursor;
  /// kExplain: the record to narrate.
  std::optional<uint32_t> record;
};

/// One response: the page plus the epoch it was served from. Immutable
/// facts about the shape: `schema` is always kWireSchemaVersion and
/// `epoch` is always the snapshot's epoch — a response is attributable to
/// exactly one published index state, which is what makes (epoch, request)
/// response caching trivially coherent.
struct QueryResponse {
  uint32_t schema = kWireSchemaVersion;
  uint64_t epoch = 0;
  std::vector<FactService::FactView> facts;
  /// Present when more matches may exist; feed back as `cursor` to resume.
  std::optional<TopKCursor> next;
  /// kExplain only: the narration for `facts[0]`.
  std::optional<std::string> explanation;
};

/// Executes one request against a pinned snapshot. Every query surface
/// funnels through here. InvalidArgument when the request's fields do not
/// fit its kind (missing tuple/window/record, reversed window, record id
/// out of range).
StatusOr<QueryResponse> ExecuteQuery(const FactService::Snapshot& snapshot,
                                     const QueryRequest& request);

/// Convenience: acquire + execute.
inline StatusOr<QueryResponse> ExecuteQuery(const FactService& service,
                                            const QueryRequest& request) {
  return ExecuteQuery(service.Acquire(), request);
}

}  // namespace sitfact

#endif  // SITFACT_SERVICE_QUERY_API_H_
