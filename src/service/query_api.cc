#include "service/query_api.h"

#include <utility>

namespace sitfact {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTopK:
      return "topk";
    case QueryKind::kFactsForTuple:
      return "facts_for_tuple";
    case QueryKind::kFactsInWindow:
      return "facts_in_window";
    case QueryKind::kAbout:
      return "about";
    case QueryKind::kExplain:
      return "explain";
  }
  return "topk";
}

StatusOr<QueryKind> ParseQueryKind(const std::string& name) {
  for (QueryKind kind :
       {QueryKind::kTopK, QueryKind::kFactsForTuple,
        QueryKind::kFactsInWindow, QueryKind::kAbout, QueryKind::kExplain}) {
    if (name == QueryKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown query kind '" + name + "'");
}

StatusOr<QueryResponse> ExecuteQuery(const FactService::Snapshot& snapshot,
                                     const QueryRequest& request) {
  QueryResponse response;
  response.epoch = snapshot.epoch();
  switch (request.kind) {
    case QueryKind::kTopK: {
      FactService::Page page = snapshot.TopK(
          static_cast<size_t>(request.k), request.filter, request.cursor);
      response.facts = std::move(page.facts);
      response.next = page.next;
      return response;
    }
    case QueryKind::kAbout: {
      if (!request.filter.about.has_value()) {
        return Status::InvalidArgument(
            "about query needs a constraint (filter.about / 'where')");
      }
      FactService::Page page = snapshot.TopK(
          static_cast<size_t>(request.k), request.filter, request.cursor);
      response.facts = std::move(page.facts);
      response.next = page.next;
      return response;
    }
    case QueryKind::kFactsForTuple: {
      if (!request.tuple.has_value()) {
        return Status::InvalidArgument(
            "facts_for_tuple query needs a tuple id");
      }
      FactService::Page page = snapshot.FactsForTuple(
          *request.tuple, request.filter, static_cast<size_t>(request.k),
          request.cursor);
      response.facts = std::move(page.facts);
      response.next = page.next;
      return response;
    }
    case QueryKind::kFactsInWindow: {
      if (!request.window_first.has_value() ||
          !request.window_last.has_value()) {
        return Status::InvalidArgument(
            "facts_in_window query needs a first:last arrival window");
      }
      if (*request.window_first > *request.window_last) {
        return Status::InvalidArgument("--window is reversed: " +
                                       std::to_string(*request.window_first) +
                                       ":" +
                                       std::to_string(*request.window_last));
      }
      FactService::Page page = snapshot.FactsInWindow(
          *request.window_first, *request.window_last, request.filter,
          static_cast<size_t>(request.k), request.cursor);
      response.facts = std::move(page.facts);
      response.next = page.next;
      return response;
    }
    case QueryKind::kExplain: {
      if (!request.record.has_value()) {
        return Status::InvalidArgument("explain query needs a record id");
      }
      std::optional<FactService::FactView> view =
          snapshot.Fact(*request.record);
      if (!view.has_value()) {
        return Status::NotFound(
            "record " + std::to_string(*request.record) +
            " does not exist at epoch " + std::to_string(snapshot.epoch()));
      }
      response.explanation = snapshot.Explain(*view);
      response.facts.push_back(std::move(*view));
      return response;
    }
  }
  return Status::InvalidArgument("unknown query kind");
}

}  // namespace sitfact
