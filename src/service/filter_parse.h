#ifndef SITFACT_SERVICE_FILTER_PARSE_H_
#define SITFACT_SERVICE_FILTER_PARSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "lattice/constraint.h"
#include "query/fact_index.h"
#include "relation/relation.h"

namespace sitfact {

/// The textual filter grammar shared by every query surface — the CLI's
/// `--where`/`--subspace`/`--window` flags and the HTTP server's
/// query-string / JSON filter fields parse through these exact functions,
/// so a filter expression means the same thing (and fails with the same
/// message) no matter where it was typed. The error strings are pinned by
/// tests/query_api_test.cc: do not reword them casually.

/// Splits "a,b,c" into trimmed tokens (empty tokens dropped).
std::vector<std::string> SplitList(const std::string& s);

/// Parses `d1=v1,d2=v2` into a constraint over `relation`'s dictionaries.
/// A value that never occurs in its dimension makes the context provably
/// empty: `*empty_note` is set and ⊤ returned so callers can report it as
/// a result rather than an error. Malformed clauses and unknown dimensions
/// are InvalidArgument.
StatusOr<Constraint> ParseWhereConstraint(const std::string& where,
                                          const Relation& relation,
                                          std::string* empty_note);

/// Parses `m1,m2` into a measure mask; InvalidArgument on unknown measure
/// names or an empty selection.
StatusOr<MeasureMask> ParseSubspaceList(const std::string& list,
                                        const Schema& schema);

/// Parses `FIRST:LAST` (non-negative arrival sequence numbers, inclusive)
/// into *first/*last; InvalidArgument on malformed or reversed windows.
Status ParseArrivalWindow(const std::string& window, uint64_t* first,
                          uint64_t* last);

/// Textual filter fields as they arrive from a CLI flag set or an HTTP
/// request, before dictionary resolution. Empty strings mean "not given".
struct FactFilterSpec {
  std::string where;     ///< "d1=v1,d2=v2" -> FactFilter::about
  std::string subspace;  ///< "m1,m2" -> FactFilter::subspace
  std::string window;    ///< "FIRST:LAST" -> min_arrival/max_arrival
  double min_prominence = 0.0;
  bool prominent_only = false;
};

/// Resolves a textual spec against `relation` into a FactFilter. When
/// `where` names a value that never occurs, `*empty_note` is set and the
/// returned filter carries no `about` constraint (the caller reports an
/// empty result, mirroring the historical CLI behavior).
StatusOr<FactFilter> ParseFactFilter(const FactFilterSpec& spec,
                                     const Relation& relation,
                                     std::string* empty_note);

}  // namespace sitfact

#endif  // SITFACT_SERVICE_FILTER_PARSE_H_
