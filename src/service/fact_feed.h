#ifndef SITFACT_SERVICE_FACT_FEED_H_
#define SITFACT_SERVICE_FACT_FEED_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "exec/sharded_engine.h"
#include "persist/durable_engine.h"
#include "relation/relation.h"
#include "service/fact_service.h"

namespace sitfact {

/// Asynchronous front end for a DiscoveryEngine or ShardedEngine: producers
/// Publish() rows from any thread; one worker thread owns the engine (every
/// discovery engine is single-writer by design) and invokes a subscriber
/// callback for each arrival that produced prominent facts. This is the
/// shape a newsroom deployment takes — scrapers push box scores as games
/// end, the feed emits narratable facts within one arrival of ingestion.
///
/// When backed by a ShardedEngine the worker drains the queue in batches of
/// up to Options::max_batch rows per engine call (AppendBatch), keeping its
/// shard pipeline full under bursty producers.
///
/// Backpressure: the queue is bounded; Publish() blocks when full (the
/// stream must not silently drop events — a missed arrival would corrupt
/// every later prominence denominator).
///
/// Lifecycle: construct -> Publish xN -> Drain()/Stop(). Stop() is
/// idempotent and runs in the destructor; Drain() blocks until the queue
/// empties without stopping the worker.
class FactFeed {
 public:
  /// Called on the worker thread for every arrival whose report contains at
  /// least one prominent fact. The report reference is valid only during
  /// the call.
  using Subscriber = std::function<void(const ArrivalReport&)>;

  struct Options {
    /// Maximum rows buffered between producers and the worker.
    size_t queue_capacity = 1024;
    /// Invoke the subscriber for every arrival, not just prominent ones.
    bool notify_all_arrivals = false;
    /// Rows handed to the engine per call when backed by a ShardedEngine
    /// (its AppendBatch pipeline; sequential engines always take one row at
    /// a time). Subscribers still see one report per arrival, in order.
    size_t max_batch = 32;
    /// Optional query index: when set, the worker folds EVERY arrival into
    /// the service (regardless of notify_all_arrivals) before invoking the
    /// subscriber, making Query() safe while ingestion runs. The service
    /// must be built over the same Relation the engine writes and must
    /// outlive the feed; no other thread may call its ingest-side methods
    /// while the feed runs.
    FactService* fact_service = nullptr;
  };

  /// `engine` must outlive the feed and must not be touched by other
  /// threads while the feed runs.
  FactFeed(DiscoveryEngine* engine, Subscriber subscriber, Options options);
  FactFeed(DiscoveryEngine* engine, Subscriber subscriber)
      : FactFeed(engine, std::move(subscriber), Options()) {}

  /// Sharded back end: same contract, batched drain.
  FactFeed(ShardedEngine* engine, Subscriber subscriber, Options options);
  FactFeed(ShardedEngine* engine, Subscriber subscriber)
      : FactFeed(engine, std::move(subscriber), Options()) {}

  /// Durable back end: every row is WAL-logged before discovery, and the
  /// DurableEngine's checkpoint-every-N policy
  /// (persist::DurableOptions::checkpoint_every) snapshots the engine as the
  /// stream flows. Batched drain when the durable store wraps a sharded
  /// engine. A durability failure (disk full, IO error) latches into
  /// durable_status() and stops the feed — dropping rows would corrupt
  /// every later prominence denominator, so refusing further input is the
  /// only safe reaction.
  FactFeed(persist::DurableEngine* engine, Subscriber subscriber,
           Options options);
  FactFeed(persist::DurableEngine* engine, Subscriber subscriber)
      : FactFeed(engine, std::move(subscriber), Options()) {}

  ~FactFeed();

  FactFeed(const FactFeed&) = delete;
  FactFeed& operator=(const FactFeed&) = delete;

  /// Enqueues one row; blocks while the queue is at capacity. Returns false
  /// (and does not enqueue) after Stop().
  bool Publish(Row row);

  /// Blocks until every row published so far has been processed.
  void Drain();

  /// Stops accepting rows, processes the backlog, joins the worker.
  void Stop();

  /// Rows processed by the worker so far.
  uint64_t processed() const;

  /// Arrivals that carried at least one prominent fact.
  uint64_t prominent_arrivals() const;

  /// First durability error, or Ok. Only ever non-Ok for the durable back
  /// end; once set the feed has stopped and Publish() returns false.
  Status durable_status() const;

  /// First exception thrown by the subscriber callback, or Ok. A throwing
  /// subscriber must not take down the pipeline (the engine already applied
  /// the arrival — dropping the row now would corrupt every later
  /// prominence denominator), so the worker catches, latches the first
  /// error here, and keeps both ingesting and notifying.
  Status subscriber_status() const;

  /// Snapshot of the attached FactService (Options::fact_service): the
  /// feed's concurrent query surface. Safe from any thread while ingestion
  /// runs; the snapshot lags the stream by at most the service's
  /// publish_every. CHECK-fails when no service is attached.
  FactService::Snapshot Query() const;

 private:
  void WorkerLoop();

  /// Pops up to max_batch rows (at least one) while holding no lock longer
  /// than needed; returns false when stopping with an empty backlog.
  bool PopBatch(std::vector<Row>* batch);

  /// Books one processed report and notifies the subscriber if warranted.
  void DeliverReport(const ArrivalReport& report);

  DiscoveryEngine* engine_ = nullptr;        // exactly one back end is set
  ShardedEngine* sharded_engine_ = nullptr;
  persist::DurableEngine* durable_engine_ = nullptr;
  Subscriber subscriber_;
  Options options_;
  Status durable_status_;    // guarded by mu_
  Status subscriber_status_;  // guarded by mu_

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable drained_;
  std::queue<Row> queue_;
  bool stopping_ = false;
  uint64_t processed_ = 0;
  uint64_t prominent_arrivals_ = 0;
  bool idle_ = true;

  std::thread worker_;
};

}  // namespace sitfact

#endif  // SITFACT_SERVICE_FACT_FEED_H_
