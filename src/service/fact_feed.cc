#include "service/fact_feed.h"

#include <exception>
#include <span>
#include <string>
#include <utility>

#include "common/logging.h"

namespace sitfact {

FactFeed::FactFeed(DiscoveryEngine* engine, Subscriber subscriber,
                   Options options)
    : engine_(engine),
      subscriber_(std::move(subscriber)),
      options_(options) {
  SITFACT_CHECK(engine != nullptr);
  SITFACT_CHECK(options_.queue_capacity > 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

FactFeed::FactFeed(ShardedEngine* engine, Subscriber subscriber,
                   Options options)
    : sharded_engine_(engine),
      subscriber_(std::move(subscriber)),
      options_(options) {
  SITFACT_CHECK(engine != nullptr);
  SITFACT_CHECK(options_.queue_capacity > 0);
  SITFACT_CHECK(options_.max_batch > 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

FactFeed::FactFeed(persist::DurableEngine* engine, Subscriber subscriber,
                   Options options)
    : durable_engine_(engine),
      subscriber_(std::move(subscriber)),
      options_(options) {
  SITFACT_CHECK(engine != nullptr);
  SITFACT_CHECK(options_.queue_capacity > 0);
  SITFACT_CHECK(options_.max_batch > 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

FactFeed::~FactFeed() { Stop(); }

bool FactFeed::Publish(Row row) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) return false;
  queue_.push(std::move(row));
  not_empty_.notify_one();
  return true;
}

void FactFeed::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return queue_.empty() && idle_; });
}

void FactFeed::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopping; fall through to join if another thread raced us.
    }
    stopping_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
}

uint64_t FactFeed::processed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return processed_;
}

uint64_t FactFeed::prominent_arrivals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prominent_arrivals_;
}

Status FactFeed::durable_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_status_;
}

Status FactFeed::subscriber_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subscriber_status_;
}

FactService::Snapshot FactFeed::Query() const {
  SITFACT_CHECK_MSG(options_.fact_service != nullptr,
                    "FactFeed::Query() needs Options::fact_service");
  return options_.fact_service->Acquire();
}

bool FactFeed::PopBatch(std::vector<Row>* batch) {
  batch->clear();
  const bool batched =
      sharded_engine_ != nullptr ||
      (durable_engine_ != nullptr && durable_engine_->sharded());
  size_t limit = batched ? options_.max_batch : 1;
  std::unique_lock<std::mutex> lock(mu_);
  idle_ = true;
  drained_.notify_all();
  not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stopping with an empty backlog
  while (!queue_.empty() && batch->size() < limit) {
    batch->push_back(std::move(queue_.front()));
    queue_.pop();
  }
  idle_ = false;
  not_full_.notify_all();
  return true;
}

void FactFeed::DeliverReport(const ArrivalReport& report) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++processed_;
    if (!report.prominent.empty()) ++prominent_arrivals_;
  }
  // Index maintenance happens for every arrival — the service's arrival
  // windows must stay dense — and before the subscriber, so a subscriber
  // that queries sees its own arrival.
  if (options_.fact_service != nullptr) {
    options_.fact_service->OnArrival(report);
  }
  if (subscriber_ &&
      (options_.notify_all_arrivals || !report.prominent.empty())) {
    try {
      subscriber_(report);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      if (subscriber_status_.ok()) {
        subscriber_status_ = Status::InvalidArgument(
            std::string("subscriber threw: ") + e.what());
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (subscriber_status_.ok()) {
        subscriber_status_ =
            Status::InvalidArgument("subscriber threw a non-std exception");
      }
    }
  }
}

void FactFeed::WorkerLoop() {
  std::vector<Row> batch;
  while (PopBatch(&batch)) {
    // The engine runs outside the lock: discovery dominates the cost and
    // producers only need the queue.
    if (durable_engine_ != nullptr) {
      persist::DurableEngine::BatchResult result =
          durable_engine_->AppendBatch(std::span<const Row>(batch));
      // Rows that became durable get their reports delivered even when the
      // batch died partway — the producer will resume past them, so these
      // notifications have no second chance.
      for (const ArrivalReport& report : result.reports) {
        DeliverReport(report);
      }
      if (!result.status.ok()) {
        // Rows the store could not make durable must not be silently
        // swallowed: latch the error and shut the intake. The backlog is
        // dropped (it was never durable either); durable_status() tells the
        // producer where its stream stands.
        std::lock_guard<std::mutex> lock(mu_);
        if (durable_status_.ok()) durable_status_ = result.status;
        stopping_ = true;
        std::queue<Row>().swap(queue_);
        idle_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
        drained_.notify_all();
        return;
      }
    } else if (sharded_engine_ != nullptr) {
      std::vector<ArrivalReport> reports =
          sharded_engine_->AppendBatch(std::span<const Row>(batch));
      for (const ArrivalReport& report : reports) DeliverReport(report);
    } else {
      for (const Row& row : batch) DeliverReport(engine_->Append(row));
    }
  }
}

}  // namespace sitfact
