#include "service/fact_service.h"

#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "core/prominence.h"
#include "relation/schema.h"
#include "skyline/skyband_index.h"

namespace sitfact {

FactIndex::Options FactService::IndexOptions(const Relation* relation,
                                             const Options& options) {
  FactIndex::Options out;
  out.publish_every = options.publish_every;
  out.store_narrations = options.store_narrations;
  out.entity_dim = options.entity.empty()
                       ? -1
                       : relation->schema().DimensionIndex(options.entity);
  out.skyband_index = options.skyband_index && SkybandIndexEnabledFromEnv();
  return out;
}

FactService::FactService(const Relation* relation, Options options)
    : index_(relation, IndexOptions(relation, options)) {}

void FactService::OnArrival(const ArrivalReport& report) {
  index_.ApplyArrival(report);
}

Status FactService::OnRemove(TupleId t) { return index_.ApplyRemove(t); }

Status FactService::OnUpdate(TupleId removed_tuple,
                             const ArrivalReport& readded) {
  return index_.ApplyUpdate(removed_tuple, readded);
}

void FactService::Flush() { index_.Publish(); }

FactService::FactView FactService::Snapshot::View(uint32_t id) const {
  const FactRecord& rec = state_->record(id);
  FactView view;
  view.id = id;
  view.tuple = rec.tuple;
  view.arrival_seq = rec.arrival_seq;
  view.fact = rec.fact;
  view.context_size = rec.context_size;
  view.skyline_size = rec.skyline_size;
  view.prominence = rec.prominence;
  view.prominent = rec.prominent;
  view.ranked = rec.ranked;
  view.live = rec.live;
  view.narration = state_->narration(id);
  return view;
}

FactService::Page FactService::Snapshot::TopK(
    size_t k, const FactFilter& filter,
    const std::optional<TopKCursor>& cursor) const {
  TopKResult result = state_->TopK(k, filter, cursor);
  Page page;
  page.epoch = state_->epoch();
  page.facts.reserve(result.record_ids.size());
  for (uint32_t id : result.record_ids) page.facts.push_back(View(id));
  page.next = result.next;
  return page;
}

FactService::Page FactService::Snapshot::FactsForTuple(
    TupleId t, const FactFilter& filter, size_t k,
    const std::optional<TopKCursor>& cursor) const {
  TopKResult result = state_->FactsForTuple(t, filter, k, cursor);
  Page page;
  page.epoch = state_->epoch();
  page.facts.reserve(result.record_ids.size());
  for (uint32_t id : result.record_ids) page.facts.push_back(View(id));
  page.next = result.next;
  return page;
}

FactService::Page FactService::Snapshot::FactsInWindow(
    uint64_t first_arrival, uint64_t last_arrival, const FactFilter& filter,
    size_t k, const std::optional<TopKCursor>& cursor) const {
  TopKResult result =
      state_->FactsInWindow(first_arrival, last_arrival, filter, k, cursor);
  Page page;
  page.epoch = state_->epoch();
  page.facts.reserve(result.record_ids.size());
  for (uint32_t id : result.record_ids) page.facts.push_back(View(id));
  page.next = result.next;
  return page;
}

std::optional<FactService::FactView> FactService::Snapshot::Fact(
    uint32_t id) const {
  if (id >= state_->fact_count()) return std::nullopt;
  return View(id);
}

FactService::Page FactService::Snapshot::About(const Constraint& about,
                                               size_t k) const {
  FactFilter filter;
  filter.about = about;
  return TopK(k, filter);
}

std::string FactService::Snapshot::Explain(const FactView& view) const {
  if (!view.narration.empty()) return view.narration;
  // Narration storage was off: a numeric summary from the snapshot alone
  // (decoding the constraint would need the live Relation's dictionaries,
  // which ingestion is mutating).
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "tuple %llu: undominated fact (bound mask 0x%x, subspace "
                "0x%x), prominence %.2f (|ctx|=%llu, |sky|=%llu)",
                static_cast<unsigned long long>(view.tuple),
                view.fact.constraint.bound_mask(), view.fact.subspace,
                view.prominence,
                static_cast<unsigned long long>(view.context_size),
                static_cast<unsigned long long>(view.skyline_size));
  return buf;
}

StatusOr<std::unique_ptr<FactService>> FactService::Rebuild(
    const Relation* relation, const DiscoveryOptions& discovery, double tau,
    Options options) {
  auto disc_or =
      DiscoveryEngine::CreateDiscoverer("SBottomUp", relation, discovery);
  if (!disc_or.ok()) return disc_or.status();
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();

  auto service = std::make_unique<FactService>(relation, options);
  ContextCounter counter(disc->max_bound_dims());
  // The replay rides the same skyband shadow a live engine would keep, so a
  // rebuilt service exercises (and is accelerated by) the identical
  // prominence path. SBottomUp's store is in-memory, hence notifying.
  SkybandIndex skyband;
  if (SkybandIndexEnabledFromEnv() && disc->mutable_store() != nullptr &&
      disc->mutable_store()->NotifiesObservers()) {
    skyband.Attach(disc->mutable_store(), disc->storage_policy(),
                   disc->max_bound_dims(),
                   static_cast<int>(disc->subspaces().max_size()));
  }
  ArrivalReport report;
  for (TupleId t = 0; t < relation->size(); ++t) {
    if (relation->IsDeleted(t)) continue;
    report.tuple = t;
    report.facts.clear();
    counter.OnArrival(*relation, t);
    disc->Discover(t, &report.facts);
    CanonicalizeFacts(&report.facts);
    ProminenceEvaluator evaluator(relation, &counter, disc->mutable_store(),
                                  disc->storage_policy());
    evaluator.set_skyband(&skyband);
    report.ranked = evaluator.RankAll(report.facts);
    report.prominent = SelectProminent(report.ranked, tau);
    service->OnArrival(report);
  }
  service->Flush();
  return service;
}

StatusOr<std::unique_ptr<FactService>> FactService::FromDurable(
    persist::DurableEngine* durable, Options options) {
  SITFACT_CHECK(durable != nullptr);
  DiscoveryOptions discovery;
  double tau = 0.0;
  if (durable->sharded()) {
    const ShardedEngine::Config& config = durable->sharded_engine()->config();
    discovery = config.options;
    tau = config.tau;
  } else {
    const DiscoveryEngine::Config& config = durable->engine()->config();
    discovery = config.options;
    tau = config.tau;
  }
  return Rebuild(&durable->relation(), discovery, tau, std::move(options));
}

}  // namespace sitfact
