#ifndef SITFACT_SERVICE_FACT_SERVICE_H_
#define SITFACT_SERVICE_FACT_SERVICE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "persist/durable_engine.h"
#include "query/fact_index.h"
#include "relation/relation.h"

namespace sitfact {

/// Query-serving facade over a FactIndex: the read path of the system. The
/// discovery engines answer "what is new about THIS arrival"; FactService
/// answers the newsroom's standing questions — "what is prominent about
/// LeBron right now", "what happened in the last 500 box scores" — from any
/// number of reader threads while the single-writer engine keeps ingesting.
///
/// Threading contract (inherited from FactIndex): one writer thread calls
/// OnArrival/OnRemove/OnUpdate — the thread that owns the engine, which is
/// FactFeed's worker when the feed drives ingestion
/// (FactFeed::Options::fact_service wires the two together). Acquire() and
/// every query run from any thread against an immutable epoch snapshot; a
/// reader is never blocked by ingestion and never observes a torn epoch.
/// See docs/query_api.md for the full API and pagination contract.
class FactService {
 public:
  struct Options {
    /// Publish a fresh epoch every N mutations (1 = after every op).
    uint64_t publish_every = 1;
    /// Pre-render narrations at apply time so Explain() is snapshot-safe.
    bool store_narrations = true;
    /// Dimension naming the acting entity for narrations (e.g. "player");
    /// empty picks no subject.
    std::string entity;
    /// Keep the index's prominence buckets and shape lists in TopK order
    /// (the skyband serving bands), so TopK/About pages come off a sorted
    /// walk instead of a scan-and-sort. ANDed with the
    /// SITFACT_SKYBAND_INDEX environment escape hatch; responses are
    /// byte-identical either way.
    bool skyband_index = true;
  };

  /// `relation` must outlive the service; it is read only from the writer
  /// thread.
  FactService(const Relation* relation, Options options);
  explicit FactService(const Relation* relation)
      : FactService(relation, Options()) {}

  FactService(const FactService&) = delete;
  FactService& operator=(const FactService&) = delete;

  // --- ingest side (single writer thread) ---

  /// Folds one arrival into the index. Call for EVERY arrival (not just
  /// prominent ones) so arrival windows stay dense.
  void OnArrival(const ArrivalReport& report);

  /// Mirrors DiscoveryEngine::Remove — call after the engine accepted it.
  Status OnRemove(TupleId t);

  /// Mirrors Update (remove + re-append); `readded` is the report the
  /// engine returned for the replacement row.
  Status OnUpdate(TupleId removed_tuple, const ArrivalReport& readded);

  /// Force-publishes the current epoch (e.g. after a burst ingested with a
  /// large publish_every).
  void Flush();

  // --- read side ---

  /// A fact copied out of a snapshot: self-contained, safe to hold after
  /// the snapshot is gone.
  struct FactView {
    uint32_t id = 0;  ///< record id within the snapshot (pagination key)
    TupleId tuple = 0;
    uint64_t arrival_seq = 0;
    SkylineFact fact;
    uint64_t context_size = 0;
    uint64_t skyline_size = 0;
    double prominence = 0.0;
    bool prominent = false;
    bool ranked = false;
    bool live = true;
    std::string narration;  ///< empty when narration storage is off
  };

  /// One page of query results plus the epoch it was served from.
  struct Page {
    uint64_t epoch = 0;
    std::vector<FactView> facts;
    /// Present when more matches may exist; feed back into TopK to resume.
    std::optional<TopKCursor> next;
  };

  /// A pinned epoch. Queries against one Snapshot object are mutually
  /// consistent (same facts, same order); keeping it alive keeps the epoch
  /// alive. Copyable and cheap (one shared_ptr).
  class Snapshot {
   public:
    uint64_t epoch() const { return state_->epoch(); }
    uint64_t arrivals() const { return state_->arrivals(); }
    size_t fact_count() const { return state_->fact_count(); }

    /// Top-k facts by at-arrival prominence (desc, ties by record id asc).
    Page TopK(size_t k, const FactFilter& filter = {},
              const std::optional<TopKCursor>& cursor = std::nullopt) const;

    /// Facts minted at tuple `t`'s arrival, as one cursor-paginated Page —
    /// the same contract TopK has, over record-id-ascending order (report
    /// order). The cursor names the last record already returned; the next
    /// page starts strictly after it (only `record_id` orders these scans;
    /// `prominence` is carried for symmetry with TopK cursors).
    Page FactsForTuple(TupleId t, const FactFilter& filter, size_t k,
                       const std::optional<TopKCursor>& cursor =
                           std::nullopt) const;

    /// Facts minted by arrivals in the inclusive window, as one
    /// cursor-paginated Page (record-id ascending; same cursor contract as
    /// FactsForTuple).
    Page FactsInWindow(uint64_t first_arrival, uint64_t last_arrival,
                       const FactFilter& filter, size_t k,
                       const std::optional<TopKCursor>& cursor =
                           std::nullopt) const;

    /// "Facts about" convenience: TopK among facts whose constraint binds at
    /// least `about`'s attribute=value pairs.
    Page About(const Constraint& about, size_t k) const;

    /// The view of one record by id (the pagination key every Page hands
    /// out), or nullopt when the id does not exist at this epoch. O(1).
    std::optional<FactView> Fact(uint32_t id) const;

    /// News-style sentence for a fact (the stored narration when available,
    /// a numeric summary otherwise). Never touches the live Relation.
    std::string Explain(const FactView& view) const;

    /// Whether this epoch's serving lists are TopK-sorted (the skyband
    /// serving bands), plus the cumulative maintenance counters behind
    /// them; /statz renders both.
    bool skyband_enabled() const { return state_->skyband_enabled(); }
    const FactIndexSnapshot::SkybandStats& skyband_stats() const {
      return state_->skyband_stats();
    }

   private:
    friend class FactService;
    explicit Snapshot(std::shared_ptr<const FactIndexSnapshot> state)
        : state_(std::move(state)) {}
    FactView View(uint32_t id) const;

    std::shared_ptr<const FactIndexSnapshot> state_;
  };

  /// Pins the current epoch. Any thread, never blocks on ingestion.
  Snapshot Acquire() const { return Snapshot(index_.Acquire()); }

  /// One-shot convenience (acquire + query).
  Page TopK(size_t k, const FactFilter& filter = {},
            const std::optional<TopKCursor>& cursor = std::nullopt) const {
    return Acquire().TopK(k, filter, cursor);
  }

  const FactIndex& index() const { return index_; }

  // --- recovery wiring ---

  /// Rebuilds a service from an already-populated relation by re-running
  /// discovery over the live tuples in arrival order with a fresh SBottomUp
  /// state (the same soundness argument as snapshot replay rebuilds:
  /// Discover(t) consults only tuples before t, and skipping tombstones
  /// reproduces the post-Remove state). The rebuilt index treats removed
  /// tuples as never having arrived — identical to how a restored engine
  /// itself behaves.
  static StatusOr<std::unique_ptr<FactService>> Rebuild(
      const Relation* relation, const DiscoveryOptions& discovery, double tau,
      Options options);
  static StatusOr<std::unique_ptr<FactService>> Rebuild(
      const Relation* relation, const DiscoveryOptions& discovery,
      double tau) {
    return Rebuild(relation, discovery, tau, Options());
  }

  /// Rebuild for a recovered durable store: pulls the relation, truncation
  /// knobs and τ from the store's backend so a crashed+restarted process
  /// can serve queries immediately after DurableEngine::Open().
  static StatusOr<std::unique_ptr<FactService>> FromDurable(
      persist::DurableEngine* durable, Options options);
  static StatusOr<std::unique_ptr<FactService>> FromDurable(
      persist::DurableEngine* durable) {
    return FromDurable(durable, Options());
  }

 private:
  static FactIndex::Options IndexOptions(const Relation* relation,
                                         const Options& options);

  FactIndex index_;
};

}  // namespace sitfact

#endif  // SITFACT_SERVICE_FACT_SERVICE_H_
