#ifndef SITFACT_SKYLINE_KDTREE_H_
#define SITFACT_SKYLINE_KDTREE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "relation/relation.h"

namespace sitfact {

/// k-d tree over the full measure space (Bentley 1979), as used by
/// BaselineIdx: supports insertion of tuples as they arrive and the one-sided
/// range query `∧_{j∈M} key_j >= q_j` (all other measures unbounded) that
/// retrieves the candidates which weakly dominate a query point in subspace M.
///
/// Points are direction-adjusted measure keys, so "better" is always ">=".
/// The tree stores TupleIds and reads coordinates from the Relation.
class KdTree {
 public:
  /// `relation` must outlive the tree; coordinates come from
  /// relation.measure_key().
  explicit KdTree(const Relation* relation);

  /// Inserts tuple `t` (standard unbalanced insert; discovery streams arrive
  /// in near-random measure order, which keeps the expected depth
  /// logarithmic).
  void Insert(TupleId t);

  /// Visits every stored tuple whose key is >= `t`'s key on all measures of
  /// `m` (one-sided range query of Sec. IV). Visited tuples may merely tie
  /// `t` on all of `m`; the caller filters for strict dominance. `t` itself
  /// is skipped. If `visitor` returns false, the search stops early.
  template <typename Visitor>
  void VisitDominators(TupleId t, MeasureMask m, Visitor&& visitor) const {
    if (root_ == kNull) return;
    bool keep_going = true;
    VisitRec(root_, t, m, visitor, keep_going);
  }

  /// Convenience wrapper returning all candidates.
  std::vector<TupleId> FindDominatorCandidates(TupleId t, MeasureMask m) const;

  size_t size() const { return nodes_.size(); }

  /// Tree nodes touched by queries since construction (work-done benches).
  uint64_t nodes_visited() const { return nodes_visited_; }

  size_t ApproxMemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) + axes_.capacity();
  }

 private:
  static constexpr int32_t kNull = -1;

  struct Node {
    TupleId tuple;
    int32_t left = kNull;   // key[axis] <  this node's key[axis]
    int32_t right = kNull;  // key[axis] >= this node's key[axis]
  };

  double Key(TupleId t, int axis) const {
    return relation_->measure_key(t, axis);
  }

  template <typename Visitor>
  void VisitRec(int32_t node_idx, TupleId t, MeasureMask m, Visitor& visitor,
                bool& keep_going) const {
    if (!keep_going) return;
    ++nodes_visited_;
    const Node& node = nodes_[node_idx];
    int axis = axes_[node_idx];
    // Report this node's point if it meets every lower bound.
    bool qualifies = true;
    for (MeasureMask rest = m; rest != 0; rest &= rest - 1) {
      int j = __builtin_ctz(rest);
      if (Key(node.tuple, j) < Key(t, j)) {
        qualifies = false;
        break;
      }
    }
    if (qualifies && node.tuple != t) {
      keep_going = visitor(node.tuple);
      if (!keep_going) return;
    }
    // The right subtree (values >= split on `axis`) can always hold
    // qualifying points. The left subtree (values < split) is dead only when
    // `axis` carries a bound and the split value is already <= that bound:
    // then every left value is < bound.
    if (node.right != kNull) VisitRec(node.right, t, m, visitor, keep_going);
    if (node.left != kNull) {
      bool axis_bounded = (m >> axis) & 1u;
      if (!axis_bounded || Key(node.tuple, axis) > Key(t, axis)) {
        VisitRec(node.left, t, m, visitor, keep_going);
      }
    }
  }

  const Relation* relation_;
  int num_axes_;
  int32_t root_ = kNull;
  std::vector<Node> nodes_;
  std::vector<uint8_t> axes_;  // split axis per node (depth mod num_axes_)
  mutable uint64_t nodes_visited_ = 0;
};

}  // namespace sitfact

#endif  // SITFACT_SKYLINE_KDTREE_H_
