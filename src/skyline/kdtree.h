#ifndef SITFACT_SKYLINE_KDTREE_H_
#define SITFACT_SKYLINE_KDTREE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bits.h"

#include "common/types.h"
#include "relation/relation.h"
#include "skyline/dominance_batch.h"

namespace sitfact {

/// Bucketed k-d tree over the full measure space (Bentley 1979), as used by
/// BaselineIdx: supports insertion of tuples as they arrive and the
/// one-sided range query `∧_{j∈M} key_j >= q_j` (all other measures
/// unbounded) that retrieves the candidates which weakly dominate a query
/// point in subspace M.
///
/// Points are direction-adjusted measure keys, so "better" is always ">=".
/// Tuples live in leaf buckets of up to kLeafCapacity ids; an overflowing
/// leaf splits on the axis with the widest spread among its points. Leaves
/// whose points are identical on every axis (duplicate measure vectors, a
/// real hazard in low-cardinality data) are *unsplittable* and simply grow —
/// the classic pathological case where a point-per-node tree degenerates
/// into a spine whose depth, and hence query recursion, is O(n). Both
/// insertion and traversal are iterative, so tree depth never translates
/// into call-stack depth; leaf buckets are scanned with the batched
/// dominance kernel, one column pass per measure of M.
class KdTree {
 public:
  static constexpr size_t kLeafCapacity = 32;

  /// `relation` must outlive the tree; coordinates come from
  /// relation.measure_key().
  explicit KdTree(const Relation* relation);

  /// Inserts tuple `t`. Discovery streams arrive in near-random measure
  /// order, which keeps the expected depth logarithmic.
  void Insert(TupleId t);

  /// Visits every stored tuple whose key is >= `t`'s key on all measures of
  /// `m` (one-sided range query of Sec. IV). Visited tuples may merely tie
  /// `t` on all of `m`; the caller filters for strict dominance. `t` itself
  /// is skipped. If `visitor` returns false, the search stops early.
  ///
  /// Not thread-safe (shares traversal scratch across calls), matching the
  /// single-writer discovery loop that owns each tree.
  template <typename Visitor>
  void VisitDominators(TupleId t, MeasureMask m, Visitor&& visitor) const {
    if (root_ == kNull) return;
    double tkeys[kMaxMeasures];
    for (int a = 0; a < num_axes_; ++a) tkeys[a] = Key(t, a);
    stack_scratch_.clear();
    stack_scratch_.push_back(root_);
    while (!stack_scratch_.empty()) {
      const Node& node = nodes_[stack_scratch_.back()];
      stack_scratch_.pop_back();
      ++nodes_visited_;
      if (!node.leaf) {
        // The right subtree (keys >= split on `axis`) can always hold
        // qualifying points. The left subtree (keys < split) is dead only
        // when `axis` carries a bound and the split is already <= that
        // bound: then every left key is < bound. A NaN probe key bounds
        // nothing (every candidate passes that axis), so the left side
        // must be visited — `split > NaN` is false, hence the explicit
        // isnan. (Pushed left-first so the right subtree pops first, the
        // side where dominators live.)
        bool axis_bounded = (m >> node.axis) & 1u;
        if (!axis_bounded || node.split > tkeys[node.axis] ||
            std::isnan(tkeys[node.axis])) {
          stack_scratch_.push_back(node.left);
        }
        stack_scratch_.push_back(node.right);
        continue;
      }
      // Leaf: a candidate qualifies iff its key is >= t's on every
      // measure of m — i.e. t is strictly better nowhere in m. NaN keys
      // compare false both ways and so never disqualify, matching the
      // scalar lower-bound test. Keys come from the leaf-resident rows,
      // not column gathers.
      const std::vector<TupleId>& entries = node.entries;
      const double* rows = node.keys.data();
      for (size_t i = 0; i < entries.size(); ++i) {
        TupleId cand = entries[i];
        if (cand == t) continue;
        ++nodes_visited_;
        const double* row = rows + i * static_cast<size_t>(num_axes_);
        bool qualifies = true;
        for (MeasureMask rest = m; rest != 0; rest &= rest - 1) {
          int a = LowestBit(rest);
          if (tkeys[a] > row[a]) {  // t strictly better on a bound axis
            qualifies = false;
            break;
          }
        }
        if (qualifies && !visitor(cand)) return;
      }
    }
  }

  /// Convenience wrapper returning all candidates.
  std::vector<TupleId> FindDominatorCandidates(TupleId t, MeasureMask m) const;

  /// Allocation-free variant for probe batches: *out is cleared and refilled
  /// from the caller's reusable scratch, so issuing many probes (one per
  /// subspace per context, in the subspace-index layer) never allocates a
  /// fresh vector per call.
  void FindDominatorCandidates(TupleId t, MeasureMask m,
                               std::vector<TupleId>* out) const;

  /// Number of inserted tuples.
  size_t size() const { return size_; }

  /// Tree nodes + leaf entries touched by queries since construction
  /// (work-done benches).
  uint64_t nodes_visited() const { return nodes_visited_; }

  size_t ApproxMemoryBytes() const;

  /// Maximum root-to-leaf depth (tests: degenerate-split audit).
  int MaxDepth() const;

 private:
  static constexpr int32_t kNull = -1;

  struct Node {
    // Leaf: `entries` holds the bucket and `keys` a resident row-major
    // copy of each entry's measure keys (keys[i * num_axes + a]) — the
    // same SoA principle as the relation's measure store, applied per
    // leaf: a scan reads one contiguous row per candidate instead of
    // gathering from m full-length columns. Internal: keys < split
    // descend left, keys >= split (and NaN keys, which compare false)
    // right.
    std::vector<TupleId> entries;
    std::vector<double> keys;
    double split = 0;
    int32_t left = kNull;
    int32_t right = kNull;
    uint8_t axis = 0;
    bool leaf = true;
    bool unsplittable = false;  // entries identical on every axis
  };

  double Key(TupleId t, int axis) const {
    return relation_->measure_key(t, axis);
  }

  /// Appends `t` and its key row to a leaf's resident storage.
  void AppendToLeaf(Node* leaf, TupleId t);

  /// Splits leaf `idx` if over capacity and splittable; converts it into
  /// an internal node with two non-empty leaf children, recursively until
  /// every descendant leaf is within capacity or marked unsplittable
  /// (duplicate overflow buckets may exceed capacity by design).
  void MaybeSplitLeaf(int32_t idx);

  const Relation* relation_;
  int num_axes_;
  int32_t root_ = kNull;
  size_t size_ = 0;
  std::vector<Node> nodes_;
  mutable std::vector<int32_t> stack_scratch_;
  mutable uint64_t nodes_visited_ = 0;
};

}  // namespace sitfact

#endif  // SITFACT_SKYLINE_KDTREE_H_
