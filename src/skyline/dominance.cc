#include "skyline/dominance.h"

#include "common/bits.h"

namespace sitfact {

bool Dominates(const Relation& r, TupleId a, TupleId b, MeasureMask m) {
  bool strictly_better = false;
  while (m != 0) {
    int j = LowestBit(m);
    m &= m - 1;
    double av = r.measure_key(a, j);
    double bv = r.measure_key(b, j);
    if (av < bv) return false;
    if (av > bv) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace sitfact
