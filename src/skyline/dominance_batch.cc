#include "skyline/dominance_batch.h"

namespace sitfact {

void BlockedPartitionScan::Refill(size_t i) {
  block_start_ = i;
  size_t n = std::min(next_block_, count_ - i);
  next_block_ = NextRampBlock(next_block_);
  if (unmasked_) {
    PartitionBatch(r_, t_, ids_ + i, n, parts_);
  } else {
    PartitionBatchMasked(r_, t_, ids_ + i, n, m_, parts_);
  }
  block_end_ = i + n;
}

void BlockedPartitionRangeScan::Refill(TupleId i) {
  block_start_ = i;
  TupleId n = std::min(next_block_, limit_ - i);
  next_block_ = static_cast<TupleId>(NextRampBlock(next_block_));
  PartitionRangeMasked(r_, t_, i, i + n, m_, parts_);
  block_end_ = i + n;
}

}  // namespace sitfact
