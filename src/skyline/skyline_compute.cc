#include "skyline/skyline_compute.h"

#include <algorithm>

#include "common/bits.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"

namespace sitfact {

std::vector<TupleId> ComputeSkyline(const Relation& r,
                                    const std::vector<TupleId>& candidates,
                                    MeasureMask m) {
  std::vector<TupleId> skyline;
  for (TupleId t : candidates) {
    // Self-comparison yields an empty partition, which never dominates, so
    // the scan needs no `other != t` filtering.
    BlockedPartitionScan scan(r, t, candidates.data(), candidates.size(), m,
                              /*unmasked=*/false);
    bool dominated = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (DominatedInSubspace(scan.at(i), m)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(t);
  }
  return skyline;
}

std::vector<TupleId> SelectContext(const Relation& r, const Constraint& c,
                                   TupleId limit) {
  std::vector<TupleId> out;
  for (TupleId t = 0; t < limit; ++t) {
    if (!r.IsDeleted(t) && c.SatisfiedBy(r, t)) out.push_back(t);
  }
  return out;
}

std::vector<TupleId> ComputeContextualSkyline(const Relation& r,
                                              const Constraint& c,
                                              MeasureMask m, TupleId limit) {
  return ComputeSkyline(r, SelectContext(r, c, limit), m);
}

bool InContextualSkyline(const Relation& r, TupleId t, const Constraint& c,
                         MeasureMask m, TupleId limit) {
  if (r.IsDeleted(t) || !c.SatisfiedBy(r, t)) return false;
  // Dominance first (batched, cheap per tuple), then the constraint check
  // only for actual dominators; same decision as testing the constraint
  // first, evaluated in a cache-friendly order.
  BlockedPartitionRangeScan scan(r, t, limit, m);
  for (TupleId other = 0; other < limit; ++other) {
    if (!DominatedInSubspace(scan.at(other), m)) continue;
    if (other == t || r.IsDeleted(other)) continue;
    if (c.SatisfiedBy(r, other)) return false;
  }
  return true;
}

std::vector<DimMask> ComputeSkylineConstraintMasks(const Relation& r,
                                                   TupleId t, MeasureMask m,
                                                   int max_bound,
                                                   TupleId limit) {
  std::vector<DimMask> out;
  DimMask full = FullMask(r.schema().num_dimensions());
  for (DimMask mask = 0; mask <= full; ++mask) {
    if (PopCount(mask) > max_bound) continue;
    Constraint c = Constraint::ForTuple(r, t, mask);
    if (InContextualSkyline(r, t, c, m, limit)) out.push_back(mask);
  }
  return out;
}

std::vector<DimMask> ComputeMaximalSkylineConstraintMasks(
    const Relation& r, TupleId t, MeasureMask m, int max_bound,
    TupleId limit) {
  std::vector<DimMask> sky = ComputeSkylineConstraintMasks(r, t, m, max_bound,
                                                           limit);
  std::vector<DimMask> maximal;
  for (DimMask c : sky) {
    bool has_more_general = false;
    for (DimMask other : sky) {
      if (other != c && IsSubsetOf(other, c)) {
        // `other` binds a subset of c's attributes with t's values: it is a
        // strict ancestor of c that is also a skyline constraint.
        has_more_general = true;
        break;
      }
    }
    if (!has_more_general) maximal.push_back(c);
  }
  return maximal;
}

}  // namespace sitfact
