#ifndef SITFACT_SKYLINE_DOMINANCE_H_
#define SITFACT_SKYLINE_DOMINANCE_H_

#include "common/types.h"
#include "relation/relation.h"

namespace sitfact {

/// Dominance kernel (Def. 2) over direction-adjusted measure keys.
///
/// All functions treat `M` as a MeasureMask; bit j selects measure j.
/// Dominance requires better-or-equal on all of M and strictly better on at
/// least one attribute of M, so equal tuples never dominate each other.

/// True iff a ≻_M b (a dominates b in subspace M).
bool Dominates(const Relation& r, TupleId a, TupleId b, MeasureMask m);

/// True iff b ≻_M a; convenience mirror for call-site readability.
inline bool DominatedBy(const Relation& r, TupleId a, TupleId b,
                        MeasureMask m) {
  return Dominates(r, b, a, m);
}

/// Prop. 4 evaluated from a precomputed partition: with
/// `p = r.Partition(t, other)`, t is dominated by `other` in M iff M meets
/// t's worse set and avoids t's better set.
inline bool DominatedInSubspace(const Relation::MeasurePartition& p,
                                MeasureMask m) {
  return (m & p.worse) != 0 && (m & p.better) == 0;
}

/// Prop. 4 mirror: t dominates `other` in M.
inline bool DominatesInSubspace(const Relation::MeasurePartition& p,
                                MeasureMask m) {
  return (m & p.better) != 0 && (m & p.worse) == 0;
}

}  // namespace sitfact

#endif  // SITFACT_SKYLINE_DOMINANCE_H_
