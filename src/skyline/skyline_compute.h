#ifndef SITFACT_SKYLINE_SKYLINE_COMPUTE_H_
#define SITFACT_SKYLINE_SKYLINE_COMPUTE_H_

#include <vector>

#include "common/types.h"
#include "lattice/constraint.h"
#include "relation/relation.h"

namespace sitfact {

/// From-scratch skyline utilities. These are the reference ("oracle")
/// implementations: quadratic, obviously correct, used by BruteForce, the
/// test suite and invariant checkers — never on the incremental hot path.

/// λ_M(candidates): ids of tuples in `candidates` not dominated by any other
/// candidate in subspace `m`. Preserves input order.
std::vector<TupleId> ComputeSkyline(const Relation& r,
                                    const std::vector<TupleId>& candidates,
                                    MeasureMask m);

/// σ_C(R) over the first `limit` tuples (pass r.size() for all).
std::vector<TupleId> SelectContext(const Relation& r, const Constraint& c,
                                   TupleId limit);

/// λ_M(σ_C(R)) over the first `limit` tuples.
std::vector<TupleId> ComputeContextualSkyline(const Relation& r,
                                              const Constraint& c,
                                              MeasureMask m, TupleId limit);

/// True iff `t` is in λ_M(σ_C(R)) over the first `limit` tuples; `t` itself
/// must be < limit.
bool InContextualSkyline(const Relation& r, TupleId t, const Constraint& c,
                         MeasureMask m, TupleId limit);

/// The skyline constraints SC^t_M of Def. 9 restricted to masks with at most
/// `max_bound` bound attributes, returned as DimMasks.
std::vector<DimMask> ComputeSkylineConstraintMasks(const Relation& r,
                                                   TupleId t, MeasureMask m,
                                                   int max_bound,
                                                   TupleId limit);

/// The maximal skyline constraints MSC^t_M of Def. 10 (masks minimal in
/// subset order among the skyline constraint masks).
std::vector<DimMask> ComputeMaximalSkylineConstraintMasks(
    const Relation& r, TupleId t, MeasureMask m, int max_bound, TupleId limit);

}  // namespace sitfact

#endif  // SITFACT_SKYLINE_SKYLINE_COMPUTE_H_
