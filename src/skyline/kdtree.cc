#include "skyline/kdtree.h"

#include "common/logging.h"

namespace sitfact {

KdTree::KdTree(const Relation* relation)
    : relation_(relation), num_axes_(relation->schema().num_measures()) {
  SITFACT_CHECK(num_axes_ >= 1);
}

void KdTree::Insert(TupleId t) {
  auto idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{t, kNull, kNull});
  if (root_ == kNull) {
    root_ = idx;
    axes_.push_back(0);
    return;
  }
  int32_t cur = root_;
  int depth = 0;
  while (true) {
    int axis = axes_[cur];
    bool go_right = Key(t, axis) >= Key(nodes_[cur].tuple, axis);
    int32_t& child = go_right ? nodes_[cur].right : nodes_[cur].left;
    ++depth;
    if (child == kNull) {
      child = idx;
      axes_.push_back(static_cast<uint8_t>(depth % num_axes_));
      return;
    }
    cur = child;
  }
}

std::vector<TupleId> KdTree::FindDominatorCandidates(TupleId t,
                                                     MeasureMask m) const {
  std::vector<TupleId> out;
  VisitDominators(t, m, [&](TupleId cand) {
    out.push_back(cand);
    return true;
  });
  return out;
}

}  // namespace sitfact
