#include "skyline/kdtree.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace sitfact {

namespace {

/// Split plane for one axis of a leaf's points under the routing rule
/// "key < split goes left, everything else (incl. NaN) goes right", or
/// nullopt when no plane separates them. Guarantees both sides non-empty.
struct AxisSplit {
  bool ok = false;
  double split = 0;
  double spread = 0;  // finite key range; ranks competing axes
};

AxisSplit ProbeAxis(const Relation& r, const std::vector<TupleId>& entries,
                    int axis) {
  AxisSplit out;
  double min_f = std::numeric_limits<double>::infinity();
  double max_f = -std::numeric_limits<double>::infinity();
  size_t finite = 0;
  for (TupleId t : entries) {
    double k = r.measure_key(t, axis);
    if (std::isnan(k)) continue;
    ++finite;
    min_f = std::min(min_f, k);
    max_f = std::max(max_f, k);
  }
  if (finite > 0 && min_f < max_f) {
    // Overflow-safe midpoint (min_f + (max_f - min_f) can exceed DBL_MAX
    // for huge ranges). Both sides must be non-empty under "k < split goes
    // left": min_f < split <= max_f — max_f as the plane always satisfies
    // it when the midpoint degenerates (adjacent doubles, ±inf keys).
    double mid = min_f / 2 + max_f / 2;
    out.split = (mid > min_f && mid <= max_f) ? mid : max_f;
    out.spread = max_f - min_f;
    out.ok = true;
  } else if (finite > 0 && finite < entries.size()) {
    // All non-NaN keys equal, but NaN keys exist: any plane just above the
    // value separates them (NaN routes right). With the shared value +inf
    // there is no such plane; the axis stays unsplittable.
    double above =
        std::nextafter(max_f, std::numeric_limits<double>::infinity());
    if (above > max_f) {
      out.split = above;
      out.spread = 0;
      out.ok = true;
    }
  }
  return out;
}

}  // namespace

KdTree::KdTree(const Relation* relation)
    : relation_(relation), num_axes_(relation->schema().num_measures()) {
  SITFACT_CHECK(num_axes_ >= 1);
}

void KdTree::AppendToLeaf(Node* leaf, TupleId t) {
  leaf->entries.push_back(t);
  for (int a = 0; a < num_axes_; ++a) {
    leaf->keys.push_back(Key(t, a));
  }
}

void KdTree::Insert(TupleId t) {
  ++size_;
  if (root_ == kNull) {
    root_ = 0;
    nodes_.emplace_back();
    AppendToLeaf(&nodes_[root_], t);
    return;
  }
  int32_t cur = root_;
  while (!nodes_[cur].leaf) {
    const Node& node = nodes_[cur];
    cur = Key(t, node.axis) < node.split ? node.left : node.right;
  }
  AppendToLeaf(&nodes_[cur], t);
  MaybeSplitLeaf(cur);
}

void KdTree::MaybeSplitLeaf(int32_t idx) {
  if (nodes_[idx].entries.size() <= kLeafCapacity) return;
  if (nodes_[idx].unsplittable) {
    // Re-probe only against the newest entry: the rest were already known
    // identical, so the leaf stays an overflow bucket unless the newcomer
    // differs somewhere. (This keeps n duplicate inserts at O(n·m) total,
    // not O(n²·m).)
    const std::vector<TupleId>& e = nodes_[idx].entries;
    TupleId fresh = e.back();
    bool differs = false;
    for (int axis = 0; axis < num_axes_ && !differs; ++axis) {
      double a = Key(e.front(), axis);
      double b = Key(fresh, axis);
      // Distinguishable iff some plane routes them apart: either compares
      // as different, or exactly one is NaN.
      if (a < b || b < a || std::isnan(a) != std::isnan(b)) differs = true;
    }
    if (!differs) return;
    nodes_[idx].unsplittable = false;
  }

  AxisSplit best;
  int best_axis = -1;
  for (int axis = 0; axis < num_axes_; ++axis) {
    AxisSplit probe = ProbeAxis(*relation_, nodes_[idx].entries, axis);
    if (probe.ok && (best_axis < 0 || probe.spread > best.spread)) {
      best = probe;
      best_axis = axis;
    }
  }
  if (best_axis < 0) {
    nodes_[idx].unsplittable = true;  // duplicate measure vectors
    return;
  }

  // Materialize the children first: emplace_back may reallocate nodes_.
  Node left_leaf;
  Node right_leaf;
  for (TupleId t : nodes_[idx].entries) {
    double k = Key(t, best_axis);
    AppendToLeaf(k < best.split ? &left_leaf : &right_leaf, t);
  }
  SITFACT_DCHECK(!left_leaf.entries.empty() && !right_leaf.entries.empty());
  auto left_idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(left_leaf));
  auto right_idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(right_leaf));
  Node& node = nodes_[idx];
  node.entries = {};
  node.keys = {};
  node.leaf = false;
  node.axis = static_cast<uint8_t>(best_axis);
  node.split = best.split;
  node.left = left_idx;
  node.right = right_idx;
  // A lopsided split (e.g. one distinct point arriving at a big duplicate
  // overflow leaf) can leave a child over capacity; recurse so it either
  // splits further or gets its unsplittable flag set now — not re-probed
  // on every later insert.
  MaybeSplitLeaf(left_idx);
  MaybeSplitLeaf(right_idx);
}

std::vector<TupleId> KdTree::FindDominatorCandidates(TupleId t,
                                                     MeasureMask m) const {
  std::vector<TupleId> out;
  FindDominatorCandidates(t, m, &out);
  return out;
}

void KdTree::FindDominatorCandidates(TupleId t, MeasureMask m,
                                     std::vector<TupleId>* out) const {
  out->clear();
  VisitDominators(t, m, [&](TupleId cand) {
    out->push_back(cand);
    return true;
  });
}

size_t KdTree::ApproxMemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.entries.capacity() * sizeof(TupleId);
    bytes += n.keys.capacity() * sizeof(double);
  }
  return bytes;
}

int KdTree::MaxDepth() const {
  if (root_ == kNull) return 0;
  int max_depth = 0;
  std::vector<std::pair<int32_t, int>> stack = {{root_, 1}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[idx];
    if (!node.leaf) {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
  return max_depth;
}

}  // namespace sitfact
