#ifndef SITFACT_SKYLINE_DOMINANCE_BATCH_H_
#define SITFACT_SKYLINE_DOMINANCE_BATCH_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/bits.h"
#include "common/types.h"
#include "relation/relation.h"
#include "skyline/dominance_simd.h"

namespace sitfact {

/// Batched Prop.-4 kernel: measure partitions of one probe tuple against a
/// block of candidates, computed column-wise over the Relation's SoA key
/// columns (relation/measure_store.h) and emitted as better/worse bitmasks
/// into a caller-provided buffer.
///
/// Every variant agrees bit-for-bit with the scalar `Relation::Partition`
/// (same comparisons, same NaN behaviour: a NaN on either side sets
/// neither bit); dominance_batch_test pins that contract. The scalar path
/// evaluates one tuple pair across all measure columns — m dependent,
/// stride-separated loads per pair; these kernels instead stream one column
/// across the whole block, so the candidate keys are consumed at unit
/// stride (range variant) or one gather per column (id-list variant), with
/// branch-free mask assembly.
///
/// The column inner loops dispatch through the SIMD tier table
/// (skyline/dominance_simd.h): AVX2 / SSE2 intrinsic paths selected once
/// per process from cpuid (override with SITFACT_SIMD=scalar|sse2|avx2),
/// with the scalar loops below kept verbatim as the bit-identical oracle.
/// The `...With` kernel variants take an explicit op table so tests and
/// benches can pin a tier; the plain names use the active tier.
///
/// Callers process candidate lists in blocks of `kDominanceBlockSize` (a
/// stack buffer; ~2 KiB) and keep their per-tuple consume logic — early
/// exits, counters, bucket rewrites — exactly as in the scalar code, which
/// is how the rewired call sites stay tuple-for-tuple identical to their
/// pre-batch selves.
inline constexpr size_t kDominanceBlockSize = 256;

namespace internal {

/// One column's contribution to a block of partitions — the scalar SIMD
/// tier, and the oracle every vector tier is tested against. Comparisons
/// are written branch-free; with a NaN on either side both compare false
/// and the pair contributes no bit, matching Relation::Partition.
inline void ScalarPartitionColumnRange(const double* src, double tv,
                                       size_t count, MeasureMask bit,
                                       Relation::MeasurePartition* out) {
  for (size_t i = 0; i < count; ++i) {
    double ov = src[i];
    out[i].worse |= (tv < ov) ? bit : 0u;
    out[i].better |= (tv > ov) ? bit : 0u;
  }
}

inline void ScalarPartitionColumnGather(const double* col, double tv,
                                        const TupleId* ids, size_t count,
                                        MeasureMask bit,
                                        Relation::MeasurePartition* out) {
  for (size_t i = 0; i < count; ++i) {
    double ov = col[ids[i]];
    out[i].worse |= (tv < ov) ? bit : 0u;
    out[i].better |= (tv > ov) ? bit : 0u;
  }
}

/// One dimension column's contribution to a block of Def.-8 agreement
/// masks.
inline void ScalarAgreeColumnRange(const ValueId* src, ValueId tv,
                                   size_t count, DimMask bit, DimMask* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] |= (src[i] == tv) ? bit : 0u;
  }
}

}  // namespace internal

/// out[i] = r.Partition(t, candidates[i]) for i in [0, count).
inline void PartitionBatchWith(const DominanceColumnOps& ops,
                               const Relation& r, TupleId t,
                               const TupleId* candidates, size_t count,
                               Relation::MeasurePartition* out) {
  std::fill_n(out, count, Relation::MeasurePartition{});
  const int nm = r.schema().num_measures();
  for (int j = 0; j < nm; ++j) {
    const double* col = r.key_column(j);
    ops.partition_column_gather(col, col[t], candidates, count, 1u << j, out);
  }
}

inline void PartitionBatch(const Relation& r, TupleId t,
                           const TupleId* candidates, size_t count,
                           Relation::MeasurePartition* out) {
  PartitionBatchWith(ActiveDominanceOps(), r, t, candidates, count, out);
}

/// Contiguous-range variant: out[i] = r.Partition(t, begin + i) for
/// begin + i < end. The hot shape for history scans (k-skyband, baselines):
/// pure unit-stride column traversal, no gathers.
inline void PartitionRangeWith(const DominanceColumnOps& ops,
                               const Relation& r, TupleId t, TupleId begin,
                               TupleId end, Relation::MeasurePartition* out) {
  if (end <= begin) return;
  size_t count = end - begin;
  std::fill_n(out, count, Relation::MeasurePartition{});
  const int nm = r.schema().num_measures();
  for (int j = 0; j < nm; ++j) {
    const double* col = r.key_column(j);
    ops.partition_column_range(col + begin, col[t], count, 1u << j, out);
  }
}

inline void PartitionRange(const Relation& r, TupleId t, TupleId begin,
                           TupleId end, Relation::MeasurePartition* out) {
  PartitionRangeWith(ActiveDominanceOps(), r, t, begin, end, out);
}

/// Masked variants: only the measure columns selected by `m` are read, and
/// only their bits can appear in the output (out[i] equals the scalar
/// partition ANDed with m on both sides). For consumers that evaluate a
/// single subspace (C-CSC's per-subspace scans, the lattice bucket passes)
/// this skips the columns the decision cannot depend on.
inline void PartitionBatchMaskedWith(const DominanceColumnOps& ops,
                                     const Relation& r, TupleId t,
                                     const TupleId* candidates, size_t count,
                                     MeasureMask m,
                                     Relation::MeasurePartition* out) {
  std::fill_n(out, count, Relation::MeasurePartition{});
  ForEachBit(m, [&](int j) {
    const double* col = r.key_column(j);
    ops.partition_column_gather(col, col[t], candidates, count, 1u << j, out);
  });
}

inline void PartitionBatchMasked(const Relation& r, TupleId t,
                                 const TupleId* candidates, size_t count,
                                 MeasureMask m,
                                 Relation::MeasurePartition* out) {
  PartitionBatchMaskedWith(ActiveDominanceOps(), r, t, candidates, count, m,
                           out);
}

inline void PartitionRangeMaskedWith(const DominanceColumnOps& ops,
                                     const Relation& r, TupleId t,
                                     TupleId begin, TupleId end, MeasureMask m,
                                     Relation::MeasurePartition* out) {
  if (end <= begin) return;
  size_t count = end - begin;
  std::fill_n(out, count, Relation::MeasurePartition{});
  ForEachBit(m, [&](int j) {
    const double* col = r.key_column(j);
    ops.partition_column_range(col + begin, col[t], count, 1u << j, out);
  });
}

inline void PartitionRangeMasked(const Relation& r, TupleId t, TupleId begin,
                                 TupleId end, MeasureMask m,
                                 Relation::MeasurePartition* out) {
  PartitionRangeMaskedWith(ActiveDominanceOps(), r, t, begin, end, m, out);
}

/// Batched Def.-8 agreement masks: out[i] = r.AgreeMask(t, begin + i),
/// column-wise over the dictionary-encoded dimension columns.
inline void AgreeMaskRangeWith(const DominanceColumnOps& ops,
                               const Relation& r, TupleId t, TupleId begin,
                               TupleId end, DimMask* out) {
  if (end <= begin) return;
  size_t count = end - begin;
  std::fill_n(out, count, DimMask{0});
  const int nd = r.schema().num_dimensions();
  for (int d = 0; d < nd; ++d) {
    const ValueId* col = r.dim_column(d);
    ops.agree_column_range(col + begin, col[t], count, 1u << d, out);
  }
}

inline void AgreeMaskRange(const Relation& r, TupleId t, TupleId begin,
                           TupleId end, DimMask* out) {
  AgreeMaskRangeWith(ActiveDominanceOps(), r, t, begin, end, out);
}

/// Candidate keys gathered once into a compact column-major block, for
/// consumers that scan the same candidate list many times (C-CSC runs one
/// skyline query per subspace over one candidate set, and every probe of a
/// query rescans the whole set). Direct batch kernels pay one gather per
/// (pair, column) — fine for a single pass, but at relation sizes beyond
/// the L1 working set the repeated gathers dominate. Gathering the |m|
/// selected columns once costs the same as a single probe's scan; every
/// subsequent probe then streams contiguous, cache-resident compact
/// columns.
///
/// Bits in the emitted partitions keep their original measure positions,
/// so DominatedInSubspace/DominatesInSubspace work unchanged.
class CompactKeyBlock {
 public:
  /// Gathers the key columns selected by `m` for `ids[0..count)`. Previous
  /// contents are discarded; the scratch is reused across calls.
  void Gather(const Relation& r, const TupleId* ids, size_t count,
              MeasureMask m) {
    count_ = count;
    width_ = 0;
    keys_.resize(static_cast<size_t>(PopCount(m)) * count);
    ForEachBit(m, [&](int j) {
      const double* col = r.key_column(j);
      double* dst = keys_.data() + static_cast<size_t>(width_) * count;
      for (size_t i = 0; i < count; ++i) dst[i] = col[ids[i]];
      jbit_[width_] = static_cast<uint8_t>(j);
      ++width_;
    });
  }

  size_t count() const { return count_; }

  /// Loads probe `t`'s keys for the gathered measures into pk[0..width).
  void ProbeKeys(const Relation& r, TupleId t, double* pk) const {
    for (int k = 0; k < width_; ++k) {
      pk[k] = r.key_column(jbit_[k])[t];
    }
  }

  /// Probe keys of ids[i] from the gathered block itself (the skyline-of-a-
  /// set pattern, where every probe is also a candidate).
  void ProbeKeysAt(size_t i, double* pk) const {
    for (int k = 0; k < width_; ++k) {
      pk[k] = keys_[static_cast<size_t>(k) * count_ + i];
    }
  }

  /// out[i] = partition of the probe (keys `pk`, as filled by ProbeKeys)
  /// against ids[begin + i], restricted to `msub` ∩ the gathered measures,
  /// for i in [0, n); begin + n <= count(). The compact columns are
  /// contiguous, so this runs the same dispatched range primitive as
  /// PartitionRange.
  void PartitionRun(const double* pk, size_t begin, size_t n, MeasureMask msub,
                    Relation::MeasurePartition* out) const {
    const DominanceColumnOps& ops = ActiveDominanceOps();
    std::fill_n(out, n, Relation::MeasurePartition{});
    for (int k = 0; k < width_; ++k) {
      MeasureMask bit = MeasureMask{1} << jbit_[k];
      if ((msub & bit) == 0) continue;
      const double* col = keys_.data() + static_cast<size_t>(k) * count_ +
                          begin;
      ops.partition_column_range(col, pk[k], n, bit, out);
    }
  }

 private:
  std::vector<double> keys_;  // [k * count_ + i], k-th gathered measure
  uint8_t jbit_[kMaxMeasures] = {};
  int width_ = 0;
  size_t count_ = 0;
};

/// Serves `Partition(t, ids[i])` for a forward scan of an id array (a µ
/// bucket, a candidate list) from lazily refilled blocks, so call sites
/// keep their one-entry-at-a-time consume logic — early exits, counters,
/// in-place bucket compaction — while the partitions themselves come from
/// the batched kernel. The id array may be compacted in place below the
/// read cursor during the scan (the lattice bucket-update protocol); ids at
/// and above the cursor must stay untouched until read.
///
/// Blocks ramp geometrically (kDominanceRampStart, ×4 per refill, capped at
/// kDominanceBlockSize): consumers that stop at the first dominator — the
/// common case on skyline scans — waste at most a small first block of
/// lookahead, while full scans converge to wide, vectorizable passes.
///
/// With `unmasked` false only bits of `m` are computed (the pass's own
/// subspace decision needs nothing else); pass true when every bit is
/// needed, e.g. when a sharing observer projects the partition onto other
/// subspaces.
inline constexpr size_t kDominanceRampStart = 8;

/// First block size for a ramped scan over `count` items: small scans fill
/// in a single batch (ramping only pays off when the unconsumed tail it
/// avoids is bigger than the extra refill calls).
inline size_t InitialRampBlock(size_t count) {
  return count <= 4 * kDominanceRampStart ? count : kDominanceRampStart;
}

/// Next block size after `current` (geometric ×4, capped at one buffer).
inline size_t NextRampBlock(size_t current) {
  return std::min(current * 4, kDominanceBlockSize);
}

class BlockedPartitionScan {
 public:
  BlockedPartitionScan(const Relation& r, TupleId t, const TupleId* ids,
                       size_t count, MeasureMask m, bool unmasked)
      : r_(r),
        t_(t),
        ids_(ids),
        count_(count),
        m_(m),
        unmasked_(unmasked),
        next_block_(InitialRampBlock(count)) {}

  BlockedPartitionScan(const BlockedPartitionScan&) = delete;
  BlockedPartitionScan& operator=(const BlockedPartitionScan&) = delete;

  /// Partition of `t` against `ids[i]`; `i < count`. The reference stays
  /// valid until the next at() call.
  const Relation::MeasurePartition& at(size_t i) {
    if (count_ <= kDominanceRampStart) {
      // Tiny scans (the typical µ bucket holds a handful of tuples) are
      // served scalar, pair by pair: batch setup costs more than it saves
      // below one block of work.
      parts_[0] = r_.Partition(t_, ids_[i]);
      if (!unmasked_) {
        parts_[0].worse &= m_;
        parts_[0].better &= m_;
      }
      return parts_[0];
    }
    if (i < block_start_ || i >= block_end_) Refill(i);
    return parts_[i - block_start_];
  }

 private:
  void Refill(size_t i);

  const Relation& r_;
  TupleId t_;
  const TupleId* ids_;
  size_t count_;
  MeasureMask m_;
  bool unmasked_;
  size_t block_start_ = 0;
  size_t block_end_ = 0;  // empty until the first at()
  size_t next_block_;
  Relation::MeasurePartition parts_[kDominanceBlockSize];
};

/// Range twin of BlockedPartitionScan: serves `Partition(t, i)` for a
/// forward scan of the contiguous tuple range [0, limit) with the same
/// ramping, via the gather-free range kernel.
class BlockedPartitionRangeScan {
 public:
  BlockedPartitionRangeScan(const Relation& r, TupleId t, TupleId limit,
                            MeasureMask m)
      : r_(r),
        t_(t),
        limit_(limit),
        m_(m),
        next_block_(static_cast<TupleId>(InitialRampBlock(limit))) {}

  BlockedPartitionRangeScan(const BlockedPartitionRangeScan&) = delete;
  BlockedPartitionRangeScan& operator=(const BlockedPartitionRangeScan&) =
      delete;

  /// Partition of `t` against tuple `i`; `i < limit`. The reference stays
  /// valid until the next at() call.
  const Relation::MeasurePartition& at(TupleId i) {
    if (limit_ <= static_cast<TupleId>(kDominanceRampStart)) {
      parts_[0] = r_.Partition(t_, i);
      parts_[0].worse &= m_;
      parts_[0].better &= m_;
      return parts_[0];
    }
    if (i < block_start_ || i >= block_end_) Refill(i);
    return parts_[i - block_start_];
  }

 private:
  void Refill(TupleId i);

  const Relation& r_;
  TupleId t_;
  TupleId limit_;
  MeasureMask m_;
  TupleId block_start_ = 0;
  TupleId block_end_ = 0;  // empty until the first at()
  TupleId next_block_;
  Relation::MeasurePartition parts_[kDominanceBlockSize];
};

}  // namespace sitfact

#endif  // SITFACT_SKYLINE_DOMINANCE_BATCH_H_
