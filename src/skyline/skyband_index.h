#ifndef SITFACT_SKYLINE_SKYBAND_INDEX_H_
#define SITFACT_SKYLINE_SKYBAND_INDEX_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "lattice/constraint.h"
#include "relation/relation.h"
#include "storage/mu_store.h"

namespace sitfact {

/// Master switch for the skyband index layers, read once per consumer:
/// SITFACT_SKYBAND_INDEX=off (or 0) disables them, anything else — including
/// unset — leaves them on. One escape hatch covers both the µ-side shadow
/// (this file) and the FactIndex serving bands, so a single environment
/// variable restores the pre-index behaviour end to end.
bool SkybandIndexEnabledFromEnv();

/// Incremental per-(constraint, measure-subspace) skyband shadow of a µ
/// store — the paper's prominence denominator |λ_M(σ_C(R))| turned into a
/// lookup. Each non-empty µ bucket is mirrored as one *band*; bands of one
/// constraint form a *family*, exactly the Context grouping the store uses.
///
/// Two maintenance paths, per the BucketObserver contract:
///  * notifying stores (MemoryMuStore, SegmentedMuStore): the index
///    registers as the store's observer and folds every OnBucketChanged
///    into its bands — it is then `live()` and coherent with the store
///    after every mutation, including shard-parallel ones (one internal
///    mutex; the per-bucket copy is the price of O(1) size probes).
///  * non-notifying stores (the file-backed stores) and restored dumps:
///    Rebuild() primes the bands from ForEachBucket. The index is a frozen
///    snapshot, not live; consumers must fall back to store reads once the
///    store mutates again.
///
/// What it answers without touching the store:
///  * Invariant 1 (kAllSkylineConstraints): a band IS λ_M(σ_C(R)) — size,
///    membership and the full member list are direct reads. This also makes
///    the band a valid answer to the *forward* contextual-skyline query,
///    which is how SkylineQueryEngine's planner uses it (the small-context
///    path becomes a probe; fallbacks run the usual dominance kernels).
///  * Invariant 2 (kMaximalSkylineConstraints): λ is the deduplicated union
///    of C's ancestor bands filtered by satisfaction of C — the same walk
///    ProminenceEvaluator does against the store, minus every bucket read.
///
/// Threading: Attach/Detach/Rebuild and all probes belong to the engine's
/// writer thread; OnBucketChanged may arrive concurrently from shard pool
/// threads (SegmentedMuStore forwards to per-shard segments). Every method
/// takes the one internal mutex, and none calls out while holding it, so
/// the index is safe under the sharded engine's fork/join without ordering
/// assumptions beyond the store's own.
class SkybandIndex : public MuStore::BucketObserver {
 public:
  /// Maintenance and probe counters (monotonic except the three gauges).
  struct Stats {
    uint64_t notifications = 0;  ///< OnBucketChanged callbacks folded in
    uint64_t rebuilds = 0;       ///< ForEachBucket re-primes
    uint64_t size_probes = 0;    ///< Invariant-1 SkylineSize answers
    uint64_t union_probes = 0;   ///< Invariant-2 union answers
    uint64_t query_probes = 0;   ///< forward-query band reads (Members)
    uint64_t families = 0;       ///< gauge: constraints with >= 1 band
    uint64_t bands = 0;          ///< gauge: non-empty (C, M) bands
    uint64_t members = 0;        ///< gauge: Σ band sizes
  };

  SkybandIndex() = default;
  ~SkybandIndex() override { Detach(); }

  SkybandIndex(const SkybandIndex&) = delete;
  SkybandIndex& operator=(const SkybandIndex&) = delete;

  /// Registers as `store`'s observer, records the invariant and the
  /// truncation knobs (d̂ / m̂, -1 for unlimited — forward-query eligibility
  /// needs them), and primes the bands from ForEachBucket so attaching to
  /// an already-populated store (a restored snapshot) starts coherent.
  /// live() afterwards iff the store notifies.
  void Attach(MuStore* store, StoragePolicy policy, int max_bound_dims = -1,
              int max_measure_dims = -1);

  /// Unregisters from the store and drops every band.
  void Detach();

  /// Re-primes the bands from the attached store's ForEachBucket (the
  /// restore path for non-notifying stores; costs one bucket materialization
  /// each, i.e. one file read per bucket on a file store).
  void Rebuild();

  bool attached() const;
  /// True when the bands track every store mutation (notifying store).
  bool live() const;
  StoragePolicy policy() const { return policy_; }

  /// |λ_M(σ_C(R))| under Invariant 1: the band size, 0 when absent.
  uint64_t SkylineSize(const Constraint& c, MeasureMask m) const;

  /// |λ_M(σ_C(R))| under Invariant 2: deduplicated union of the bands of
  /// C's ancestors-or-self, filtered by satisfaction of C — byte-for-byte
  /// the set ProminenceEvaluator computes from the store.
  uint64_t UnionSkylineSize(const Relation& r, const Constraint& c,
                            MeasureMask m) const;

  /// Policy-dispatched |λ|: the evaluator's one entry point.
  uint64_t SkylineSizeFor(const Relation& r, const Constraint& c,
                          MeasureMask m) const {
    return policy_ == StoragePolicy::kAllSkylineConstraints
               ? SkylineSize(c, m)
               : UnionSkylineSize(r, c, m);
  }

  /// Band membership of `t` (Invariant-1 skyband membership test).
  bool Contains(const Constraint& c, MeasureMask m, TupleId t) const;

  /// Copy of the band in ascending TupleId order; empty when absent. Under
  /// Invariant 1 this is λ_M(σ_C(R)) in SkylineQueryResult order.
  std::vector<TupleId> Members(const Constraint& c, MeasureMask m) const;

  /// True when a live Invariant-1 index can answer the forward query
  /// λ_M(σ_C(R)) for (c, m) authoritatively: the constraint is within the
  /// attached store's truncation knobs, so an absent band proves an empty
  /// context rather than an unindexed one.
  bool CoversQuery(const Constraint& c, MeasureMask m) const;

  /// Visits every band (unspecified order; members in store order). `fn`
  /// must not call back into the index — the lock is held.
  void ForEachBand(
      const std::function<void(const Constraint&, MeasureMask,
                               const std::vector<TupleId>&)>& fn) const;

  Stats stats() const;
  size_t ApproxMemoryBytes() const;

  // MuStore::BucketObserver: replaces (or erases, when `bucket` is empty)
  // the band for (c, m). Any thread.
  void OnBucketChanged(const Constraint& c, MeasureMask m,
                       const std::vector<TupleId>& bucket) override;

 private:
  /// One mirrored bucket. Members stay in store order (a replace is then
  /// one vector assign); probes that need sorted output sort their copy.
  struct Band {
    MeasureMask mask = 0;
    std::vector<TupleId> members;
  };
  /// Bands of one constraint, sorted by mask (few subspaces per constraint,
  /// same reasoning as MemoryMuStore's flat entry vector).
  using Family = std::vector<Band>;

  /// Locked helpers. `mu_` must be held.
  const Band* FindBandLocked(const Constraint& c, MeasureMask m) const;
  void ApplyLocked(const Constraint& c, MeasureMask m,
                   const std::vector<TupleId>& bucket);
  void ClearLocked();
  void RebuildLocked();

  mutable std::mutex mu_;
  MuStore* store_ = nullptr;
  StoragePolicy policy_ = StoragePolicy::kAllSkylineConstraints;
  bool live_ = false;
  int max_bound_dims_ = -1;
  int max_measure_dims_ = -1;
  std::unordered_map<Constraint, Family, ConstraintHash> families_;
  mutable Stats stats_;
  mutable std::vector<TupleId> union_scratch_;
};

}  // namespace sitfact

#endif  // SITFACT_SKYLINE_SKYBAND_INDEX_H_
