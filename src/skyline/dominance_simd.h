#ifndef SITFACT_SKYLINE_DOMINANCE_SIMD_H_
#define SITFACT_SKYLINE_DOMINANCE_SIMD_H_

#include <cstddef>

#include "common/cpu.h"
#include "common/types.h"
#include "relation/relation.h"

namespace sitfact {

/// SIMD tiers for the batched Prop.-4 kernels (skyline/dominance_batch.h).
///
/// The kernels all reduce to three column-shaped inner loops; this table
/// holds one function pointer per shape, with scalar / SSE2 / AVX2
/// implementations selected once per process (common/cpu.h). Dispatching at
/// the column level keeps the kernel drivers — the per-measure loops, mask
/// handling, ramping, and every call site in skyline/, csc/, core/ and
/// exec/ — identical across tiers, so the scalar-vs-SIMD bit-for-bit
/// contract only has to hold for these three primitives.
///
/// Contract (pinned by dominance_batch_test under every tier): each op is
/// bit-identical to its scalar twin in dominance_batch.h's `internal`
/// namespace, including NaN semantics — a NaN on either side of a compare
/// contributes no bit (the vector compares use ordered predicates, so NaN
/// lanes produce a zero mask exactly like the scalar `<`/`>`). Vector
/// bodies use unaligned-tolerant loads after a scalar head peel to the
/// vector alignment, and counts below one vector width (or ragged block
/// tails) finish on the scalar loop — `col + begin` may point anywhere.
struct DominanceColumnOps {
  /// out[i] |= partition bits of `tv` vs src[i], i in [0, count).
  void (*partition_column_range)(const double* src, double tv, size_t count,
                                 MeasureMask bit,
                                 Relation::MeasurePartition* out);
  /// out[i] |= partition bits of `tv` vs col[ids[i]], i in [0, count).
  void (*partition_column_gather)(const double* col, double tv,
                                  const TupleId* ids, size_t count,
                                  MeasureMask bit,
                                  Relation::MeasurePartition* out);
  /// out[i] |= (src[i] == tv) ? bit : 0, i in [0, count).
  void (*agree_column_range)(const ValueId* src, ValueId tv, size_t count,
                             DimMask bit, DimMask* out);
};

/// The op table for one specific tier. Tiers above the machine's detected
/// capability return the highest supported table instead (never an illegal
/// instruction); tests iterate supported tiers through this.
const DominanceColumnOps& DominanceOpsForTier(SimdTier tier);

/// The table the kernels dispatch through: DominanceOpsForTier of
/// ActiveSimdTier(), resolved once on first use.
const DominanceColumnOps& ActiveDominanceOps();

}  // namespace sitfact

#endif  // SITFACT_SKYLINE_DOMINANCE_SIMD_H_
