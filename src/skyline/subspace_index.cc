#include "skyline/subspace_index.h"

#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"

namespace sitfact {

SubspaceIndex::SubspaceIndex(const Relation* relation)
    : relation_(relation), tree_(relation) {}

void SubspaceIndex::Insert(TupleId t) {
  tree_.Insert(t);
  members_.push_back(t);
}

bool SubspaceIndex::IsSkylineMember(TupleId probe, MeasureMask m,
                                    PartitionMemo* memo,
                                    uint64_t* comparisons) const {
  const Relation& r = *relation_;
  if (members_.size() <= kProbeCutover) {
    // Small member set: sweep partitions directly. With a memo each pair
    // costs one scalar partition for the whole arrival; every later mask
    // (and every later context meeting the same pair) is two bit tests.
    for (TupleId u : members_) {
      if (u == probe || r.IsDeleted(u)) continue;
      ++*comparisons;
      Relation::MeasurePartition local;
      const Relation::MeasurePartition& p =
          memo != nullptr ? memo->Get(u) : (local = r.Partition(probe, u));
      if (DominatedInSubspace(p, m)) return false;
    }
    return true;
  }
  if (memo != nullptr) {
    // Phase 1 (tree range query, weak dominators only) fused with phase 2
    // (memoized Prop.-4 verify): the first strict dominator ends the probe
    // mid-traversal.
    bool dominated = false;
    tree_.VisitDominators(probe, m, [&](TupleId cand) {
      if (r.IsDeleted(cand)) return true;
      ++*comparisons;
      if (DominatedInSubspace(memo->Get(cand), m)) {
        dominated = true;
        return false;
      }
      return true;
    });
    return !dominated;
  }
  // No memo: collect the phase-1 candidates, then verify the (index-pruned,
  // hence short) list with one batched partition pass.
  tree_.FindDominatorCandidates(probe, m, &cand_scratch_);
  size_t live = 0;
  for (TupleId cand : cand_scratch_) {
    if (!r.IsDeleted(cand)) cand_scratch_[live++] = cand;
  }
  if (live == 0) return true;
  part_scratch_.resize(live);
  PartitionBatch(r, probe, cand_scratch_.data(), live, part_scratch_.data());
  *comparisons += live;
  for (size_t i = 0; i < live; ++i) {
    if (DominatedInSubspace(part_scratch_[i], m)) return false;
  }
  return true;
}

void SubspaceIndex::ComputeSkylineSet(TupleId probe,
                                      const SubspaceUniverse& universe,
                                      PartitionMemo* memo,
                                      std::vector<uint8_t>* out,
                                      uint64_t* comparisons) const {
  const auto& masks = universe.masks();
  out->assign(masks.size(), 1);
  for (size_t i = 0; i < masks.size(); ++i) {
    if (!IsSkylineMember(probe, masks[i], memo, comparisons)) (*out)[i] = 0;
  }
}

size_t SubspaceIndex::ApproxMemoryBytes() const {
  return tree_.ApproxMemoryBytes() + members_.capacity() * sizeof(TupleId) +
         cand_scratch_.capacity() * sizeof(TupleId) +
         part_scratch_.capacity() * sizeof(Relation::MeasurePartition);
}

}  // namespace sitfact
