#include "skyline/dominance_simd.h"

#include <cstdint>

#include "skyline/dominance_batch.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SITFACT_X86 1
#endif

namespace sitfact {
namespace {

// The vector paths store {worse, better} pairs as one little-endian 64-bit
// lane per candidate: worse in the low 32 bits, better in the high 32. The
// compare masks (all-ones / all-zero per lane, NaN → zero under the ordered
// predicates) are ANDed with per-column bit vectors and ORed straight into
// the packed pairs — the masks never leave the vector domain, so there is
// no movemask round-trip per column.
static_assert(sizeof(Relation::MeasurePartition) == 8);
static_assert(offsetof(Relation::MeasurePartition, worse) == 0);
static_assert(offsetof(Relation::MeasurePartition, better) == 4);
static_assert(sizeof(TupleId) == 4 && sizeof(ValueId) == 4);

// ---------------------------------------------------------------------------
// Scalar tier: thin wrappers over the verbatim scalar kernels in
// dominance_batch.h, which stay the bit-exact oracle.

void PartitionColumnRangeScalar(const double* src, double tv, size_t count,
                                MeasureMask bit,
                                Relation::MeasurePartition* out) {
  internal::ScalarPartitionColumnRange(src, tv, count, bit, out);
}

void PartitionColumnGatherScalar(const double* col, double tv,
                                 const TupleId* ids, size_t count,
                                 MeasureMask bit,
                                 Relation::MeasurePartition* out) {
  internal::ScalarPartitionColumnGather(col, tv, ids, count, bit, out);
}

void AgreeColumnRangeScalar(const ValueId* src, ValueId tv, size_t count,
                            DimMask bit, DimMask* out) {
  internal::ScalarAgreeColumnRange(src, tv, count, bit, out);
}

constexpr DominanceColumnOps kScalarOps = {
    PartitionColumnRangeScalar,
    PartitionColumnGatherScalar,
    AgreeColumnRangeScalar,
};

#if defined(SITFACT_X86)

// ---------------------------------------------------------------------------
// SSE2 tier: 2 doubles / 4 dimension values per instruction.

__attribute__((target("sse2"))) void PartitionColumnRangeSse2(
    const double* src, double tv, size_t count, MeasureMask bit,
    Relation::MeasurePartition* out) {
  size_t i = 0;
  // Scalar head peel to 16B source alignment: the measure arena is
  // 64B-aligned at index 0, so an odd `begin` lands here.
  for (; i < count && (reinterpret_cast<uintptr_t>(src + i) & 15u) != 0;
       ++i) {
    double ov = src[i];
    out[i].worse |= (tv < ov) ? bit : 0u;
    out[i].better |= (tv > ov) ? bit : 0u;
  }
  const __m128d vt = _mm_set1_pd(tv);
  const __m128i wbit = _mm_set1_epi64x(static_cast<long long>(bit));
  const __m128i bbit =
      _mm_set1_epi64x(static_cast<long long>(static_cast<uint64_t>(bit) << 32));
  for (; i + 2 <= count; i += 2) {
    __m128d ov = _mm_load_pd(src + i);
    __m128i lt = _mm_castpd_si128(_mm_cmplt_pd(vt, ov));  // NaN → 0
    __m128i gt = _mm_castpd_si128(_mm_cmpgt_pd(vt, ov));
    __m128i contrib = _mm_or_si128(_mm_and_si128(lt, wbit),
                                   _mm_and_si128(gt, bbit));
    __m128i* dst = reinterpret_cast<__m128i*>(out + i);
    _mm_storeu_si128(dst, _mm_or_si128(_mm_loadu_si128(dst), contrib));
  }
  for (; i < count; ++i) {  // sub-vector tail
    double ov = src[i];
    out[i].worse |= (tv < ov) ? bit : 0u;
    out[i].better |= (tv > ov) ? bit : 0u;
  }
}

__attribute__((target("sse2"))) void PartitionColumnGatherSse2(
    const double* col, double tv, const TupleId* ids, size_t count,
    MeasureMask bit, Relation::MeasurePartition* out) {
  const __m128d vt = _mm_set1_pd(tv);
  const __m128i wbit = _mm_set1_epi64x(static_cast<long long>(bit));
  const __m128i bbit =
      _mm_set1_epi64x(static_cast<long long>(static_cast<uint64_t>(bit) << 32));
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    // SSE2 has no gather; two scalar loads packed per vector.
    __m128d ov = _mm_set_pd(col[ids[i + 1]], col[ids[i]]);
    __m128i lt = _mm_castpd_si128(_mm_cmplt_pd(vt, ov));
    __m128i gt = _mm_castpd_si128(_mm_cmpgt_pd(vt, ov));
    __m128i contrib = _mm_or_si128(_mm_and_si128(lt, wbit),
                                   _mm_and_si128(gt, bbit));
    __m128i* dst = reinterpret_cast<__m128i*>(out + i);
    _mm_storeu_si128(dst, _mm_or_si128(_mm_loadu_si128(dst), contrib));
  }
  for (; i < count; ++i) {
    double ov = col[ids[i]];
    out[i].worse |= (tv < ov) ? bit : 0u;
    out[i].better |= (tv > ov) ? bit : 0u;
  }
}

__attribute__((target("sse2"))) void AgreeColumnRangeSse2(const ValueId* src,
                                                          ValueId tv,
                                                          size_t count,
                                                          DimMask bit,
                                                          DimMask* out) {
  const __m128i vt = _mm_set1_epi32(static_cast<int>(tv));
  const __m128i vbit = _mm_set1_epi32(static_cast<int>(bit));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i sv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i contrib = _mm_and_si128(_mm_cmpeq_epi32(sv, vt), vbit);
    __m128i* dst = reinterpret_cast<__m128i*>(out + i);
    _mm_storeu_si128(dst, _mm_or_si128(_mm_loadu_si128(dst), contrib));
  }
  for (; i < count; ++i) {
    out[i] |= (src[i] == tv) ? bit : 0u;
  }
}

constexpr DominanceColumnOps kSse2Ops = {
    PartitionColumnRangeSse2,
    PartitionColumnGatherSse2,
    AgreeColumnRangeSse2,
};

// ---------------------------------------------------------------------------
// AVX2 tier: 4 doubles / 8 dimension values per instruction.

__attribute__((target("avx2"))) void PartitionColumnRangeAvx2(
    const double* src, double tv, size_t count, MeasureMask bit,
    Relation::MeasurePartition* out) {
  size_t i = 0;
  for (; i < count && (reinterpret_cast<uintptr_t>(src + i) & 31u) != 0;
       ++i) {
    double ov = src[i];
    out[i].worse |= (tv < ov) ? bit : 0u;
    out[i].better |= (tv > ov) ? bit : 0u;
  }
  const __m256d vt = _mm256_set1_pd(tv);
  const __m256i wbit = _mm256_set1_epi64x(static_cast<long long>(bit));
  const __m256i bbit = _mm256_set1_epi64x(
      static_cast<long long>(static_cast<uint64_t>(bit) << 32));
  for (; i + 4 <= count; i += 4) {
    __m256d ov = _mm256_load_pd(src + i);
    __m256i lt = _mm256_castpd_si256(_mm256_cmp_pd(vt, ov, _CMP_LT_OQ));
    __m256i gt = _mm256_castpd_si256(_mm256_cmp_pd(vt, ov, _CMP_GT_OQ));
    __m256i contrib = _mm256_or_si256(_mm256_and_si256(lt, wbit),
                                      _mm256_and_si256(gt, bbit));
    __m256i* dst = reinterpret_cast<__m256i*>(out + i);
    _mm256_storeu_si256(dst,
                        _mm256_or_si256(_mm256_loadu_si256(dst), contrib));
  }
  for (; i < count; ++i) {
    double ov = src[i];
    out[i].worse |= (tv < ov) ? bit : 0u;
    out[i].better |= (tv > ov) ? bit : 0u;
  }
}

__attribute__((target("avx2"))) void PartitionColumnGatherAvx2(
    const double* col, double tv, const TupleId* ids, size_t count,
    MeasureMask bit, Relation::MeasurePartition* out) {
  const __m256d vt = _mm256_set1_pd(tv);
  const __m256i wbit = _mm256_set1_epi64x(static_cast<long long>(bit));
  const __m256i bbit = _mm256_set1_epi64x(
      static_cast<long long>(static_cast<uint64_t>(bit) << 32));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // Four scalar loads packed per vector, not vgatherdpd: the hardware
    // gather serializes on its index dependency and measured slower than
    // plain loads here; the win of this tier is the 4-wide compare and
    // in-register mask assembly, which packed loads feed just as well.
    __m256d ov = _mm256_set_pd(col[ids[i + 3]], col[ids[i + 2]],
                               col[ids[i + 1]], col[ids[i]]);
    __m256i lt = _mm256_castpd_si256(_mm256_cmp_pd(vt, ov, _CMP_LT_OQ));
    __m256i gt = _mm256_castpd_si256(_mm256_cmp_pd(vt, ov, _CMP_GT_OQ));
    __m256i contrib = _mm256_or_si256(_mm256_and_si256(lt, wbit),
                                      _mm256_and_si256(gt, bbit));
    __m256i* dst = reinterpret_cast<__m256i*>(out + i);
    _mm256_storeu_si256(dst,
                        _mm256_or_si256(_mm256_loadu_si256(dst), contrib));
  }
  for (; i < count; ++i) {
    double ov = col[ids[i]];
    out[i].worse |= (tv < ov) ? bit : 0u;
    out[i].better |= (tv > ov) ? bit : 0u;
  }
}

__attribute__((target("avx2"))) void AgreeColumnRangeAvx2(const ValueId* src,
                                                          ValueId tv,
                                                          size_t count,
                                                          DimMask bit,
                                                          DimMask* out) {
  const __m256i vt = _mm256_set1_epi32(static_cast<int>(tv));
  const __m256i vbit = _mm256_set1_epi32(static_cast<int>(bit));
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i contrib = _mm256_and_si256(_mm256_cmpeq_epi32(sv, vt), vbit);
    __m256i* dst = reinterpret_cast<__m256i*>(out + i);
    _mm256_storeu_si256(dst,
                        _mm256_or_si256(_mm256_loadu_si256(dst), contrib));
  }
  for (; i < count; ++i) {
    out[i] |= (src[i] == tv) ? bit : 0u;
  }
}

constexpr DominanceColumnOps kAvx2Ops = {
    PartitionColumnRangeAvx2,
    PartitionColumnGatherAvx2,
    AgreeColumnRangeAvx2,
};

#endif  // SITFACT_X86

}  // namespace

const DominanceColumnOps& DominanceOpsForTier(SimdTier tier) {
#if defined(SITFACT_X86)
  // Clamp to what the machine can actually execute.
  SimdTier detected = DetectSimdTier();
  if (tier > detected) tier = detected;
  switch (tier) {
    case SimdTier::kAvx2:
      return kAvx2Ops;
    case SimdTier::kSse2:
      return kSse2Ops;
    case SimdTier::kScalar:
      return kScalarOps;
  }
#else
  (void)tier;
#endif
  return kScalarOps;
}

const DominanceColumnOps& ActiveDominanceOps() {
  static const DominanceColumnOps& ops = DominanceOpsForTier(ActiveSimdTier());
  return ops;
}

}  // namespace sitfact
