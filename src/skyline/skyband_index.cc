#include "skyline/skyband_index.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/bits.h"
#include "common/logging.h"

namespace sitfact {

bool SkybandIndexEnabledFromEnv() {
  const char* v = std::getenv("SITFACT_SKYBAND_INDEX");
  if (v == nullptr) return true;
  const std::string_view s(v);
  return s != "off" && s != "0";
}

void SkybandIndex::Attach(MuStore* store, StoragePolicy policy,
                          int max_bound_dims, int max_measure_dims) {
  SITFACT_CHECK(store != nullptr);
  Detach();
  std::lock_guard<std::mutex> lock(mu_);
  store_ = store;
  policy_ = policy;
  live_ = store->NotifiesObservers();
  max_bound_dims_ = max_bound_dims;
  max_measure_dims_ = max_measure_dims;
  // Register before priming: the single-writer contract means no mutation
  // can slip between the two, and attaching mid-stream (restored store)
  // starts from the store's current contents either way.
  store_->set_bucket_observer(this);
  RebuildLocked();
}

void SkybandIndex::Detach() {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    store_->set_bucket_observer(nullptr);
    store_ = nullptr;
  }
  live_ = false;
  ClearLocked();
}

void SkybandIndex::Rebuild() {
  std::lock_guard<std::mutex> lock(mu_);
  RebuildLocked();
}

void SkybandIndex::RebuildLocked() {
  SITFACT_CHECK(store_ != nullptr);
  ClearLocked();
  // ForEachBucket calls straight back into ApplyLocked: the store's visit
  // runs on this thread, under our lock, and never re-enters the index.
  store_->ForEachBucket([this](const Constraint& c, MeasureMask m,
                               const std::vector<TupleId>& bucket) {
    ApplyLocked(c, m, bucket);
  });
  ++stats_.rebuilds;
}

bool SkybandIndex::attached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_ != nullptr;
}

bool SkybandIndex::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

void SkybandIndex::OnBucketChanged(const Constraint& c, MeasureMask m,
                                   const std::vector<TupleId>& bucket) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.notifications;
  ApplyLocked(c, m, bucket);
}

void SkybandIndex::ApplyLocked(const Constraint& c, MeasureMask m,
                               const std::vector<TupleId>& bucket) {
  auto it = families_.find(c);
  if (it == families_.end()) {
    if (bucket.empty()) return;
    it = families_.emplace(c, Family()).first;
    ++stats_.families;
  }
  Family& family = it->second;
  auto band = std::lower_bound(
      family.begin(), family.end(), m,
      [](const Band& b, MeasureMask mask) { return b.mask < mask; });
  if (band != family.end() && band->mask == m) {
    stats_.members -= band->members.size();
    if (bucket.empty()) {
      family.erase(band);
      --stats_.bands;
      if (family.empty()) {
        families_.erase(it);
        --stats_.families;
      }
      return;
    }
    band->members = bucket;
    stats_.members += bucket.size();
    return;
  }
  if (bucket.empty()) return;
  Band fresh;
  fresh.mask = m;
  fresh.members = bucket;
  family.insert(band, std::move(fresh));
  ++stats_.bands;
  stats_.members += bucket.size();
}

void SkybandIndex::ClearLocked() {
  families_.clear();
  stats_.families = 0;
  stats_.bands = 0;
  stats_.members = 0;
}

const SkybandIndex::Band* SkybandIndex::FindBandLocked(const Constraint& c,
                                                       MeasureMask m) const {
  auto it = families_.find(c);
  if (it == families_.end()) return nullptr;
  const Family& family = it->second;
  auto band = std::lower_bound(
      family.begin(), family.end(), m,
      [](const Band& b, MeasureMask mask) { return b.mask < mask; });
  if (band == family.end() || band->mask != m) return nullptr;
  return &*band;
}

uint64_t SkybandIndex::SkylineSize(const Constraint& c, MeasureMask m) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.size_probes;
  const Band* band = FindBandLocked(c, m);
  return band == nullptr ? 0 : band->members.size();
}

uint64_t SkybandIndex::UnionSkylineSize(const Relation& r, const Constraint& c,
                                        MeasureMask m) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.union_probes;
  // Mirrors ProminenceEvaluator's Invariant-2 walk over the store, band for
  // bucket: tuples stored at an ancestor-or-self of C, filtered for
  // satisfaction of C (self needs no filter), deduplicated (a tuple may sit
  // at two incomparable maximal constraints).
  union_scratch_.clear();
  ForEachSubset(c.bound_mask(), [&](DimMask sub) {
    const Band* band = FindBandLocked(c.Restrict(sub), m);
    if (band == nullptr) return;
    for (TupleId t : band->members) {
      if (sub == c.bound_mask() || c.SatisfiedBy(r, t)) {
        union_scratch_.push_back(t);
      }
    }
  });
  std::sort(union_scratch_.begin(), union_scratch_.end());
  union_scratch_.erase(
      std::unique(union_scratch_.begin(), union_scratch_.end()),
      union_scratch_.end());
  return union_scratch_.size();
}

bool SkybandIndex::Contains(const Constraint& c, MeasureMask m,
                            TupleId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Band* band = FindBandLocked(c, m);
  if (band == nullptr) return false;
  return std::find(band->members.begin(), band->members.end(), t) !=
         band->members.end();
}

std::vector<TupleId> SkybandIndex::Members(const Constraint& c,
                                           MeasureMask m) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.query_probes;
  const Band* band = FindBandLocked(c, m);
  std::vector<TupleId> out;
  if (band != nullptr) {
    out = band->members;
    std::sort(out.begin(), out.end());
  }
  return out;
}

bool SkybandIndex::CoversQuery(const Constraint& c, MeasureMask m) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!live_ || policy_ != StoragePolicy::kAllSkylineConstraints) return false;
  if (m == 0) return false;
  if (max_bound_dims_ >= 0 && c.BoundCount() > max_bound_dims_) return false;
  if (max_measure_dims_ >= 0 &&
      PopCount(static_cast<uint32_t>(m)) > max_measure_dims_) {
    return false;
  }
  return true;
}

void SkybandIndex::ForEachBand(
    const std::function<void(const Constraint&, MeasureMask,
                             const std::vector<TupleId>&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [c, family] : families_) {
    for (const Band& band : family) fn(c, band.mask, band.members);
  }
}

SkybandIndex::Stats SkybandIndex::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SkybandIndex::ApproxMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = families_.size() *
                 (sizeof(Constraint) + sizeof(Family) + 2 * sizeof(void*));
  for (const auto& [c, family] : families_) {
    total += family.capacity() * sizeof(Band);
    for (const Band& band : family) {
      total += band.members.capacity() * sizeof(TupleId);
    }
  }
  return total;
}

}  // namespace sitfact
