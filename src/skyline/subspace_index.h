#ifndef SITFACT_SKYLINE_SUBSPACE_INDEX_H_
#define SITFACT_SKYLINE_SUBSPACE_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "lattice/subspace_universe.h"
#include "relation/relation.h"
#include "skyline/kdtree.h"

namespace sitfact {

/// Per-arrival memo of Prop.-4 partitions against one probe tuple. A
/// partition is subspace-independent, so one evaluation of (probe, other)
/// serves every subspace pass — and, when the memo is shared across
/// consumers (the C-CSC discoverer threads one memo through all of an
/// arrival's contexts), every context that meets the same history tuple.
/// First touch computes the full scalar partition; the rest of the arrival
/// is an epoch-checked load. Rebinding to a new probe is O(1).
///
/// Extracted from the lattice family's per-arrival cache (PR 5) so the
/// subspace-index layer and the lattice engines share one implementation;
/// the lattice engines' epoch/billing behaviour is unchanged.
class PartitionMemo {
 public:
  /// Rebinds the memo to probe tuple `t` of `r`, invalidating all cached
  /// partitions (epoch bump). `r` must outlive the memo and not shrink.
  void BeginArrival(const Relation& r, TupleId t) {
    relation_ = &r;
    probe_ = t;
    if (cache_.size() < r.size()) {
      cache_.resize(r.size());
      epoch_.resize(r.size(), 0);
    }
    // Epoch 0 marks never-filled slots; skip it on wraparound.
    if (++current_ == 0) {
      std::fill(epoch_.begin(), epoch_.end(), 0);
      current_ = 1;
    }
  }

  /// The probe tuple of the current arrival.
  TupleId probe() const { return probe_; }

  /// Partition of the current probe against `other`, memoized for the
  /// whole arrival.
  const Relation::MeasurePartition& Get(TupleId other) {
    if (epoch_[other] != current_) {
      cache_[other] = relation_->Partition(probe_, other);
      epoch_[other] = current_;
    }
    return cache_[other];
  }

  size_t ApproxMemoryBytes() const {
    return cache_.capacity() * sizeof(Relation::MeasurePartition) +
           epoch_.capacity() * sizeof(uint32_t);
  }

 private:
  const Relation* relation_ = nullptr;
  TupleId probe_ = 0;
  std::vector<Relation::MeasurePartition> cache_;
  std::vector<uint32_t> epoch_;
  uint32_t current_ = 0;
};

/// Shared per-context subspace index: the bucketed k-d tree plus the batched
/// dominance kernels, packaged as skyline/skyband probe operations over one
/// member set (one context σ_C(R), or any fixed tuple population).
///
/// A membership probe is a two-phase approximate-then-verify scan: phase 1
/// routes through the tree's one-sided range query, which returns only the
/// candidates that *weakly* dominate the probe in the queried subspace;
/// phase 2 verifies strict dominance exactly via Prop. 4 — through a shared
/// PartitionMemo when the caller has one (each pair then costs one scalar
/// partition for the whole arrival), or through `PartitionBatch` otherwise.
/// Small member sets skip the tree: a memoized partition sweep is cheaper
/// than traversal when everything fits in a handful of cache lines.
///
/// Deleted tuples (Relation::IsDeleted) are filtered from every probe, so a
/// caller that rebuilds after removal only has to drop them from its own
/// bookkeeping. Not thread-safe: probes share scratch, like the tree.
class SubspaceIndex {
 public:
  /// Member sets up to this size are probed by a linear memoized partition
  /// sweep instead of tree traversal.
  static constexpr size_t kProbeCutover = 64;

  /// `relation` must outlive the index.
  explicit SubspaceIndex(const Relation* relation);

  /// Adds tuple `t` to the member set (and the tree).
  void Insert(TupleId t);

  /// Members in insertion order (C-CSC replays this on removal-rebuild).
  const std::vector<TupleId>& members() const { return members_; }

  /// True iff no live member strictly dominates `probe` in subspace `m`.
  /// `probe` need not be a member; if it is, it never dominates itself.
  /// `memo`, when non-null, must be bound to `probe` (BeginArrival) and is
  /// used for phase-2 verification; when null, verification runs through
  /// batched partitions of the phase-1 candidate list. Adds one comparison
  /// per pair evaluated to *comparisons.
  bool IsSkylineMember(TupleId probe, MeasureMask m, PartitionMemo* memo,
                       uint64_t* comparisons) const;

  /// Membership of `probe` for every mask of `universe`: out[i] = 1 iff
  /// IsSkylineMember(probe, universe.masks()[i]). One memoized partition
  /// sweep (or one probe per mask) — the all-subspace question C-CSC asks
  /// on promotion and on demotion repair.
  void ComputeSkylineSet(TupleId probe, const SubspaceUniverse& universe,
                         PartitionMemo* memo, std::vector<uint8_t>* out,
                         uint64_t* comparisons) const;

  size_t size() const { return members_.size(); }
  const KdTree& tree() const { return tree_; }

  size_t ApproxMemoryBytes() const;

 private:
  const Relation* relation_;
  KdTree tree_;
  std::vector<TupleId> members_;
  // Probe scratch, reused across probe batches (no fresh allocation per
  // probe).
  mutable std::vector<TupleId> cand_scratch_;
  mutable std::vector<Relation::MeasurePartition> part_scratch_;
};

}  // namespace sitfact

#endif  // SITFACT_SKYLINE_SUBSPACE_INDEX_H_
