#include "exec/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace sitfact {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SITFACT_CHECK_MSG(!active_, "ThreadPool destroyed with a launch pending");
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Launch(int n, std::function<void(int)> fn) {
  SITFACT_CHECK(n >= 0);
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SITFACT_CHECK_MSG(!active_, "ThreadPool::Launch while a launch is pending");
    task_ = std::move(fn);
    task_n_ = n;
    next_index_ = 0;
    completed_ = 0;
    active_ = true;
    ++generation_;
  }
  work_cv_.notify_all();
}

bool ThreadPool::ClaimIndex(uint64_t gen, int* index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_ || generation_ != gen || next_index_ >= task_n_) return false;
  *index = next_index_++;
  return true;
}

int ThreadPool::RunIndices(uint64_t gen, const std::function<void(int)>& fn) {
  int ran = 0;
  int index;
  while (ClaimIndex(gen, &index)) {
    fn(index);
    ++ran;
  }
  return ran;
}

void ThreadPool::ReportFinished(int ran) {
  if (ran == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // A generation cannot finish while `ran` of its indices are unreported, so
  // active_/completed_ still belong to the generation that ran them.
  completed_ += ran;
  if (completed_ == task_n_) {
    active_ = false;
    done_cv_.notify_all();
  }
}

void ThreadPool::Wait() {
  uint64_t gen;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!active_) return;
    gen = generation_;
  }
  // Steal unclaimed indices instead of idling. task_ stays valid: the launch
  // cannot complete while indices we claimed are unreported.
  ReportFinished(RunIndices(gen, task_));
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return !active_; });
}

void ThreadPool::ParallelFor(int n, std::function<void(int)> fn) {
  Launch(n, std::move(fn));
  Wait();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    uint64_t gen;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      gen = seen_generation = generation_;
    }
    ReportFinished(RunIndices(gen, task_));
  }
}

}  // namespace sitfact
