#ifndef SITFACT_EXEC_SHARDED_DISCOVERER_H_
#define SITFACT_EXEC_SHARDED_DISCOVERER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/discoverer.h"
#include "core/fact.h"
#include "exec/thread_pool.h"
#include "storage/context_counter.h"
#include "storage/segmented_mu_store.h"

namespace sitfact {

/// Shard-parallel incremental discovery (the ShardedEngine's core).
///
/// The truncated lattice C^t is partitioned into K shards by DimMask
/// (round-robin over the bottom-up visit order, so every shard gets a mix of
/// specific and general constraints). Each shard owns one segment of a
/// SegmentedMuStore plus one ContextCounter slice, and a per-arrival task
/// evaluates the new tuple against every owned (C, M) bucket under
/// Invariant 1 — exactly BottomUp's per-bucket update rule, which depends
/// only on that bucket's contents, so any partition of the masks yields the
/// sequential engine's facts, buckets, and prominence denominators.
///
/// Constraint pruning (Prop. 3) crosses shards through a lock-free pruner
/// board: a shard that finds a dominator publishes the agreement mask, and
/// every shard skips constraints subsumed by a published pruner. Pruning
/// only ever skips work whose outcome is provably "no change, no fact"
/// (a dominated tuple neither enters a bucket nor evicts a skyline member),
/// so results are deterministic even though the set of visits — and hence
/// DiscoveryStats.comparisons — depends on thread timing. Only
/// stats().arrivals is timing-independent.
///
/// Threading contract: one external writer at a time (like every engine in
/// this codebase); all parallelism is internal and joins before any call
/// returns, except for the StartArrival/WaitArrival pair the ShardedEngine
/// uses to overlap report-merging with the next arrival.
class ShardedDiscoverer : public Discoverer {
 public:
  /// Upper bound on K (the segment routing table stores uint8_t indices);
  /// requests beyond it — or beyond the truncated lattice size — are
  /// clamped, never rejected.
  static constexpr int kMaxShards = 255;
  /// Per-arrival outputs of one shard. Double-buffered so the engine can
  /// merge arrival i while the shards run arrival i+1.
  struct ShardOutput {
    std::vector<SkylineFact> facts;
    std::vector<RankedFact> ranked;  // filled only when rank was requested
  };

  /// `num_threads <= 0` defaults to `num_shards`.
  ShardedDiscoverer(const Relation* relation, const DiscoveryOptions& options,
                    int num_shards, int num_threads);
  ~ShardedDiscoverer() override;

  std::string_view name() const override { return "Sharded"; }

  /// Synchronous Discoverer entry point: fan out, join, concatenate.
  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;

  /// Asynchronous entry points for the pipelined engine. StartArrival fans
  /// the shard tasks out into `slot` (0 or 1) and returns; WaitArrival joins
  /// them (helping with unclaimed shards) and folds the work counters into
  /// stats(). Outputs of `slot` are stable from WaitArrival until the next
  /// StartArrival with the same slot.
  void StartArrival(TupleId t, bool rank, int slot);
  void WaitArrival();
  const ShardOutput& output(int shard, int slot) const {
    return shards_[shard]->out[slot];
  }

  bool SupportsRemoval() const override { return true; }
  Status Remove(TupleId t) override;

  /// Per-shard counters and segments cannot be rebuilt by the generic
  /// snapshot path (it restores through a single store handle).
  bool SupportsSnapshotRestore() const override { return false; }

  const MuStore* store() const override { return store_.get(); }
  MuStore* mutable_store() override { return store_.get(); }
  StoragePolicy storage_policy() const override {
    return StoragePolicy::kAllSkylineConstraints;
  }

  size_t ApproxMemoryBytes() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_threads() const { return pool_->threads(); }

  /// Count-only ingestion for delta-checkpoint recovery (docs/persistence.md):
  /// folds an arrival/removal into every shard's counter slice without any
  /// discovery or bucket work. The µ segments are restored separately from
  /// the delta chain's bucket dumps; replaying counts this way re-derives
  /// the |σ_C(R)| the full replay would have produced, at relation-scan cost.
  void CountArrival(TupleId t);
  void CountRemoval(TupleId t);

  /// |σ_C(R)| aggregated across the shard-partitioned counters (the count
  /// lives wholly in the shard owning C's mask).
  uint64_t ContextCount(const Constraint& c) const;

  /// Persistence hooks (docs/persistence.md): the per-shard counter slices
  /// viewed and restored as one logical counter. Because each constraint's
  /// count lives wholly in the shard owning its mask, iterating every shard
  /// visits each constraint exactly once, and a restore routes the entry to
  /// the owning shard — so a snapshot taken at one shard count restores
  /// cleanly at any other.
  void ForEachContextCount(
      const std::function<void(const Constraint&, uint64_t)>& fn) const;
  uint64_t DistinctContexts() const;
  void RestoreContextCount(const Constraint& c, uint64_t count);

 private:
  /// Lock-free, append-only prune publications for the current arrival, one
  /// slot array per measure subspace. Overflow drops publications (less
  /// pruning, never wrong results).
  class PrunerBoard {
   public:
    explicit PrunerBoard(int num_subspaces);
    /// Caller-thread only, between arrivals.
    void Reset();
    void Publish(int subspace_index, DimMask agree_mask);
    bool IsPruned(int subspace_index, DimMask mask) const;

   private:
    static constexpr int kSlots = 24;
    // Slot values are agree_mask + 1; 0 means "not yet published".
    std::vector<std::atomic<uint32_t>> slots_;
    std::vector<std::atomic<int>> counts_;
  };

  struct Shard {
    std::vector<DimMask> masks;  // owned masks, descending popcount
    ContextCounter counter;      // |σ_C(R)| for owned masks only
    DiscoveryStats stats;        // cumulative, owner-thread written
    ShardOutput out[2];
    std::vector<TupleId> scratch;  // bucket read buffer

    explicit Shard(int max_bound) : counter(max_bound) {}
  };

  void RunShardArrival(int shard, TupleId t, bool rank, int slot);
  void RepairShardAfterRemoval(int shard, TupleId t);

  /// Sums per-shard work counters into the base-class stats_ (arrivals are
  /// counted once, in StartArrival).
  void FoldShardStats();

  std::unique_ptr<SegmentedMuStore> store_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  PrunerBoard board_;
  TupleId pending_tuple_ = 0;
  bool arrival_pending_ = false;
};

}  // namespace sitfact

#endif  // SITFACT_EXEC_SHARDED_DISCOVERER_H_
