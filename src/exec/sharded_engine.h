#ifndef SITFACT_EXEC_SHARDED_ENGINE_H_
#define SITFACT_EXEC_SHARDED_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "exec/sharded_discoverer.h"
#include "relation/relation.h"
#include "skyline/skyband_index.h"

namespace sitfact {

/// Thread-pool-backed counterpart of DiscoveryEngine: per-arrival discovery
/// and prominence ranking run shard-parallel over a lattice partition, and
/// the shard outputs are merged into an ArrivalReport that is tuple-for-tuple
/// identical to the sequential engine's (facts, prominence scores, prominent
/// selection — see docs/parallelism.md for the argument and
/// tests/sharded_equivalence_test.cc for the proof-by-differential).
///
/// Like every engine here it is single-writer: one thread calls
/// Append/AppendBatch/Remove/Update at a time; all parallelism is internal.
class ShardedEngine {
 public:
  struct Config {
    /// K: lattice partitions, each with a private µ-store segment. Clamped
    /// to the truncated lattice size and ShardedDiscoverer::kMaxShards.
    int num_shards = 4;
    /// Worker threads; 0 means num_shards. More shards than threads is fine
    /// (threads claim shards dynamically); the reverse leaves threads idle.
    int num_threads = 0;
    DiscoveryOptions options;
    /// Prominence threshold τ for the `prominent` selection.
    double tau = 0.0;
    /// Rank every fact (the sharded store always supports it).
    bool rank_facts = true;
  };

  /// `relation` must outlive the engine.
  ShardedEngine(Relation* relation, const Config& config);

  /// Appends `row` and discovers its facts (one fork/join).
  ArrivalReport Append(const Row& row);

  /// Streams `rows` through the engine, pipelining each arrival's
  /// append+discovery+ranking with the previous arrival's report merge.
  /// Equivalent to calling Append per row, just faster.
  std::vector<ArrivalReport> AppendBatch(std::span<const Row> rows);

  /// Discovery for the most recently appended tuple.
  ArrivalReport DiscoverLast();

  /// Deletion extension, matching DiscoveryEngine::Remove: tombstones `t`,
  /// then repairs counters and µ segments shard-parallel.
  Status Remove(TupleId t);

  /// Update extension, matching DiscoveryEngine::Update (remove+re-append).
  StatusOr<ArrivalReport> Update(TupleId t, const Row& row);

  Relation& relation() { return *relation_; }
  ShardedDiscoverer& discoverer() { return *discoverer_; }
  const DiscoveryStats& stats() const { return discoverer_->stats(); }
  const Config& config() const { return config_; }

  /// The µ-side skyband shadow over the segmented store (SegmentedMuStore
  /// forwards observer registration to every segment, so shard threads feed
  /// it the same per-bucket mutation stream a sequential engine would; the
  /// index's internal mutex makes that safe). Null when ranking is off or
  /// SITFACT_SKYBAND_INDEX=off. Per-shard ranking keeps its O(1) in-segment
  /// reads — the index serves forward queries and external consumers.
  const SkybandIndex* skyband_index() const { return skyband_.get(); }

  /// Aggregates over every µ-store segment.
  uint64_t StoredTupleCount() const { return discoverer_->StoredTupleCount(); }
  size_t ApproxMemoryBytes() const {
    return discoverer_->ApproxMemoryBytes();
  }

  /// Checkpoint hook mirroring DiscoveryEngine::SerializeState: the same
  /// engine-state section, with the aggregated counter view and the union of
  /// µ segments, under the algorithm name "Sharded". Because the segments
  /// follow Invariant 1, the dump is bucket-for-bucket the one a sequential
  /// Invariant-1 algorithm would write, so snapshots restore across engine
  /// kinds and shard counts (io/snapshot.h: LoadEngineSnapshot maps
  /// "Sharded" to SBottomUp; LoadShardedEngineSnapshot re-routes buckets and
  /// counts to any shard geometry).
  void SerializeState(BinaryWriter* w);

 private:
  /// Builds the canonical ArrivalReport for tuple `t` from the shard
  /// outputs parked in `slot`.
  ArrivalReport MergeReport(TupleId t, int slot);

  Relation* relation_;
  Config config_;
  std::unique_ptr<ShardedDiscoverer> discoverer_;
  /// Declared after discoverer_: destruction detaches from its store.
  std::unique_ptr<SkybandIndex> skyband_;
};

}  // namespace sitfact

#endif  // SITFACT_EXEC_SHARDED_ENGINE_H_
