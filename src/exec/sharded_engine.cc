#include "exec/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "common/logging.h"
#include "core/prominence.h"

namespace sitfact {

ShardedEngine::ShardedEngine(Relation* relation, const Config& config)
    : relation_(relation), config_(config) {
  SITFACT_CHECK(relation != nullptr);
  SITFACT_CHECK_MSG(config.num_shards >= 1, "num_shards must be >= 1");
  discoverer_ = std::make_unique<ShardedDiscoverer>(
      relation, config.options, config.num_shards, config.num_threads);
  if (config_.rank_facts && SkybandIndexEnabledFromEnv()) {
    skyband_ = std::make_unique<SkybandIndex>();
    skyband_->Attach(discoverer_->mutable_store(),
                     discoverer_->storage_policy(),
                     discoverer_->max_bound_dims(),
                     static_cast<int>(discoverer_->subspaces().max_size()));
  }
}

ArrivalReport ShardedEngine::Append(const Row& row) {
  relation_->Append(row);
  return DiscoverLast();
}

ArrivalReport ShardedEngine::DiscoverLast() {
  SITFACT_CHECK(relation_->size() > 0);
  TupleId t = relation_->size() - 1;
  discoverer_->StartArrival(t, config_.rank_facts, /*slot=*/0);
  discoverer_->WaitArrival();
  return MergeReport(t, /*slot=*/0);
}

std::vector<ArrivalReport> ShardedEngine::AppendBatch(
    std::span<const Row> rows) {
  std::vector<ArrivalReport> reports;
  if (rows.empty()) return reports;
  reports.reserve(rows.size());

  // Software pipeline: while the shards run arrival i+1, the caller merges
  // arrival i's outputs (slots alternate, so the buffers never collide).
  // Appends happen strictly between fork/join points, so every arrival sees
  // exactly the history the sequential engine would.
  TupleId t = relation_->Append(rows[0]);
  discoverer_->StartArrival(t, config_.rank_facts, /*slot=*/0);
  for (size_t i = 0; i < rows.size(); ++i) {
    discoverer_->WaitArrival();
    TupleId merged_tuple = t;
    int merged_slot = static_cast<int>(i % 2);
    if (i + 1 < rows.size()) {
      t = relation_->Append(rows[i + 1]);
      discoverer_->StartArrival(t, config_.rank_facts,
                                static_cast<int>((i + 1) % 2));
    }
    reports.push_back(MergeReport(merged_tuple, merged_slot));
  }
  return reports;
}

void ShardedEngine::SerializeState(BinaryWriter* w) {
  ShardedDiscoverer& disc = *discoverer_;
  DiscoveryEngine::WriteStateHeader(
      w, disc.name(), disc.max_bound_dims(),
      static_cast<int>(disc.subspaces().max_size()), config_.tau,
      config_.rank_facts, disc.storage_policy());
  w->WriteU64(disc.DistinctContexts());
  disc.ForEachContextCount([&](const Constraint& c, uint64_t count) {
    SerializeConstraint(w, c);
    w->WriteU64(count);
  });
  w->WriteU8(1);  // the sharded engine always keeps a µ store
  disc.mutable_store()->SerializeBuckets(w);
}

Status ShardedEngine::Remove(TupleId t) {
  if (t >= relation_->size()) {
    return Status::InvalidArgument("no such tuple");
  }
  if (relation_->IsDeleted(t)) {
    return Status::InvalidArgument("tuple already deleted");
  }
  relation_->MarkDeleted(t);
  // Per-shard counters are decremented inside the repair tasks.
  return discoverer_->Remove(t);
}

StatusOr<ArrivalReport> ShardedEngine::Update(TupleId t, const Row& row) {
  if (row.dimensions.size() !=
          static_cast<size_t>(relation_->schema().num_dimensions()) ||
      row.measures.size() !=
          static_cast<size_t>(relation_->schema().num_measures())) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  Status removed = Remove(t);
  if (!removed.ok()) return removed;
  return Append(row);
}

ArrivalReport ShardedEngine::MergeReport(TupleId t, int slot) {
  ArrivalReport report;
  report.tuple = t;
  for (int s = 0; s < discoverer_->num_shards(); ++s) {
    const ShardedDiscoverer::ShardOutput& out = discoverer_->output(s, slot);
    report.facts.insert(report.facts.end(), out.facts.begin(),
                        out.facts.end());
    report.ranked.insert(report.ranked.end(), out.ranked.begin(),
                         out.ranked.end());
  }
  CanonicalizeFacts(&report.facts);
  if (config_.rank_facts) {
    // Reproduce ProminenceEvaluator::RankAll's order exactly: canonical fact
    // order first, then a stable sort descending by prominence.
    std::sort(report.ranked.begin(), report.ranked.end(),
              [](const RankedFact& a, const RankedFact& b) {
                return a.fact < b.fact;
              });
    std::stable_sort(report.ranked.begin(), report.ranked.end(),
                     [](const RankedFact& a, const RankedFact& b) {
                       return a.prominence > b.prominence;
                     });
    report.prominent = SelectProminent(report.ranked, config_.tau);
  }
  return report;
}

}  // namespace sitfact
