#include "exec/sharded_discoverer.h"

#include <algorithm>
#include <utility>

#include "common/bits.h"
#include "common/logging.h"
#include "lattice/constraint_enumerator.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"
#include "skyline/skyline_compute.h"

namespace sitfact {

ShardedDiscoverer::PrunerBoard::PrunerBoard(int num_subspaces)
    : slots_(static_cast<size_t>(num_subspaces) * kSlots),
      counts_(static_cast<size_t>(num_subspaces)) {
  for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void ShardedDiscoverer::PrunerBoard::Reset() {
  for (size_t m = 0; m < counts_.size(); ++m) {
    int n = counts_[m].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (n > kSlots) n = kSlots;
    for (int i = 0; i < n; ++i) {
      slots_[m * kSlots + static_cast<size_t>(i)].store(
          0, std::memory_order_relaxed);
    }
    counts_[m].store(0, std::memory_order_relaxed);
  }
}

void ShardedDiscoverer::PrunerBoard::Publish(int subspace_index,
                                             DimMask agree_mask) {
  if (IsPruned(subspace_index, agree_mask)) return;  // already covered
  int slot = counts_[static_cast<size_t>(subspace_index)].fetch_add(
      1, std::memory_order_relaxed);
  if (slot >= kSlots) return;  // board full: weaker pruning, same results
  slots_[static_cast<size_t>(subspace_index) * kSlots +
         static_cast<size_t>(slot)]
      .store(agree_mask + 1, std::memory_order_release);
}

bool ShardedDiscoverer::PrunerBoard::IsPruned(int subspace_index,
                                              DimMask mask) const {
  int n = counts_[static_cast<size_t>(subspace_index)].load(
      std::memory_order_acquire);
  if (n > kSlots) n = kSlots;
  for (int i = 0; i < n; ++i) {
    uint32_t v = slots_[static_cast<size_t>(subspace_index) * kSlots +
                        static_cast<size_t>(i)]
                     .load(std::memory_order_acquire);
    // v == 0: publication in flight; treating it as absent is safe.
    if (v != 0 && IsSubsetOf(mask, v - 1)) return true;
  }
  return false;
}

ShardedDiscoverer::ShardedDiscoverer(const Relation* relation,
                                     const DiscoveryOptions& options,
                                     int num_shards, int num_threads)
    : Discoverer(relation, options), board_(universe_.size()) {
  SITFACT_CHECK(num_shards >= 1);
  int nd = relation->schema().num_dimensions();
  std::vector<DimMask> descending = MasksByDescendingBound(nd, max_bound_);
  // More shards than lattice nodes would leave empty shards, and the uint8_t
  // segment routing table caps at 256 segments; clamp rather than reject
  // (beyond a few dozen shards the extra partitions buy nothing anyway).
  if (static_cast<size_t>(num_shards) > descending.size()) {
    num_shards = static_cast<int>(descending.size());
  }
  if (num_shards > kMaxShards) num_shards = kMaxShards;

  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(max_bound_));
  }
  std::vector<uint8_t> segment_of_mask(static_cast<size_t>(FullMask(nd)) + 1,
                                       0);
  // Round-robin in descending-popcount order: each shard gets an even mix of
  // lattice levels, which is what balances per-arrival work.
  for (size_t i = 0; i < descending.size(); ++i) {
    int s = static_cast<int>(i) % num_shards;
    shards_[s]->masks.push_back(descending[i]);
    segment_of_mask[descending[i]] = static_cast<uint8_t>(s);
  }
  store_ = std::make_unique<SegmentedMuStore>(
      num_shards, std::move(segment_of_mask), options.storage);
  if (num_threads <= 0) num_threads = num_shards;
  pool_ = std::make_unique<ThreadPool>(num_threads);
}

ShardedDiscoverer::~ShardedDiscoverer() {
  if (arrival_pending_) WaitArrival();
}

void ShardedDiscoverer::Discover(TupleId t, std::vector<SkylineFact>* facts) {
  StartArrival(t, /*rank=*/false, /*slot=*/0);
  WaitArrival();
  for (int s = 0; s < num_shards(); ++s) {
    const ShardOutput& out = output(s, 0);
    facts->insert(facts->end(), out.facts.begin(), out.facts.end());
  }
}

void ShardedDiscoverer::StartArrival(TupleId t, bool rank, int slot) {
  SITFACT_CHECK_MSG(!arrival_pending_, "StartArrival without WaitArrival");
  SITFACT_DCHECK(t + 1 == relation_->size());
  ++stats_.arrivals;
  board_.Reset();
  pending_tuple_ = t;
  arrival_pending_ = true;
  pool_->Launch(num_shards(), [this, t, rank, slot](int shard) {
    RunShardArrival(shard, t, rank, slot);
  });
}

void ShardedDiscoverer::WaitArrival() {
  if (!arrival_pending_) return;
  pool_->Wait();
  arrival_pending_ = false;
  FoldShardStats();
}

void ShardedDiscoverer::FoldShardStats() {
  uint64_t comparisons = 0;
  uint64_t traversed = 0;
  for (const auto& shard : shards_) {
    comparisons += shard->stats.comparisons;
    traversed += shard->stats.constraints_traversed;
  }
  stats_.comparisons = comparisons;
  stats_.constraints_traversed = traversed;
}

void ShardedDiscoverer::RunShardArrival(int shard, TupleId t, bool rank,
                                        int slot) {
  const Relation& r = *relation_;
  Shard& sh = *shards_[shard];
  MuStore* segment = store_->segment(shard);
  ShardOutput& out = sh.out[slot];
  out.facts.clear();
  out.ranked.clear();

  // The arrival joins |σ_C(R)| for every owned constraint it satisfies —
  // which is all of them (owned masks are lifted with t's own values).
  sh.counter.OnArrivalMasks(r, t, sh.masks);

  const std::vector<MeasureMask>& subspaces = universe_.masks();
  for (DimMask mask : sh.masks) {
    Constraint c = Constraint::ForTuple(r, t, mask);
    MuStore::Context* ctx = segment->Find(c);
    for (size_t mi = 0; mi < subspaces.size(); ++mi) {
      MeasureMask m = subspaces[mi];
      int m_idx = static_cast<int>(mi);
      if (board_.IsPruned(m_idx, mask)) continue;
      ++sh.stats.constraints_traversed;

      BucketCursor cursor;
      cursor.Open(ctx, m, &sh.scratch);
      std::vector<TupleId>& bucket = cursor.contents();
      bool dominated = false;
      bool modified = false;
      size_t keep = 0;
      BlockedPartitionScan scan(r, t, bucket.data(), bucket.size(), m,
                                /*unmasked=*/false);
      for (size_t i = 0; i < bucket.size(); ++i) {
        TupleId other = bucket[i];
        ++sh.stats.comparisons;
        const Relation::MeasurePartition& p = scan.at(i);
        if (DominatedInSubspace(p, m)) {
          // t loses at C — and at every constraint where `other` also
          // appears, i.e. every subset of the agreement mask (Prop. 3).
          // Publish that so all shards skip the doomed ancestors. Nothing
          // can have been dropped before a dominator (skyline members
          // never dominate each other), so the bucket is untouched.
          dominated = true;
          board_.Publish(m_idx, r.AgreeMask(t, other));
          break;
        }
        if (DominatesInSubspace(p, m)) {
          modified = true;  // dethroned by the arrival
        } else {
          bucket[keep++] = other;
        }
      }

      if (!dominated) {
        bucket.resize(keep);
        out.facts.push_back(SkylineFact{c, m});
        bucket.push_back(t);
        modified = true;
      } else {
        SITFACT_DCHECK(!modified);
      }
      if (modified) {
        if (ctx == nullptr) ctx = segment->GetOrCreate(c);
        cursor.Commit(ctx);
      }
    }
  }

  if (rank) {
    out.ranked.reserve(out.facts.size());
    for (const SkylineFact& f : out.facts) {
      MuStore::Context* ctx = segment->Find(f.constraint);
      SITFACT_DCHECK(ctx != nullptr);
      RankedFact rf;
      rf.fact = f;
      rf.context_size = sh.counter.Count(f.constraint);
      rf.skyline_size = ctx->Size(f.subspace);
      rf.prominence = rf.skyline_size == 0
                          ? 0.0
                          : static_cast<double>(rf.context_size) /
                                static_cast<double>(rf.skyline_size);
      out.ranked.push_back(rf);
    }
  }
}

Status ShardedDiscoverer::Remove(TupleId t) {
  const Relation& r = *relation_;
  if (t >= r.size()) {
    return Status::InvalidArgument("no such tuple");
  }
  if (!r.IsDeleted(t)) {
    return Status::InvalidArgument(
        "tuple must be tombstoned (Relation::MarkDeleted) before Remove");
  }
  SITFACT_CHECK_MSG(!arrival_pending_, "Remove during a pending arrival");
  pool_->ParallelFor(num_shards(),
                     [this, t](int shard) { RepairShardAfterRemoval(shard, t); });
  return Status::Ok();
}

void ShardedDiscoverer::RepairShardAfterRemoval(int shard, TupleId t) {
  const Relation& r = *relation_;
  Shard& sh = *shards_[shard];
  MuStore* segment = store_->segment(shard);
  sh.counter.OnRemovalMasks(r, t, sh.masks);
  // Invariant 1 repair (see LatticeDiscovererBase::Remove): only buckets
  // that stored t can change, and they are recomputed from the live
  // relation.
  for (DimMask mask : sh.masks) {
    Constraint c = Constraint::ForTuple(r, t, mask);
    MuStore::Context* ctx = segment->Find(c);
    if (ctx == nullptr) continue;
    for (MeasureMask m : universe_.masks()) {
      if (ctx->Empty(m) || !ctx->Contains(m, t)) continue;
      ctx->Write(m, ComputeContextualSkyline(r, c, m, r.size()));
    }
  }
}

void ShardedDiscoverer::CountArrival(TupleId t) {
  for (auto& shard : shards_) {
    shard->counter.OnArrivalMasks(*relation_, t, shard->masks);
  }
}

void ShardedDiscoverer::CountRemoval(TupleId t) {
  for (auto& shard : shards_) {
    shard->counter.OnRemovalMasks(*relation_, t, shard->masks);
  }
}

uint64_t ShardedDiscoverer::ContextCount(const Constraint& c) const {
  DimMask mask = c.bound_mask();
  return shards_[static_cast<size_t>(store_->SegmentOf(mask))]->counter.Count(
      c);
}

void ShardedDiscoverer::ForEachContextCount(
    const std::function<void(const Constraint&, uint64_t)>& fn) const {
  for (const auto& shard : shards_) {
    shard->counter.ForEach(fn);
  }
}

uint64_t ShardedDiscoverer::DistinctContexts() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->counter.distinct_contexts();
  return total;
}

void ShardedDiscoverer::RestoreContextCount(const Constraint& c,
                                            uint64_t count) {
  DimMask mask = c.bound_mask();
  shards_[static_cast<size_t>(store_->SegmentOf(mask))]->counter.Restore(
      c, count);
}

size_t ShardedDiscoverer::ApproxMemoryBytes() const {
  size_t total = store_->ApproxMemoryBytes();
  for (const auto& shard : shards_) {
    total += shard->counter.ApproxMemoryBytes();
    total += shard->masks.size() * sizeof(DimMask);
  }
  return total;
}

}  // namespace sitfact
