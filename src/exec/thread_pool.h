#ifndef SITFACT_EXEC_THREAD_POOL_H_
#define SITFACT_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sitfact {

/// Fixed-size pool specialised for the per-arrival fork/join pattern of the
/// sharded engine: one outstanding index-parallel task at a time, launched
/// and awaited by a single caller thread.
///
/// The split Launch()/Wait() API exists so the caller can overlap its own
/// work (merging the previous arrival's shard outputs) with the workers'
/// current arrival; Wait() additionally lets the caller steal unclaimed
/// indices, so a Launch+Wait pair with no interleaved work behaves like a
/// plain parallel-for over threads()+1 executors.
///
/// Index claims are validated against the launch generation under the pool
/// mutex, so a worker that wakes up late for an already-finished launch can
/// never run (or mis-claim) indices of the next one. With per-index work in
/// the tens of microseconds and index counts in the tens, the per-claim lock
/// is noise.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Starts fn(i) for i in [0, n) on the workers and returns immediately.
  /// `fn` is copied into the pool and stays alive until the launch
  /// completes. Exactly one launch may be outstanding; callers pair every
  /// Launch with a Wait.
  void Launch(int n, std::function<void(int)> fn);

  /// Blocks until every index of the outstanding launch has completed,
  /// executing unclaimed indices on the calling thread first. No-op when
  /// nothing is outstanding.
  void Wait();

  /// Launch + Wait.
  void ParallelFor(int n, std::function<void(int)> fn);

 private:
  void WorkerLoop();

  /// Claims the next index of generation `gen`; false when that launch has
  /// no indices left (or has already finished).
  bool ClaimIndex(uint64_t gen, int* index);

  /// Claim-execute loop shared by workers and Wait(); returns indices run.
  int RunIndices(uint64_t gen, const std::function<void(int)>& fn);

  /// Reports `ran` finished indices; flips active_ when the launch is done.
  void ReportFinished(int ran);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for completion
  std::function<void(int)> task_;     // valid while active_
  int task_n_ = 0;
  int next_index_ = 0;
  int completed_ = 0;                 // indices finished this generation
  uint64_t generation_ = 0;
  bool active_ = false;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace sitfact

#endif  // SITFACT_EXEC_THREAD_POOL_H_
