#ifndef SITFACT_CORE_SHARED_TOP_DOWN_H_
#define SITFACT_CORE_SHARED_TOP_DOWN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/top_down.h"

namespace sitfact {

/// STopDown (Algorithm 6). The root pass (STopDownRoot) is a TopDown pass
/// over the full measure space whose comparisons are projected onto every
/// admissible subspace with Prop. 4, recording per-subspace pruners. After
/// the root pass, a subspace's unpruned constraints are exactly the new
/// tuple's skyline constraints there — under Invariant 2 every potential
/// dominator has a representative stored at a constraint the root pass
/// visits, so no further dominance checks on t are needed (this is where
/// STopDown saves the traversals that Fig. 11 shows; SBottomUp cannot make
/// the same claim because its root pass skips pruned regions).
///
/// The per-subspace pass (STopDownNode) visits only unpruned constraints —
/// the down-closed region below the "frontier" of topmost skyline
/// constraints — to (a) report facts, (b) delete tuples the new one
/// dethrones and re-register them at their new maximal constraints, and
/// (c) store t at the frontier, which is precisely MSC^t_M.
class SharedTopDownDiscoverer : public TopDownDiscoverer {
 public:
  SharedTopDownDiscoverer(const Relation* relation,
                          const DiscoveryOptions& options,
                          std::unique_ptr<MuStore> store);
  SharedTopDownDiscoverer(const Relation* relation,
                          const DiscoveryOptions& options);

  std::string_view name() const override { return name_; }

  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;

 protected:
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  class SubspacePruneObserver;

  /// STopDownNode(M): sweep the unpruned region for subspace `m`.
  void RunNodePass(TupleId t, MeasureMask m, const PrunerSet& pruned,
                   std::vector<SkylineFact>* facts);

  std::string name_ = "STopDown";
  std::vector<PrunerSet> subspace_pruned_;
  std::vector<TupleId> node_bucket_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_SHARED_TOP_DOWN_H_
