#include "core/engine.h"

#include <utility>

#include "common/binary_io.h"
#include "common/logging.h"
#include "core/baseline_idx.h"
#include "core/baseline_seq.h"
#include "core/bottom_up.h"
#include "core/brute_force.h"
#include "core/shared_bottom_up.h"
#include "core/shared_top_down.h"
#include "core/top_down.h"
#include "csc/ccsc_discoverer.h"
#include "storage/file_mu_store.h"
#include "storage/memory_mu_store.h"

namespace sitfact {

namespace {

/// FSBottomUp / FSTopDown are the sharing algorithms over a file-backed
/// store; give them their paper names.
class FileSharedBottomUp : public SharedBottomUpDiscoverer {
 public:
  FileSharedBottomUp(const Relation* r, const DiscoveryOptions& o,
                     std::unique_ptr<MuStore> s)
      : SharedBottomUpDiscoverer(r, o, std::move(s)) {
    set_name("FSBottomUp");
  }
};

class FileSharedTopDown : public SharedTopDownDiscoverer {
 public:
  FileSharedTopDown(const Relation* r, const DiscoveryOptions& o,
                    std::unique_ptr<MuStore> s)
      : SharedTopDownDiscoverer(r, o, std::move(s)) {
    set_name("FSTopDown");
  }
};

}  // namespace

StatusOr<std::unique_ptr<Discoverer>> DiscoveryEngine::CreateDiscoverer(
    const std::string& name, const Relation* relation,
    const DiscoveryOptions& options, const std::string& file_store_dir) {
  if (name == "BruteForce") {
    return std::unique_ptr<Discoverer>(
        new BruteForceDiscoverer(relation, options));
  }
  if (name == "BaselineSeq") {
    return std::unique_ptr<Discoverer>(
        new BaselineSeqDiscoverer(relation, options));
  }
  if (name == "BaselineIdx") {
    return std::unique_ptr<Discoverer>(
        new BaselineIdxDiscoverer(relation, options));
  }
  if (name == "C-CSC") {
    return std::unique_ptr<Discoverer>(new CcscDiscoverer(relation, options));
  }
  if (name == "BottomUp") {
    return std::unique_ptr<Discoverer>(
        new BottomUpDiscoverer(relation, options));
  }
  if (name == "TopDown") {
    return std::unique_ptr<Discoverer>(
        new TopDownDiscoverer(relation, options));
  }
  if (name == "SBottomUp") {
    return std::unique_ptr<Discoverer>(
        new SharedBottomUpDiscoverer(relation, options));
  }
  if (name == "STopDown") {
    return std::unique_ptr<Discoverer>(
        new SharedTopDownDiscoverer(relation, options));
  }
  if (name == "FSBottomUp" || name == "FSTopDown") {
    if (file_store_dir.empty()) {
      return Status::InvalidArgument(name +
                                     " requires a file_store_dir");
    }
    auto store = std::make_unique<FileMuStore>(file_store_dir);
    if (name == "FSBottomUp") {
      return std::unique_ptr<Discoverer>(
          new FileSharedBottomUp(relation, options, std::move(store)));
    }
    return std::unique_ptr<Discoverer>(
        new FileSharedTopDown(relation, options, std::move(store)));
  }
  return Status::NotFound("unknown discoverer: " + name);
}

DiscoveryEngine::DiscoveryEngine(Relation* relation,
                                 std::unique_ptr<Discoverer> discoverer,
                                 const Config& config)
    : relation_(relation),
      discoverer_(std::move(discoverer)),
      config_(config),
      counter_(discoverer_->max_bound_dims()) {
  if (config_.rank_facts) {
    SITFACT_CHECK_MSG(discoverer_->store() != nullptr,
                      "prominence ranking needs a µ-store algorithm");
  }
  // The skyband shadow rides along from the first arrival when the store
  // notifies (in-memory stores); attaching before any restore keeps it
  // coherent through DeserializeBuckets, which writes through the observed
  // Context API. File-backed stores never notify — a live engine over one
  // serves prominence from the store as before.
  MuStore* store = discoverer_->mutable_store();
  if (config_.rank_facts && store != nullptr && store->NotifiesObservers() &&
      SkybandIndexEnabledFromEnv()) {
    skyband_ = std::make_unique<SkybandIndex>();
    skyband_->Attach(store, discoverer_->storage_policy(),
                     discoverer_->max_bound_dims(),
                     static_cast<int>(discoverer_->subspaces().max_size()));
  }
}

ArrivalReport DiscoveryEngine::Append(const Row& row) {
  relation_->Append(row);
  return DiscoverLast();
}

Status DiscoveryEngine::Remove(TupleId t) {
  if (!discoverer_->SupportsRemoval()) {
    return Status::Unimplemented(std::string(discoverer_->name()) +
                                 " does not support deletion");
  }
  if (t >= relation_->size()) {
    return Status::InvalidArgument("no such tuple");
  }
  if (relation_->IsDeleted(t)) {
    return Status::InvalidArgument("tuple already deleted");
  }
  relation_->MarkDeleted(t);
  counter_.OnRemoval(*relation_, t);
  return discoverer_->Remove(t);
}

StatusOr<ArrivalReport> DiscoveryEngine::Update(TupleId t, const Row& row) {
  if (row.dimensions.size() !=
          static_cast<size_t>(relation_->schema().num_dimensions()) ||
      row.measures.size() !=
          static_cast<size_t>(relation_->schema().num_measures())) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  Status removed = Remove(t);
  if (!removed.ok()) return removed;
  return Append(row);
}

void DiscoveryEngine::WriteStateHeader(BinaryWriter* w, std::string_view name,
                                       int max_bound_dims,
                                       int max_measure_dims, double tau,
                                       bool rank_facts, StoragePolicy policy) {
  w->WriteString(std::string(name));
  w->WriteU32(static_cast<uint32_t>(max_bound_dims));
  w->WriteU32(static_cast<uint32_t>(max_measure_dims));
  w->WriteF64(tau);
  w->WriteU8(rank_facts ? 1 : 0);
  w->WriteU8(static_cast<uint8_t>(policy));
}

void DiscoveryEngine::SerializeState(BinaryWriter* w) {
  Discoverer& disc = *discoverer_;
  WriteStateHeader(w, disc.name(), disc.max_bound_dims(),
                   static_cast<int>(disc.subspaces().max_size()), config_.tau,
                   config_.rank_facts, disc.storage_policy());
  counter_.Serialize(w);
  MuStore* store = disc.mutable_store();
  w->WriteU8(store != nullptr ? 1 : 0);
  if (store != nullptr) store->SerializeBuckets(w);
}

ArrivalReport DiscoveryEngine::DiscoverLast() {
  SITFACT_CHECK(relation_->size() > 0);
  TupleId t = relation_->size() - 1;
  ArrivalReport report;
  report.tuple = t;
  counter_.OnArrival(*relation_, t);
  discoverer_->Discover(t, &report.facts);
  CanonicalizeFacts(&report.facts);
  if (config_.rank_facts) {
    ProminenceEvaluator evaluator(relation_, &counter_,
                                  discoverer_->mutable_store(),
                                  discoverer_->storage_policy());
    evaluator.set_skyband(skyband_.get());
    report.ranked = evaluator.RankAll(report.facts);
    report.prominent = SelectProminent(report.ranked, config_.tau);
  }
  return report;
}

}  // namespace sitfact
