#include "core/kskyband.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"
#include "skyline/dominance_batch.h"

namespace sitfact {

KSkybandDiscoverer::KSkybandDiscoverer(const Relation* relation,
                                       const Options& options)
    : relation_(relation),
      options_(options),
      max_bound_(options.max_bound_dims < 0
                     ? relation->schema().num_dimensions()
                     : options.max_bound_dims),
      universe_(relation->schema().num_measures(),
                options.max_measure_dims < 0
                    ? relation->schema().num_measures()
                    : options.max_measure_dims) {
  SITFACT_CHECK(relation != nullptr);
  SITFACT_CHECK_MSG(options.k >= 1, "k-skyband requires k >= 1");
}

void KSkybandDiscoverer::Discover(TupleId t,
                                  std::vector<KSkybandFact>* facts) {
  const Relation& r = *relation_;
  const int num_dims = r.schema().num_dimensions();
  const DimMask full_dims = FullMask(num_dims);
  const size_t num_subspaces = static_cast<size_t>(universe_.size());

  counts_.assign((static_cast<size_t>(full_dims) + 1) * num_subspaces, 0);
  context_.assign(static_cast<size_t>(full_dims) + 1, 0);
  transformed_ = false;
  ++stats_.arrivals;

  // Pass 1: bucket every history tuple by its agreement mask with t, and
  // within the bucket count dominators per admissible subspace (Prop. 4).
  // Partitions and agreement masks come from the batched column-wise
  // kernels, one block of history at a time.
  Relation::MeasurePartition parts[kDominanceBlockSize];
  DimMask agrees[kDominanceBlockSize];
  for (TupleId base = 0; base < r.size();
       base += static_cast<TupleId>(kDominanceBlockSize)) {
    TupleId n = std::min<TupleId>(static_cast<TupleId>(kDominanceBlockSize),
                                  r.size() - base);
    PartitionRange(r, t, base, base + n, parts);
    AgreeMaskRange(r, t, base, base + n, agrees);
    for (TupleId i = 0; i < n; ++i) {
      TupleId other = base + i;
      if (other == t || r.IsDeleted(other)) continue;
      ++context_[agrees[i]];
      const Relation::MeasurePartition& p = parts[i];
      ++stats_.comparisons;
      if (p.worse == 0) continue;  // dominates t in no subspace
      uint32_t* row = counts_.data() + static_cast<size_t>(agrees[i]) *
                                           num_subspaces;
      for (size_t i2 = 0; i2 < num_subspaces; ++i2) {
        MeasureMask m = universe_.masks()[i2];
        if ((m & p.worse) != 0 && (m & p.better) == 0) ++row[i2];
      }
    }
  }

  // Pass 2: zeta transform (subset-sum from supersets): after this,
  // counts_[c][i] = Σ_{a ⊇ c} raw[a][i] — the dominator count of t within
  // σ_C(R) for the constraint with bound mask c — and context_[c] likewise
  // the context size (minus t itself).
  for (int d = 0; d < num_dims; ++d) {
    const DimMask bit = DimMask{1} << d;
    for (DimMask mask = 0; mask <= full_dims; ++mask) {
      if ((mask & bit) != 0) continue;
      const uint32_t* from =
          counts_.data() + static_cast<size_t>(mask | bit) * num_subspaces;
      uint32_t* into = counts_.data() + static_cast<size_t>(mask) *
                                            num_subspaces;
      for (size_t i = 0; i < num_subspaces; ++i) into[i] += from[i];
      context_[mask] += context_[mask | bit];
    }
  }
  transformed_ = true;

  // Pass 3: report every (C, M) with fewer than k dominators. C^t is
  // exactly the set of bound masks (every bound attribute carries t's
  // value), truncated by the d̂ cap.
  const uint32_t k = static_cast<uint32_t>(options_.k);
  for (DimMask mask = 0; mask <= full_dims; ++mask) {
    if (PopCount(mask) > max_bound_) continue;
    ++stats_.constraints_traversed;
    const uint32_t* row =
        counts_.data() + static_cast<size_t>(mask) * num_subspaces;
    for (size_t i = 0; i < num_subspaces; ++i) {
      if (row[i] < k) {
        KSkybandFact out;
        out.fact.constraint = Constraint::ForTuple(r, t, mask);
        out.fact.subspace = universe_.masks()[i];
        out.dominators = row[i];
        facts->push_back(out);
      }
    }
  }
}

uint32_t KSkybandDiscoverer::LastDominatorCount(DimMask bound,
                                                MeasureMask m) const {
  SITFACT_CHECK_MSG(transformed_, "Discover() has not run");
  int idx = universe_.IndexOf(m);
  SITFACT_CHECK_MSG(idx >= 0, "subspace not admissible");
  return counts_[static_cast<size_t>(bound) *
                     static_cast<size_t>(universe_.size()) +
                 static_cast<size_t>(idx)];
}

uint32_t KSkybandDiscoverer::LastContextSize(DimMask bound) const {
  SITFACT_CHECK_MSG(transformed_, "Discover() has not run");
  // +1: the discovered tuple itself belongs to every constraint it satisfies.
  return context_[bound] + 1;
}

}  // namespace sitfact
