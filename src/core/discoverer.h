#ifndef SITFACT_CORE_DISCOVERER_H_
#define SITFACT_CORE_DISCOVERER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/fact.h"
#include "lattice/subspace_universe.h"
#include "relation/relation.h"
#include "storage/mu_store.h"
#include "storage/storage_options.h"

namespace sitfact {

/// Search-space truncation knobs (Sec. VI-A), plus storage selection.
struct DiscoveryOptions {
  /// The paper's d̂: maximum bound dimension attributes per constraint.
  /// -1 means "all dimensions".
  int max_bound_dims = -1;

  /// The paper's m̂: maximum measure-subspace size. -1 means "all measures".
  int max_measure_dims = -1;

  /// µ-store backend for the store-keeping algorithms (BottomUp/TopDown
  /// families and the sharded engine's segments): in-memory by default, or
  /// the out-of-core paged store (--storage paged --cache-mb N). Ignored by
  /// the baselines (no store) and the explicitly file-backed FS* variants.
  StorageConfig storage;
};

/// Work counters matching the paper's Fig. 11 metrics, cumulative over the
/// stream.
struct DiscoveryStats {
  uint64_t arrivals = 0;
  /// Tuple-pair dominance evaluations (Fig. 11a "Number of Comparisons").
  uint64_t comparisons = 0;
  /// (constraint, subspace) lattice visits (Fig. 11b "Traversed Constraints").
  uint64_t constraints_traversed = 0;
};

/// Incremental situational-fact discovery: upon each arrival, produce every
/// (C, M) pair that admits the new tuple into the contextual skyline.
///
/// Protocol: append the tuple to the shared Relation first, then call
/// Discover(t). Implementations treat tuples [0, t) as history and update
/// any internal state (µ buckets, k-d tree, skycubes) to include t before
/// returning, so the next arrival sees a consistent world.
class Discoverer {
 public:
  Discoverer(const Relation* relation, const DiscoveryOptions& options);
  virtual ~Discoverer() = default;

  Discoverer(const Discoverer&) = delete;
  Discoverer& operator=(const Discoverer&) = delete;

  virtual std::string_view name() const = 0;

  /// Computes S_t for tuple `t` (which must be relation->size() - 1, i.e.
  /// just appended) and folds `t` into internal state. Facts are appended to
  /// *facts in no particular order; use CanonicalizeFacts to compare.
  virtual void Discover(TupleId t, std::vector<SkylineFact>* facts) = 0;

  /// Deletion extension (the paper's stated future work). The caller first
  /// tombstones the tuple (Relation::MarkDeleted — DiscoveryEngine::Remove
  /// does both steps); Remove then repairs internal state so subsequent
  /// discovery behaves as if the tuple had never arrived. Deletion is a
  /// rare administrative operation in the append-mostly model, so repairs
  /// may rescan affected contexts (documented slow path). Every built-in
  /// algorithm supports removal (C-CSC replays the survivors of each
  /// affected context); third-party discoverers that keep the default
  /// return Unimplemented and are detectable up front via
  /// SupportsRemoval().
  virtual bool SupportsRemoval() const { return false; }
  virtual Status Remove(TupleId t) {
    (void)t;
    return Status::Unimplemented(std::string(name()) +
                                 " does not support deletion");
  }

  /// Snapshot support (io/snapshot.h). An algorithm is restorable when its
  /// whole private state is (a) the µ store, reloaded bucket-by-bucket, plus
  /// (b) whatever RebuildAuxiliary() can recompute from the restored
  /// Relation. C-CSC keeps a bespoke skycube per context and opts out.
  virtual bool SupportsSnapshotRestore() const { return true; }

  /// Recomputes derived structures from the relation after a snapshot load
  /// (e.g. BaselineIdx re-inserts every tuple into its k-d tree). Called
  /// once, after the relation and µ store are in place.
  virtual Status RebuildAuxiliary() { return Status::Ok(); }

  const DiscoveryStats& stats() const { return stats_; }

  /// The µ store backing this algorithm, or nullptr (baselines keep none).
  virtual const MuStore* store() const { return nullptr; }
  virtual MuStore* mutable_store() { return nullptr; }

  /// Which invariant the store follows; meaningful only when store() is
  /// non-null.
  virtual StoragePolicy storage_policy() const {
    return StoragePolicy::kAllSkylineConstraints;
  }

  /// Approximate bytes of all algorithm-private state (Fig. 10a), excluding
  /// the shared Relation.
  virtual size_t ApproxMemoryBytes() const = 0;

  /// Skyline tuples currently materialized (Fig. 10b). Defaults to the µ
  /// store's count; algorithms with private storage (C-CSC) override.
  virtual uint64_t StoredTupleCount() const {
    return store() == nullptr ? 0 : store()->stats().stored_tuples;
  }

  const Relation& relation() const { return *relation_; }
  int max_bound_dims() const { return max_bound_; }
  const SubspaceUniverse& subspaces() const { return universe_; }

 protected:
  const Relation* relation_;
  int max_bound_;              // resolved d̂
  SubspaceUniverse universe_;  // admissible measure subspaces (m̂ applied)
  DiscoveryStats stats_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_DISCOVERER_H_
