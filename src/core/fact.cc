#include "core/fact.h"

#include <algorithm>

#include "common/bits.h"

namespace sitfact {

void CanonicalizeFacts(std::vector<SkylineFact>* facts) {
  std::sort(facts->begin(), facts->end());
}

std::string SubspaceToString(const Relation& r, MeasureMask m) {
  std::string out = "{";
  bool first = true;
  ForEachBit(m, [&](int j) {
    if (!first) out += ", ";
    out += r.schema().measure(j).name;
    first = false;
  });
  out += "}";
  return out;
}

std::string FactToString(const Relation& r, const SkylineFact& fact) {
  return "(" + fact.constraint.ToPredicateString(r) + ") x " +
         SubspaceToString(r, fact.subspace);
}

}  // namespace sitfact
