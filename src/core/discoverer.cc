#include "core/discoverer.h"

#include "common/logging.h"

namespace sitfact {

namespace {

int ResolveMaxBound(const Relation& r, int requested) {
  int nd = r.schema().num_dimensions();
  if (requested < 0 || requested > nd) return nd;
  SITFACT_CHECK_MSG(requested >= 0, "max_bound_dims must be >= -1");
  return requested;
}

int ResolveMaxMeasures(const Relation& r, int requested) {
  int nm = r.schema().num_measures();
  if (requested < 0 || requested > nm) return nm;
  SITFACT_CHECK_MSG(requested >= 1, "max_measure_dims must be >= 1 or -1");
  return requested;
}

}  // namespace

Discoverer::Discoverer(const Relation* relation,
                       const DiscoveryOptions& options)
    : relation_(relation),
      max_bound_(ResolveMaxBound(*relation, options.max_bound_dims)),
      universe_(relation->schema().num_measures(),
                ResolveMaxMeasures(*relation, options.max_measure_dims)) {}

}  // namespace sitfact
