#include "core/baseline_idx.h"

#include "lattice/constraint_enumerator.h"
#include "lattice/pruner_set.h"
#include "skyline/dominance.h"

namespace sitfact {

BaselineIdxDiscoverer::BaselineIdxDiscoverer(const Relation* relation,
                                             const DiscoveryOptions& options)
    : Discoverer(relation, options),
      masks_(MasksByAscendingBound(relation->schema().num_dimensions(),
                                   max_bound_)),
      tree_(relation) {}

void BaselineIdxDiscoverer::Discover(TupleId t,
                                     std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  const Relation& r = *relation_;
  PrunerSet pruned;
  for (MeasureMask m : universe_.masks()) {
    pruned.Clear();
    tree_.VisitDominators(t, m, [&](TupleId cand) {
      if (r.IsDeleted(cand)) return true;  // tombstoned; still in the tree
      ++stats_.comparisons;
      // The range query returns weak dominators (>= on all of M); skyline
      // dominance additionally needs a strict improvement somewhere in M.
      if (Dominates(r, cand, t, m)) {
        pruned.Add(r.AgreeMask(t, cand));
      }
      return true;
    });
    for (DimMask mask : masks_) {
      ++stats_.constraints_traversed;
      if (!pruned.IsPruned(mask)) {
        facts->push_back(
            SkylineFact{Constraint::ForTuple(r, t, mask), m});
      }
    }
  }
  tree_.Insert(t);
}

}  // namespace sitfact
