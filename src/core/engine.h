#ifndef SITFACT_CORE_ENGINE_H_
#define SITFACT_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/discoverer.h"
#include "core/prominence.h"
#include "relation/relation.h"
#include "skyline/skyband_index.h"
#include "storage/context_counter.h"

namespace sitfact {

/// Everything the engine derives from one arrival.
struct ArrivalReport {
  TupleId tuple = 0;
  /// S_t, canonicalized.
  std::vector<SkylineFact> facts;
  /// Facts with prominence, sorted descending (empty when ranking is off).
  std::vector<RankedFact> ranked;
  /// The paper's prominent facts: top prominence if >= tau (ties included).
  std::vector<RankedFact> prominent;
};

/// Facade tying together the relation, a discovery algorithm, the context
/// counter and prominence ranking: feed rows, get narratable facts. This is
/// the API the examples use.
class DiscoveryEngine {
 public:
  struct Config {
    DiscoveryOptions options;
    /// Prominence threshold τ; facts below it are never "prominent".
    double tau = 0.0;
    /// Compute prominence for every fact (requires the algorithm to keep a
    /// µ store — true for BottomUp/TopDown families, false for baselines).
    bool rank_facts = true;
  };

  /// Factory for a discoverer by paper name: BruteForce, BaselineSeq,
  /// BaselineIdx, C-CSC, BottomUp, TopDown, SBottomUp, STopDown,
  /// FSBottomUp, FSTopDown. File-backed variants place bucket files under
  /// `file_store_dir` (required for them).
  static StatusOr<std::unique_ptr<Discoverer>> CreateDiscoverer(
      const std::string& name, const Relation* relation,
      const DiscoveryOptions& options, const std::string& file_store_dir = "");

  /// `relation` must outlive the engine.
  DiscoveryEngine(Relation* relation, std::unique_ptr<Discoverer> discoverer,
                  const Config& config);

  /// Appends `row` and discovers its facts.
  ArrivalReport Append(const Row& row);

  /// Runs discovery for a tuple already appended to the relation (it must be
  /// the most recent one).
  ArrivalReport DiscoverLast();

  /// Deletion extension (the paper's future work): tombstones `t`, fixes the
  /// context cardinalities, and repairs the algorithm's state. Fails without
  /// side effects when the algorithm lacks removal support or `t` is not a
  /// live tuple.
  Status Remove(TupleId t);

  /// Update extension (the other half of the paper's "deletion and update"
  /// future work): logically replaces live tuple `t` with `row`. In the
  /// append-only model an update is a remove + re-append, so the corrected
  /// row receives a fresh TupleId (returned inside the report) and is
  /// re-evaluated as the newest arrival — matching the journalism use case
  /// of correcting an erroneous stat line after publication. Fails without
  /// side effects under the same conditions as Remove.
  StatusOr<ArrivalReport> Update(TupleId t, const Row& row);

  Relation& relation() { return *relation_; }
  Discoverer& discoverer() { return *discoverer_; }

  /// The µ-side skyband shadow: attached when ranking is on, the algorithm
  /// keeps a notifying (in-memory) store, and SITFACT_SKYBAND_INDEX is not
  /// "off". Null otherwise (baselines, file stores, escape hatch) — every
  /// consumer falls back to store reads. Prominence denominators are served
  /// from it when present; forward queries may probe it via
  /// SkylineQueryEngine's skyband-aware overload.
  const SkybandIndex* skyband_index() const { return skyband_.get(); }

  const ContextCounter& counter() const { return counter_; }
  /// Snapshot restore needs to repopulate the counter in place.
  ContextCounter& mutable_counter() { return counter_; }
  const Config& config() const { return config_; }

  /// Checkpoint hook: writes the engine-state section of a snapshot —
  /// algorithm name, resolved truncation knobs, prominence config, the
  /// context counter, and the µ-store bucket dump. io/snapshot.cc frames it
  /// into a full snapshot file; persist/ reuses the same section for
  /// checkpoints (see docs/persistence.md for the byte layout).
  void SerializeState(BinaryWriter* w);

  /// Shared framing of the section's fixed-field prefix. Both engine kinds
  /// (here and ShardedEngine::SerializeState) MUST write it through this
  /// one function — the loaders parse it positionally and snapshots restore
  /// across engine kinds, so two independent writer copies would be a
  /// format fork waiting to happen.
  static void WriteStateHeader(BinaryWriter* w, std::string_view name,
                               int max_bound_dims, int max_measure_dims,
                               double tau, bool rank_facts,
                               StoragePolicy policy);

 private:
  Relation* relation_;
  std::unique_ptr<Discoverer> discoverer_;
  Config config_;
  ContextCounter counter_;
  /// Declared after discoverer_: destruction detaches from the store, which
  /// must still be alive.
  std::unique_ptr<SkybandIndex> skyband_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_ENGINE_H_
