#include "core/prominence.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace sitfact {

ProminenceEvaluator::ProminenceEvaluator(const Relation* relation,
                                         const ContextCounter* counter,
                                         MuStore* store, StoragePolicy policy)
    : relation_(relation), counter_(counter), store_(store), policy_(policy) {}

uint64_t ProminenceEvaluator::SkylineSize(const SkylineFact& fact) {
  const Constraint& c = fact.constraint;
  MeasureMask m = fact.subspace;
  if (skyband_ != nullptr) {
    return skyband_->SkylineSizeFor(*relation_, c, m);
  }
  if (policy_ == StoragePolicy::kAllSkylineConstraints) {
    MuStore::Context* ctx = store_->Find(c);
    return ctx == nullptr ? 0 : ctx->Size(m);
  }
  // Invariant 2: λ_M(σ_C(R)) = tuples satisfying C that are stored at some
  // ancestor-or-self of C. A tuple may sit at two incomparable maximal
  // constraints that both subsume C, so the union deduplicates.
  union_scratch_.clear();
  ForEachSubset(c.bound_mask(), [&](DimMask sub) {
    Constraint anc = c.Restrict(sub);
    MuStore::Context* ctx = store_->Find(anc);
    if (ctx == nullptr || ctx->Empty(m)) return;
    ctx->Read(m, &scratch_);
    for (TupleId t : scratch_) {
      if (sub == c.bound_mask() || c.SatisfiedBy(*relation_, t)) {
        union_scratch_.push_back(t);
      }
    }
  });
  std::sort(union_scratch_.begin(), union_scratch_.end());
  union_scratch_.erase(
      std::unique(union_scratch_.begin(), union_scratch_.end()),
      union_scratch_.end());
  return union_scratch_.size();
}

RankedFact ProminenceEvaluator::Evaluate(const SkylineFact& fact) {
  RankedFact out;
  out.fact = fact;
  out.context_size = counter_->Count(fact.constraint);
  out.skyline_size = SkylineSize(fact);
  SITFACT_DCHECK(out.skyline_size > 0);
  out.prominence = out.skyline_size == 0
                       ? 0.0
                       : static_cast<double>(out.context_size) /
                             static_cast<double>(out.skyline_size);
  return out;
}

std::vector<RankedFact> ProminenceEvaluator::RankAll(
    std::vector<SkylineFact> facts) {
  CanonicalizeFacts(&facts);
  std::vector<RankedFact> ranked;
  ranked.reserve(facts.size());
  for (const SkylineFact& f : facts) ranked.push_back(Evaluate(f));
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedFact& a, const RankedFact& b) {
                     return a.prominence > b.prominence;
                   });
  return ranked;
}

std::vector<RankedFact> SelectProminent(const std::vector<RankedFact>& ranked,
                                        double tau) {
  std::vector<RankedFact> out;
  if (ranked.empty()) return out;
  double best = ranked.front().prominence;
  if (best < tau) return out;
  for (const RankedFact& f : ranked) {
    if (f.prominence < best) break;
    out.push_back(f);
  }
  return out;
}

}  // namespace sitfact
