#ifndef SITFACT_CORE_BASELINE_IDX_H_
#define SITFACT_CORE_BASELINE_IDX_H_

#include <vector>

#include "core/discoverer.h"
#include "skyline/kdtree.h"

namespace sitfact {

/// BaselineIdx (Sec. IV): like BaselineSeq, but instead of scanning every
/// historical tuple it pulls dominator candidates from a k-d tree over the
/// full measure space with the one-sided range query ∧_{mi∈M}(mi >= t.mi),
/// then applies the same Prop. 3 constraint pruning.
class BaselineIdxDiscoverer : public Discoverer {
 public:
  BaselineIdxDiscoverer(const Relation* relation,
                        const DiscoveryOptions& options);

  std::string_view name() const override { return "BaselineIdx"; }
  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;
  size_t ApproxMemoryBytes() const override {
    return tree_.ApproxMemoryBytes();
  }

  /// Deletion needs no structural repair: tombstoned tuples stay in the
  /// k-d tree but are filtered out of every candidate scan.
  bool SupportsRemoval() const override { return true; }
  Status Remove(TupleId t) override {
    if (!relation_->IsDeleted(t)) {
      return Status::InvalidArgument("tuple must be tombstoned first");
    }
    return Status::Ok();
  }

  /// Rebuilds the k-d tree from the restored relation (tombstoned tuples are
  /// re-inserted too: they would have been inserted on arrival, and candidate
  /// scans filter them anyway).
  Status RebuildAuxiliary() override {
    for (TupleId t = 0; t < relation_->size(); ++t) tree_.Insert(t);
    return Status::Ok();
  }

  const KdTree& tree() const { return tree_; }

 private:
  std::vector<DimMask> masks_;
  KdTree tree_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_BASELINE_IDX_H_
