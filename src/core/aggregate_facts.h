#ifndef SITFACT_CORE_AGGREGATE_FACTS_H_
#define SITFACT_CORE_AGGREGATE_FACTS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace sitfact {

/// Situational facts about aggregates — the paper's conclusion lists
/// "aggregates over tuples" as future work, and the introduction motivates
/// it directly: "There were 35 DUI arrests and 20 collisions in city C
/// yesterday, the first time in 2013." That statement is a contextual
/// skyline fact not about one base tuple but about one (city, day) rollup.
///
/// AggregateFactStream turns a base stream into such facts: base rows are
/// grouped by a chosen set of dimension attributes within an explicit
/// period (a day, a game week, a quarter); closing the period emits one
/// aggregate row per active group into an internal derived relation, and
/// each emitted row runs through an ordinary DiscoveryEngine. Everything
/// the library offers for base facts — constraint lattices, measure
/// subspaces, prominence, narration — applies unchanged to the rollups.
class AggregateFactStream {
 public:
  /// One derived measure of the rollup relation.
  struct AggregateSpec {
    enum class Kind { kCount, kSum, kMax, kMin, kMean };
    Kind kind = Kind::kCount;
    /// Base-relation measure index aggregated; ignored for kCount.
    int measure_index = 0;
    /// Output measure attribute name.
    std::string name;
    Direction direction = Direction::kLargerIsBetter;
  };

  struct Config {
    /// Base-relation dimension indices that identify a group (e.g. {city}).
    /// They become dimension attributes of the rollup relation.
    std::vector<int> group_dims;
    /// Name of the extra rollup dimension holding the period label passed
    /// to ClosePeriod (e.g. "day").
    std::string period_name = "period";
    std::vector<AggregateSpec> aggregates;
    /// Discovery algorithm for the rollup stream.
    std::string algorithm = "STopDown";
    DiscoveryOptions options;
    double tau = 0.0;
    bool rank_facts = true;
  };

  /// One rollup arrival: the emitted aggregate row and its discovery report.
  struct AggregateArrival {
    Row row;
    ArrivalReport report;
  };

  /// Validates the config against the base schema (group indices in range,
  /// aggregate measure indices in range, at least one aggregate).
  static StatusOr<std::unique_ptr<AggregateFactStream>> Create(
      const Schema& base_schema, const Config& config);

  /// Accumulates one base row into the open period. The row must match the
  /// base schema's arity.
  void Add(const Row& base_row);

  /// Closes the open period: emits one rollup row per group that received
  /// rows, labeled `period_label`, runs discovery on each, and clears the
  /// accumulators. Emission order is first-touch order, so replays are
  /// deterministic.
  std::vector<AggregateArrival> ClosePeriod(const std::string& period_label);

  /// The derived rollup relation (grows by one row per group per period).
  const Relation& rollup_relation() const { return *relation_; }
  DiscoveryEngine& engine() { return *engine_; }
  const Schema& rollup_schema() const { return relation_->schema(); }

 private:
  struct Accumulator {
    uint64_t count = 0;
    std::vector<double> sum;
    std::vector<double> min;
    std::vector<double> max;
  };

  AggregateFactStream(const Schema& base_schema, const Config& config,
                      Schema rollup_schema);

  Config config_;
  int base_measures_;
  std::unique_ptr<Relation> relation_;
  std::unique_ptr<DiscoveryEngine> engine_;
  /// Group key (joined dimension strings) -> accumulator; insertion order
  /// kept separately for deterministic emission.
  std::unordered_map<std::string, Accumulator> groups_;
  std::vector<std::pair<std::string, std::vector<std::string>>> order_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_AGGREGATE_FACTS_H_
