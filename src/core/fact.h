#ifndef SITFACT_CORE_FACT_H_
#define SITFACT_CORE_FACT_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "lattice/constraint.h"
#include "relation/relation.h"

namespace sitfact {

/// One situational fact for a newly arrived tuple: a constraint-measure pair
/// (C, M) whose contextual skyline contains the tuple. The set of these for
/// an arrival is the paper's S_t.
struct SkylineFact {
  Constraint constraint;
  MeasureMask subspace = 0;

  friend bool operator==(const SkylineFact& a, const SkylineFact& b) {
    return a.subspace == b.subspace && a.constraint == b.constraint;
  }
  friend bool operator<(const SkylineFact& a, const SkylineFact& b) {
    if (a.constraint != b.constraint) return a.constraint < b.constraint;
    return a.subspace < b.subspace;
  }
};

/// A fact with its prominence |σ_C(R)| / |λ_M(σ_C(R))| (Sec. VII).
struct RankedFact {
  SkylineFact fact;
  uint64_t context_size = 0;   // |σ_C(R)|, including the new tuple
  uint64_t skyline_size = 0;   // |λ_M(σ_C(R))|, including the new tuple
  double prominence = 0.0;     // context_size / skyline_size
};

/// Sorts facts into the canonical order used when comparing algorithm
/// outputs (constraint mask/values, then subspace).
void CanonicalizeFacts(std::vector<SkylineFact>* facts);

/// "(month=Feb) x {points, rebounds}" rendering for logs and examples.
std::string FactToString(const Relation& r, const SkylineFact& fact);

/// Renders the measure subspace as "{points, rebounds}".
std::string SubspaceToString(const Relation& r, MeasureMask m);

}  // namespace sitfact

#endif  // SITFACT_CORE_FACT_H_
