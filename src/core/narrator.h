#ifndef SITFACT_CORE_NARRATOR_H_
#define SITFACT_CORE_NARRATOR_H_

#include <string>

#include "core/fact.h"
#include "relation/relation.h"

namespace sitfact {

/// Renders discovered facts as short news-style sentences (the "narrating
/// facts in natural-language text" the paper lists as the output surface of
/// a computational-journalism pipeline). Example:
///
///   "Player0042 (points=54, rebounds=9) is undominated on {points,
///    rebounds} among the 1203 tuples with team=Blazers — one of only 2
///    such tuples (prominence 601.5)."
class FactNarrator {
 public:
  /// `entity_dim`: index of the dimension naming the acting entity (e.g.
  /// `player`); -1 picks no subject and the sentence starts with the tuple's
  /// measures.
  explicit FactNarrator(const Relation* relation, int entity_dim = -1);

  /// One-sentence narration of a ranked fact for tuple `t`.
  std::string Narrate(TupleId t, const RankedFact& fact) const;

  /// Compact "(C, M) prominence=p" line for logs.
  std::string Summarize(const RankedFact& fact) const;

 private:
  const Relation* relation_;
  int entity_dim_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_NARRATOR_H_
