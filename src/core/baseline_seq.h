#ifndef SITFACT_CORE_BASELINE_SEQ_H_
#define SITFACT_CORE_BASELINE_SEQ_H_

#include <vector>

#include "core/discoverer.h"
#include "lattice/pruner_set.h"

namespace sitfact {

/// Algorithm 3 (BaselineSeq): per measure subspace, compare the new tuple
/// with every historical tuple; each dominator t' removes all of C^{t,t'}
/// (Prop. 3) from the surviving constraint set. Smarter than BruteForce —
/// one pass over R per subspace instead of one per (C, M) — but still linear
/// in |R| per subspace per arrival.
class BaselineSeqDiscoverer : public Discoverer {
 public:
  BaselineSeqDiscoverer(const Relation* relation,
                        const DiscoveryOptions& options);

  std::string_view name() const override { return "BaselineSeq"; }
  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;
  size_t ApproxMemoryBytes() const override { return 0; }

  /// Deletion needs no repair here: discovery scans the live relation.
  bool SupportsRemoval() const override { return true; }
  Status Remove(TupleId t) override {
    if (!relation_->IsDeleted(t)) {
      return Status::InvalidArgument("tuple must be tombstoned first");
    }
    return Status::Ok();
  }

 private:
  std::vector<DimMask> masks_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_BASELINE_SEQ_H_
