#include "core/bottom_up.h"

#include <algorithm>
#include <utility>

#include "common/bits.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"
#include "storage/storage_options.h"

namespace sitfact {

BottomUpDiscoverer::BottomUpDiscoverer(const Relation* relation,
                                       const DiscoveryOptions& options,
                                       std::unique_ptr<MuStore> store,
                                       bool enable_pruning)
    : LatticeDiscovererBase(relation, options, std::move(store)),
      enable_pruning_(enable_pruning) {
  size_t dense = static_cast<size_t>(
                     FullMask(relation->schema().num_dimensions())) +
                 1;
  in_queue_.assign(dense, 0);
}

BottomUpDiscoverer::BottomUpDiscoverer(const Relation* relation,
                                       const DiscoveryOptions& options)
    : BottomUpDiscoverer(relation, options, CreateMuStore(options.storage)) {}

void BottomUpDiscoverer::Discover(TupleId t, std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  BeginArrival(t);
  PrunerSet no_pre_pruning;
  for (MeasureMask m : universe_.masks()) {
    RunPass(t, m, no_pre_pruning, /*report=*/true, facts,
            /*observer=*/nullptr);
  }
}

void BottomUpDiscoverer::RunPass(TupleId t, MeasureMask m,
                                 const PrunerSet& pre_pruned, bool report,
                                 std::vector<SkylineFact>* facts,
                                 CompareObserver* observer) {
  const Relation& r = *relation_;
  int nd = r.schema().num_dimensions();

  PrunerSet pruned = pre_pruned;  // Pass-local copy; grows as dominators hit.

  // Alg. 4 line 4: start from ⊥(C^t). With the d̂ truncation the lattice has
  // C(d, d̂) minimal elements; enqueue them all (popcount == d̂ masks come
  // first in masks_descending()).
  queue_.clear();
  int bottom_level = max_bound_ < nd ? max_bound_ : nd;
  for (DimMask mask : masks_descending()) {
    if (PopCount(mask) != bottom_level) break;
    queue_.push_back(mask);
    in_queue_[mask] = 1;
  }

  // Breadth-first bottom-up sweep. queue_ is consumed by index; parents are
  // appended, and popcount strictly decreases along the scan, so this is a
  // level-by-level BFS.
  for (size_t head = 0; head < queue_.size(); ++head) {
    DimMask c = queue_[head];
    in_queue_[c] = 0;
    if (enable_pruning_ && pruned.IsPruned(c)) {
      // All ancestors of a pruned constraint are pruned too, so this branch
      // of the traversal ends here.
      continue;
    }
    ++stats_.constraints_traversed;

    MuStore::Context* ctx = CachedContext(c, /*create=*/false);
    bool dominated = false;
    bool modified = false;
    BucketCursor cursor;
    cursor.Open(ctx, m, &bucket_);
    std::vector<TupleId>& bucket = cursor.contents();
    {
      // Partitions come from the per-arrival memo (CachedPartition): the
      // same history tuple recurs in buckets across many subspace passes,
      // and a partition is subspace-independent. Per-entry logic
      // (counters, observer order, early exit, in-place compaction) runs
      // unchanged.
      size_t keep = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        TupleId other = bucket[i];
        ++stats_.comparisons;
        const Relation::MeasurePartition& p = CachedPartition(other);
        if (observer != nullptr) observer->OnComparison(other, p);
        if (DominatedInSubspace(p, m)) {
          // Alg. 4 lines 9-12: t loses here and at every ancestor of C;
          // skip the rest of the bucket (skyline members never dominate
          // each other, so no pending deletions can be missed).
          dominated = true;
          pruned.Add(c);
          // Preserve the unscanned suffix before bailing out. (When a
          // dominator exists no earlier entry can have been removed —
          // skyline members never dominate each other — so this normally
          // leaves the bucket untouched.)
          for (size_t j = i; j < bucket.size(); ++j) {
            bucket[keep++] = bucket[j];
          }
          break;
        }
        if (DominatesInSubspace(p, m)) {
          modified = true;  // Alg. 4 line 13: drop the dethroned tuple.
        } else {
          bucket[keep++] = other;
        }
      }
      bucket.resize(keep);
    }

    if (!dominated) {
      if (report) {
        facts->push_back(SkylineFact{CachedConstraint(c), m});
      }
      bucket.push_back(t);
      modified = true;
      // Alg. 4 lines 17-18: continue towards the more general constraints.
      ForEachBit(c, [&](int bit) {
        DimMask parent = c & ~(1u << bit);
        if (!in_queue_[parent] &&
            !(enable_pruning_ && pruned.IsPruned(parent))) {
          in_queue_[parent] = 1;
          queue_.push_back(parent);
        }
      });
    }

    if (modified) {
      if (ctx == nullptr) ctx = CachedContext(c, /*create=*/true);
      cursor.Commit(ctx);
    }
  }

  // Reset queue flags for masks still marked (pruned leftovers).
  for (DimMask mask : queue_) in_queue_[mask] = 0;
}

}  // namespace sitfact
