#include "core/lattice_base.h"

#include <algorithm>
#include <utility>

#include "common/bits.h"
#include "lattice/constraint_enumerator.h"
#include "skyline/dominance.h"
#include "skyline/skyline_compute.h"

namespace sitfact {

LatticeDiscovererBase::LatticeDiscovererBase(const Relation* relation,
                                             const DiscoveryOptions& options,
                                             std::unique_ptr<MuStore> store)
    : Discoverer(relation, options), store_(std::move(store)) {
  int nd = relation->schema().num_dimensions();
  masks_ascending_ = MasksByAscendingBound(nd, max_bound_);
  masks_descending_ = MasksByDescendingBound(nd, max_bound_);
  size_t dense = static_cast<size_t>(FullMask(nd)) + 1;
  constraint_cache_.resize(dense);
  constraint_cached_.assign(dense, 0);
  context_cache_.assign(dense, nullptr);
  context_resolved_.assign(dense, 0);
}

void LatticeDiscovererBase::BeginArrival(TupleId t) {
  current_tuple_ = t;
  std::fill(constraint_cached_.begin(), constraint_cached_.end(), 0);
  std::fill(context_resolved_.begin(), context_resolved_.end(), 0);
  part_memo_.BeginArrival(*relation_, t);
}

const Constraint& LatticeDiscovererBase::CachedConstraint(DimMask mask) {
  if (!constraint_cached_[mask]) {
    constraint_cache_[mask] =
        Constraint::ForTuple(*relation_, current_tuple_, mask);
    constraint_cached_[mask] = 1;
  }
  return constraint_cache_[mask];
}

MuStore::Context* LatticeDiscovererBase::CachedContext(DimMask mask,
                                                       bool create) {
  if (context_resolved_[mask] && context_cache_[mask] != nullptr) {
    return context_cache_[mask];
  }
  const Constraint& c = CachedConstraint(mask);
  MuStore::Context* ctx =
      create ? store_->GetOrCreate(c) : store_->Find(c);
  if (ctx != nullptr || !create) {
    context_cache_[mask] = ctx;
    context_resolved_[mask] = 1;
  }
  return ctx;
}

size_t LatticeDiscovererBase::ApproxMemoryBytes() const {
  return store_->ApproxMemoryBytes() + part_memo_.ApproxMemoryBytes();
}

Status LatticeDiscovererBase::Remove(TupleId t) {
  const Relation& r = *relation_;
  if (t >= r.size()) {
    return Status::InvalidArgument("no such tuple");
  }
  if (!r.IsDeleted(t)) {
    return Status::InvalidArgument(
        "tuple must be tombstoned (Relation::MarkDeleted) before Remove");
  }

  // The sharing variants maintain full-space buckets even when m̂ < |M|.
  std::vector<MeasureMask> subspace_list = universe_.masks();
  if (!universe_.FullSpaceAdmissible()) {
    subspace_list.insert(subspace_list.begin(), universe_.full_mask());
  }

  if (storage_policy() == StoragePolicy::kAllSkylineConstraints) {
    // Invariant 1 repair: a deleted non-skyline tuple never changes a
    // bucket (anything it dominated is also dominated by one of its own
    // dominators), so only buckets containing t are recomputed.
    std::vector<TupleId> bucket;
    for (DimMask mask : masks_ascending()) {
      Constraint c = Constraint::ForTuple(r, t, mask);
      MuStore::Context* ctx = store_->Find(c);
      if (ctx == nullptr) continue;
      for (MeasureMask m : subspace_list) {
        if (ctx->Empty(m) || !ctx->Contains(m, t)) continue;
        ctx->Write(m, ComputeContextualSkyline(r, c, m, r.size()));
      }
    }
    return Status::Ok();
  }

  // Invariant 2 repair. First drop t itself everywhere it is registered.
  for (DimMask mask : masks_ascending()) {
    MuStore::Context* ctx = store_->Find(Constraint::ForTuple(r, t, mask));
    if (ctx == nullptr) continue;
    for (MeasureMask m : subspace_list) {
      if (!ctx->Empty(m)) ctx->Erase(m, t);
    }
  }
  // Then re-derive the registrations of every victim: a live tuple x is
  // affected in subspace M iff t dominated it there (sharing a context is
  // automatic — ⊤ contains both).
  std::vector<TupleId> msc_sorted;
  for (TupleId x = 0; x < r.size(); ++x) {
    if (x == t || r.IsDeleted(x)) continue;
    Relation::MeasurePartition p = r.Partition(t, x);
    if (p.better == 0) continue;  // t was never strictly better anywhere
    for (MeasureMask m : subspace_list) {
      if (!DominatesInSubspace(p, m)) continue;
      std::vector<DimMask> msc =
          ComputeMaximalSkylineConstraintMasks(r, x, m, max_bound_, r.size());
      msc_sorted.assign(msc.begin(), msc.end());
      std::sort(msc_sorted.begin(), msc_sorted.end());
      for (DimMask mask : masks_ascending()) {
        bool should = std::binary_search(msc_sorted.begin(),
                                         msc_sorted.end(), mask);
        Constraint c = Constraint::ForTuple(r, x, mask);
        MuStore::Context* ctx = store_->Find(c);
        bool present =
            ctx != nullptr && !ctx->Empty(m) && ctx->Contains(m, x);
        if (should && !present) {
          if (ctx == nullptr) ctx = store_->GetOrCreate(c);
          ctx->Insert(m, x);
        } else if (!should && present) {
          ctx->Erase(m, x);
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace sitfact
