#include "core/promotion.h"

#include "common/bits.h"
#include "common/logging.h"

namespace sitfact {

PromotionFinder::PromotionFinder(const Relation* relation, int score_measure,
                                 const Options& options)
    : relation_(relation),
      score_measure_(score_measure),
      options_(options),
      max_bound_(options.max_bound_dims < 0
                     ? relation->schema().num_dimensions()
                     : options.max_bound_dims) {
  SITFACT_CHECK(relation != nullptr);
  SITFACT_CHECK_MSG(
      score_measure >= 0 &&
          score_measure < relation->schema().num_measures(),
      "score measure index out of range");
  SITFACT_CHECK_MSG(options.k >= 1, "promotion requires k >= 1");
}

void PromotionFinder::Discover(TupleId t,
                               std::vector<PromotionFact>* facts) {
  const Relation& r = *relation_;
  const int num_dims = r.schema().num_dimensions();
  const DimMask full = FullMask(num_dims);
  const double own_key = r.measure_key(t, score_measure_);
  ++stats_.arrivals;

  better_.assign(static_cast<size_t>(full) + 1, 0);
  tied_.assign(static_cast<size_t>(full) + 1, 0);
  context_.assign(static_cast<size_t>(full) + 1, 0);

  // Pass 1: bucket history by agreement mask.
  for (TupleId other = 0; other < r.size(); ++other) {
    if (other == t || r.IsDeleted(other)) continue;
    ++stats_.comparisons;
    DimMask agree = r.AgreeMask(t, other);
    ++context_[agree];
    const double key = r.measure_key(other, score_measure_);
    if (key > own_key) {
      ++better_[agree];
    } else if (key == own_key) {
      ++tied_[agree];
    }
  }

  // Pass 2: superset-sum, turning per-bucket counts into per-constraint
  // counts (a constraint's context is the union of the buckets of all
  // supersets of its bound mask).
  for (int d = 0; d < num_dims; ++d) {
    const DimMask bit = DimMask{1} << d;
    for (DimMask mask = 0; mask <= full; ++mask) {
      if ((mask & bit) != 0) continue;
      better_[mask] += better_[mask | bit];
      tied_[mask] += tied_[mask | bit];
      context_[mask] += context_[mask | bit];
    }
  }

  // Pass 3: report top-k ranks over the tuple-satisfied lattice.
  const uint32_t k = static_cast<uint32_t>(options_.k);
  for (DimMask mask = 0; mask <= full; ++mask) {
    if (PopCount(mask) > max_bound_) continue;
    ++stats_.constraints_traversed;
    const uint32_t rank = better_[mask] + 1;
    if (rank > k) continue;
    PromotionFact fact;
    fact.constraint = Constraint::ForTuple(r, t, mask);
    fact.rank = rank;
    fact.tied = tied_[mask] + 1;
    fact.context_size = context_[mask] + 1;
    facts->push_back(std::move(fact));
  }
}

}  // namespace sitfact
