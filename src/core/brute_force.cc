#include "core/brute_force.h"

#include "lattice/constraint_enumerator.h"
#include "skyline/dominance.h"

namespace sitfact {

BruteForceDiscoverer::BruteForceDiscoverer(const Relation* relation,
                                           const DiscoveryOptions& options)
    : Discoverer(relation, options),
      masks_(EnumerateTupleConstraints(relation->schema().num_dimensions(),
                                       max_bound_)) {}

void BruteForceDiscoverer::Discover(TupleId t,
                                    std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  const Relation& r = *relation_;
  for (MeasureMask m : universe_.masks()) {
    for (DimMask mask : masks_) {
      ++stats_.constraints_traversed;
      Constraint c = Constraint::ForTuple(r, t, mask);
      bool pruned = false;
      for (TupleId other = 0; other < t && !pruned; ++other) {
        if (r.IsDeleted(other)) continue;
        ++stats_.comparisons;
        if (Dominates(r, other, t, m) && c.SatisfiedBy(r, other)) {
          pruned = true;
        }
      }
      if (!pruned) facts->push_back(SkylineFact{c, m});
    }
  }
}

}  // namespace sitfact
