#ifndef SITFACT_CORE_SHARED_BOTTOM_UP_H_
#define SITFACT_CORE_SHARED_BOTTOM_UP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/bottom_up.h"

namespace sitfact {

/// SBottomUp (Sec. V-C): BottomUp plus computation sharing across measure
/// subspaces. The full-space pass doubles as a scout: every tuple comparison
/// it performs is projected onto all admissible subspaces with Prop. 4, and
/// each subspace where the compared tuple dominates the new one records the
/// agreement mask as a pruner. The per-subspace passes then start with those
/// prunings — the traversal "stops at the topmost skyline constraints" — but
/// must still compare against buckets they do visit: BottomUp's full-space
/// pass skips pruned regions, so its comparison record is incomplete and a
/// subspace-only dominator can lurk in a bucket the root pass never read.
class SharedBottomUpDiscoverer : public BottomUpDiscoverer {
 public:
  SharedBottomUpDiscoverer(const Relation* relation,
                           const DiscoveryOptions& options,
                           std::unique_ptr<MuStore> store);
  SharedBottomUpDiscoverer(const Relation* relation,
                           const DiscoveryOptions& options);

  std::string_view name() const override { return name_; }

  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;

 protected:
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  /// Projects one full-space comparison onto every admissible subspace.
  class SubspacePruneObserver;

  std::string name_ = "SBottomUp";
  std::vector<PrunerSet> subspace_pruned_;  // indexed by universe index
};

}  // namespace sitfact

#endif  // SITFACT_CORE_SHARED_BOTTOM_UP_H_
