#include "core/shared_bottom_up.h"

#include <utility>

#include "skyline/dominance.h"
#include "storage/storage_options.h"

namespace sitfact {

class SharedBottomUpDiscoverer::SubspacePruneObserver
    : public BottomUpDiscoverer::CompareObserver {
 public:
  SubspacePruneObserver(const Relation* r, TupleId t,
                        const SubspaceUniverse* universe,
                        std::vector<PrunerSet>* subspace_pruned)
      : r_(r), t_(t), universe_(universe), subspace_pruned_(subspace_pruned) {}

  void OnComparison(TupleId other,
                    const Relation::MeasurePartition& p) override {
    // Prop. 4: other ≻_M t iff M meets `worse` and avoids `better`. The
    // agreement mask then prunes C^{t,other} in every such subspace.
    if (p.worse == 0) return;  // `other` dominates t nowhere.
    DimMask agree = kNoAgree;
    MeasureMask full = universe_->full_mask();
    const auto& masks = universe_->masks();
    for (size_t i = 0; i < masks.size(); ++i) {
      MeasureMask m = masks[i];
      if (m == full) continue;  // The root pass handles the full space.
      if ((m & p.worse) != 0 && (m & p.better) == 0) {
        if (agree == kNoAgree) agree = r_->AgreeMask(t_, other);
        (*subspace_pruned_)[i].Add(agree);
      }
    }
  }

 private:
  static constexpr DimMask kNoAgree = 0xFFFFFFFFu;
  const Relation* r_;
  TupleId t_;
  const SubspaceUniverse* universe_;
  std::vector<PrunerSet>* subspace_pruned_;
};

SharedBottomUpDiscoverer::SharedBottomUpDiscoverer(
    const Relation* relation, const DiscoveryOptions& options,
    std::unique_ptr<MuStore> store)
    : BottomUpDiscoverer(relation, options, std::move(store)) {
  subspace_pruned_.resize(universe_.size());
}

SharedBottomUpDiscoverer::SharedBottomUpDiscoverer(
    const Relation* relation, const DiscoveryOptions& options)
    : SharedBottomUpDiscoverer(relation, options,
                               CreateMuStore(options.storage)) {}

void SharedBottomUpDiscoverer::Discover(TupleId t,
                                        std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  BeginArrival(t);
  const auto& masks = universe_.masks();
  for (auto& p : subspace_pruned_) p.Clear();

  // Root pass over the full measure space. The universe's mask list is
  // sorted descending by size, but the *full* space may be inadmissible when
  // m̂ < |M|; it is traversed regardless (its buckets drive future pruning)
  // and reported only when admissible.
  MeasureMask full = universe_.full_mask();
  bool full_admissible = universe_.FullSpaceAdmissible();
  SubspacePruneObserver observer(relation_, t, &universe_, &subspace_pruned_);
  PrunerSet empty;
  RunPass(t, full, empty, /*report=*/full_admissible, facts, &observer);

  // Subspace passes, pre-seeded with the prunings the root pass derived.
  size_t start = full_admissible ? 1 : 0;
  for (size_t i = start; i < masks.size(); ++i) {
    if (masks[i] == full) continue;
    RunPass(t, masks[i], subspace_pruned_[i], /*report=*/true, facts,
            /*observer=*/nullptr);
  }
}

}  // namespace sitfact
