#ifndef SITFACT_CORE_LATTICE_BASE_H_
#define SITFACT_CORE_LATTICE_BASE_H_

#include <memory>
#include <vector>

#include "core/discoverer.h"
#include "lattice/constraint.h"
#include "skyline/subspace_index.h"
#include "storage/mu_store.h"

namespace sitfact {

/// Shared machinery for the lattice-traversing algorithms (BottomUp,
/// TopDown, SBottomUp, STopDown): per-arrival caches that lift DimMasks to
/// global Constraints and µ-store Context handles exactly once per arrival,
/// plus the admissible mask lists in both traversal orders.
class LatticeDiscovererBase : public Discoverer {
 public:
  LatticeDiscovererBase(const Relation* relation,
                        const DiscoveryOptions& options,
                        std::unique_ptr<MuStore> store);

  const MuStore* store() const override { return store_.get(); }
  MuStore* mutable_store() override { return store_.get(); }

  size_t ApproxMemoryBytes() const override;

  /// Deletion repair for both storage policies (see Discoverer::Remove).
  /// Invariant 1: only buckets of constraints satisfied by `t` can change;
  /// those containing `t` get their contextual skyline recomputed from the
  /// live relation. Invariant 2 additionally rebuilds the maximal-constraint
  /// registration of every live tuple `t` dominated somewhere — removing a
  /// dominator can both add skyline constraints to a victim and demote some
  /// of its previously-maximal constraints (now covered by new, more general
  /// ones), including constraints outside C^t.
  bool SupportsRemoval() const override { return true; }
  Status Remove(TupleId t) override;

 protected:
  /// Resets the per-arrival caches for tuple `t`.
  void BeginArrival(TupleId t);

  /// The constraint for `mask` with the current tuple's values (cached).
  const Constraint& CachedConstraint(DimMask mask);

  /// µ-store context for `mask`; nullptr when absent and !create.
  MuStore::Context* CachedContext(DimMask mask, bool create);

  /// Prop.-4 partition of the current tuple against `other`, memoized for
  /// the whole arrival: a partition is subspace-independent, but the
  /// traversal meets the same history tuple in buckets across many of the
  /// (up to 2^m) subspace passes. The memo itself now lives in the shared
  /// subspace-index layer (skyline/subspace_index.h); semantics are
  /// unchanged.
  const Relation::MeasurePartition& CachedPartition(TupleId other) {
    return part_memo_.Get(other);
  }

  // Bucket visits go through BucketCursor (storage/mu_store.h), shared with
  // the sharded engine.

  /// Admissible masks (popcount <= d̂), ascending popcount: the top-down
  /// breadth-first visit order (every ancestor strictly before any of its
  /// descendants).
  const std::vector<DimMask>& masks_ascending() const {
    return masks_ascending_;
  }

  /// Same masks, descending popcount: the bottom-up visit order.
  const std::vector<DimMask>& masks_descending() const {
    return masks_descending_;
  }

  /// Number of masks in the truncated lattice of one tuple.
  size_t lattice_size() const { return masks_ascending_.size(); }

  std::unique_ptr<MuStore> store_;

 private:
  TupleId current_tuple_ = 0;
  std::vector<DimMask> masks_ascending_;
  std::vector<DimMask> masks_descending_;
  // Dense per-mask caches, indexed by mask value (size 2^d).
  std::vector<Constraint> constraint_cache_;
  std::vector<uint8_t> constraint_cached_;
  std::vector<MuStore::Context*> context_cache_;
  std::vector<uint8_t> context_resolved_;
  // Per-arrival partition memo (CachedPartition).
  PartitionMemo part_memo_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_LATTICE_BASE_H_
