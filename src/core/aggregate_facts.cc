#include "core/aggregate_facts.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace sitfact {

namespace {

/// Joins group values with an unlikely separator to form the accumulator
/// key. \x1f (ASCII unit separator) cannot collide with printable values.
std::string GroupKey(const std::vector<std::string>& values) {
  std::string key;
  for (const auto& v : values) {
    key += v;
    key += '\x1f';
  }
  return key;
}

}  // namespace

StatusOr<std::unique_ptr<AggregateFactStream>> AggregateFactStream::Create(
    const Schema& base_schema, const Config& config) {
  if (config.aggregates.empty()) {
    return Status::InvalidArgument("at least one aggregate is required");
  }
  if (config.group_dims.empty()) {
    return Status::InvalidArgument("at least one group dimension is required");
  }
  std::vector<DimensionAttribute> dims;
  for (int d : config.group_dims) {
    if (d < 0 || d >= base_schema.num_dimensions()) {
      return Status::InvalidArgument("group dimension index out of range: " +
                                     std::to_string(d));
    }
    dims.push_back(base_schema.dimension(d));
  }
  dims.push_back({config.period_name});
  std::vector<MeasureAttribute> meas;
  for (const auto& spec : config.aggregates) {
    if (spec.kind != AggregateSpec::Kind::kCount &&
        (spec.measure_index < 0 ||
         spec.measure_index >= base_schema.num_measures())) {
      return Status::InvalidArgument("aggregate measure index out of range: " +
                                     std::to_string(spec.measure_index));
    }
    if (spec.name.empty()) {
      return Status::InvalidArgument("aggregate name must be non-empty");
    }
    meas.push_back({spec.name, spec.direction});
  }
  auto rollup_or = Schema::Create(std::move(dims), std::move(meas));
  if (!rollup_or.ok()) return rollup_or.status();

  auto stream = std::unique_ptr<AggregateFactStream>(new AggregateFactStream(
      base_schema, config, std::move(rollup_or).value()));
  if (stream->engine_ == nullptr) {
    return Status::NotFound("unknown discovery algorithm: " +
                            config.algorithm);
  }
  return stream;
}

AggregateFactStream::AggregateFactStream(const Schema& base_schema,
                                         const Config& config,
                                         Schema rollup_schema)
    : config_(config), base_measures_(base_schema.num_measures()) {
  relation_ = std::make_unique<Relation>(std::move(rollup_schema));
  auto disc_or = DiscoveryEngine::CreateDiscoverer(
      config_.algorithm, relation_.get(), config_.options);
  if (!disc_or.ok()) return;  // Create() reports the error
  DiscoveryEngine::Config engine_config;
  engine_config.options = config_.options;
  engine_config.tau = config_.tau;
  engine_config.rank_facts = config_.rank_facts;
  engine_ = std::make_unique<DiscoveryEngine>(
      relation_.get(), std::move(disc_or).value(), engine_config);
}

void AggregateFactStream::Add(const Row& base_row) {
  SITFACT_CHECK_MSG(
      static_cast<int>(base_row.measures.size()) == base_measures_,
      "base row measure arity mismatch");
  std::vector<std::string> group_values;
  group_values.reserve(config_.group_dims.size());
  for (int d : config_.group_dims) {
    SITFACT_CHECK(d < static_cast<int>(base_row.dimensions.size()));
    group_values.push_back(base_row.dimensions[static_cast<size_t>(d)]);
  }
  std::string key = GroupKey(group_values);
  auto [it, inserted] = groups_.try_emplace(key);
  if (inserted) {
    it->second.sum.assign(static_cast<size_t>(base_measures_), 0.0);
    it->second.min.assign(static_cast<size_t>(base_measures_),
                          std::numeric_limits<double>::infinity());
    it->second.max.assign(static_cast<size_t>(base_measures_),
                          -std::numeric_limits<double>::infinity());
    order_.emplace_back(std::move(key), std::move(group_values));
  }
  Accumulator& acc = it->second;
  ++acc.count;
  for (int j = 0; j < base_measures_; ++j) {
    const double v = base_row.measures[static_cast<size_t>(j)];
    acc.sum[static_cast<size_t>(j)] += v;
    acc.min[static_cast<size_t>(j)] =
        std::min(acc.min[static_cast<size_t>(j)], v);
    acc.max[static_cast<size_t>(j)] =
        std::max(acc.max[static_cast<size_t>(j)], v);
  }
}

std::vector<AggregateFactStream::AggregateArrival>
AggregateFactStream::ClosePeriod(const std::string& period_label) {
  std::vector<AggregateArrival> out;
  out.reserve(order_.size());
  for (const auto& [key, group_values] : order_) {
    const Accumulator& acc = groups_.at(key);
    Row row;
    row.dimensions = group_values;
    row.dimensions.push_back(period_label);
    row.measures.reserve(config_.aggregates.size());
    for (const auto& spec : config_.aggregates) {
      const auto j = static_cast<size_t>(spec.measure_index);
      switch (spec.kind) {
        case AggregateSpec::Kind::kCount:
          row.measures.push_back(static_cast<double>(acc.count));
          break;
        case AggregateSpec::Kind::kSum:
          row.measures.push_back(acc.sum[j]);
          break;
        case AggregateSpec::Kind::kMax:
          row.measures.push_back(acc.max[j]);
          break;
        case AggregateSpec::Kind::kMin:
          row.measures.push_back(acc.min[j]);
          break;
        case AggregateSpec::Kind::kMean:
          row.measures.push_back(acc.sum[j] /
                                 static_cast<double>(acc.count));
          break;
      }
    }
    AggregateArrival arrival;
    arrival.report = engine_->Append(row);
    arrival.row = std::move(row);
    out.push_back(std::move(arrival));
  }
  groups_.clear();
  order_.clear();
  return out;
}

}  // namespace sitfact
