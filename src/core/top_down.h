#ifndef SITFACT_CORE_TOP_DOWN_H_
#define SITFACT_CORE_TOP_DOWN_H_

#include <memory>
#include <vector>

#include "core/lattice_base.h"
#include "lattice/pruner_set.h"

namespace sitfact {

/// Algorithm 5 (TopDown). Maintains Invariant 2 — µ_{C,M} stores a tuple iff
/// C is one of its *maximal* skyline constraints MSC^t_M — and walks C^t
/// breadth-first from ⊤ downwards. Storing each tuple once per antichain
/// (instead of once per skyline constraint) is the space-saving side of the
/// paper's space-time tradeoff; the price is the maximal-constraint
/// bookkeeping in the Dominates procedure.
///
/// Pseudocode deviation (see DESIGN.md): children are enqueued even when the
/// visited constraint is pruned. A constraint all of whose parents are
/// pruned can still hold the new tuple in its skyline (each parent's
/// dominator may live outside the child's context), so stopping the
/// traversal at pruned nodes would silently drop facts.
class TopDownDiscoverer : public LatticeDiscovererBase {
 public:
  /// Observer of bucket comparisons, used by STopDown's root pass.
  class CompareObserver {
   public:
    virtual ~CompareObserver() = default;
    virtual void OnComparison(TupleId other,
                              const Relation::MeasurePartition& partition) = 0;
  };

  TopDownDiscoverer(const Relation* relation, const DiscoveryOptions& options,
                    std::unique_ptr<MuStore> store);

  /// Convenience: in-memory store.
  TopDownDiscoverer(const Relation* relation, const DiscoveryOptions& options);

  std::string_view name() const override { return "TopDown"; }
  StoragePolicy storage_policy() const override {
    return StoragePolicy::kMaximalSkylineConstraints;
  }

  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;

 protected:
  /// Full top-down pass over C^t in subspace `m` (the plain algorithm, and
  /// STopDown's root pass when `observer` is set). Appends facts only when
  /// `report` is true.
  void RunPass(TupleId t, MeasureMask m, bool report,
               std::vector<SkylineFact>* facts, CompareObserver* observer);

  /// The paper's Dominates(t', C, M) procedure: removes the dethroned tuple
  /// `other` from µ_{C,M} (the caller does the physical removal from its
  /// bucket copy) and re-registers `other` at every child of C that became a
  /// new maximal skyline constraint — the children bound to `other`'s value
  /// on a dimension where it disagrees with `t`, unless `other` is already
  /// stored at an ancestor of that child.
  void ReassignDethroned(TupleId t, TupleId other, DimMask c, MeasureMask m);

 private:
  // Per-pass scratch.
  std::vector<DimMask> queue_;
  std::vector<uint8_t> in_queue_;
  std::vector<uint8_t> in_ances_;
  std::vector<TupleId> bucket_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_TOP_DOWN_H_
