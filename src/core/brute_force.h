#ifndef SITFACT_CORE_BRUTE_FORCE_H_
#define SITFACT_CORE_BRUTE_FORCE_H_

#include <vector>

#include "core/discoverer.h"

namespace sitfact {

/// Algorithm 2 (BruteForce): for every measure subspace and every constraint
/// satisfied by the new tuple, scan the whole history for a dominating tuple
/// inside the context. Keeps no state besides the shared Relation.
///
/// Exponentially slow by design; it doubles as the correctness oracle for
/// the test suite.
class BruteForceDiscoverer : public Discoverer {
 public:
  BruteForceDiscoverer(const Relation* relation,
                       const DiscoveryOptions& options);

  std::string_view name() const override { return "BruteForce"; }
  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;
  size_t ApproxMemoryBytes() const override { return 0; }

  /// Deletion needs no repair here: discovery scans the live relation.
  bool SupportsRemoval() const override { return true; }
  Status Remove(TupleId t) override {
    if (!relation_->IsDeleted(t)) {
      return Status::InvalidArgument("tuple must be tombstoned first");
    }
    return Status::Ok();
  }

 private:
  std::vector<DimMask> masks_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_BRUTE_FORCE_H_
