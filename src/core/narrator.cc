#include "core/narrator.h"

#include <cstdio>

#include "common/bits.h"

namespace sitfact {

namespace {

std::string FormatNumber(double v) {
  char buf[32];
  if (v == static_cast<int64_t>(v)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

FactNarrator::FactNarrator(const Relation* relation, int entity_dim)
    : relation_(relation), entity_dim_(entity_dim) {}

std::string FactNarrator::Narrate(TupleId t, const RankedFact& fact) const {
  const Relation& r = *relation_;
  std::string out;
  if (entity_dim_ >= 0) {
    out += r.DimString(t, entity_dim_);
    out += " ";
  } else {
    out += "A new tuple ";
  }
  out += "(";
  bool first = true;
  ForEachBit(fact.fact.subspace, [&](int j) {
    if (!first) out += ", ";
    out += r.schema().measure(j).name;
    out += "=";
    out += FormatNumber(r.measure(t, j));
    first = false;
  });
  out += ") is undominated on ";
  out += SubspaceToString(r, fact.fact.subspace);
  out += " among the ";
  out += std::to_string(fact.context_size);
  out += " tuples with ";
  out += fact.fact.constraint.ToPredicateString(r);
  out += " — one of only ";
  out += std::to_string(fact.skyline_size);
  out += " such tuples (prominence ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", fact.prominence);
  out += buf;
  out += ").";
  return out;
}

std::string FactNarrator::Summarize(const RankedFact& fact) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  prominence=%.2f  |ctx|=%llu  |sky|=%llu",
                fact.prominence,
                static_cast<unsigned long long>(fact.context_size),
                static_cast<unsigned long long>(fact.skyline_size));
  return FactToString(*relation_, fact.fact) + buf;
}

}  // namespace sitfact
