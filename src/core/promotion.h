#ifndef SITFACT_CORE_PROMOTION_H_
#define SITFACT_CORE_PROMOTION_H_

#include <cstdint>
#include <vector>

#include "core/discoverer.h"
#include "lattice/constraint.h"
#include "relation/relation.h"

namespace sitfact {

/// Promotion analysis (Wu et al., VLDB'09 — the paper's Table II row [10]):
/// find the contexts in which an object *ranks high on a single score
/// attribute*. The original is a one-shot computation over static data;
/// this is the incremental counterpart in the spirit of this library —
/// upon each arrival, report every constraint where the new tuple's rank
/// by the chosen measure is within the top k of its context.
///
/// Facts of this form back statements like "Damon Stoudamire scored 54 —
/// the highest score in history made by any Trail Blazers": rank 1 on
/// {points} within team=Blazers.
///
/// Same machinery as KSkybandDiscoverer, one measure at a time: each
/// history pass buckets tuples by agreement mask and counts, per bucket,
/// how many strictly beat the new tuple on the score; a superset-sum over
/// the 2^d masks converts bucket counts into per-constraint ranks in
/// O(n + 2^d · d) per arrival.
class PromotionFinder {
 public:
  /// Ties use competition ranking: rank = 1 + #strictly-better, so tuples
  /// equal on the score share a rank.
  struct Options {
    /// Report constraints where the arrival ranks within the top k.
    int k = 3;
    /// The paper's d̂; -1 means all dimensions.
    int max_bound_dims = -1;
  };

  struct PromotionFact {
    Constraint constraint;
    /// Competition rank of the tuple within σ_C(R) on the score measure.
    uint32_t rank = 0;
    /// Tuples tied with it (including itself).
    uint32_t tied = 0;
    /// |σ_C(R)| including the tuple.
    uint32_t context_size = 0;
  };

  /// `relation` must outlive the finder; `score_measure` indexes the
  /// measure attribute ranked on (direction-adjusted: "high" always means
  /// "preferred").
  PromotionFinder(const Relation* relation, int score_measure,
                  const Options& options);

  /// Reports every qualifying constraint for tuple `t` (normally the most
  /// recent arrival), ordered by constraint mask. Stateless between calls;
  /// each call scans live history once.
  void Discover(TupleId t, std::vector<PromotionFact>* facts);

  const DiscoveryStats& stats() const { return stats_; }
  int score_measure() const { return score_measure_; }

 private:
  const Relation* relation_;
  int score_measure_;
  Options options_;
  int max_bound_;
  DiscoveryStats stats_;
  std::vector<uint32_t> better_;   // per agreement mask, then superset-sum
  std::vector<uint32_t> tied_;     // ties on the score, same transform
  std::vector<uint32_t> context_;  // context sizes, same transform
};

}  // namespace sitfact

#endif  // SITFACT_CORE_PROMOTION_H_
