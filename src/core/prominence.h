#ifndef SITFACT_CORE_PROMINENCE_H_
#define SITFACT_CORE_PROMINENCE_H_

#include <vector>

#include "core/fact.h"
#include "relation/relation.h"
#include "skyline/skyband_index.h"
#include "storage/context_counter.h"
#include "storage/mu_store.h"

namespace sitfact {

/// Prominence of a fact (Sec. VII): |σ_C(R)| / |λ_M(σ_C(R))| — how rare it
/// is to be undominated in this context. Context cardinalities come from the
/// ContextCounter; skyline cardinalities are read from a µ store under
/// either storage policy:
///   * Invariant 1 stores make it a bucket-size lookup;
///   * Invariant 2 stores require unioning the buckets of C's ancestors
///     (tuples stored at incomparable maximal constraints can repeat, so the
///     union deduplicates) and filtering for satisfaction of C.
class ProminenceEvaluator {
 public:
  ProminenceEvaluator(const Relation* relation, const ContextCounter* counter,
                      MuStore* store, StoragePolicy policy);

  /// Routes SkylineSize through a live skyband index instead of the store:
  /// the same numbers (the index shadows every bucket mutation) without
  /// bucket reads — under Invariant 2 the whole ancestor-union walk runs on
  /// in-memory bands. A null or non-live index leaves the store path in
  /// place, so callers can pass whatever the engine holds unconditionally.
  void set_skyband(const SkybandIndex* index) {
    skyband_ = (index != nullptr && index->live()) ? index : nullptr;
  }

  /// Ranks one fact of the latest arrival (the arrival must already be
  /// folded into the store and the counter).
  RankedFact Evaluate(const SkylineFact& fact);

  /// Evaluates and sorts descending by prominence (stable w.r.t. canonical
  /// fact order on ties).
  std::vector<RankedFact> RankAll(std::vector<SkylineFact> facts);

  /// |λ_M(σ_C(R))| per the storage policy.
  uint64_t SkylineSize(const SkylineFact& fact);

 private:
  const Relation* relation_;
  const ContextCounter* counter_;
  MuStore* store_;
  StoragePolicy policy_;
  const SkybandIndex* skyband_ = nullptr;
  std::vector<TupleId> scratch_;
  std::vector<TupleId> union_scratch_;
};

/// The paper's "prominent facts pertinent to t": the facts attaining the
/// maximum prominence among S_t, provided that maximum is >= tau. (Ties make
/// several facts prominent at once.) `ranked` must be sorted descending.
std::vector<RankedFact> SelectProminent(const std::vector<RankedFact>& ranked,
                                        double tau);

}  // namespace sitfact

#endif  // SITFACT_CORE_PROMINENCE_H_
