#include "core/baseline_seq.h"

#include "lattice/constraint_enumerator.h"
#include "skyline/dominance.h"

namespace sitfact {

BaselineSeqDiscoverer::BaselineSeqDiscoverer(const Relation* relation,
                                             const DiscoveryOptions& options)
    : Discoverer(relation, options),
      masks_(MasksByAscendingBound(relation->schema().num_dimensions(),
                                   max_bound_)) {}

void BaselineSeqDiscoverer::Discover(TupleId t,
                                     std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  const Relation& r = *relation_;
  PrunerSet pruned;
  for (MeasureMask m : universe_.masks()) {
    pruned.Clear();
    for (TupleId other = 0; other < t; ++other) {
      if (r.IsDeleted(other)) continue;
      ++stats_.comparisons;
      if (Dominates(r, other, t, m)) {
        // S <- S - C^{t,other}: all masks within the agreement set die.
        pruned.Add(r.AgreeMask(t, other));
      }
    }
    for (DimMask mask : masks_) {
      ++stats_.constraints_traversed;
      if (!pruned.IsPruned(mask)) {
        facts->push_back(
            SkylineFact{Constraint::ForTuple(r, t, mask), m});
      }
    }
  }
}

}  // namespace sitfact
