#include "core/baseline_seq.h"

#include <algorithm>

#include "lattice/constraint_enumerator.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"

namespace sitfact {

BaselineSeqDiscoverer::BaselineSeqDiscoverer(const Relation* relation,
                                             const DiscoveryOptions& options)
    : Discoverer(relation, options),
      masks_(MasksByAscendingBound(relation->schema().num_dimensions(),
                                   max_bound_)) {}

void BaselineSeqDiscoverer::Discover(TupleId t,
                                     std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  const Relation& r = *relation_;
  PrunerSet pruned;
  Relation::MeasurePartition parts[kDominanceBlockSize];
  for (MeasureMask m : universe_.masks()) {
    pruned.Clear();
    // Batched history scan; dominators (rare) fall out of the block's
    // partition masks, and only they pay for an agreement mask.
    for (TupleId base = 0; base < t;
         base += static_cast<TupleId>(kDominanceBlockSize)) {
      TupleId n = std::min<TupleId>(static_cast<TupleId>(kDominanceBlockSize),
                                    t - base);
      PartitionRangeMasked(r, t, base, base + n, m, parts);
      for (TupleId i = 0; i < n; ++i) {
        TupleId other = base + i;
        if (r.IsDeleted(other)) continue;
        ++stats_.comparisons;
        if (DominatedInSubspace(parts[i], m)) {
          // S <- S - C^{t,other}: all masks within the agreement set die.
          pruned.Add(r.AgreeMask(t, other));
        }
      }
    }
    for (DimMask mask : masks_) {
      ++stats_.constraints_traversed;
      if (!pruned.IsPruned(mask)) {
        facts->push_back(
            SkylineFact{Constraint::ForTuple(r, t, mask), m});
      }
    }
  }
}

}  // namespace sitfact
