#ifndef SITFACT_CORE_KSKYBAND_H_
#define SITFACT_CORE_KSKYBAND_H_

#include <cstdint>
#include <vector>

#include "core/discoverer.h"
#include "core/fact.h"
#include "lattice/subspace_universe.h"
#include "relation/relation.h"

namespace sitfact {

/// A k-skyband situational fact: in context C under subspace M the new tuple
/// is dominated by fewer than k others. `dominators` is the exact count, so
/// 0 means the tuple is a contextual skyline tuple (the paper's fact) and
/// 1..k-1 grade how close it came.
struct KSkybandFact {
  SkylineFact fact;
  uint32_t dominators = 0;
};

/// Incremental discovery of k-skyband facts — the "facts of other forms" the
/// paper's conclusion points at, generalizing the skyline membership test to
/// "one of the few" membership (Wu et al., KDD'12 study the static version).
///
/// Algorithm: one pass over history per arrival. For each previous live
/// tuple t', two masks localize its entire effect on the answer:
///   * the agreement mask a = AgreeMask(t, t') — t' belongs to σ_C(R) for
///     exactly the tuple-satisfied constraints C with bound set ⊆ a
///     (Def. 8: a is the bottom of the lattice intersection C^{t,t'});
///   * the measure partition (Prop. 4) — t' dominates t in M iff M meets
///     t's worse set and misses its better set.
/// The pass accumulates, per (agreement mask, subspace), how many history
/// tuples dominate t; a superset-sum (zeta transform) over the 2^d agreement
/// masks then yields the dominator count for every constraint in C^t at once:
/// dominators(C, M) = Σ_{a ⊇ C.bound} raw[a][M]. Total cost is
/// O(n·m + 2^d·d·|subspaces|) per arrival, independent of k.
///
/// The same transform also produces context cardinalities (counting every
/// t', not just dominators), so prominence-style ratios come for free.
class KSkybandDiscoverer {
 public:
  struct Options {
    /// Facts report tuples dominated by fewer than k others; k >= 1.
    int k = 2;
    /// Search-space truncation, as in DiscoveryOptions.
    int max_bound_dims = -1;
    int max_measure_dims = -1;
  };

  /// `relation` must outlive the discoverer.
  KSkybandDiscoverer(const Relation* relation, const Options& options);

  /// Computes all k-skyband facts for tuple `t` (the most recently appended
  /// live tuple). Facts are appended to *facts ordered by (constraint,
  /// subspace). Unlike Discoverer, this class keeps no µ state: every call
  /// scans history, so arrivals may also be replayed out of order for
  /// back-testing.
  void Discover(TupleId t, std::vector<KSkybandFact>* facts);

  /// Dominator count for one (C, M) from the most recent Discover() pass;
  /// exposed for tests. `bound` must be a subset of the last tuple's
  /// tuple-satisfied masks with PopCount <= max_bound_dims.
  uint32_t LastDominatorCount(DimMask bound, MeasureMask m) const;

  /// Context size |σ_C(R)| (including the discovered tuple) from the most
  /// recent pass.
  uint32_t LastContextSize(DimMask bound) const;

  const DiscoveryStats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  const Relation* relation_;
  Options options_;
  int max_bound_;
  SubspaceUniverse universe_;
  DiscoveryStats stats_;

  /// raw_[mask * num_subspaces + subspace_index] — dominator counts keyed by
  /// exact agreement mask, then zeta-transformed in place to superset sums.
  std::vector<uint32_t> counts_;
  /// Context sizes per agreement mask (subspace-independent).
  std::vector<uint32_t> context_;
  bool transformed_ = false;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_KSKYBAND_H_
