#include "core/top_down.h"

#include <utility>

#include "common/bits.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"
#include "storage/storage_options.h"

namespace sitfact {

TopDownDiscoverer::TopDownDiscoverer(const Relation* relation,
                                     const DiscoveryOptions& options,
                                     std::unique_ptr<MuStore> store)
    : LatticeDiscovererBase(relation, options, std::move(store)) {
  size_t dense = static_cast<size_t>(
                     FullMask(relation->schema().num_dimensions())) +
                 1;
  in_queue_.assign(dense, 0);
  in_ances_.assign(dense, 0);
}

TopDownDiscoverer::TopDownDiscoverer(const Relation* relation,
                                     const DiscoveryOptions& options)
    : TopDownDiscoverer(relation, options, CreateMuStore(options.storage)) {}

void TopDownDiscoverer::Discover(TupleId t, std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  BeginArrival(t);
  for (MeasureMask m : universe_.masks()) {
    RunPass(t, m, /*report=*/true, facts, /*observer=*/nullptr);
  }
}

void TopDownDiscoverer::RunPass(TupleId t, MeasureMask m, bool report,
                                std::vector<SkylineFact>* facts,
                                CompareObserver* observer) {
  const Relation& r = *relation_;
  int nd = r.schema().num_dimensions();

  PrunerSet pruned;
  std::fill(in_ances_.begin(), in_ances_.end(), 0);

  // Alg. 5 line 6: start the BFS at ⊤. Because children are enqueued for
  // every visited node, the queue sweeps the whole truncated lattice level
  // by level — ancestors always strictly before descendants.
  queue_.clear();
  queue_.push_back(0);
  in_queue_[0] = 1;

  for (size_t head = 0; head < queue_.size(); ++head) {
    DimMask c = queue_[head];
    in_queue_[c] = 0;
    ++stats_.constraints_traversed;

    MuStore::Context* ctx = CachedContext(c, /*create=*/false);
    bool modified = false;
    BucketCursor cursor;
    cursor.Open(ctx, m, &bucket_);
    std::vector<TupleId>& bucket = cursor.contents();
    {
      // Per-arrival partition memo; see BottomUpDiscoverer::RunPass.
      size_t keep = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        TupleId other = bucket[i];
        ++stats_.comparisons;
        const Relation::MeasurePartition& p = CachedPartition(other);
        if (observer != nullptr) observer->OnComparison(other, p);
        if (DominatedInSubspace(p, m)) {
          // Dominated procedure: every constraint satisfied by both tuples
          // is disqualified. Unlike BottomUp we must keep scanning — other
          // bucket members may prune different agreement regions.
          pruned.Add(r.AgreeMask(t, other));
          bucket[keep++] = other;
        } else if (DominatesInSubspace(p, m)) {
          // Dominates procedure: drop `other` here, re-register it at the
          // children that become its new maximal skyline constraints.
          modified = true;
          ReassignDethroned(t, other, c, m);
        } else {
          bucket[keep++] = other;
        }
      }
      bucket.resize(keep);
    }

    bool is_pruned = pruned.IsPruned(c);
    if (!is_pruned) {
      if (report) {
        facts->push_back(SkylineFact{CachedConstraint(c), m});
      }
      if (!in_ances_[c]) {
        // C is a maximal skyline constraint of t: no ancestor stored t.
        bucket.push_back(t);
        modified = true;
      }
    }

    if (modified) {
      if (ctx == nullptr) ctx = CachedContext(c, /*create=*/true);
      cursor.Commit(ctx);
    }

    // EnqueueChildren — unconditionally (see header); a child inherits
    // inAnces only from an unpruned parent (t is stored at that parent or
    // one of its ancestors).
    int next_bound = PopCount(c) + 1;
    if (next_bound <= max_bound_) {
      for (int bit = 0; bit < nd; ++bit) {
        if ((c >> bit) & 1u) continue;
        DimMask child = c | (1u << bit);
        if (!is_pruned) in_ances_[child] = 1;
        if (!in_queue_[child]) {
          in_queue_[child] = 1;
          queue_.push_back(child);
        }
      }
    }
  }
}

void TopDownDiscoverer::ReassignDethroned(TupleId t, TupleId other, DimMask c,
                                          MeasureMask m) {
  const Relation& r = *relation_;
  int nd = r.schema().num_dimensions();
  // `other` satisfied C (it was stored there) and t satisfies C, so both
  // agree on all of c. Children of C inside C^{other} − C^t are exactly
  // c ∪ {i} for dimensions i where the tuples disagree, bound to other's
  // value. Each such child is still a skyline constraint of `other` (its
  // context excludes t); it becomes maximal unless `other` is already
  // stored at one of the child's strict ancestors that contain bit i —
  // ancestors without bit i are subsets of c, where `other` cannot be
  // stored (C was maximal for `other`).
  if (PopCount(c) + 1 > max_bound_) return;
  for (int bit = 0; bit < nd; ++bit) {
    if ((c >> bit) & 1u) continue;
    if (r.dim(other, bit) == r.dim(t, bit)) continue;  // child also holds t
    DimMask child = c | (1u << bit);
    bool stored = false;
    // Ancestors of `child` containing `bit`: {i} ∪ s for s ⊊ c.
    ForEachProperSubset(c, [&](DimMask s) {
      if (stored) return;
      DimMask anc = s | (1u << bit);
      Constraint anc_c = Constraint::ForTuple(r, other, anc);
      MuStore::Context* anc_ctx = store_->Find(anc_c);
      if (anc_ctx != nullptr && anc_ctx->Size(m) > 0 &&
          anc_ctx->Contains(m, other)) {
        stored = true;
      }
    });
    if (!stored) {
      Constraint child_c = Constraint::ForTuple(r, other, child);
      store_->GetOrCreate(child_c)->Insert(m, other);
    }
  }
}

}  // namespace sitfact
