#include "core/shared_top_down.h"

#include <utility>

#include "common/bits.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"
#include "storage/storage_options.h"

namespace sitfact {

class SharedTopDownDiscoverer::SubspacePruneObserver
    : public TopDownDiscoverer::CompareObserver {
 public:
  SubspacePruneObserver(const Relation* r, TupleId t,
                        const SubspaceUniverse* universe,
                        std::vector<PrunerSet>* subspace_pruned)
      : r_(r), t_(t), universe_(universe), subspace_pruned_(subspace_pruned) {}

  void OnComparison(TupleId other,
                    const Relation::MeasurePartition& p) override {
    if (p.worse == 0) return;
    DimMask agree = kNoAgree;
    MeasureMask full = universe_->full_mask();
    const auto& masks = universe_->masks();
    for (size_t i = 0; i < masks.size(); ++i) {
      MeasureMask m = masks[i];
      if (m == full) continue;
      if ((m & p.worse) != 0 && (m & p.better) == 0) {
        if (agree == kNoAgree) agree = r_->AgreeMask(t_, other);
        (*subspace_pruned_)[i].Add(agree);
      }
    }
  }

 private:
  static constexpr DimMask kNoAgree = 0xFFFFFFFFu;
  const Relation* r_;
  TupleId t_;
  const SubspaceUniverse* universe_;
  std::vector<PrunerSet>* subspace_pruned_;
};

SharedTopDownDiscoverer::SharedTopDownDiscoverer(
    const Relation* relation, const DiscoveryOptions& options,
    std::unique_ptr<MuStore> store)
    : TopDownDiscoverer(relation, options, std::move(store)) {
  subspace_pruned_.resize(universe_.size());
}

SharedTopDownDiscoverer::SharedTopDownDiscoverer(
    const Relation* relation, const DiscoveryOptions& options)
    : SharedTopDownDiscoverer(relation, options,
                              CreateMuStore(options.storage)) {}

void SharedTopDownDiscoverer::Discover(TupleId t,
                                       std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  BeginArrival(t);
  for (auto& p : subspace_pruned_) p.Clear();

  MeasureMask full = universe_.full_mask();
  bool full_admissible = universe_.FullSpaceAdmissible();
  SubspacePruneObserver observer(relation_, t, &universe_, &subspace_pruned_);
  RunPass(t, full, /*report=*/full_admissible, facts, &observer);

  const auto& masks = universe_.masks();
  for (size_t i = 0; i < masks.size(); ++i) {
    if (masks[i] == full) continue;
    RunNodePass(t, masks[i], subspace_pruned_[i], facts);
  }
}

void SharedTopDownDiscoverer::RunNodePass(TupleId t, MeasureMask m,
                                          const PrunerSet& pruned,
                                          std::vector<SkylineFact>* facts) {
  // The unpruned region is closed under adding bound attributes (a pruner
  // covering a mask covers all its subsets), so iterating admissible masks
  // in ascending-bound order visits exactly the region below the frontier;
  // nothing outside it is touched — the saving Fig. 11b measures.
  for (DimMask c : masks_ascending()) {
    if (pruned.IsPruned(c)) continue;
    ++stats_.constraints_traversed;
    facts->push_back(SkylineFact{CachedConstraint(c), m});

    MuStore::Context* ctx = CachedContext(c, /*create=*/false);
    bool modified = false;
    BucketCursor cursor;
    cursor.Open(ctx, m, &node_bucket_);
    std::vector<TupleId>& bucket = cursor.contents();
    {
      size_t keep = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        TupleId other = bucket[i];
        ++stats_.comparisons;
        const Relation::MeasurePartition& p = CachedPartition(other);
        // The root pass established that nothing here dominates t; only the
        // Dominates branch can fire.
        if (DominatesInSubspace(p, m)) {
          modified = true;
          ReassignDethroned(t, other, c, m);
        } else {
          bucket[keep++] = other;
        }
      }
      bucket.resize(keep);
    }

    // Frontier test: c is a maximal skyline constraint iff every parent is
    // pruned (the unpruned region is superset-closed, so checking immediate
    // parents suffices).
    bool frontier = true;
    ForEachBit(c, [&](int bit) {
      if (!pruned.IsPruned(c & ~(1u << bit))) frontier = false;
    });
    if (frontier) {
      bucket.push_back(t);
      modified = true;
    }

    if (modified) {
      if (ctx == nullptr) ctx = CachedContext(c, /*create=*/true);
      cursor.Commit(ctx);
    }
  }
}

}  // namespace sitfact
