#ifndef SITFACT_CORE_BOTTOM_UP_H_
#define SITFACT_CORE_BOTTOM_UP_H_

#include <memory>
#include <vector>

#include "core/lattice_base.h"
#include "lattice/pruner_set.h"

namespace sitfact {

/// Algorithm 4 (BottomUp). Maintains Invariant 1 — µ_{C,M} stores the full
/// contextual skyline λ_M(σ_C(R)) — and, per measure subspace, walks C^t
/// breadth-first from the most specific constraints towards ⊤. When the new
/// tuple is dominated at C, all of C's ancestors are pruned (they contain
/// the dominator too); when it survives, it joins the bucket and the
/// traversal continues to C's parents.
///
/// An optional `enable_pruning=false` mode visits every constraint
/// regardless of recorded dominators (used by the ablation bench to measure
/// how much constraint pruning buys).
class BottomUpDiscoverer : public LatticeDiscovererBase {
 public:
  /// Observes every bucket comparison of a pass; SBottomUp's root pass uses
  /// this to derive subspace prunings from full-space comparisons (Prop. 4).
  class CompareObserver {
   public:
    virtual ~CompareObserver() = default;
    virtual void OnComparison(TupleId other,
                              const Relation::MeasurePartition& partition) = 0;
  };

  BottomUpDiscoverer(const Relation* relation, const DiscoveryOptions& options,
                     std::unique_ptr<MuStore> store,
                     bool enable_pruning = true);

  /// Convenience: in-memory store.
  BottomUpDiscoverer(const Relation* relation,
                     const DiscoveryOptions& options);

  std::string_view name() const override { return "BottomUp"; }
  StoragePolicy storage_policy() const override {
    return StoragePolicy::kAllSkylineConstraints;
  }

  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;

 protected:
  /// One bottom-up pass over C^t in subspace `m`. `pre_pruned` carries
  /// constraint prunings discovered elsewhere (SBottomUp's root pass seeds
  /// it); pass an empty set for the plain algorithm. Facts are appended only
  /// when `report` is true (the sharing variant keeps full-space buckets
  /// warm even when the full space is not an admissible subspace).
  void RunPass(TupleId t, MeasureMask m, const PrunerSet& pre_pruned,
               bool report, std::vector<SkylineFact>* facts,
               CompareObserver* observer);

  bool enable_pruning_;

 private:
  // Per-pass scratch, reused across subspaces to avoid reallocation.
  std::vector<DimMask> queue_;
  std::vector<uint8_t> in_queue_;
  std::vector<TupleId> bucket_;
};

}  // namespace sitfact

#endif  // SITFACT_CORE_BOTTOM_UP_H_
