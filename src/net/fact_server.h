#ifndef SITFACT_NET_FACT_SERVER_H_
#define SITFACT_NET_FACT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "net/http.h"
#include "net/server.h"
#include "relation/relation.h"
#include "service/fact_service.h"
#include "service/query_api.h"

namespace sitfact {
namespace net {

/// The serving application: routes HTTP endpoints onto the unified query
/// API. Every query endpoint is the same two steps — build a QueryRequest
/// (from query parameters on GET, from a JSON body on POST), then
/// ExecuteQuery against a pinned snapshot — so the wire protocol, the CLI
/// and in-process callers cannot drift apart.
///
/// Endpoints:
///   GET/POST /topk /facts_for_tuple /facts_in_window /about /explain
///   GET  /healthz        liveness probe
///   GET  /statz          per-endpoint request/error/latency/cache counters
///   POST /quitquitquit   graceful shutdown (also accepts GET)
///
/// Response caching: one entry per canonical request, valid for exactly one
/// epoch. Snapshots are immutable, so `(epoch, canonical request)` fully
/// determines the response bytes; a publish bumps the epoch and thereby
/// invalidates every cached entry without any bookkeeping.
class FactServer {
 public:
  struct Options {
    EpollServer::Options net;
    size_t cache_capacity = 512;  ///< entries; 0 disables the cache
  };

  struct EndpointStats {
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t cache_hits = 0;
    /// Responses computed off the TopK-sorted skyband serving bands (cache
    /// hits excluded; only TopK/About take the sorted walk).
    uint64_t skyband_hits = 0;
    uint64_t total_micros = 0;  ///< handler time, cache hits included
    uint64_t max_micros = 0;
  };

  /// `service` must outlive the server; `relation` (nullable) enables the
  /// textual where/measures/window filter grammar on the wire.
  FactServer(const FactService* service, const Relation* relation,
             Options options);

  Status Listen() { return server_.Listen(); }
  uint16_t port() const { return server_.port(); }
  /// Blocks until /quitquitquit, RequestStop(), or the external stop flag.
  Status Serve() { return server_.Serve(); }
  void RequestStop() { server_.RequestStop(); }
  void set_external_stop(const std::atomic<bool>* flag) {
    server_.set_external_stop(flag);
  }

  /// The routing core, exposed so unit tests can drive it without sockets.
  HttpResponse Handle(const HttpRequest& request);

  const EpollServer::Stats& net_stats() const { return server_.stats(); }

 private:
  struct CacheEntry {
    uint64_t epoch = 0;
    std::string body;
  };

  HttpResponse HandleQuery(QueryKind kind, const HttpRequest& request,
                           EndpointStats* stats);
  /// GET parameters -> the same JSON object shape a POST body carries, so
  /// both funnel through the one RequestFromJson deserializer.
  StatusOr<QueryRequest> RequestFromParams(QueryKind kind,
                                           const HttpRequest& request,
                                           std::string* empty_note) const;
  HttpResponse StatzResponse() const;
  static HttpResponse ErrorResponse(int http_status, const Status& status);

  const FactService* service_;
  const Relation* relation_;
  Options options_;
  EpollServer server_;

  std::unordered_map<std::string, CacheEntry> cache_;
  std::deque<std::string> cache_order_;  ///< FIFO eviction
  std::unordered_map<std::string, EndpointStats> endpoint_stats_;
};

}  // namespace net
}  // namespace sitfact

#endif  // SITFACT_NET_FACT_SERVER_H_
