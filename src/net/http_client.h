#ifndef SITFACT_NET_HTTP_CLIENT_H_
#define SITFACT_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sitfact {
namespace net {

/// Minimal blocking HTTP/1.1 client — enough to drive the server from
/// tests, the multi-client smoke test, and the load generator. Reuses one
/// keep-alive connection; reconnects transparently when the server closed
/// it between requests.
class HttpClient {
 public:
  struct Response {
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;  ///< lowercased names
    std::string body;
    const std::string* Header(std::string_view name) const;
  };

  HttpClient(std::string host, uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  StatusOr<Response> Get(const std::string& target);
  StatusOr<Response> Post(const std::string& target, const std::string& body,
                          const std::string& content_type =
                              "application/json");

  /// Drops the kept-alive connection (next request reconnects).
  void Disconnect();

 private:
  StatusOr<Response> RoundTrip(const std::string& request,
                               bool retry_on_stale);
  Status Connect();

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::string residue_;  ///< bytes read past the previous response
};

}  // namespace net
}  // namespace sitfact

#endif  // SITFACT_NET_HTTP_CLIENT_H_
