#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace sitfact {
namespace net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

ParseResult Bad(int status, std::string error) {
  ParseResult r;
  r.state = ParseResult::State::kBad;
  r.http_status = status;
  r.error = std::move(error);
  return r;
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

const std::string* HttpRequest::Query(std::string_view name) const {
  for (const auto& [k, v] : query) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < s.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
      } else {
        out += c;  // malformed escape passes through verbatim
      }
    } else {
      out += c;
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseQueryString(
    std::string_view s) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t amp = s.find('&', pos);
    if (amp == std::string_view::npos) amp = s.size();
    const std::string_view item = s.substr(pos, amp - pos);
    if (!item.empty()) {
      const size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        out.emplace_back(PercentDecode(item), "");
      } else {
        out.emplace_back(PercentDecode(item.substr(0, eq)),
                         PercentDecode(item.substr(eq + 1)));
      }
    }
    if (amp == s.size()) break;
    pos = amp + 1;
  }
  return out;
}

ParseResult ParseHttpRequest(std::string_view buffer,
                             const HttpLimits& limits,
                             HttpRequest* request) {
  const size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buffer.size() > limits.max_header_bytes) {
      return Bad(431, "request header section exceeds " +
                          std::to_string(limits.max_header_bytes) + " bytes");
    }
    return ParseResult{};  // kNeedMore
  }
  if (head_end > limits.max_header_bytes) {
    return Bad(431, "request header section exceeds " +
                        std::to_string(limits.max_header_bytes) + " bytes");
  }

  *request = HttpRequest{};
  const std::string_view head = buffer.substr(0, head_end);

  // --- request line ---
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  const std::string_view request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Bad(400, "malformed request line");
  }
  request->method = std::string(request_line.substr(0, sp1));
  request->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Bad(400, "unsupported protocol version");
  }
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/') {
    return Bad(400, "malformed request line");
  }
  request->keep_alive = version == "HTTP/1.1";

  const std::string_view target = request->target;
  const size_t q = target.find('?');
  if (q == std::string_view::npos) {
    request->path = PercentDecode(target);
  } else {
    request->path = PercentDecode(target.substr(0, q));
    request->query = ParseQueryString(target.substr(q + 1));
  }

  // --- header fields ---
  size_t pos = line_end + 2;
  uint64_t content_length = 0;
  bool has_length = false;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view line = head.substr(pos, next - pos);
    pos = next + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Bad(400, "malformed header field");
    }
    std::string name = ToLower(Trim(line.substr(0, colon)));
    std::string value(Trim(line.substr(colon + 1)));
    if (name == "transfer-encoding") {
      return Bad(501,
                 "chunked transfer encoding is not supported; send a "
                 "Content-Length body");
    }
    if (name == "content-length") {
      char* end = nullptr;
      errno = 0;
      content_length = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end != value.c_str() + value.size()) {
        return Bad(400, "malformed Content-Length");
      }
      has_length = true;
    }
    if (name == "connection") {
      const std::string lowered = ToLower(value);
      if (lowered.find("close") != std::string::npos) {
        request->keep_alive = false;
      } else if (lowered.find("keep-alive") != std::string::npos) {
        request->keep_alive = true;
      }
    }
    request->headers.emplace_back(std::move(name), std::move(value));
  }

  if (has_length && content_length > limits.max_body_bytes) {
    return Bad(413, "request body exceeds " +
                        std::to_string(limits.max_body_bytes) + " bytes");
  }
  const size_t body_begin = head_end + 4;
  const size_t body_len = has_length ? static_cast<size_t>(content_length) : 0;
  if (buffer.size() < body_begin + body_len) {
    return ParseResult{};  // kNeedMore
  }
  request->body = std::string(buffer.substr(body_begin, body_len));

  ParseResult result;
  result.state = ParseResult::State::kComplete;
  result.consumed = body_begin + body_len;
  return result;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpStatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += response.close ? "close" : "keep-alive";
  out += "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace net
}  // namespace sitfact
