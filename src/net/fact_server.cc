#include "net/fact_server.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>

#include "net/json.h"
#include "service/filter_parse.h"

namespace sitfact {
namespace net {

namespace {

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kUnimplemented:
      return 501;
    default:
      return 500;
  }
}

/// Validates an unsigned-integer query parameter lexeme before it is
/// embedded as a raw JSON number.
Status CheckUnsignedLexeme(const std::string& name, const std::string& v) {
  if (v.empty()) {
    return Status::InvalidArgument("query parameter '" + name +
                                   "' needs a value");
  }
  for (char c : v) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("query parameter '" + name +
                                     "' is not an unsigned integer: '" + v +
                                     "'");
    }
  }
  return Status();
}

StatusOr<bool> ParseBoolParam(const std::string& name, const std::string& v) {
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  return Status::InvalidArgument("query parameter '" + name +
                                 "' is not a boolean: '" + v + "'");
}

}  // namespace

FactServer::FactServer(const FactService* service, const Relation* relation,
                       Options options)
    : service_(service),
      relation_(relation),
      options_(std::move(options)),
      server_(options_.net) {
  server_.set_handler(
      [this](const HttpRequest& request) { return Handle(request); });
}

HttpResponse FactServer::ErrorResponse(int http_status,
                                       const Status& status) {
  HttpResponse response;
  response.status = http_status;
  response.body = SerializeErrorBody(status);
  return response;
}

HttpResponse FactServer::Handle(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/healthz") {
    HttpResponse out;
    out.body = "{\"schema\":1,\"status\":\"ok\"}";
    return out;
  }
  if (path == "/statz") {
    return StatzResponse();
  }
  if (path == "/quitquitquit") {
    RequestStop();
    HttpResponse out;
    out.body = "{\"schema\":1,\"status\":\"shutting down\"}";
    out.close = true;
    return out;
  }
  if (path.size() > 1) {
    auto kind = ParseQueryKind(path.substr(1));
    if (kind.ok()) {
      if (request.method != "GET" && request.method != "POST") {
        return ErrorResponse(
            405, Status::InvalidArgument("use GET or POST for " + path));
      }
      EndpointStats* stats = &endpoint_stats_[path.substr(1)];
      const auto start = std::chrono::steady_clock::now();
      HttpResponse response = HandleQuery(kind.value(), request, stats);
      const auto micros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      stats->total_micros += static_cast<uint64_t>(micros);
      if (static_cast<uint64_t>(micros) > stats->max_micros) {
        stats->max_micros = static_cast<uint64_t>(micros);
      }
      return response;
    }
  }
  return ErrorResponse(404, Status::NotFound("no endpoint " + path));
}

HttpResponse FactServer::HandleQuery(QueryKind kind,
                                     const HttpRequest& http_request,
                                     EndpointStats* stats) {
  ++stats->requests;
  std::string empty_note;
  QueryRequest request;
  if (http_request.method == "POST") {
    auto json = JsonValue::Parse(http_request.body);
    if (!json.ok()) {
      ++stats->errors;
      return ErrorResponse(400, json.status());
    }
    auto parsed = RequestFromJson(json.value(), relation_, &empty_note);
    if (!parsed.ok()) {
      ++stats->errors;
      return ErrorResponse(HttpStatusFor(parsed.status()), parsed.status());
    }
    request = std::move(parsed).value();
    const JsonValue* body_kind = json.value().Find("kind");
    if (body_kind != nullptr && request.kind != kind) {
      ++stats->errors;
      return ErrorResponse(
          400, Status::InvalidArgument(
                   "request kind '" + std::string(QueryKindName(request.kind)) +
                   "' does not match endpoint '" + http_request.path + "'"));
    }
  } else {
    auto parsed = RequestFromParams(kind, http_request, &empty_note);
    if (!parsed.ok()) {
      ++stats->errors;
      return ErrorResponse(HttpStatusFor(parsed.status()), parsed.status());
    }
    request = std::move(parsed).value();
  }
  request.kind = kind;

  FactService::Snapshot snapshot = service_->Acquire();

  if (!empty_note.empty()) {
    // A `where` value that never occurs: provably empty context, answered
    // with an empty page at the current epoch (mirrors the CLI).
    QueryResponse response;
    response.epoch = snapshot.epoch();
    HttpResponse out;
    out.body = SerializeResponse(response);
    return out;
  }

  const std::string key = CanonicalRequestKey(request);
  const uint64_t epoch = snapshot.epoch();
  if (options_.cache_capacity > 0) {
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.epoch == epoch) {
      ++stats->cache_hits;
      HttpResponse out;
      out.body = it->second.body;
      return out;
    }
  }

  auto response = ExecuteQuery(snapshot, request);
  if (!response.ok()) {
    ++stats->errors;
    return ErrorResponse(HttpStatusFor(response.status()), response.status());
  }
  if (snapshot.skyband_enabled() &&
      (kind == QueryKind::kTopK || kind == QueryKind::kAbout)) {
    ++stats->skyband_hits;
  }
  std::string body = SerializeResponse(response.value());
  if (options_.cache_capacity > 0) {
    if (cache_.find(key) == cache_.end()) {
      while (cache_order_.size() >= options_.cache_capacity) {
        cache_.erase(cache_order_.front());
        cache_order_.pop_front();
      }
      cache_order_.push_back(key);
    }
    cache_[key] = CacheEntry{epoch, body};
  }
  HttpResponse out;
  out.body = std::move(body);
  return out;
}

StatusOr<QueryRequest> FactServer::RequestFromParams(
    QueryKind kind, const HttpRequest& request,
    std::string* empty_note) const {
  // Assemble the exact JSON object shape a POST body carries, then reuse
  // the one deserializer — GET and POST cannot diverge in meaning.
  JsonValue body = JsonValue::Object();
  JsonValue filter = JsonValue::Object();
  for (const auto& [name, value] : request.query) {
    if (name == "k" || name == "record") {
      Status s = CheckUnsignedLexeme(name, value);
      if (!s.ok()) return s;
      body.Set(name, JsonValue::RawNumber(value));
    } else if (name == "tuple") {
      Status s = CheckUnsignedLexeme(name, value);
      if (!s.ok()) return s;
      if (kind == QueryKind::kFactsForTuple) {
        body.Set("tuple", JsonValue::RawNumber(value));
      } else {
        filter.Set("tuple", JsonValue::RawNumber(value));
      }
    } else if (name == "first" || name == "last") {
      Status s = CheckUnsignedLexeme(name, value);
      if (!s.ok()) return s;
      body.Set(name == "first" ? "window_first" : "window_last",
               JsonValue::RawNumber(value));
    } else if (name == "cursor") {
      body.Set("cursor", JsonValue::Str(value));
    } else if (name == "where" || name == "measures") {
      filter.Set(name, JsonValue::Str(value));
    } else if (name == "window") {
      if (kind == QueryKind::kFactsInWindow) {
        // The window names the query range itself, not a filter.
        uint64_t first = 0, last = 0;
        Status s = ParseArrivalWindow(value, &first, &last);
        if (!s.ok()) return s;
        body.Set("window_first", JsonValue::Number(first));
        body.Set("window_last", JsonValue::Number(last));
      } else {
        filter.Set("window", JsonValue::Str(value));
      }
    } else if (name == "min_arrival" || name == "max_arrival" ||
               name == "bound_mask") {
      Status s = CheckUnsignedLexeme(name, value);
      if (!s.ok()) return s;
      filter.Set(name, JsonValue::RawNumber(value));
    } else if (name == "min_prominence") {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size()) {
        return Status::InvalidArgument(
            "query parameter 'min_prominence' is not a number: '" + value +
            "'");
      }
      filter.Set("min_prominence", JsonValue::RawNumber(value));
    } else if (name == "prominent_only" || name == "include_dead") {
      auto b = ParseBoolParam(name, value);
      if (!b.ok()) return b.status();
      filter.Set(name, JsonValue::Bool(b.value()));
    } else {
      return Status::InvalidArgument("unknown query parameter '" + name +
                                     "'");
    }
  }
  if (!filter.keys().empty()) body.Set("filter", std::move(filter));
  return RequestFromJson(body, relation_, empty_note);
}

HttpResponse FactServer::StatzResponse() const {
  const FactService::Snapshot snap = service_->Acquire();
  JsonValue obj = JsonValue::Object();
  obj.Set("schema",
          JsonValue::Number(static_cast<uint64_t>(kWireSchemaVersion)));
  obj.Set("epoch", JsonValue::Number(snap.epoch()));

  JsonValue skyband = JsonValue::Object();
  skyband.Set("enabled", JsonValue::Bool(snap.skyband_enabled()));
  skyband.Set("band_inserts",
              JsonValue::Number(snap.skyband_stats().band_inserts));
  skyband.Set("shifted_records",
              JsonValue::Number(snap.skyband_stats().shifted_records));
  obj.Set("skyband", std::move(skyband));

  const EpollServer::Stats& net = server_.stats();
  JsonValue server = JsonValue::Object();
  server.Set("accepted", JsonValue::Number(net.accepted));
  server.Set("shed", JsonValue::Number(net.shed));
  server.Set("protocol_errors", JsonValue::Number(net.protocol_errors));
  server.Set("requests", JsonValue::Number(net.requests));
  server.Set("idle_closed", JsonValue::Number(net.idle_closed));
  server.Set("active_connections", JsonValue::Number(net.active_connections));
  obj.Set("server", std::move(server));

  // Sorted for a stable rendering.
  std::map<std::string, const EndpointStats*> sorted;
  for (const auto& [name, stats] : endpoint_stats_) {
    sorted[name] = &stats;
  }
  JsonValue endpoints = JsonValue::Object();
  for (const auto& [name, stats] : sorted) {
    JsonValue e = JsonValue::Object();
    e.Set("requests", JsonValue::Number(stats->requests));
    e.Set("errors", JsonValue::Number(stats->errors));
    e.Set("cache_hits", JsonValue::Number(stats->cache_hits));
    e.Set("skyband_hits", JsonValue::Number(stats->skyband_hits));
    e.Set("total_micros", JsonValue::Number(stats->total_micros));
    e.Set("max_micros", JsonValue::Number(stats->max_micros));
    endpoints.Set(name, std::move(e));
  }
  obj.Set("endpoints", std::move(endpoints));

  HttpResponse out;
  out.body = obj.Dump();
  return out;
}

}  // namespace net
}  // namespace sitfact
