#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace sitfact {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

const std::string* HttpClient::Response::Header(
    std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

HttpClient::HttpClient(std::string host, uint16_t port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  residue_.clear();
}

Status HttpClient::Connect() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Errno("connect " + host_ + ":" + std::to_string(port_));
    Disconnect();
    return s;
  }
  return Status();
}

StatusOr<HttpClient::Response> HttpClient::Get(const std::string& target) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host_ +
                              "\r\n\r\n";
  return RoundTrip(request, /*retry_on_stale=*/true);
}

StatusOr<HttpClient::Response> HttpClient::Post(
    const std::string& target, const std::string& body,
    const std::string& content_type) {
  const std::string request =
      "POST " + target + " HTTP/1.1\r\nHost: " + host_ +
      "\r\nContent-Type: " + content_type +
      "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
      body;
  return RoundTrip(request, /*retry_on_stale=*/true);
}

StatusOr<HttpClient::Response> HttpClient::RoundTrip(
    const std::string& request, bool retry_on_stale) {
  const bool fresh = fd_ < 0;
  if (fresh) {
    Status s = Connect();
    if (!s.ok()) return s;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd_, request.data() + sent, request.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A kept-alive connection the server has since closed: reconnect
      // once and resend.
      Disconnect();
      if (retry_on_stale && !fresh) {
        return RoundTrip(request, /*retry_on_stale=*/false);
      }
      return Errno("write");
    }
    sent += static_cast<size_t>(n);
  }

  std::string buffer = std::move(residue_);
  residue_.clear();
  auto read_more = [&]() -> int {
    char chunk[8192];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) buffer.append(chunk, static_cast<size_t>(n));
    return static_cast<int>(n);
  };

  // --- headers ---
  size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const int n = read_more();
    if (n == 0 && buffer.empty() && retry_on_stale && !fresh) {
      // Stale keep-alive: the server closed before our request arrived.
      Disconnect();
      return RoundTrip(request, /*retry_on_stale=*/false);
    }
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return Status::IoError("connection closed before response headers");
    }
  }

  Response response;
  const std::string head = buffer.substr(0, head_end);
  size_t pos = head.find("\r\n");
  const std::string status_line =
      head.substr(0, pos == std::string::npos ? head.size() : pos);
  if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
    Disconnect();
    return Status::IoError("malformed status line: " + status_line);
  }
  response.status = std::atoi(status_line.c_str() + 9);

  uint64_t content_length = 0;
  bool keep_alive = true;
  while (pos != std::string::npos && pos + 2 < head.size()) {
    size_t next = head.find("\r\n", pos + 2);
    const std::string line =
        head.substr(pos + 2, (next == std::string::npos ? head.size() : next) -
                                 pos - 2);
    pos = next;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLower(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (name == "content-length") {
      content_length = std::strtoull(value.c_str(), nullptr, 10);
    }
    if (name == "connection" && ToLower(value) == "close") {
      keep_alive = false;
    }
    response.headers.emplace_back(std::move(name), std::move(value));
  }

  const size_t body_begin = head_end + 4;
  while (buffer.size() < body_begin + content_length) {
    const int n = read_more();
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return Status::IoError("connection closed mid-body");
    }
  }
  response.body = buffer.substr(body_begin, content_length);
  residue_ = buffer.substr(body_begin + content_length);
  if (!keep_alive) Disconnect();
  return response;
}

}  // namespace net
}  // namespace sitfact
